package campaign

import (
	"errors"
	"fmt"
	"sync"
)

// ErrQueueFull is returned by Pool.TrySubmit when the bounded job queue is
// at capacity — the admission-control signal a service maps to backpressure
// (HTTP 429) instead of letting latency grow without bound.
var ErrQueueFull = errors.New("campaign: job queue full")

// ErrPoolClosed is returned by Pool.TrySubmit after Close.
var ErrPoolClosed = errors.New("campaign: pool closed")

// Pool is RunPooled's execution model promoted to a long-running service
// form: a fixed set of workers, each owning one reusable state S built once
// by newState, draining a bounded job queue for the lifetime of the pool
// instead of a single campaign's run range. The same determinism contract
// carries over — which worker executes which job is scheduling-dependent,
// so jobs must be history-insensitive in the state they receive (exactly
// what sim.Runner guarantees via Machine.Reuse).
//
// Unlike RunPooled there is no result collection or ordering: a service's
// jobs carry their own completion channels. What the pool adds is admission
// control — TrySubmit never blocks, and a full queue is an explicit
// ErrQueueFull the caller can surface as backpressure.
type Pool[S any] struct {
	jobs    chan func(S)
	workers int
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
}

// NewPool starts workers goroutines (DefaultWorkers when ≤ 0), each with
// its own newState() result, over a job queue of the given capacity. A zero
// queue capacity still admits jobs whenever a worker is ready to receive.
func NewPool[S any](workers, queue int, newState func() S) (*Pool[S], error) {
	if newState == nil {
		return nil, fmt.Errorf("campaign: nil state factory")
	}
	if queue < 0 {
		return nil, fmt.Errorf("campaign: queue capacity = %d", queue)
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool[S]{jobs: make(chan func(S), queue), workers: workers}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			state := newState()
			for job := range p.jobs {
				job(state)
			}
		}()
	}
	return p, nil
}

// TrySubmit enqueues job without blocking. It returns ErrQueueFull when the
// queue is at capacity and no worker is ready, and ErrPoolClosed after
// Close; on nil it reports the job unsubmittable.
func (p *Pool[S]) TrySubmit(job func(S)) error {
	if job == nil {
		return fmt.Errorf("campaign: nil job")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueDepth reports the number of jobs admitted but not yet picked up by a
// worker.
func (p *Pool[S]) QueueDepth() int { return len(p.jobs) }

// Workers reports the pool's worker count.
func (p *Pool[S]) Workers() int { return p.workers }

// Close stops intake, lets the workers drain every admitted job, and waits
// for them to exit. Close is idempotent.
func (p *Pool[S]) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
