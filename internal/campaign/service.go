package campaign

import (
	"errors"
	"fmt"
	"sync"
)

// ErrQueueFull is returned by Pool.TrySubmit when the bounded job queue is
// at capacity — the admission-control signal a service maps to backpressure
// (HTTP 429) instead of letting latency grow without bound.
var ErrQueueFull = errors.New("campaign: job queue full")

// ErrPoolClosed is returned by Pool.Submit and Pool.TrySubmit after Close.
var ErrPoolClosed = errors.New("campaign: pool closed")

// Pool is the campaign execution model promoted to a long-running service
// form: a fixed set of workers, each owning one reusable state S built once
// by the per-worker state factory, draining a bounded job queue for the
// lifetime of the pool instead of a single campaign's run range. The same
// determinism contract as Do carries over — which worker executes which job
// is scheduling-dependent, so jobs must be history-insensitive in the state
// they receive (exactly what sim.Runner guarantees via Machine.Reuse).
//
// Unlike Do there is no result collection or ordering: a service's jobs
// carry their own completion channels. What the pool adds is admission
// control, in two flavours serving two callers of the same daemon:
//
//   - TrySubmit never blocks — a full queue is an explicit ErrQueueFull the
//     interactive request path surfaces as backpressure (429);
//   - Submit blocks until a worker frees queue space — the batch path a job
//     engine drives, where throttling to pool speed is the point.
//
// Jobs must never Submit from worker goroutines: a job blocking on its own
// pool's full queue deadlocks the worker that would drain it.
type Pool[S any] struct {
	jobs    chan func(S)
	workers int
	wg      sync.WaitGroup
	// mu is reader/writer on the channel's liveness: every submitter holds
	// the read side while touching jobs (so the channel cannot be closed
	// under an in-flight send — a panic in Go), and Close takes the write
	// side to flip closed and close the channel. Blocking Submit holds the
	// read lock across its send; that cannot starve Close, because the
	// workers keep draining the queue until close, so every blocked send
	// eventually completes and releases the lock.
	mu     sync.RWMutex
	closed bool
}

// NewPool starts workers goroutines (DefaultWorkers when ≤ 0), each with
// its own newState() result, over a job queue of the given capacity.
//
// Deprecated: use Options[S]{Workers: workers, Queue: queue,
// PerWorkerState: newState}.NewPool(). Kept as a thin wrapper for external
// callers; in-tree code has migrated.
func NewPool[S any](workers, queue int, newState func() S) (*Pool[S], error) {
	if newState == nil {
		return nil, fmt.Errorf("campaign: nil state factory")
	}
	return newPool(workers, queue, newState)
}

// newPool is the core behind Options.NewPool. A zero queue capacity still
// admits jobs whenever a worker is ready to receive.
func newPool[S any](workers, queue int, newState func() S) (*Pool[S], error) {
	if queue < 0 {
		return nil, fmt.Errorf("campaign: queue capacity = %d", queue)
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool[S]{jobs: make(chan func(S), queue), workers: workers}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			state := newState()
			for job := range p.jobs {
				job(state)
			}
		}()
	}
	return p, nil
}

// TrySubmit enqueues job without blocking. It returns ErrQueueFull when the
// queue is at capacity and no worker is ready, and ErrPoolClosed after
// Close; on nil it reports the job unsubmittable.
func (p *Pool[S]) TrySubmit(job func(S)) error {
	if job == nil {
		return fmt.Errorf("campaign: nil job")
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrQueueFull
	}
}

// Submit enqueues job, blocking until queue space frees when the queue is
// at capacity — the batch-path counterpart of TrySubmit. It returns
// ErrPoolClosed when the pool was closed before the call; a Close
// concurrent with a blocked Submit waits for the send to land (the job is
// then drained like any other admitted job). Submitting from a worker
// goroutine of the same pool is forbidden — see the type comment.
func (p *Pool[S]) Submit(job func(S)) error {
	if job == nil {
		return fmt.Errorf("campaign: nil job")
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.jobs <- job
	return nil
}

// QueueDepth reports the number of jobs admitted but not yet picked up by a
// worker.
func (p *Pool[S]) QueueDepth() int { return len(p.jobs) }

// QueueCapacity reports the job queue's capacity.
func (p *Pool[S]) QueueCapacity() int { return cap(p.jobs) }

// Workers reports the pool's worker count.
func (p *Pool[S]) Workers() int { return p.workers }

// Close stops intake, lets the workers drain every admitted job, and waits
// for them to exit. Close is idempotent.
func (p *Pool[S]) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
