package campaign

// Options is the single configuration surface for campaign execution — the
// options-struct redesign that unifies what used to be three entry points
// (Run, RunPooled, NewPool) differing only in which knobs they exposed. One
// value of Options[S] describes how work is executed: how many workers, what
// reusable per-worker state they carry, how deep the job queue is when the
// pool runs in service form, and who observes progress. The two execution
// shapes consume the same value:
//
//   - Do(opts, runs, fn) — a finite campaign: fan runs out across the
//     workers, collect results in run index order (bit-identical to the
//     serial loop), return them;
//   - opts.NewPool() — a long-running service pool draining submitted jobs
//     until Close.
//
// The zero value is usable: DefaultWorkers workers, zero-value per-worker
// state, an unbuffered queue, no progress observer.
type Options[S any] struct {
	// Workers sizes the pool; ≤ 0 means DefaultWorkers. For Do, 1 forces
	// the serial in-caller path (no goroutines, one state value).
	Workers int
	// PerWorkerState builds one S per worker before its first run; the
	// worker then carries that S across every run it executes, which is
	// what amortises expensive per-run setup (a sim.Machine, program
	// scratch, buffers) to zero on the hot path. Nil means the zero value
	// of S. Because which worker executes which run is
	// scheduling-dependent, run functions must be history-insensitive in
	// the state they receive — fn(state, r) must return the same value
	// whatever runs the state served before, exactly the guarantee
	// sim.Machine.Reuse provides.
	PerWorkerState func() S
	// Queue bounds the service pool's job queue (NewPool only; Do
	// ignores it). Zero still admits jobs whenever a worker is ready to
	// receive; negative is rejected.
	Queue int
	// Progress, when non-nil, observes run completion in Do: called with
	// (done, total), serialised, done strictly increasing from 1. Pools
	// have no run range, so NewPool ignores it.
	Progress Progress
}

// state returns the per-worker state factory, defaulting to the zero value
// of S.
func (o Options[S]) state() func() S {
	if o.PerWorkerState != nil {
		return o.PerWorkerState
	}
	return func() S { var zero S; return zero }
}

// Do executes fn(state, 0) … fn(state, runs-1) under the options and returns
// the results ordered by run index — the unified campaign entry point. Each
// worker receives its own PerWorkerState() value and keeps it across its
// whole run slice; results are collected in index order, so the output is
// bit-identical to the serial loop whenever fn is history-insensitive (see
// Options.PerWorkerState). On failure Do reports the error of the
// lowest-indexed failed run and stops dispatching new runs.
func Do[S, T any](opts Options[S], runs int, fn func(state S, run int) (T, error)) ([]T, error) {
	return execute(runs, opts.Workers, opts.Progress, opts.state(), fn)
}

// NewPool starts the long-running service form of the options: Workers
// goroutines, each carrying one PerWorkerState() value, draining a job
// queue of capacity Queue until Close. See Pool for the submission and
// backpressure contract.
func (o Options[S]) NewPool() (*Pool[S], error) {
	return newPool(o.Workers, o.Queue, o.state())
}
