package campaign

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// work is a deterministic pure function of the run index, expensive enough
// that parallel workers genuinely interleave.
func work(run int) uint64 {
	z := uint64(run)*0x9e3779b97f4a7c15 + 1
	for i := 0; i < 2000; i++ {
		z ^= z >> 30
		z *= 0x94d049bb133111eb
		z ^= z >> 27
	}
	return z
}

func TestRunOrderedAndIdenticalAcrossWorkerCounts(t *testing.T) {
	const runs = 200
	fn := func(r int) (uint64, error) { return work(r), nil }
	serial, err := Run(runs, 1, nil, fn)
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range serial {
		if v != work(r) {
			t.Fatalf("serial result %d out of order", r)
		}
	}
	for _, workers := range []int{0, 2, 4, 16, runs + 7} {
		got, err := Run(runs, workers, nil, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for r := range got {
			if got[r] != serial[r] {
				t.Fatalf("workers=%d: result %d = %d, serial %d", workers, r, got[r], serial[r])
			}
		}
	}
}

func TestRunProgressMonotonic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var seen []int
		total := -1
		_, err := Run(50, workers, func(done, tot int) {
			seen = append(seen, done)
			total = tot
		}, func(r int) (int, error) { _ = work(r); return r, nil })
		if err != nil {
			t.Fatal(err)
		}
		if total != 50 || len(seen) != 50 {
			t.Fatalf("workers=%d: progress total=%d calls=%d", workers, total, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: progress call %d reported done=%d", workers, i, d)
			}
		}
	}
}

func TestRunErrorSerialIsFirstFailure(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(10, 1, nil, func(r int) (int, error) {
		if r >= 3 {
			return 0, boom
		}
		return r, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "run 3") {
		t.Fatalf("serial error does not name run 3: %v", err)
	}
}

func TestRunErrorParallelStops(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	_, err := Run(10_000, 8, nil, func(r int) (int, error) {
		<-mu
		calls++
		mu <- struct{}{}
		return 0, boom
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls >= 10_000 {
		t.Fatalf("engine did not stop dispatching after failure (%d calls)", calls)
	}
}

func TestRunEdgeCases(t *testing.T) {
	out, err := Run(0, 4, nil, func(r int) (int, error) { return r, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("zero runs: %v, %v", out, err)
	}
	if _, err := Run(-1, 4, nil, func(r int) (int, error) { return r, nil }); err == nil {
		t.Fatal("negative runs accepted")
	}
	if _, err := Run[int](3, 4, nil, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestStrideSeeds(t *testing.T) {
	s := StrideSeeds(7)
	for r := 0; r < 5; r++ {
		want := 7 + uint64(r)*SeedStride
		if got := s(r); got != want {
			t.Fatalf("seed(%d) = %#x, want %#x", r, got, want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if _, err := (Spec{Runs: 3}).MaxContention(); err == nil {
		t.Error("Spec without Build accepted")
	}
	if _, err := (Spec{Runs: 0, Build: nil}).Isolation(); err == nil {
		t.Error("Spec without Runs accepted")
	}
}

func ExampleRun() {
	squares, _ := Run(4, 2, nil, func(r int) (int, error) { return r * r, nil })
	fmt.Println(squares)
	// Output: [0 1 4 9]
}
