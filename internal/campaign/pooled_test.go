package campaign

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"creditbus/internal/cpu"
	"creditbus/internal/sim"
	"creditbus/internal/workload"
)

// TestRunPooledStatePerWorker: every worker gets exactly one state, the
// serial path exactly one in total, and results stay index-ordered.
func TestRunPooledStatePerWorker(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var states atomic.Int64
		out, err := RunPooled(32, workers, nil,
			func() *int64 { states.Add(1); n := int64(0); return &n },
			func(st *int64, run int) (int, error) {
				*st++ // per-worker mutation must be race-free
				return run * run, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		max := int64(workers)
		if got := states.Load(); got < 1 || got > max {
			t.Errorf("workers=%d: %d states built, want 1..%d", workers, got, max)
		}
	}
}

// TestRunPooledValidation covers the error paths.
func TestRunPooledValidation(t *testing.T) {
	if _, err := RunPooled(-1, 1, nil, func() int { return 0 }, func(int, int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative runs must fail")
	}
	if _, err := RunPooled[int, int](1, 1, nil, nil, func(int, int) (int, error) { return 0, nil }); err == nil {
		t.Error("nil state factory must fail")
	}
	if _, err := RunPooled[int, int](1, 1, nil, func() int { return 0 }, nil); err == nil {
		t.Error("nil run function must fail")
	}
	boom := errors.New("boom")
	if _, err := RunPooled(4, 2, nil, func() int { return 0 }, func(_ int, r int) (int, error) {
		if r >= 2 {
			return 0, boom
		}
		return r, nil
	}); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

// TestPooledSpecMatchesFreshScenario: the pooled campaign protocols
// (MaxContention, Isolation, ResultsPooled) must reproduce the
// fresh-machine serial loop bit for bit at any worker count — machine
// reuse may not leak one run into the next.
func TestPooledSpecMatchesFreshScenario(t *testing.T) {
	spec, ok := workload.ByName("matrix")
	if !ok {
		t.Fatal("missing workload matrix")
	}
	base := spec.Build(1)
	trimmed := cpu.NewTrace(base.Ops()[:600])

	cfg := sim.DefaultConfig()
	cfg.Credit.Kind = sim.CreditCBA
	const runs = 6
	s := Spec{
		Config:   cfg,
		Build:    func(int) cpu.Program { return trimmed.Clone() },
		Runs:     runs,
		BaseSeed: 42,
	}

	wantMax := make([]float64, runs)
	wantIso := make([]float64, runs)
	wantRes := make([]sim.Result, runs)
	for r := 0; r < runs; r++ {
		res, err := sim.RunMaxContention(cfg, trimmed.Clone(), s.seed(r))
		if err != nil {
			t.Fatal(err)
		}
		wantMax[r] = float64(res.TaskCycles)
		wantRes[r] = res
		iso, err := sim.RunIsolation(cfg, trimmed.Clone(), s.seed(r))
		if err != nil {
			t.Fatal(err)
		}
		wantIso[r] = float64(iso.TaskCycles)
	}

	for _, workers := range []int{1, 3} {
		s.Workers = workers
		got, err := s.MaxContention()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantMax, got) {
			t.Errorf("workers=%d: pooled MaxContention diverges from fresh loop:\n got %v\nwant %v", workers, got, wantMax)
		}
		iso, err := s.Isolation()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantIso, iso) {
			t.Errorf("workers=%d: pooled Isolation diverges from fresh loop", workers)
		}
		res, err := s.ResultsPooled((*sim.Runner).MaxContention)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantRes, res) {
			t.Errorf("workers=%d: ResultsPooled diverges from fresh loop", workers)
		}
	}
}
