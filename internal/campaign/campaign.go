// Package campaign is the deterministic parallel measurement engine behind
// every multi-run protocol in the reproduction. The paper's methodology
// (§III.B) collects on the order of 1,000 maximum-contention runs per
// benchmark for the MBPTA/EVT fit; each run is an independent simulation
// with its own derived seed, so a campaign is embarrassingly parallel —
// provided no two runs share mutable state. The engine enforces exactly
// that: every run gets its own platform (sim.Machine) and its own program
// instance from a factory, and results are aggregated in run order, so a
// parallel campaign's output is bit-identical to the serial loop it
// replaces.
//
// Two layers are provided:
//
//   - Run, the generic ordered worker pool: fan any indexed job set out
//     across goroutines, collect results in index order, report progress;
//   - Spec, the simulation-level campaign: a platform Config, a program
//     factory, a seed schedule and a scenario, collected into the ordered
//     sample vector the MBPTA pipeline consumes.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Progress observes campaign completion. It is called with the number of
// runs finished so far and the campaign size, serialised (never from two
// goroutines at once) and with done strictly increasing from 1 to total.
type Progress func(done, total int)

// DefaultWorkers is the worker count used when a campaign does not set one:
// the process's GOMAXPROCS, i.e. one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run executes fn(0), fn(1), ... fn(runs-1) across a pool of workers and
// returns the results ordered by run index.
//
// Deprecated: use Do with Options — Run(runs, w, p, fn) is
// Do(Options[struct{}]{Workers: w, Progress: p}, runs, …). Kept as a thin
// wrapper for external callers; in-tree code has migrated.
func Run[T any](runs, workers int, progress Progress, fn func(run int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("campaign: nil run function")
	}
	return Do(Options[struct{}]{Workers: workers, Progress: progress},
		runs, func(_ struct{}, run int) (T, error) { return fn(run) })
}

// RunPooled is Run with per-worker reusable state.
//
// Deprecated: use Do with Options — RunPooled(runs, w, p, ns, fn) is
// Do(Options[S]{Workers: w, Progress: p, PerWorkerState: ns}, runs, fn).
// Kept as a thin wrapper for external callers; in-tree code has migrated.
func RunPooled[S, T any](runs, workers int, progress Progress, newState func() S, fn func(state S, run int) (T, error)) ([]T, error) {
	if newState == nil {
		return nil, fmt.Errorf("campaign: nil state factory")
	}
	return Do(Options[S]{Workers: workers, Progress: progress, PerWorkerState: newState}, runs, fn)
}

// execute is the ordered worker-pool core behind Do: per-worker reusable
// state from newState, index-ordered result collection, lowest-indexed
// error, serialised progress. With workers ≤ 1 the runs execute serially on
// the calling goroutine with a single state value and no goroutine
// machinery.
func execute[S, T any](runs, workers int, progress Progress, newState func() S, fn func(state S, run int) (T, error)) ([]T, error) {
	if runs < 0 {
		return nil, fmt.Errorf("campaign: runs = %d", runs)
	}
	if fn == nil {
		return nil, fmt.Errorf("campaign: nil run function")
	}
	if newState == nil {
		return nil, fmt.Errorf("campaign: nil state factory")
	}
	out := make([]T, runs)
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > runs {
		workers = runs
	}

	if workers <= 1 {
		state := newState()
		for r := 0; r < runs; r++ {
			v, err := fn(state, r)
			if err != nil {
				return nil, fmt.Errorf("campaign: run %d: %w", r, err)
			}
			out[r] = v
			if progress != nil {
				progress(r+1, runs)
			}
		}
		return out, nil
	}

	var (
		next   atomic.Int64 // next run index to dispatch
		failed atomic.Bool  // stop dispatching after the first error
		mu     sync.Mutex   // guards done, errRun, errVal and progress calls
		done   int
		errRun = -1
		errVal error
		wg     sync.WaitGroup
	)
	next.Store(-1)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := newState()
			for {
				r := int(next.Add(1))
				if r >= runs || failed.Load() {
					return
				}
				v, err := fn(state, r)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if errRun < 0 || r < errRun {
						errRun, errVal = r, err
					}
					mu.Unlock()
					return
				}
				out[r] = v // disjoint index per worker iteration
				mu.Lock()
				done++
				if progress != nil {
					progress(done, runs)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if errRun >= 0 {
		return nil, fmt.Errorf("campaign: run %d: %w", errRun, errVal)
	}
	return out, nil
}

// SeedStride is the golden-ratio increment of the default seed schedule —
// the same constant the measurement protocol has always used to derive
// per-run seeds, kept so parallel campaigns reproduce historical sample
// vectors exactly.
const SeedStride = 0x9e3779b97f4a7c15

// StrideSeeds returns the default seed schedule: base + run·SeedStride.
func StrideSeeds(base uint64) func(run int) uint64 {
	return func(run int) uint64 { return base + uint64(run)*SeedStride }
}
