package campaign

import (
	"fmt"

	"creditbus/internal/cpu"
	"creditbus/internal/sim"
)

// Scenario executes one simulation run — sim.RunMaxContention,
// sim.RunIsolation, or any function of the same shape. Every call builds a
// fresh platform; campaigns prefer RunnerScenario, which recycles one.
type Scenario func(cfg sim.Config, prog cpu.Program, seed uint64) (sim.Result, error)

// RunnerScenario executes one simulation run on a per-worker reusable
// machine — the pooled form of Scenario, and the shape the allocation-free
// campaign hot path wants. (*sim.Runner).MaxContention,
// (*sim.Runner).Isolation and (*sim.Runner).Workloads are the canonical
// instances; sim's reuse layer guarantees their results are bit-identical
// to the fresh-machine Scenario equivalents whatever runs the runner
// served before.
type RunnerScenario func(rn *sim.Runner, cfg sim.Config, prog cpu.Program, seed uint64) (sim.Result, error)

// Spec describes a measurement campaign: a platform configuration, a
// program factory, a seed schedule and a size. The factory is the crux of
// parallel correctness — each run receives its own program instance, so no
// trace state is shared between concurrently executing machines. For
// replayable traces the factory is typically a cheap Clone (the operation
// slice is shared read-only; only the cursor is fresh).
type Spec struct {
	// Config is the platform; it is passed by value to every run.
	Config sim.Config
	// Build returns run r's program. It is called at dispatch time from
	// worker goroutines and must return an instance not shared with any
	// other run. Deterministic factories (same run ⇒ same program) keep
	// campaigns reproducible.
	Build func(run int) cpu.Program
	// Runs is the campaign size (the paper uses 1,000).
	Runs int
	// Seed returns run r's platform seed. Nil means StrideSeeds(BaseSeed),
	// the measurement protocol's historical schedule.
	Seed func(run int) uint64
	// BaseSeed anchors the default seed schedule when Seed is nil.
	BaseSeed uint64
	// Workers sizes the pool; 0 means DefaultWorkers, 1 forces the serial
	// path.
	Workers int
	// Progress, when non-nil, observes run completion.
	Progress Progress
}

// runnerOptions is the campaign's execution surface on per-worker reusable
// machines — the pooled hot path every *Pooled method shares.
func (s Spec) runnerOptions() Options[*sim.Runner] {
	return Options[*sim.Runner]{
		Workers:        s.Workers,
		Progress:       s.Progress,
		PerWorkerState: func() *sim.Runner { return new(sim.Runner) },
	}
}

func (s Spec) seed(run int) uint64 {
	if s.Seed != nil {
		return s.Seed(run)
	}
	return s.BaseSeed + uint64(run)*SeedStride
}

func (s Spec) validate() error {
	if s.Runs <= 0 {
		return fmt.Errorf("campaign: Runs = %d", s.Runs)
	}
	if s.Build == nil {
		return fmt.Errorf("campaign: Spec needs a program factory")
	}
	return nil
}

// Results runs the campaign under the given scenario and returns the full
// per-run results in run order.
func (s Spec) Results(scenario Scenario) ([]sim.Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return Do(Options[struct{}]{Workers: s.Workers, Progress: s.Progress},
		s.Runs, func(_ struct{}, r int) (sim.Result, error) {
			return scenario(s.Config, s.Build(r), s.seed(r))
		})
}

// ResultsPooled runs the campaign on per-worker reusable machines and
// returns the full per-run results in run order — bit-identical to Results
// with the matching fresh-machine Scenario, at a fraction of the
// allocation cost.
func (s Spec) ResultsPooled(scenario RunnerScenario) ([]sim.Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return Do(s.runnerOptions(), s.Runs,
		func(rn *sim.Runner, r int) (sim.Result, error) {
			return scenario(rn, s.Config, s.Build(r), s.seed(r))
		})
}

// TaskCycles runs the campaign and returns each run's execution time — the
// sample vector the MBPTA pipeline fits.
func (s Spec) TaskCycles(scenario Scenario) ([]float64, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return Do(Options[struct{}]{Workers: s.Workers, Progress: s.Progress},
		s.Runs, func(_ struct{}, r int) (float64, error) {
			res, err := scenario(s.Config, s.Build(r), s.seed(r))
			if err != nil {
				return 0, err
			}
			return float64(res.TaskCycles), nil
		})
}

// TaskCyclesPooled is TaskCycles on per-worker reusable machines.
func (s Spec) TaskCyclesPooled(scenario RunnerScenario) ([]float64, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return Do(s.runnerOptions(), s.Runs,
		func(rn *sim.Runner, r int) (float64, error) {
			res, err := scenario(rn, s.Config, s.Build(r), s.seed(r))
			if err != nil {
				return 0, err
			}
			return float64(res.TaskCycles), nil
		})
}

// MaxContention collects execution times under the paper's WCET-estimation
// scenario (§III.B's measurement protocol), each worker recycling one
// machine across its run slice.
func (s Spec) MaxContention() ([]float64, error) {
	return s.TaskCyclesPooled((*sim.Runner).MaxContention)
}

// Isolation collects execution times with the task running alone, each
// worker recycling one machine across its run slice.
func (s Spec) Isolation() ([]float64, error) {
	return s.TaskCyclesPooled((*sim.Runner).Isolation)
}
