package campaign

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoMatchesSerial pins the unified entry point's core contract: the
// result vector is bit-identical to the serial loop at any worker count,
// with or without per-worker state.
func TestDoMatchesSerial(t *testing.T) {
	const runs = 257
	want := make([]int, runs)
	for r := range want {
		want[r] = r * r
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Do(Options[struct{}]{Workers: workers}, runs,
			func(_ struct{}, r int) (int, error) { return r * r, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("workers=%d: run %d = %d, want %d", workers, r, got[r], want[r])
			}
		}
	}
}

// TestDoPerWorkerState checks each worker receives exactly one state value
// and carries it across its run slice.
func TestDoPerWorkerState(t *testing.T) {
	var built atomic.Int64
	type state struct{ uses int }
	const runs, workers = 100, 4
	_, err := Do(Options[*state]{
		Workers:        workers,
		PerWorkerState: func() *state { built.Add(1); return &state{} },
	}, runs, func(s *state, r int) (int, error) {
		s.uses++
		return s.uses, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if b := built.Load(); b < 1 || b > workers {
		t.Fatalf("built %d states for %d workers", b, workers)
	}
}

// TestDoNilStateIsZeroValue: a nil PerWorkerState hands workers the zero
// value of S.
func TestDoNilStateIsZeroValue(t *testing.T) {
	got, err := Do(Options[int]{Workers: 2}, 8, func(s int, r int) (int, error) {
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range got {
		if v != 0 {
			t.Fatalf("run %d saw state %d, want zero value", r, v)
		}
	}
}

// TestDoErrors pins the error surface: nil fn, negative runs, lowest-indexed
// run error.
func TestDoErrors(t *testing.T) {
	if _, err := Do[struct{}, int](Options[struct{}]{}, 3, nil); err == nil {
		t.Fatal("nil fn must fail")
	}
	if _, err := Do(Options[struct{}]{}, -1, func(_ struct{}, r int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative runs must fail")
	}
	boom := errors.New("boom")
	_, err := Do(Options[struct{}]{Workers: 4}, 100, func(_ struct{}, r int) (int, error) {
		if r >= 40 {
			return 0, boom
		}
		return r, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// TestDeprecatedTrioDelegates: the legacy entry points remain thin wrappers
// with unchanged behaviour.
func TestDeprecatedTrioDelegates(t *testing.T) {
	got, err := Run(5, 2, nil, func(r int) (int, error) { return r + 1, nil }) //nolint:staticcheck
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range got {
		if v != r+1 {
			t.Fatalf("Run: run %d = %d", r, v)
		}
	}
	got, err = RunPooled(5, 2, nil, func() int { return 10 }, //nolint:staticcheck
		func(s, r int) (int, error) { return s + r, nil })
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range got {
		if v != 10+r {
			t.Fatalf("RunPooled: run %d = %d", r, v)
		}
	}
	if _, err := RunPooled[int, int](5, 2, nil, nil, nil); err == nil { //nolint:staticcheck
		t.Fatal("nil state factory must fail")
	}
	p, err := NewPool(2, 1, func() struct{} { return struct{}{} }) //nolint:staticcheck
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := NewPool[int](2, 1, nil); err == nil { //nolint:staticcheck
		t.Fatal("NewPool nil state factory must fail")
	}
}

// TestOptionsNewPool exercises the options-form pool constructor and the
// blocking Submit path: more jobs than queue capacity all land, none lost.
func TestOptionsNewPool(t *testing.T) {
	p, err := Options[*int]{
		Workers:        2,
		Queue:          1,
		PerWorkerState: func() *int { v := 0; return &v },
	}.NewPool()
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 100
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		if err := p.Submit(func(*int) { done.Add(1); wg.Done() }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	p.Close()
	if done.Load() != jobs {
		t.Fatalf("ran %d jobs, want %d", done.Load(), jobs)
	}
	if err := p.Submit(func(*int) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close: %v, want ErrPoolClosed", err)
	}
	if _, err := (Options[int]{Queue: -1}).NewPool(); err == nil {
		t.Fatal("negative queue must fail")
	}
}

// TestSubmitBlocksUntilSpace: a Submit against a full queue waits for a
// worker instead of failing, while TrySubmit on the same state returns
// ErrQueueFull.
func TestSubmitBlocksUntilSpace(t *testing.T) {
	gate := make(chan struct{})
	p, err := Options[struct{}]{Workers: 1, Queue: 1}.NewPool()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Occupy the single worker, then fill the single queue slot.
	if err := p.Submit(func(struct{}) { <-gate }); err != nil {
		t.Fatal(err)
	}
	for p.QueueDepth() != 0 { // wait until the worker picked the job up
	}
	if err := p.Submit(func(struct{}) {}); err != nil {
		t.Fatal(err)
	}
	if err := p.TrySubmit(func(struct{}) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit on full queue: %v, want ErrQueueFull", err)
	}
	ran := make(chan struct{})
	go func() {
		if err := p.Submit(func(struct{}) { close(ran) }); err != nil {
			t.Error(err)
		}
	}()
	close(gate) // release the worker; the blocked Submit must land and run
	<-ran
	if p.QueueCapacity() != 1 {
		t.Fatalf("QueueCapacity = %d, want 1", p.QueueCapacity())
	}
}
