package campaign

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolPerWorkerState: every worker owns exactly one state for its whole
// lifetime, and every admitted job runs on one of them.
func TestPoolPerWorkerState(t *testing.T) {
	var states atomic.Int64
	p, err := NewPool(3, 64, func() *int64 {
		states.Add(1)
		v := new(int64)
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	var done sync.WaitGroup
	for i := 0; i < 48; i++ {
		done.Add(1)
		if err := p.TrySubmit(func(s *int64) {
			atomic.AddInt64(s, 1)
			done.Done()
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	done.Wait()
	p.Close()
	if got := states.Load(); got != 3 {
		t.Fatalf("built %d states for 3 workers", got)
	}
}

// TestPoolQueueFull: with every worker wedged and the queue at capacity,
// TrySubmit reports ErrQueueFull instead of blocking.
func TestPoolQueueFull(t *testing.T) {
	gate := make(chan struct{})
	p, err := NewPool(1, 1, func() struct{} { return struct{}{} })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	running := make(chan struct{})
	// First job occupies the worker...
	if err := p.TrySubmit(func(struct{}) { close(running); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-running
	// ...second fills the queue slot...
	if err := p.TrySubmit(func(struct{}) {}); err != nil {
		t.Fatal(err)
	}
	if d := p.QueueDepth(); d != 1 {
		t.Fatalf("queue depth %d, want 1", d)
	}
	// ...third must be refused, not block.
	if err := p.TrySubmit(func(struct{}) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	close(gate)
}

// TestPoolCloseDrains: Close waits for every admitted job, and later
// submissions report ErrPoolClosed.
func TestPoolCloseDrains(t *testing.T) {
	var ran atomic.Int64
	p, err := NewPool(2, 128, func() struct{} { return struct{}{} })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := p.TrySubmit(func(struct{}) {
			time.Sleep(50 * time.Microsecond)
			ran.Add(1)
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Close()
	if got := ran.Load(); got != 100 {
		t.Fatalf("%d of 100 jobs ran before Close returned", got)
	}
	if err := p.TrySubmit(func(struct{}) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("got %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

// TestPoolRejectsBadConfig: nil factories, nil jobs and negative queue
// capacities are explicit errors.
func TestPoolRejectsBadConfig(t *testing.T) {
	if _, err := NewPool[int](1, 1, nil); err == nil {
		t.Fatal("nil state factory accepted")
	}
	if _, err := NewPool(1, -1, func() int { return 0 }); err == nil {
		t.Fatal("negative queue accepted")
	}
	p, err := NewPool(1, 1, func() int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.TrySubmit(nil); err == nil {
		t.Fatal("nil job accepted")
	}
	if p.Workers() != 1 {
		t.Fatalf("workers = %d", p.Workers())
	}
}
