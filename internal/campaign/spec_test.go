package campaign

import (
	"math"
	"testing"

	"creditbus/internal/cpu"
	"creditbus/internal/sim"
)

// testTrace is a small memory-heavy program: enough bus traffic that runs
// under contention have seed-dependent execution times.
func testTrace() *cpu.Trace {
	ops := make([]cpu.Op, 0, 900)
	for i := 0; i < 300; i++ {
		ops = append(ops,
			cpu.Op{Kind: cpu.OpLoad, Addr: uint64(i*8) % 16384},
			cpu.Op{Kind: cpu.OpALU, Cycles: 2},
			cpu.Op{Kind: cpu.OpStore, Addr: uint64(i*32+8) % 32768},
		)
	}
	return cpu.NewTrace(ops)
}

// TestSpecParallelMatchesSerialLoop is the engine's core guarantee: a
// parallel campaign's sample vector is byte-identical to the serial
// protocol it replaces.
func TestSpecParallelMatchesSerialLoop(t *testing.T) {
	base := testTrace()
	cfg := sim.DefaultConfig()
	cfg.Credit.Kind = sim.CreditCBA
	const runs = 24
	const seed = 20170327

	// The historical serial protocol: one shared program, Reset per run,
	// golden-ratio seed stride.
	want := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		base.Reset()
		res, err := sim.RunMaxContention(cfg, base, seed+uint64(r)*SeedStride)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, float64(res.TaskCycles))
	}

	for _, workers := range []int{1, 4} {
		got, err := Spec{
			Config:   cfg,
			Build:    func(int) cpu.Program { return base.Clone() },
			Runs:     runs,
			BaseSeed: seed,
			Workers:  workers,
		}.MaxContention()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != runs {
			t.Fatalf("workers=%d: %d samples", workers, len(got))
		}
		for r := range got {
			if math.Float64bits(got[r]) != math.Float64bits(want[r]) {
				t.Fatalf("workers=%d: run %d = %v, serial loop %v", workers, r, got[r], want[r])
			}
		}
	}

	// The samples must actually vary with the seed, or the test is vacuous.
	varied := false
	for r := 1; r < runs; r++ {
		if want[r] != want[0] {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("all runs identical: contention randomness not exercised")
	}
}

func TestSpecCustomSeedSchedule(t *testing.T) {
	var seeds []uint64
	scenario := func(cfg sim.Config, prog cpu.Program, seed uint64) (sim.Result, error) {
		seeds = append(seeds, seed)
		return sim.Result{TaskCycles: int64(seed)}, nil
	}
	base := testTrace()
	_, err := Spec{
		Config:  sim.DefaultConfig(),
		Build:   func(int) cpu.Program { return base.Clone() },
		Runs:    5,
		Seed:    func(r int) uint64 { return uint64(100 + r) },
		Workers: 1, // serial so the recording slice needs no locking
	}.Results(scenario)
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range seeds {
		if s != uint64(100+r) {
			t.Fatalf("run %d used seed %d, want %d", r, s, 100+r)
		}
	}
}
