package cache

import (
	"testing"
	"testing/quick"
)

func l1Config() Config {
	return Config{Sets: 64, Ways: 2, LineBytes: 32} // 4 KiB write-through L1
}

func l2Config() Config {
	return Config{Sets: 256, Ways: 4, LineBytes: 32, WriteBack: true, AllocOnWrite: true} // 32 KiB
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 1, LineBytes: 32},
		{Sets: 3, Ways: 1, LineBytes: 32},
		{Sets: 64, Ways: 0, LineBytes: 32},
		{Sets: 64, Ways: 1, LineBytes: 0},
		{Sets: 64, Ways: 1, LineBytes: 48},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v unexpectedly valid", cfg)
		}
	}
	if got := l2Config().SizeBytes(); got != 32*1024 {
		t.Errorf("L2 size = %d, want 32768", got)
	}
}

func TestReadMissThenHit(t *testing.T) {
	c := MustNew(l1Config())
	r := c.Access(0x1000, false)
	if r.Hit {
		t.Fatal("cold access hit")
	}
	if !r.Filled {
		t.Fatal("read miss did not fill")
	}
	if !c.Contains(0x1000) || !c.Contains(0x101F) {
		t.Fatal("line not present after fill (both ends of the 32B line)")
	}
	if c.Contains(0x1020) {
		t.Fatal("neighbouring line spuriously present")
	}
	if r2 := c.Access(0x1008, false); !r2.Hit {
		t.Fatal("same-line access missed")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := MustNew(l1Config())
	if r := c.Access(0x2000, true); r.Hit || r.Filled {
		t.Fatalf("write miss in no-allocate cache changed state: %+v", r)
	}
	if c.Contains(0x2000) {
		t.Fatal("write-miss allocated in no-write-allocate cache")
	}
	// Write hit must not mark dirty in a write-through cache.
	c.Access(0x2000, false) // fill by read
	c.Access(0x2000, true)  // write hit
	evictAllWays(t, c, 0x2000)
}

// evictAllWays forces eviction of addr's set and asserts no dirty evictions
// happen (write-through invariant).
func evictAllWays(t *testing.T, c *Cache, addr uint64) {
	t.Helper()
	before := c.Stats().DirtyEvictions
	// Touch many distinct lines to cycle every set.
	for i := uint64(0); i < 64*1024; i += 32 {
		c.Access(0x100000+i, false)
	}
	if c.Stats().DirtyEvictions != before {
		t.Fatal("write-through cache produced a dirty eviction")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := MustNew(l2Config())
	c.Access(0x3000, true) // write-allocate: line filled dirty
	if !c.Contains(0x3000) {
		t.Fatal("write-allocate did not fill")
	}
	// Evict everything by sweeping far more lines than the cache holds.
	sawDirty := false
	for i := uint64(0); i < 256*1024 && !sawDirty; i += 32 {
		r := c.Access(0x200000+i, false)
		if r.Evicted && r.EvictedDirty && r.EvictedAddr == 0x3000 {
			sawDirty = true
		}
	}
	if !sawDirty {
		t.Fatal("dirty line was never reported on eviction")
	}
}

func TestCleanEvictionReportsAddress(t *testing.T) {
	cfg := l2Config()
	cfg.Sets = 1 // direct conflict: every line maps to set 0
	cfg.Ways = 2
	c := MustNew(cfg)
	c.Access(0x0, false)
	c.Access(0x20, false)
	r := c.Access(0x40, false)
	if !r.Evicted || r.EvictedDirty {
		t.Fatalf("expected clean eviction, got %+v", r)
	}
	if r.EvictedAddr != 0x0 && r.EvictedAddr != 0x20 {
		t.Fatalf("evicted address %#x not one of the resident lines", r.EvictedAddr)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := MustNew(l2Config())
	c.Access(0x100, false) // read miss + fill
	c.Access(0x100, false) // read hit
	c.Access(0x100, true)  // write hit
	c.Access(0x500, true)  // write miss + fill (write-allocate)
	s := c.Stats()
	if s.Reads != 2 || s.Writes != 2 || s.ReadHits != 1 || s.WriteHits != 1 || s.Fills != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if hr := s.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate != 0")
	}
}

func TestPlacementSeedChangesMapping(t *testing.T) {
	// The same address stream must map to different sets under different
	// placement seeds: count conflict misses in a direct-mapped cache fed
	// a stride pattern; with at least one different seed the miss counts
	// should differ.
	miss := func(seed uint64) int64 {
		cfg := Config{Sets: 64, Ways: 1, LineBytes: 32, PlacementSeed: seed}
		c := MustNew(cfg)
		for pass := 0; pass < 4; pass++ {
			for i := uint64(0); i < 128; i++ {
				c.Access(i*2048, false)
			}
		}
		s := c.Stats()
		return s.Reads - s.ReadHits
	}
	base := miss(1)
	varied := false
	for seed := uint64(2); seed < 8; seed++ {
		if miss(seed) != base {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("placement seed has no effect on conflict behaviour")
	}
}

func TestReseedInvalidatesAndReproduces(t *testing.T) {
	c := MustNew(l2Config())
	c.Access(0x700, false)
	c.Reseed(42, 43)
	if c.Contains(0x700) {
		t.Fatal("Reseed left valid lines")
	}
	if c.Stats() != (Stats{}) {
		t.Fatal("Reseed left stats")
	}
	// Same seeds -> same behaviour.
	run := func() Stats {
		c.Reseed(7, 8)
		for i := uint64(0); i < 4096; i++ {
			c.Access((i*197)%(64*1024), i%3 == 0)
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", a, b)
	}
}

func TestRandomReplacementUsesAllWays(t *testing.T) {
	// With constant conflict pressure on one set, every way should be the
	// victim at some point (random replacement, not LRU/fixed).
	cfg := Config{Sets: 1, Ways: 4, LineBytes: 32, ReplacementSeed: 5}
	c := MustNew(cfg)
	evicted := map[uint64]bool{}
	for i := uint64(0); i < 400; i++ {
		r := c.Access(i*32, false)
		if r.Evicted {
			evicted[r.EvictedAddr] = true
		}
	}
	// 4 initial fills + ~396 evictions over random ways: the set of
	// evicted addresses must be large (each line evicted once at most, so
	// distinct addresses ≈ evictions).
	if len(evicted) < 300 {
		t.Fatalf("only %d distinct evictions; replacement looks stuck", len(evicted))
	}
}

func TestQuickContainsAfterAccess(t *testing.T) {
	c := MustNew(l2Config())
	f := func(addr uint64, write bool) bool {
		addr %= 1 << 30
		c.Access(addr, write)
		// Reads and (write-allocate) writes must leave the line present.
		return c.Contains(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHitAfterFill(t *testing.T) {
	// Immediately re-accessing an address always hits, for any config.
	f := func(addr uint64, seed uint64) bool {
		cfg := l1Config()
		cfg.PlacementSeed = seed
		c := MustNew(cfg)
		addr %= 1 << 28
		c.Access(addr, false)
		return c.Access(addr, false).Hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetFitsCacheNoCapacityMisses(t *testing.T) {
	// A working set half the cache size, accessed repeatedly, must reach a
	// high steady-state hit rate despite random placement (some conflict
	// misses are expected — random placement trades conflict patterns for
	// probabilistic behaviour).
	// Random placement throws 512 lines into 256 four-way sets; some sets
	// exceed the associativity (balls into bins) and thrash under random
	// replacement, so the steady-state hit rate sits well below 1.0 even
	// at half capacity — that residual conflict-miss tail is exactly the
	// randomised behaviour MBPTA exploits.
	c := MustNew(l2Config()) // 32 KiB
	const ws = 16 * 1024
	for pass := 0; pass < 20; pass++ {
		for a := uint64(0); a < ws; a += 32 {
			c.Access(a, false)
		}
	}
	if hr := c.Stats().HitRate(); hr < 0.80 {
		t.Fatalf("steady-state hit rate %.3f for half-size working set, want ≥ 0.80", hr)
	}
}
