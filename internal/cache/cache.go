// Package cache implements the set-associative caches of the paper's MBPTA
// platform: random placement and random replacement (Hernandez et al.,
// DASIA 2015), so that hit/miss behaviour — and through it execution time —
// varies randomly from run to run with a known distribution, which is what
// lets measurement-based probabilistic timing analysis attach probabilities
// to execution-time bounds.
//
// Random placement is modelled as a seeded hash of the line address chosen
// anew for each run (a new placement seed), mirroring the hardware's
// parametric hash of the address with a random number drawn at boot. Random
// replacement picks a uniform victim way per miss from a seeded stream.
//
// Two configurations are used by the simulator: the private write-through,
// no-write-allocate L1 data cache, and the per-core partition of the shared
// write-back, write-allocate L2.
package cache

import (
	"fmt"

	"creditbus/internal/rng"
)

// Config describes one cache.
type Config struct {
	// Sets is the number of sets; must be a power of two.
	Sets int
	// Ways is the associativity.
	Ways int
	// LineBytes is the line size; must be a power of two.
	LineBytes int
	// WriteBack selects write-back (true, L2) or write-through (false, L1)
	// behaviour; write-through caches never hold dirty lines.
	WriteBack bool
	// AllocOnWrite selects write-allocate (true, L2) or
	// no-write-allocate (false, L1) miss handling for writes.
	AllocOnWrite bool
	// PlacementSeed parameterises the random-placement hash; a fresh seed
	// per run gives MBPTA its placement randomisation.
	PlacementSeed uint64
	// ReplacementSeed seeds the random-replacement victim stream.
	ReplacementSeed uint64
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: Sets = %d, need a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: Ways = %d, need > 0", c.Ways)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: LineBytes = %d, need a positive power of two", c.LineBytes)
	}
	return nil
}

// SizeBytes returns the cache capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// Result reports what an access did.
type Result struct {
	// Hit: the line was present.
	Hit bool
	// Filled: a line was allocated for this access.
	Filled bool
	// Evicted: the allocation displaced a valid line.
	Evicted bool
	// EvictedDirty: the displaced line was dirty (write-back of the victim
	// is required — the paper's 56-cycle miss case).
	EvictedDirty bool
	// EvictedAddr is the base address of the displaced line.
	EvictedAddr uint64
}

// Stats counts cache traffic.
type Stats struct {
	Reads          int64
	Writes         int64
	ReadHits       int64
	WriteHits      int64
	Fills          int64
	Evictions      int64
	DirtyEvictions int64
}

// HitRate returns hits over accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	acc := s.Reads + s.Writes
	if acc == 0 {
		return 0
	}
	return float64(s.ReadHits+s.WriteHits) / float64(acc)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// Cache is one set-associative randomised cache. Not safe for concurrent
// use.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	lines     []line // sets*ways, set-major
	repl      *rng.Stream
	stats     Stats
}

// New builds an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:     cfg,
		setMask: uint64(cfg.Sets - 1),
		lines:   make([]line, cfg.Sets*cfg.Ways),
		repl:    rng.New(cfg.ReplacementSeed),
	}
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		c.lineShift++
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// lineAddr strips the offset bits.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// setIndex is the random-placement hash: a SplitMix64-style mix of the line
// address and the placement seed, reduced to the set count. Different
// placement seeds send the same address stream to statistically independent
// set sequences — the property MBPTA's cache randomisation needs.
func (c *Cache) setIndex(la uint64) uint64 {
	z := la ^ c.cfg.PlacementSeed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z & c.setMask
}

func (c *Cache) set(la uint64) []line {
	s := c.setIndex(la)
	return c.lines[s*uint64(c.cfg.Ways) : (s+1)*uint64(c.cfg.Ways)]
}

// Contains probes for addr without changing any state.
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	for _, ln := range c.set(la) {
		if ln.valid && ln.tag == la {
			return true
		}
	}
	return false
}

// Access performs a read (write=false) or write (write=true) of addr and
// returns what happened. Misses allocate according to the configuration;
// random replacement picks the victim among valid ways (invalid ways fill
// first).
func (c *Cache) Access(addr uint64, write bool) Result {
	la := c.lineAddr(addr)
	set := c.set(la)
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}

	for i := range set {
		if set[i].valid && set[i].tag == la {
			if write {
				c.stats.WriteHits++
				if c.cfg.WriteBack {
					set[i].dirty = true
				}
			} else {
				c.stats.ReadHits++
			}
			return Result{Hit: true}
		}
	}

	// Miss. Writes only allocate in write-allocate caches.
	if write && !c.cfg.AllocOnWrite {
		return Result{}
	}

	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	var res Result
	res.Filled = true
	if victim == -1 {
		victim = c.repl.Intn(c.cfg.Ways)
		res.Evicted = true
		res.EvictedDirty = set[victim].dirty
		res.EvictedAddr = set[victim].tag << c.lineShift
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.DirtyEvictions++
		}
	}
	c.stats.Fills++
	set[victim] = line{tag: la, valid: true, dirty: write && c.cfg.WriteBack}
	return res
}

// Fill allocates addr's line without performing (or counting) an access:
// the L1 refill that happens when a load miss returns from the bus. If the
// line is already present it does nothing. Eviction information is reported
// exactly as for Access; the filled line is clean.
func (c *Cache) Fill(addr uint64) Result {
	la := c.lineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return Result{Hit: true}
		}
	}
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	var res Result
	res.Filled = true
	if victim == -1 {
		victim = c.repl.Intn(c.cfg.Ways)
		res.Evicted = true
		res.EvictedDirty = set[victim].dirty
		res.EvictedAddr = set[victim].tag << c.lineShift
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.DirtyEvictions++
		}
	}
	c.stats.Fills++
	set[victim] = line{tag: la, valid: true}
	return res
}

// Stats returns a copy of the traffic counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Reseed invalidates the whole cache and installs fresh placement and
// replacement seeds — the start-of-run randomisation of the MBPTA platform.
// It allocates nothing: the replacement stream is rearmed in place and the
// line array is cleared, so a reseeded cache is bit-identical to a freshly
// built one with the same configuration and seeds.
func (c *Cache) Reseed(placement, replacement uint64) {
	c.cfg.PlacementSeed = placement
	c.cfg.ReplacementSeed = replacement
	c.repl.Reseed(replacement)
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.stats = Stats{}
}

// Reuse reinitialises the cache in place for a new configuration — the
// machine-pooling path of start-of-run randomisation. The line array is
// recycled whenever the new geometry fits its capacity (campaigns rerun a
// fixed platform, so the steady state allocates nothing); a larger geometry
// grows it once. The result is bit-identical to New(cfg).
func (c *Cache) Reuse(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	want := cfg.Sets * cfg.Ways
	if cap(c.lines) >= want {
		c.lines = c.lines[:want]
		for i := range c.lines {
			c.lines[i] = line{}
		}
	} else {
		c.lines = make([]line, want)
	}
	c.cfg = cfg
	c.setMask = uint64(cfg.Sets - 1)
	c.lineShift = 0
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		c.lineShift++
	}
	c.repl.Reseed(cfg.ReplacementSeed)
	c.stats = Stats{}
	return nil
}
