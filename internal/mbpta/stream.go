package mbpta

import "fmt"

// Stream is a streaming block-maxima accumulator over a contiguous range of
// a global sample sequence — the online form of BlockMaxima that a sharded
// campaign folds shard by shard instead of collecting every execution time
// first. The state for the range [Start, Start+N) is a pure function of the
// ordered samples of that range, and Merge of two adjacent ranges is
// defined to equal the fold over their concatenation bit for bit, so any
// bracketing of adjacent merges — one process, two shards, eight — yields
// the identical maxima vector, and therefore the identical Gumbel fit.
//
// Block boundaries are anchored to GLOBAL sample indices (block b covers
// indices [b·Block, (b+1)·Block)), not to the range's own offset. A range
// starting mid-block therefore buffers its first samples raw (Head) until
// the first aligned boundary, accumulates full aligned blocks into Maxima,
// and keeps the trailing partial block raw (Tail). Both raw buffers hold
// fewer than Block samples, so the state is O(N/Block), which is what turns
// a 10⁸-sample collect-then-fit into a shardable constant-memory fold.
type Stream struct {
	// Block is the block-maxima size (B).
	Block int `json:"block"`
	// Start is the global index of the range's first sample.
	Start int64 `json:"start"`
	// N is the number of samples folded in.
	N int64 `json:"n"`
	// Head holds the samples before the first globally aligned block
	// boundary, raw (len < Block; empty when Start is aligned).
	Head []float64 `json:"head,omitempty"`
	// Maxima are the maxima of the fully contained aligned blocks.
	Maxima []float64 `json:"maxima,omitempty"`
	// Tail holds the samples after the last aligned boundary, raw
	// (len < Block).
	Tail []float64 `json:"tail,omitempty"`
}

// NewStream returns an empty accumulator for the range starting at global
// sample index start, with block-maxima size block (> 0).
func NewStream(block int, start int64) (*Stream, error) {
	if block <= 0 {
		return nil, fmt.Errorf("mbpta: stream block size %d", block)
	}
	if start < 0 {
		return nil, fmt.Errorf("mbpta: stream start %d", start)
	}
	return &Stream{Block: block, Start: start}, nil
}

// headTarget is the number of leading samples that precede the first
// aligned boundary (0 when Start is aligned).
func (s *Stream) headTarget() int64 {
	b := int64(s.Block)
	return (b - s.Start%b) % b
}

// Add folds the next sample of the range.
func (s *Stream) Add(x float64) {
	if s.N < s.headTarget() {
		s.Head = append(s.Head, x)
		s.N++
		return
	}
	s.Tail = append(s.Tail, x)
	s.N++
	if len(s.Tail) == s.Block {
		m := s.Tail[0]
		for _, v := range s.Tail[1:] {
			if v > m {
				m = v
			}
		}
		s.Maxima = append(s.Maxima, m)
		s.Tail = s.Tail[:0]
	}
}

// Merge folds the adjacent range o into s: o must start exactly where s
// ends and share the block size. After Merge, s covers the concatenated
// range and equals the fold of every sample in order — o's head samples are
// literally replayed through Add (there are fewer than Block of them), and
// o's aligned maxima and tail are spliced over, which is sound precisely
// because block boundaries are global.
func (s *Stream) Merge(o *Stream) error {
	if o == nil {
		return fmt.Errorf("mbpta: merge of nil stream")
	}
	if o.Block != s.Block {
		return fmt.Errorf("mbpta: merge of block sizes %d and %d", s.Block, o.Block)
	}
	if o.Start != s.Start+s.N {
		return fmt.Errorf("mbpta: merge of non-adjacent ranges: [%d,%d) then [%d,%d)",
			s.Start, s.Start+s.N, o.Start, o.Start+o.N)
	}
	for _, x := range o.Head {
		s.Add(x)
	}
	if len(o.Maxima) > 0 || len(o.Tail) > 0 {
		// o's first aligned boundary has been reached, so s must sit exactly
		// on it now: its head target consumed and its tail empty.
		if s.N < s.headTarget() || len(s.Tail) != 0 {
			return fmt.Errorf("mbpta: merge state mismatch at global index %d", s.Start+s.N)
		}
		s.Maxima = append(s.Maxima, o.Maxima...)
		s.Tail = append(s.Tail[:0], o.Tail...)
		s.N += o.N - int64(len(o.Head))
	}
	return nil
}

// FullMaxima returns the completed aligned block maxima. A trailing partial
// block (Tail) is excluded, matching BlockMaxima's bias rule; for a range
// starting at index 0 the head is empty and the result equals
// BlockMaxima(samples, Block) whenever at least two blocks completed.
func (s *Stream) FullMaxima() []float64 { return s.Maxima }

// Analyze runs the fit pipeline on the accumulated maxima: Gumbel fit over
// FullMaxima. Unlike Analyze, the raw samples are gone, so the IID
// diagnostics cannot be recomputed here; sharded campaigns that need them
// run CheckIID on a retained sample subset. It errors with fewer than 10
// maxima, exactly like FitGumbel.
func (s *Stream) Analyze() (Gumbel, error) {
	return FitGumbel(s.Maxima)
}
