// Package mbpta implements the Measurement-Based Probabilistic Timing
// Analysis pipeline the paper relies on for WCET estimation (Cucu-Grosjean
// et al., ECRTS 2012): collect execution times of the task under analysis
// on the randomised platform under maximum-contention conditions, check the
// samples are exchangeable enough for extreme value theory, fit a Gumbel
// distribution to block maxima, and read probabilistic WCET (pWCET)
// estimates off the fitted tail.
//
// The Gumbel fit uses probability-weighted moments (PWM) for a closed-form
// initial estimate, refined by maximum-likelihood fixed-point iteration —
// the standard combination for small samples. "MBPTA builds upon EVT, which
// keeps only the group of high execution times to predict the WCET" (§IV.B).
package mbpta

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// EulerGamma is the Euler–Mascheroni constant, the mean of the standard
// Gumbel distribution.
const EulerGamma = 0.5772156649015329

// Gumbel is a Gumbel (type-I extreme value) distribution for maxima.
type Gumbel struct {
	// Mu is the location parameter.
	Mu float64
	// Sigma is the scale parameter (> 0).
	Sigma float64
}

// CDF returns P(X ≤ x).
func (g Gumbel) CDF(x float64) float64 {
	return math.Exp(-math.Exp(-(x - g.Mu) / g.Sigma))
}

// Exceedance returns P(X > x).
func (g Gumbel) Exceedance(x float64) float64 { return 1 - g.CDF(x) }

// Quantile returns the value exceeded with probability 1-p:
// CDF(Quantile(p)) = p. It panics for p outside (0,1).
func (g Gumbel) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("mbpta: Quantile(%v) outside (0,1)", p))
	}
	return g.Mu - g.Sigma*math.Log(-math.Log(p))
}

// Mean returns the distribution mean.
func (g Gumbel) Mean() float64 { return g.Mu + g.Sigma*EulerGamma }

// BlockMaxima partitions xs into consecutive blocks of size block and
// returns each block's maximum. A trailing partial block is dropped (its
// maximum is biased low). It errors if fewer than two full blocks exist.
func BlockMaxima(xs []float64, block int) ([]float64, error) {
	if block <= 0 {
		return nil, fmt.Errorf("mbpta: block size %d", block)
	}
	n := len(xs) / block
	if n < 2 {
		return nil, fmt.Errorf("mbpta: %d samples yield %d blocks of %d; need ≥ 2",
			len(xs), n, block)
	}
	out := make([]float64, n)
	for b := 0; b < n; b++ {
		m := xs[b*block]
		for i := 1; i < block; i++ {
			if v := xs[b*block+i]; v > m {
				m = v
			}
		}
		out[b] = m
	}
	return out, nil
}

// FitGumbel estimates Gumbel parameters from maxima via PWM and refines
// them with up to 100 MLE fixed-point iterations. It errors on fewer than
// 10 maxima or on (near-)degenerate data.
func FitGumbel(maxima []float64) (Gumbel, error) {
	n := len(maxima)
	if n < 10 {
		return Gumbel{}, fmt.Errorf("mbpta: %d maxima, need ≥ 10", n)
	}
	sorted := append([]float64(nil), maxima...)
	sort.Float64s(sorted)

	// Probability-weighted moments b0 and b1 (unbiased estimators).
	var b0, b1 float64
	for i, x := range sorted {
		b0 += x
		b1 += float64(i) / float64(n-1) * x
	}
	b0 /= float64(n)
	b1 /= float64(n)

	sigma := (2*b1 - b0) / math.Ln2
	if sigma <= 0 || math.IsNaN(sigma) {
		return Gumbel{}, errors.New("mbpta: degenerate maxima (non-positive PWM scale)")
	}
	g := Gumbel{Mu: b0 - EulerGamma*sigma, Sigma: sigma}
	g = refineMLE(sorted, g)
	if g.Sigma <= 0 || math.IsNaN(g.Sigma) || math.IsNaN(g.Mu) {
		return Gumbel{}, errors.New("mbpta: MLE refinement diverged")
	}
	return g, nil
}

// refineMLE runs the classic Gumbel MLE fixed point:
//
//	σ ← mean(x) − Σ x·e^(−x/σ) / Σ e^(−x/σ)
//	μ = −σ·ln((1/n)·Σ e^(−x/σ))
//
// Values are centred on the sample mean before exponentiation for numeric
// stability.
func refineMLE(xs []float64, init Gumbel) Gumbel {
	n := float64(len(xs))
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= n

	sigma := init.Sigma
	for iter := 0; iter < 100; iter++ {
		var sumE, sumXE float64
		for _, x := range xs {
			e := math.Exp(-(x - mean) / sigma)
			sumE += e
			sumXE += x * e
		}
		next := mean - sumXE/sumE
		if next <= 0 || math.IsNaN(next) {
			return init // keep the PWM estimate
		}
		if math.Abs(next-sigma) < 1e-9*(1+sigma) {
			sigma = next
			break
		}
		sigma = next
	}
	var sumE float64
	for _, x := range xs {
		sumE += math.Exp(-(x - mean) / sigma)
	}
	mu := mean - sigma*math.Log(sumE/n)
	return Gumbel{Mu: mu, Sigma: sigma}
}

// Analysis is a fitted MBPTA model.
type Analysis struct {
	// Samples are the raw execution times, in collection order.
	Samples []float64
	// Block is the block-maxima size used.
	Block int
	// Maxima are the block maxima the fit used.
	Maxima []float64
	// Fit is the fitted Gumbel tail model.
	Fit Gumbel
	// IID is the exchangeability diagnostics report.
	IID IIDReport
}

// Analyze runs the full pipeline on execution-time samples with the given
// block size (20 is customary for ~1000-run campaigns). Samples must be
// finite: execution times are cycle counts, so a NaN or ±Inf can only be an
// upstream bug and is rejected up front rather than laundered through the
// fit (where an Inf could survive the PWM degeneracy checks and poison the
// reported quantiles).
func Analyze(samples []float64, block int) (Analysis, error) {
	for i, x := range samples {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Analysis{}, fmt.Errorf("mbpta: sample %d is %v; execution times must be finite", i, x)
		}
	}
	maxima, err := BlockMaxima(samples, block)
	if err != nil {
		return Analysis{}, err
	}
	fit, err := FitGumbel(maxima)
	if err != nil {
		return Analysis{}, err
	}
	return Analysis{
		Samples: samples,
		Block:   block,
		Maxima:  maxima,
		Fit:     fit,
		IID:     CheckIID(samples),
	}, nil
}

// PWCET returns the execution-time bound exceeded with probability p per
// run. The fitted Gumbel models per-block maxima, so the per-run target is
// converted to the per-block exceedance 1-(1-p)^Block before inverting the
// tail.
func (a Analysis) PWCET(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("mbpta: PWCET(%v) outside (0,1)", p))
	}
	pBlock := 1 - math.Pow(1-p, float64(a.Block))
	return a.Fit.Quantile(1 - pBlock)
}

// CurvePoint is one point of a pWCET exceedance curve.
type CurvePoint struct {
	// Prob is the per-run exceedance probability.
	Prob float64
	// WCET is the corresponding execution-time bound.
	WCET float64
}

// Curve evaluates the pWCET bound at the customary probability decades
// 10^-3 .. 10^-(2+n).
func (a Analysis) Curve(decades int) []CurvePoint {
	out := make([]CurvePoint, 0, decades)
	for d := 3; d < 3+decades; d++ {
		p := math.Pow(10, -float64(d))
		out = append(out, CurvePoint{Prob: p, WCET: a.PWCET(p)})
	}
	return out
}
