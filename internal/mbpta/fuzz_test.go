package mbpta

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzAnalyzeWCET drives the full MBPTA pipeline with arbitrary sample
// vectors — including NaN, ±Inf, denormals, negatives and adversarial
// magnitude mixes — and asserts the contract: Analyze never panics, rejects
// non-finite inputs with an error, and any successful fit is itself finite
// with a positive scale.
func FuzzAnalyzeWCET(f *testing.F) {
	seed := func(xs ...float64) []byte {
		b := make([]byte, 8*len(xs))
		for i, x := range xs {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
		}
		return b
	}
	f.Add(seed(1, 2, 3, 4, 5, 6, 7, 8), 2)
	f.Add(seed(100, 101, 99, 250, 103, 97, 104, 250, 96, 105), 1)
	f.Add(seed(math.NaN(), 1, 2, 3), 2)
	f.Add(seed(math.Inf(1), math.Inf(-1)), 1)
	f.Add(seed(), 20)
	f.Add(seed(1e308, 1e-308, -1e308, 0), 2)

	f.Fuzz(func(t *testing.T, raw []byte, block int) {
		samples := make([]float64, 0, len(raw)/8)
		nonFinite := false
		for i := 0; i+8 <= len(raw); i += 8 {
			x := math.Float64frombits(binary.LittleEndian.Uint64(raw[i:]))
			if math.IsNaN(x) || math.IsInf(x, 0) {
				nonFinite = true
			}
			samples = append(samples, x)
		}

		a, err := Analyze(samples, block) // must not panic, whatever the input
		if nonFinite && err == nil {
			t.Fatalf("Analyze accepted non-finite samples %v", samples)
		}
		if err != nil {
			return
		}
		if a.Fit.Sigma <= 0 || math.IsNaN(a.Fit.Sigma) || math.IsInf(a.Fit.Sigma, 0) ||
			math.IsNaN(a.Fit.Mu) || math.IsInf(a.Fit.Mu, 0) {
			t.Fatalf("Analyze returned a degenerate fit %+v for %v", a.Fit, samples)
		}
		// The tail must be usable: pWCET at the customary probabilities is
		// finite and monotone in the exceedance probability.
		p3, p6 := a.PWCET(1e-3), a.PWCET(1e-6)
		if math.IsNaN(p3) || math.IsNaN(p6) || p6 < p3 {
			t.Fatalf("pWCET curve broken: p3=%v p6=%v fit=%+v", p3, p6, a.Fit)
		}
	})
}
