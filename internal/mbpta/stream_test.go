package mbpta

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// foldStream folds xs[lo:hi] into a fresh accumulator anchored at global
// index lo.
func foldStream(t *testing.T, xs []float64, lo, hi, block int) *Stream {
	t.Helper()
	s, err := NewStream(block, int64(lo))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[lo:hi] {
		s.Add(x)
	}
	return s
}

// TestStreamMatchesBlockMaxima is merge ≡ collect-then-fit at one shard:
// the streamed maxima over a whole vector equal BlockMaxima's, and so does
// the fitted Gumbel.
func TestStreamMatchesBlockMaxima(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(1000 + r.Intn(100000))
	}
	for _, block := range []int{1, 3, 20, 100} {
		s := foldStream(t, xs, 0, len(xs), block)
		want, err := BlockMaxima(xs, block)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s.FullMaxima(), want) {
			t.Fatalf("block %d: streamed maxima diverge from BlockMaxima", block)
		}
		fitStream, err1 := s.Analyze()
		fitDirect, err2 := FitGumbel(want)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("block %d: fit errors diverge: %v vs %v", block, err1, err2)
		}
		if err1 == nil && fitStream != fitDirect {
			t.Fatalf("block %d: fits diverge: %+v vs %+v", block, fitStream, fitDirect)
		}
	}
}

// TestStreamShardMergeInvariance is the core sharding property: cut a
// random vector into contiguous ranges, fold each independently, merge
// adjacent states under a RANDOM bracketing (associativity), and demand the
// result equals the sequential single-range fold bit for bit — maxima,
// buffers, counters, everything.
func TestStreamShardMergeInvariance(t *testing.T) {
	prop := func(raw []uint16, seed int64) bool {
		if len(raw) < 2 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		block := 1 + r.Intn(8)
		want := foldStream(t, xs, 0, len(xs), block)

		// Random contiguous partition into k shards.
		k := 1 + r.Intn(min(6, len(xs)))
		cuts := map[int]bool{}
		for len(cuts) < k-1 {
			cuts[1+r.Intn(len(xs)-1)] = true
		}
		bounds := []int{0}
		for c := 1; c < len(xs); c++ {
			if cuts[c] {
				bounds = append(bounds, c)
			}
		}
		bounds = append(bounds, len(xs))
		states := make([]*Stream, 0, k)
		for i := 0; i+1 < len(bounds); i++ {
			states = append(states, foldStream(t, xs, bounds[i], bounds[i+1], block))
		}

		// Random bracketing: repeatedly merge a random adjacent pair.
		for len(states) > 1 {
			i := r.Intn(len(states) - 1)
			if err := states[i].Merge(states[i+1]); err != nil {
				t.Fatalf("merge: %v", err)
			}
			states = append(states[:i+1], states[i+2:]...)
		}
		got := states[0]
		return got.N == want.N && got.Start == want.Start &&
			reflect.DeepEqual(got.FullMaxima(), want.FullMaxima()) &&
			reflect.DeepEqual(normalize(got.Head), normalize(want.Head)) &&
			reflect.DeepEqual(normalize(got.Tail), normalize(want.Tail))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps nil and the empty slice to one form: the fold and the
// merge may legitimately leave one nil where the other holds len 0.
func normalize(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	return xs
}

// TestStreamMergeRejections pins the merge error cases: block mismatch,
// non-adjacent ranges, nil.
func TestStreamMergeRejections(t *testing.T) {
	a, _ := NewStream(4, 0)
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil merge must fail")
	}
	b, _ := NewStream(5, 0)
	if err := a.Merge(b); err == nil {
		t.Fatal("block mismatch must fail")
	}
	c, _ := NewStream(4, 3) // a covers [0,0), c starts at 3: a gap
	if err := a.Merge(c); err == nil {
		t.Fatal("non-adjacent merge must fail")
	}
	if _, err := NewStream(0, 0); err == nil {
		t.Fatal("block 0 must fail")
	}
	if _, err := NewStream(4, -1); err == nil {
		t.Fatal("negative start must fail")
	}
}

// TestStreamMidBlockBoundaries exercises head/tail handling when every
// shard boundary lands mid-block.
func TestStreamMidBlockBoundaries(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 0, 11, 13}
	const block = 5
	want := foldStream(t, xs, 0, len(xs), block)
	// Boundaries at 2, 7 and 9 — none aligned to 5.
	s0 := foldStream(t, xs, 0, 2, block)
	s1 := foldStream(t, xs, 2, 7, block)
	s2 := foldStream(t, xs, 7, 9, block)
	s3 := foldStream(t, xs, 9, len(xs), block)
	if err := s1.Merge(s2); err != nil {
		t.Fatal(err)
	}
	if err := s0.Merge(s1); err != nil {
		t.Fatal(err)
	}
	if err := s0.Merge(s3); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s0.FullMaxima(), want.FullMaxima()) {
		t.Fatalf("maxima %v, want %v", s0.FullMaxima(), want.FullMaxima())
	}
	if !reflect.DeepEqual(s0.FullMaxima(), []float64{9, 6}) {
		t.Fatalf("maxima %v, want [9 6]", s0.FullMaxima())
	}
	if got := normalize(s0.Tail); !reflect.DeepEqual(got, []float64{11, 13}) {
		t.Fatalf("tail %v, want [11 13]", got)
	}
}
