package mbpta

import (
	"math"
	"testing"
	"testing/quick"

	"creditbus/internal/rng"
)

// gumbelSample draws n values from Gumbel(mu, sigma) by inverse transform.
func gumbelSample(n int, mu, sigma float64, seed uint64) []float64 {
	src := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		u := src.Float64()
		for u == 0 {
			u = src.Float64()
		}
		out[i] = mu - sigma*math.Log(-math.Log(u))
	}
	return out
}

func TestGumbelCDFQuantileRoundTrip(t *testing.T) {
	g := Gumbel{Mu: 100, Sigma: 12}
	for _, p := range []float64{0.001, 0.1, 0.5, 0.9, 0.999999} {
		x := g.Quantile(p)
		if got := g.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if g.Exceedance(g.Quantile(0.9)) > 0.100001 || g.Exceedance(g.Quantile(0.9)) < 0.099999 {
		t.Error("Exceedance inconsistent with CDF")
	}
	if mean := g.Mean(); math.Abs(mean-(100+12*EulerGamma)) > 1e-9 {
		t.Errorf("Mean = %v", mean)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", p)
				}
			}()
			Gumbel{Mu: 0, Sigma: 1}.Quantile(p)
		}()
	}
}

func TestBlockMaxima(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 4, 9, 0}
	m, err := BlockMaxima(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 8, 4, 9}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("maxima = %v, want %v", m, want)
		}
	}
	// Trailing partial block {9, 0} dropped: blocks are {1,5,2} and {8,3,4}.
	m, err = BlockMaxima(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[0] != 5 || m[1] != 8 {
		t.Fatalf("maxima with block 3 = %v", m)
	}
}

func TestBlockMaximaErrors(t *testing.T) {
	if _, err := BlockMaxima([]float64{1, 2, 3}, 0); err == nil {
		t.Error("block 0 accepted")
	}
	if _, err := BlockMaxima([]float64{1, 2, 3}, 2); err == nil {
		t.Error("single full block accepted")
	}
}

func TestFitGumbelRecoversParameters(t *testing.T) {
	const mu, sigma = 250.0, 30.0
	xs := gumbelSample(5000, mu, sigma, 42)
	g, err := FitGumbel(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mu-mu) > 2 {
		t.Errorf("Mu = %.2f, want ≈ %v", g.Mu, mu)
	}
	if math.Abs(g.Sigma-sigma) > 2 {
		t.Errorf("Sigma = %.2f, want ≈ %v", g.Sigma, sigma)
	}
}

func TestFitGumbelErrors(t *testing.T) {
	if _, err := FitGumbel(make([]float64, 5)); err == nil {
		t.Error("too few maxima accepted")
	}
	flat := make([]float64, 50)
	for i := range flat {
		flat[i] = 7
	}
	if _, err := FitGumbel(flat); err == nil {
		t.Error("degenerate (constant) maxima accepted")
	}
}

func TestFitShiftScaleEquivariance(t *testing.T) {
	// Fitting a·x + b must give (a·σ, a·μ + b) — a property check of the
	// whole PWM+MLE pipeline.
	base := gumbelSample(2000, 50, 5, 7)
	g0, err := FitGumbel(base)
	if err != nil {
		t.Fatal(err)
	}
	f := func(scaleRaw, shiftRaw uint8) bool {
		a := 1 + float64(scaleRaw%50)/10 // 1.0 .. 5.9
		b := float64(shiftRaw) * 3
		xs := make([]float64, len(base))
		for i, x := range base {
			xs[i] = a*x + b
		}
		g, err := FitGumbel(xs)
		if err != nil {
			return false
		}
		return math.Abs(g.Sigma-a*g0.Sigma) < 0.02*a*g0.Sigma+1e-6 &&
			math.Abs(g.Mu-(a*g0.Mu+b)) < 0.02*(a*g0.Mu+b+1)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzePipeline(t *testing.T) {
	xs := gumbelSample(1000, 1000, 40, 11)
	a, err := Analyze(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Maxima) != 50 {
		t.Fatalf("maxima count = %d, want 50", len(a.Maxima))
	}
	if !a.IID.Pass() {
		t.Errorf("iid diagnostics failed on iid data: %+v", a.IID)
	}
	// pWCET must be monotone: rarer exceedance ⇒ larger bound.
	prev := 0.0
	for _, pt := range a.Curve(10) {
		if pt.WCET <= prev {
			t.Fatalf("pWCET curve not increasing: %+v", a.Curve(10))
		}
		prev = pt.WCET
	}
	// The 10^-3 bound must exceed the observed mean.
	if a.PWCET(1e-3) < 1000 {
		t.Errorf("pWCET(1e-3) = %.1f below the distribution mean", a.PWCET(1e-3))
	}
}

func TestPWCETBlockConversion(t *testing.T) {
	// With block b, the per-run bound at p must equal the per-block
	// quantile at 1-(1-p)^b.
	xs := gumbelSample(1000, 100, 10, 3)
	a, err := Analyze(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	p := 1e-6
	want := a.Fit.Quantile(1 - (1 - math.Pow(1-p, 20)))
	if got := a.PWCET(p); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PWCET = %v, want %v", got, want)
	}
}

func TestPWCETPanics(t *testing.T) {
	xs := gumbelSample(1000, 100, 10, 3)
	a, _ := Analyze(xs, 20)
	defer func() {
		if recover() == nil {
			t.Fatal("PWCET(0) did not panic")
		}
	}()
	a.PWCET(0)
}

func TestAutocorrelation(t *testing.T) {
	// A deterministic ramp is maximally autocorrelated.
	ramp := make([]float64, 200)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	if r := Autocorrelation(ramp, 1); r < 0.95 {
		t.Errorf("ramp lag-1 autocorrelation = %v, want ≈ 1", r)
	}
	// IID noise: near zero.
	noise := gumbelSample(2000, 0, 1, 9)
	if r := Autocorrelation(noise, 1); math.Abs(r) > 0.05 {
		t.Errorf("noise lag-1 autocorrelation = %v, want ≈ 0", r)
	}
	// Degenerate inputs.
	if Autocorrelation(nil, 1) != 0 || Autocorrelation([]float64{1, 1}, 1) != 0 {
		t.Error("degenerate autocorrelation not 0")
	}
	if Autocorrelation([]float64{1, 2, 3}, 0) != 0 {
		t.Error("lag 0 should return 0 (undefined by convention)")
	}
}

func TestKSTwoSample(t *testing.T) {
	// Identical samples: D = 0.
	a := []float64{1, 2, 3, 4, 5}
	if d := KSTwoSample(a, a); d != 0 {
		t.Errorf("KS of identical samples = %v", d)
	}
	// Disjoint samples: D = 1.
	b := []float64{10, 11, 12}
	if d := KSTwoSample(a, b); d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
	if KSTwoSample(nil, a) != 0 {
		t.Error("empty sample KS != 0")
	}
}

func TestCheckIIDDetectsTrend(t *testing.T) {
	// A strongly trending campaign (e.g. a warming cache across runs —
	// exactly what MBPTA forbids) must fail both diagnostics.
	trend := make([]float64, 400)
	src := rng.New(5)
	for i := range trend {
		trend[i] = float64(i) + src.Float64()
	}
	r := CheckIID(trend)
	if r.Lag1Pass {
		t.Errorf("trend passed lag-1 check: %+v", r)
	}
	if r.KSPass {
		t.Errorf("trend passed KS half-split check: %+v", r)
	}
	if r.Pass() {
		t.Error("trend passed overall")
	}
}

func TestCheckIIDPassesOnIID(t *testing.T) {
	r := CheckIID(gumbelSample(1000, 500, 25, 13))
	if !r.Pass() {
		t.Errorf("iid data failed diagnostics: %+v", r)
	}
}

func TestCheckIIDSmallSamples(t *testing.T) {
	// Must not panic or divide by zero on tiny inputs.
	for n := 0; n < 5; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
		}
		_ = CheckIID(xs)
	}
}
