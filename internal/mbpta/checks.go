package mbpta

import (
	"math"
	"sort"
)

// IIDReport summarises the exchangeability diagnostics MBPTA requires of
// its measurements: the randomised platform must make execution times
// behave like independent, identically distributed draws before EVT can be
// applied. These are the usual two screening tests — serial correlation and
// distributional stability across the campaign.
type IIDReport struct {
	// Lag1 is the lag-1 sample autocorrelation; near zero for independent
	// samples.
	Lag1 float64
	// Lag1Pass is true when |Lag1| is below the 95% normal band 1.96/√n.
	Lag1Pass bool
	// KS is the two-sample Kolmogorov–Smirnov statistic between the first
	// and second halves of the campaign.
	KS float64
	// KSPass is true when KS is below the α = 0.05 critical value — the
	// two halves look identically distributed.
	KSPass bool
}

// Pass reports whether both diagnostics pass.
func (r IIDReport) Pass() bool { return r.Lag1Pass && r.KSPass }

// Autocorrelation returns the lag-k sample autocorrelation of xs, or 0 when
// it is undefined (fewer than k+2 samples or zero variance).
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k <= 0 || n < k+2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+k < n {
			num += d * (xs[i+k] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// KSTwoSample returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_a(x) − F_b(x)|. It returns 0 when either sample is empty.
func KSTwoSample(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	for i < len(as) && j < len(bs) {
		var x float64
		if as[i] <= bs[j] {
			x = as[i]
		} else {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// ksCritical returns the α = 0.05 two-sample critical value
// c(α)·sqrt((n+m)/(n·m)) with c(0.05) = 1.358.
func ksCritical(n, m int) float64 {
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	return 1.358 * math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
}

// CheckIID runs both diagnostics on a measurement campaign.
func CheckIID(xs []float64) IIDReport {
	var r IIDReport
	n := len(xs)
	r.Lag1 = Autocorrelation(xs, 1)
	if n > 2 {
		r.Lag1Pass = math.Abs(r.Lag1) <= 1.96/math.Sqrt(float64(n))
	}
	half := n / 2
	if half > 0 {
		r.KS = KSTwoSample(xs[:half], xs[half:])
		r.KSPass = r.KS <= ksCritical(half, n-half)
	}
	return r
}
