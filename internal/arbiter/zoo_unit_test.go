package arbiter

import (
	"strings"
	"testing"
)

// The fairness zoo's contract-level details: names, constructor
// validation, and the out-of-range guards of the notification hooks. The
// behavioural properties live in the differential and scale-reference
// suites; this file pins the cheap surfaces those suites never touch.

func TestZooNames(t *testing.T) {
	for _, tc := range []struct {
		want string
		p    Policy
	}{
		{"PF", NewPropFair(4, nil, 0)},
		{"PF", newRefPropFair(4, nil, 0)},
		{"GWF", NewGWF(4, nil)},
		{"GWF", newRefGWF(4, nil)},
		{"MTS", NewMTS(4, nil, nil)},
		{"MTS", newRefMTS(4, nil, nil)},
	} {
		if got := tc.p.Name(); got != tc.want {
			t.Errorf("%T.Name() = %q, want %q", tc.p, got, tc.want)
		}
	}
}

func TestDefaultTimescales(t *testing.T) {
	ts := DefaultTimescales()
	if len(ts) == 0 {
		t.Fatal("DefaultTimescales is empty")
	}
	for i, s := range ts {
		if s.Num < 1 || s.Den < 1 || s.Depth < 1 {
			t.Errorf("timescale %d = %+v: fields must be ≥ 1", i, s)
		}
	}
	// Callers may mutate the returned slice; the defaults must not change.
	ts[0].Den = 9999
	if again := DefaultTimescales(); again[0].Den == 9999 {
		t.Error("DefaultTimescales returns a shared slice")
	}
}

func TestZooConstructorPanics(t *testing.T) {
	cases := []struct {
		name, want string
		build      func()
	}{
		{"pf-n", "needs n > 0", func() { NewPropFair(0, nil, 0) }},
		{"pf-shift", "outside [1,30]", func() { NewPropFair(4, nil, 31) }},
		{"pf-weight-len", "got 2 weights for 4 masters", func() { NewPropFair(4, []int64{1, 2}, 0) }},
		{"pf-weight-zero", "need ≥ 1", func() { NewPropFair(2, []int64{1, 0}, 0) }},
		{"gwf-n", "needs n > 0", func() { NewGWF(-1, nil) }},
		{"gwf-weight-neg", "need ≥ 1", func() { NewGWF(2, []int64{-3, 1}) }},
		{"mts-n", "needs n > 0", func() { NewMTS(0, nil, nil) }},
		{"mts-empty", "at least one timescale", func() { NewMTS(4, nil, []Timescale{}) }},
		{"mts-bad-scale", "Num/Den/Depth ≥ 1", func() { NewMTS(4, nil, []Timescale{{Num: 1, Den: 0, Depth: 1}}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, tc.want) {
					t.Fatalf("panic %v does not mention %q", r, tc.want)
				}
			}()
			tc.build()
		})
	}
}

// TestZooHookGuards drives the no-op and out-of-range paths of the
// notification hooks: a master index outside [0, n) must be ignored, and
// the rate-based policies' OnRequest must not disturb subsequent picks.
func TestZooHookGuards(t *testing.T) {
	policies := []Policy{
		NewPropFair(4, nil, 0),
		newRefPropFair(4, nil, 0),
		NewGWF(4, nil),
		newRefGWF(4, nil),
		NewMTS(4, nil, nil),
		newRefMTS(4, nil, nil),
	}
	eligible := []bool{true, true, true, true}
	for _, p := range policies {
		for _, m := range []int{-1, 4, 1000} {
			p.OnRequest(m, 0)
			p.OnGrant(m, 0)
		}
		p.OnRequest(2, 0)
		got, ok := p.Pick(eligible, 0)
		if !ok {
			t.Errorf("%s (%T): no pick from a fully eligible set", p.Name(), p)
		}
		if got < 0 || got > 3 {
			t.Errorf("%s (%T): picked out-of-range master %d", p.Name(), p, got)
		}
	}
}
