package arbiter

import "creditbus/internal/bitset"

// RoundRobin grants masters in rotating-priority order: after a grant to
// master m, master m+1 (mod N) has the highest priority. With all masters
// constantly requesting, it is slot-fair: each master receives the same
// number of grants, regardless of how long each grant occupies the bus —
// exactly the behaviour the paper's §II illustrative example shows to be
// bandwidth-unfair.
type RoundRobin struct {
	n       int
	next    int
	scratch bitset.Set
}

// NewRoundRobin builds a round-robin policy over n masters.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 {
		panic("arbiter: RoundRobin needs n > 0")
	}
	return &RoundRobin{n: n, scratch: bitset.New(n)}
}

// Name implements Policy.
func (r *RoundRobin) Name() string { return "RR" }

// OnRequest implements Policy; round-robin keeps no arrival state.
func (r *RoundRobin) OnRequest(int, int64) {}

// Pick scans from the current priority pointer for the first eligible master.
func (r *RoundRobin) Pick(eligible []bool, cycle int64) (int, bool) {
	return r.PickBits(fillBits(r.scratch, eligible, r.n), cycle)
}

// PickBits implements BitPicker: the first set bit at or after the priority
// pointer, wrapping to the lowest set bit — the rotating scan, in two
// word-level probes.
func (r *RoundRobin) PickBits(eligible bitset.Set, _ int64) (int, bool) {
	if m := eligible.NextFrom(r.next); m >= 0 {
		return m, true
	}
	if m := eligible.First(); m >= 0 {
		return m, true
	}
	return 0, false
}

// OnGrant rotates priority past the granted master.
func (r *RoundRobin) OnGrant(m int, _ int64) { r.next = (m + 1) % r.n }

// Reset implements Policy.
func (r *RoundRobin) Reset() { r.next = 0 }
