package arbiter

// RoundRobin grants masters in rotating-priority order: after a grant to
// master m, master m+1 (mod N) has the highest priority. With all masters
// constantly requesting, it is slot-fair: each master receives the same
// number of grants, regardless of how long each grant occupies the bus —
// exactly the behaviour the paper's §II illustrative example shows to be
// bandwidth-unfair.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin builds a round-robin policy over n masters.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 {
		panic("arbiter: RoundRobin needs n > 0")
	}
	return &RoundRobin{n: n}
}

// Name implements Policy.
func (r *RoundRobin) Name() string { return "RR" }

// OnRequest implements Policy; round-robin keeps no arrival state.
func (r *RoundRobin) OnRequest(int, int64) {}

// Pick scans from the current priority pointer for the first eligible master.
func (r *RoundRobin) Pick(eligible []bool, _ int64) (int, bool) {
	for i := 0; i < r.n; i++ {
		m := (r.next + i) % r.n
		if m < len(eligible) && eligible[m] {
			return m, true
		}
	}
	return 0, false
}

// OnGrant rotates priority past the granted master.
func (r *RoundRobin) OnGrant(m int, _ int64) { r.next = (m + 1) % r.n }

// Reset implements Policy.
func (r *RoundRobin) Reset() { r.next = 0 }
