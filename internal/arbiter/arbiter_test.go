package arbiter

import (
	"math"
	"testing"
	"testing/quick"
)

// allEligible returns a mask with n masters all eligible.
func allEligible(n int) []bool {
	e := make([]bool, n)
	for i := range e {
		e[i] = true
	}
	return e
}

// policies under test, constructed fresh for table-driven contract tests.
func testPolicies(n int) []Policy {
	return []Policy{
		NewRoundRobin(n),
		NewFIFO(n),
		NewTDMA(n, 4),
		NewLottery(n, nil, 1),
		NewRandomPermutation(n, 1),
		NewFixedPriority(n),
	}
}

func TestPolicyContractPicksOnlyEligible(t *testing.T) {
	const n = 4
	for _, p := range testPolicies(n) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			// Exhaustively try every eligibility mask over many cycles;
			// the policy must never pick an ineligible master.
			for cycle := int64(0); cycle < 200; cycle++ {
				mask := int(cycle) % 16
				e := make([]bool, n)
				for i := 0; i < n; i++ {
					e[i] = mask>>uint(i)&1 == 1
				}
				if m, ok := p.Pick(e, cycle); ok {
					if m < 0 || m >= n || !e[m] {
						t.Fatalf("%s picked ineligible master %d with mask %v", p.Name(), m, e)
					}
					p.OnGrant(m, cycle)
				}
			}
		})
	}
}

func TestPolicyContractEmptyMask(t *testing.T) {
	const n = 4
	for _, p := range testPolicies(n) {
		if m, ok := p.Pick(make([]bool, n), 0); ok {
			t.Fatalf("%s picked %d from empty mask", p.Name(), m)
		}
	}
}

func TestWorkConservingPoliciesAlwaysPick(t *testing.T) {
	// All policies except TDMA must pick whenever someone is eligible.
	const n = 4
	for _, p := range testPolicies(n) {
		if p.Name() == "TDMA" {
			continue
		}
		for cycle := int64(0); cycle < 100; cycle++ {
			e := make([]bool, n)
			e[int(cycle)%n] = true
			m, ok := p.Pick(e, cycle)
			if !ok {
				t.Fatalf("%s left bus idle with eligible master at cycle %d", p.Name(), cycle)
			}
			p.OnGrant(m, cycle)
		}
	}
}

func TestRoundRobinRotation(t *testing.T) {
	rr := NewRoundRobin(4)
	e := allEligible(4)
	var got []int
	for cycle := int64(0); cycle < 8; cycle++ {
		m, ok := rr.Pick(e, cycle)
		if !ok {
			t.Fatal("round robin did not pick")
		}
		rr.OnGrant(m, cycle)
		got = append(got, m)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsIdleMasters(t *testing.T) {
	rr := NewRoundRobin(4)
	e := []bool{false, false, true, false}
	m, ok := rr.Pick(e, 0)
	if !ok || m != 2 {
		t.Fatalf("pick = %d,%v, want 2,true", m, ok)
	}
	rr.OnGrant(m, 0)
	// After granting 2, priority moves to 3.
	e = []bool{true, false, false, true}
	m, ok = rr.Pick(e, 1)
	if !ok || m != 3 {
		t.Fatalf("pick after rotation = %d,%v, want 3,true", m, ok)
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(3)
	f.OnRequest(2, 10)
	f.OnRequest(0, 12)
	f.OnRequest(1, 11)
	e := allEligible(3)
	want := []int{2, 1, 0}
	for i, w := range want {
		m, ok := f.Pick(e, 20)
		if !ok || m != w {
			t.Fatalf("grant %d = %d,%v, want %d", i, m, ok, w)
		}
		f.OnGrant(m, 20)
		e[m] = false
	}
}

func TestFIFOTieBreaksByIndex(t *testing.T) {
	f := NewFIFO(3)
	f.OnRequest(2, 5)
	f.OnRequest(1, 5)
	m, ok := f.Pick(allEligible(3), 6)
	if !ok || m != 1 {
		t.Fatalf("tie break pick = %d,%v, want 1,true", m, ok)
	}
}

func TestTDMASlotDiscipline(t *testing.T) {
	td := NewTDMA(4, 56)
	e := allEligible(4)
	// Only slot-start cycles may grant; owner rotates every 56 cycles.
	for cycle := int64(0); cycle < 4*56; cycle++ {
		m, ok := td.Pick(e, cycle)
		if cycle%56 != 0 {
			if ok {
				t.Fatalf("TDMA granted %d mid-slot at cycle %d", m, cycle)
			}
			continue
		}
		wantOwner := int(cycle / 56 % 4)
		if !ok || m != wantOwner {
			t.Fatalf("cycle %d: grant = %d,%v, want owner %d", cycle, m, ok, wantOwner)
		}
	}
}

func TestTDMAIdleWhenOwnerSilent(t *testing.T) {
	td := NewTDMA(2, 10)
	e := []bool{false, true} // only master 1 requests
	if _, ok := td.Pick(e, 0); ok {
		t.Fatal("TDMA granted a slot to a non-owner")
	}
	m, ok := td.Pick(e, 10)
	if !ok || m != 1 {
		t.Fatalf("owner slot: %d,%v, want 1,true", m, ok)
	}
}

func TestLotteryRespectssTickets(t *testing.T) {
	// 3:1 tickets should give ~75%/25% of grants under full contention.
	l := NewLottery(2, []int64{3, 1}, 7)
	e := allEligible(2)
	counts := [2]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		m, ok := l.Pick(e, int64(i))
		if !ok {
			t.Fatal("lottery did not pick")
		}
		counts[m]++
	}
	frac := float64(counts[0]) / draws
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("master 0 won %.3f of draws, want ~0.75", frac)
	}
}

func TestLotterySlotFairEqualTickets(t *testing.T) {
	l := NewLottery(4, nil, 3)
	e := allEligible(4)
	counts := make([]int, 4)
	const draws = 40000
	for i := 0; i < draws; i++ {
		m, _ := l.Pick(e, int64(i))
		counts[m]++
	}
	for m, c := range counts {
		if frac := float64(c) / draws; math.Abs(frac-0.25) > 0.01 {
			t.Fatalf("master %d share %.3f, want ~0.25", m, frac)
		}
	}
}

func TestLotteryReproducible(t *testing.T) {
	a := NewLottery(4, nil, 11)
	b := NewLottery(4, nil, 11)
	e := allEligible(4)
	for i := int64(0); i < 1000; i++ {
		ma, _ := a.Pick(e, i)
		mb, _ := b.Pick(e, i)
		if ma != mb {
			t.Fatalf("same-seed lotteries diverged at %d", i)
		}
	}
}

func TestLotteryValidation(t *testing.T) {
	for _, tc := range []struct {
		n       int
		tickets []int64
	}{
		{0, nil}, {2, []int64{1}}, {2, []int64{1, 0}}, {2, []int64{1, -2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewLottery(%d,%v) did not panic", tc.n, tc.tickets)
				}
			}()
			NewLottery(tc.n, tc.tickets, 1)
		}()
	}
}

func TestRandomPermutationOncePerRound(t *testing.T) {
	// Under full contention, any window of N consecutive grants contains
	// each master exactly once.
	const n = 4
	p := NewRandomPermutation(n, 5)
	e := allEligible(n)
	var grants []int
	for i := int64(0); i < 400; i++ {
		m, ok := p.Pick(e, i)
		if !ok {
			t.Fatal("RP did not pick under full contention")
		}
		p.OnGrant(m, i)
		grants = append(grants, m)
	}
	for w := 0; w+n <= len(grants); w += n {
		seen := map[int]bool{}
		for _, m := range grants[w : w+n] {
			if seen[m] {
				t.Fatalf("round %d repeated master %d: %v", w/n, m, grants[w:w+n])
			}
			seen[m] = true
		}
	}
}

func TestRandomPermutationUniformPosition(t *testing.T) {
	// Under full contention, each master's position within a round is
	// uniform over 0..3 — the property MBPTA relies on.
	const n = 4
	p := NewRandomPermutation(n, 9)
	e := allEligible(n)
	posCounts := [n][n]int{}
	const rounds = 10000
	for r := 0; r < rounds; r++ {
		for pos := 0; pos < n; pos++ {
			m, _ := p.Pick(e, int64(r*n+pos))
			p.OnGrant(m, int64(r*n+pos))
			posCounts[m][pos]++
		}
	}
	for m := 0; m < n; m++ {
		for pos := 0; pos < n; pos++ {
			frac := float64(posCounts[m][pos]) / rounds
			if math.Abs(frac-0.25) > 0.025 {
				t.Fatalf("master %d at position %d with frequency %.3f, want ~0.25", m, pos, frac)
			}
		}
	}
}

func TestRandomPermutationWorkConservingAfterRoundExhaustion(t *testing.T) {
	// Master 0 alone requests continuously: it must be granted every
	// arbitration even though each round only owes it one grant.
	p := NewRandomPermutation(4, 13)
	e := []bool{true, false, false, false}
	for i := int64(0); i < 100; i++ {
		m, ok := p.Pick(e, i)
		if !ok || m != 0 {
			t.Fatalf("cycle %d: %d,%v, want 0,true", i, m, ok)
		}
		p.OnGrant(m, i)
	}
}

func TestFixedPriorityStarvation(t *testing.T) {
	// With master 0 always requesting, lower-priority masters never win:
	// the §II argument for why priorities are unusable here.
	p := NewFixedPriority(3)
	e := allEligible(3)
	for i := int64(0); i < 100; i++ {
		m, ok := p.Pick(e, i)
		if !ok || m != 0 {
			t.Fatalf("fixed priority granted %d, want 0", m)
		}
		p.OnGrant(m, i)
	}
}

func TestResetRestoresInitialBehaviour(t *testing.T) {
	for _, mk := range []func() Policy{
		func() Policy { return NewRoundRobin(4) },
		func() Policy { return NewLottery(4, nil, 21) },
		func() Policy { return NewRandomPermutation(4, 21) },
		func() Policy { return NewFIFO(4) },
	} {
		p := mk()
		e := allEligible(4)
		var first []int
		for i := int64(0); i < 50; i++ {
			m, _ := p.Pick(e, i)
			p.OnGrant(m, i)
			first = append(first, m)
		}
		p.Reset()
		for i := int64(0); i < 50; i++ {
			m, _ := p.Pick(e, i)
			p.OnGrant(m, i)
			if m != first[i] {
				t.Fatalf("%s: post-Reset grant %d = %d, want %d", p.Name(), i, m, first[i])
			}
		}
	}
}

func TestConstructorsValidate(t *testing.T) {
	cases := []func(){
		func() { NewRoundRobin(0) },
		func() { NewFIFO(0) },
		func() { NewTDMA(0, 5) },
		func() { NewTDMA(4, 0) },
		func() { NewRandomPermutation(0, 1) },
		func() { NewFixedPriority(0) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("constructor case %d did not panic", i)
				}
			}()
			c()
		}()
	}
}

func TestQuickPolicyNeverPicksIneligible(t *testing.T) {
	pols := testPolicies(8)
	f := func(mask uint8, cycle uint16) bool {
		e := make([]bool, 8)
		for i := 0; i < 8; i++ {
			e[i] = mask>>uint(i)&1 == 1
		}
		for _, p := range pols {
			if m, ok := p.Pick(e, int64(cycle)); ok {
				if m < 0 || m >= 8 || !e[m] {
					return false
				}
				p.OnGrant(m, int64(cycle))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
