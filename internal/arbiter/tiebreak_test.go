package arbiter

import (
	"testing"
	"testing/quick"
)

// This file pins the tie-breaking order of every policy — who wins when
// several masters are simultaneously eligible — and the Scheduler contract
// at slot-boundary horizon edges (the TDMA push path the event-horizon
// engine relies on). The generic contract tests in arbiter_test.go check
// that picks are legal; these check that they are the *documented* ones.

func TestRoundRobinTieBreakFollowsPriorityPointer(t *testing.T) {
	rr := NewRoundRobin(4)
	// Fresh policy: pointer at 0, so 0 beats every simultaneous rival.
	if m, ok := rr.Pick(allEligible(4), 0); !ok || m != 0 {
		t.Fatalf("fresh pick = %d,%v, want 0", m, ok)
	}
	// After a grant to m, m+1 outranks everyone — including m itself.
	for _, grant := range []int{2, 3, 0} {
		rr.OnGrant(grant, 0)
		want := (grant + 1) % 4
		if m, ok := rr.Pick(allEligible(4), 0); !ok || m != want {
			t.Fatalf("after grant to %d: pick = %d,%v, want %d", grant, m, ok, want)
		}
	}
	// The scan wraps: pointer at 3 with only masters 0 and 2 eligible picks
	// 0 (first from 3 going 3→0→1→2).
	rr.OnGrant(2, 0) // pointer = 3
	if m, ok := rr.Pick([]bool{true, false, true, false}, 0); !ok || m != 0 {
		t.Fatalf("wrap-around pick = %d,%v, want 0", m, ok)
	}
}

func TestFixedPriorityTieBreakIsIndexOrder(t *testing.T) {
	p := NewFixedPriority(5)
	for lowest := 0; lowest < 5; lowest++ {
		e := make([]bool, 5)
		for m := lowest; m < 5; m++ {
			e[m] = true
		}
		if m, ok := p.Pick(e, 0); !ok || m != lowest {
			t.Fatalf("eligible {%d..4}: pick = %d,%v, want %d", lowest, m, ok, lowest)
		}
		// Grants never shift fixed priorities.
		p.OnGrant(4, 0)
	}
}

func TestFIFOThreeWayTieBreaksByIndexNotCallOrder(t *testing.T) {
	f := NewFIFO(4)
	// Same arrival cycle recorded in descending master order: the pick order
	// must still be ascending master index, then the later arrival.
	f.OnRequest(3, 10)
	f.OnRequest(1, 10)
	f.OnRequest(2, 10)
	f.OnRequest(0, 11)
	e := allEligible(4)
	for _, want := range []int{1, 2, 3, 0} {
		m, ok := f.Pick(e, 12)
		if !ok || m != want {
			t.Fatalf("pick = %d,%v, want %d", m, ok, want)
		}
		f.OnGrant(m, 12)
		e[m] = false
	}
}

func TestLotterySingleEligibleIgnoresTickets(t *testing.T) {
	// With one competitor the draw is forced, whatever the weights — and it
	// must still consume deterministic rng so same-seed runs stay aligned.
	a := NewLottery(3, []int64{1, 1000, 1}, 5)
	b := NewLottery(3, []int64{1, 1000, 1}, 5)
	for i := int64(0); i < 50; i++ {
		only := int(i) % 3
		e := make([]bool, 3)
		e[only] = true
		ma, ok := a.Pick(e, i)
		if !ok || ma != only {
			t.Fatalf("single eligible %d: pick = %d,%v", only, ma, ok)
		}
		if mb, _ := b.Pick(e, i); mb != ma {
			t.Fatal("same-seed lotteries diverged on forced picks")
		}
	}
}

func TestRandomPermutationTieBreakIsPermutationOrder(t *testing.T) {
	// Within a round, the winner among simultaneous rivals is the one
	// earliest in the drawn permutation: grant the full round under full
	// contention, then replay the same seed pairwise — every pairwise pick
	// must match the full-round order.
	const n = 4
	p := NewRandomPermutation(n, 17)
	order := make([]int, 0, n)
	e := allEligible(n)
	for i := 0; i < n; i++ {
		m, ok := p.Pick(e, int64(i))
		if !ok {
			t.Fatal("no pick under full contention")
		}
		p.OnGrant(m, int64(i))
		order = append(order, m)
	}
	q := NewRandomPermutation(n, 17)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e := make([]bool, n)
			e[order[i]], e[order[j]] = true, true
			if m, ok := q.Pick(e, 0); !ok || m != order[i] {
				t.Fatalf("pair {%d,%d}: pick = %d,%v, want %d (round order %v)",
					order[i], order[j], m, ok, order[i], order)
			}
			// No grant: the round state must not advance on a mere pick.
		}
	}
}

func TestTDMANextPickCycleHorizonEdges(t *testing.T) {
	td := NewTDMA(4, 56)
	cases := []struct {
		from, want int64
	}{
		{-5, 0},            // pre-history clamps to the first slot
		{0, 0},             // already on a boundary: no push
		{1, 56},            // just past a boundary: full wait
		{55, 56},           // last cycle of a slot
		{56, 56},           // exactly the next boundary
		{57, 112},          // one past it
		{4 * 56, 4 * 56},   // rotation wrap boundary
		{4*56 + 1, 5 * 56}, // and just past the wrap
	}
	for _, c := range cases {
		if got := td.NextPickCycle(c.from); got != c.want {
			t.Errorf("NextPickCycle(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

// TestTDMASchedulerContract is the property the event-horizon engine relies
// on: between from and NextPickCycle(from) the policy leaves the bus idle
// (so those cycles can be skipped in bulk), and at the returned cycle the
// slot owner is grantable.
func TestTDMASchedulerContract(t *testing.T) {
	f := func(slotSel uint8, fromRaw uint16) bool {
		slotLen := int64(slotSel%13) + 1
		td := NewTDMA(3, slotLen)
		from := int64(fromRaw)
		next := td.NextPickCycle(from)
		if next < from {
			return false
		}
		e := allEligible(3)
		// Every strictly earlier cycle ≥ from must refuse to pick…
		for c := from; c < next; c++ {
			if _, ok := td.Pick(e, c); ok {
				return false
			}
		}
		// …and the boundary itself must grant its owner.
		m, ok := td.Pick(e, next)
		return ok && m == td.SlotOwner(next) && td.SlotStart(next)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTDMAOwnerUnchangedWithinSlot(t *testing.T) {
	td := NewTDMA(4, 7)
	for cycle := int64(0); cycle < 4*7*2; cycle++ {
		want := int((cycle / 7) % 4)
		if got := td.SlotOwner(cycle); got != want {
			t.Fatalf("SlotOwner(%d) = %d, want %d", cycle, got, want)
		}
		if td.SlotStart(cycle) != (cycle%7 == 0) {
			t.Fatalf("SlotStart(%d) wrong", cycle)
		}
	}
}
