package arbiter

import (
	"math/bits"

	"creditbus/internal/bitset"
)

// FIFO grants requests in arrival order. Ties (requests becoming arbitrable
// on the same cycle) are broken by master index, which models the fixed
// position of masters on the request wires.
type FIFO struct {
	n       int
	arrival []int64 // arrival cycle per master; -1 when no request recorded
	scratch bitset.Set
}

// NewFIFO builds a FIFO policy over n masters.
func NewFIFO(n int) *FIFO {
	if n <= 0 {
		panic("arbiter: FIFO needs n > 0")
	}
	f := &FIFO{n: n, arrival: make([]int64, n), scratch: bitset.New(n)}
	f.Reset()
	return f
}

// Name implements Policy.
func (f *FIFO) Name() string { return "FIFO" }

// OnRequest records the arrival cycle of m's request.
func (f *FIFO) OnRequest(m int, cycle int64) {
	if m >= 0 && m < f.n {
		f.arrival[m] = cycle
	}
}

// Pick grants the eligible master with the oldest recorded arrival.
func (f *FIFO) Pick(eligible []bool, cycle int64) (int, bool) {
	return f.PickBits(fillBits(f.scratch, eligible, f.n), cycle)
}

// PickBits implements BitPicker: minimum arrival over the set bits, visited
// in ascending master order so equal arrivals break toward the lower index
// exactly as the reference scan does (strict < keeps the first minimum).
func (f *FIFO) PickBits(eligible bitset.Set, _ int64) (int, bool) {
	best, bestAt := -1, int64(0)
	for w, word := range eligible {
		for word != 0 {
			m := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			at := f.arrival[m]
			if at < 0 {
				// Eligible but no arrival recorded (e.g. policy attached
				// mid-run); treat as arriving now so it still gets served.
				at = 1<<62 - 1
			}
			if best == -1 || at < bestAt {
				best, bestAt = m, at
			}
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}

// OnGrant clears the granted master's arrival record.
func (f *FIFO) OnGrant(m int, _ int64) {
	if m >= 0 && m < f.n {
		f.arrival[m] = -1
	}
}

// Reset implements Policy.
func (f *FIFO) Reset() {
	for i := range f.arrival {
		f.arrival[i] = -1
	}
}
