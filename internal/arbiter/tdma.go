package arbiter

import "creditbus/internal/bitset"

// TDMA divides time into fixed slots of SlotLen cycles, one per master, in a
// fixed rotation. Following the paper's §II discussion, a request may only be
// issued during the first cycle of its owner's slot: because request duration
// is unknown a priori (hit vs miss, dirty eviction, ...), granting later in
// the slot could overrun into the next owner's slot and destroy the time
// composability TDMA exists to provide. A slot whose owner has nothing to
// issue — or whose owner's request arrived after the slot's first cycle —
// stays idle.
//
// SlotLen is normally MaxL, the worst-case bus hold time.
type TDMA struct {
	n       int
	slotLen int64
}

// NewTDMA builds a TDMA policy over n masters with slots of slotLen cycles.
func NewTDMA(n int, slotLen int64) *TDMA {
	if n <= 0 || slotLen <= 0 {
		panic("arbiter: TDMA needs n > 0 and slotLen > 0")
	}
	return &TDMA{n: n, slotLen: slotLen}
}

// Name implements Policy.
func (t *TDMA) Name() string { return "TDMA" }

// OnRequest implements Policy; TDMA is oblivious to arrivals.
func (t *TDMA) OnRequest(int, int64) {}

// SlotOwner returns the master owning the slot containing cycle.
func (t *TDMA) SlotOwner(cycle int64) int {
	if cycle < 0 {
		cycle = 0
	}
	return int((cycle / t.slotLen) % int64(t.n))
}

// SlotStart reports whether cycle is the first cycle of a slot.
func (t *TDMA) SlotStart(cycle int64) bool { return cycle%t.slotLen == 0 }

// Pick grants the slot owner, and only on the slot's first cycle.
func (t *TDMA) Pick(eligible []bool, cycle int64) (int, bool) {
	if !t.SlotStart(cycle) {
		return 0, false
	}
	owner := t.SlotOwner(cycle)
	if owner < len(eligible) && eligible[owner] {
		return owner, true
	}
	return 0, false
}

// PickBits implements BitPicker: one bit test of the slot owner — TDMA
// arbitration is O(1) at any master count.
func (t *TDMA) PickBits(eligible bitset.Set, cycle int64) (int, bool) {
	if !t.SlotStart(cycle) {
		return 0, false
	}
	if owner := t.SlotOwner(cycle); eligible.Test(owner) {
		return owner, true
	}
	return 0, false
}

// NextPickCycle implements Scheduler: grants happen only on slot-start
// cycles, so the earliest possible pick at or after from is the next slot
// boundary.
func (t *TDMA) NextPickCycle(from int64) int64 {
	if from < 0 {
		return 0
	}
	if rem := from % t.slotLen; rem != 0 {
		return from + t.slotLen - rem
	}
	return from
}

// OnGrant implements Policy; TDMA keeps no grant state.
func (t *TDMA) OnGrant(int, int64) {}

// Reset implements Policy; TDMA is stateless beyond the cycle counter it is
// handed, so there is nothing to reset.
func (t *TDMA) Reset() {}
