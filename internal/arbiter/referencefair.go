package arbiter

import "math/bits"

// This file holds the linear-scan reference twins of the fairness-policy
// zoo (propfair.go, gwf.go, mts.go), in the same role reference.go plays
// for the original six policies: unexported models whose sole consumer is
// the differential suite (scaleref_test.go), which drives each exported
// bitset policy pick-for-pick against its twin at every core count. The
// fixed-point and token arithmetic is deliberately shared logic written
// twice — any divergence in lazy catch-up scheduling, truncation order or
// tie-breaking between the word-mask path and the plain scan fails the
// suite loudly.

// refPropFair is the linear-scan proportional-fair policy.
type refPropFair struct {
	n       int
	betaQ   uint64
	decayQ  uint64
	weights []uint64
	slot    int64
	avg     []uint64
	stamp   []int64
}

func newRefPropFair(n int, weights []int64, shift int) *refPropFair {
	if shift == 0 {
		shift = DefaultPFShift
	}
	p := &refPropFair{
		n:       n,
		betaQ:   unitQ32 >> uint(shift),
		weights: copyWeights("refPropFair", n, weights),
		avg:     make([]uint64, n),
		stamp:   make([]int64, n),
	}
	p.decayQ = unitQ32 - p.betaQ
	return p
}

func (p *refPropFair) Name() string { return "PF" }

func (p *refPropFair) OnRequest(int, int64) {}

func (p *refPropFair) catchup(m int) {
	if d := p.slot - p.stamp[m]; d > 0 {
		if p.avg[m] != 0 {
			p.avg[m] = mulQ32(p.avg[m], powQ32(p.decayQ, d))
		}
		p.stamp[m] = p.slot
	}
}

func (p *refPropFair) Pick(eligible []bool, _ int64) (int, bool) {
	best := -1
	for m := 0; m < p.n && m < len(eligible); m++ {
		if !eligible[m] {
			continue
		}
		p.catchup(m)
		if best < 0 {
			best = m
			continue
		}
		chi, clo := bits.Mul64(p.avg[m], p.weights[best])
		bhi, blo := bits.Mul64(p.avg[best], p.weights[m])
		if chi < bhi || (chi == bhi && clo < blo) {
			best = m
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func (p *refPropFair) OnGrant(m int, _ int64) {
	if m < 0 || m >= p.n {
		return
	}
	p.catchup(m)
	p.avg[m] = mulQ32(p.avg[m], p.decayQ) + p.betaQ
	p.slot++
	p.stamp[m] = p.slot
}

func (p *refPropFair) Reset() {
	p.slot = 0
	for i := range p.avg {
		p.avg[i] = 0
		p.stamp[i] = 0
	}
}

// refGWF is the linear-scan start-time-fair-queueing policy.
type refGWF struct {
	n       int
	quantum []uint64
	vtime   uint64
	start   []uint64
	finish  []uint64
}

func newRefGWF(n int, weights []int64) *refGWF {
	g := &refGWF{
		n:       n,
		quantum: make([]uint64, n),
		start:   make([]uint64, n),
		finish:  make([]uint64, n),
	}
	for i, w := range copyWeights("refGWF", n, weights) {
		q := uint64(gwfScale) / w
		if q == 0 {
			q = 1
		}
		g.quantum[i] = q
	}
	return g
}

func (g *refGWF) Name() string { return "GWF" }

func (g *refGWF) OnRequest(m int, _ int64) {
	if m < 0 || m >= g.n {
		return
	}
	if g.finish[m] > g.vtime {
		g.start[m] = g.finish[m]
	} else {
		g.start[m] = g.vtime
	}
}

func (g *refGWF) Pick(eligible []bool, _ int64) (int, bool) {
	best := -1
	var bestStart uint64
	for m := 0; m < g.n && m < len(eligible); m++ {
		if !eligible[m] {
			continue
		}
		if best < 0 || g.start[m] < bestStart {
			best, bestStart = m, g.start[m]
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func (g *refGWF) OnGrant(m int, _ int64) {
	if m < 0 || m >= g.n {
		return
	}
	if g.start[m] > g.vtime {
		g.vtime = g.start[m]
	}
	g.finish[m] = g.start[m] + g.quantum[m]
	g.start[m] = g.finish[m]
}

func (g *refGWF) Reset() {
	g.vtime = 0
	for i := range g.start {
		g.start[i] = 0
		g.finish[i] = 0
	}
}

// refMTS is the linear-scan multi-timescale token-bucket policy: pass one
// computes conformance levels over the eligible masters, pass two walks
// the rotation order for the first maximum-level master.
type refMTS struct {
	n       int
	nscales int
	cost    []int64
	caps    []int64
	rate    []int64
	tokens  []int64
	last    []int64
	next    int
	levels  []int8
}

func newRefMTS(n int, weights []int64, scales []Timescale) *refMTS {
	if scales == nil {
		scales = DefaultTimescales()
	}
	t := &refMTS{
		n:       n,
		nscales: len(scales),
		cost:    make([]int64, len(scales)),
		caps:    make([]int64, len(scales)),
		rate:    make([]int64, n*len(scales)),
		tokens:  make([]int64, n*len(scales)),
		last:    make([]int64, n),
		levels:  make([]int8, n),
	}
	ws := copyWeights("refMTS", n, weights)
	for l, s := range scales {
		t.cost[l] = s.Den
		t.caps[l] = s.Depth * s.Den
	}
	for m := 0; m < n; m++ {
		for l, s := range scales {
			t.rate[m*t.nscales+l] = s.Num * int64(ws[m])
		}
	}
	t.Reset()
	return t
}

func (t *refMTS) Name() string { return "MTS" }

func (t *refMTS) OnRequest(int, int64) {}

func (t *refMTS) refill(m int, cycle int64) {
	d := cycle - t.last[m]
	if d <= 0 {
		return
	}
	base := m * t.nscales
	for l := 0; l < t.nscales; l++ {
		tok := t.tokens[base+l]
		if c := t.caps[l]; tok < c {
			if r := t.rate[base+l]; d >= (c-tok+r-1)/r {
				tok = c
			} else {
				tok += d * r
			}
			t.tokens[base+l] = tok
		}
	}
	t.last[m] = cycle
}

func (t *refMTS) level(m int) int8 {
	base := m * t.nscales
	var lv int8
	for l := 0; l < t.nscales; l++ {
		if t.tokens[base+l] >= t.cost[l] {
			lv++
		}
	}
	return lv
}

func (t *refMTS) Pick(eligible []bool, cycle int64) (int, bool) {
	max := int8(-1)
	any := false
	for m := 0; m < t.n && m < len(eligible); m++ {
		if !eligible[m] {
			continue
		}
		t.refill(m, cycle)
		lv := t.level(m)
		t.levels[m] = lv
		if lv > max {
			max = lv
		}
		any = true
	}
	if !any {
		return 0, false
	}
	for i := 0; i < t.n; i++ {
		m := (t.next + i) % t.n
		if m < len(eligible) && eligible[m] && t.levels[m] == max {
			return m, true
		}
	}
	return 0, false
}

func (t *refMTS) OnGrant(m int, cycle int64) {
	if m < 0 || m >= t.n {
		return
	}
	t.refill(m, cycle)
	base := m * t.nscales
	for l := 0; l < t.nscales; l++ {
		if t.tokens[base+l] >= t.cost[l] {
			t.tokens[base+l] -= t.cost[l]
		}
	}
	t.next = (m + 1) % t.n
}

func (t *refMTS) Reset() {
	t.next = 0
	for m := 0; m < t.n; m++ {
		t.last[m] = 0
		base := m * t.nscales
		for l := 0; l < t.nscales; l++ {
			t.tokens[base+l] = t.caps[l]
		}
	}
}
