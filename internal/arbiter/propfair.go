package arbiter

import (
	"fmt"
	"math/bits"

	"creditbus/internal/bitset"
)

// PropFair is proportional-fair scheduling adapted from cellular downlink
// schedulers to bus arbitration: every master carries an exponentially
// weighted moving average of its grant rate, updated once per grant slot as
//
//	avg ← (1-β)·avg + β·served
//
// (the classic 4G scheduler update with BETA = β), and arbitration picks the
// eligible master minimising avg/weight — the master furthest below its
// weighted long-run share. Under full backlog the grant shares converge to
// the weight entitlements; a master returning from a quiet period has a
// decayed average and wins immediately, which is what gives PF its
// burst-friendliness.
//
// The implementation is exact integer arithmetic so the event-horizon and
// per-cycle engines (and the bitset and linear-scan forms) agree bit for
// bit: averages live in Q32 fixed point with β = 2^-shift, the per-slot
// decay of non-winners is applied lazily via binary exponentiation when a
// master next competes, and the avg/weight comparison cross-multiplies in
// 128 bits. The slot clock is the grant counter, not the cycle counter, so
// the policy's state evolves identically on both stepping engines (which
// agree on the grant sequence, not on which cycles they visit).
type PropFair struct {
	n       int
	shift   int
	betaQ   uint64 // β in Q32
	decayQ  uint64 // 1-β in Q32
	weights []uint64
	slot    int64    // grants so far — the EWMA's discrete time base
	avg     []uint64 // Q32 EWMA of each master's grant rate
	stamp   []int64  // slot avg[m] is current through
	scratch bitset.Set
}

// unitQ32 is 1.0 in the Q32 fixed point the averages live in.
const unitQ32 = uint64(1) << 32

// mulQ32 multiplies two Q32 values (truncating): both operands are ≤ 1.0,
// so the 128-bit product's middle 64 bits are the result.
func mulQ32(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi<<32 | lo>>32
}

// powQ32 raises a Q32 value ≤ 1.0 to the k-th power by binary
// exponentiation — O(log k) multiplies, so a master that sat out a million
// slots catches up in ~20 steps.
func powQ32(x uint64, k int64) uint64 {
	r := unitQ32
	for k > 0 {
		if k&1 == 1 {
			r = mulQ32(r, x)
		}
		x = mulQ32(x, x)
		k >>= 1
	}
	return r
}

// DefaultPFShift is the default EWMA shift: β = 2⁻¹ = 0.5, the classic
// scheduler's BETA.
const DefaultPFShift = 1

// copyWeights validates and copies a weight vector; nil means equal weights.
func copyWeights(name string, n int, weights []int64) []uint64 {
	out := make([]uint64, n)
	if weights == nil {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	if len(weights) != n {
		panic(fmt.Sprintf("arbiter: %s got %d weights for %d masters", name, len(weights), n))
	}
	for i, w := range weights {
		if w < 1 {
			panic(fmt.Sprintf("arbiter: %s weight[%d] = %d, need ≥ 1", name, i, w))
		}
		out[i] = uint64(w)
	}
	return out
}

// NewPropFair builds a proportional-fair policy over n masters. weights are
// the per-master entitlements (nil = equal); shift sets β = 2^-shift
// (0 = DefaultPFShift, i.e. β = 0.5).
func NewPropFair(n int, weights []int64, shift int) *PropFair {
	if n <= 0 {
		panic("arbiter: PropFair needs n > 0")
	}
	if shift == 0 {
		shift = DefaultPFShift
	}
	if shift < 1 || shift > 30 {
		panic(fmt.Sprintf("arbiter: PropFair shift = %d outside [1,30]", shift))
	}
	p := &PropFair{
		n:       n,
		shift:   shift,
		betaQ:   unitQ32 >> uint(shift),
		weights: copyWeights("PropFair", n, weights),
		avg:     make([]uint64, n),
		stamp:   make([]int64, n),
		scratch: bitset.New(n),
	}
	p.decayQ = unitQ32 - p.betaQ
	return p
}

// Name implements Policy.
func (p *PropFair) Name() string { return "PF" }

// OnRequest implements Policy; PF is rate-based and keeps no arrival state.
func (p *PropFair) OnRequest(int, int64) {}

// catchup applies the decay of every slot master m sat out since its
// average was last current. Both selection forms catch up exactly the
// eligible masters of each pick, in ascending index order, so the lazily
// decayed fixed-point values are bit-identical between them.
func (p *PropFair) catchup(m int) {
	if d := p.slot - p.stamp[m]; d > 0 {
		if p.avg[m] != 0 {
			p.avg[m] = mulQ32(p.avg[m], powQ32(p.decayQ, d))
		}
		p.stamp[m] = p.slot
	}
}

// Pick implements Policy via the bitset form.
func (p *PropFair) Pick(eligible []bool, cycle int64) (int, bool) {
	return p.PickBits(fillBits(p.scratch, eligible, p.n), cycle)
}

// PickBits implements BitPicker: the eligible master minimising avg/weight,
// compared as avg_a·w_b vs avg_b·w_a in 128 bits; ties go to the lowest
// index (ascending iteration, strict improvement).
func (p *PropFair) PickBits(eligible bitset.Set, _ int64) (int, bool) {
	best := -1
	for w, word := range eligible {
		for word != 0 {
			m := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			p.catchup(m)
			if best < 0 {
				best = m
				continue
			}
			chi, clo := bits.Mul64(p.avg[m], p.weights[best])
			bhi, blo := bits.Mul64(p.avg[best], p.weights[m])
			if chi < bhi || (chi == bhi && clo < blo) {
				best = m
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// OnGrant advances the slot clock and folds a full slot of service into the
// winner's average: avg ← (1-β)·avg + β·1.0. Non-winners decay lazily.
func (p *PropFair) OnGrant(m int, _ int64) {
	if m < 0 || m >= p.n {
		return
	}
	p.catchup(m)
	p.avg[m] = mulQ32(p.avg[m], p.decayQ) + p.betaQ
	p.slot++
	p.stamp[m] = p.slot
}

// Reset implements Policy.
func (p *PropFair) Reset() {
	p.slot = 0
	for i := range p.avg {
		p.avg[i] = 0
		p.stamp[i] = 0
	}
}
