package arbiter

import "creditbus/internal/bitset"

// FixedPriority always grants the eligible master with the lowest index.
// The paper's §II explains why this is unusable when every core runs
// real-time tasks: a high-priority core issuing requests back to back
// starves all lower-priority cores. The policy is included as a baseline to
// demonstrate exactly that starvation (see the package tests) and to show
// that the CBA filter in front of it restores starvation freedom.
type FixedPriority struct {
	n       int
	scratch bitset.Set
}

// NewFixedPriority builds the policy over n masters; index 0 has the highest
// priority.
func NewFixedPriority(n int) *FixedPriority {
	if n <= 0 {
		panic("arbiter: FixedPriority needs n > 0")
	}
	return &FixedPriority{n: n, scratch: bitset.New(n)}
}

// Name implements Policy.
func (f *FixedPriority) Name() string { return "PRI" }

// OnRequest implements Policy.
func (f *FixedPriority) OnRequest(int, int64) {}

// Pick grants the lowest-indexed eligible master.
func (f *FixedPriority) Pick(eligible []bool, cycle int64) (int, bool) {
	return f.PickBits(fillBits(f.scratch, eligible, f.n), cycle)
}

// PickBits implements BitPicker: the lowest set bit.
func (f *FixedPriority) PickBits(eligible bitset.Set, _ int64) (int, bool) {
	if m := eligible.First(); m >= 0 {
		return m, true
	}
	return 0, false
}

// OnGrant implements Policy.
func (f *FixedPriority) OnGrant(int, int64) {}

// Reset implements Policy.
func (f *FixedPriority) Reset() {}
