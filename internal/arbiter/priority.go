package arbiter

// FixedPriority always grants the eligible master with the lowest index.
// The paper's §II explains why this is unusable when every core runs
// real-time tasks: a high-priority core issuing requests back to back
// starves all lower-priority cores. The policy is included as a baseline to
// demonstrate exactly that starvation (see the package tests) and to show
// that the CBA filter in front of it restores starvation freedom.
type FixedPriority struct {
	n int
}

// NewFixedPriority builds the policy over n masters; index 0 has the highest
// priority.
func NewFixedPriority(n int) *FixedPriority {
	if n <= 0 {
		panic("arbiter: FixedPriority needs n > 0")
	}
	return &FixedPriority{n: n}
}

// Name implements Policy.
func (f *FixedPriority) Name() string { return "PRI" }

// OnRequest implements Policy.
func (f *FixedPriority) OnRequest(int, int64) {}

// Pick grants the lowest-indexed eligible master.
func (f *FixedPriority) Pick(eligible []bool, _ int64) (int, bool) {
	for m := 0; m < f.n && m < len(eligible); m++ {
		if eligible[m] {
			return m, true
		}
	}
	return 0, false
}

// OnGrant implements Policy.
func (f *FixedPriority) OnGrant(int, int64) {}

// Reset implements Policy.
func (f *FixedPriority) Reset() {}
