package arbiter

import (
	"math/bits"

	"creditbus/internal/bitset"
	"creditbus/internal/rng"
)

// Lottery implements LOTTERYBUS-style arbitration (Lahiri et al., DAC 2001):
// every arbitration, each competing master enters with a configured number of
// tickets and a uniformly drawn ticket selects the winner. With equal
// tickets and constant contention it is slot-fair in expectation. The paper
// lists it among the MBPTA-compatible randomised policies.
type Lottery struct {
	n       int
	seed    uint64
	tickets []int64
	src     *rng.Stream
	scratch bitset.Set
}

// NewLottery builds a lottery policy over n masters. tickets gives the
// per-master ticket counts; nil means one ticket each. The policy owns its
// rng stream, seeded with seed, so runs are reproducible.
func NewLottery(n int, tickets []int64, seed uint64) *Lottery {
	if n <= 0 {
		panic("arbiter: Lottery needs n > 0")
	}
	if tickets == nil {
		tickets = make([]int64, n)
		for i := range tickets {
			tickets[i] = 1
		}
	}
	if len(tickets) != n {
		panic("arbiter: Lottery tickets length mismatch")
	}
	for _, t := range tickets {
		if t <= 0 {
			panic("arbiter: Lottery tickets must be positive")
		}
	}
	l := &Lottery{
		n:       n,
		seed:    seed,
		tickets: append([]int64(nil), tickets...),
		scratch: bitset.New(n),
	}
	l.Reset()
	return l
}

// Name implements Policy.
func (l *Lottery) Name() string { return "LOT" }

// OnRequest implements Policy.
func (l *Lottery) OnRequest(int, int64) {}

// Pick draws a ticket among eligible masters.
func (l *Lottery) Pick(eligible []bool, cycle int64) (int, bool) {
	return l.PickBits(fillBits(l.scratch, eligible, l.n), cycle)
}

// PickBits implements BitPicker. The draw is bit-identical to the reference
// scan's rng.WeightedChoice over a zero-padded ticket vector: one Uint64 per
// arbitration with an eligible master, reduced modulo the eligible ticket
// total, then an ascending walk — ineligible masters carried weight 0 in the
// reference vector, and a zero weight can never match (the running ticket
// stays ≥ 0) nor move the walk, so summing and walking only the set bits
// selects the identical winner from the identical draw.
func (l *Lottery) PickBits(eligible bitset.Set, _ int64) (int, bool) {
	var total int64
	for w, word := range eligible {
		for word != 0 {
			m := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			total += l.tickets[m]
		}
	}
	if total == 0 {
		return 0, false
	}
	t := int64(l.src.Uint64() % uint64(total))
	for w, word := range eligible {
		for word != 0 {
			m := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if t < l.tickets[m] {
				return m, true
			}
			t -= l.tickets[m]
		}
	}
	panic("arbiter: Lottery draw outside ticket total")
}

// OnGrant implements Policy.
func (l *Lottery) OnGrant(int, int64) {}

// Reset re-seeds the ticket draw stream. On a constructed policy it
// allocates nothing: the stream is rearmed in place.
func (l *Lottery) Reset() {
	if l.src == nil {
		l.src = rng.New(l.seed)
	} else {
		l.src.Reseed(l.seed)
	}
}

// Reseed implements Reseeder: the policy restarts as if constructed with
// the given seed.
func (l *Lottery) Reseed(seed uint64) {
	l.seed = seed
	l.Reset()
}
