package arbiter

import "creditbus/internal/rng"

// Lottery implements LOTTERYBUS-style arbitration (Lahiri et al., DAC 2001):
// every arbitration, each competing master enters with a configured number of
// tickets and a uniformly drawn ticket selects the winner. With equal
// tickets and constant contention it is slot-fair in expectation. The paper
// lists it among the MBPTA-compatible randomised policies.
type Lottery struct {
	n       int
	seed    uint64
	tickets []int64
	src     *rng.Stream
	scratch []int64
}

// NewLottery builds a lottery policy over n masters. tickets gives the
// per-master ticket counts; nil means one ticket each. The policy owns its
// rng stream, seeded with seed, so runs are reproducible.
func NewLottery(n int, tickets []int64, seed uint64) *Lottery {
	if n <= 0 {
		panic("arbiter: Lottery needs n > 0")
	}
	if tickets == nil {
		tickets = make([]int64, n)
		for i := range tickets {
			tickets[i] = 1
		}
	}
	if len(tickets) != n {
		panic("arbiter: Lottery tickets length mismatch")
	}
	for _, t := range tickets {
		if t <= 0 {
			panic("arbiter: Lottery tickets must be positive")
		}
	}
	l := &Lottery{
		n:       n,
		seed:    seed,
		tickets: append([]int64(nil), tickets...),
		scratch: make([]int64, n),
	}
	l.Reset()
	return l
}

// Name implements Policy.
func (l *Lottery) Name() string { return "LOT" }

// OnRequest implements Policy.
func (l *Lottery) OnRequest(int, int64) {}

// Pick draws a ticket among eligible masters.
func (l *Lottery) Pick(eligible []bool, _ int64) (int, bool) {
	if countEligible(eligible) == 0 {
		return 0, false
	}
	for m := 0; m < l.n; m++ {
		if m < len(eligible) && eligible[m] {
			l.scratch[m] = l.tickets[m]
		} else {
			l.scratch[m] = 0
		}
	}
	return l.src.WeightedChoice(l.scratch), true
}

// OnGrant implements Policy.
func (l *Lottery) OnGrant(int, int64) {}

// Reset re-seeds the ticket draw stream. On a constructed policy it
// allocates nothing: the stream is rearmed in place.
func (l *Lottery) Reset() {
	if l.src == nil {
		l.src = rng.New(l.seed)
	} else {
		l.src.Reseed(l.seed)
	}
}

// Reseed implements Reseeder: the policy restarts as if constructed with
// the given seed.
func (l *Lottery) Reseed(seed uint64) {
	l.seed = seed
	l.Reset()
}
