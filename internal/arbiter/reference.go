package arbiter

import "creditbus/internal/rng"

// This file preserves the pre-bitset linear-scan policy implementations,
// verbatim, as unexported reference models. They are not reachable from any
// production path: their sole consumer is the differential suite
// (scaleref_test.go), which drives each exported policy and its reference
// twin with identical request patterns and asserts pick-for-pick equality —
// including the order and count of rng draws for the randomised policies.
// Keeping them in a non-test file makes the equivalence claim auditable in
// one place ("this is exactly the code the bitset versions replaced") and
// available to any future differential harness.

// refFIFO is the linear-scan FIFO policy.
type refFIFO struct {
	n       int
	arrival []int64
}

func newRefFIFO(n int) *refFIFO {
	f := &refFIFO{n: n, arrival: make([]int64, n)}
	f.Reset()
	return f
}

func (f *refFIFO) Name() string { return "FIFO" }

func (f *refFIFO) OnRequest(m int, cycle int64) {
	if m >= 0 && m < f.n {
		f.arrival[m] = cycle
	}
}

func (f *refFIFO) Pick(eligible []bool, _ int64) (int, bool) {
	best, bestAt := -1, int64(0)
	for m := 0; m < f.n && m < len(eligible); m++ {
		if !eligible[m] {
			continue
		}
		at := f.arrival[m]
		if at < 0 {
			at = 1<<62 - 1
		}
		if best == -1 || at < bestAt {
			best, bestAt = m, at
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}

func (f *refFIFO) OnGrant(m int, _ int64) {
	if m >= 0 && m < f.n {
		f.arrival[m] = -1
	}
}

func (f *refFIFO) Reset() {
	for i := range f.arrival {
		f.arrival[i] = -1
	}
}

// refRoundRobin is the linear-scan round-robin policy.
type refRoundRobin struct {
	n    int
	next int
}

func newRefRoundRobin(n int) *refRoundRobin { return &refRoundRobin{n: n} }

func (r *refRoundRobin) Name() string { return "RR" }

func (r *refRoundRobin) OnRequest(int, int64) {}

func (r *refRoundRobin) Pick(eligible []bool, _ int64) (int, bool) {
	for i := 0; i < r.n; i++ {
		m := (r.next + i) % r.n
		if m < len(eligible) && eligible[m] {
			return m, true
		}
	}
	return 0, false
}

func (r *refRoundRobin) OnGrant(m int, _ int64) { r.next = (m + 1) % r.n }

func (r *refRoundRobin) Reset() { r.next = 0 }

// refFixedPriority is the linear-scan fixed-priority policy.
type refFixedPriority struct {
	n int
}

func newRefFixedPriority(n int) *refFixedPriority { return &refFixedPriority{n: n} }

func (f *refFixedPriority) Name() string { return "PRI" }

func (f *refFixedPriority) OnRequest(int, int64) {}

func (f *refFixedPriority) Pick(eligible []bool, _ int64) (int, bool) {
	for m := 0; m < f.n && m < len(eligible); m++ {
		if eligible[m] {
			return m, true
		}
	}
	return 0, false
}

func (f *refFixedPriority) OnGrant(int, int64) {}

func (f *refFixedPriority) Reset() {}

// refLottery is the full-vector lottery policy: a zero-padded scratch
// ticket vector handed to rng.WeightedChoice.
type refLottery struct {
	n       int
	seed    uint64
	tickets []int64
	src     *rng.Stream
	scratch []int64
}

func newRefLottery(n int, tickets []int64, seed uint64) *refLottery {
	if tickets == nil {
		tickets = make([]int64, n)
		for i := range tickets {
			tickets[i] = 1
		}
	}
	l := &refLottery{
		n:       n,
		seed:    seed,
		tickets: append([]int64(nil), tickets...),
		scratch: make([]int64, n),
	}
	l.Reset()
	return l
}

func (l *refLottery) Name() string { return "LOT" }

func (l *refLottery) OnRequest(int, int64) {}

func (l *refLottery) Pick(eligible []bool, _ int64) (int, bool) {
	if countEligible(eligible) == 0 {
		return 0, false
	}
	for m := 0; m < l.n; m++ {
		if m < len(eligible) && eligible[m] {
			l.scratch[m] = l.tickets[m]
		} else {
			l.scratch[m] = 0
		}
	}
	return l.src.WeightedChoice(l.scratch), true
}

func (l *refLottery) OnGrant(int, int64) {}

func (l *refLottery) Reset() {
	if l.src == nil {
		l.src = rng.New(l.seed)
	} else {
		l.src.Reseed(l.seed)
	}
}

func (l *refLottery) Reseed(seed uint64) {
	l.seed = seed
	l.Reset()
}

// refRandomPermutation is the permutation-walking random-permutations
// policy.
type refRandomPermutation struct {
	n      int
	seed   uint64
	src    *rng.Stream
	perm   []int
	served []bool
}

func newRefRandomPermutation(n int, seed uint64) *refRandomPermutation {
	p := &refRandomPermutation{
		n:      n,
		seed:   seed,
		perm:   make([]int, n),
		served: make([]bool, n),
	}
	p.Reset()
	return p
}

func (p *refRandomPermutation) Name() string { return "RP" }

func (p *refRandomPermutation) OnRequest(int, int64) {}

func (p *refRandomPermutation) newRound() {
	p.src.Perm(p.perm)
	for i := range p.served {
		p.served[i] = false
	}
}

func (p *refRandomPermutation) pickUnserved(eligible []bool) int {
	for _, m := range p.perm {
		if m < len(eligible) && eligible[m] && !p.served[m] {
			return m
		}
	}
	return -1
}

func (p *refRandomPermutation) Pick(eligible []bool, _ int64) (int, bool) {
	if countEligible(eligible) == 0 {
		return 0, false
	}
	if m := p.pickUnserved(eligible); m >= 0 {
		return m, true
	}
	p.newRound()
	if m := p.pickUnserved(eligible); m >= 0 {
		return m, true
	}
	return 0, false
}

func (p *refRandomPermutation) OnGrant(m int, _ int64) {
	if m >= 0 && m < p.n {
		p.served[m] = true
	}
}

func (p *refRandomPermutation) Reset() {
	if p.src == nil {
		p.src = rng.New(p.seed)
	} else {
		p.src.Reseed(p.seed)
	}
	p.newRound()
}

func (p *refRandomPermutation) Reseed(seed uint64) {
	p.seed = seed
	p.Reset()
}
