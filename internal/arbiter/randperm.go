package arbiter

import (
	"math/bits"

	"creditbus/internal/bitset"
	"creditbus/internal/rng"
)

// RandomPermutation implements the random-permutations policy of Jalle et
// al. (DATE 2014), the policy the paper integrates CBA with on the LEON3
// prototype. Time is divided into rounds. At the start of each round the
// arbiter draws a uniform random permutation of the masters; within the
// round every master is granted at most once, and among the masters still
// owed a grant the one earliest in the permutation wins. When no pending
// master is owed a grant in the current round, a fresh round (and
// permutation) starts immediately, keeping the policy work-conserving.
//
// Under full contention each master's position in a round is uniform, which
// is what gives the policy its probabilistic timing guarantees: the number
// of contenders served before a given master is uniform on {0..N-1}.
type RandomPermutation struct {
	n    int
	seed uint64
	src  *rng.Stream
	perm []int
	// rank inverts perm (rank[perm[i]] = i): "first eligible unserved
	// master in permutation order" becomes "minimum rank over the eligible
	// ∧ ¬served bits", so a pick costs the set's population, not a walk of
	// the full permutation.
	rank    []int
	served  bitset.Set
	scratch bitset.Set
}

// NewRandomPermutation builds the policy over n masters with its own rng
// stream seeded by seed.
func NewRandomPermutation(n int, seed uint64) *RandomPermutation {
	if n <= 0 {
		panic("arbiter: RandomPermutation needs n > 0")
	}
	p := &RandomPermutation{
		n:       n,
		seed:    seed,
		perm:    make([]int, n),
		rank:    make([]int, n),
		served:  bitset.New(n),
		scratch: bitset.New(n),
	}
	p.Reset()
	return p
}

// Name implements Policy.
func (p *RandomPermutation) Name() string { return "RP" }

// OnRequest implements Policy.
func (p *RandomPermutation) OnRequest(int, int64) {}

func (p *RandomPermutation) newRound() {
	p.src.Perm(p.perm)
	for i, m := range p.perm {
		p.rank[m] = i
	}
	p.served.Reset()
}

// pickUnserved returns the eligible, not-yet-served master earliest in the
// current permutation (the minimum-rank bit of eligible ∧ ¬served), or -1.
func (p *RandomPermutation) pickUnserved(eligible bitset.Set) int {
	best, bestRank := -1, 0
	for w, word := range eligible {
		word &^= p.served[w]
		for word != 0 {
			m := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if r := p.rank[m]; best == -1 || r < bestRank {
				best, bestRank = m, r
			}
		}
	}
	return best
}

// Pick selects the next master for this round, opening a new round if every
// eligible master was already served in the current one.
func (p *RandomPermutation) Pick(eligible []bool, cycle int64) (int, bool) {
	return p.PickBits(fillBits(p.scratch, eligible, p.n), cycle)
}

// PickBits implements BitPicker. Round bookkeeping — and therefore the
// cycle at which each permutation is drawn — matches the reference scan
// exactly: no draw on an empty eligible set, a fresh round (one Perm draw)
// precisely when no eligible master is still owed a grant.
func (p *RandomPermutation) PickBits(eligible bitset.Set, _ int64) (int, bool) {
	if !eligible.Any() {
		return 0, false
	}
	if m := p.pickUnserved(eligible); m >= 0 {
		return m, true
	}
	// All eligible masters already had their turn: start a new round.
	p.newRound()
	if m := p.pickUnserved(eligible); m >= 0 {
		return m, true
	}
	return 0, false
}

// OnGrant marks the master as served for the current round.
func (p *RandomPermutation) OnGrant(m int, _ int64) {
	if m >= 0 && m < p.n {
		p.served.Set(m)
	}
}

// Reset re-seeds the stream and draws a fresh first round. On a
// constructed policy it allocates nothing: the stream is rearmed in place.
func (p *RandomPermutation) Reset() {
	if p.src == nil {
		p.src = rng.New(p.seed)
	} else {
		p.src.Reseed(p.seed)
	}
	p.newRound()
}

// Reseed implements Reseeder: the policy restarts as if constructed with
// the given seed.
func (p *RandomPermutation) Reseed(seed uint64) {
	p.seed = seed
	p.Reset()
}
