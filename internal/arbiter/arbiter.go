// Package arbiter implements the slot-fair bus arbitration policies the
// paper compares against and composes with credit-based arbitration:
// round-robin, FIFO, TDMA, lottery (LOTTERYBUS, Lahiri et al. DAC 2001),
// random permutations (Jalle et al. DATE 2014) and — for the starvation
// discussion in §II — fixed priority.
//
// A Policy never sees raw bus state. The bus (or the CBA filter in front of
// it) computes the set of masters that are pending and eligible this cycle
// and asks the policy to pick one. All policies are deterministic given their
// rng seed, which is what makes whole-simulation runs reproducible.
//
// Every policy in this package selects from an eligibility bitset
// (BitPicker) in O(words + set bits) rather than scanning all masters, which
// is what lets arbitration cost stay flat as the population grows to
// hundreds of requestors. The pre-bitset linear scans survive verbatim as
// unexported reference implementations (reference.go); the differential
// suite asserts pick-for-pick and rng-draw-order equality against them at
// every core count.
package arbiter

import "creditbus/internal/bitset"

// Policy is a bus arbitration policy.
//
// The bus calls OnRequest when a master's request first becomes arbitrable,
// Pick on every cycle in which the bus is free and at least one master may
// compete, and OnGrant when a pick is accepted. Implementations must not
// retain the eligible slice.
type Policy interface {
	// Name identifies the policy in reports (e.g. "RR", "RP").
	Name() string
	// OnRequest records that master m's request became arbitrable at cycle.
	OnRequest(m int, cycle int64)
	// Pick chooses one master among those with eligible[m] == true, or
	// reports ok=false to leave the bus idle this cycle (TDMA does this
	// outside slot boundaries). Pick must not pick an ineligible master.
	Pick(eligible []bool, cycle int64) (m int, ok bool)
	// OnGrant records that master m was granted at cycle.
	OnGrant(m int, cycle int64)
	// Reset returns the policy to its initial state (rng state included).
	Reset()
}

// BitPicker is the bitset form of Pick, implemented by every policy in this
// package. The semantics are identical to Pick with eligible[m] ⇔ bit m set
// — same winner, same tie-breaks, same rng draws — but selection iterates
// only the set bits, so a decision over 1024 masters with a handful of
// contenders costs a few word scans instead of a 1024-entry loop. The
// eligible set covers exactly the policy's master count (bits ≥ n clear);
// implementations must not retain or mutate it.
type BitPicker interface {
	PickBits(eligible bitset.Set, cycle int64) (m int, ok bool)
}

// Scheduler is optionally implemented by policies that can only grant at
// particular cycles (TDMA's slot boundaries). NextPickCycle returns the
// earliest cycle ≥ from at which Pick could return ok=true; between from and
// that cycle the policy is guaranteed to leave the bus idle and mutate no
// state, which lets the event-horizon stepping engine skip those cycles.
// Policies that do not implement Scheduler are work-conserving: they can
// grant on any cycle with an eligible master.
type Scheduler interface {
	NextPickCycle(from int64) int64
}

// Reseeder is implemented by randomised policies (lottery, random
// permutations) whose draws derive from a per-run seed. Reseed(seed) puts
// the policy in exactly the state its constructor would with that seed, so
// a recycled policy is bit-identical to a fresh one — the hook machine
// reuse needs to re-arm arbitration randomness without reallocating.
// Deterministic policies don't implement it; their Reset covers a new run.
type Reseeder interface {
	Reseed(seed uint64)
}

// countEligible returns the number of set entries.
func countEligible(eligible []bool) int {
	n := 0
	for _, e := range eligible {
		if e {
			n++
		}
	}
	return n
}

// fillBits writes eligible[0:n] into dst (entries past n, which a Policy
// must ignore, are dropped) and returns dst. It is the boolean-slice
// adapter behind each policy's legacy Pick.
func fillBits(dst bitset.Set, eligible []bool, n int) bitset.Set {
	dst.Reset()
	if len(eligible) < n {
		n = len(eligible)
	}
	for i := 0; i < n; i++ {
		if eligible[i] {
			dst.Set(i)
		}
	}
	return dst
}
