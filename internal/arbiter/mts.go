package arbiter

import (
	"fmt"
	"math/bits"

	"creditbus/internal/bitset"
)

// Timescale is one token bucket of a multi-timescale bandwidth profile: a
// refill rate of Num/Den grants per cycle (multiplied by the master's
// weight) with a burst capacity of Depth grants. Tokens are held scaled by
// Den, so refill (Num·weight per cycle), cost (Den per grant) and capacity
// (Depth·Den) are all exact integers.
type Timescale struct {
	Num, Den int64
	Depth    int64
}

// DefaultTimescales is the built-in two-timescale profile: a fine bucket
// bounding short bursts (1/64 grants per cycle, burst 4 — roughly one
// grant per busy MaxL window on the default platform) and a coarse bucket
// bounding the sustained rate (1/512 grants per cycle, burst 32).
func DefaultTimescales() []Timescale {
	return []Timescale{
		{Num: 1, Den: 64, Depth: 4},
		{Num: 1, Den: 512, Depth: 32},
	}
}

// MTS is a multi-timescale token-bucket profile policy after Nádas et al.:
// every master owns one token bucket per timescale, fine to coarse, each
// refilling at the master's weighted rate on that timescale. A master's
// conformance level is the number of its buckets currently holding a full
// grant's worth of tokens; arbitration grants the eligible master with the
// highest level — the one consuming least of its profile across every
// timescale — breaking ties round-robin, and a grant drains one grant's
// cost from each conformant bucket. A master inside its profile on all
// timescales beats one that has exhausted a burst allowance, which is what
// makes the policy burst-aware: short overshoots only demote a master on
// the fine timescale, sustained overuse demotes it everywhere.
//
// The policy is work-conserving — levels prioritise, they never gate — so
// the bus never idles while any master is eligible, and profile headroom a
// master does not use goes to the others. Buckets refill lazily with
// saturating integer arithmetic (chunk-invariant: refilling a span in one
// step or many yields the same tokens), so the per-cycle and event-horizon
// engines, and the bitset and linear-scan forms, agree bit for bit.
type MTS struct {
	n       int
	nscales int
	weights []uint64
	cost    []int64 // per level: Den
	caps    []int64 // per level: Depth·Den
	rate    []int64 // [m·nscales+l]: Num·weight — token units per cycle
	tokens  []int64 // [m·nscales+l]
	last    []int64 // [m]: cycle tokens are current through
	next    int     // round-robin rotation pointer for level ties
	levels  []int8  // scratch: conformance level per master, this pick
	cand    []int32 // scratch: eligible masters of this pick
	scratch bitset.Set
}

// NewMTS builds a multi-timescale profile policy over n masters. weights
// scale each master's refill rates (nil = equal); scales is the bucket
// profile, fine to coarse (nil = DefaultTimescales).
func NewMTS(n int, weights []int64, scales []Timescale) *MTS {
	if n <= 0 {
		panic("arbiter: MTS needs n > 0")
	}
	if scales == nil {
		scales = DefaultTimescales()
	}
	if len(scales) == 0 {
		panic("arbiter: MTS needs at least one timescale")
	}
	t := &MTS{
		n:       n,
		nscales: len(scales),
		weights: copyWeights("MTS", n, weights),
		cost:    make([]int64, len(scales)),
		caps:    make([]int64, len(scales)),
		rate:    make([]int64, n*len(scales)),
		tokens:  make([]int64, n*len(scales)),
		last:    make([]int64, n),
		levels:  make([]int8, n),
		cand:    make([]int32, 0, n),
		scratch: bitset.New(n),
	}
	for l, s := range scales {
		if s.Num < 1 || s.Den < 1 || s.Depth < 1 {
			panic(fmt.Sprintf("arbiter: MTS timescale %d = %+v, need Num/Den/Depth ≥ 1", l, s))
		}
		t.cost[l] = s.Den
		t.caps[l] = s.Depth * s.Den
	}
	for m := 0; m < n; m++ {
		for l, s := range scales {
			t.rate[m*t.nscales+l] = s.Num * int64(t.weights[m])
		}
	}
	t.Reset()
	return t
}

// Name implements Policy.
func (t *MTS) Name() string { return "MTS" }

// OnRequest implements Policy; the profile clock is the cycle counter, not
// arrivals.
func (t *MTS) OnRequest(int, int64) {}

// refill brings master m's buckets current through cycle. Saturating
// linear refill is chunk-invariant — min(cap, tok + Δ·r) composes — so the
// result is independent of when catch-ups happen, which is what keeps the
// two stepping engines (visiting different cycle subsets) bit-identical.
func (t *MTS) refill(m int, cycle int64) {
	d := cycle - t.last[m]
	if d <= 0 {
		return
	}
	base := m * t.nscales
	for l := 0; l < t.nscales; l++ {
		tok := t.tokens[base+l]
		if c := t.caps[l]; tok < c {
			// Overflow-safe: saturate whenever Δ covers the headroom.
			if r := t.rate[base+l]; d >= (c-tok+r-1)/r {
				tok = c
			} else {
				tok += d * r
			}
			t.tokens[base+l] = tok
		}
	}
	t.last[m] = cycle
}

// level counts master m's conformant buckets (tokens ≥ one grant's cost).
func (t *MTS) level(m int) int8 {
	base := m * t.nscales
	var lv int8
	for l := 0; l < t.nscales; l++ {
		if t.tokens[base+l] >= t.cost[l] {
			lv++
		}
	}
	return lv
}

// Pick implements Policy via the bitset form.
func (t *MTS) Pick(eligible []bool, cycle int64) (int, bool) {
	return t.PickBits(fillBits(t.scratch, eligible, t.n), cycle)
}

// PickBits implements BitPicker: collect the eligible masters' conformance
// levels (refilling lazily), then grant the highest level, rotating
// round-robin among equals — the first max-level master at or after the
// rotation pointer.
func (t *MTS) PickBits(eligible bitset.Set, cycle int64) (int, bool) {
	t.cand = t.cand[:0]
	max := int8(-1)
	for w, word := range eligible {
		for word != 0 {
			m := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			t.refill(m, cycle)
			lv := t.level(m)
			t.levels[m] = lv
			if lv > max {
				max = lv
			}
			t.cand = append(t.cand, int32(m))
		}
	}
	if len(t.cand) == 0 {
		return 0, false
	}
	best, bestRank := -1, t.n
	for _, c := range t.cand {
		m := int(c)
		if t.levels[m] != max {
			continue
		}
		rank := m - t.next
		if rank < 0 {
			rank += t.n
		}
		if rank < bestRank {
			best, bestRank = m, rank
		}
	}
	return best, true
}

// OnGrant drains one grant's cost from each of the winner's conformant
// buckets and rotates the tie-break pointer past the winner.
func (t *MTS) OnGrant(m int, cycle int64) {
	if m < 0 || m >= t.n {
		return
	}
	t.refill(m, cycle)
	base := m * t.nscales
	for l := 0; l < t.nscales; l++ {
		if t.tokens[base+l] >= t.cost[l] {
			t.tokens[base+l] -= t.cost[l]
		}
	}
	t.next = (m + 1) % t.n
}

// Reset implements Policy: buckets full, rotation at master 0.
func (t *MTS) Reset() {
	t.next = 0
	for m := 0; m < t.n; m++ {
		t.last[m] = 0
		base := m * t.nscales
		for l := 0; l < t.nscales; l++ {
			t.tokens[base+l] = t.caps[l]
		}
	}
}
