package arbiter

import (
	"math/bits"

	"creditbus/internal/bitset"
)

// gwfScale is the virtual-time quantum numerator: one grant advances the
// winner's finish tag by gwfScale/weight, so a master of weight w is billed
// 1/w of a unit-weight master's quantum and receives w times the grants per
// unit of virtual time.
const gwfScale = int64(1) << 20

// GWF is general weighted fairness in the explicit-rate tradition
// (Vandalore et al.): each master owns an explicit rate — its weight — and
// arbitration realises the weighted allocation with start-time fair
// queueing. A request arriving at virtual time V is stamped
// start = max(finish, V); arbitration grants the eligible master with the
// minimum start tag; a grant advances the winner's finish tag by its
// quantum (gwfScale/weight) and virtual time to the winner's start tag.
// Backlogged masters therefore receive grants in proportion to their
// weights — the general weighted fairness allocation — while an idle
// master's tags simply go stale and re-anchor at the current virtual time
// on its next request, so unused allocation is redistributed (the
// work-conserving half of the definition).
//
// All tags are plain integers; selection is a pure argmin with ties to the
// lowest index, so the policy is deterministic and both stepping engines
// (and both selection forms) agree bit for bit.
type GWF struct {
	n       int
	weights []uint64
	quantum []uint64 // gwfScale/weight, floored at 1
	vtime   uint64
	start   []uint64
	finish  []uint64
	scratch bitset.Set
}

// NewGWF builds a general-weighted-fairness policy over n masters. weights
// are the explicit per-master rates (nil = equal).
func NewGWF(n int, weights []int64) *GWF {
	if n <= 0 {
		panic("arbiter: GWF needs n > 0")
	}
	g := &GWF{
		n:       n,
		weights: copyWeights("GWF", n, weights),
		quantum: make([]uint64, n),
		start:   make([]uint64, n),
		finish:  make([]uint64, n),
		scratch: bitset.New(n),
	}
	for i, w := range g.weights {
		q := uint64(gwfScale) / w
		if q == 0 {
			q = 1
		}
		g.quantum[i] = q
	}
	return g
}

// Name implements Policy.
func (g *GWF) Name() string { return "GWF" }

// OnRequest stamps the arriving request's start tag: the master's own
// finish tag if it is still ahead of virtual time (a backlogged or
// recently served master continues its schedule), the current virtual time
// otherwise (an idle master re-anchors and inherits no credit for the
// service it did not use).
func (g *GWF) OnRequest(m int, _ int64) {
	if m < 0 || m >= g.n {
		return
	}
	if g.finish[m] > g.vtime {
		g.start[m] = g.finish[m]
	} else {
		g.start[m] = g.vtime
	}
}

// Pick implements Policy via the bitset form.
func (g *GWF) Pick(eligible []bool, cycle int64) (int, bool) {
	return g.PickBits(fillBits(g.scratch, eligible, g.n), cycle)
}

// PickBits implements BitPicker: the eligible master with the minimum start
// tag, ties to the lowest index.
func (g *GWF) PickBits(eligible bitset.Set, _ int64) (int, bool) {
	best := -1
	var bestStart uint64
	for w, word := range eligible {
		for word != 0 {
			m := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if best < 0 || g.start[m] < bestStart {
				best, bestStart = m, g.start[m]
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// OnGrant bills the winner one quantum and advances virtual time to the
// winner's start tag (monotonically: the credit filter can force service
// out of start-tag order, and virtual time must never run backwards).
func (g *GWF) OnGrant(m int, _ int64) {
	if m < 0 || m >= g.n {
		return
	}
	if g.start[m] > g.vtime {
		g.vtime = g.start[m]
	}
	g.finish[m] = g.start[m] + g.quantum[m]
	// Anticipate a back-to-back request: without an intervening OnRequest
	// the master competes as if it re-requested immediately.
	g.start[m] = g.finish[m]
}

// Reset implements Policy.
func (g *GWF) Reset() {
	g.vtime = 0
	for i := range g.start {
		g.start[i] = 0
		g.finish[i] = 0
	}
}
