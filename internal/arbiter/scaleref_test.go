package arbiter

import (
	"fmt"
	"testing"

	"creditbus/internal/bitset"
	"creditbus/internal/rng"
)

// This file is the scale-out differential suite: every bitset policy is
// driven pick-for-pick against the preserved linear-scan reference
// (reference.go) over random request patterns at core counts from 2 to
// 1024, through both the legacy []bool Pick and the BitPicker form, with
// rng-draw-order equality asserted for the randomised policies.

// scaleCounts spans the refactor's target populations, including a
// word-boundary-straddling odd count.
var scaleCounts = []int{2, 8, 64, 257, 1024}

// mtsFine is a custom single-cycle-granularity profile exercising the MTS
// policy's non-default timescale path.
var mtsFine = []Timescale{{Num: 1, Den: 16, Depth: 2}, {Num: 1, Den: 96, Depth: 6}, {Num: 1, Den: 700, Depth: 40}}

// rngDrainer exposes the policy's rng stream so the test can prove two
// instances consumed exactly the same draws.
type rngDrainer interface{ drain() *rng.Stream }

func (l *Lottery) drain() *rng.Stream              { return l.src }
func (l *refLottery) drain() *rng.Stream           { return l.src }
func (p *RandomPermutation) drain() *rng.Stream    { return p.src }
func (p *refRandomPermutation) drain() *rng.Stream { return p.src }

func TestBitsetPoliciesMatchReferenceScans(t *testing.T) {
	for _, n := range scaleCounts {
		n := n
		tickets := make([]int64, n)
		src := rng.New(uint64(n)*977 + 5)
		for i := range tickets {
			tickets[i] = 1 + int64(src.Intn(5))
		}
		cases := []struct {
			name string
			mk   func(seed uint64) Policy
			ref  func(seed uint64) Policy
		}{
			{"FIFO", func(uint64) Policy { return NewFIFO(n) }, func(uint64) Policy { return newRefFIFO(n) }},
			{"RR", func(uint64) Policy { return NewRoundRobin(n) }, func(uint64) Policy { return newRefRoundRobin(n) }},
			{"PRI", func(uint64) Policy { return NewFixedPriority(n) }, func(uint64) Policy { return newRefFixedPriority(n) }},
			{"TDMA", func(uint64) Policy { return NewTDMA(n, 7) }, func(uint64) Policy { return NewTDMA(n, 7) }},
			{"LOT", func(s uint64) Policy { return NewLottery(n, tickets, s) },
				func(s uint64) Policy { return newRefLottery(n, tickets, s) }},
			{"RP", func(s uint64) Policy { return NewRandomPermutation(n, s) },
				func(s uint64) Policy { return newRefRandomPermutation(n, s) }},
			{"PF", func(uint64) Policy { return NewPropFair(n, tickets, 0) },
				func(uint64) Policy { return newRefPropFair(n, tickets, 0) }},
			{"PF-slow", func(uint64) Policy { return NewPropFair(n, nil, 4) },
				func(uint64) Policy { return newRefPropFair(n, nil, 4) }},
			{"GWF", func(uint64) Policy { return NewGWF(n, tickets) },
				func(uint64) Policy { return newRefGWF(n, tickets) }},
			{"MTS", func(uint64) Policy { return NewMTS(n, tickets, nil) },
				func(uint64) Policy { return newRefMTS(n, tickets, nil) }},
			{"MTS-fine", func(uint64) Policy { return NewMTS(n, nil, mtsFine) },
				func(uint64) Policy { return newRefMTS(n, nil, mtsFine) }},
		}
		for _, tc := range cases {
			tc := tc
			t.Run(fmt.Sprintf("%s/n=%d", tc.name, n), func(t *testing.T) {
				t.Parallel()
				seed := uint64(n)*31 + 7
				ref := tc.ref(seed)       // linear scan, legacy Pick
				viaBools := tc.mk(seed)   // bitset policy through Pick([]bool)
				viaBits := tc.mk(seed)    // bitset policy through PickBits
				bp := viaBits.(BitPicker) // every package policy implements it
				drivePolicies(t, n, ref, viaBools, bp, viaBits)

				// rng-draw-order equality: after identical runs the streams
				// must be at the identical position — the next draws agree.
				if rd, ok := ref.(rngDrainer); ok {
					a, b, c := rd.drain(), viaBools.(rngDrainer).drain(), viaBits.(rngDrainer).drain()
					for i := 0; i < 8; i++ {
						x, y, z := a.Uint64(), b.Uint64(), c.Uint64()
						if x != y || x != z {
							t.Fatalf("rng streams diverged after the run: draw %d = %d / %d / %d", i, x, y, z)
						}
					}
				}
			})
		}
	}
}

// drivePolicies runs a randomized request/eligibility pattern through the
// three instances, asserting pick-for-pick equality at every step. The
// pattern mixes dense, sparse and empty eligibility phases, occasional
// eligible-without-arrival masters (FIFO's attach-mid-run branch), resets
// and (where supported) reseeds.
func drivePolicies(t *testing.T, n int, ref, viaBools Policy, bits BitPicker, bitsOwner Policy) {
	t.Helper()
	pat := rng.New(uint64(n)*1013 + 3)
	pending := make([]bool, n)
	eligible := make([]bool, n)
	eset := bitset.New(n)
	cycle := int64(0)

	steps := 2000
	if n >= 257 {
		steps = 600 // keep the O(n)-per-step pattern generation bounded
	}
	for s := 0; s < steps; s++ {
		cycle += 1 + int64(pat.Intn(3))

		// New arrivals: a handful of fresh requests this cycle.
		for k, posts := 0, pat.Intn(4); k < posts; k++ {
			m := pat.Intn(n)
			if !pending[m] {
				pending[m] = true
				ref.OnRequest(m, cycle)
				viaBools.OnRequest(m, cycle)
				bitsOwner.OnRequest(m, cycle)
			}
		}

		// Eligibility: a phase-dependent random subset of the pending set.
		density := pat.Intn(100)
		for m := 0; m < n; m++ {
			eligible[m] = pending[m] && pat.Intn(100) < density
		}
		if pat.Intn(50) == 0 {
			// Eligible master the policy never saw an arrival for.
			eligible[pat.Intn(n)] = true
		}
		fillBits(eset, eligible, n)

		mr, okr := ref.Pick(eligible, cycle)
		mb, okb := viaBools.Pick(eligible, cycle)
		ms, oks := bits.PickBits(eset, cycle)
		if okr != okb || okr != oks || (okr && (mr != mb || mr != ms)) {
			t.Fatalf("step %d (cycle %d): picks diverged: ref=(%d,%v) bools=(%d,%v) bits=(%d,%v)",
				s, cycle, mr, okr, mb, okb, ms, oks)
		}
		if okr {
			if !eligible[mr] {
				t.Fatalf("step %d: picked ineligible master %d", s, mr)
			}
			ref.OnGrant(mr, cycle)
			viaBools.OnGrant(mr, cycle)
			bitsOwner.OnGrant(mr, cycle)
			pending[mr] = false
		}

		switch pat.Intn(200) {
		case 0:
			ref.Reset()
			viaBools.Reset()
			bitsOwner.Reset()
			for m := range pending {
				pending[m] = false
			}
		case 1:
			if r, ok := ref.(Reseeder); ok {
				ns := pat.Uint64()
				r.Reseed(ns)
				viaBools.(Reseeder).Reseed(ns)
				bitsOwner.(Reseeder).Reseed(ns)
				for m := range pending {
					pending[m] = false
				}
			}
		}
	}
}
