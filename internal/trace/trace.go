// Package trace records bus grant events and derives occupancy views from
// them: windowed per-master bandwidth shares (the quantity Figure-1-style
// fairness arguments are about), back-to-back grant detection (the H-CBA
// cap variant's signature behaviour), and CSV export for offline plotting.
package trace

import (
	"fmt"
	"io"

	"creditbus/internal/bus"
)

// Recorder collects grant events; plug its Record method into
// bus.Config.OnGrant. A max of 0 keeps everything.
type Recorder struct {
	max    int
	events []bus.GrantEvent
	drops  int64
}

// NewRecorder builds a recorder keeping at most max events (0 = unbounded).
func NewRecorder(max int) *Recorder {
	if max < 0 {
		panic("trace: negative recorder capacity")
	}
	return &Recorder{max: max}
}

// Record appends an event, dropping it if the recorder is full.
func (r *Recorder) Record(e bus.GrantEvent) {
	if r.max > 0 && len(r.events) >= r.max {
		r.drops++
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events (shared slice; do not mutate).
func (r *Recorder) Events() []bus.GrantEvent { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Drops returns how many events were discarded after the capacity filled.
func (r *Recorder) Drops() int64 { return r.drops }

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.drops = 0
}

// WindowShares splits [0, horizon) into ceil(horizon/window) windows and
// returns, per window, each master's fraction of the window's cycles spent
// holding the bus. Grants spanning window boundaries are apportioned.
func WindowShares(events []bus.GrantEvent, masters int, window, horizon int64) ([][]float64, error) {
	if masters <= 0 || window <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("trace: invalid WindowShares(%d, %d, %d)", masters, window, horizon)
	}
	nw := int((horizon + window - 1) / window)
	held := make([][]int64, nw)
	for i := range held {
		held[i] = make([]int64, masters)
	}
	for _, e := range events {
		if e.Master < 0 || e.Master >= masters {
			return nil, fmt.Errorf("trace: event master %d out of range", e.Master)
		}
		start, end := e.Cycle, e.Cycle+e.Hold // [start, end)
		if start < 0 {
			start = 0
		}
		if end > horizon {
			end = horizon
		}
		for c := start; c < end; {
			w := int(c / window)
			wEnd := (int64(w) + 1) * window
			if wEnd > end {
				wEnd = end
			}
			held[w][e.Master] += wEnd - c
			c = wEnd
		}
	}
	out := make([][]float64, nw)
	for w := range out {
		out[w] = make([]float64, masters)
		span := window
		if int64(w+1)*window > horizon {
			span = horizon - int64(w)*window
		}
		for m := 0; m < masters; m++ {
			out[w][m] = float64(held[w][m]) / float64(span)
		}
	}
	return out, nil
}

// BackToBack counts grants immediately following a grant to the same master
// (the next grant starts the cycle after the previous hold ends). The H-CBA
// cap variant permits these; threshold-equals-cap CBA forbids them for
// holds longer than the refill a single idle cycle provides.
func BackToBack(events []bus.GrantEvent) map[int]int64 {
	return BackToBackWithin(events, 0)
}

// BackToBackWithin counts consecutive same-master grants separated by at
// most slack idle cycles. Masters that post their next request only after a
// completion (the simulator's in-order cores and injectors) can never reach
// a zero gap through the one-cycle arbitration register, so slack 2 is the
// platform's effective "back to back".
func BackToBackWithin(events []bus.GrantEvent, slack int64) map[int]int64 {
	out := map[int]int64{}
	for i := 1; i < len(events); i++ {
		prev, cur := events[i-1], events[i]
		if cur.Master == prev.Master && cur.Cycle <= prev.Cycle+prev.Hold+slack {
			out[cur.Master]++
		}
	}
	return out
}

// LongestOccupancyRun returns the longest stretch of cycles master m held
// the bus without another master (or more than slack idle cycles)
// intervening — §III.A's "temporal starvation to the others" caused by
// back-to-back grants, measured from the victims' side.
func LongestOccupancyRun(events []bus.GrantEvent, m int, slack int64) int64 {
	var best, runStart, runEnd int64
	inRun := false
	flush := func() {
		if inRun && runEnd-runStart > best {
			best = runEnd - runStart
		}
	}
	for _, e := range events {
		if e.Master != m {
			flush()
			inRun = false
			continue
		}
		if inRun && e.Cycle <= runEnd+slack {
			runEnd = e.Cycle + e.Hold
			continue
		}
		flush()
		inRun = true
		runStart, runEnd = e.Cycle, e.Cycle+e.Hold
	}
	flush()
	return best
}

// WriteCSV emits events as "cycle,master,hold,wait,tag" rows with a header.
func WriteCSV(w io.Writer, events []bus.GrantEvent) error {
	if _, err := fmt.Fprintln(w, "cycle,master,hold,wait,tag"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n", e.Cycle, e.Master, e.Hold, e.Wait, e.Tag); err != nil {
			return err
		}
	}
	return nil
}
