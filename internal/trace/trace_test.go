package trace

import (
	"strings"
	"testing"

	"creditbus/internal/bus"
)

func ev(m int, cycle, hold int64) bus.GrantEvent {
	return bus.GrantEvent{Master: m, Cycle: cycle, Hold: hold}
}

func TestRecorderCap(t *testing.T) {
	r := NewRecorder(2)
	r.Record(ev(0, 0, 5))
	r.Record(ev(1, 5, 5))
	r.Record(ev(2, 10, 5))
	if r.Len() != 2 || r.Drops() != 1 {
		t.Fatalf("len=%d drops=%d", r.Len(), r.Drops())
	}
	r.Reset()
	if r.Len() != 0 || r.Drops() != 0 {
		t.Fatal("Reset incomplete")
	}
	// Unbounded recorder.
	u := NewRecorder(0)
	for i := 0; i < 100; i++ {
		u.Record(ev(0, int64(i), 1))
	}
	if u.Len() != 100 {
		t.Fatalf("unbounded recorder len=%d", u.Len())
	}
}

func TestNewRecorderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative capacity accepted")
		}
	}()
	NewRecorder(-1)
}

func TestWindowShares(t *testing.T) {
	events := []bus.GrantEvent{
		ev(0, 0, 10),  // fills window 0
		ev(1, 10, 10), // fills window 1
		ev(0, 25, 10), // spans windows 2 and 3: 5 cycles each
	}
	shares, err := WindowShares(events, 2, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 4 {
		t.Fatalf("windows = %d", len(shares))
	}
	cases := []struct {
		w, m int
		want float64
	}{
		{0, 0, 1.0}, {0, 1, 0}, {1, 1, 1.0}, {2, 0, 0.5}, {3, 0, 0.5},
	}
	for _, c := range cases {
		if got := shares[c.w][c.m]; got != c.want {
			t.Errorf("window %d master %d = %v, want %v", c.w, c.m, got, c.want)
		}
	}
}

func TestWindowSharesPartialLastWindow(t *testing.T) {
	// Horizon 15 with window 10: the second window spans 5 cycles.
	shares, err := WindowShares([]bus.GrantEvent{ev(0, 10, 5)}, 1, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if shares[1][0] != 1.0 {
		t.Fatalf("partial window share = %v, want 1.0", shares[1][0])
	}
}

func TestWindowSharesErrors(t *testing.T) {
	if _, err := WindowShares(nil, 0, 10, 10); err == nil {
		t.Error("masters=0 accepted")
	}
	if _, err := WindowShares([]bus.GrantEvent{ev(5, 0, 1)}, 2, 10, 10); err == nil {
		t.Error("out-of-range master accepted")
	}
}

func TestBackToBack(t *testing.T) {
	events := []bus.GrantEvent{
		ev(0, 0, 5),
		ev(0, 5, 5), // back-to-back with previous
		ev(1, 10, 5),
		ev(0, 20, 5), // gap: not back-to-back
		ev(0, 25, 5), // back-to-back
	}
	got := BackToBack(events)
	if got[0] != 2 || got[1] != 0 {
		t.Fatalf("BackToBack = %v", got)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	events := []bus.GrantEvent{{Master: 1, Cycle: 7, Hold: 5, Wait: 2, Tag: 3}}
	if err := WriteCSV(&sb, events); err != nil {
		t.Fatal(err)
	}
	want := "cycle,master,hold,wait,tag\n7,1,5,2,3\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}
