package sim

import (
	"reflect"
	"testing"

	"creditbus/internal/cpu"
	"creditbus/internal/workload"
)

// The differential suite is the correctness proof of the event-horizon
// stepping engine: for every arbitration policy × CBA variant × analysis
// mode × workload × seed it runs the same scenario under the per-cycle
// reference engine (ForcePerCycle) and under event stepping, and requires
// the full Result — execution time, wall cycles, CPU/bus/cache statistics,
// per-kind traffic — to be identical field for field. Any divergence in
// arbitration order, rng draw order, budget arithmetic or counter
// accounting shows up here as a mismatch.

// diffWorkload builds a fresh, truncated instance of a bundled workload.
// Fresh per run: machines consume the program cursor.
func diffWorkload(t testing.TB, name string, ops int) cpu.Program {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("missing workload %s", name)
	}
	tr := s.Build(1)
	if tr.Len() > ops {
		return cpu.NewTrace(tr.Ops()[:ops])
	}
	return tr
}

// diffMixed is a synthetic workload exercising the paths the bundled
// kernels rarely hit together: atomics (the 56-cycle worst case), store
// bursts deep enough to fill the store buffer, and back-to-back loads.
func diffMixed() cpu.Program {
	var ops []cpu.Op
	addr := uint64(0x0500_0000)
	for i := 0; i < 120; i++ {
		ops = append(ops,
			cpu.Op{Kind: cpu.OpLoad, Addr: addr + uint64(i)*0x1000},
			cpu.Op{Kind: cpu.OpALU, Cycles: 7},
			cpu.Op{Kind: cpu.OpStore, Addr: addr + uint64(i)*0x1000},
			cpu.Op{Kind: cpu.OpStore, Addr: addr + uint64(i)*0x2000 + 64},
			cpu.Op{Kind: cpu.OpStore, Addr: addr + uint64(i)*0x2000 + 96},
			cpu.Op{Kind: cpu.OpStore, Addr: addr + uint64(i)*0x2000 + 128},
			cpu.Op{Kind: cpu.OpStore, Addr: addr + uint64(i)*0x2000 + 160},
			cpu.Op{Kind: cpu.OpALU, Cycles: 2},
		)
		if i%5 == 4 {
			ops = append(ops, cpu.Op{Kind: cpu.OpAtomic, Addr: addr + uint64(i)*0x4000})
		}
		if i%11 == 10 {
			ops = append(ops, cpu.Op{Kind: cpu.OpALU, Cycles: 300})
		}
	}
	return cpu.NewTrace(ops)
}

// diffPrograms returns the named differential workload, fresh each call.
func diffPrograms(t testing.TB, name string) cpu.Program {
	switch name {
	case "mixed":
		return diffMixed()
	case "matrix":
		return diffWorkload(t, "matrix", 1200)
	case "cacheb":
		return diffWorkload(t, "cacheb", 500)
	case "tblook":
		return diffWorkload(t, "tblook", 900)
	}
	t.Fatalf("unknown differential workload %q", name)
	return nil
}

// diffCoRunner is the operation-mode contention generator: a looped stream
// of memory misses with the occasional store, enough to keep the bus warm
// for the whole run.
func diffCoRunner() cpu.Program {
	var ops []cpu.Op
	base := uint64(0x0600_0000)
	for i := 0; i < 40; i++ {
		ops = append(ops,
			cpu.Op{Kind: cpu.OpLoad, Addr: base + uint64(i)*0x8000},
			cpu.Op{Kind: cpu.OpALU, Cycles: 3},
		)
		if i%7 == 6 {
			ops = append(ops, cpu.Op{Kind: cpu.OpStore, Addr: base + uint64(i)*0x8000})
		}
	}
	return NewLooped(cpu.NewTrace(ops))
}

func TestDifferentialFastVsPerCycle(t *testing.T) {
	policies := []PolicyKind{PolicyRoundRobin, PolicyFIFO, PolicyTDMA,
		PolicyLottery, PolicyRandomPerm, PolicyPriority,
		PolicyPropFair, PolicyGWF, PolicyMTS}
	credits := []CreditKind{CreditOff, CreditCBA, CreditHCBAWeights, CreditHCBACap}
	workloads := []string{"matrix", "cacheb", "tblook", "mixed"}
	seeds := []uint64{11, 1234577, 987654321}

	for _, policy := range policies {
		for _, credit := range credits {
			for _, wl := range workloads {
				for _, seed := range seeds {
					policy, credit, wl, seed := policy, credit, wl, seed
					name := string(policy) + "/" + string(credit) + "/" + wl
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						base := DefaultConfig()
						base.Policy = policy
						base.Credit.Kind = credit
						// Exercise the weighted paths of the fairness zoo.
						switch policy {
						case PolicyPropFair, PolicyGWF, PolicyMTS:
							base.Weights = []int64{5, 1, 2, 1}
						}

						// WCET-estimation mode: Table I injectors.
						slow, fast := base, base
						slow.ForcePerCycle = true
						rs, err := RunMaxContention(slow, diffPrograms(t, wl), seed)
						if err != nil {
							t.Fatalf("per-cycle con: %v", err)
						}
						rf, err := RunMaxContention(fast, diffPrograms(t, wl), seed)
						if err != nil {
							t.Fatalf("fast con: %v", err)
						}
						if !reflect.DeepEqual(rs, rf) {
							t.Errorf("con diverged (seed %d):\n per-cycle: %+v\n fast:      %+v", seed, rs, rf)
						}

						// Operation mode: real looped co-runners.
						programs := func() []cpu.Program {
							ps := make([]cpu.Program, base.Cores)
							ps[base.TuA] = diffPrograms(t, wl)
							for i := range ps {
								if i != base.TuA {
									ps[i] = diffCoRunner()
								}
							}
							return ps
						}
						rs, err = RunWorkloads(slow, programs(), seed)
						if err != nil {
							t.Fatalf("per-cycle op: %v", err)
						}
						rf, err = RunWorkloads(fast, programs(), seed)
						if err != nil {
							t.Fatalf("fast op: %v", err)
						}
						if !reflect.DeepEqual(rs, rf) {
							t.Errorf("op diverged (seed %d):\n per-cycle: %+v\n fast:      %+v", seed, rs, rf)
						}
					})
				}
			}
		}
	}
}

// TestDifferentialIsolation covers the contention-free corner, where the
// bus idles for long stretches and the horizon is driven by the TuA alone.
func TestDifferentialIsolation(t *testing.T) {
	for _, wl := range []string{"matrix", "cacheb", "mixed"} {
		for _, credit := range []CreditKind{CreditOff, CreditCBA} {
			cfg := DefaultConfig()
			cfg.Credit.Kind = credit
			slow := cfg
			slow.ForcePerCycle = true
			rs, err := RunIsolation(slow, diffPrograms(t, wl), 7)
			if err != nil {
				t.Fatalf("per-cycle iso: %v", err)
			}
			rf, err := RunIsolation(cfg, diffPrograms(t, wl), 7)
			if err != nil {
				t.Fatalf("fast iso: %v", err)
			}
			if !reflect.DeepEqual(rs, rf) {
				t.Errorf("%s/%s iso diverged:\n per-cycle: %+v\n fast:      %+v", wl, credit, rs, rf)
			}
		}
	}
}

// TestStepOnQuiescentMachine pins Step's behaviour when no component will
// ever act again (every program finished): a bare Step loop must advance
// one cycle at a time, exactly like Tick, not bulk-jump toward the no-event
// sentinel.
func TestStepOnQuiescentMachine(t *testing.T) {
	cfg := DefaultConfig()
	programs := make([]cpu.Program, cfg.Cores)
	programs[0] = cpu.NewTrace([]cpu.Op{{Kind: cpu.OpALU, Cycles: 3}})
	m, err := NewMachine(cfg, programs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for !m.Done() {
		m.Step()
	}
	doneAt := m.Cycle()
	for i := 0; i < 5; i++ {
		m.Step()
	}
	if got := m.Cycle(); got != doneAt+5 {
		t.Fatalf("5 quiescent Steps advanced %d cycles, want 5", got-doneAt)
	}
	if idle := m.Bus().IdleCycles(); idle != m.Cycle() {
		t.Fatalf("idle bus accounting diverged: %d idle of %d cycles", idle, m.Cycle())
	}
}

// TestDifferentialLimitGuard pins that both engines trip Run's deadlock
// guard at the same cycle: event stepping parks at the limit instead of
// executing an event beyond it.
func TestDifferentialLimitGuard(t *testing.T) {
	// A TuA that never finishes: a looped all-ALU program keeps the machine
	// alive with no bus traffic at all.
	build := func() []cpu.Program {
		ps := make([]cpu.Program, 4)
		ps[0] = NewLooped(cpu.NewTrace([]cpu.Op{{Kind: cpu.OpALU, Cycles: 9}}))
		return ps
	}
	for _, force := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.ForcePerCycle = force
		m, err := NewMachine(cfg, build(), 3)
		if err != nil {
			t.Fatal(err)
		}
		const limit = 10_000
		at, err := m.Run(limit)
		if err == nil {
			t.Fatalf("force=%v: expected limit error", force)
		}
		if at != limit {
			t.Errorf("force=%v: limit tripped at %d, want %d", force, at, limit)
		}
		if got := m.Core(0).Stats().Cycles; got != limit {
			t.Errorf("force=%v: TuA cycles %d at limit, want %d", force, got, limit)
		}
	}
}
