package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"creditbus/internal/cpu"
)

// The reuse-differential suite is the correctness proof of the machine
// pooling layer: a Runner that recycles one Machine across runs must
// produce Results field-for-field identical to fresh machines, across
// policies, credit variants, run kinds, engines and structural
// configuration changes (which exercise the rebuild paths of Reuse).

// reuseConfigs is a grid that crosses every policy with every credit kind
// and a couple of structural variations, so consecutive runs on one Runner
// flip between reusing components and rebuilding them.
func reuseConfigs() []Config {
	var out []Config
	for _, pol := range []PolicyKind{PolicyRoundRobin, PolicyFIFO, PolicyTDMA, PolicyLottery, PolicyRandomPerm, PolicyPriority, PolicyPropFair, PolicyGWF, PolicyMTS} {
		for _, credit := range []CreditKind{CreditOff, CreditCBA, CreditHCBAWeights, CreditHCBACap} {
			cfg := DefaultConfig()
			cfg.Policy = pol
			cfg.Credit.Kind = credit
			out = append(out, cfg)
		}
	}
	// Structural variations: core count, cache geometry, latency model,
	// lottery weights — each forces the matching rebuild path mid-sequence.
	small := DefaultConfig()
	small.Cores = 2
	small.L1Sets, small.L2Sets = 16, 64
	out = append(out, small)
	slow := DefaultConfig()
	slow.Latency.Mem = 40
	slow.Credit.Kind = CreditCBA
	out = append(out, slow)
	weighted := DefaultConfig()
	weighted.Policy = PolicyLottery
	weighted.LotteryTickets = []int64{5, 1, 1, 1}
	out = append(out, weighted)
	// Weighted fairness-zoo variants with non-default knobs: each flips the
	// matching policyShapeEqual branch (weights, EWMA shift, timescales).
	wpf := DefaultConfig()
	wpf.Policy = PolicyPropFair
	wpf.Weights = []int64{4, 2, 1, 1}
	wpf.PFAvgShift = 3
	out = append(out, wpf)
	wgwf := DefaultConfig()
	wgwf.Policy = PolicyGWF
	wgwf.Weights = []int64{1, 6, 1, 1}
	out = append(out, wgwf)
	wmts := DefaultConfig()
	wmts.Policy = PolicyMTS
	wmts.Weights = []int64{2, 1, 1, 2}
	wmts.MTSTimescales = []Timescale{{Num: 1, Den: 32, Depth: 3}, {Num: 1, Den: 256, Depth: 20}}
	out = append(out, wmts)
	return out
}

// TestReuseDifferentialSim drives one Runner across the whole grid — wcet,
// isolation and workloads runs, both engines, two seeds each — and
// compares every Result against a fresh machine's.
func TestReuseDifferentialSim(t *testing.T) {
	var rn Runner
	for _, base := range reuseConfigs() {
		for _, perCycle := range []bool{false, true} {
			cfg := base
			cfg.ForcePerCycle = perCycle
			for _, seed := range []uint64{3, 0x9e3779b97f4a7c15} {
				prog := func() cpu.Program { return diffPrograms(t, "cacheb") }

				fresh, ferr := RunMaxContention(cfg, prog(), seed)
				reused, rerr := rn.MaxContention(cfg, prog(), seed)
				if (ferr == nil) != (rerr == nil) {
					t.Fatalf("%s/%s wcet: fresh err %v, reused err %v", cfg.Policy, cfg.Credit.Kind, ferr, rerr)
				}
				if !reflect.DeepEqual(fresh, reused) {
					t.Errorf("%s/%s percycle=%v seed=%d wcet: reused diverges: %+v vs %+v",
						cfg.Policy, cfg.Credit.Kind, perCycle, seed, reused, fresh)
				}

				fresh, ferr = RunIsolation(cfg, prog(), seed)
				reused, rerr = rn.Isolation(cfg, prog(), seed)
				if (ferr == nil) != (rerr == nil) {
					t.Fatalf("%s/%s iso: fresh err %v, reused err %v", cfg.Policy, cfg.Credit.Kind, ferr, rerr)
				}
				if !reflect.DeepEqual(fresh, reused) {
					t.Errorf("%s/%s percycle=%v seed=%d iso: reused diverges", cfg.Policy, cfg.Credit.Kind, perCycle, seed)
				}

				workloads := func() []cpu.Program {
					ps := make([]cpu.Program, cfg.Cores)
					ps[cfg.TuA] = prog()
					for i := range ps {
						if i != cfg.TuA {
							ps[i] = diffCoRunner()
						}
					}
					return ps
				}
				fresh, ferr = RunWorkloads(cfg, workloads(), seed)
				reused, rerr = rn.Workloads(cfg, workloads(), seed)
				if (ferr == nil) != (rerr == nil) {
					t.Fatalf("%s/%s workloads: fresh err %v, reused err %v", cfg.Policy, cfg.Credit.Kind, ferr, rerr)
				}
				if !reflect.DeepEqual(fresh, reused) {
					t.Errorf("%s/%s percycle=%v seed=%d workloads: reused diverges", cfg.Policy, cfg.Credit.Kind, perCycle, seed)
				}
			}
		}
	}
}

// TestReuseQuickProperty is the testing/quick property of the issue: two
// consecutive Reuse+Run cycles on one machine equal two fresh runs, for
// randomly drawn (policy, credit, seeds, engine) combinations.
func TestReuseQuickProperty(t *testing.T) {
	policies := []PolicyKind{PolicyRoundRobin, PolicyFIFO, PolicyTDMA, PolicyLottery, PolicyRandomPerm, PolicyPriority, PolicyPropFair, PolicyGWF, PolicyMTS}
	credits := []CreditKind{CreditOff, CreditCBA, CreditHCBAWeights, CreditHCBACap}
	prop := func(polIdx, creditIdx uint8, seed1, seed2 uint64, perCycle bool) bool {
		cfg := DefaultConfig()
		cfg.Policy = policies[int(polIdx)%len(policies)]
		cfg.Credit.Kind = credits[int(creditIdx)%len(credits)]
		cfg.ForcePerCycle = perCycle

		fresh1, err1 := RunMaxContention(cfg, diffPrograms(t, "matrix"), seed1)
		fresh2, err2 := RunMaxContention(cfg, diffPrograms(t, "matrix"), seed2)

		var rn Runner
		reused1, rerr1 := rn.MaxContention(cfg, diffPrograms(t, "matrix"), seed1)
		reused2, rerr2 := rn.MaxContention(cfg, diffPrograms(t, "matrix"), seed2)

		return (err1 == nil) == (rerr1 == nil) && (err2 == nil) == (rerr2 == nil) &&
			reflect.DeepEqual(fresh1, reused1) && reflect.DeepEqual(fresh2, reused2)
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestReuseErrorDiscardsMachine: after a failed Reuse the runner must
// rebuild rather than run a partially reinitialised machine.
func TestReuseErrorDiscardsMachine(t *testing.T) {
	var rn Runner
	cfg := DefaultConfig()
	if _, err := rn.MaxContention(cfg, diffPrograms(t, "matrix"), 1); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Credit = CreditSpec{Kind: CreditHCBAWeights, Num: 9, Den: 2} // share ≥ 1 is rejected
	if _, err := rn.MaxContention(bad, diffPrograms(t, "matrix"), 1); err == nil {
		t.Fatal("invalid credit spec must fail")
	}
	got, err := rn.MaxContention(cfg, diffPrograms(t, "matrix"), 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunMaxContention(cfg, diffPrograms(t, "matrix"), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-error runner diverges: %+v vs %+v", got, want)
	}
}

// TestReuseSteadyStateAllocs pins the tentpole: a steady-state campaign
// run on a warm Runner performs (almost) no allocations. The residual
// budget covers the per-run program clone and the Result's MemCounts map —
// everything platform-sized (machine, caches, bus, arbiter) must be
// recycled.
func TestReuseSteadyStateAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Credit.Kind = CreditCBA
	proto := diffPrograms(t, "matrix")
	var rn Runner
	if _, err := rn.MaxContention(cfg, proto, 1); err != nil { // warm-up
		t.Fatal(err)
	}
	seed := uint64(2)
	avg := testing.AllocsPerRun(8, func() {
		prog, _ := cpu.TryClone(proto)
		if _, err := rn.MaxContention(cfg, prog, seed); err != nil {
			t.Fatal(err)
		}
		seed++
	})
	// A fresh 4-core machine costs hundreds of allocations (caches alone
	// are 16k+ lines); the warm path must be down to single digits.
	if avg > 12 {
		t.Fatalf("steady-state campaign run allocates %.0f objects; want ≤ 12", avg)
	}
}
