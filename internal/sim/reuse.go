package sim

import (
	"fmt"

	"creditbus/internal/arbiter"
	"creditbus/internal/bitset"
	"creditbus/internal/bus"
	"creditbus/internal/cache"
	"creditbus/internal/core"
	"creditbus/internal/cpu"
	"creditbus/internal/mem"
	"creditbus/internal/rng"
)

// This file is the machine-pooling layer: Reuse reinitialises an existing
// Machine in place for a new (cfg, programs, seed) triple, recycling every
// component whose constructor inputs are unchanged — cores, ports, caches,
// bus state, arbitration policy, CBA budgets, COMP latches, memory
// controller — instead of reallocating them. Measurement campaigns rerun
// one platform configuration thousands of times with only the seed (and
// program cursor) varying, so after the first run the hot path allocates
// nothing; a structural change (different core count, policy kind, cache
// geometry, ...) falls back to rebuilding exactly the components it
// invalidates.
//
// The correctness bar is bit-identity: a reused machine must be
// indistinguishable from NewMachine(cfg, programs, seed). Two properties
// carry that:
//
//   - seed discipline — Reuse derives the policy seed and the per-core
//     cache placement/replacement seeds from the run seed in exactly
//     NewMachine's order (policy first, then four draws per program-bearing
//     core in index order), so every random stream starts from the same
//     state either way;
//   - reset depth — every recycled component exposes a reset that restores
//     its just-built state (cpu.Core.Rebind, cache.Cache.Reuse,
//     bus.Bus.Reuse, core.Arbiter.Reset, core.Signals.Reset,
//     mem.Controller.Reset, arbiter.Reseeder), with no counter, latch,
//     buffer or rng surviving from the previous run.
//
// The reuse-differential suite (reuse_test.go, scenario.TestReuseDifferential
// and the scengen reuse oracle) enforces bit-identity over the full corpus
// and the randomized scenario space on both engines.

// creditShapeEqual reports whether buildCredit would produce an identical
// arbiter under both configurations, i.e. whether the existing credit
// filter (possibly nil) can be recycled with a plain Reset.
func creditShapeEqual(a, b Config) bool {
	return a.Credit == b.Credit &&
		a.Cores == b.Cores &&
		a.Latency.MaxHold() == b.Latency.MaxHold() &&
		a.Mode == b.Mode &&
		a.TuA == b.TuA
}

// policyShapeEqual reports whether buildPolicy would produce an identical
// policy (up to the per-run seed) under both configurations, i.e. whether
// the existing policy can be recycled with a Reseed/Reset.
func policyShapeEqual(a, b Config) bool {
	if a.Policy != b.Policy || a.Cores != b.Cores {
		return false
	}
	switch b.Policy {
	case PolicyTDMA:
		// TDMA's slot width is MaxHold.
		return a.Latency.MaxHold() == b.Latency.MaxHold()
	case PolicyLottery:
		return int64sEqual(a.LotteryTickets, b.LotteryTickets)
	case PolicyPropFair:
		return a.PFAvgShift == b.PFAvgShift && int64sEqual(a.Weights, b.Weights)
	case PolicyGWF:
		return int64sEqual(a.Weights, b.Weights)
	case PolicyMTS:
		if !int64sEqual(a.Weights, b.Weights) || len(a.MTSTimescales) != len(b.MTSTimescales) {
			return false
		}
		for i := range a.MTSTimescales {
			if a.MTSTimescales[i] != b.MTSTimescales[i] {
				return false
			}
		}
		return true
	default:
		return true
	}
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reuse reinitialises the machine in place as NewMachine(cfg, programs,
// seed) would build it, recycling allocated components wherever the new
// configuration permits. On success the machine is bit-identical to a
// fresh one — same component states, same random streams, same
// step-for-step behaviour on both engines. On error the machine may be
// partially reinitialised and must be discarded (exactly as a failed
// NewMachine yields no machine); the errors themselves match NewMachine's.
func (m *Machine) Reuse(cfg Config, programs []cpu.Program, seed uint64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(programs) != cfg.Cores {
		return fmt.Errorf("sim: %d programs for %d cores", len(programs), cfg.Cores)
	}

	old := m.cfg

	// Seed discipline: one stream, same draw order as NewMachine.
	var seeds rng.Stream
	seeds.Reseed(seed)
	policySeed := seeds.Uint64()

	// CBA filter and Table I signal block.
	if creditShapeEqual(old, cfg) {
		if m.credit != nil {
			m.credit.Reset()
		}
	} else {
		credit, err := cfg.buildCredit()
		if err != nil {
			return err
		}
		m.credit = credit
		m.signals = nil // bound to the replaced arbiter; rebuild below
	}
	if m.credit != nil && cfg.Mode == core.WCETMode {
		if m.signals != nil && m.signals.TuA() == cfg.TuA {
			m.signals.Reset()
		} else {
			m.signals = core.NewSignals(m.credit, core.WCETMode, cfg.TuA)
		}
	} else {
		m.signals = nil
	}

	// Memory controller: latency model unchanged means a counter reset.
	if m.memctl.Latency() == cfg.Latency {
		m.memctl.Reset()
	} else {
		memctl, err := mem.NewController(cfg.Latency)
		if err != nil {
			return err
		}
		m.memctl = memctl
	}

	// Arbitration policy: recycled and re-armed with the run's policy seed
	// (randomised policies restart their stream exactly as a fresh
	// construction would; deterministic ones reset), rebuilt on a shape
	// change.
	var pol arbiter.Policy
	if policyShapeEqual(old, cfg) {
		pol = m.sharedBus.Policy()
		if r, ok := pol.(arbiter.Reseeder); ok {
			r.Reseed(policySeed)
		} else {
			pol.Reset()
		}
	} else {
		pol = cfg.buildPolicy(policySeed)
	}

	if err := m.sharedBus.Reuse(bus.Config{
		Masters:    cfg.Cores,
		MaxHold:    cfg.Latency.MaxHold(),
		Policy:     pol,
		Credit:     m.credit,
		Signals:    m.signals,
		OnComplete: m.onComplete,
	}); err != nil {
		return err
	}

	// Per-core slots, in index order so cache seed draws line up with
	// NewMachine's.
	if len(m.cores) != cfg.Cores {
		m.cores = make([]*cpu.Core, cfg.Cores)
		m.ports = make([]*port, cfg.Cores)
		m.l1s = make([]*cache.Cache, cfg.Cores)
		m.l2s = make([]*cache.Cache, cfg.Cores)
	}
	m.injectors = m.injectors[:0]
	m.live = m.live[:0]
	if words := bitset.Words(cfg.Cores); cap(m.injectorBits) >= words {
		m.injectorBits = m.injectorBits[:words]
		m.injectorBits.Reset()
	} else {
		m.injectorBits = bitset.New(cfg.Cores)
	}
	for i := 0; i < cfg.Cores; i++ {
		if cfg.Mode == core.WCETMode && i != cfg.TuA {
			if programs[i] != nil {
				return fmt.Errorf("sim: WCET mode: core %d must be injector-driven (nil program)", i)
			}
			m.clearSlot(i)
			m.injectors = append(m.injectors, i)
			m.injectorBits.Set(i)
			continue
		}
		if programs[i] == nil {
			m.clearSlot(i)
			continue
		}
		l1cfg := cache.Config{
			Sets: cfg.L1Sets, Ways: cfg.L1Ways, LineBytes: cfg.LineBytes,
			PlacementSeed: seeds.Uint64(), ReplacementSeed: seeds.Uint64(),
		}
		l2cfg := cache.Config{
			Sets: cfg.L2Sets, Ways: cfg.L2Ways, LineBytes: cfg.LineBytes,
			WriteBack: true, AllocOnWrite: true,
			PlacementSeed: seeds.Uint64(), ReplacementSeed: seeds.Uint64(),
		}
		if err := m.reuseCache(&m.l1s[i], l1cfg); err != nil {
			return err
		}
		if err := m.reuseCache(&m.l2s[i], l2cfg); err != nil {
			return err
		}
		if m.ports[i] != nil {
			m.ports[i].reset(m.l1s[i], m.l2s[i])
		} else {
			m.ports[i] = &port{machine: m, id: i, l1: m.l1s[i], l2: m.l2s[i]}
		}
		if m.cores[i] != nil {
			m.cores[i].Rebind(programs[i])
		} else {
			m.cores[i] = cpu.NewCore(programs[i], m.ports[i])
		}
		m.live = append(m.live, m.cores[i])
	}

	if cap(m.coreNext) >= len(m.live) {
		m.coreNext = m.coreNext[:len(m.live)]
	} else {
		m.coreNext = make([]int64, len(m.live))
	}

	m.cfg = cfg
	m.cycle = 0
	m.busNext = 0
	return nil
}

// reuseCache reinitialises *slot in place when one exists, building it
// fresh otherwise.
func (m *Machine) reuseCache(slot **cache.Cache, cfg cache.Config) error {
	if *slot != nil {
		return (*slot).Reuse(cfg)
	}
	c, err := cache.New(cfg)
	if err != nil {
		return err
	}
	*slot = c
	return nil
}

// clearSlot empties core slot i (idle or injector-driven masters own no
// core, port or caches).
func (m *Machine) clearSlot(i int) {
	m.cores[i] = nil
	m.ports[i] = nil
	m.l1s[i] = nil
	m.l2s[i] = nil
}
