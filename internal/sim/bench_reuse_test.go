package sim

import (
	"testing"

	"creditbus/internal/cpu"
	"creditbus/internal/workload"
)

// The allocation benchmarks pin the machine-pooling layer's value: one
// full max-contention run on a fresh machine per iteration (the
// pre-pooling campaign protocol) against the same run on a warm Runner.
// Run them with -benchmem; B/op and allocs/op of the Reused variant are
// the numbers the BENCH_sim.json allocation gate tracks.

func benchRunSetup(b *testing.B) (Config, *cpu.Trace) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Credit.Kind = CreditCBA
	s, ok := workload.ByName("canrdr")
	if !ok {
		b.Fatal("missing workload canrdr")
	}
	return cfg, s.Build(1)
}

// BenchmarkMachineRunFresh builds a new platform every run.
func BenchmarkMachineRunFresh(b *testing.B) {
	cfg, proto := benchRunSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, _ := cpu.TryClone(proto)
		if _, err := RunMaxContention(cfg, prog, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineRunReused recycles one machine across all runs — the
// steady state of a pooled campaign worker.
func BenchmarkMachineRunReused(b *testing.B) {
	cfg, proto := benchRunSetup(b)
	var rn Runner
	if _, err := rn.MaxContention(cfg, proto.Clone(), 0); err != nil { // warm-up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, _ := cpu.TryClone(proto)
		if _, err := rn.MaxContention(cfg, prog, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
