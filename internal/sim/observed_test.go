package sim

import (
	"reflect"
	"testing"

	"creditbus/internal/bus"
	"creditbus/internal/cpu"
)

// TestWorkloadsObserved pins the grant-observer plumbing down on three
// properties, per policy of the fairness zoo:
//
//   - observing a run must not perturb it — the Result equals the
//     unobserved run's bit for bit;
//   - the grant stream is engine-independent — fast and per-cycle emit
//     exactly the same events in the same order;
//   - the stream reconciles with the simulation — every master's hold
//     cycles are positive, starts are non-decreasing, and occupancies
//     never overlap (the bus is non-split).
func TestWorkloadsObserved(t *testing.T) {
	for _, policy := range []PolicyKind{PolicyPropFair, PolicyGWF, PolicyMTS} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Policy = policy
			cfg.Weights = []int64{3, 1, 1, 2}

			programs := func() []cpu.Program {
				ps := make([]cpu.Program, cfg.Cores)
				ps[cfg.TuA] = diffPrograms(t, "cacheb")
				for i := range ps {
					if i != cfg.TuA {
						ps[i] = diffCoRunner()
					}
				}
				return ps
			}

			collect := func(c Config) ([]bus.GrantEvent, Result) {
				var rn Runner
				var events []bus.GrantEvent
				res, err := rn.WorkloadsObserved(c, programs(), 99, func(ev bus.GrantEvent) {
					events = append(events, ev)
				})
				if err != nil {
					t.Fatalf("observed run: %v", err)
				}
				return events, res
			}

			fastEvents, fastRes := collect(cfg)
			slow := cfg
			slow.ForcePerCycle = true
			slowEvents, slowRes := collect(slow)

			var rn Runner
			plain, err := rn.Workloads(cfg, programs(), 99)
			if err != nil {
				t.Fatalf("unobserved run: %v", err)
			}
			if !reflect.DeepEqual(plain, fastRes) || !reflect.DeepEqual(plain, slowRes) {
				t.Fatalf("observing perturbed the run:\n plain: %+v\n fast:  %+v\n slow:  %+v",
					plain, fastRes, slowRes)
			}
			if len(fastEvents) == 0 {
				t.Fatal("observed no grants")
			}
			if !reflect.DeepEqual(fastEvents, slowEvents) {
				t.Fatalf("grant streams diverged between engines: %d fast vs %d per-cycle events",
					len(fastEvents), len(slowEvents))
			}
			end := int64(0)
			for i, ev := range fastEvents {
				if ev.Master < 0 || ev.Master >= cfg.Cores {
					t.Fatalf("event %d: master %d out of range", i, ev.Master)
				}
				if ev.Hold < 1 {
					t.Fatalf("event %d: hold %d", i, ev.Hold)
				}
				if ev.Cycle < end {
					t.Fatalf("event %d: grant at %d overlaps previous occupancy ending %d", i, ev.Cycle, end)
				}
				end = ev.Cycle + ev.Hold
			}

			// The observer detaches after the run: a later run on the same
			// Runner must not fire the old callback.
			var rn2 Runner
			fired := 0
			if _, err := rn2.WorkloadsObserved(cfg, programs(), 7, func(bus.GrantEvent) { fired++ }); err != nil {
				t.Fatalf("runner reuse setup: %v", err)
			}
			after := fired
			if _, err := rn2.Workloads(cfg, programs(), 8); err != nil {
				t.Fatalf("unobserved reuse run: %v", err)
			}
			if fired != after {
				t.Fatal("observer from a prior run fired on a later run")
			}
		})
	}
}
