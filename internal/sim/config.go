// Package sim assembles the full platform of the paper — in-order cores
// with private randomised L1 data caches, per-core partitions of a
// randomised write-back L2, a non-split shared bus with pluggable
// arbitration, optional credit-based arbitration, and a fixed-latency
// memory controller — and runs tasks on it in the paper's three scenarios:
// isolation, operation-mode contention (real co-runners) and
// WCET-estimation mode (Table I contention injectors).
package sim

import (
	"fmt"

	"creditbus/internal/arbiter"
	"creditbus/internal/cache"
	"creditbus/internal/core"
	"creditbus/internal/mem"
)

// PolicyKind names an underlying arbitration policy.
type PolicyKind string

// The supported policies (see package arbiter).
const (
	PolicyRoundRobin PolicyKind = "RR"
	PolicyFIFO       PolicyKind = "FIFO"
	PolicyTDMA       PolicyKind = "TDMA"
	PolicyLottery    PolicyKind = "LOT"
	PolicyRandomPerm PolicyKind = "RP"
	PolicyPriority   PolicyKind = "PRI"
	// The fairness-policy zoo: proportional fair with EWMA rate averaging,
	// general weighted fairness (start-time fair queueing over explicit
	// rates) and the multi-timescale token-bucket profile.
	PolicyPropFair PolicyKind = "PF"
	PolicyGWF      PolicyKind = "GWF"
	PolicyMTS      PolicyKind = "MTS"
)

// MaxWeight bounds per-core arbitration weights (Weights, LotteryTickets):
// large enough for any realistic entitlement ratio, small enough that every
// weighted integer product downstream stays far from overflow.
const MaxWeight = 1 << 20

// Timescale is one token bucket of an MTS bandwidth profile
// (Config.MTSTimescales); see arbiter.Timescale.
type Timescale = arbiter.Timescale

// CreditKind selects the CBA configuration in front of the policy.
type CreditKind string

// The CBA variants of the paper.
const (
	// CreditOff disables CBA (the paper's baseline configurations).
	CreditOff CreditKind = "off"
	// CreditCBA is homogeneous CBA: every core refills 1/N per cycle.
	CreditCBA CreditKind = "cba"
	// CreditHCBAWeights is H-CBA variant 2: the privileged core refills
	// Num/Den per cycle, the others split the rest evenly (the paper's
	// evaluation uses 1/2 vs 1/6 each).
	CreditHCBAWeights CreditKind = "hcba-weights"
	// CreditHCBACap is H-CBA variant 1: homogeneous refill, but the
	// privileged core's budget saturates at CapFactor times the
	// eligibility threshold, enabling back-to-back grants.
	CreditHCBACap CreditKind = "hcba-cap"
)

// CreditSpec configures CBA.
type CreditSpec struct {
	Kind CreditKind
	// Privileged is the core receiving extra bandwidth (H-CBA variants).
	Privileged int
	// Num/Den is the privileged core's bandwidth share (weights variant).
	Num, Den int64
	// CapFactor multiplies the privileged core's budget cap (cap variant).
	CapFactor int64
}

// MaxCores is the largest supported core/bus-master population. The scale-out
// structures (eligibility bitsets, the bus's visibility ring, the flat
// horizon scratch) have no intrinsic ceiling, but every supported count is
// exercised by the differential and oracle suites — counts beyond this are
// rejected by Validate rather than run unverified.
const MaxCores = 1024

// Config describes the platform. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Cores is the number of cores/bus masters.
	Cores int

	// L1Sets/L1Ways and L2Sets/L2Ways size the private L1 data cache and
	// the per-core L2 partition; LineBytes is shared.
	L1Sets, L1Ways int
	L2Sets, L2Ways int
	LineBytes      int

	// StoreBufferDepth is the write-through store buffer capacity.
	StoreBufferDepth int

	// Latency is the bus transaction cost model.
	Latency mem.Latency

	// Policy is the underlying arbitration policy.
	Policy PolicyKind
	// LotteryTickets optionally weights the lottery policy.
	LotteryTickets []int64
	// Weights optionally weights the fairness-zoo policies (PF, GWF, MTS):
	// one entitlement per core, each in [1, MaxWeight]. Nil means equal.
	Weights []int64
	// PFAvgShift sets the PF policy's EWMA coefficient β = 2^-shift
	// (0 = the default shift 1, i.e. β = 0.5).
	PFAvgShift int
	// MTSTimescales overrides the MTS policy's token-bucket profile, fine
	// to coarse (nil = arbiter.DefaultTimescales).
	MTSTimescales []arbiter.Timescale

	// Credit selects the CBA variant.
	Credit CreditSpec

	// ForcePerCycle disables the event-horizon stepping engine and drives
	// the machine one Tick per simulated cycle. The two engines are
	// bit-identical (asserted by the differential suite in this package);
	// the per-cycle path exists as the reference implementation and for
	// debugging, so the default — false — is the fast path.
	ForcePerCycle bool

	// Mode selects operation or WCET-estimation mode (Table I).
	Mode core.Mode
	// TuA is the core hosting the task under analysis (WCET mode; also
	// the privileged default for H-CBA).
	TuA int
}

// DefaultConfig returns the paper's platform: 4 cores, 4 KiB 2-way L1 data
// caches, 32 KiB 4-way L2 partitions, 32-byte lines, 5/28-cycle latencies
// (MaxL = 56), random-permutations arbitration, CBA off, operation mode.
func DefaultConfig() Config {
	return Config{
		Cores:            4,
		L1Sets:           64,
		L1Ways:           2,
		L2Sets:           256,
		L2Ways:           4,
		LineBytes:        32,
		StoreBufferDepth: 4,
		Latency:          mem.DefaultLatency(),
		Policy:           PolicyRandomPerm,
		Credit:           CreditSpec{Kind: CreditOff},
		Mode:             core.OperationMode,
		TuA:              0,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: Cores = %d, need > 0", c.Cores)
	}
	if c.Cores > MaxCores {
		return fmt.Errorf("sim: Cores = %d exceeds the supported maximum of %d", c.Cores, MaxCores)
	}
	if c.TuA < 0 || c.TuA >= c.Cores {
		return fmt.Errorf("sim: TuA = %d out of range", c.TuA)
	}
	if c.StoreBufferDepth < 1 {
		return fmt.Errorf("sim: StoreBufferDepth = %d, need ≥ 1", c.StoreBufferDepth)
	}
	if err := c.Latency.Validate(); err != nil {
		return err
	}
	switch c.Policy {
	case PolicyRoundRobin, PolicyFIFO, PolicyTDMA, PolicyLottery, PolicyRandomPerm, PolicyPriority,
		PolicyPropFair, PolicyGWF, PolicyMTS:
	default:
		return fmt.Errorf("sim: unknown policy %q", c.Policy)
	}
	if len(c.Weights) != 0 {
		switch c.Policy {
		case PolicyPropFair, PolicyGWF, PolicyMTS:
		default:
			return fmt.Errorf("sim: Weights only apply to the PF/GWF/MTS policies, not %q", c.Policy)
		}
		if len(c.Weights) != c.Cores {
			return fmt.Errorf("sim: %d Weights for %d cores", len(c.Weights), c.Cores)
		}
		for i, w := range c.Weights {
			if w < 1 || w > MaxWeight {
				return fmt.Errorf("sim: Weights[%d] = %d outside [1, %d]", i, w, MaxWeight)
			}
		}
	}
	if c.PFAvgShift != 0 {
		if c.Policy != PolicyPropFair {
			return fmt.Errorf("sim: PFAvgShift only applies to policy PF, not %q", c.Policy)
		}
		if c.PFAvgShift < 1 || c.PFAvgShift > 30 {
			return fmt.Errorf("sim: PFAvgShift = %d outside [1, 30]", c.PFAvgShift)
		}
	}
	if len(c.MTSTimescales) != 0 {
		if c.Policy != PolicyMTS {
			return fmt.Errorf("sim: MTSTimescales only apply to policy MTS, not %q", c.Policy)
		}
		if len(c.MTSTimescales) > 8 {
			return fmt.Errorf("sim: %d MTSTimescales, need ≤ 8", len(c.MTSTimescales))
		}
		for i, ts := range c.MTSTimescales {
			for _, f := range []struct {
				name string
				v    int64
			}{{"Num", ts.Num}, {"Den", ts.Den}, {"Depth", ts.Depth}} {
				if f.v < 1 || f.v > MaxWeight {
					return fmt.Errorf("sim: MTSTimescales[%d].%s = %d outside [1, %d]", i, f.name, f.v, MaxWeight)
				}
			}
		}
	}
	switch c.Credit.Kind {
	case CreditOff, CreditCBA, CreditHCBAWeights, CreditHCBACap:
	default:
		return fmt.Errorf("sim: unknown credit kind %q", c.Credit.Kind)
	}
	l1 := cache.Config{Sets: c.L1Sets, Ways: c.L1Ways, LineBytes: c.LineBytes}
	if err := l1.Validate(); err != nil {
		return fmt.Errorf("sim: L1: %w", err)
	}
	l2 := cache.Config{Sets: c.L2Sets, Ways: c.L2Ways, LineBytes: c.LineBytes}
	if err := l2.Validate(); err != nil {
		return fmt.Errorf("sim: L2: %w", err)
	}
	return nil
}

// buildPolicy instantiates the arbitration policy with the run's seed.
func (c Config) buildPolicy(seed uint64) arbiter.Policy {
	switch c.Policy {
	case PolicyRoundRobin:
		return arbiter.NewRoundRobin(c.Cores)
	case PolicyFIFO:
		return arbiter.NewFIFO(c.Cores)
	case PolicyTDMA:
		return arbiter.NewTDMA(c.Cores, c.Latency.MaxHold())
	case PolicyLottery:
		return arbiter.NewLottery(c.Cores, c.LotteryTickets, seed)
	case PolicyRandomPerm:
		return arbiter.NewRandomPermutation(c.Cores, seed)
	case PolicyPriority:
		return arbiter.NewFixedPriority(c.Cores)
	case PolicyPropFair:
		return arbiter.NewPropFair(c.Cores, c.Weights, c.PFAvgShift)
	case PolicyGWF:
		return arbiter.NewGWF(c.Cores, c.Weights)
	case PolicyMTS:
		return arbiter.NewMTS(c.Cores, c.Weights, c.MTSTimescales)
	default:
		panic("sim: buildPolicy on invalid config")
	}
}

// buildCredit instantiates the CBA arbiter, or nil for CreditOff. In WCET
// mode the TuA starts with an empty budget (§III.B).
func (c Config) buildCredit() (*core.Arbiter, error) {
	if c.Credit.Kind == CreditOff {
		return nil, nil
	}
	maxHold := c.Latency.MaxHold()
	var cfg core.Config
	switch c.Credit.Kind {
	case CreditCBA:
		cfg = core.Homogeneous(c.Cores, maxHold)
	case CreditHCBAWeights:
		num, den := c.Credit.Num, c.Credit.Den
		if num == 0 && den == 0 {
			num, den = 1, 2 // the paper's 50% allocation
		}
		var err error
		cfg, err = core.HeterogeneousWeights(c.Cores, maxHold, c.privileged(), num, den)
		if err != nil {
			return nil, err
		}
	case CreditHCBACap:
		factor := c.Credit.CapFactor
		if factor == 0 {
			factor = 2
		}
		var err error
		cfg, err = core.HeterogeneousCap(c.Cores, maxHold, c.privileged(), factor)
		if err != nil {
			return nil, err
		}
	}
	if c.Mode == core.WCETMode {
		cfg.StartEmpty = make([]bool, c.Cores)
		cfg.StartEmpty[c.TuA] = true
	}
	return core.New(cfg)
}

func (c Config) privileged() int {
	if c.Credit.Privileged != 0 {
		return c.Credit.Privileged
	}
	return c.TuA
}

// CheckCredit validates the credit configuration by building the arbiter
// it describes, surfacing H-CBA weight/cap feasibility errors — with
// exactly the defaulting buildCredit applies at machine-construction time
// (num/den 1/2, cap factor 2, privileged falling back to the TuA) — without
// running a simulation. Nil for CreditOff.
func (c Config) CheckCredit() error {
	_, err := c.buildCredit()
	return err
}
