package sim

import (
	"fmt"

	"creditbus/internal/core"
	"creditbus/internal/cpu"
	"creditbus/internal/workload"
)

// NewEngineBenchMachine builds the canonical engine-benchmark platform: the
// paper's measurement scenario — WCET-estimation mode, a looped canrdr
// kernel as the task under analysis against Table I contention injectors,
// homogeneous CBA in front of random-permutations arbitration. The machine
// never finishes, so either stepping engine can be driven indefinitely and
// their cost per simulated cycle compared directly. It is the single
// definition shared by BenchmarkMachineStep{Slow,Fast} and cmd/simbench, so
// BENCH_sim.json and the in-tree benchmarks always measure the same thing.
func NewEngineBenchMachine() (*Machine, error) {
	return NewScalingBenchMachine(DefaultConfig().Cores)
}

// NewScalingBenchMachine is NewEngineBenchMachine generalised to an arbitrary
// core count: the same contended WCET scenario (looped canrdr TuA, cores-1
// Table I injectors, homogeneous CBA over random permutations, seed 1) at any
// population up to MaxCores. It is the measurement platform behind the
// core_scaling section of BENCH_sim.json: the scenario keeps the bus
// saturated at every population, so cycles/sec across core counts isolates
// the per-decision arbitration and state-walk cost that the scale-out
// refactor flattens.
func NewScalingBenchMachine(cores int) (*Machine, error) {
	cfg := DefaultConfig()
	cfg.Cores = cores
	cfg.Credit.Kind = CreditCBA
	cfg.Mode = core.WCETMode
	s, ok := workload.ByName("canrdr")
	if !ok {
		return nil, fmt.Errorf("sim: missing workload canrdr")
	}
	programs := make([]cpu.Program, cfg.Cores)
	programs[cfg.TuA] = NewLooped(s.Build(1))
	return NewMachine(cfg, programs, 1)
}
