package sim

import (
	"fmt"

	"creditbus/internal/bus"
	"creditbus/internal/core"
	"creditbus/internal/cpu"
)

// Runner owns one reusable Machine plus the scratch state a measurement
// worker needs between runs: the per-core program vector handed to the
// machine. A campaign worker keeps one Runner for its whole run slice; the
// first run builds the machine and every later run reinitialises it in
// place (Machine.Reuse), so the steady-state hot path allocates nothing.
//
// Runner results are bit-identical to the package-level Run functions —
// those functions ARE a fresh Runner per call — which the reuse-differential
// suite asserts over the corpus and the randomized scenario space.
//
// A Runner is a single-goroutine object, exactly like the Machine it owns.
// The zero value is ready to use.
type Runner struct {
	m        *Machine
	programs []cpu.Program // scratch per-core vector for single-program scenarios
}

// machine returns the runner's machine reinitialised for (cfg, programs,
// seed), building it on first use. On error the machine is discarded: a
// partially reinitialised platform must never run.
func (r *Runner) machine(cfg Config, programs []cpu.Program, seed uint64) (*Machine, error) {
	if r.m == nil {
		m, err := NewMachine(cfg, programs, seed)
		if err != nil {
			return nil, err
		}
		r.m = m
		return m, nil
	}
	if err := r.m.Reuse(cfg, programs, seed); err != nil {
		r.m = nil
		return nil, err
	}
	return r.m, nil
}

// scratch returns the runner's per-core program vector, cleared and sized
// to cores.
func (r *Runner) scratch(cores int) []cpu.Program {
	if cap(r.programs) < cores {
		r.programs = make([]cpu.Program, cores)
	}
	p := r.programs[:cores]
	for i := range p {
		p[i] = nil
	}
	return p
}

// Isolation executes prog alone on cfg.TuA with every other core idle —
// the paper's ISO scenario — on the runner's recycled machine.
func (r *Runner) Isolation(cfg Config, prog cpu.Program, seed uint64) (Result, error) {
	return r.IsolationProbed(cfg, prog, seed, nil)
}

// IsolationProbed is Isolation with a step-granularity observer.
func (r *Runner) IsolationProbed(cfg Config, prog cpu.Program, seed uint64, probe Probe) (Result, error) {
	cfg.Mode = core.OperationMode
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	programs := r.scratch(cfg.Cores)
	programs[cfg.TuA] = prog
	m, err := r.machine(cfg, programs, seed)
	if err != nil {
		return Result{}, err
	}
	if err := runProbed(m, DefaultLimit, probe); err != nil {
		return Result{}, err
	}
	return m.result(cfg.TuA), nil
}

// MaxContention executes prog on cfg.TuA against Table I contention
// injectors on every other core — the paper's CON scenario — on the
// runner's recycled machine.
func (r *Runner) MaxContention(cfg Config, prog cpu.Program, seed uint64) (Result, error) {
	return r.MaxContentionProbed(cfg, prog, seed, nil)
}

// MaxContentionProbed is MaxContention with a step-granularity observer.
func (r *Runner) MaxContentionProbed(cfg Config, prog cpu.Program, seed uint64, probe Probe) (Result, error) {
	cfg.Mode = core.WCETMode
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	programs := r.scratch(cfg.Cores)
	programs[cfg.TuA] = prog
	m, err := r.machine(cfg, programs, seed)
	if err != nil {
		return Result{}, err
	}
	if err := runProbed(m, DefaultLimit, probe); err != nil {
		return Result{}, err
	}
	return m.result(cfg.TuA), nil
}

// Workloads executes one program per core (operation-mode contention) on
// the runner's recycled machine, running until the TuA finishes.
func (r *Runner) Workloads(cfg Config, programs []cpu.Program, seed uint64) (Result, error) {
	return r.WorkloadsProbed(cfg, programs, seed, nil)
}

// WorkloadsProbed is Workloads with a step-granularity observer. The
// programs slice is only read; the runner does not retain it.
func (r *Runner) WorkloadsProbed(cfg Config, programs []cpu.Program, seed uint64, probe Probe) (Result, error) {
	cfg.Mode = core.OperationMode
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(programs) != cfg.Cores {
		return Result{}, fmt.Errorf("sim: RunWorkloads needs %d programs", cfg.Cores)
	}
	if programs[cfg.TuA] == nil {
		return Result{}, fmt.Errorf("sim: RunWorkloads needs a program on the TuA core %d", cfg.TuA)
	}
	for i, p := range programs {
		if p == nil {
			continue
		}
		if emptyProgram(p) {
			return Result{}, fmt.Errorf("sim: RunWorkloads: program on core %d is empty", i)
		}
	}
	m, err := r.machine(cfg, programs, seed)
	if err != nil {
		return Result{}, err
	}
	tua := m.cores[cfg.TuA]
	for !tua.Done() {
		if m.cycle >= DefaultLimit {
			return Result{}, fmt.Errorf("sim: limit reached before TuA completion")
		}
		m.step(DefaultLimit)
		if probe != nil {
			probe(m)
		}
	}
	return m.result(cfg.TuA), nil
}

// WorkloadsObserved is Workloads with a per-grant observer: obs is invoked
// for every bus grant of the run, in grant order, on the runner's goroutine.
// The observer sees every grant — including injector and co-runner traffic —
// which is what the fairness instrumentation (stats.Fairness) consumes. The
// observer is detached before returning, so later runs on the same Runner
// are unobserved unless re-requested.
func (r *Runner) WorkloadsObserved(cfg Config, programs []cpu.Program, seed uint64, obs func(bus.GrantEvent)) (Result, error) {
	cfg.Mode = core.OperationMode
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(programs) != cfg.Cores {
		return Result{}, fmt.Errorf("sim: RunWorkloads needs %d programs", cfg.Cores)
	}
	if programs[cfg.TuA] == nil {
		return Result{}, fmt.Errorf("sim: RunWorkloads needs a program on the TuA core %d", cfg.TuA)
	}
	for i, p := range programs {
		if p == nil {
			continue
		}
		if emptyProgram(p) {
			return Result{}, fmt.Errorf("sim: RunWorkloads: program on core %d is empty", i)
		}
	}
	m, err := r.machine(cfg, programs, seed)
	if err != nil {
		return Result{}, err
	}
	m.SetGrantObserver(obs)
	defer m.SetGrantObserver(nil)
	tua := m.cores[cfg.TuA]
	for !tua.Done() {
		if m.cycle >= DefaultLimit {
			return Result{}, fmt.Errorf("sim: limit reached before TuA completion")
		}
		m.step(DefaultLimit)
	}
	return m.result(cfg.TuA), nil
}
