package sim

import (
	"testing"
	"testing/quick"

	"creditbus/internal/cpu"
	"creditbus/internal/mem"
	"creditbus/internal/rng"
)

// runProgram executes ops on core 0 of a default platform and returns the
// machine for inspection.
func runProgram(t *testing.T, cfg Config, ops []cpu.Op) *Machine {
	t.Helper()
	programs := make([]cpu.Program, cfg.Cores)
	programs[0] = cpu.NewTrace(ops)
	m, err := NewMachine(cfg, programs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStoreBufferFullStallsAndRecovers(t *testing.T) {
	// Nine immediate stores against a depth-4 buffer: the core must stall
	// on the overflowing ones, requeue the blocked store, and finish with
	// every store eventually on the bus.
	cfg := DefaultConfig()
	var ops []cpu.Op
	for i := 0; i < 9; i++ {
		ops = append(ops, cpu.Op{Kind: cpu.OpStore, Addr: uint64(0x9000 + i*4096)})
	}
	ops = append(ops, cpu.Op{Kind: cpu.OpALU, Cycles: 1})
	m := runProgram(t, cfg, ops)

	st := m.Core(0).Stats()
	if st.Stores != 9 {
		t.Fatalf("stores executed = %d, want 9", st.Stores)
	}
	if st.StallCycles == 0 {
		t.Fatal("nine stores through a depth-4 buffer should stall the core")
	}
	// The program may finish while stores are still queued; drain the
	// port, then every store must have become one bus transaction
	// (distinct lines, no merge).
	for i := 0; i < 2000 && !m.ports[0].drained(); i++ {
		m.Tick()
	}
	if got := m.Bus().Stats(0).Completions; got != 9 {
		t.Fatalf("bus completions = %d, want 9", got)
	}
}

func TestStoreBufferDrainsAfterProgramEnd(t *testing.T) {
	// A store posted right before program end must still drain; Machine.Run
	// returns when the core is done, and the port keeps no dangling state
	// visible to the next run because each run builds a fresh machine —
	// but the transaction itself must have been priced.
	cfg := DefaultConfig()
	m := runProgram(t, cfg, []cpu.Op{
		{Kind: cpu.OpStore, Addr: 0x4000},
		{Kind: cpu.OpALU, Cycles: 200}, // plenty of time to drain
	})
	if got := m.MemController().TotalCount(); got != 1 {
		t.Fatalf("transactions priced = %d, want 1", got)
	}
}

func TestAtomicWaitsForStoreDrain(t *testing.T) {
	// Stores enqueued before an atomic must reach the bus before it: the
	// atomic is the last completion.
	cfg := DefaultConfig()
	var order []mem.Kind
	// Reach into the machine: wrap the controller by observing counts
	// after each completion via a custom program is intrusive; instead
	// exploit determinism — run and check the atomic happened (counted)
	// and that the core stalled through it.
	m := runProgram(t, cfg, []cpu.Op{
		{Kind: cpu.OpStore, Addr: 0x1000},
		{Kind: cpu.OpStore, Addr: 0x2000},
		{Kind: cpu.OpAtomic, Addr: 0x3000},
		{Kind: cpu.OpALU, Cycles: 1},
	})
	_ = order
	if got := m.MemController().Count(mem.AtomicRMW); got != 1 {
		t.Fatalf("atomic transactions = %d, want 1", got)
	}
	if got := m.Bus().Stats(0).Completions; got != 3 {
		t.Fatalf("bus completions = %d, want 3 (2 stores + 1 atomic)", got)
	}
	// The atomic holds the bus 56 cycles and the core stalls through the
	// stores it waits behind: 2×(store) + atomic ≥ 3 transactions' worth.
	if st := m.Core(0).Stats(); st.StallCycles < 56 {
		t.Fatalf("stall cycles = %d, want ≥ 56 (atomic hold)", st.StallCycles)
	}
}

func TestLoadBypassesBufferedStores(t *testing.T) {
	// A load miss with stores queued behind a free master slot must go
	// first (the core is blocked on it). Construct: one store (posts
	// immediately, occupying the slot), then a load miss to a different
	// line, then three more stores. The load should be the second
	// completion, not the fifth.
	cfg := DefaultConfig()
	programs := make([]cpu.Program, cfg.Cores)
	programs[0] = cpu.NewTrace([]cpu.Op{
		{Kind: cpu.OpStore, Addr: 0x1000},
		{Kind: cpu.OpLoad, Addr: 0x200000}, // L1 miss, L2 miss: memory read
		{Kind: cpu.OpStore, Addr: 0x3000},
		{Kind: cpu.OpStore, Addr: 0x4000},
	})
	m, err := NewMachine(cfg, programs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Track completion order through the memory controller counts at the
	// moment the load finishes: run until the core unstalls after the
	// load. The load is issued at op 2; once Loads==1 and the core is no
	// longer stalled, only the first store (plus the load) may have
	// completed.
	for !m.Done() {
		m.Tick()
		st := m.Core(0).Stats()
		if st.Loads == 1 && !m.Core(0).Stalled() && st.Instructions == 2 {
			if done := m.Bus().Stats(0).Completions; done > 2 {
				t.Fatalf("load completed after %d transactions; it should bypass queued stores", done)
			}
		}
	}
}

func TestPortDrainedAccounting(t *testing.T) {
	cfg := DefaultConfig()
	m := runProgram(t, cfg, []cpu.Op{{Kind: cpu.OpALU, Cycles: 3}})
	if !m.ports[0].drained() {
		t.Fatal("port not drained after an ALU-only program")
	}
}

func TestRunLimitError(t *testing.T) {
	cfg := DefaultConfig()
	programs := make([]cpu.Program, cfg.Cores)
	programs[0] = cpu.NewTrace([]cpu.Op{{Kind: cpu.OpALU, Cycles: 1000}})
	m, err := NewMachine(cfg, programs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10); err == nil {
		t.Fatal("Run did not report hitting the cycle limit")
	}
}

// TestQuickMachineNeverDeadlocks drives random short programs through the
// full platform under every credit variant and checks the global
// invariants: the run terminates, budgets never underflow, utilisation is
// a fraction, and the instruction count matches the program.
func TestQuickMachineNeverDeadlocks(t *testing.T) {
	kinds := []CreditKind{CreditOff, CreditCBA, CreditHCBAWeights, CreditHCBACap}
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 120 {
			raw = raw[:120]
		}
		src := rng.New(seed)
		ops := make([]cpu.Op, 0, len(raw))
		for _, b := range raw {
			switch b % 4 {
			case 0:
				ops = append(ops, cpu.Op{Kind: cpu.OpALU, Cycles: int64(b%7) + 1})
			case 1:
				ops = append(ops, cpu.Op{Kind: cpu.OpLoad, Addr: uint64(src.Intn(1 << 20))})
			case 2:
				ops = append(ops, cpu.Op{Kind: cpu.OpStore, Addr: uint64(src.Intn(1 << 20))})
			case 3:
				ops = append(ops, cpu.Op{Kind: cpu.OpAtomic, Addr: uint64(src.Intn(1 << 12))})
			}
		}
		cfg := DefaultConfig()
		cfg.Credit.Kind = kinds[seed%uint64(len(kinds))]
		programs := make([]cpu.Program, cfg.Cores)
		programs[0] = cpu.NewTrace(ops)
		m, err := NewMachine(cfg, programs, seed)
		if err != nil {
			return false
		}
		if _, err := m.Run(3_000_000); err != nil {
			return false
		}
		if m.Credit() != nil && m.Credit().Underflows() != 0 {
			return false
		}
		u := m.Bus().Utilisation()
		if u < 0 || u > 1 {
			return false
		}
		return m.Core(0).Stats().Instructions == int64(len(ops))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWCETModeNeverDeadlocks does the same against the Table I
// injectors, which keep the bus saturated for the whole run.
func TestQuickWCETModeNeverDeadlocks(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		n := int(nOps%40) + 1
		ops := make([]cpu.Op, 0, n)
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				ops = append(ops, cpu.Op{Kind: cpu.OpLoad, Addr: uint64(i) * 64})
			} else {
				ops = append(ops, cpu.Op{Kind: cpu.OpALU, Cycles: 3})
			}
		}
		cfg := DefaultConfig()
		cfg.Credit.Kind = CreditCBA
		res, err := sim(cfg, ops, seed)
		if err != nil {
			return false
		}
		return res.TaskCycles > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// sim is a tiny helper for the quick tests.
func sim(cfg Config, ops []cpu.Op, seed uint64) (Result, error) {
	return RunMaxContention(cfg, cpu.NewTrace(ops), seed)
}
