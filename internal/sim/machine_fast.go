package sim

import (
	"creditbus/internal/bus"
	"creditbus/internal/cpu"
)

// This file is the event-horizon stepping engine: instead of ticking every
// component once per simulated cycle, the machine asks each component for
// the next cycle at which its externally visible state can change, advances
// all the uneventful cycles in between in closed form, and executes only the
// event cycle itself as a full per-cycle Tick.
//
// The horizon of each component:
//
//   - a core: the tick at which it next consumes an operation (aluLeft+1, an
//     ALU burst being pre-merged by cpu.Core.NextEventIn), or never while it
//     is stalled on memory or finished;
//   - a WCET contention injector: nothing — its re-post after a grant is
//     folded into the step boundary (postInjectors), where the Post
//     bookkeeping is cycle-for-cycle identical to the per-cycle engine's;
//   - the bus: the completion cycle of the transaction in flight, or — idle —
//     the first cycle a pending master clears visibility, CBA eligibility and
//     the COMP gate simultaneously, pushed to the next slot boundary for
//     TDMA (bus.Horizon).
//
// Every skipped cycle is provably uneventful: no operation issues, no
// request posts, no arbitration can succeed and no completion fires. In
// particular Policy.Pick is never invoked during a skipped cycle (the bus
// calls it only when some master is eligible, and the bus horizon is exactly
// the first such cycle), so randomised policies — lottery, random
// permutations — draw their random numbers at precisely the same cycles, in
// the same order, as under per-cycle stepping. Budgets refill by the closed
// form of Eq. 1, min(b + Δ·w_i, cap); occupancy, wait and stall counters
// advance linearly. The result is bit-identical simulation (asserted by
// differential_test.go across every policy × credit kind × mode) at a
// fraction of the work during 28/56-cycle bus holds, long ALU bursts and
// credit refill gaps.

// Step advances the machine by one event step: all uneventful cycles up to
// the next component horizon in bulk, then the event cycle itself as a full
// Tick. It advances at least one cycle. Driving a machine with any mix of
// Step and Tick is valid — Step merely skips what Tick would have done
// anyway.
func (m *Machine) Step() {
	m.stepWithin(bus.NoEvent)
}

// stepWithin is Step bounded by a cycle limit: when the next event lies past
// the limit it only advances (bulk) up to the limit and leaves the event
// unexecuted, so Run's deadlock guard trips at exactly the same cycle count
// as under per-cycle stepping.
//
// The event cycle itself runs as a full Tick only when the bus needs it
// (its horizon is the event). An event forced by a core alone — consuming an
// operation, possibly posting a request — runs as coreTick: the cores tick
// per-cycle but the bus advances by closed form, which is bit-identical
// because before the bus horizon no arbitration can succeed, a request
// posted this cycle is not arbitrable until the arbitration latency has
// passed (so it cannot create an event this cycle), and the COMP latches
// stay monotone until the next full Tick's Signals.Update.
func (m *Machine) stepWithin(limit int64) {
	m.postInjectors()
	next := m.nextEventCycle()
	if next > limit {
		if n := limit - m.cycle; n > 0 {
			m.advance(n)
		}
		return
	}
	if next == bus.NoEvent {
		// No component can ever act again (every program finished, or a
		// deadlocked configuration) and the caller set no limit: advance a
		// single reference cycle instead of bulk-jumping to the sentinel,
		// so a bare Step loop ticks an idle machine one cycle at a time
		// exactly like Tick would.
		m.Tick()
		return
	}
	if skip := next - m.cycle - 1; skip > 0 {
		m.advance(skip)
	}
	if m.busNext <= next {
		wasBusy := m.sharedBus.Busy()
		m.Tick()
		// A completion is almost always followed by an arbitration that
		// grants (the paper's scenarios keep the bus saturated), so run the
		// next cycle as a full Tick straight away rather than paying a
		// horizon recomputation to discover it. An exact Tick is always
		// bit-identical — only skipping cycles needs proof — so this is
		// pure heuristic; the guard keeps the run loops' exit cycle counts
		// untouched (they stop on Done / TuA-done between steps).
		if wasBusy && !m.sharedBus.Busy() && m.cycle < limit && !m.stepDone() {
			m.Tick()
		}
		return
	}
	m.cycle++
	for _, c := range m.live {
		c.Tick()
	}
	m.sharedBus.Advance(1)
}

// stepDone reports whether a run loop could stop at the current cycle: the
// whole machine is done, or the task under analysis is (RunWorkloads'
// condition). stepWithin must not advance past such a cycle on its own.
func (m *Machine) stepDone() bool {
	if tua := m.cores[m.cfg.TuA]; tua != nil && tua.Done() {
		return true
	}
	return m.Done()
}

// postInjectors re-posts the request line of any injector whose previous
// request was just granted, attributing the post to the upcoming cycle.
// Under per-cycle stepping the re-post happens inside the next Tick (cycle
// m.cycle+1, before the bus advances), so Post computes visibleAt from the
// same bus cycle either way and the bookkeeping is bit-identical; doing it
// at the step boundary means the re-post cycle needs no exact Tick of its
// own and the bulk window can run straight through it. This relies on
// Policy.OnRequest being insensitive to call order within a cycle, which
// holds for every policy in this module (FIFO records only the arrival
// cycle; the others ignore OnRequest).
func (m *Machine) postInjectors() {
	m.repostInjectors()
}

// step advances by one engine-appropriate step: a single Tick under
// ForcePerCycle, an event step otherwise.
func (m *Machine) step(limit int64) {
	if m.cfg.ForcePerCycle {
		m.Tick()
		return
	}
	m.stepWithin(limit)
}

// nextEventCycle returns the earliest cycle any component needs per-cycle
// handling, recording the bus's own horizon in m.busNext so the step can
// tell a bus event from a core-only event. It is ≥ m.cycle+1; bus.NoEvent
// means no component can act without external input (a genuine deadlock —
// Run's limit guard handles it).
func (m *Machine) nextEventCycle() int64 {
	// Two passes: gather every live core's relative horizon into the flat
	// scratch vector, then take the min over contiguous memory. At large
	// populations the gather is the only part that chases pointers; the min
	// is a straight-line sweep the hardware prefetcher can stream.
	for i, c := range m.live {
		m.coreNext[i] = c.NextEventIn()
	}
	next := bus.NoEvent
	for _, in := range m.coreNext {
		if in != cpu.NoEvent {
			if at := m.cycle + in; at < next {
				next = at
			}
		}
	}
	m.busNext = m.sharedBus.Horizon()
	if m.busNext < next {
		next = m.busNext
	}
	return next
}

// advance replays n guaranteed-uneventful cycles in closed form across every
// component. The machine and bus cycle counters stay in lockstep, as under
// Tick.
func (m *Machine) advance(n int64) {
	m.cycle += n
	for _, c := range m.live {
		c.AdvanceIdle(n)
	}
	m.sharedBus.Advance(n)
}
