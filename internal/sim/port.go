package sim

import (
	"fmt"

	"creditbus/internal/bus"
	"creditbus/internal/cache"
	"creditbus/internal/cpu"
	"creditbus/internal/mem"
)

// stallReason records why a core is blocked on its port.
type stallReason int

const (
	stallNone     stallReason = iota
	stallLoad                 // waiting for a load transaction
	stallAtomic               // waiting for an atomic transaction (and prior stores)
	stallStoreBuf             // store buffer full
)

// inflightKind tags the single outstanding bus transaction of this master.
type inflightKind int

const (
	inflightNone inflightKind = iota
	inflightLoad
	inflightStore
	inflightAtomic
)

// port is one core's data-side memory interface: private write-through L1,
// a store buffer, and a single-outstanding-transaction window onto the
// shared bus backed by the core's L2 partition and the memory controller.
//
// Ordering model (documented simplifications of the LEON3 data path):
// loads may bypass buffered stores (no forwarding hazards are modelled);
// atomics drain the store buffer before issuing; one bus transaction per
// master can be outstanding, so a load arriving while a store transaction is
// in flight waits for it.
type port struct {
	machine *Machine
	id      int
	l1      *cache.Cache
	l2      *cache.Cache

	storeBuf     []uint64 // queued store addresses (head first)
	blockedStore uint64   // store the core is stalled on (storeBuf full)
	inflight     inflightKind
	inflightAddr uint64
	pendingLoad  uint64 // load waiting for the master slot
	hasPending   bool
	pendingAtom  uint64 // atomic waiting for slot + drained stores
	hasAtomic    bool
	stall        stallReason

	// stats
	l1Misses    int64
	storesSent  int64
	loadsSent   int64
	atomicsSent int64
}

var _ cpu.Port = (*port)(nil)

// Begin implements cpu.Port.
func (p *port) Begin(op cpu.Op) bool {
	switch op.Kind {
	case cpu.OpLoad:
		if p.l1.Access(op.Addr, false).Hit {
			return true
		}
		p.l1Misses++
		p.pendingLoad, p.hasPending = op.Addr, true
		p.stall = stallLoad
		p.issue()
		return false
	case cpu.OpStore:
		// Write-through: update L1 if present (no allocate), then buffer
		// the bus write.
		p.l1.Access(op.Addr, true)
		if len(p.storeBuf) >= p.machine.cfg.StoreBufferDepth {
			p.blockedStore = op.Addr
			p.stall = stallStoreBuf
			p.issue()
			return false
		}
		p.storeBuf = append(p.storeBuf, op.Addr)
		p.issue()
		return true
	case cpu.OpAtomic:
		p.pendingAtom, p.hasAtomic = op.Addr, true
		p.stall = stallAtomic
		p.issue()
		return false
	default:
		panic(fmt.Sprintf("sim: port.Begin with op kind %v", op.Kind))
	}
}

// issue posts the next transaction if the master slot is free. Priority:
// the stalling load first (the core is blocked on it), then buffered
// stores, then the atomic once the store buffer has drained.
func (p *port) issue() {
	if p.inflight != inflightNone || !p.machine.sharedBus.CanPost(p.id) {
		return
	}
	switch {
	case p.hasPending:
		addr := p.pendingLoad
		kind := p.classifyLoad(addr)
		p.post(inflightLoad, addr, kind)
		p.loadsSent++
	case len(p.storeBuf) > 0:
		addr := p.storeBuf[0]
		kind := p.classifyStore(addr)
		p.post(inflightStore, addr, kind)
		p.storesSent++
	case p.hasAtomic:
		p.post(inflightAtomic, p.pendingAtom, mem.AtomicRMW)
		p.atomicsSent++
	}
}

// classifyLoad performs the L2 side of a load miss and returns the bus
// transaction kind. The partition is private to this core, so applying the
// state change at post time is equivalent to applying it at completion.
func (p *port) classifyLoad(addr uint64) mem.Kind {
	res := p.l2.Access(addr, false)
	switch {
	case res.Hit:
		return mem.L2ReadHit
	case res.EvictedDirty:
		return mem.MissDirty
	default:
		return mem.MissClean
	}
}

// classifyStore performs the L2 side of a buffered store (write-back,
// write-allocate partition).
func (p *port) classifyStore(addr uint64) mem.Kind {
	res := p.l2.Access(addr, true)
	switch {
	case res.Hit:
		return mem.L2WriteHit
	case res.EvictedDirty:
		return mem.MissDirty
	default:
		return mem.MissClean
	}
}

func (p *port) post(kind inflightKind, addr uint64, k mem.Kind) {
	hold := p.machine.memctl.Price(k)
	p.inflight = kind
	p.inflightAddr = addr
	p.machine.sharedBus.MustPost(p.id, bus.Request{Hold: hold, Tag: uint64(k)})
}

// onComplete handles this master's bus transaction completion.
func (p *port) onComplete() {
	done := p.inflight
	addr := p.inflightAddr
	p.inflight = inflightNone

	switch done {
	case inflightLoad:
		p.l1.Fill(addr)
		p.hasPending = false
		if p.stall == stallLoad {
			p.stall = stallNone
			p.machine.cores[p.id].Resume()
		}
	case inflightStore:
		// Pop by shifting down instead of re-slicing from the front: the
		// backing array stays anchored, so the buffer reaches its depth
		// capacity once and then never allocates again (the campaign hot
		// path is allocation-free after warm-up).
		n := copy(p.storeBuf, p.storeBuf[1:])
		p.storeBuf = p.storeBuf[:n]
		if p.stall == stallStoreBuf {
			p.storeBuf = append(p.storeBuf, p.blockedStore)
			p.stall = stallNone
			p.machine.cores[p.id].Resume()
		}
	case inflightAtomic:
		p.hasAtomic = false
		if p.stall == stallAtomic {
			p.stall = stallNone
			p.machine.cores[p.id].Resume()
		}
	default:
		panic("sim: completion with no transaction in flight")
	}
	p.issue()
}

// reset returns the port to its just-built state for a new run, keeping the
// machine binding and the store buffer's backing array (machine reuse must
// not allocate). l1/l2 rebind the caches, which reuse may have rebuilt.
func (p *port) reset(l1, l2 *cache.Cache) {
	p.l1, p.l2 = l1, l2
	p.storeBuf = p.storeBuf[:0]
	p.blockedStore = 0
	p.inflight = inflightNone
	p.inflightAddr = 0
	p.pendingLoad, p.hasPending = 0, false
	p.pendingAtom, p.hasAtomic = 0, false
	p.stall = stallNone
	p.l1Misses = 0
	p.storesSent = 0
	p.loadsSent = 0
	p.atomicsSent = 0
}

// drained reports whether the port has no queued or in-flight work.
func (p *port) drained() bool {
	return p.inflight == inflightNone && !p.hasPending && !p.hasAtomic &&
		len(p.storeBuf) == 0 && p.stall == stallNone
}
