package sim

import (
	"strings"
	"testing"

	"creditbus/internal/core"
	"creditbus/internal/cpu"
	"creditbus/internal/mem"
	"creditbus/internal/workload"
)

// trimmed returns the first n ops of a workload as a fresh program, to keep
// integration tests fast while preserving the access pattern.
func trimmed(t *testing.T, name string, n int) *cpu.Trace {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	tr := s.Build(1)
	if tr.Len() < n {
		return tr
	}
	return cpu.NewTrace(tr.Ops()[:n])
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Cores = 0 }, "Cores"},
		{func(c *Config) { c.TuA = 9 }, "TuA"},
		{func(c *Config) { c.StoreBufferDepth = 0 }, "StoreBufferDepth"},
		{func(c *Config) { c.Latency.Mem = 0 }, "latency"},
		{func(c *Config) { c.Policy = "XX" }, "policy"},
		{func(c *Config) { c.Credit.Kind = "zz" }, "credit"},
		{func(c *Config) { c.L1Sets = 3 }, "L1"},
		{func(c *Config) { c.L2Ways = 0 }, "L2"},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
			t.Errorf("mutation expecting %q: got %v", c.want, err)
		}
	}
}

func TestNewMachineValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewMachine(cfg, nil, 1); err == nil {
		t.Error("program count mismatch accepted")
	}
	// WCET mode with a program on a contender core must fail.
	cfg.Mode = core.WCETMode
	cfg.Credit.Kind = CreditCBA
	programs := make([]cpu.Program, 4)
	programs[0] = trimmed(t, "matrix", 100)
	programs[1] = trimmed(t, "matrix", 100)
	if _, err := NewMachine(cfg, programs, 1); err == nil {
		t.Error("WCET mode accepted a contender program")
	}
}

func TestIsolationDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	prog := func() cpu.Program { return trimmed(t, "canrdr", 3000) }
	a, err := RunIsolation(cfg, prog(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIsolation(cfg, prog(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.TaskCycles != b.TaskCycles {
		t.Fatalf("same-seed runs: %d vs %d cycles", a.TaskCycles, b.TaskCycles)
	}
	c, err := RunIsolation(cfg, prog(), 43)
	if err != nil {
		t.Fatal(err)
	}
	if c.TaskCycles == a.TaskCycles {
		t.Log("distinct seeds produced equal cycles (possible but unlikely); not failing")
	}
}

func TestPlacementRandomisationChangesExecutionTime(t *testing.T) {
	// tblook's 48 KiB table exceeds the 32 KiB L2 partition: hit rate, and
	// with it execution time, must vary across run seeds (the MBPTA
	// prerequisite).
	cfg := DefaultConfig()
	seen := map[int64]bool{}
	for seed := uint64(1); seed <= 6; seed++ {
		r, err := RunIsolation(cfg, trimmed(t, "tblook", 4000), seed)
		if err != nil {
			t.Fatal(err)
		}
		seen[r.TaskCycles] = true
	}
	if len(seen) < 3 {
		t.Fatalf("only %d distinct execution times over 6 seeds; randomisation broken", len(seen))
	}
}

func TestHitterTrafficIsL2Hits(t *testing.T) {
	cfg := DefaultConfig()
	r, err := RunIsolation(cfg, trimmed(t, "hitter", 8000), 7)
	if err != nil {
		t.Fatal(err)
	}
	hits := r.MemCounts[mem.L2ReadHit]
	misses := r.MemCounts[mem.MissClean] + r.MemCounts[mem.MissDirty]
	// Beyond the cold pass (512 lines), random placement keeps a small
	// conflict-miss tail (~5%), so hit-dominated means ≈4:1 here.
	if hits < 4*misses {
		t.Fatalf("hitter traffic: %d L2 hits vs %d misses; want hit-dominated", hits, misses)
	}
	if r.L1HitRate > 0.2 {
		t.Fatalf("hitter L1 hit rate %.3f; the workload is built to miss L1", r.L1HitRate)
	}
}

func TestStreamTrafficIsMemoryMisses(t *testing.T) {
	cfg := DefaultConfig()
	r, err := RunIsolation(cfg, trimmed(t, "stream", 4000), 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.MemCounts[mem.MissClean] < 1500 {
		t.Fatalf("stream produced only %d clean misses", r.MemCounts[mem.MissClean])
	}
	if r.MemCounts[mem.L2ReadHit] > r.MemCounts[mem.MissClean]/10 {
		t.Fatalf("stream unexpectedly hit L2 %d times", r.MemCounts[mem.L2ReadHit])
	}
}

func TestAtomicsProduceMaxLengthTransactions(t *testing.T) {
	cfg := DefaultConfig()
	r, err := RunIsolation(cfg, trimmed(t, "atomics", 1000), 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.MemCounts[mem.AtomicRMW] < 100 {
		t.Fatalf("atomics workload produced %d RMW transactions", r.MemCounts[mem.AtomicRMW])
	}
}

func TestStoreBufferAbsorbsStores(t *testing.T) {
	// canrdr stores once per message; with a functioning store buffer the
	// core should rarely stall on stores (execution time far below the
	// fully-serialised bound).
	cfg := DefaultConfig()
	r, err := RunIsolation(cfg, trimmed(t, "canrdr", 6000), 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.Stores == 0 {
		t.Fatal("no stores executed")
	}
	// Serialised bound: every store also stalling ~6 cycles.
	if r.CPU.StallCycles > r.TaskCycles/2 {
		t.Fatalf("stalls %d of %d cycles; store buffer not absorbing", r.CPU.StallCycles, r.TaskCycles)
	}
}

// TestIllustrativeExampleOnPlatform reproduces §II end to end on the full
// platform: a dense short-request task (hitter: 5-cycle L2 hits) against
// three streaming co-runners (28-cycle memory reads) in operation mode.
//
//   - Under slot-fair round-robin the TuA's slowdown approaches the paper's
//     9.4× arithmetic (diluted here by the TuA's own L2 misses, which are
//     long requests and suffer proportionally less).
//   - With CBA every contender's bandwidth is capped at 1/N, and the TuA's
//     slowdown drops by a large factor. The paper's fluid-limit arithmetic
//     gives 2.8×; on a non-split bus the TuA additionally waits out whole
//     28-cycle contender holds that chain while it refills its own budget,
//     so the measured value sits between 2.8× and ~5×. (This is a genuine
//     property of CBA, not an artefact: CBA caps shares, and the division
//     of the residual is up to the underlying policy — the motivation for
//     H-CBA in §III.A.)
func TestIllustrativeExampleOnPlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle contention run")
	}
	task := func() cpu.Program { return trimmed(t, "hitter", 10000) }
	streamers := func() []cpu.Program {
		s, _ := workload.ByName("stream")
		return []cpu.Program{
			nil,
			NewLooped(s.Build(2)),
			NewLooped(s.Build(3)),
			NewLooped(s.Build(4)),
		}
	}

	cfg := DefaultConfig()
	cfg.Policy = PolicyRoundRobin
	iso, err := RunIsolation(cfg, task(), 11)
	if err != nil {
		t.Fatal(err)
	}

	progs := streamers()
	progs[0] = task()
	con, err := RunWorkloads(cfg, progs, 11)
	if err != nil {
		t.Fatal(err)
	}
	rrSlowdown := float64(con.TaskCycles) / float64(iso.TaskCycles)

	cfg.Credit.Kind = CreditCBA
	isoCBA, err := RunIsolation(cfg, task(), 11)
	if err != nil {
		t.Fatal(err)
	}
	progs = streamers()
	progs[0] = task()
	conCBA, err := RunWorkloads(cfg, progs, 11)
	if err != nil {
		t.Fatal(err)
	}
	cbaSlowdown := float64(conCBA.TaskCycles) / float64(iso.TaskCycles)

	t.Logf("illustrative: iso=%d rr-con=%.2fx cba-con=%.2fx cba-iso=%.3fx",
		iso.TaskCycles, rrSlowdown, cbaSlowdown,
		float64(isoCBA.TaskCycles)/float64(iso.TaskCycles))

	if rrSlowdown < 6 || rrSlowdown > 11 {
		t.Errorf("round-robin slowdown %.2f, paper's arithmetic gives ~9.4", rrSlowdown)
	}
	if cbaSlowdown > 5.5 {
		t.Errorf("CBA slowdown %.2f far above the cycle-fair regime", cbaSlowdown)
	}
	if cbaSlowdown >= 0.75*rrSlowdown {
		t.Errorf("CBA slowdown %.2f not clearly better than RR %.2f", cbaSlowdown, rrSlowdown)
	}
	// Contender shares must be capped at 1/N by CBA.
	m, err := NewMachine(cfg, append([]cpu.Program{task()}, streamers()[1:]...), 11)
	if err != nil {
		t.Fatal(err)
	}
	for !m.Core(0).Done() {
		m.Tick()
	}
	for i := 1; i < 4; i++ {
		if s := m.Bus().CycleShare(i); s > 0.26 {
			t.Errorf("contender %d share %.3f exceeds the CBA cap", i, s)
		}
	}
}

func TestWCETModeDeterminismAndCompGating(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Credit.Kind = CreditCBA
	prog := func() cpu.Program { return trimmed(t, "canrdr", 2000) }
	a, err := RunMaxContention(cfg, prog(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMaxContention(cfg, prog(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.TaskCycles != b.TaskCycles {
		t.Fatalf("WCET-mode same-seed runs differ: %d vs %d", a.TaskCycles, b.TaskCycles)
	}
	// Contention must actually slow the task down.
	iso, err := RunIsolation(cfg, prog(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.TaskCycles <= iso.TaskCycles {
		t.Fatalf("max contention (%d) not slower than isolation (%d)", a.TaskCycles, iso.TaskCycles)
	}
}

func TestWCETModeTuAStartsWithZeroBudget(t *testing.T) {
	// With CBA in WCET mode the TuA's first bus request cannot be granted
	// before its budget refills from zero: 224 cycles on the default
	// platform. hitter's first op is a load, so its first grant bounds the
	// task's early progress.
	cfg := DefaultConfig()
	cfg.Credit.Kind = CreditCBA
	programs := make([]cpu.Program, cfg.Cores)
	programs[0] = trimmed(t, "hitter", 50)
	cfg.Mode = core.WCETMode
	m, err := NewMachine(cfg, programs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for !m.Done() && m.Cycle() < 100_000 {
		m.Tick()
	}
	if !m.Done() {
		t.Fatal("tiny program did not finish")
	}
	// 50 ops of load+alu(3) in isolation take ~45*9 cycles ≈ 400; the
	// budget preamble forces at least 224 before the very first grant.
	if m.TaskCycles(0) < 224 {
		t.Fatalf("TaskCycles = %d; zero-budget start should delay beyond 224", m.TaskCycles(0))
	}
}

func TestOperationModeContentionSharesCappedByCBA(t *testing.T) {
	if testing.Short() {
		t.Skip("contention run")
	}
	// Four streaming tasks under CBA: every core's bus cycle share must
	// respect the 1/N cap.
	cfg := DefaultConfig()
	cfg.Credit.Kind = CreditCBA
	s, _ := workload.ByName("stream")
	programs := []cpu.Program{
		NewLooped(s.Build(1)),
		NewLooped(s.Build(2)),
		NewLooped(s.Build(3)),
		trimmed(t, "stream", 3000),
	}
	cfg.TuA = 3
	r, err := RunWorkloads(cfg, programs, 9)
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	// Shares are inspected through a fresh machine run to access the bus.
	m, err := NewMachine(cfg, programs, 9)
	if err != nil {
		t.Fatal(err)
	}
	for !m.Core(3).Done() {
		m.Tick()
	}
	for mi := 0; mi < 4; mi++ {
		if s := m.Bus().CycleShare(mi); s > 0.26 {
			t.Errorf("core %d cycle share %.3f exceeds CBA cap", mi, s)
		}
	}
	if m.Credit().Underflows() != 0 {
		t.Errorf("budget underflows: %d", m.Credit().Underflows())
	}
}

func TestLoopedProgram(t *testing.T) {
	inner := cpu.NewTrace([]cpu.Op{{Kind: cpu.OpALU, Cycles: 1}, {Kind: cpu.OpALU, Cycles: 2}})
	l := NewLooped(inner)
	for i := 0; i < 7; i++ {
		op, ok := l.Next()
		if !ok {
			t.Fatal("looped program ended")
		}
		want := int64(1 + i%2)
		if op.Cycles != want {
			t.Fatalf("iteration %d: cycles %d, want %d", i, op.Cycles, want)
		}
	}
	empty := NewLooped(cpu.NewTrace(nil))
	if _, ok := empty.Next(); ok {
		t.Fatal("empty looped program returned an op")
	}
}

func TestRunWorkloadsValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := RunWorkloads(cfg, make([]cpu.Program, 2), 1); err == nil {
		t.Error("wrong program count accepted")
	}
	if _, err := RunWorkloads(cfg, make([]cpu.Program, 4), 1); err == nil {
		t.Error("nil TuA program accepted")
	}
}

func TestAllWorkloadsRunToCompletionInIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite")
	}
	cfg := DefaultConfig()
	for _, name := range workload.Names() {
		s, _ := workload.ByName(name)
		r, err := RunIsolation(cfg, s.Build(1), 77)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if r.TaskCycles <= 0 {
			t.Errorf("%s: zero cycles", name)
		}
		t.Logf("%-8s iso=%8d cycles  util=%.3f l1=%.3f l2=%.3f reqs=%d",
			name, r.TaskCycles, r.Utilisation, r.L1HitRate, r.L2HitRate, r.Bus.Requests)
	}
}
