package sim

import (
	"testing"

	"creditbus/internal/cpu"
	"creditbus/internal/workload"
)

// TestGoldenDeterminism pins exact cycle counts for fixed seeds: the whole
// stack (rng, caches, arbitration, CBA, WCET injectors) is deterministic,
// so any change to these numbers means simulated timing changed and
// EXPERIMENTS.md must be re-validated. Update the constants deliberately,
// never to silence the test.
func TestGoldenDeterminism(t *testing.T) {
	build := func(name string, n int) cpu.Program {
		s, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		tr := s.Build(1)
		if tr.Len() > n {
			return cpu.NewTrace(tr.Ops()[:n])
		}
		return tr
	}

	type golden struct {
		name     string
		credit   CreditKind
		con      bool
		workload string
		ops      int
		seed     uint64
	}
	cases := []golden{
		{"rp-iso", CreditOff, false, "canrdr", 4000, 11},
		{"cba-iso", CreditCBA, false, "canrdr", 4000, 11},
		{"rp-con", CreditOff, true, "matrix", 6000, 11},
		{"cba-con", CreditCBA, true, "matrix", 6000, 11},
		{"hcba-con", CreditHCBAWeights, true, "tblook", 5000, 11},
	}

	got := map[string]int64{}
	for _, c := range cases {
		cfg := DefaultConfig()
		cfg.Credit.Kind = c.credit
		var res Result
		var err error
		if c.con {
			res, err = RunMaxContention(cfg, build(c.workload, c.ops), c.seed)
		} else {
			res, err = RunIsolation(cfg, build(c.workload, c.ops), c.seed)
		}
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got[c.name] = res.TaskCycles

		// Re-run: must be bit-identical.
		var res2 Result
		if c.con {
			res2, err = RunMaxContention(cfg, build(c.workload, c.ops), c.seed)
		} else {
			res2, err = RunIsolation(cfg, build(c.workload, c.ops), c.seed)
		}
		if err != nil {
			t.Fatalf("%s rerun: %v", c.name, err)
		}
		if res2.TaskCycles != res.TaskCycles {
			t.Fatalf("%s: non-deterministic (%d vs %d)", c.name, res.TaskCycles, res2.TaskCycles)
		}
	}

	want := map[string]int64{
		"rp-iso":   goldenRPIso,
		"cba-iso":  goldenCBAIso,
		"rp-con":   goldenRPCon,
		"cba-con":  goldenCBACon,
		"hcba-con": goldenHCBACon,
	}
	for name, w := range want {
		if w == 0 {
			t.Logf("golden %s: measured %d (constant not yet pinned)", name, got[name])
			continue
		}
		if got[name] != w {
			t.Errorf("golden %s: %d cycles, want %d — simulated timing changed; re-validate EXPERIMENTS.md", name, got[name], w)
		}
	}
}

// Golden values pinned from the initial validated build (see
// EXPERIMENTS.md). A value of 0 means "log only".
const (
	goldenRPIso   int64 = 30206
	goldenCBAIso  int64 = 41100
	goldenRPCon   int64 = 86557
	goldenCBACon  int64 = 83768
	goldenHCBACon int64 = 74561
)
