package sim

import "testing"

// benchMachine is the shared engine-benchmark platform (see
// NewEngineBenchMachine); the sim-cycles/sec metric is the headline number —
// it is what bounds campaign wall-clock time at any worker count.
func benchMachine(b *testing.B) *Machine {
	b.Helper()
	m, err := NewEngineBenchMachine()
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkMachineStepSlow is the per-cycle reference engine: one Tick per
// simulated cycle.
func BenchmarkMachineStepSlow(b *testing.B) {
	m := benchMachine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick()
	}
	b.ReportMetric(float64(m.Cycle())/b.Elapsed().Seconds(), "sim-cycles/s")
	b.ReportMetric(1, "sim-cycles/op")
}

// BenchmarkMachineStepFast is the event-horizon engine: one Step per event,
// bulk-advancing the uneventful cycles in between. sim-cycles/op is the
// average event spacing the workload mix exhibits.
func BenchmarkMachineStepFast(b *testing.B) {
	m := benchMachine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	b.ReportMetric(float64(m.Cycle())/b.Elapsed().Seconds(), "sim-cycles/s")
	b.ReportMetric(float64(m.Cycle())/float64(b.N), "sim-cycles/op")
}
