package sim

import (
	"strings"
	"testing"

	"creditbus/internal/cpu"
)

func smallProgram() *cpu.Trace {
	return cpu.NewTrace([]cpu.Op{
		{Kind: cpu.OpLoad, Addr: 0},
		{Kind: cpu.OpALU, Cycles: 3},
		{Kind: cpu.OpStore, Addr: 64},
	})
}

// An empty co-runner cannot generate contention; RunWorkloads must reject
// it immediately with a clear error instead of running a contention-free
// scenario (or, for a looped empty trace, leaning on the deadlock guard).
func TestRunWorkloadsRejectsEmptyPrograms(t *testing.T) {
	cfg := DefaultConfig()
	for name, empty := range map[string]cpu.Program{
		"empty trace":        cpu.NewTrace(nil),
		"looped empty trace": NewLooped(cpu.NewTrace(nil)),
	} {
		programs := []cpu.Program{smallProgram(), empty, nil, nil}
		_, err := RunWorkloads(cfg, programs, 1)
		if err == nil {
			t.Fatalf("%s: accepted as co-runner", name)
		}
		if !strings.Contains(err.Error(), "core 1 is empty") {
			t.Errorf("%s: error does not name the empty core: %v", name, err)
		}
		// The same programs on the TuA core must be rejected too.
		_, err = RunWorkloads(cfg, []cpu.Program{empty, nil, nil, nil}, 1)
		if err == nil {
			t.Fatalf("%s: accepted as TuA", name)
		}
	}
}

// The emptiness probe must not perturb a valid scenario: programs are
// rewound after probing, so results are unchanged.
func TestRunWorkloadsProbeIsLossless(t *testing.T) {
	cfg := DefaultConfig()
	run := func() int64 {
		programs := []cpu.Program{smallProgram(), NewLooped(smallProgram()), nil, nil}
		res, err := RunWorkloads(cfg, programs, 7)
		if err != nil {
			t.Fatal(err)
		}
		return res.TaskCycles
	}
	if a, b := run(), run(); a != b || a <= 0 {
		t.Fatalf("runs differ after probe: %d vs %d", a, b)
	}
}

func TestLoopedProgramClone(t *testing.T) {
	l := NewLooped(smallProgram())
	// Advance the original past its first op.
	if _, ok := l.Next(); !ok {
		t.Fatal("looped program empty")
	}
	c, ok := cpu.TryClone(l)
	if !ok {
		t.Fatal("looped trace not cloneable")
	}
	// The clone starts at the beginning and is independent of the original.
	op, ok := c.Next()
	if !ok || op.Kind != cpu.OpLoad {
		t.Fatalf("clone first op = %v/%v, want the load", op, ok)
	}
	// A looped program over a non-cloneable inner must report not-cloneable.
	if _, ok := cpu.TryClone(NewLooped(opaque{})); ok {
		t.Error("looped non-cloneable inner claimed cloneable")
	}
}

// opaque is a Program without Clone.
type opaque struct{}

func (opaque) Next() (cpu.Op, bool) { return cpu.Op{Kind: cpu.OpALU, Cycles: 1}, true }
func (opaque) Reset()               {}
