package sim

import (
	"fmt"

	"creditbus/internal/bus"
	"creditbus/internal/cpu"
	"creditbus/internal/mem"
)

// DefaultLimit bounds single runs; generous against the ~10^5..10^6-cycle
// benchmarks so that only genuine deadlocks hit it.
const DefaultLimit = 200_000_000

// Result aggregates one run's observables.
type Result struct {
	// TaskCycles is the execution time of the task under analysis.
	TaskCycles int64
	// WallCycles is the machine cycle count when the run ended.
	WallCycles int64
	// CPU is the TuA core's cycle accounting.
	CPU cpu.Stats
	// Bus is the TuA master's bus statistics.
	Bus bus.MasterStats
	// Utilisation is overall bus occupancy.
	Utilisation float64
	// L1HitRate and L2HitRate are the TuA's cache hit rates.
	L1HitRate, L2HitRate float64
	// MemCounts is the per-transaction-kind traffic (whole machine).
	MemCounts map[mem.Kind]int64
}

func (m *Machine) result(tua int) Result {
	r := Result{
		TaskCycles:  m.TaskCycles(tua),
		WallCycles:  m.cycle,
		Utilisation: m.sharedBus.Utilisation(),
		Bus:         m.sharedBus.Stats(tua),
		MemCounts:   map[mem.Kind]int64{},
	}
	if c := m.cores[tua]; c != nil {
		r.CPU = c.Stats()
	}
	if m.l1s[tua] != nil {
		r.L1HitRate = m.l1s[tua].Stats().HitRate()
	}
	if m.l2s[tua] != nil {
		r.L2HitRate = m.l2s[tua].Stats().HitRate()
	}
	for _, k := range mem.Kinds() {
		r.MemCounts[k] = m.memctl.Count(k)
	}
	return r
}

// Probe observes a machine at step granularity: a probed run invokes it
// after every engine step (one cycle on the per-cycle engine, one event
// step on the fast engine), and once more after the final step. Probes must
// only read — any mutation corrupts the run. They exist for the invariant
// oracles of internal/scengen, which check budget bounds and bus
// conservation at every observation point; a nil Probe makes the probed run
// functions identical to their plain counterparts.
type Probe func(*Machine)

// runProbed drives m until Done or limit, invoking probe after each step.
// The loop is Machine.Run with the probe spliced in, including the limit
// guard's cycle and message, so probed and plain runs are bit-identical.
func runProbed(m *Machine, limit int64, probe Probe) error {
	if probe == nil {
		_, err := m.Run(limit)
		return err
	}
	for !m.Done() {
		if m.cycle >= limit {
			return fmt.Errorf("sim: limit of %d cycles reached before completion", limit)
		}
		m.step(limit)
		probe(m)
	}
	return nil
}

// RunIsolation executes prog alone on cfg.TuA with every other core idle —
// the paper's ISO scenario. The configuration's Mode is forced to operation
// mode (isolation measurements run the deployment configuration).
func RunIsolation(cfg Config, prog cpu.Program, seed uint64) (Result, error) {
	return RunIsolationProbed(cfg, prog, seed, nil)
}

// RunIsolationProbed is RunIsolation with a step-granularity observer.
func RunIsolationProbed(cfg Config, prog cpu.Program, seed uint64, probe Probe) (Result, error) {
	var r Runner // fresh runner = fresh machine: the unpooled reference path
	return r.IsolationProbed(cfg, prog, seed, probe)
}

// RunMaxContention executes prog on cfg.TuA against Table I contention
// injectors on every other core — the paper's CON scenario (WCET-estimation
// mode: contender REQ always set, MaxL holds, COMP gating when CBA is on,
// TuA budget starting empty).
func RunMaxContention(cfg Config, prog cpu.Program, seed uint64) (Result, error) {
	return RunMaxContentionProbed(cfg, prog, seed, nil)
}

// RunMaxContentionProbed is RunMaxContention with a step-granularity
// observer.
func RunMaxContentionProbed(cfg Config, prog cpu.Program, seed uint64, probe Probe) (Result, error) {
	var r Runner
	return r.MaxContentionProbed(cfg, prog, seed, probe)
}

// emptyProgram reports whether p yields no operations. The probe consumes
// one operation and rewinds, which the Program contract makes lossless.
func emptyProgram(p cpu.Program) bool {
	p.Reset()
	_, ok := p.Next()
	p.Reset()
	return !ok
}

// RunWorkloads executes one program per core (operation-mode contention,
// e.g. the §II illustrative scenario with real streaming co-runners) and
// returns the result for cfg.TuA. Runs until the TuA finishes; co-runners
// keep generating contention throughout.
//
// Every non-nil program must yield at least one operation: an empty
// program — in particular an empty trace wrapped in NewLooped, whose Next
// returns false forever — cannot generate the contention the scenario
// asks for, so it is rejected up front with a clear error instead of
// silently producing a contention-free (or deadlock-guarded) run.
func RunWorkloads(cfg Config, programs []cpu.Program, seed uint64) (Result, error) {
	return RunWorkloadsProbed(cfg, programs, seed, nil)
}

// RunWorkloadsProbed is RunWorkloads with a step-granularity observer.
func RunWorkloadsProbed(cfg Config, programs []cpu.Program, seed uint64, probe Probe) (Result, error) {
	var r Runner
	return r.WorkloadsProbed(cfg, programs, seed, probe)
}

// LoopedProgram wraps a trace so that it restarts forever — used for
// co-runner tasks that must generate contention for the whole run.
type LoopedProgram struct{ inner cpu.Program }

// NewLooped returns a program that replays inner endlessly.
func NewLooped(inner cpu.Program) *LoopedProgram { return &LoopedProgram{inner: inner} }

// Next implements cpu.Program.
func (l *LoopedProgram) Next() (cpu.Op, bool) {
	op, ok := l.inner.Next()
	if !ok {
		l.inner.Reset()
		op, ok = l.inner.Next()
		if !ok {
			return cpu.Op{}, false // empty inner program
		}
	}
	return op, true
}

// Reset implements cpu.Program.
func (l *LoopedProgram) Reset() { l.inner.Reset() }

// Clone implements cpu.Cloner when the inner program does; it returns nil
// (meaning "not cloneable", see cpu.TryClone) otherwise.
func (l *LoopedProgram) Clone() cpu.Program {
	inner, ok := cpu.TryClone(l.inner)
	if !ok {
		return nil
	}
	return &LoopedProgram{inner: inner}
}
