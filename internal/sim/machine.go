package sim

import (
	"fmt"
	"math/bits"

	"creditbus/internal/bitset"
	"creditbus/internal/bus"
	"creditbus/internal/cache"
	"creditbus/internal/core"
	"creditbus/internal/cpu"
	"creditbus/internal/mem"
	"creditbus/internal/rng"
)

// Machine is one assembled platform instance. Build it with NewMachine,
// drive it with Tick or Run. Machines are single-goroutine objects.
type Machine struct {
	cfg Config

	cores     []*cpu.Core // nil for idle or injector-driven masters
	ports     []*port
	l1s, l2s  []*cache.Cache
	sharedBus *bus.Bus
	credit    *core.Arbiter
	signals   *core.Signals
	memctl    *mem.Controller

	injectors    []int       // masters driven by WCET-mode contention injectors
	injectorBits bitset.Set  // the same masters as a bitset, for word-level reposting
	live         []*cpu.Core // non-nil cores, for the fast path's hot loops
	coreNext     []int64     // flat next-event scratch, one entry per live core
	cycle        int64
	busNext      int64 // bus horizon recorded by the last nextEventCycle

	// onComplete is the bus completion callback, bound once at construction
	// so Reuse can hand the same func value back to the bus instead of
	// allocating a fresh closure per run.
	onComplete func(master int, tag uint64)
}

// NewMachine builds a platform running programs[i] on core i. A nil program
// leaves the core idle. In WCET-estimation mode every core except cfg.TuA
// must have a nil program: those masters are driven by Table I contention
// injectors instead (REQ always set, MaxL holds).
//
// seed determines every random aspect of the run — cache placement and
// replacement of each cache, and the arbitration policy's draws — so equal
// seeds give bit-identical runs and MBPTA collects across distinct seeds.
func NewMachine(cfg Config, programs []cpu.Program, seed uint64) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(programs) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d programs for %d cores", len(programs), cfg.Cores)
	}

	m := &Machine{cfg: cfg}

	seeds := rng.New(seed)
	policySeed := seeds.Uint64()

	credit, err := cfg.buildCredit()
	if err != nil {
		return nil, err
	}
	m.credit = credit
	if credit != nil && cfg.Mode == core.WCETMode {
		m.signals = core.NewSignals(credit, core.WCETMode, cfg.TuA)
	}

	m.memctl, err = mem.NewController(cfg.Latency)
	if err != nil {
		return nil, err
	}

	m.onComplete = func(master int, _ uint64) {
		if p := m.ports[master]; p != nil {
			p.onComplete()
		}
	}
	m.sharedBus, err = bus.New(bus.Config{
		Masters:    cfg.Cores,
		MaxHold:    cfg.Latency.MaxHold(),
		Policy:     cfg.buildPolicy(policySeed),
		Credit:     credit,
		Signals:    m.signals,
		OnComplete: m.onComplete,
	})
	if err != nil {
		return nil, err
	}

	m.cores = make([]*cpu.Core, cfg.Cores)
	m.ports = make([]*port, cfg.Cores)
	m.l1s = make([]*cache.Cache, cfg.Cores)
	m.l2s = make([]*cache.Cache, cfg.Cores)
	m.injectorBits = bitset.New(cfg.Cores)

	for i := 0; i < cfg.Cores; i++ {
		if cfg.Mode == core.WCETMode && i != cfg.TuA {
			if programs[i] != nil {
				return nil, fmt.Errorf("sim: WCET mode: core %d must be injector-driven (nil program)", i)
			}
			m.injectors = append(m.injectors, i)
			m.injectorBits.Set(i)
			continue
		}
		if programs[i] == nil {
			continue // idle core
		}
		l1, err := cache.New(cache.Config{
			Sets: cfg.L1Sets, Ways: cfg.L1Ways, LineBytes: cfg.LineBytes,
			PlacementSeed: seeds.Uint64(), ReplacementSeed: seeds.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		l2, err := cache.New(cache.Config{
			Sets: cfg.L2Sets, Ways: cfg.L2Ways, LineBytes: cfg.LineBytes,
			WriteBack: true, AllocOnWrite: true,
			PlacementSeed: seeds.Uint64(), ReplacementSeed: seeds.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		m.l1s[i], m.l2s[i] = l1, l2
		p := &port{machine: m, id: i, l1: l1, l2: l2}
		m.ports[i] = p
		m.cores[i] = cpu.NewCore(programs[i], p)
		m.live = append(m.live, m.cores[i])
	}
	m.coreNext = make([]int64, len(m.live))
	return m, nil
}

// Cycle returns the elapsed simulated cycles.
func (m *Machine) Cycle() int64 { return m.cycle }

// Bus exposes the shared bus (statistics, shares).
func (m *Machine) Bus() *bus.Bus { return m.sharedBus }

// SetGrantObserver installs (or, with nil, removes) a callback invoked for
// every bus grant — the hook the fairness instrumentation hangs off.
// Machine.Reuse rebuilds the bus configuration without an observer, so the
// callback must be reinstalled after every Reuse (Runner.WorkloadsObserved
// does exactly that).
func (m *Machine) SetGrantObserver(fn func(bus.GrantEvent)) { m.sharedBus.SetOnGrant(fn) }

// Credit exposes the CBA arbiter, or nil when CBA is off.
func (m *Machine) Credit() *core.Arbiter { return m.credit }

// Signals exposes the Table I signal block, or nil outside WCET mode.
func (m *Machine) Signals() *core.Signals { return m.signals }

// MemController exposes the memory controller statistics.
func (m *Machine) MemController() *mem.Controller { return m.memctl }

// Core returns core i, or nil for idle/injector masters.
func (m *Machine) Core(i int) *cpu.Core { return m.cores[i] }

// L1 returns core i's L1 data cache (nil for idle/injector masters).
func (m *Machine) L1(i int) *cache.Cache { return m.l1s[i] }

// L2 returns core i's L2 partition (nil for idle/injector masters).
func (m *Machine) L2(i int) *cache.Cache { return m.l2s[i] }

// Config returns the platform configuration.
func (m *Machine) Config() Config { return m.cfg }

// Done reports whether every core with a program has finished. Injector
// masters never finish; they are excluded. m.live is exactly the non-nil
// cores, so iterating it (not the sparse slot vector) keeps this hot-loop
// check proportional to the programs actually running.
func (m *Machine) Done() bool {
	for _, c := range m.live {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Tick advances the platform by one cycle: cores issue (possibly posting
// bus requests), WCET injectors keep their REQ lines set, then the bus
// arbitrates, updates budgets and delivers completions.
func (m *Machine) Tick() {
	m.cycle++
	for _, c := range m.live {
		c.Tick()
	}
	m.repostInjectors()
	m.sharedBus.Tick()
}

// repostInjectors re-asserts the REQ line of every injector without an
// outstanding request (Table I: REQ_{2,3,4} always set; contender holds are
// MaxL). The grantable set is injectorBits ∧ ¬pending, diffed word by word
// against the bus's pending set: between grants this is a few word ANDs,
// not a loop over a thousand injectors.
func (m *Machine) repostInjectors() {
	if len(m.injectors) == 0 {
		return
	}
	hold := m.cfg.Latency.MaxHold()
	pend := m.sharedBus.PendingWords()
	for w, inj := range m.injectorBits {
		// The word is snapshotted before posting: MustPost flips bits only
		// in pend[w], never in a word still to be visited... and only for
		// masters already removed from this snapshot.
		for free := inj &^ pend[w]; free != 0; free &= free - 1 {
			i := w<<6 + bits.TrailingZeros64(free)
			m.sharedBus.MustPost(i, bus.Request{Hold: hold})
		}
	}
}

// Run advances until Done or until limit cycles, returning the cycle count
// at completion. It errors if the limit is reached first — a deadlock guard
// for misconfigured scenarios. Stepping is event-horizon (see Step) unless
// the configuration forces the per-cycle reference engine; the two are
// bit-identical, including the cycle at which the limit guard trips.
func (m *Machine) Run(limit int64) (int64, error) {
	for !m.Done() {
		if m.cycle >= limit {
			return m.cycle, fmt.Errorf("sim: limit of %d cycles reached before completion", limit)
		}
		m.step(limit)
	}
	return m.cycle, nil
}

// TaskCycles returns core i's execution time in cycles (the paper's
// per-task measure).
func (m *Machine) TaskCycles(i int) int64 {
	if m.cores[i] == nil {
		return 0
	}
	return m.cores[i].Stats().Cycles
}
