package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"creditbus/internal/campaign"
	"creditbus/internal/sim"
)

func intp(v int) *int { return &v }

// validSpec returns a minimal valid wcet spec tests mutate.
func validSpec() Spec {
	return Spec{
		Name: "t",
		Run:  RunWCET,
		Workloads: []Workload{
			{Core: 0, Name: "matrix", Ops: 200},
		},
		Seeds: Seeds{List: []uint64{3}},
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","run":"wcet","typo_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","run":"wcet","workloads":[]} {"trailing":true}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","run":"wcet","workloads":[]} @@@`)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "file stem"},
		{"bad name", func(s *Spec) { s.Name = "a/b" }, "file stem"},
		{"bad run", func(s *Spec) { s.Run = "contention" }, "run ="},
		{"bad policy", func(s *Spec) { s.Policy = "EDF" }, "unknown policy"},
		{"bad credit", func(s *Spec) { s.Credit = &Credit{Kind: "tokens"} }, "unknown credit kind"},
		{"bad engine", func(s *Spec) { s.Engine = "warp" }, "engine ="},
		{"tua range", func(s *Spec) { s.TuA = intp(7) }, "out of range"},
		{"no workloads", func(s *Spec) { s.Workloads = nil }, "no workloads"},
		{"core range", func(s *Spec) { s.Workloads[0].Core = 4 }, "out of range"},
		{"unknown workload", func(s *Spec) { s.Workloads[0].Name = "dhrystone" }, "unknown workload"},
		{"negative ops", func(s *Spec) { s.Workloads[0].Ops = -1 }, "ops"},
		{"weight without LOT", func(s *Spec) { s.Workloads[0].Weight = 2 }, "weighted policies"},
		{"bad criticality", func(s *Spec) { s.Workloads[0].Criticality = "MID" }, "criticality"},
		{"loop outside workloads run", func(s *Spec) { s.Workloads[0].Loop = true }, "loop"},
		{"tua without workload", func(s *Spec) { s.TuA = intp(1) }, "no workload"},
		{"num without den", func(s *Spec) { s.Credit = &Credit{Kind: "hcba-weights", Num: 1} }, "set both"},
		{"share >= 1", func(s *Spec) { s.Credit = &Credit{Kind: "hcba-weights", Num: 3, Den: 3} }, "< 1"},
		{"weights on cba", func(s *Spec) { s.Credit = &Credit{Kind: "cba", Num: 1, Den: 2} }, "hcba-weights"},
		{"cap on weights", func(s *Spec) { s.Credit = &Credit{Kind: "hcba-weights", Num: 1, Den: 2, CapFactor: 2} }, "hcba-cap"},
		{"cap factor 1", func(s *Spec) { s.Credit = &Credit{Kind: "hcba-cap", CapFactor: 1} }, "cap_factor"},
		{"negative cores", func(s *Spec) { s.Cores = -3 }, "cores ="},
		{"privileged range", func(s *Spec) { s.Credit = &Credit{Kind: "hcba-cap", Privileged: intp(9)} }, "privileged"},
		{"privileged on plain cba", func(s *Spec) { s.Credit = &Credit{Kind: "cba", Privileged: intp(2)} }, "hcba-"},
		{"privileged 0 with nonzero tua", func(s *Spec) {
			s.TuA = intp(1)
			s.Workloads[0].Core = 1
			s.Credit = &Credit{Kind: "hcba-weights", Privileged: intp(0)}
		}, "not expressible"},
		{"seeds list plus base", func(s *Spec) { s.Seeds = Seeds{Base: 1, List: []uint64{2}} }, "exclusive"},
		{"seeds list plus runs", func(s *Spec) { s.Seeds = Seeds{Runs: 2, List: []uint64{2}} }, "exclusive"},
		{"seeds list plus stride", func(s *Spec) { s.Seeds = Seeds{Stride: 3, List: []uint64{2}} }, "exclusive"},
		{"negative seeds runs", func(s *Spec) { s.Seeds = Seeds{Runs: -1} }, "seeds.runs"},
		{"duplicate list seeds", func(s *Spec) { s.Seeds = Seeds{List: []uint64{7, 3, 7}} }, "duplicate seeds"},
		{"seed schedule wraps", func(s *Spec) { s.Seeds = Seeds{Base: math.MaxUint64 - 5, Runs: 3, Stride: 3} }, "overflows"},
		{"seed stride product wraps", func(s *Spec) { s.Seeds = Seeds{Runs: 3, Stride: math.MaxUint64} }, "overflows"},
		{"negative platform", func(s *Spec) { s.Platform = &Platform{L1Sets: -4} }, "platform.l1_sets"},
		{"invalid cache geometry", func(s *Spec) { s.Platform = &Platform{L1Sets: 3} }, "L1"},
		{"empty fair block", func(s *Spec) {
			s.Policy = "PF"
			s.Fair = &Fair{}
		}, "fair block is empty"},
		{"avg_shift without PF", func(s *Spec) {
			s.Policy = "GWF"
			s.Fair = &Fair{AvgShift: 2}
		}, "avg_shift only applies to policy PF"},
		{"avg_shift range", func(s *Spec) {
			s.Policy = "PF"
			s.Fair = &Fair{AvgShift: 31}
		}, "avg_shift"},
		{"timescales without MTS", func(s *Spec) {
			s.Policy = "PF"
			s.Fair = &Fair{Timescales: []TimescaleSpec{{Num: 1, Den: 64, Depth: 4}}}
		}, "timescales only apply to policy MTS"},
		{"too many timescales", func(s *Spec) {
			s.Policy = "MTS"
			s.Fair = &Fair{Timescales: make([]TimescaleSpec, 9)}
		}, "≤ 8"},
		{"timescale field range", func(s *Spec) {
			s.Policy = "MTS"
			s.Fair = &Fair{Timescales: []TimescaleSpec{{Num: 1, Den: 0, Depth: 4}}}
		}, "timescales[0].den"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validSpec()
			c.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidateMultiWorkloadRules(t *testing.T) {
	s := validSpec()
	s.Run = RunWorkloads
	s.Workloads = []Workload{
		{Core: 0, Name: "matrix", Ops: 200, Criticality: CritHigh},
		{Core: 0, Name: "stream", Loop: true},
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "two workloads on core 0") {
		t.Fatalf("duplicate core accepted: %v", err)
	}

	s.Workloads = []Workload{
		{Core: 0, Name: "matrix", Ops: 200, Criticality: CritHigh},
		{Core: 1, Name: "stream", Loop: true, Criticality: CritHigh},
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "both HI") {
		t.Fatalf("two HI cores accepted: %v", err)
	}

	s.Workloads = []Workload{
		{Core: 0, Name: "matrix", Ops: 200, Criticality: CritHigh, Loop: true},
		{Core: 1, Name: "stream", Loop: true},
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "must terminate") {
		t.Fatalf("looping TuA accepted: %v", err)
	}

	// wcet takes exactly one workload: the injectors are synthesised.
	s = validSpec()
	s.Workloads = append(s.Workloads, Workload{Core: 1, Name: "stream"})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "exactly one workload") {
		t.Fatalf("wcet co-runner accepted: %v", err)
	}
}

func TestTuAFromCriticality(t *testing.T) {
	s := validSpec()
	s.Run = RunWorkloads
	s.Workloads = []Workload{
		{Core: 0, Name: "stream", Loop: true, Criticality: CritLow},
		{Core: 2, Name: "matrix", Ops: 200, Criticality: CritHigh},
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.TuA() != 2 || c.Config.TuA != 2 {
		t.Fatalf("TuA = %d/%d, want 2 (the HI core)", c.TuA(), c.Config.TuA)
	}

	// An explicit tua that contradicts the HI core is an error.
	s.TuA = intp(0)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "HI-criticality") {
		t.Fatalf("contradictory tua accepted: %v", err)
	}
}

func TestSeedsExpand(t *testing.T) {
	if got := (Seeds{List: []uint64{9, 8}}).Expand(); !reflect.DeepEqual(got, []uint64{9, 8}) {
		t.Fatalf("list: %v", got)
	}
	if got := (Seeds{Base: 5, Runs: 3, Stride: 10}).Expand(); !reflect.DeepEqual(got, []uint64{5, 15, 25}) {
		t.Fatalf("stride: %v", got)
	}
	// Default stride is the module-wide campaign schedule.
	got := Seeds{Base: 7, Runs: 2}.Expand()
	want := []uint64{7, 7 + campaign.SeedStride}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("default stride: %v, want %v", got, want)
	}
	// Zero value: one run at seed 0.
	if got := (Seeds{}).Expand(); !reflect.DeepEqual(got, []uint64{0}) {
		t.Fatalf("zero: %v", got)
	}
}

// TestSeedsValidateOverflowBoundary pins the overflow rejection exactly at
// the uint64 edge: the largest derived seed landing on MaxUint64 is legal,
// one past it is not. Before the check, Base + i·Stride wrapped silently and
// an even stride could revisit earlier seeds — duplicate runs that skew
// campaign statistics and collide content-addressed result keys.
func TestSeedsValidateOverflowBoundary(t *testing.T) {
	// Last seed exactly MaxUint64: base + (runs-1)·stride = 2^64-1.
	ok := Seeds{Base: math.MaxUint64 - 20, Runs: 3, Stride: 10}
	if err := ok.Validate(); err != nil {
		t.Fatalf("schedule ending exactly at MaxUint64 rejected: %v", err)
	}
	if got := ok.Expand(); got[2] != math.MaxUint64 {
		t.Fatalf("last seed %d, want MaxUint64", got[2])
	}
	// One past the edge wraps.
	bad := Seeds{Base: math.MaxUint64 - 19, Runs: 3, Stride: 10}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("wrapping schedule accepted: %v", err)
	}
	// The classic collision shape: an even power-of-two stride returns to
	// base after two steps — exactly what the validator must refuse.
	collide := Seeds{Base: 1, Runs: 3, Stride: 1 << 63}
	if err := collide.Validate(); err == nil {
		t.Fatal("seed-colliding schedule accepted")
	}
	// The default schedule wraps by design (modular golden-ratio stepping,
	// odd stride, injective): runs big enough to wrap must stay accepted —
	// the corpus' multiseed scenarios depend on it.
	def := Seeds{Base: 537, Runs: 6}
	if err := def.Validate(); err != nil {
		t.Fatalf("default-stride schedule rejected: %v", err)
	}
	seen := map[uint64]bool{}
	for _, s := range def.Expand() {
		if seen[s] {
			t.Fatalf("default schedule collided at seed %d", s)
		}
		seen[s] = true
	}
	// Duplicate List entries double-bill runs.
	if err := (Seeds{List: []uint64{5, 5}}).Validate(); err == nil {
		t.Fatal("duplicate list seeds accepted")
	}
}

func TestCompileConfig(t *testing.T) {
	s := Spec{
		Name:     "cfg",
		Cores:    2,
		Policy:   "TDMA",
		Platform: &Platform{L1Sets: 32, MemLatency: 40},
		Credit:   &Credit{Kind: "hcba-weights", Num: 1, Den: 2},
		Run:      RunWCET,
		Engine:   EnginePerCycle,
		TuA:      intp(1),
		Workloads: []Workload{
			{Core: 1, Name: "canrdr", Ops: 100},
		},
		Seeds: Seeds{List: []uint64{1, 2}},
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	def := sim.DefaultConfig()
	cfg := c.Config
	if cfg.Cores != 2 || cfg.Policy != sim.PolicyTDMA || cfg.TuA != 1 {
		t.Fatalf("cores/policy/tua: %+v", cfg)
	}
	if cfg.Credit.Kind != sim.CreditHCBAWeights || cfg.Credit.Num != 1 || cfg.Credit.Den != 2 {
		t.Fatalf("credit: %+v", cfg.Credit)
	}
	if cfg.L1Sets != 32 || cfg.L1Ways != def.L1Ways || cfg.Latency.Mem != 40 || cfg.Latency.L2Hit != def.Latency.L2Hit {
		t.Fatalf("platform overrides: %+v", cfg)
	}
	if !cfg.ForcePerCycle {
		t.Fatal("engine per-cycle not applied")
	}
	if len(c.Seeds) != 2 {
		t.Fatalf("seeds: %v", c.Seeds)
	}
	if p := c.Program(1); p == nil {
		t.Fatal("no TuA program")
	}
	if p := c.Program(0); p != nil {
		t.Fatal("idle core got a program")
	}
}

func TestLotteryWeights(t *testing.T) {
	s := validSpec()
	s.Policy = "LOT"
	s.Run = RunWorkloads
	s.Workloads = []Workload{
		{Core: 0, Name: "matrix", Ops: 200, Weight: 6, Criticality: CritHigh},
		{Core: 2, Name: "stream", Loop: true},
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{6, 1, 1, 1}
	if !reflect.DeepEqual(c.Config.LotteryTickets, want) {
		t.Fatalf("tickets %v, want %v", c.Config.LotteryTickets, want)
	}

	// No weights stated: keep the policy's unweighted default.
	s.Workloads[0].Weight = 0
	c, err = s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.LotteryTickets != nil {
		t.Fatalf("tickets %v, want nil", c.Config.LotteryTickets)
	}
}

// TestResultsParallelDeterminism: a scenario campaign is bit-identical at
// any worker count, like every other campaign in the module.
func TestResultsParallelDeterminism(t *testing.T) {
	s := validSpec()
	s.Seeds = Seeds{List: []uint64{3, 4, 5, 6}}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := c.Results(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := c.Results(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel scenario results diverge from serial")
	}
}

// TestCampaignSpecMatchesResults: the campaign.Spec adapter yields the same
// execution times as direct per-seed runs.
func TestCampaignSpecMatchesResults(t *testing.T) {
	s := validSpec()
	s.Seeds = Seeds{List: []uint64{3, 4}}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	spec, run, err := c.CampaignSpec(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := spec.TaskCycles(run)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.Results(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if samples[i] != float64(direct[i].TaskCycles) {
			t.Fatalf("run %d: campaign sample %v != direct %d", i, samples[i], direct[i].TaskCycles)
		}
	}

	// workloads runs have no single-program campaign form.
	w := validSpec()
	w.Run = RunWorkloads
	w.Workloads = append(w.Workloads, Workload{Core: 1, Name: "stream", Loop: true})
	cw, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cw.CampaignSpec(1, nil); err == nil {
		t.Fatal("workloads run accepted by CampaignSpec")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := validSpec()
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Results(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(results)
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatal("snapshot does not round-trip")
	}
	// Canonical form: encoding is byte-stable.
	again, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("snapshot encoding is not byte-stable")
	}
	if _, err := c.Snapshot(results[:0]); err == nil {
		t.Fatal("snapshot with wrong result count accepted")
	}
}
