package scenario

import (
	"reflect"
	"testing"

	"creditbus/internal/sim"
)

// TestReuseDifferential is the corpus-wide proof of the machine-pooling
// layer: for every curated scenario, every seed of its schedule and BOTH
// engines, a run on a pooled, recycled machine (scenario.Pool — one pool
// shared across the whole scenario, and across engines, so consecutive
// runs genuinely reuse a dirty machine) must produce a Result
// field-for-field identical to the fresh-machine reference. The pool is
// additionally driven through the corpus's structural variety — core
// counts, policies, credit kinds, platform overrides, run kinds — because
// the same pool object serves each scenario's full schedule.
func TestReuseDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide reuse sweep runs every scenario on both engines")
	}
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < corpusFloor {
		t.Fatalf("corpus has %d scenarios, the curated floor is %d", len(specs), corpusFloor)
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			c, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			pool := c.NewPool()
			for _, perCycle := range []bool{false, true} {
				for _, seed := range c.Seeds {
					fresh, err := c.RunSeedEngine(seed, perCycle)
					if err != nil {
						t.Fatalf("seed %d percycle=%v (fresh): %v", seed, perCycle, err)
					}
					reused, err := pool.RunSeedProbed(seed, perCycle, nil)
					if err != nil {
						t.Fatalf("seed %d percycle=%v (reused): %v", seed, perCycle, err)
					}
					if !reflect.DeepEqual(fresh, reused) {
						t.Errorf("seed %d percycle=%v: reused machine diverges from fresh:\nreused: %+v\nfresh:  %+v",
							seed, perCycle, reused, fresh)
					}
				}
			}
		})
	}
}

// TestReuseConsecutiveCycles pins the two-cycle property at the scenario
// level: two consecutive runs of the same seed on one pool equal each
// other and the fresh reference (the machine must not remember its
// previous run in any observable way).
func TestReuseConsecutiveCycles(t *testing.T) {
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	// One spec per run kind is enough here; the corpus-wide sweep above
	// covers the space.
	picked := map[string]Spec{}
	for _, sp := range specs {
		if _, ok := picked[sp.Run]; !ok {
			picked[sp.Run] = sp
		}
	}
	for kind, sp := range picked {
		c, err := sp.Compile()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		seed := c.Seeds[0]
		fresh, err := c.RunSeed(seed)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		pool := c.NewPool()
		for pass := 0; pass < 2; pass++ {
			got, err := pool.RunSeed(seed)
			if err != nil {
				t.Fatalf("%s pass %d: %v", kind, pass, err)
			}
			if !reflect.DeepEqual(fresh, got) {
				t.Errorf("%s (%s) pass %d diverges from fresh reference", sp.Name, kind, pass)
			}
		}
	}
}

// TestResultsPooledMatchesSerial: the pooled campaign path must yield the
// schedule the unpooled per-seed loop yields, at any worker count.
func TestResultsPooledMatchesSerial(t *testing.T) {
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	var multi *Spec
	for i := range specs {
		if len(specs[i].Seeds.Expand()) > 1 {
			multi = &specs[i]
			break
		}
	}
	if multi == nil {
		t.Fatal("corpus has no multi-seed scenario")
	}
	c, err := multi.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]sim.Result, len(c.Seeds))
	for i, seed := range c.Seeds {
		if want[i], err = c.RunSeed(seed); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 3} {
		got, err := c.Results(workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: pooled campaign diverges from per-seed loop", workers)
		}
	}
}
