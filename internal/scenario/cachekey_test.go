package scenario

import (
	"reflect"
	"testing"

	"creditbus/internal/sim"
)

// TestCacheKeySemantics: the key is blind to labels and the seed schedule
// but sensitive to every compiled-config field — the soundness condition for
// using it as a content address.
func TestCacheKeySemantics(t *testing.T) {
	base := validSpec()
	key, err := base.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 64 {
		t.Fatalf("key %q is not hex SHA-256", key)
	}

	// Label-only changes keep the key: renaming or re-describing a scenario
	// must hit the same cached results.
	same := []func(*Spec){
		func(s *Spec) { s.Name = "renamed-scenario" },
		func(s *Spec) { s.Description = "entirely new words" },
		func(s *Spec) { s.Seeds = Seeds{List: []uint64{99, 100}} },
		func(s *Spec) { s.Seeds = Seeds{Base: 1, Runs: 7} },
	}
	for i, mut := range same {
		s := validSpec()
		mut(&s)
		k, err := s.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		if k != key {
			t.Fatalf("label/schedule mutation %d changed the cache key", i)
		}
	}

	// Every semantic change must move the key.
	diff := []func(*Spec){
		func(s *Spec) { s.Cores = 8 },
		func(s *Spec) { s.Policy = "FIFO" },
		func(s *Spec) { s.Credit = &Credit{Kind: "cba"} },
		func(s *Spec) { s.Run = RunIsolation },
		func(s *Spec) { s.Engine = EnginePerCycle },
		func(s *Spec) { s.TuA = intp(0) },
		func(s *Spec) { s.Platform = &Platform{MemLatency: 40} },
		func(s *Spec) { s.Workloads[0].Name = "canrdr" },
		func(s *Spec) { s.Workloads[0].Ops = 100 },
		func(s *Spec) { s.Workloads[0].Seed = 9 },
	}
	seen := map[string]int{key: -1}
	for i, mut := range diff {
		s := validSpec()
		mut(&s)
		k, err := s.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		if j, dup := seen[k]; dup {
			t.Fatalf("semantic mutations %d and %d share a cache key", j, i)
		}
		seen[k] = i
	}

	// ResultKey separates seeds under one spec key.
	r1, err := base.ResultKey(1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := base.ResultKey(2)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("distinct seeds share a result key")
	}
}

// TestRunSeedRunnerMatchesFresh: executing a compiled scenario on an
// external recycled Runner — the service-worker path — is bit-identical to
// the fresh-machine reference, including when one Runner serves different
// scenarios back to back.
func TestRunSeedRunnerMatchesFresh(t *testing.T) {
	a := validSpec()
	b := validSpec()
	b.Run = RunWorkloads
	b.Workloads = []Workload{
		{Core: 0, Name: "matrix", Ops: 200, Criticality: CritHigh},
		{Core: 1, Name: "stream", Loop: true},
	}
	ca, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}

	var rn sim.Runner
	// Interleave the two scenarios on one runner; every run must equal the
	// fresh-machine result regardless of what the runner served before.
	for i, step := range []struct {
		c    *Compiled
		seed uint64
	}{
		{ca, 3}, {cb, 3}, {ca, 4}, {ca, 3}, {cb, 5},
	} {
		pooled, err := step.c.RunSeedRunner(&rn, step.seed)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := step.c.RunSeed(step.seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pooled, fresh) {
			t.Fatalf("step %d: runner result diverges from fresh machine", i)
		}
	}
}
