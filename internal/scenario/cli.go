package scenario

import "flag"

// This file holds the small CLI conventions shared by every command that
// accepts -scenario file.json (cmd/cbasim, cmd/experiments): which flags
// were set explicitly, and how a -fast boolean maps onto the schema's
// engine option. Keeping them here stops the CLIs from drifting apart.

// EngineForFast translates a CLI -fast boolean into the engine option.
func EngineForFast(fast bool) string {
	if fast {
		return EngineFast
	}
	return EnginePerCycle
}

// ScanFlags inspects the explicitly set flags of a parsed FlagSet: it
// returns the "-name" spellings of those found in conflicting (flags that
// would silently lose to a scenario file and must be rejected alongside
// it), and whether the "fast" engine override was set at all.
func ScanFlags(fs *flag.FlagSet, conflicting map[string]bool) (conflicts []string, fastSet bool) {
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "fast" {
			fastSet = true
		}
		if conflicting[f.Name] {
			conflicts = append(conflicts, "-"+f.Name)
		}
	})
	return conflicts, fastSet
}
