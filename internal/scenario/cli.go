package scenario

import (
	"flag"
	"fmt"
	"io"
)

// This file holds the small CLI conventions shared by every command that
// accepts -scenario file.json (cmd/cbasim, cmd/experiments) or batch-checks
// scenarios (cmd/corpus, cmd/scenfuzz): which flags were set explicitly,
// how a -fast boolean maps onto the schema's engine option, and the
// failure-tally/exit-code protocol. Keeping them here stops the CLIs from
// drifting apart.

// EngineForFast translates a CLI -fast boolean into the engine option.
func EngineForFast(fast bool) string {
	if fast {
		return EngineFast
	}
	return EnginePerCycle
}

// ScanFlags inspects the explicitly set flags of a parsed FlagSet: it
// returns the "-name" spellings of those found in conflicting (flags that
// would silently lose to a scenario file and must be rejected alongside
// it), and whether the "fast" engine override was set at all.
func ScanFlags(fs *flag.FlagSet, conflicting map[string]bool) (conflicts []string, fastSet bool) {
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "fast" {
			fastSet = true
		}
		if conflicting[f.Name] {
			conflicts = append(conflicts, "-"+f.Name)
		}
	})
	return conflicts, fastSet
}

// Failures is the shared failure-tally protocol of the batch CLIs
// (cmd/corpus -verify, cmd/scenfuzz): each verification failure is printed
// as one "FAIL ..." line as it is found, and the command's final error —
// and therefore its non-zero exit status — reports the total count. Both
// gates print and count through the same helper so their output and exit
// semantics cannot drift apart.
type Failures struct {
	w io.Writer
	n int
}

// NewFailures returns a tally printing FAIL lines to w.
func NewFailures(w io.Writer) *Failures { return &Failures{w: w} }

// Failf records one failure and prints it as a "FAIL " line.
func (f *Failures) Failf(format string, args ...any) {
	f.n++
	fmt.Fprintf(f.w, "FAIL "+format+"\n", args...)
}

// Count returns the number of failures recorded so far.
func (f *Failures) Count() int { return f.n }

// Err returns nil when no failure was recorded, and the canonical
// "%d failure(s)" error — the one the commands return from run() to force a
// non-zero exit — otherwise.
func (f *Failures) Err() error {
	if f.n == 0 {
		return nil
	}
	return fmt.Errorf("%d failure(s)", f.n)
}
