package scenario

import (
	"strings"
	"testing"
)

func TestFailuresProtocol(t *testing.T) {
	var out strings.Builder
	f := NewFailures(&out)
	if f.Count() != 0 || f.Err() != nil {
		t.Fatalf("fresh tally not clean: count=%d err=%v", f.Count(), f.Err())
	}
	f.Failf("%s seed %d: boom", "scn", 7)
	f.Failf("other: %v", "bad")
	if f.Count() != 2 {
		t.Fatalf("count = %d, want 2", f.Count())
	}
	got := out.String()
	if !strings.Contains(got, "FAIL scn seed 7: boom\n") || !strings.Contains(got, "FAIL other: bad\n") {
		t.Errorf("FAIL lines malformed:\n%s", got)
	}
	err := f.Err()
	if err == nil || err.Error() != "2 failure(s)" {
		t.Errorf("Err() = %v, want the canonical 2 failure(s)", err)
	}
}

func TestSpecEncodeRoundTrips(t *testing.T) {
	data := []byte(`{
  "name": "roundtrip",
  "cores": 2,
  "policy": "RR",
  "run": "wcet",
  "workloads": [
    {"core": 0, "workload": "matrix", "ops": 100}
  ],
  "seeds": {"list": [5]}
}`)
	s, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if enc[len(enc)-1] != '\n' {
		t.Error("canonical encoding lacks the trailing newline")
	}
	back, err := Parse(enc)
	if err != nil {
		t.Fatalf("canonical encoding does not re-parse: %v", err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Errorf("Encode not a fixpoint:\n%s\nvs\n%s", enc, enc2)
	}
}
