// Package scenario is the declarative configuration layer over the
// simulator: a JSON document describes a complete experiment — platform
// geometry, arbitration policy, CBA variant, per-core workloads with
// weights and criticalities, the run kind (isolation, WCET-estimation or
// operation-mode contention), the stepping engine and the seed schedule —
// and the package loads, validates and compiles it into the sim.Config,
// program factories and campaign plumbing the rest of the module executes.
//
// The paper's evaluation is a cross product of configurations (policies ×
// credit kinds × weights × workloads); keeping that cross product in data
// instead of Go code is what lets the corpus under testdata/corpus/ pin
// every configuration's result forever (see corpus_test.go) and lets the
// CLIs accept -scenario file.json. DESIGN.md §7 documents the schema.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"creditbus/internal/campaign"
	"creditbus/internal/sim"
	"creditbus/internal/workload"
)

// Run kinds: how the compiled configuration is executed.
const (
	// RunIsolation executes the TuA workload alone (the paper's ISO
	// scenario).
	RunIsolation = "isolation"
	// RunWCET executes the TuA workload against Table I maximum-contention
	// injectors (WCET-estimation mode).
	RunWCET = "wcet"
	// RunWorkloads executes one real program per core (operation-mode
	// contention); co-runners usually loop.
	RunWorkloads = "workloads"
)

// Engine options for Spec.Engine.
const (
	// EngineFast is the event-horizon stepping engine (the default).
	EngineFast = "fast"
	// EnginePerCycle forces the per-cycle reference engine.
	EnginePerCycle = "per-cycle"
)

// Criticality levels for Workload.Criticality. The level is metadata for
// mixed-criticality pairings with one operational effect: when Spec.TuA is
// unset, the unique HI-criticality core becomes the task under analysis.
const (
	CritHigh = "HI"
	CritLow  = "LO"
)

// Platform overrides the default cache geometry and latency model. Zero
// fields keep sim.DefaultConfig values, so a scenario only states what it
// changes.
type Platform struct {
	L1Sets           int   `json:"l1_sets,omitempty"`
	L1Ways           int   `json:"l1_ways,omitempty"`
	L2Sets           int   `json:"l2_sets,omitempty"`
	L2Ways           int   `json:"l2_ways,omitempty"`
	LineBytes        int   `json:"line_bytes,omitempty"`
	StoreBufferDepth int   `json:"store_buffer_depth,omitempty"`
	L2HitLatency     int64 `json:"l2_hit_latency,omitempty"`
	MemLatency       int64 `json:"mem_latency,omitempty"`
}

// Credit selects and parameterises the CBA variant, mirroring
// sim.CreditSpec with JSON names.
type Credit struct {
	// Kind is off, cba, hcba-weights or hcba-cap.
	Kind string `json:"kind"`
	// Privileged names the core receiving extra bandwidth (H-CBA
	// variants); nil defaults to the TuA.
	Privileged *int `json:"privileged,omitempty"`
	// Num/Den is the privileged core's share (hcba-weights).
	Num int64 `json:"num,omitempty"`
	Den int64 `json:"den,omitempty"`
	// CapFactor multiplies the privileged budget cap (hcba-cap).
	CapFactor int64 `json:"cap_factor,omitempty"`
}

// Fair parameterises the fairness-zoo policies. The block is only legal —
// and must be non-empty — when the policy accepts the stated knob.
type Fair struct {
	// AvgShift sets the PF policy's EWMA coefficient β = 2^-shift, in
	// [1, 30] (policy PF only; omitted = the policy default, shift 1).
	AvgShift int `json:"avg_shift,omitempty"`
	// Timescales overrides the MTS policy's token-bucket profile, fine to
	// coarse, at most 8 entries (policy MTS only; omitted = the default
	// two-timescale profile).
	Timescales []TimescaleSpec `json:"timescales,omitempty"`
}

// TimescaleSpec is one MTS token bucket: refill num/den grants per cycle
// (scaled by the core's weight), burst capacity depth grants. All three
// fields are required, each in [1, sim.MaxWeight].
type TimescaleSpec struct {
	Num   int64 `json:"num"`
	Den   int64 `json:"den"`
	Depth int64 `json:"depth"`
}

// Workload assigns a program to one core.
type Workload struct {
	// Core is the core index the program runs on.
	Core int `json:"core"`
	// Name is a bundled workload (see workload.Names).
	Name string `json:"workload"`
	// Seed fixes the workload's own randomness — its "binary"; default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Ops truncates the trace to its first Ops operations (0 = full).
	Ops int `json:"ops,omitempty"`
	// Loop replays the trace forever — co-runner tasks that must generate
	// contention for the whole run. Only meaningful in workloads runs.
	Loop bool `json:"loop,omitempty"`
	// Weight is the core's arbitration weight — lottery tickets under LOT,
	// the entitlement under the fairness-zoo policies (PF, GWF, MTS);
	// default 1. Only legal under a weighted policy.
	Weight int64 `json:"weight,omitempty"`
	// Criticality is HI or LO (mixed-criticality pairings). The unique HI
	// core becomes the TuA when Spec.TuA is unset.
	Criticality string `json:"criticality,omitempty"`
}

// Population assigns one workload to a contiguous range of cores — the
// schema's scale-out form. Writing a 1024-core scenario as 1023 Workload
// entries would bury the intent; a population states the range once and the
// compiler expands it to per-core entries, each with its own derived seed
// (Seed + (core-FromCore)·SeedStride) so members run distinct "binaries" of
// the same program. Populations are co-runner fleets: they apply only to
// workloads runs and may not cover the TuA core, whose workload stays an
// explicit Workloads entry.
type Population struct {
	// FromCore/ToCore bound the covered cores, both ends inclusive.
	FromCore int `json:"from_core"`
	ToCore   int `json:"to_core"`
	// Name is the bundled workload every member runs (see workload.Names).
	Name string `json:"workload"`
	// Seed is the first member's workload seed (default 1); member c runs
	// with Seed + (c-FromCore)·SeedStride.
	Seed uint64 `json:"seed,omitempty"`
	// SeedStride spaces consecutive members' seeds (default 1). A stride of
	// 0 is the default, not "identical seeds" — state Seed per-core in
	// Workloads if truly identical members are wanted.
	SeedStride uint64 `json:"seed_stride,omitempty"`
	// Ops truncates each member's trace (0 = full).
	Ops int `json:"ops,omitempty"`
	// Loop replays each member's trace forever.
	Loop bool `json:"loop,omitempty"`
	// Weight is each member's arbitration weight under the weighted
	// policies (LOT, PF, GWF, MTS; default 1).
	Weight int64 `json:"weight,omitempty"`
}

// member synthesises the Workload entry population p induces on core c.
func (p Population) member(c int) Workload {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	stride := p.SeedStride
	if stride == 0 {
		stride = 1
	}
	return Workload{
		Core:   c,
		Name:   p.Name,
		Seed:   seed + uint64(c-p.FromCore)*stride,
		Ops:    p.Ops,
		Loop:   p.Loop,
		Weight: p.Weight,
	}
}

// covers reports whether core c is a member of the population.
func (p Population) covers(c int) bool { return c >= p.FromCore && c <= p.ToCore }

// Seeds is the run-seed schedule: either an explicit List, or Runs seeds
// derived as Base + i·Stride (Stride 0 means campaign.SeedStride, the
// module-wide default schedule). The two forms are exclusive; Validate
// rejects a spec that states both, duplicate List entries, and explicit
// strides whose derived seeds would wrap uint64.
type Seeds struct {
	Base   uint64   `json:"base,omitempty"`
	Runs   int      `json:"runs,omitempty"`
	Stride uint64   `json:"stride,omitempty"`
	List   []uint64 `json:"list,omitempty"`
}

// Validate checks the schedule's own rules. Spec.Validate calls it; any
// standalone consumer of Expand owes the same call first, because Expand
// assumes a valid schedule.
func (s Seeds) Validate() error {
	if s.Runs < 0 {
		return fmt.Errorf("scenario: seeds.runs = %d", s.Runs)
	}
	if len(s.List) > 0 {
		if s.Base != 0 || s.Runs != 0 || s.Stride != 0 {
			return fmt.Errorf("scenario: seeds.list and seeds.base/runs/stride are exclusive schedule forms; state one")
		}
		seen := make(map[uint64]int, len(s.List))
		for i, v := range s.List {
			if j, dup := seen[v]; dup {
				return fmt.Errorf("scenario: seeds.list[%d] and seeds.list[%d] are both %d; duplicate seeds double-bill identical runs and defeat content-addressed result caching", j, i, v)
			}
			seen[v] = i
		}
		return nil
	}
	// A derived schedule with an explicit stride must stay inside uint64:
	// Base + i·Stride silently wrapping collides seeds (an even stride can
	// revisit earlier values exactly), which duplicates runs, skews campaign
	// statistics and breaks hash(spec, seed) result keying. The default
	// schedule (stride 0 → campaign.SeedStride) is exempt by design: it is
	// modular golden-ratio stepping, and an odd stride makes i·Stride mod
	// 2^64 injective, so its wrapped seeds never collide.
	if s.Stride != 0 && s.Runs > 1 {
		maxI := uint64(s.Runs - 1)
		if maxI > math.MaxUint64/s.Stride {
			return fmt.Errorf("scenario: seeds schedule overflows uint64: %d runs at stride %d", s.Runs, s.Stride)
		}
		if span := maxI * s.Stride; s.Base > math.MaxUint64-span {
			return fmt.Errorf("scenario: seeds schedule overflows uint64: base %d + %d·stride %d wraps", s.Base, maxI, s.Stride)
		}
	}
	return nil
}

// Expand materialises the schedule. It assumes a Validate-clean schedule;
// on an invalid one the wrapping the validator rejects would happen here.
func (s Seeds) Expand() []uint64 {
	if len(s.List) > 0 {
		return append([]uint64(nil), s.List...)
	}
	runs := s.Runs
	if runs <= 0 {
		runs = 1
	}
	stride := s.Stride
	if stride == 0 {
		stride = campaign.SeedStride
	}
	out := make([]uint64, runs)
	for i := range out {
		out[i] = s.Base + uint64(i)*stride
	}
	return out
}

// Spec is one declarative scenario. The zero value is not runnable; decode
// one from JSON (Load/Parse) or fill the fields and Validate.
type Spec struct {
	// Name identifies the scenario; it names the golden snapshot file, so
	// it must be a valid file stem ([a-zA-Z0-9._-]).
	Name string `json:"name"`
	// Description says what the scenario exercises.
	Description string `json:"description,omitempty"`

	// Cores is the number of cores/bus masters (default 4).
	Cores int `json:"cores,omitempty"`
	// Platform optionally overrides cache geometry and latencies.
	Platform *Platform `json:"platform,omitempty"`

	// Policy is the arbitration policy: RR, FIFO, TDMA, LOT, RP, PRI or a
	// fairness-zoo member — PF, GWF, MTS (default RP, the paper's MBPTA
	// baseline).
	Policy string `json:"policy,omitempty"`
	// Credit selects the CBA variant (default off).
	Credit *Credit `json:"credit,omitempty"`
	// Fair parameterises the fairness-zoo policies (PF's EWMA shift, MTS's
	// timescale profile).
	Fair *Fair `json:"fair,omitempty"`

	// Run is the run kind: isolation, wcet or workloads.
	Run string `json:"run"`
	// TuA is the core under analysis; nil defaults to the unique
	// HI-criticality core, or 0.
	TuA *int `json:"tua,omitempty"`
	// Engine selects the stepping engine: fast (default) or per-cycle.
	Engine string `json:"engine,omitempty"`

	// Workloads assigns programs to cores. Isolation and wcet runs take
	// exactly one entry (the TuA); workloads runs take one per
	// participating core, idle cores omitted.
	Workloads []Workload `json:"workloads"`
	// Populations assigns one workload to whole core ranges (workloads runs
	// only) — the compact form for large co-runner fleets. Ranges may not
	// overlap each other, the Workloads entries or the TuA core.
	Populations []Population `json:"populations,omitempty"`

	// Seeds is the run-seed schedule (default: one run, seed Base).
	Seeds Seeds `json:"seeds"`
}

// Parse decodes a spec from JSON. Unknown fields are rejected so a typo in
// a corpus file fails loudly instead of silently running the default.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario: parse: trailing data after spec")
	}
	return s, nil
}

// Encode renders the spec in its canonical byte form: indented JSON with
// the struct's fixed field order and a trailing newline. Parse(Encode(s))
// round-trips, which is what lets the fuzzing harness write a minimized
// failing spec to disk as a directly loadable repro file.
func (s Spec) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode spec: %w", err)
	}
	return append(data, '\n'), nil
}

// Load reads and parses a spec file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// LoadDir loads every *.json spec in dir, sorted by file name, and checks
// scenario names are unique (they key the golden snapshots).
func LoadDir(dir string) ([]Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json specs under %s", dir)
	}
	sort.Strings(paths)
	seen := map[string]string{}
	out := make([]Spec, 0, len(paths))
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			return nil, err
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", p, err)
		}
		if prev, dup := seen[s.Name]; dup {
			return nil, fmt.Errorf("scenario: duplicate name %q in %s and %s", s.Name, prev, p)
		}
		seen[s.Name] = p
		out = append(out, s)
	}
	return out, nil
}

// policyKinds maps the schema's policy names onto sim kinds.
var policyKinds = map[string]sim.PolicyKind{
	"RR":   sim.PolicyRoundRobin,
	"FIFO": sim.PolicyFIFO,
	"TDMA": sim.PolicyTDMA,
	"LOT":  sim.PolicyLottery,
	"RP":   sim.PolicyRandomPerm,
	"PRI":  sim.PolicyPriority,
	"PF":   sim.PolicyPropFair,
	"GWF":  sim.PolicyGWF,
	"MTS":  sim.PolicyMTS,
}

// WeightedPolicy reports whether the named policy consumes per-core
// weights (Workload.Weight / Population.Weight): the lottery and all of
// the fairness zoo.
func WeightedPolicy(name string) bool {
	switch name {
	case "LOT", "PF", "GWF", "MTS":
		return true
	}
	return false
}

// creditKinds maps the schema's credit kinds onto sim kinds.
var creditKinds = map[string]sim.CreditKind{
	"off":          sim.CreditOff,
	"cba":          sim.CreditCBA,
	"hcba-weights": sim.CreditHCBAWeights,
	"hcba-cap":     sim.CreditHCBACap,
}

// PolicyNames lists the schema's policy names, sorted.
func PolicyNames() []string { return sortedKeys(policyKinds) }

// CreditNames lists the schema's credit kinds, sorted.
func CreditNames() []string { return sortedKeys(creditKinds) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParsePolicy resolves a schema policy name.
func ParsePolicy(name string) (sim.PolicyKind, error) {
	if name == "" {
		return sim.PolicyRandomPerm, nil
	}
	k, ok := policyKinds[name]
	if !ok {
		return "", fmt.Errorf("scenario: unknown policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
	}
	return k, nil
}

// ParseCredit resolves a schema credit kind.
func ParseCredit(kind string) (sim.CreditKind, error) {
	if kind == "" {
		return sim.CreditOff, nil
	}
	k, ok := creditKinds[kind]
	if !ok {
		return "", fmt.Errorf("scenario: unknown credit kind %q (have %s)", kind, strings.Join(CreditNames(), ", "))
	}
	return k, nil
}

// validName keeps scenario names usable as golden snapshot file stems.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// cores returns the effective core count.
func (s Spec) cores() int {
	if s.Cores > 0 {
		return s.Cores
	}
	return sim.DefaultConfig().Cores
}

// tua resolves the task-under-analysis core: explicit TuA wins, otherwise
// the unique HI-criticality workload, otherwise core 0.
func (s Spec) tua() (int, error) {
	hi := -1
	for _, w := range s.Workloads {
		if w.Criticality != CritHigh {
			continue
		}
		if hi >= 0 {
			return 0, fmt.Errorf("scenario: cores %d and %d are both HI-criticality; set tua explicitly", hi, w.Core)
		}
		hi = w.Core
	}
	if s.TuA != nil {
		if hi >= 0 && hi != *s.TuA {
			return 0, fmt.Errorf("scenario: tua = %d but core %d is the HI-criticality core", *s.TuA, hi)
		}
		return *s.TuA, nil
	}
	if hi >= 0 {
		return hi, nil
	}
	return 0, nil
}

// Validate checks the spec against the schema's semantic rules. Compile
// calls it; the corpus test calls it on every file.
func (s Spec) Validate() error {
	if !validName(s.Name) {
		return fmt.Errorf("scenario: name %q is not a valid snapshot file stem ([a-zA-Z0-9._-]+)", s.Name)
	}
	if s.Cores < 0 {
		return fmt.Errorf("scenario: cores = %d, need > 0 (or 0 for the default)", s.Cores)
	}
	if s.Cores > sim.MaxCores {
		return fmt.Errorf("scenario: cores = %d exceeds the supported maximum of %d", s.Cores, sim.MaxCores)
	}
	cores := s.cores()
	if _, err := ParsePolicy(s.Policy); err != nil {
		return err
	}
	creditKind := sim.CreditOff
	if s.Credit != nil {
		var err error
		if creditKind, err = ParseCredit(s.Credit.Kind); err != nil {
			return err
		}
		if p := s.Credit.Privileged; p != nil && (*p < 0 || *p >= cores) {
			return fmt.Errorf("scenario: credit.privileged = %d out of range [0,%d)", *p, cores)
		}
		if s.Credit.Privileged != nil && creditKind != sim.CreditHCBAWeights && creditKind != sim.CreditHCBACap {
			return fmt.Errorf("scenario: credit.privileged only applies to the hcba-* kinds")
		}
		if (s.Credit.Num != 0 || s.Credit.Den != 0) && creditKind != sim.CreditHCBAWeights {
			return fmt.Errorf("scenario: credit.num/den only apply to kind hcba-weights")
		}
		if s.Credit.Num < 0 || s.Credit.Den < 0 {
			return fmt.Errorf("scenario: credit.num/den = %d/%d must be non-negative", s.Credit.Num, s.Credit.Den)
		}
		if (s.Credit.Num == 0) != (s.Credit.Den == 0) {
			return fmt.Errorf("scenario: credit.num/den = %d/%d: set both or neither", s.Credit.Num, s.Credit.Den)
		}
		if s.Credit.Num != 0 && s.Credit.Num >= s.Credit.Den {
			return fmt.Errorf("scenario: credit.num/den = %d/%d: the privileged share must be < 1", s.Credit.Num, s.Credit.Den)
		}
		if s.Credit.CapFactor != 0 && creditKind != sim.CreditHCBACap {
			return fmt.Errorf("scenario: credit.cap_factor only applies to kind hcba-cap")
		}
		if s.Credit.CapFactor < 0 || s.Credit.CapFactor == 1 {
			return fmt.Errorf("scenario: credit.cap_factor = %d must be 0 (default) or > 1", s.Credit.CapFactor)
		}
	}

	if f := s.Fair; f != nil {
		if f.AvgShift == 0 && len(f.Timescales) == 0 {
			return fmt.Errorf("scenario: fair block is empty; state avg_shift or timescales (or drop the block)")
		}
		if f.AvgShift != 0 {
			if s.Policy != "PF" {
				return fmt.Errorf("scenario: fair.avg_shift only applies to policy PF, not %q", s.Policy)
			}
			if f.AvgShift < 1 || f.AvgShift > 30 {
				return fmt.Errorf("scenario: fair.avg_shift = %d outside [1, 30]", f.AvgShift)
			}
		}
		if len(f.Timescales) != 0 {
			if s.Policy != "MTS" {
				return fmt.Errorf("scenario: fair.timescales only apply to policy MTS, not %q", s.Policy)
			}
			if len(f.Timescales) > 8 {
				return fmt.Errorf("scenario: %d fair.timescales, need ≤ 8", len(f.Timescales))
			}
			for i, ts := range f.Timescales {
				for _, fld := range []struct {
					name string
					v    int64
				}{{"num", ts.Num}, {"den", ts.Den}, {"depth", ts.Depth}} {
					if fld.v < 1 || fld.v > sim.MaxWeight {
						return fmt.Errorf("scenario: fair.timescales[%d].%s = %d outside [1, %d]", i, fld.name, fld.v, sim.MaxWeight)
					}
				}
			}
		}
	}

	switch s.Run {
	case RunIsolation, RunWCET, RunWorkloads:
	default:
		return fmt.Errorf("scenario: run = %q, need %s, %s or %s", s.Run, RunIsolation, RunWCET, RunWorkloads)
	}
	switch s.Engine {
	case "", EngineFast, EnginePerCycle:
	default:
		return fmt.Errorf("scenario: engine = %q, need %s or %s", s.Engine, EngineFast, EnginePerCycle)
	}
	if s.TuA != nil && (*s.TuA < 0 || *s.TuA >= cores) {
		return fmt.Errorf("scenario: tua = %d out of range [0,%d)", *s.TuA, cores)
	}

	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario: no workloads")
	}
	occupied := map[int]bool{}
	for i, w := range s.Workloads {
		if w.Core < 0 || w.Core >= cores {
			return fmt.Errorf("scenario: workloads[%d].core = %d out of range [0,%d)", i, w.Core, cores)
		}
		if occupied[w.Core] {
			return fmt.Errorf("scenario: two workloads on core %d", w.Core)
		}
		occupied[w.Core] = true
		if _, ok := workload.ByName(w.Name); !ok {
			return fmt.Errorf("scenario: workloads[%d]: unknown workload %q (have %v)", i, w.Name, workload.Names())
		}
		if w.Ops < 0 {
			return fmt.Errorf("scenario: workloads[%d].ops = %d", i, w.Ops)
		}
		if w.Weight < 0 {
			return fmt.Errorf("scenario: workloads[%d].weight = %d", i, w.Weight)
		}
		if w.Weight != 0 && !WeightedPolicy(s.Policy) {
			return fmt.Errorf("scenario: workloads[%d].weight only applies to the weighted policies (LOT, PF, GWF, MTS)", i)
		}
		switch w.Criticality {
		case "", CritHigh, CritLow:
		default:
			return fmt.Errorf("scenario: workloads[%d].criticality = %q, need %s or %s", i, w.Criticality, CritHigh, CritLow)
		}
		if w.Loop && s.Run != RunWorkloads {
			return fmt.Errorf("scenario: workloads[%d].loop only applies to %s runs", i, RunWorkloads)
		}
	}

	for i, p := range s.Populations {
		if s.Run != RunWorkloads {
			return fmt.Errorf("scenario: populations[%d] only applies to %s runs", i, RunWorkloads)
		}
		if p.FromCore < 0 || p.ToCore >= cores || p.FromCore > p.ToCore {
			return fmt.Errorf("scenario: populations[%d]: core range [%d,%d] is not within [0,%d) of a %d-core platform",
				i, p.FromCore, p.ToCore, cores, cores)
		}
		for c := p.FromCore; c <= p.ToCore; c++ {
			if occupied[c] {
				return fmt.Errorf("scenario: populations[%d]: core %d already has a workload", i, c)
			}
			occupied[c] = true
		}
		if _, ok := workload.ByName(p.Name); !ok {
			return fmt.Errorf("scenario: populations[%d]: unknown workload %q (have %v)", i, p.Name, workload.Names())
		}
		if p.Ops < 0 {
			return fmt.Errorf("scenario: populations[%d].ops = %d", i, p.Ops)
		}
		if p.Weight < 0 {
			return fmt.Errorf("scenario: populations[%d].weight = %d", i, p.Weight)
		}
		if p.Weight != 0 && !WeightedPolicy(s.Policy) {
			return fmt.Errorf("scenario: populations[%d].weight only applies to the weighted policies (LOT, PF, GWF, MTS)", i)
		}
	}

	tua, err := s.tua()
	if err != nil {
		return err
	}
	for i, p := range s.Populations {
		if p.covers(tua) {
			return fmt.Errorf("scenario: populations[%d] covers the TuA core %d; the TuA takes an explicit workloads entry", i, tua)
		}
	}
	if !occupied[tua] {
		return fmt.Errorf("scenario: the TuA core %d has no workload", tua)
	}
	// sim.CreditSpec.Privileged treats 0 as "unset, default to the TuA",
	// so an explicit privileged core 0 alongside a different TuA cannot be
	// expressed — reject it instead of silently privileging the TuA.
	if s.Credit != nil && s.Credit.Privileged != nil && *s.Credit.Privileged == 0 && tua != 0 {
		return fmt.Errorf("scenario: credit.privileged = 0 with tua = %d is not expressible (0 means \"the TuA\" downstream); swap the cores", tua)
	}
	if s.Run != RunWorkloads && len(s.Workloads) != 1 {
		return fmt.Errorf("scenario: %s runs take exactly one workload (the TuA); co-runners are synthesised", s.Run)
	}
	for i, w := range s.Workloads {
		if s.Run == RunWorkloads && w.Core == tua && w.Loop {
			return fmt.Errorf("scenario: workloads[%d]: the TuA must terminate, not loop", i)
		}
	}

	if err := s.Seeds.Validate(); err != nil {
		return err
	}

	if s.Platform != nil {
		p := s.Platform
		for _, f := range []struct {
			name string
			v    int64
		}{
			{"l1_sets", int64(p.L1Sets)}, {"l1_ways", int64(p.L1Ways)},
			{"l2_sets", int64(p.L2Sets)}, {"l2_ways", int64(p.L2Ways)},
			{"line_bytes", int64(p.LineBytes)}, {"store_buffer_depth", int64(p.StoreBufferDepth)},
			{"l2_hit_latency", p.L2HitLatency}, {"mem_latency", p.MemLatency},
		} {
			if f.v < 0 {
				return fmt.Errorf("scenario: platform.%s = %d must be ≥ 0 (0 = default)", f.name, f.v)
			}
		}
	}

	// The remaining cross-field rules (cache geometry, latency sanity)
	// live in sim.Config.Validate; H-CBA parameter feasibility lives in
	// sim.Config.CheckCredit, which applies exactly the defaulting the
	// machine constructor will. Run both here so a bad corpus file fails
	// at load time, not mid-campaign.
	cfg := s.config()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := cfg.CheckCredit(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}
