package scenario

import (
	"reflect"
	"strings"
	"testing"

	"creditbus/internal/sim"
)

// popSpec returns a valid workloads spec with one population, for tests to
// mutate.
func popSpec() Spec {
	return Spec{
		Name:  "pop",
		Cores: 8,
		Run:   RunWorkloads,
		Workloads: []Workload{
			{Core: 0, Name: "matrix", Ops: 200, Criticality: CritHigh},
		},
		Populations: []Population{
			{FromCore: 1, ToCore: 6, Name: "stream", Loop: true, Seed: 5, SeedStride: 2},
		},
		Seeds: Seeds{List: []uint64{3}},
	}
}

func TestPopulationValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"outside workloads run", func(s *Spec) {
			s.Run = RunWCET
			s.Workloads[0].Loop = false
			s.Workloads[0].Criticality = ""
		}, "only applies to workloads runs"},
		{"negative from", func(s *Spec) { s.Populations[0].FromCore = -1 }, "core range"},
		{"to beyond cores", func(s *Spec) { s.Populations[0].ToCore = 8 }, "core range"},
		{"inverted range", func(s *Spec) { s.Populations[0].FromCore = 5; s.Populations[0].ToCore = 2 }, "core range"},
		{"overlaps workload", func(s *Spec) { s.Populations[0].FromCore = 0 }, "already has a workload"},
		{"overlaps workload non-tua", func(s *Spec) {
			s.Workloads = append(s.Workloads, Workload{Core: 3, Name: "stream", Loop: true})
		}, "already has a workload"},
		{"overlapping populations", func(s *Spec) {
			s.Populations = append(s.Populations, Population{FromCore: 6, ToCore: 7, Name: "stream", Loop: true})
		}, "already has a workload"},
		{"covers tua", func(s *Spec) {
			s.TuA = intp(3)
			s.Workloads = append(s.Workloads, Workload{Core: 3, Name: "hitter"})
		}, "already has a workload"},
		{"unknown workload", func(s *Spec) { s.Populations[0].Name = "dhrystone" }, "unknown workload"},
		{"negative ops", func(s *Spec) { s.Populations[0].Ops = -1 }, "ops"},
		{"negative weight", func(s *Spec) { s.Populations[0].Weight = -2 }, "weight"},
		{"weight without LOT", func(s *Spec) { s.Populations[0].Weight = 2 }, "weighted policies"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := popSpec()
			c.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestPopulationCoversTuA pins the dedicated error for a population over the
// resolved TuA core (distinct from plain overlap: the TuA has no explicit
// workload yet, so the range itself is the first conflict detected).
func TestPopulationCoversTuA(t *testing.T) {
	s := popSpec()
	s.Workloads[0].Criticality = ""
	s.TuA = intp(3)
	s.Workloads[0].Core = 3
	// Population 1..6 now covers the TuA core 3, which also carries the
	// explicit workload — overlap fires first.
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "already has a workload") {
		t.Fatalf("overlap with TuA workload: %v", err)
	}
	// Move the explicit workload off the range but point tua inside it.
	s.Workloads[0].Core = 7
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "covers the TuA core 3") {
		t.Fatalf("population covering a workload-less TuA: %v", err)
	}
}

func TestMaxCoresValidation(t *testing.T) {
	s := popSpec()
	s.Cores = sim.MaxCores + 1
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "supported maximum") {
		t.Fatalf("cores above maximum accepted: %v", err)
	}

	// Out-of-range references at large populations name the platform size.
	s = popSpec()
	s.Cores = 600
	s.Workloads = append(s.Workloads, Workload{Core: 600, Name: "stream", Loop: true})
	err = s.Validate()
	if err == nil || !strings.Contains(err.Error(), "out of range [0,600)") {
		t.Fatalf("out-of-range workload core at 600 cores: %v", err)
	}

	// The maximum itself is fine (validation only; no compile).
	s = popSpec()
	s.Cores = sim.MaxCores
	if err := s.Validate(); err != nil {
		t.Fatalf("spec at MaxCores rejected: %v", err)
	}

	cfg := sim.DefaultConfig()
	cfg.Cores = sim.MaxCores + 1
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "supported maximum") {
		t.Fatalf("sim config above maximum accepted: %v", err)
	}
}

func TestPopulationExpansion(t *testing.T) {
	s := popSpec()
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for core := 1; core <= 6; core++ {
		if c.Program(core) == nil {
			t.Fatalf("population member core %d got no program", core)
		}
		src := c.sources[core]
		if src == nil || src.Name != "stream" || !src.Loop {
			t.Fatalf("core %d source = %+v", core, src)
		}
		wantSeed := uint64(5 + (core-1)*2)
		if src.Seed != wantSeed {
			t.Fatalf("core %d seed = %d, want %d", core, src.Seed, wantSeed)
		}
	}
	if c.Program(7) != nil {
		t.Fatal("core outside the population got a program")
	}

	// Defaults: seed 0 → base 1, stride 0 → 1.
	s.Populations[0].Seed = 0
	s.Populations[0].SeedStride = 0
	c, err = s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.sources[4].Seed; got != 4 {
		t.Fatalf("default-seed member on core 4 has seed %d, want 4", got)
	}
}

func TestPopulationLotteryTickets(t *testing.T) {
	s := popSpec()
	s.Policy = "LOT"
	s.Populations[0].Weight = 3
	s.Workloads[0].Weight = 6
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{6, 3, 3, 3, 3, 3, 3, 1}
	if !reflect.DeepEqual(c.Config.LotteryTickets, want) {
		t.Fatalf("tickets %v, want %v", c.Config.LotteryTickets, want)
	}
}

// TestPopulationRunsBothEngines runs a small populated scenario end to end on
// both engines and checks bit-identity — populations feed the same compile
// path as explicit entries, so the engine-equivalence guarantee must carry
// over unchanged.
func TestPopulationRunsBothEngines(t *testing.T) {
	s := popSpec()
	s.Populations[0].Loop = false
	s.Populations[0].Ops = 40
	s.Workloads[0].Ops = 120
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := c.RunSeedEngine(3, false)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.RunSeedEngine(3, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, ref) {
		t.Fatal("populated scenario diverges between engines")
	}
}
