package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// cacheKeyDomain versions the key derivation. Bump it whenever the key's
// semantics change (fields excluded, canonical encoding, hash), so stale
// keys from an older daemon can never alias fresh results.
const cacheKeyDomain = "creditbus-scenario-cachekey-v1\n"

// CacheKey returns the spec's semantic content hash: the hex SHA-256 of a
// domain tag plus the canonical Encode bytes with Name, Description and the
// Seeds schedule cleared. Two specs share a key exactly when they compile
// to the same executable configuration:
//
//   - Name and Description are excluded because they are labels — renaming
//     or re-describing a scenario must not invalidate cached results. The
//     raw Encode bytes include both, so hashing them directly would make
//     semantically identical submissions miss each other's cache entries.
//   - Seeds is excluded because the schedule addresses runs, it does not
//     change what any single run computes: every run is a pure function of
//     (compiled config, seed). Content-addressed consumers key results by
//     CacheKey plus the individual seed, so two specs that differ only in
//     schedule share per-seed results.
//   - Everything else — cores, platform overrides, policy, credit,
//     run kind, TuA, engine, workloads, populations — is hashed, because
//     each of those changes the compiled sim.Config or program vector.
//
// The key is stable across processes and runs: Encode is canonical
// (fixed field order, indented JSON, trailing newline).
func (s Spec) CacheKey() (string, error) {
	sem := s
	sem.Name = ""
	sem.Description = ""
	sem.Seeds = Seeds{}
	data, err := sem.Encode()
	if err != nil {
		return "", fmt.Errorf("scenario: cache key: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(cacheKeyDomain))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ResultKey addresses one run of the spec: the spec's semantic CacheKey
// plus the run seed. Determinism makes it a perfect content address —
// equal keys imply bit-identical sim.Results whatever process, engine
// pooling or worker interleaving produced them.
func (s Spec) ResultKey(seed uint64) (string, error) {
	k, err := s.CacheKey()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s/%d", k, seed), nil
}
