package scenario

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"creditbus/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden corpus snapshots under testdata/golden/")

const (
	corpusDir = "testdata/corpus"
	goldenDir = "testdata/golden"

	// corpusFloor is the curated corpus's minimum size; shrinking it is a
	// deliberate decision, not a test edit.
	corpusFloor = 36
)

// TestCorpusGolden is the corpus contract: every scenario under
// testdata/corpus/ loads, validates and compiles; the event-horizon engine
// and the per-cycle reference engine produce field-for-field identical
// Results on every seed; and the results match the byte-pinned golden
// snapshot under testdata/golden/. Any timing change anywhere in the stack
// — arbitration order, budget arithmetic, cache placement, rng draws —
// fails here loudly. Regenerate deliberately with
//
//	go test ./internal/scenario -run TestCorpusGolden -update
//
// and re-validate EXPERIMENTS.md whenever golden files change.
func TestCorpusGolden(t *testing.T) {
	if testing.Short() {
		// The full both-engines sweep is CI's dedicated corpus job; the
		// test matrix runs -short and skips the redundant repetitions.
		t.Skip("corpus sweep runs every scenario on both engines")
	}
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < corpusFloor {
		t.Fatalf("corpus has %d scenarios, the curated floor is %d", len(specs), corpusFloor)
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			c, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			results := make([]sim.Result, len(c.Seeds))
			for i, seed := range c.Seeds {
				fast, err := c.RunSeedEngine(seed, false)
				if err != nil {
					t.Fatalf("seed %d (fast): %v", seed, err)
				}
				ref, err := c.RunSeedEngine(seed, true)
				if err != nil {
					t.Fatalf("seed %d (per-cycle): %v", seed, err)
				}
				if !reflect.DeepEqual(fast, ref) {
					t.Errorf("seed %d: fast engine diverges from per-cycle reference:\nfast: %+v\nref:  %+v", seed, fast, ref)
				}
				results[i] = fast
			}
			if t.Failed() {
				return
			}
			snap, err := c.Snapshot(results)
			if err != nil {
				t.Fatal(err)
			}
			got, err := snap.Encode()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(goldenDir, spec.Name+".json")
			if *update {
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden snapshot missing (%v) — generate it with -update", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("golden snapshot mismatch for %s — simulated timing changed; "+
					"re-validate EXPERIMENTS.md and regenerate with -update\n%s",
					spec.Name, snapshotDiff(want, got))
			}
		})
	}
}

// TestCorpusGoldenNoStrays fails when a golden file no longer has a
// scenario, so renames clean up after themselves.
func TestCorpusGoldenNoStrays(t *testing.T) {
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
	}
	goldens, err := filepath.Glob(filepath.Join(goldenDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range goldens {
		stem := strings.TrimSuffix(filepath.Base(g), ".json")
		if !names[stem] {
			t.Errorf("stray golden snapshot %s: no scenario named %q in the corpus", g, stem)
		}
	}
}

// snapshotDiff renders the first few differing lines of two golden
// encodings — enough to see which observable moved without dumping the
// whole file.
func snapshotDiff(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw == lg {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  golden: %s\n  got:    %s\n", i+1, lw, lg)
		if shown++; shown >= 8 {
			fmt.Fprintln(&b, "  ... (further differences elided)")
			break
		}
	}
	return b.String()
}
