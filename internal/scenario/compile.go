package scenario

import (
	"fmt"

	"creditbus/internal/campaign"
	"creditbus/internal/cpu"
	"creditbus/internal/sim"
	"creditbus/internal/workload"
)

// config translates the declarative fields into a sim.Config. It assumes a
// structurally valid spec (Validate enforces the schema rules); sim.Config's
// own Validate still runs on the result.
func (s Spec) config() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = s.cores()
	if p := s.Platform; p != nil {
		if p.L1Sets > 0 {
			cfg.L1Sets = p.L1Sets
		}
		if p.L1Ways > 0 {
			cfg.L1Ways = p.L1Ways
		}
		if p.L2Sets > 0 {
			cfg.L2Sets = p.L2Sets
		}
		if p.L2Ways > 0 {
			cfg.L2Ways = p.L2Ways
		}
		if p.LineBytes > 0 {
			cfg.LineBytes = p.LineBytes
		}
		if p.StoreBufferDepth > 0 {
			cfg.StoreBufferDepth = p.StoreBufferDepth
		}
		if p.L2HitLatency > 0 {
			cfg.Latency.L2Hit = p.L2HitLatency
		}
		if p.MemLatency > 0 {
			cfg.Latency.Mem = p.MemLatency
		}
	}
	if pk, err := ParsePolicy(s.Policy); err == nil {
		cfg.Policy = pk
	}
	switch {
	case s.Policy == "LOT":
		if tickets := s.coreWeights(cfg.Cores); tickets != nil {
			cfg.LotteryTickets = tickets
		}
	case WeightedPolicy(s.Policy):
		if weights := s.coreWeights(cfg.Cores); weights != nil {
			cfg.Weights = weights
		}
	}
	if f := s.Fair; f != nil {
		cfg.PFAvgShift = f.AvgShift
		if len(f.Timescales) > 0 {
			cfg.MTSTimescales = make([]sim.Timescale, len(f.Timescales))
			for i, ts := range f.Timescales {
				cfg.MTSTimescales[i] = sim.Timescale{Num: ts.Num, Den: ts.Den, Depth: ts.Depth}
			}
		}
	}
	if c := s.Credit; c != nil {
		if ck, err := ParseCredit(c.Kind); err == nil {
			cfg.Credit.Kind = ck
		}
		if c.Privileged != nil {
			cfg.Credit.Privileged = *c.Privileged
		}
		cfg.Credit.Num, cfg.Credit.Den = c.Num, c.Den
		cfg.Credit.CapFactor = c.CapFactor
	}
	if tua, err := s.tua(); err == nil {
		cfg.TuA = tua
	}
	cfg.ForcePerCycle = s.Engine == EnginePerCycle
	return cfg
}

// coreWeights derives the per-core weight vector from workload weights —
// lottery tickets under LOT, fairness-zoo entitlements under PF/GWF/MTS.
// Weightless cores (and cores without workloads — WCET injectors still
// arbitrate) hold weight 1. Nil when no workload states a weight, which
// keeps the policy's unweighted default.
func (s Spec) coreWeights(cores int) []int64 {
	weighted := false
	tickets := make([]int64, cores)
	for i := range tickets {
		tickets[i] = 1
	}
	for _, w := range s.Workloads {
		if w.Weight > 0 {
			tickets[w.Core] = w.Weight
			weighted = true
		}
	}
	for _, p := range s.Populations {
		if p.Weight > 0 {
			for c := p.FromCore; c <= p.ToCore && c < cores; c++ {
				tickets[c] = p.Weight
			}
			weighted = true
		}
	}
	if !weighted {
		return nil
	}
	return tickets
}

// Compiled is a validated, executable scenario: the sim.Config, the
// materialised seed schedule and fresh-program factories for every
// participating core.
type Compiled struct {
	// Spec is the source spec.
	Spec Spec
	// Config is the compiled platform configuration (Engine already
	// applied via ForcePerCycle).
	Config sim.Config
	// Seeds is the materialised run-seed schedule.
	Seeds []uint64

	tua int
	// protos holds one built program per core (nil = idle). Prototypes
	// are never executed: Program hands out clones (shared read-only op
	// slice, fresh cursor), so building the trace happens once per
	// scenario instead of once per run.
	protos []cpu.Program
	// sources remembers each core's Workload entry for the defensive
	// rebuild path when a prototype is not cloneable.
	sources []*Workload
}

// Compile validates the spec and resolves everything executable about it.
func (s Spec) Compile() (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg := s.config()
	tua, _ := s.tua()
	c := &Compiled{
		Spec:    s,
		Config:  cfg,
		Seeds:   s.Seeds.Expand(),
		tua:     tua,
		protos:  make([]cpu.Program, cfg.Cores),
		sources: make([]*Workload, cfg.Cores),
	}
	for i := range s.Workloads {
		w := &s.Workloads[i]
		prog, err := buildProgram(w)
		if err != nil {
			return nil, err
		}
		c.protos[w.Core] = prog
		c.sources[w.Core] = w
	}
	// Populations expand to per-member Workload entries with derived seeds.
	// Members of the same population running the same workload at different
	// seeds share nothing: each gets its own prototype, so cloning per run
	// stays per-core independent exactly as with explicit entries.
	for i := range s.Populations {
		p := s.Populations[i]
		for core := p.FromCore; core <= p.ToCore; core++ {
			w := p.member(core)
			prog, err := buildProgram(&w)
			if err != nil {
				return nil, err
			}
			c.protos[core] = prog
			c.sources[core] = &w
		}
	}
	return c, nil
}

// buildProgram instantiates one Workload entry's program.
func buildProgram(w *Workload) (cpu.Program, error) {
	spec, ok := workload.ByName(w.Name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown workload %q", w.Name)
	}
	seed := w.Seed
	if seed == 0 {
		seed = 1
	}
	tr := spec.Build(seed)
	var prog cpu.Program = tr
	if w.Ops > 0 && tr.Len() > w.Ops {
		prog = cpu.NewTrace(tr.Ops()[:w.Ops])
	}
	if w.Loop {
		prog = sim.NewLooped(prog)
	}
	return prog, nil
}

// TuA returns the resolved task-under-analysis core.
func (c *Compiled) TuA() int { return c.tua }

// Program returns a fresh instance of the program on the given core, or
// nil for an idle core. Fresh per call: machines consume the program
// cursor, so parallel runs must never share an instance. The fast path is
// a clone of the compile-time prototype (every bundled workload clones);
// a non-cloneable program is rebuilt from its spec entry.
func (c *Compiled) Program(core int) cpu.Program {
	if core < 0 || core >= len(c.protos) || c.protos[core] == nil {
		return nil
	}
	if p, ok := cpu.TryClone(c.protos[core]); ok {
		return p
	}
	p, err := buildProgram(c.sources[core])
	if err != nil {
		// Unreachable: the entry built once already during Compile.
		panic(err)
	}
	return p
}

// Programs builds a fresh full per-core program vector.
func (c *Compiled) Programs() []cpu.Program {
	out := make([]cpu.Program, len(c.protos))
	for i := range c.protos {
		out[i] = c.Program(i)
	}
	return out
}

// RunSeed executes one run on the spec's configured engine.
func (c *Compiled) RunSeed(seed uint64) (sim.Result, error) {
	return c.runSeed(c.Config, seed, nil)
}

// RunSeedEngine executes one run with an explicit engine choice,
// overriding the spec — the corpus equivalence test drives both engines
// over every scenario with this.
func (c *Compiled) RunSeedEngine(seed uint64, perCycle bool) (sim.Result, error) {
	return c.RunSeedProbed(seed, perCycle, nil)
}

// RunSeedRunner executes one run on an externally owned recycled Runner —
// the execution form a long-lived service worker uses, where one Runner
// serves an arbitrary sequence of different compiled scenarios and
// Machine.Reuse keeps every run bit-identical to a fresh-machine RunSeed.
// Programs are fresh clones per call, so any number of goroutines may run
// one shared Compiled concurrently as long as each owns its Runner.
func (c *Compiled) RunSeedRunner(rn *sim.Runner, seed uint64) (sim.Result, error) {
	cfg := c.Config
	switch c.Spec.Run {
	case RunIsolation:
		return rn.IsolationProbed(cfg, c.Program(c.tua), seed, nil)
	case RunWCET:
		return rn.MaxContentionProbed(cfg, c.Program(c.tua), seed, nil)
	case RunWorkloads:
		return rn.WorkloadsProbed(cfg, c.Programs(), seed, nil)
	default:
		return sim.Result{}, fmt.Errorf("scenario: unknown run kind %q", c.Spec.Run)
	}
}

// RunSeedProbed executes one run with an explicit engine choice and a
// step-granularity observer — the hook internal/scengen's invariant oracles
// use to watch budgets and bus conservation at every observation point. A
// nil probe makes it exactly RunSeedEngine.
func (c *Compiled) RunSeedProbed(seed uint64, perCycle bool, probe sim.Probe) (sim.Result, error) {
	cfg := c.Config
	cfg.ForcePerCycle = perCycle
	return c.runSeed(cfg, seed, probe)
}

func (c *Compiled) runSeed(cfg sim.Config, seed uint64, probe sim.Probe) (sim.Result, error) {
	switch c.Spec.Run {
	case RunIsolation:
		return sim.RunIsolationProbed(cfg, c.Program(c.tua), seed, probe)
	case RunWCET:
		return sim.RunMaxContentionProbed(cfg, c.Program(c.tua), seed, probe)
	case RunWorkloads:
		return sim.RunWorkloadsProbed(cfg, c.Programs(), seed, probe)
	default:
		return sim.Result{}, fmt.Errorf("scenario: unknown run kind %q", c.Spec.Run)
	}
}

// Pool is one worker's reusable execution state for a compiled scenario: a
// recycled sim.Machine (via sim.Runner) plus one program instance per core,
// rewound — not recloned — between runs. Campaigns hand each worker one
// Pool so that the per-run cost is a machine reinitialisation instead of a
// full platform build; results are bit-identical to the fresh-machine
// RunSeed* family whatever run sequence the pool served (the reuse
// contract of sim.Machine.Reuse, enforced corpus-wide by
// TestReuseDifferential and the scengen reuse oracle). A Pool is a
// single-goroutine object.
type Pool struct {
	c     *Compiled
	rn    sim.Runner
	progs []cpu.Program
}

// NewPool builds a reusable execution state: one program instance per
// participating core.
func (c *Compiled) NewPool() *Pool {
	p := &Pool{c: c, progs: make([]cpu.Program, len(c.protos))}
	for i := range c.protos {
		p.progs[i] = c.Program(i)
	}
	return p
}

// rewind readies every program for the next run. The Program contract
// makes Reset equivalent to a fresh clone: same stream, cursor at zero.
func (p *Pool) rewind() {
	for _, prog := range p.progs {
		if prog != nil {
			prog.Reset()
		}
	}
}

// RunSeed executes one run on the pool's recycled machine, on the spec's
// configured engine.
func (p *Pool) RunSeed(seed uint64) (sim.Result, error) {
	cfg := p.c.Config
	return p.runSeed(cfg, seed, nil)
}

// RunSeedProbed is the pool's counterpart of Compiled.RunSeedProbed: an
// explicit engine choice and a step-granularity observer.
func (p *Pool) RunSeedProbed(seed uint64, perCycle bool, probe sim.Probe) (sim.Result, error) {
	cfg := p.c.Config
	cfg.ForcePerCycle = perCycle
	return p.runSeed(cfg, seed, probe)
}

func (p *Pool) runSeed(cfg sim.Config, seed uint64, probe sim.Probe) (sim.Result, error) {
	p.rewind()
	switch p.c.Spec.Run {
	case RunIsolation:
		return p.rn.IsolationProbed(cfg, p.progs[p.c.tua], seed, probe)
	case RunWCET:
		return p.rn.MaxContentionProbed(cfg, p.progs[p.c.tua], seed, probe)
	case RunWorkloads:
		return p.rn.WorkloadsProbed(cfg, p.progs, seed, probe)
	default:
		return sim.Result{}, fmt.Errorf("scenario: unknown run kind %q", p.c.Spec.Run)
	}
}

// Results executes the whole seed schedule through the campaign engine and
// returns per-seed results in schedule order — bit-identical at any worker
// count, exactly like every other campaign in the module. Each worker runs
// its share of the schedule on one pooled machine.
func (c *Compiled) Results(workers int, progress campaign.Progress) ([]sim.Result, error) {
	return campaign.Do(campaign.Options[*Pool]{
		Workers:        workers,
		Progress:       progress,
		PerWorkerState: c.NewPool,
	}, len(c.Seeds),
		func(p *Pool, r int) (sim.Result, error) {
			return p.RunSeed(c.Seeds[r])
		})
}

// CampaignSpec adapts an isolation or wcet scenario onto campaign.Spec —
// the sample-vector protocol the MBPTA pipeline consumes. Returns an error
// for workloads runs, whose per-core program vector does not fit the
// single-program campaign scenario shape (use Results instead).
func (c *Compiled) CampaignSpec(workers int, progress campaign.Progress) (campaign.Spec, campaign.Scenario, error) {
	var run campaign.Scenario
	switch c.Spec.Run {
	case RunIsolation:
		run = sim.RunIsolation
	case RunWCET:
		run = sim.RunMaxContention
	default:
		return campaign.Spec{}, nil, fmt.Errorf("scenario: %s runs have no single-program campaign form", c.Spec.Run)
	}
	seeds := c.Seeds
	return campaign.Spec{
		Config:   c.Config,
		Build:    func(int) cpu.Program { return c.Program(c.tua) },
		Runs:     len(seeds),
		Seed:     func(r int) uint64 { return seeds[r] },
		Workers:  workers,
		Progress: progress,
	}, run, nil
}
