package scenario

import (
	"encoding/json"
	"fmt"

	"creditbus/internal/bus"
	"creditbus/internal/cpu"
	"creditbus/internal/sim"
)

// ResultSnapshot is the golden-file form of a sim.Result: every observable
// of the run, with traffic counts keyed by transaction-kind name instead of
// enum value so the files read well and survive enum reordering. JSON
// encoding of this struct is byte-deterministic (fixed field order, sorted
// map keys, shortest-round-trip floats), which is what lets the corpus pin
// snapshots byte for byte.
type ResultSnapshot struct {
	TaskCycles  int64            `json:"task_cycles"`
	WallCycles  int64            `json:"wall_cycles"`
	CPU         cpu.Stats        `json:"cpu"`
	Bus         bus.MasterStats  `json:"bus"`
	Utilisation float64          `json:"utilisation"`
	L1HitRate   float64          `json:"l1_hit_rate"`
	L2HitRate   float64          `json:"l2_hit_rate"`
	MemCounts   map[string]int64 `json:"mem_counts"`
}

// Snap converts a run result to its snapshot form.
func Snap(r sim.Result) ResultSnapshot {
	s := ResultSnapshot{
		TaskCycles:  r.TaskCycles,
		WallCycles:  r.WallCycles,
		CPU:         r.CPU,
		Bus:         r.Bus,
		Utilisation: r.Utilisation,
		L1HitRate:   r.L1HitRate,
		L2HitRate:   r.L2HitRate,
		MemCounts:   map[string]int64{},
	}
	for k, v := range r.MemCounts {
		s.MemCounts[k.String()] = v
	}
	return s
}

// RunSnapshot pairs a seed with its result.
type RunSnapshot struct {
	Seed   uint64         `json:"seed"`
	Result ResultSnapshot `json:"result"`
}

// Snapshot is one scenario's pinned corpus entry: the scenario name and the
// result of every seed in its schedule, in schedule order.
type Snapshot struct {
	Scenario string        `json:"scenario"`
	Runs     []RunSnapshot `json:"runs"`
}

// Snapshot assembles the golden snapshot from the scenario's per-seed
// results (as returned by Results).
func (c *Compiled) Snapshot(results []sim.Result) (Snapshot, error) {
	if len(results) != len(c.Seeds) {
		return Snapshot{}, fmt.Errorf("scenario: %d results for %d seeds", len(results), len(c.Seeds))
	}
	snap := Snapshot{Scenario: c.Spec.Name, Runs: make([]RunSnapshot, len(results))}
	for i, r := range results {
		snap.Runs[i] = RunSnapshot{Seed: c.Seeds[i], Result: Snap(r)}
	}
	return snap, nil
}

// Encode renders the snapshot in its canonical byte form (indented JSON,
// trailing newline) — the exact content of a golden file.
func (s Snapshot) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode snapshot: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeSnapshot parses a golden file.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("scenario: decode snapshot: %w", err)
	}
	return s, nil
}
