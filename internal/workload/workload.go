// Package workload provides deterministic synthetic programs for the
// simulator's cores. The EEMBC Autobench suite the paper evaluates (Poovey,
// 2007) is proprietary, so each benchmark is replaced by a generator that
// reproduces the timing-relevant structure of the kernel it names: working
// set size relative to the L1/L2 capacities, memory-access density, the mix
// of loads, stores and ALU work, and access regularity (sequential, strided,
// random, pointer-chased). DESIGN.md records this substitution.
//
// A workload is built once from a fixed seed (the program binary is the same
// in every run); run-to-run execution-time variability comes from the
// platform's randomised caches and arbitration, exactly as on the paper's
// MBPTA hardware.
package workload

import (
	"fmt"
	"sort"

	"creditbus/internal/cpu"
	"creditbus/internal/rng"
)

// Spec names a workload and builds fresh instances of it.
type Spec struct {
	// Name is the benchmark identifier used in reports (matches the
	// paper's Figure 1 labels for the four evaluated kernels).
	Name string
	// Description summarises the mimicked kernel and its traffic shape.
	Description string
	// Build generates the operation trace. The seed fixes the "binary":
	// experiments pass a constant so that all runs execute the same
	// program.
	Build func(seed uint64) *cpu.Trace
}

// registry holds all known workloads, populated by the builder files.
var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
}

// ByName looks a workload up.
func ByName(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names lists all registered workloads, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FigureOneSet returns the four benchmarks of the paper's Figure 1, in the
// figure's order.
func FigureOneSet() []Spec {
	names := []string{"cacheb", "canrdr", "matrix", "tblook"}
	out := make([]Spec, len(names))
	for i, n := range names {
		s, ok := registry[n]
		if !ok {
			panic("workload: figure-1 benchmark missing: " + n)
		}
		out[i] = s
	}
	return out
}

// Memory layout helpers. Each region is a disjoint address range; words are
// 8 bytes, cache lines 32 bytes (the simulator's platform constants).
const (
	// WordBytes is the access granularity of loads and stores.
	WordBytes = 8
	// LineBytes matches the cache line size; used to reason about miss
	// rates of strided patterns.
	LineBytes = 32
)

// region is a named address range used by the builders.
type region struct {
	base uint64
}

// word returns the address of the i-th word of the region.
func (r region) word(i uint64) uint64 { return r.base + i*WordBytes }

// builder accumulates an operation trace.
type builder struct {
	ops []cpu.Op
}

func (b *builder) alu(cycles int64) {
	if n := len(b.ops); n > 0 && b.ops[n-1].Kind == cpu.OpALU {
		// Merge adjacent ALU work into one op: identical timing, smaller
		// traces.
		b.ops[n-1].Cycles += cycles
		return
	}
	b.ops = append(b.ops, cpu.Op{Kind: cpu.OpALU, Cycles: cycles})
}

func (b *builder) load(addr uint64)   { b.ops = append(b.ops, cpu.Op{Kind: cpu.OpLoad, Addr: addr}) }
func (b *builder) store(addr uint64)  { b.ops = append(b.ops, cpu.Op{Kind: cpu.OpStore, Addr: addr}) }
func (b *builder) atomic(addr uint64) { b.ops = append(b.ops, cpu.Op{Kind: cpu.OpAtomic, Addr: addr}) }

func (b *builder) trace() *cpu.Trace { return cpu.NewTrace(b.ops) }

// stream derives a child rng for a builder.
func stream(seed uint64, salt uint64) *rng.Stream { return rng.New(seed ^ salt*0x9e3779b97f4a7c15) }
