package workload

import "creditbus/internal/cpu"

// Population workloads for many-requestor scenarios. A 64–1024-core platform
// is populated like a cell is populated with user equipment: each member
// draws a per-seed traffic demand from its type's range and turns it into bus
// traffic of the matching shape. The three types mirror the classic UE
// traffic model — video streaming (heavy, 20–30 units), web browsing
// (variable, 5–15), voice (light, 1–2) — with one bus load standing in for
// one bandwidth unit per frame. ue-mix draws the type itself from the seed,
// so a single population entry yields a heterogeneous fleet.
//
// Unlike the EEMBC stand-ins these workloads are seed-sensitive by design:
// scenario populations derive one seed per member, so every member has its
// own demand level, phase and working-set walk while the scenario file stays
// a single entry.

func init() {
	register(Spec{
		Name: "ue-stream",
		Description: "heavy streaming member: per-seed demand of 20–30 sequential memory-miss " +
			"loads per frame over a never-reusing region — the video_streaming UE profile",
		Build: buildUEStream,
	})
	register(Spec{
		Name: "ue-web",
		Description: "bursty browsing member: per-seed demand of 5–15 loads (~10% stores) per " +
			"burst over a 4 KiB working set, with think-time compute between bursts — the " +
			"web_browsing UE profile",
		Build: buildUEWeb,
	})
	register(Spec{
		Name: "ue-voice",
		Description: "light periodic member: 1–2 loads plus one store per 160-cycle frame over " +
			"a line-sized buffer — the voice_call UE profile",
		Build: buildUEVoice,
	})
	register(Spec{
		Name: "ue-mix",
		Description: "population mixer: the seed draws the member's type (35% ue-stream, 50% " +
			"ue-web, 15% ue-voice) and a derived seed builds that profile",
		Build: buildUEMix,
	})
}

// buildUEStream emits frames of demand sequential line loads over a huge
// region (every access a clean memory miss), separated by a single compute
// cycle per load consumed — a heavy streaming member whose bus pressure is
// its demand draw.
func buildUEStream(seed uint64) *cpu.Trace {
	const frames = 24
	src := stream(seed, 21)
	demand := 20 + src.Intn(11) // video_streaming: 20–30 loads per frame
	r := region{base: 0x2000_0000 + (seed%1024)*0x0010_0000}
	var b builder
	line := uint64(0)
	for f := 0; f < frames; f++ {
		for k := 0; k < demand; k++ {
			b.load(r.base + line*LineBytes)
			b.alu(1)
			line++
		}
		b.alu(8)
	}
	return b.trace()
}

// buildUEWeb alternates think-time compute with request bursts of demand
// loads (and ~10% stores) over a 4 KiB working set that fits L1 — after
// warm-up most of a burst hits locally and only the working set's cold lines
// and the stores reach the bus, giving the variable, intermittent pressure of
// a browsing member.
func buildUEWeb(seed uint64) *cpu.Trace {
	const (
		bursts  = 30
		wsWords = 4 * 1024 / WordBytes
	)
	src := stream(seed, 22)
	demand := 5 + src.Intn(11) // web_browsing: 5–15 accesses per burst
	r := region{base: 0x3000_0000 + (seed%1024)*0x0001_0000}
	var b builder
	for f := 0; f < bursts; f++ {
		b.alu(200 + int64(src.Intn(400))) // think time
		for k := 0; k < demand; k++ {
			w := uint64(src.Intn(wsWords))
			if src.Intn(10) == 0 {
				b.store(r.word(w))
			} else {
				b.load(r.word(w))
			}
		}
	}
	return b.trace()
}

// buildUEVoice emits small fixed-rate frames: 1–2 loads and one store per
// 160-cycle frame over a single line — the light, periodic profile of a
// voice member, whose contribution to contention is frequency, not volume.
func buildUEVoice(seed uint64) *cpu.Trace {
	const frames = 60
	src := stream(seed, 23)
	demand := 1 + src.Intn(2) // voice_call: 1–2 loads per frame
	r := region{base: 0x4000_0000 + (seed%1024)*0x0000_0100}
	var b builder
	for f := uint64(0); f < frames; f++ {
		b.alu(160)
		for k := 0; k < demand; k++ {
			b.load(r.word(f % 4))
		}
		b.store(r.word(f % 4))
	}
	return b.trace()
}

// buildUEMix draws the member's traffic type from the seed — 35% streaming,
// 50% web, 15% voice — then builds that profile with a derived seed, so one
// population entry covers a realistic heterogeneous fleet.
func buildUEMix(seed uint64) *cpu.Trace {
	src := stream(seed, 24)
	derived := src.Uint64() | 1 // never 0: workload seeds treat 0 as "default"
	switch t := src.Intn(100); {
	case t < 35:
		return buildUEStream(derived)
	case t < 85:
		return buildUEWeb(derived)
	default:
		return buildUEVoice(derived)
	}
}
