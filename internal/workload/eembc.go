package workload

import "creditbus/internal/cpu"

// This file defines the EEMBC-Autobench-like kernels. The four benchmarks of
// the paper's Figure 1 (cacheb, canrdr, matrix, tblook) are modelled with
// care for their bus-traffic shape; six further Autobench kernels give the
// suite realistic breadth. Working-set sizes are chosen against the
// simulated platform (4 KiB L1, 32 KiB L2 partition, 32 B lines):
//
//	matrix  — dense, short requests (L2 hits): the workload CBA helps most.
//	cacheb  — bursty, long requests (memory misses, dirty evictions).
//	canrdr  — periodic message processing, moderate density.
//	tblook  — sparse requests, cache-placement sensitive (48 KiB table).
//
// ALU paddings are calibrated so that isolated bus occupancy stays below the
// 1/N CBA share (the paper observes EEMBC does not saturate the bus and CBA
// costs only ~3% in isolation).

func init() {
	register(Spec{
		Name: "matrix",
		Description: "matrix arithmetic (EEMBC matrix): 24×24 multiply, row-major walks; " +
			"dense 5-cycle L2-hit traffic — the paper's worst slot-fair victim",
		Build: buildMatrix,
	})
	register(Spec{
		Name: "cacheb",
		Description: "cache buster (EEMBC cacheb): random bursts over a 256 KiB region; " +
			"long 28/56-cycle memory transactions with dirty evictions",
		Build: buildCacheb,
	})
	register(Spec{
		Name: "canrdr",
		Description: "CAN remote data request (EEMBC canrdr): periodic message parsing " +
			"over a 12 KiB ring; moderate mixed traffic",
		Build: buildCanrdr,
	})
	register(Spec{
		Name: "tblook",
		Description: "table lookup (EEMBC tblook): binary search in an L1-resident index, " +
			"record fetches in a 48 KiB table (1.5× the L2 partition); sparse, placement-sensitive",
		Build: buildTblook,
	})
	register(Spec{
		Name:        "a2time",
		Description: "angle-to-time (EEMBC a2time): ALU-dominated with small L1-resident tables",
		Build:       buildA2time,
	})
	register(Spec{
		Name:        "aifirf",
		Description: "FIR filter (EEMBC aifirf): sliding-window MACs over 16 KiB sample buffers",
		Build:       buildAifirf,
	})
	register(Spec{
		Name:        "rspeed",
		Description: "road-speed calculation (EEMBC rspeed): light periodic sensor processing",
		Build:       buildRspeed,
	})
	register(Spec{
		Name:        "puwmod",
		Description: "pulse-width modulation (EEMBC puwmod): register-dominated control loop",
		Build:       buildPuwmod,
	})
	register(Spec{
		Name:        "ttsprk",
		Description: "tooth-to-spark (EEMBC ttsprk): ignition timing from mid-size lookup tables",
		Build:       buildTtsprk,
	})
	register(Spec{
		Name:        "bitmnp",
		Description: "bit manipulation (EEMBC bitmnp): ALU-heavy bit twiddling over an 8 KiB buffer",
		Build:       buildBitmnp,
	})
}

// buildMatrix multiplies two 24×24 matrices held row-major, with B accessed
// as if transposed (both operands walk rows sequentially). The inner product
// step costs ~9 ALU cycles (software FP multiply-accumulate on an
// integer-only core), which calibrates the L1-miss rate to roughly one
// 5-cycle L2 hit every ~50 cycles — giving the paper's ~3.3× slot-fair
// contention slowdown.
func buildMatrix(seed uint64) *cpu.Trace {
	const (
		n      = 24
		passes = 3 // repeated multiplies: dilutes the cold-cache phase
	)
	a := region{base: 0x0100_0000}
	bm := region{base: 0x0110_0000}
	cm := region{base: 0x0120_0000}
	var b builder
	for p := 0; p < passes; p++ {
		for i := uint64(0); i < n; i++ {
			for j := uint64(0); j < n; j++ {
				for k := uint64(0); k < n; k++ {
					b.load(a.word(i*n + k))
					b.alu(9)
					b.load(bm.word(j*n + k))
				}
				b.alu(4)
				b.store(cm.word(i*n + j))
			}
		}
	}
	return b.trace()
}

// buildCacheb walks random line addresses over a 256 KiB region (8× the L2
// partition), so essentially every load is a 28-cycle memory transaction,
// and every eighth iteration stores to a random line, leaving dirty lines
// whose later eviction upgrades misses to the 56-cycle worst case. The
// ~96-cycle processing step between loads keeps isolated bus occupancy just
// under the 25% CBA share and exceeds the 84-cycle post-miss refill, so CBA
// barely stalls it in isolation.
func buildCacheb(seed uint64) *cpu.Trace {
	const (
		iters   = 1400
		wsLines = 256 * 1024 / LineBytes
	)
	r := region{base: 0x0200_0000}
	src := stream(seed, 1)
	var b builder
	for it := 0; it < iters; it++ {
		line := uint64(src.Intn(wsLines))
		b.load(r.base + line*LineBytes)
		b.alu(96)
		if it%16 == 15 {
			line = uint64(src.Intn(wsLines))
			b.store(r.base + line*LineBytes)
			b.alu(12)
		}
	}
	return b.trace()
}

// buildCanrdr parses CAN messages from a 16 KiB ring (fits the L2
// partition, 4× L1): each 32-byte message is one cache line, so the
// sequential walk misses L1 roughly once per message and hits L2 (a 5-cycle
// bus transaction every ~65 cycles), with ~50 cycles of protocol processing
// and a status store every 16th message (stores share the core's single bus
// master port with loads, so sparse stores keep the load path clean).
func buildCanrdr(seed uint64) *cpu.Trace {
	const (
		messages  = 6000
		ringWords = 8 * 1024 / WordBytes
		msgWords  = 4 // 32 bytes: exactly one line
	)
	ring := region{base: 0x0300_0000}
	status := region{base: 0x0308_0000}
	var b builder
	pos := uint64(0)
	for m := uint64(0); m < messages; m++ {
		for w := uint64(0); w < msgWords; w++ {
			b.load(ring.word((pos + w) % ringWords))
			b.alu(3)
		}
		pos = (pos + msgWords) % ringWords
		b.alu(28)
		if m%16 == 15 {
			b.store(status.word(m % 64))
		}
	}
	return b.trace()
}

// buildTblook performs keyed lookups: a binary search over an L1-resident
// 2 KiB index (ten dependent loads that almost always hit L1), ~120 cycles
// of comparison and checksum work, then one record fetch from a 48 KiB table
// — 1.5× the L2 partition, so roughly a third of the fetches go to memory
// and the hit ratio depends on the run's random placement (the paper's
// "highly sensitive to the particular cache placements" benchmark). Bus
// requests barely ever occur back to back.
func buildTblook(seed uint64) *cpu.Trace {
	const (
		lookups    = 2200
		indexWords = 2 * 1024 / WordBytes
		tableLines = 48 * 1024 / LineBytes
	)
	index := region{base: 0x0400_0000}
	table := region{base: 0x0410_0000}
	result := region{base: 0x0420_0000}
	src := stream(seed, 2)
	var b builder
	for l := 0; l < lookups; l++ {
		// Binary search: ~log2(256) dependent probes within 2 KiB.
		lo, hi := uint64(0), uint64(indexWords)
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			b.load(index.word(mid))
			b.alu(12)
			if src.Bool() {
				lo = mid
			} else {
				hi = mid
			}
		}
		line := uint64(src.Intn(tableLines))
		b.load(table.base + line*LineBytes)
		b.alu(14)
		if l%8 == 7 {
			b.store(result.word(uint64(l) % 32))
		}
	}
	return b.trace()
}

// buildA2time converts crank angles to injection times: long ALU phases with
// occasional probes of a 2 KiB calibration table.
func buildA2time(seed uint64) *cpu.Trace {
	const iters = 2200
	tab := region{base: 0x0500_0000}
	src := stream(seed, 3)
	var b builder
	for i := 0; i < iters; i++ {
		b.alu(55)
		b.load(tab.word(uint64(src.Intn(256))))
		b.alu(28)
		if i%16 == 15 {
			b.store(tab.word(uint64(256 + i%32)))
		}
	}
	return b.trace()
}

// buildAifirf runs a 16-tap FIR over 16 KiB of samples: the tap window stays
// L1-resident, the sample walk misses once per line.
func buildAifirf(seed uint64) *cpu.Trace {
	const (
		samples   = 2600
		bufWords  = 16 * 1024 / WordBytes
		taps      = 16
		tapsWords = taps
	)
	buf := region{base: 0x0600_0000}
	coeff := region{base: 0x0610_0000}
	out := region{base: 0x0620_0000}
	var b builder
	for s := uint64(0); s < samples; s++ {
		for t := uint64(0); t < 4; t++ { // 4 unrolled MACs per sample
			b.load(buf.word((s + t) % bufWords))
			b.alu(6)
			b.load(coeff.word(t % tapsWords))
			b.alu(6)
		}
		b.alu(12)
		b.store(out.word(s % 512))
	}
	return b.trace()
}

// buildRspeed derives road speed from wheel pulses: light, periodic.
func buildRspeed(seed uint64) *cpu.Trace {
	const iters = 2400
	state := region{base: 0x0700_0000}
	var b builder
	for i := uint64(0); i < iters; i++ {
		b.load(state.word(i % 96))
		b.alu(42)
		if i%8 == 7 {
			b.store(state.word(i % 96))
		}
	}
	return b.trace()
}

// buildPuwmod generates PWM duty cycles: nearly pure ALU on a 256-byte state
// block.
func buildPuwmod(seed uint64) *cpu.Trace {
	const iters = 2000
	state := region{base: 0x0800_0000}
	var b builder
	for i := uint64(0); i < iters; i++ {
		b.alu(48)
		if i%8 == 0 {
			b.load(state.word(i % 32))
			b.alu(6)
			b.store(state.word(i % 32))
		}
	}
	return b.trace()
}

// buildTtsprk computes spark advance from a pair of 6 KiB maps plus engine
// state; table probes are data dependent.
func buildTtsprk(seed uint64) *cpu.Trace {
	const (
		iters    = 1800
		mapWords = 6 * 1024 / WordBytes
	)
	mapA := region{base: 0x0900_0000}
	mapB := region{base: 0x0910_0000}
	src := stream(seed, 4)
	var b builder
	for i := 0; i < iters; i++ {
		b.load(mapA.word(uint64(src.Intn(mapWords))))
		b.alu(24)
		b.load(mapB.word(uint64(src.Intn(mapWords))))
		b.alu(36)
		if i%4 == 3 {
			b.store(mapB.word(uint64(src.Intn(64))))
		}
	}
	return b.trace()
}

// buildBitmnp shifts and masks its way across an 8 KiB bit buffer.
func buildBitmnp(seed uint64) *cpu.Trace {
	const (
		iters    = 2600
		bufWords = 8 * 1024 / WordBytes
	)
	buf := region{base: 0x0a00_0000}
	var b builder
	for i := uint64(0); i < iters; i++ {
		b.load(buf.word(i % bufWords))
		b.alu(34)
		if i%6 == 5 {
			b.store(buf.word(i % bufWords))
		}
	}
	return b.trace()
}
