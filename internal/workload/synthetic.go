package workload

import "creditbus/internal/cpu"

// Synthetic workloads used by the experiments and examples: the streaming
// contender and dense short-request task of the paper's §II illustrative
// example, and an atomic-heavy stressor exercising the unsplittable
// worst-case transactions that motivate MaxL.

func init() {
	register(Spec{
		Name: "stream",
		Description: "streaming reader: sequential never-reusing loads, every access a " +
			"28-cycle memory transaction — the §II contender profile",
		Build: buildStream,
	})
	register(Spec{
		Name: "hitter",
		Description: "dense short-request task: line-stride loop over 16 KiB (L2-resident, " +
			"4× L1), almost every load a 5-cycle L2 hit — the §II task-under-analysis profile",
		Build: buildHitter,
	})
	register(Spec{
		Name: "burst",
		Description: "idle-then-burst hitter: ~4k-cycle compute phases punctuated by dense " +
			"48-load L2-hit bursts — banks credit beyond the eligibility threshold, the " +
			"§III.A cap-variant target profile",
		Build: buildBurst,
	})
	register(Spec{
		Name: "atomics",
		Description: "lock-intensive task: periodic atomic read-modify-writes (56-cycle " +
			"unsplittable transactions) between short critical sections",
		Build: buildAtomics,
	})
}

// buildStream reads sequential lines over an 8 MiB region with minimal
// processing: after L1/L2 warm-up every load is a clean memory miss holding
// the bus 28 cycles, saturating it in isolation like the paper's streaming
// contenders.
func buildStream(seed uint64) *cpu.Trace {
	const iters = 8000
	r := region{base: 0x0b00_0000}
	var b builder
	for i := uint64(0); i < iters; i++ {
		b.load(r.base + i*LineBytes)
		b.alu(1)
	}
	return b.trace()
}

// buildHitter cycles line-stride loads over 16 KiB: the region is 4× the L1
// but half the L2 partition, so after one warm-up pass every load misses L1
// and hits L2 (5-cycle holds). Three ALU cycles between loads give the §II
// profile of a task spending ~60% of its isolated time on the bus.
func buildHitter(seed uint64) *cpu.Trace {
	const (
		iters   = 20000
		wsLines = 16 * 1024 / LineBytes
	)
	r := region{base: 0x0c00_0000}
	var b builder
	for i := uint64(0); i < iters; i++ {
		b.load(r.base + (i%wsLines)*LineBytes)
		b.alu(3)
	}
	return b.trace()
}

// buildBurst alternates ~4k-cycle pure-compute phases with bursts of 48
// line-stride loads over an 8 KiB L2-resident window. The idle phase banks
// scaled budget up to any raised H-CBA cap (4000 cycles ≫ the quadrupled
// cap's 896), and the burst is long enough to drain the bank when grants
// come back to back. Note the cap variants only separate under *partial*
// contention (operation-mode co-runners that sometimes leave the bus free):
// under saturated Table I injectors the arbitration throttles the task to
// its 1/N share, the budget drifts at 1−N·share ≈ 0, and no finite cap is
// ever exhausted — so cap-ablation scenarios must pair this profile with
// real co-runners, not WCET-mode injectors.
func buildBurst(seed uint64) *cpu.Trace {
	const (
		bursts   = 40
		burstLen = 48
		wsLines  = 8 * 1024 / LineBytes
	)
	r := region{base: 0x0e00_0000}
	var b builder
	for i := uint64(0); i < bursts; i++ {
		b.alu(4000)
		for j := uint64(0); j < burstLen; j++ {
			b.load(r.base + ((i*burstLen+j)%wsLines)*LineBytes)
			b.alu(2)
		}
	}
	return b.trace()
}

// buildAtomics alternates short L1-resident critical-section work with an
// atomic RMW on one of four contended lock words; every atomic holds the bus
// for the full 56-cycle worst case.
func buildAtomics(seed uint64) *cpu.Trace {
	const iters = 700
	locks := region{base: 0x0d00_0000}
	data := region{base: 0x0d10_0000}
	src := stream(seed, 9)
	var b builder
	for i := uint64(0); i < iters; i++ {
		b.atomic(locks.word(uint64(src.Intn(4)) * (LineBytes / WordBytes)))
		b.load(data.word(i % 128))
		b.alu(160)
		b.store(data.word(i % 128))
	}
	return b.trace()
}
