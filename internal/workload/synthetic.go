package workload

import "creditbus/internal/cpu"

// Synthetic workloads used by the experiments and examples: the streaming
// contender and dense short-request task of the paper's §II illustrative
// example, and an atomic-heavy stressor exercising the unsplittable
// worst-case transactions that motivate MaxL.

func init() {
	register(Spec{
		Name: "stream",
		Description: "streaming reader: sequential never-reusing loads, every access a " +
			"28-cycle memory transaction — the §II contender profile",
		Build: buildStream,
	})
	register(Spec{
		Name: "hitter",
		Description: "dense short-request task: line-stride loop over 16 KiB (L2-resident, " +
			"4× L1), almost every load a 5-cycle L2 hit — the §II task-under-analysis profile",
		Build: buildHitter,
	})
	register(Spec{
		Name: "atomics",
		Description: "lock-intensive task: periodic atomic read-modify-writes (56-cycle " +
			"unsplittable transactions) between short critical sections",
		Build: buildAtomics,
	})
}

// buildStream reads sequential lines over an 8 MiB region with minimal
// processing: after L1/L2 warm-up every load is a clean memory miss holding
// the bus 28 cycles, saturating it in isolation like the paper's streaming
// contenders.
func buildStream(seed uint64) *cpu.Trace {
	const iters = 8000
	r := region{base: 0x0b00_0000}
	var b builder
	for i := uint64(0); i < iters; i++ {
		b.load(r.base + i*LineBytes)
		b.alu(1)
	}
	return b.trace()
}

// buildHitter cycles line-stride loads over 16 KiB: the region is 4× the L1
// but half the L2 partition, so after one warm-up pass every load misses L1
// and hits L2 (5-cycle holds). Three ALU cycles between loads give the §II
// profile of a task spending ~60% of its isolated time on the bus.
func buildHitter(seed uint64) *cpu.Trace {
	const (
		iters   = 20000
		wsLines = 16 * 1024 / LineBytes
	)
	r := region{base: 0x0c00_0000}
	var b builder
	for i := uint64(0); i < iters; i++ {
		b.load(r.base + (i%wsLines)*LineBytes)
		b.alu(3)
	}
	return b.trace()
}

// buildAtomics alternates short L1-resident critical-section work with an
// atomic RMW on one of four contended lock words; every atomic holds the bus
// for the full 56-cycle worst case.
func buildAtomics(seed uint64) *cpu.Trace {
	const iters = 700
	locks := region{base: 0x0d00_0000}
	data := region{base: 0x0d10_0000}
	src := stream(seed, 9)
	var b builder
	for i := uint64(0); i < iters; i++ {
		b.atomic(locks.word(uint64(src.Intn(4)) * (LineBytes / WordBytes)))
		b.load(data.word(i % 128))
		b.alu(160)
		b.store(data.word(i % 128))
	}
	return b.trace()
}
