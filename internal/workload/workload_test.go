package workload

import (
	"testing"

	"creditbus/internal/cpu"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"a2time", "aifirf", "atomics", "bitmnp", "burst", "cacheb", "canrdr",
		"hitter", "matrix", "puwmod", "rspeed", "stream", "tblook", "ttsprk",
		"ue-mix", "ue-stream", "ue-voice", "ue-web",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %d entries", got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, n := range want {
		s, ok := ByName(n)
		if !ok || s.Name != n || s.Build == nil || s.Description == "" {
			t.Errorf("ByName(%q) incomplete: %+v ok=%v", n, s, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName of unknown workload returned ok")
	}
}

func TestFigureOneSetOrder(t *testing.T) {
	set := FigureOneSet()
	want := []string{"cacheb", "canrdr", "matrix", "tblook"}
	for i, s := range set {
		if s.Name != want[i] {
			t.Fatalf("FigureOneSet[%d] = %q, want %q", i, s.Name, want[i])
		}
	}
}

func TestBuildersDeterministic(t *testing.T) {
	for _, name := range Names() {
		s, _ := ByName(name)
		a := s.Build(7)
		b := s.Build(7)
		if a.Len() != b.Len() {
			t.Fatalf("%s: lengths differ (%d vs %d)", name, a.Len(), b.Len())
		}
		ao, bo := a.Ops(), b.Ops()
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("%s: op %d differs: %+v vs %+v", name, i, ao[i], bo[i])
			}
		}
	}
}

func TestBuildersWellFormed(t *testing.T) {
	for _, name := range Names() {
		s, _ := ByName(name)
		tr := s.Build(1)
		if tr.Len() < 100 {
			t.Errorf("%s: only %d ops", name, tr.Len())
		}
		for i, op := range tr.Ops() {
			switch op.Kind {
			case cpu.OpALU:
				if op.Cycles < 1 {
					t.Fatalf("%s op %d: ALU with %d cycles", name, i, op.Cycles)
				}
			case cpu.OpLoad, cpu.OpStore, cpu.OpAtomic:
				if op.Addr%WordBytes != 0 {
					t.Fatalf("%s op %d: unaligned address %#x", name, i, op.Addr)
				}
			default:
				t.Fatalf("%s op %d: unknown kind %d", name, i, op.Kind)
			}
		}
	}
}

// opMix summarises a trace: counts and total ALU cycles.
func opMix(tr *cpu.Trace) (loads, stores, atomics int, aluCycles int64) {
	for _, op := range tr.Ops() {
		switch op.Kind {
		case cpu.OpLoad:
			loads++
		case cpu.OpStore:
			stores++
		case cpu.OpAtomic:
			atomics++
		case cpu.OpALU:
			aluCycles += op.Cycles
		}
	}
	return
}

func TestTrafficShapes(t *testing.T) {
	// The coarse traffic properties each benchmark is designed around; if
	// a retune breaks these, Figure 1's shape is at risk.
	get := func(n string) *cpu.Trace {
		s, ok := ByName(n)
		if !ok {
			t.Fatalf("missing workload %s", n)
		}
		return s.Build(1)
	}

	// matrix: load-dense, minimal stores (one per 24-iteration inner
	// block), no atomics.
	l, s, a, alu := opMix(get("matrix"))
	if l < 20000 || s > l/40 || a != 0 {
		t.Errorf("matrix mix: loads=%d stores=%d atomics=%d", l, s, a)
	}
	if perLoad := float64(alu) / float64(l); perLoad < 3 || perLoad > 8 {
		t.Errorf("matrix ALU per load = %.1f, want 3..8 (density calibration)", perLoad)
	}

	// cacheb: few ops, heavy ALU blocks, stores present (dirty lines).
	l, s, _, alu = opMix(get("cacheb"))
	if s == 0 {
		t.Error("cacheb must store (dirty evictions)")
	}
	if perIter := float64(alu) / float64(l); perIter < 80 {
		t.Errorf("cacheb ALU per load = %.1f, want ≥ 80 (occupancy under CBA share)", perIter)
	}

	// tblook: sparse main-table fetches — ALU dominates.
	l, _, _, alu = opMix(get("tblook"))
	if perLoad := float64(alu) / float64(l); perLoad < 10 {
		t.Errorf("tblook ALU per load = %.1f, want ≥ 10 (sparse requests)", perLoad)
	}

	// stream: pure loads, almost no ALU.
	l, s, a, alu = opMix(get("stream"))
	if s != 0 || a != 0 || float64(alu)/float64(l) > 1.5 {
		t.Errorf("stream mix: loads=%d stores=%d atomics=%d alu/load=%.1f", l, s, a, float64(alu)/float64(l))
	}

	// atomics: every iteration has an atomic.
	_, _, a, _ = opMix(get("atomics"))
	if a < 500 {
		t.Errorf("atomics workload has only %d atomic ops", a)
	}
}

func TestDistinctSeedsChangeRandomWorkloads(t *testing.T) {
	// Random-pattern workloads must differ across build seeds (the seed is
	// the program identity); deterministic-pattern ones may not.
	for _, name := range []string{"cacheb", "tblook", "ttsprk", "ue-mix", "ue-stream", "ue-voice", "ue-web"} {
		s, _ := ByName(name)
		a, b := s.Build(1), s.Build(2)
		same := true
		ao, bo := a.Ops(), b.Ops()
		if len(ao) != len(bo) {
			same = false
		} else {
			for i := range ao {
				if ao[i] != bo[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 give identical traces", name)
		}
	}
}

// TestUEDemandRanges pins the population workloads to their traffic-type
// demand ranges: per-seed draws must stay inside the UE model's bounds, and
// ue-mix must actually mix types across a fleet's worth of seeds.
func TestUEDemandRanges(t *testing.T) {
	perFrame := func(name string, seed uint64) int {
		s, _ := ByName(name)
		loads, _, _, _ := opMix(s.Build(seed))
		return loads
	}
	for seed := uint64(1); seed <= 50; seed++ {
		// ue-stream: 24 frames of 20–30 loads each.
		if l := perFrame("ue-stream", seed); l < 24*20 || l > 24*30 {
			t.Fatalf("ue-stream seed %d: %d loads outside 24×[20,30]", seed, l)
		}
		// ue-voice: 60 frames of 1–2 loads each.
		if l := perFrame("ue-voice", seed); l < 60*1 || l > 60*2 {
			t.Fatalf("ue-voice seed %d: %d loads outside 60×[1,2]", seed, l)
		}
		// ue-web: 30 bursts of 5–15 accesses (loads + ~10% stores).
		s, _ := ByName("ue-web")
		loads, stores, atomics, _ := opMix(s.Build(seed))
		if acc := loads + stores; acc < 30*5 || acc > 30*15 || atomics != 0 {
			t.Fatalf("ue-web seed %d: %d accesses outside 30×[5,15] (atomics=%d)", seed, acc, atomics)
		}
	}

	// ue-mix over 40 member seeds must produce visibly different volumes —
	// a voice member (≤ 120 light accesses) and a streaming member (≥ 480
	// heavy loads) should both appear in any realistic fleet.
	light, heavy := false, false
	s, _ := ByName("ue-mix")
	for seed := uint64(1); seed <= 40; seed++ {
		loads, _, _, _ := opMix(s.Build(seed))
		if loads <= 120 {
			light = true
		}
		if loads >= 480 {
			heavy = true
		}
	}
	if !light || !heavy {
		t.Fatalf("ue-mix fleet lacks diversity: light=%v heavy=%v", light, heavy)
	}
}

func TestRegionWordAddressing(t *testing.T) {
	r := region{base: 0x1000}
	if got := r.word(0); got != 0x1000 {
		t.Fatalf("word(0) = %#x", got)
	}
	if got := r.word(3); got != 0x1000+3*WordBytes {
		t.Fatalf("word(3) = %#x", got)
	}
}

func TestBuilderMergesALU(t *testing.T) {
	var b builder
	b.alu(3)
	b.alu(4)
	b.load(64)
	b.alu(1)
	tr := b.trace()
	if tr.Len() != 3 {
		t.Fatalf("trace length = %d, want 3 (merged ALU)", tr.Len())
	}
	if op := tr.Ops()[0]; op.Kind != cpu.OpALU || op.Cycles != 7 {
		t.Fatalf("merged ALU op = %+v", op)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	register(Spec{Name: "matrix"})
}
