// Package exp regenerates every quantitative artefact of the paper — the
// §II illustrative example, Table I's cost inventory, Figure 1, and the
// supporting claims (§IV results, §III.A H-CBA variants) — plus the
// extension sweep that exercises the §I "virtually unbounded slowdown"
// argument. cmd/experiments prints these; bench_test.go wraps them as
// testing.B benchmarks. EXPERIMENTS.md records paper-vs-measured values.
package exp

import "creditbus/internal/cpu"

// Options tunes an experiment campaign.
type Options struct {
	// Runs is the number of randomised runs per configuration. The paper
	// uses 1,000; the default is 30, which already stabilises means to
	// ~1%.
	Runs int
	// Seed is the campaign's base seed; every (configuration, run) pair
	// derives its own seed from it.
	Seed uint64
	// MaxOps truncates workload traces (0 = full length). Tests use this
	// to keep campaigns fast; reported numbers use full traces.
	MaxOps int
	// Workers is the number of simulation runs in flight (0 = GOMAXPROCS,
	// 1 = serial). Campaign results are bit-identical at any worker count:
	// every run owns its machine and program instance and results are
	// aggregated in run order.
	Workers int
	// Progress, when non-nil, observes run completion of each campaign the
	// experiment executes: called serially with (done, total), done
	// strictly increasing per campaign.
	Progress func(done, total int)
	// PerCycle forces the per-cycle reference stepping engine for every
	// simulation the experiment runs. The default — false — uses
	// event-horizon stepping, which is bit-identical and several times
	// faster (see sim.Config.ForcePerCycle).
	PerCycle bool
}

// withDefaults fills in zero fields.
func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 30
	}
	if o.Seed == 0 {
		o.Seed = 0x20170327 // the paper's conference date
	}
	return o
}

// runSeed derives a deterministic per-run seed: distinct experiments and
// configurations must not share cache/arbiter randomness.
func (o Options) runSeed(config, run int) uint64 {
	z := o.Seed ^ uint64(config)*0x9e3779b97f4a7c15 ^ uint64(run)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// trim truncates a trace to opts.MaxOps operations (0 = keep all).
func (o Options) trim(tr *cpu.Trace) *cpu.Trace {
	if o.MaxOps <= 0 || tr.Len() <= o.MaxOps {
		return tr
	}
	return cpu.NewTrace(tr.Ops()[:o.MaxOps])
}
