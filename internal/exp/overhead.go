package exp

import (
	"time"

	"creditbus/internal/arbiter"
	"creditbus/internal/bus"
	"creditbus/internal/core"
)

// OverheadResult is the substitute for the paper's FPGA synthesis numbers
// (§IV.B: occupancy grew "by far less than 0.1%", 100 MHz maintained).
// Hardware synthesis is out of reach for a Go reproduction, so we report
// the two quantities that drive those results: the architectural state CBA
// adds (Table I: one saturating budget counter plus one COMP latch per
// core) and the software cost of an arbitration decision with and without
// the CBA filter.
type OverheadResult struct {
	// StateBitsTotal is the total CBA state over all cores; the paper's
	// platform needs 4 × (8-bit counter + COMP bit) = 36 bits.
	StateBitsTotal int
	// StateBitsPerCore is the per-core share.
	StateBitsPerCore int
	// NsPerDecision maps configuration name to the mean wall-clock cost of
	// one full bus cycle including arbitration.
	NsPerDecision map[string]float64
	// Cycles is the number of simulated bus cycles each measurement ran.
	Cycles int64
}

// measureBusCycle times a saturated 4-master bus for the given credit
// setting.
func measureBusCycle(withCBA bool, cycles int64) float64 {
	const masters, maxHold = 4, 56
	var credit *core.Arbiter
	if withCBA {
		credit = core.MustNew(core.Homogeneous(masters, maxHold))
	}
	b := bus.MustNew(bus.Config{
		Masters: masters, MaxHold: maxHold,
		Policy: arbiter.NewRandomPermutation(masters, 1),
		Credit: credit,
	})
	holds := []int64{5, 28, 56, 28}
	start := time.Now()
	for i := int64(0); i < cycles; i++ {
		for m := 0; m < masters; m++ {
			if b.CanPost(m) {
				b.MustPost(m, bus.Request{Hold: holds[m]})
			}
		}
		b.Tick()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(cycles)
}

// Overhead reports the CBA cost model.
func Overhead() OverheadResult {
	arb := core.MustNew(core.Homogeneous(4, 56))
	sig := core.NewSignals(arb, core.WCETMode, 0)
	const cycles = 2_000_000
	return OverheadResult{
		StateBitsTotal:   sig.StateBits(),
		StateBitsPerCore: sig.StateBits() / arb.Masters(),
		NsPerDecision: map[string]float64{
			"RP":     measureBusCycle(false, cycles),
			"RP+CBA": measureBusCycle(true, cycles),
		},
		Cycles: cycles,
	}
}
