package exp

import (
	"creditbus/internal/arbiter"
	"creditbus/internal/bus"
	"creditbus/internal/core"
)

// IllustrativeResult reproduces the §II illustrative example with the
// paper's exact parameters: a task under analysis issuing 1,000 six-cycle
// bus requests separated by four compute cycles (10,000 cycles in
// isolation, 6,000 of them on the bus) against three streaming contenders
// whose requests take 28 cycles.
type IllustrativeResult struct {
	// IsoCycles is the measured isolated execution time (paper: 10,000).
	IsoCycles int64
	// RRCycles is the measured execution time under round-robin (paper's
	// arithmetic: 94,000; the arithmetic ignores that the 4 compute cycles
	// overlap the contenders' holds, so the simulation gives ~90,000).
	RRCycles int64
	// CBACycles is the measured execution time with CBA (paper's
	// fluid-limit arithmetic: 28,000; on a non-split bus the TuA also
	// waits out whole 28-cycle contender holds, which the fluid model
	// ignores, so the simulation sits above).
	CBACycles int64
	// RRSlowdown and CBASlowdown are the measured ratios; the paper quotes
	// 9.4× and 2.8×.
	RRSlowdown, CBASlowdown float64
}

// PaperRRSlowdown and PaperCBASlowdown are §II's quoted values.
const (
	PaperRRSlowdown  = 9.4
	PaperCBASlowdown = 2.8
)

// illTask drives the TuA master of the illustrative example: after each
// completion it computes for gap cycles, then posts the next fixed-hold
// request, n requests in total.
type illTask struct {
	b         *bus.Bus
	master    int
	hold, gap int64
	remaining int
	computeAt int64 // cycle at which compute finishes and the post happens
	inFlight  bool
	doneAt    int64
}

func (t *illTask) tick() {
	if t.remaining == 0 || t.inFlight {
		return
	}
	now := t.b.Cycle() // last completed cycle; we run before the bus tick
	if now >= t.computeAt {
		t.b.MustPost(t.master, bus.Request{Hold: t.hold})
		t.inFlight = true
	}
}

func (t *illTask) onComplete() {
	t.inFlight = false
	t.remaining--
	if t.remaining == 0 {
		t.doneAt = t.b.Cycle()
		return
	}
	t.computeAt = t.b.Cycle() + t.gap
}

// runIllustrative executes the scenario on a bare bus with zero arbitration
// latency (the paper's arithmetic has no arbitration term: a 6-cycle
// request costs exactly 6 cycles once the bus is free).
func runIllustrative(withCBA bool, contenders int) int64 {
	const masters = 4
	var credit *core.Arbiter
	if withCBA {
		credit = core.MustNew(core.Homogeneous(masters, 56))
	}
	var task *illTask
	cfg := bus.Config{
		Masters:    masters,
		MaxHold:    56,
		Policy:     arbiter.NewRoundRobin(masters),
		Credit:     credit,
		ArbLatency: -1, // zero-latency arbitration
		OnComplete: func(m int, _ uint64) {
			if m == 0 {
				task.onComplete()
			}
		},
	}
	b := bus.MustNew(cfg)
	// Each iteration computes for 4 cycles and then accesses the bus for
	// 6, so the first post happens at cycle 4 and isolation is exactly
	// 1,000 × 10 cycles.
	task = &illTask{b: b, master: 0, hold: 6, gap: 4, remaining: 1000, computeAt: 4}
	for task.remaining > 0 {
		task.tick()
		for m := 1; m <= contenders; m++ {
			if b.CanPost(m) {
				b.MustPost(m, bus.Request{Hold: 28})
			}
		}
		b.Tick()
		if b.Cycle() > 2_000_000 {
			panic("exp: illustrative example did not converge")
		}
	}
	return task.doneAt
}

// Illustrative runs the §II example in isolation, under round-robin
// contention, and under CBA contention.
func Illustrative() IllustrativeResult {
	var r IllustrativeResult
	r.IsoCycles = runIllustrative(false, 0)
	r.RRCycles = runIllustrative(false, 3)
	r.CBACycles = runIllustrative(true, 3)
	r.RRSlowdown = float64(r.RRCycles) / float64(r.IsoCycles)
	r.CBASlowdown = float64(r.CBACycles) / float64(r.IsoCycles)
	return r
}
