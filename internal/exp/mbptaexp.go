package exp

import (
	"fmt"

	"creditbus/internal/campaign"
	"creditbus/internal/cpu"
	"creditbus/internal/mbpta"
	"creditbus/internal/sim"
	"creditbus/internal/workload"
)

// MBPTAResult is the §III.B experiment: pWCET estimation for a benchmark
// under maximum contention, with and without CBA. The paper's thesis is
// that CBA both reduces observed contention slowdowns and remains
// MBPTA-compatible (randomised arbitration ⇒ i.i.d.-looking execution
// times); with CBA the fitted tail should sit well below the baseline's
// for short-request workloads.
type MBPTAResult struct {
	Benchmark string
	Runs      int
	Block     int
	// RP and CBA are the fitted analyses for the baseline and CBA
	// configurations.
	RP, CBA mbpta.Analysis
	// RPCurve and CBACurve are pWCET bounds at 10^-3..10^-12 per run.
	RPCurve, CBACurve []mbpta.CurvePoint
}

// MBPTAExperiment collects opts.Runs maximum-contention execution times of
// the named benchmark under RP and RP+CBA and fits both tails.
func MBPTAExperiment(opts Options, benchmark string) (MBPTAResult, error) {
	opts = opts.withDefaults()
	spec, ok := workload.ByName(benchmark)
	if !ok {
		return MBPTAResult{}, fmt.Errorf("exp: unknown benchmark %q", benchmark)
	}
	trace := opts.trim(spec.Build(1))

	collect := func(withCBA bool, cfgIdx int) ([]float64, error) {
		cfg := sim.DefaultConfig()
		cfg.Policy = sim.PolicyRandomPerm
		cfg.ForcePerCycle = opts.PerCycle
		if withCBA {
			cfg.Credit.Kind = sim.CreditCBA
		}
		return campaign.Spec{
			Config:   cfg,
			Build:    func(int) cpu.Program { return trace.Clone() },
			Runs:     opts.Runs,
			Seed:     func(r int) uint64 { return opts.runSeed(1000+cfgIdx, r) },
			Workers:  opts.Workers,
			Progress: opts.Progress,
		}.MaxContention()
	}

	rpSamples, err := collect(false, 0)
	if err != nil {
		return MBPTAResult{}, err
	}
	cbaSamples, err := collect(true, 1)
	if err != nil {
		return MBPTAResult{}, err
	}

	// Block size: the customary 20 for large campaigns, scaled down so
	// that at least 10 maxima remain for the fit.
	block := opts.Runs / 20
	if block > 20 {
		block = 20
	}
	if block < 2 {
		block = 2
	}

	rp, err := mbpta.Analyze(rpSamples, block)
	if err != nil {
		return MBPTAResult{}, fmt.Errorf("exp: RP fit: %w", err)
	}
	cba, err := mbpta.Analyze(cbaSamples, block)
	if err != nil {
		return MBPTAResult{}, fmt.Errorf("exp: CBA fit: %w", err)
	}
	return MBPTAResult{
		Benchmark: benchmark,
		Runs:      opts.Runs,
		Block:     block,
		RP:        rp,
		CBA:       cba,
		RPCurve:   rp.Curve(10),
		CBACurve:  cba.Curve(10),
	}, nil
}
