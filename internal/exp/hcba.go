package exp

import (
	"creditbus/internal/arbiter"
	"creditbus/internal/bus"
	"creditbus/internal/campaign"
	"creditbus/internal/core"
	"creditbus/internal/trace"
)

// HCBAResult compares the two heterogeneous-allocation mechanisms of
// §III.A on a bursty privileged task: variant 1 (budget cap above the
// eligibility threshold) permits back-to-back grants — good for the
// privileged core's burst latency, but it creates "some temporal starvation
// to the others" — while variant 2 (heterogeneous refill weights) smooths
// the extra bandwidth out.
type HCBAResult struct {
	// Variant is "weights" (1/2 vs 1/6, the paper's evaluation setting) or
	// "cap" (2× budget cap).
	Variant string
	// BurstLatency is the mean number of cycles from the first post of an
	// 8-request burst to its last completion.
	BurstLatency float64
	// TuABackToBack counts privileged-core grants issued back to back.
	TuABackToBack int64
	// TuAMaxRun is the privileged core's longest uninterrupted bus
	// occupancy — the "temporal starvation" the cap variant inflicts on
	// the other cores.
	TuAMaxRun int64
	// ContenderMaxWait is the worst single-request wait of any contender.
	ContenderMaxWait int64
	// TuAShare is the privileged core's bus cycle share.
	TuAShare float64
	// ContenderShare is the contenders' combined bus cycle share: the
	// weights variant throttles them to Σ(1/6) = 50%, the cap variant
	// leaves their homogeneous 75% cap in place.
	ContenderShare float64
}

// hcbaScenario: the privileged master sleeps 600 cycles, then posts a burst
// of 8 requests of hold 28 (each posted as soon as the previous completes),
// repeated; three contenders stream hold-28 requests continuously.
func hcbaScenario(variant string, seed uint64) HCBAResult {
	// Bursts of two: exactly what the cap variant's doubled budget can fund
	// back to back (each 28-cycle hold costs 84 of the 224 banked beyond
	// the threshold). Longer bursts exhaust the bank and converge to the
	// weights variant's behaviour.
	const (
		masters = 4
		maxHold = 56
		bursts  = 200
		burstN  = 2
		idleGap = 600
	)
	var cfg core.Config
	var err error
	switch variant {
	case "weights":
		cfg, err = core.HeterogeneousWeights(masters, maxHold, 0, 1, 2)
	case "cap":
		cfg, err = core.HeterogeneousCap(masters, maxHold, 0, 2)
	default:
		panic("exp: unknown H-CBA variant " + variant)
	}
	if err != nil {
		panic(err)
	}
	credit := core.MustNew(cfg)
	rec := trace.NewRecorder(0)

	var b *bus.Bus
	var burstStart, burstDone []int64
	state := struct {
		inBurst    bool
		toPost     int // requests of the burst not yet posted
		remaining  int // requests of the burst not yet completed
		wakeAt     int64
		burstsLeft int
	}{wakeAt: 0, burstsLeft: bursts}

	b = bus.MustNew(bus.Config{
		Masters: masters, MaxHold: maxHold,
		Policy:  arbiter.NewRandomPermutation(masters, seed),
		Credit:  credit,
		OnGrant: rec.Record,
		OnComplete: func(m int, _ uint64) {
			if m != 0 {
				return
			}
			state.remaining--
			if state.remaining == 0 {
				state.inBurst = false
				burstDone = append(burstDone, b.Cycle())
				state.wakeAt = b.Cycle() + idleGap
			}
		},
	})

	for state.burstsLeft > 0 || state.inBurst {
		now := b.Cycle()
		if !state.inBurst && state.burstsLeft > 0 && now >= state.wakeAt {
			state.inBurst = true
			state.toPost = burstN
			state.remaining = burstN
			state.burstsLeft--
			burstStart = append(burstStart, now)
		}
		// The burst keeps the request line asserted: the next request is
		// posted as soon as the previous one is granted, so banked credit
		// can turn into back-to-back grants.
		if state.toPost > 0 && b.CanPost(0) {
			b.MustPost(0, bus.Request{Hold: 28})
			state.toPost--
		}
		for m := 1; m < masters; m++ {
			if b.CanPost(m) {
				b.MustPost(m, bus.Request{Hold: 28})
			}
		}
		b.Tick()
		if b.Cycle() > 10_000_000 {
			panic("exp: H-CBA scenario did not converge")
		}
	}

	var total float64
	for i := range burstDone {
		total += float64(burstDone[i] - burstStart[i])
	}
	res := HCBAResult{
		Variant:      variant,
		BurstLatency: total / float64(len(burstDone)),
		TuAShare:     b.CycleShare(0),
	}
	// Slack 2: completion → repost → one-cycle arbitration register.
	res.TuABackToBack = trace.BackToBackWithin(rec.Events(), 2)[0]
	res.TuAMaxRun = trace.LongestOccupancyRun(rec.Events(), 0, 2)
	for m := 1; m < masters; m++ {
		if w := b.Stats(m).MaxWait; w > res.ContenderMaxWait {
			res.ContenderMaxWait = w
		}
		res.ContenderShare += b.CycleShare(m)
	}
	return res
}

// HCBAAblation runs both §III.A variants on the bursty scenario. The two
// variants are independent simulations and run concurrently when
// opts.Workers permits.
func HCBAAblation(opts Options) []HCBAResult {
	opts = opts.withDefaults()
	variants := []string{"weights", "cap"}
	out, err := campaign.Do(campaign.Options[struct{}]{Workers: opts.Workers, Progress: opts.Progress},
		len(variants), func(_ struct{}, i int) (HCBAResult, error) {
			return hcbaScenario(variants[i], opts.runSeed(2000+i, 0)), nil
		})
	if err != nil {
		panic(err) // unreachable: scenario jobs never return an error
	}
	return out
}
