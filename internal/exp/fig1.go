package exp

import (
	"fmt"

	"creditbus/internal/campaign"
	"creditbus/internal/cpu"
	"creditbus/internal/sim"
	"creditbus/internal/stats"
	"creditbus/internal/workload"
)

// Fig1Configs lists the six bars of the paper's Figure 1, in the figure's
// legend order: random permutations, homogeneous CBA and heterogeneous CBA
// (TuA gets 50% bandwidth), each in isolation and under maximum contention.
var Fig1Configs = []string{"RP-ISO", "CBA-ISO", "H-CBA-ISO", "RP-CON", "CBA-CON", "H-CBA-CON"}

// Fig1Cell is one bar: mean normalised execution time and its 95% CI half
// width (in normalised units).
type Fig1Cell struct {
	Mean float64
	CI   float64
}

// Fig1Row is one benchmark's six bars, normalised to the benchmark's RP-ISO
// mean ("performance normalized to the result obtained for RP in
// isolation", §IV.B).
type Fig1Row struct {
	Benchmark   string
	RPISOCycles float64 // the normalisation baseline, in cycles
	Cells       map[string]Fig1Cell
}

// fig1Config maps a configuration name to the platform setup and scenario.
func fig1Config(name string, opts Options) (sim.Config, bool, error) {
	cfg := sim.DefaultConfig()
	cfg.Policy = sim.PolicyRandomPerm
	cfg.ForcePerCycle = opts.PerCycle
	contention := false
	switch name {
	case "RP-ISO":
	case "CBA-ISO":
		cfg.Credit.Kind = sim.CreditCBA
	case "H-CBA-ISO":
		cfg.Credit.Kind = sim.CreditHCBAWeights
	case "RP-CON":
		contention = true
	case "CBA-CON":
		cfg.Credit.Kind = sim.CreditCBA
		contention = true
	case "H-CBA-CON":
		cfg.Credit.Kind = sim.CreditHCBAWeights
		contention = true
	default:
		return sim.Config{}, false, fmt.Errorf("exp: unknown Figure 1 configuration %q", name)
	}
	return cfg, contention, nil
}

// Fig1 reruns the paper's Figure 1 campaign: every Figure 1 benchmark under
// all six configurations, opts.Runs randomised runs each.
func Fig1(opts Options) ([]Fig1Row, error) {
	return fig1Campaign(opts, workload.FigureOneSet())
}

// Fig1Extended runs the Figure 1 campaign over the full EEMBC-Autobench-like
// suite (ten kernels) — an extension beyond the paper's four plotted
// benchmarks, exercising the same configurations on lighter and heavier
// traffic shapes.
func Fig1Extended(opts Options) ([]Fig1Row, error) {
	names := []string{
		"a2time", "aifirf", "bitmnp", "cacheb", "canrdr",
		"matrix", "puwmod", "rspeed", "tblook", "ttsprk",
	}
	specs := make([]workload.Spec, 0, len(names))
	for _, n := range names {
		s, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("exp: missing workload %q", n)
		}
		specs = append(specs, s)
	}
	return fig1Campaign(opts, specs)
}

func fig1Campaign(opts Options, specs []workload.Spec) ([]Fig1Row, error) {
	opts = opts.withDefaults()
	nCfg, nRun := len(Fig1Configs), opts.Runs

	// Resolve the six configurations and build each benchmark's trace once;
	// every run executes its own clone of the relevant base trace.
	type setup struct {
		cfg        sim.Config
		contention bool
	}
	setups := make([]setup, nCfg)
	for ci, name := range Fig1Configs {
		cfg, contention, err := fig1Config(name, opts)
		if err != nil {
			return nil, err
		}
		setups[ci] = setup{cfg: cfg, contention: contention}
	}
	bases := make([]*cpu.Trace, len(specs))
	for bi, spec := range specs {
		bases[bi] = opts.trim(spec.Build(1))
	}

	// One flat job grid — benchmark-major, then configuration, then run,
	// matching the historical nested loop so that seeds and aggregation
	// order (and therefore every reported digit) are unchanged. Each worker
	// recycles one machine across its slice of the grid (runs of one
	// configuration are contiguous, so the pooled machine's platform rarely
	// changes shape mid-slice).
	jobs := len(specs) * nCfg * nRun
	samples, err := campaign.Do(campaign.Options[*sim.Runner]{
		Workers:        opts.Workers,
		Progress:       opts.Progress,
		PerWorkerState: func() *sim.Runner { return new(sim.Runner) },
	}, jobs,
		func(rn *sim.Runner, j int) (float64, error) {
			bi, ci, r := j/(nCfg*nRun), (j/nRun)%nCfg, j%nRun
			seed := opts.runSeed(bi*nCfg+ci, r)
			prog := bases[bi].Clone()
			scenario := (*sim.Runner).Isolation
			if setups[ci].contention {
				scenario = (*sim.Runner).MaxContention
			}
			res, err := scenario(rn, setups[ci].cfg, prog, seed)
			if err != nil {
				return 0, fmt.Errorf("exp: %s/%s run %d: %w", specs[bi].Name, Fig1Configs[ci], r, err)
			}
			return float64(res.TaskCycles), nil
		})
	if err != nil {
		return nil, err
	}

	rows := make([]Fig1Row, 0, len(specs))
	for bi, spec := range specs {
		means := map[string]*stats.Accumulator{}
		for ci, cfgName := range Fig1Configs {
			acc := &stats.Accumulator{}
			for r := 0; r < nRun; r++ {
				acc.Add(samples[(bi*nCfg+ci)*nRun+r])
			}
			means[cfgName] = acc
		}

		base := means["RP-ISO"].Mean()
		row := Fig1Row{Benchmark: spec.Name, RPISOCycles: base, Cells: map[string]Fig1Cell{}}
		for _, cfgName := range Fig1Configs {
			acc := means[cfgName]
			row.Cells[cfgName] = Fig1Cell{
				Mean: acc.Mean() / base,
				CI:   acc.CI95HalfWidth() / base,
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig1Summary extracts the headline numbers the paper quotes from the
// figure: the worst contention slowdown without and with CBA, and the
// average isolation overhead of CBA.
type Fig1Summary struct {
	// MaxRPCon is the worst RP-CON slowdown (paper: 3.34×, matrix).
	MaxRPCon float64
	// MaxRPConBench names the benchmark attaining it.
	MaxRPConBench string
	// MaxCBACon is the worst CBA-CON slowdown (paper: 2.34×).
	MaxCBACon float64
	// MaxCBAConBench names the benchmark attaining it.
	MaxCBAConBench string
	// MaxHCBACon is the worst H-CBA-CON slowdown (paper: below CBA-CON).
	MaxHCBACon float64
	// AvgCBAIso is the average CBA-ISO overhead (paper: ~1.03×).
	AvgCBAIso float64
	// AvgHCBAIso is the average H-CBA-ISO overhead (paper: ≈1.00×).
	AvgHCBAIso float64
}

// Summarise computes the headline numbers from Figure 1 rows.
func Summarise(rows []Fig1Row) Fig1Summary {
	var s Fig1Summary
	var cbaIso, hcbaIso float64
	for _, row := range rows {
		if v := row.Cells["RP-CON"].Mean; v > s.MaxRPCon {
			s.MaxRPCon, s.MaxRPConBench = v, row.Benchmark
		}
		if v := row.Cells["CBA-CON"].Mean; v > s.MaxCBACon {
			s.MaxCBACon, s.MaxCBAConBench = v, row.Benchmark
		}
		if v := row.Cells["H-CBA-CON"].Mean; v > s.MaxHCBACon {
			s.MaxHCBACon = v
		}
		cbaIso += row.Cells["CBA-ISO"].Mean
		hcbaIso += row.Cells["H-CBA-ISO"].Mean
	}
	if n := float64(len(rows)); n > 0 {
		s.AvgCBAIso = cbaIso / n
		s.AvgHCBAIso = hcbaIso / n
	}
	return s
}
