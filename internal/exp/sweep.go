package exp

import (
	"creditbus/internal/arbiter"
	"creditbus/internal/bus"
	"creditbus/internal/campaign"
	"creditbus/internal/core"
)

// SweepPolicies are the arbitration setups compared by the contender-length
// sweep; "CBA+RR" and "CBA+RP" put the credit filter in front.
var SweepPolicies = []string{"RR", "RP", "FIFO", "TDMA", "CBA+RR", "CBA+RP"}

// SweepPoint is one contender request length with the TuA slowdown under
// each setup — the quantitative form of §I's argument that slot-fair
// policies leave short-request tasks with a slowdown that grows with the
// contenders' request length ("virtually unbounded"), while CBA pins it
// near the core count.
type SweepPoint struct {
	ContenderHold int64
	Slowdown      map[string]float64
}

// sweepRun measures the steady-state completion count of a saturating TuA
// (hold 5, immediate repost) against three saturating contenders of the
// given hold, and converts it into a slowdown against the TuA's isolated
// throughput under the same policy.
func sweepRun(policyName string, contenderHold int64, seed uint64, contenders bool) float64 {
	const masters, maxHold, horizon = 4, 56, 400_000
	var policy arbiter.Policy
	var credit *core.Arbiter
	switch policyName {
	case "RR":
		policy = arbiter.NewRoundRobin(masters)
	case "RP":
		policy = arbiter.NewRandomPermutation(masters, seed)
	case "FIFO":
		policy = arbiter.NewFIFO(masters)
	case "TDMA":
		policy = arbiter.NewTDMA(masters, maxHold)
	case "CBA+RR":
		policy = arbiter.NewRoundRobin(masters)
		credit = core.MustNew(core.Homogeneous(masters, maxHold))
	case "CBA+RP":
		policy = arbiter.NewRandomPermutation(masters, seed)
		credit = core.MustNew(core.Homogeneous(masters, maxHold))
	default:
		panic("exp: unknown sweep policy " + policyName)
	}
	b := bus.MustNew(bus.Config{
		Masters: masters, MaxHold: maxHold,
		Policy: policy, Credit: credit,
	})
	for b.Cycle() < horizon {
		if b.CanPost(0) {
			b.MustPost(0, bus.Request{Hold: 5})
		}
		if contenders {
			for m := 1; m < masters; m++ {
				if b.CanPost(m) {
					b.MustPost(m, bus.Request{Hold: contenderHold})
				}
			}
		}
		b.Tick()
	}
	return float64(b.Stats(0).Completions)
}

// Sweep runs the contender-length sweep over holds 7..56. Grid points are
// independent (each builds its own bus), so they fan out across
// opts.Workers.
func Sweep(opts Options) []SweepPoint {
	opts = opts.withDefaults()
	holds := []int64{7, 14, 28, 42, 56}
	nPol := len(SweepPolicies)
	slowdowns, err := campaign.Do(campaign.Options[struct{}]{Workers: opts.Workers, Progress: opts.Progress},
		len(holds)*nPol, func(_ struct{}, j int) (float64, error) {
			hi, pi := j/nPol, j%nPol
			h, p := holds[hi], SweepPolicies[pi]
			seed := opts.runSeed(hi*nPol+pi, 0)
			iso := sweepRun(p, h, seed, false)
			con := sweepRun(p, h, seed+1, true)
			return iso / con, nil
		})
	if err != nil {
		panic(err) // unreachable: grid jobs never return an error
	}
	out := make([]SweepPoint, 0, len(holds))
	for hi, h := range holds {
		pt := SweepPoint{ContenderHold: h, Slowdown: map[string]float64{}}
		for pi, p := range SweepPolicies {
			pt.Slowdown[p] = slowdowns[hi*nPol+pi]
		}
		out = append(out, pt)
	}
	return out
}
