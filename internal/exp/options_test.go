package exp

import (
	"reflect"
	"testing"
)

func TestWithDefaults(t *testing.T) {
	d := Options{}.withDefaults()
	if d.Runs != 30 {
		t.Errorf("default Runs = %d, want 30", d.Runs)
	}
	if d.Seed != 0x20170327 {
		t.Errorf("default Seed = %#x, want the paper's conference date", d.Seed)
	}
	if d.PerCycle || d.Workers != 0 || d.MaxOps != 0 {
		t.Errorf("zero options gained spurious defaults: %+v", d)
	}
	// Explicit values survive.
	o := Options{Runs: 7, Seed: 3, MaxOps: 11, Workers: 2, PerCycle: true}.withDefaults()
	if o.Runs != 7 || o.Seed != 3 || o.MaxOps != 11 || o.Workers != 2 || !o.PerCycle {
		t.Errorf("explicit options overridden: %+v", o)
	}
}

func TestRunSeedSchedulesDivergeAcrossBaseSeeds(t *testing.T) {
	a := Options{Seed: 1}.withDefaults()
	b := Options{Seed: 2}.withDefaults()
	same := 0
	for c := 0; c < 5; c++ {
		for r := 0; r < 5; r++ {
			if a.runSeed(c, r) == b.runSeed(c, r) {
				same++
			}
		}
	}
	if same != 0 {
		t.Errorf("%d of 25 (config, run) seeds collide across base seeds", same)
	}
	if a.runSeed(0, 0) == 0 {
		t.Error("runSeed produced the forbidden zero seed")
	}
}

// TestExperimentsSerialEqualsParallel is the option-handling contract for
// every campaign-backed experiment constructor: worker counts change only
// wall-clock, never a digit of the result, and the PerCycle engine override
// reproduces the fast engine's numbers exactly. Each case runs a small
// workload twice per axis and requires deep equality.
func TestExperimentsSerialEqualsParallel(t *testing.T) {
	small := Options{Runs: 4, MaxOps: 1500}
	cases := []struct {
		name    string
		inShort bool // cheap enough for the -short matrix
		run     func(Options) (any, error)
	}{
		{"Fig1", false, func(o Options) (any, error) { return Fig1(o) }},
		{"Fig1Extended", false, func(o Options) (any, error) {
			o.Runs = 2
			o.MaxOps = 800
			return Fig1Extended(o)
		}},
		{"Sweep", false, func(o Options) (any, error) { return Sweep(o), nil }},
		{"HCBAAblation", true, func(o Options) (any, error) { return HCBAAblation(o), nil }},
		{"MBPTAExperiment", false, func(o Options) (any, error) {
			o.Runs = 40
			return MBPTAExperiment(o, "hitter")
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && !c.inShort {
				t.Skip("multi-run campaign")
			}
			t.Parallel()
			serialOpts := small
			serialOpts.Workers = 1
			serial, err := c.run(serialOpts)
			if err != nil {
				t.Fatal(err)
			}

			parallelOpts := small
			parallelOpts.Workers = 4
			parallel, err := c.run(parallelOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("workers=4 diverges from workers=1:\n%v\nvs\n%v", parallel, serial)
			}

			perCycleOpts := serialOpts
			perCycleOpts.PerCycle = true
			perCycle, err := c.run(perCycleOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, perCycle) {
				t.Errorf("PerCycle engine diverges from the fast engine:\n%v\nvs\n%v", perCycle, serial)
			}
		})
	}
}

func TestProgressObservesEveryRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run campaign")
	}
	var dones []int
	total := -1
	opts := Options{Runs: 3, MaxOps: 800, Workers: 2, Progress: func(done, tot int) {
		dones = append(dones, done)
		total = tot
	}}
	if _, err := Fig1(opts); err != nil {
		t.Fatal(err)
	}
	// One Fig1 campaign: 4 benchmarks x 6 configurations x 3 runs = 72 jobs.
	want := 4 * 6 * opts.Runs
	if total != want {
		t.Fatalf("progress total = %d, want %d", total, want)
	}
	if len(dones) != want {
		t.Fatalf("progress called %d times, want %d", len(dones), want)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress done sequence broken at %d: got %d", i, d)
		}
	}
}

func TestSeedOptionMovesTheCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run campaign")
	}
	a, err := Fig1(Options{Runs: 2, MaxOps: 800, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1(Options{Runs: 2, MaxOps: 800, Seed: 102})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different base seeds produced identical Figure 1 campaigns")
	}
	c, err := Fig1(Options{Runs: 2, MaxOps: 800, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("equal base seeds produced different Figure 1 campaigns")
	}
}
