package exp

import (
	"testing"
)

func TestRunSeedDistinctAndStable(t *testing.T) {
	o := Options{}.withDefaults()
	seen := map[uint64]bool{}
	for c := 0; c < 10; c++ {
		for r := 0; r < 10; r++ {
			s := o.runSeed(c, r)
			if seen[s] {
				t.Fatalf("seed collision at config %d run %d", c, r)
			}
			seen[s] = true
			if s != o.runSeed(c, r) {
				t.Fatal("runSeed not stable")
			}
		}
	}
}

func TestIllustrativeMatchesPaperArithmetic(t *testing.T) {
	r := Illustrative()
	// Isolation is exact: 1,000 requests × (6 bus + 4 compute).
	if r.IsoCycles != 10_000 {
		t.Errorf("IsoCycles = %d, want exactly 10000", r.IsoCycles)
	}
	// Round-robin: the paper's arithmetic gives 94,000 by adding the 4,000
	// compute cycles on top of 1,000×(6+84); in the simulation the compute
	// overlaps the contenders' holds, so steady state is 1,000×90 ≈ 90,000.
	if r.RRCycles < 88_000 || r.RRCycles > 94_500 {
		t.Errorf("RRCycles = %d, want ≈ 90,000..94,000 (paper arithmetic 94,000)", r.RRCycles)
	}
	if r.RRSlowdown < 8.8 || r.RRSlowdown > 9.5 {
		t.Errorf("RR slowdown %.2f, paper quotes 9.4", r.RRSlowdown)
	}
	// CBA: fluid-limit arithmetic gives 2.8×. On the non-split bus the TuA
	// refills after every request (18 cycles for a 6-cycle hold) and then
	// waits out whole 28-cycle contender holds, often chained — so the
	// measured value lands near 5.7×, still far below RR's 9×+ and with
	// every contender hard-capped at 25% bandwidth. EXPERIMENTS.md
	// discusses the gap to the paper's fluid arithmetic.
	if r.CBASlowdown < 2.0 || r.CBASlowdown > 6.0 {
		t.Errorf("CBA slowdown %.2f outside the cycle-fair regime", r.CBASlowdown)
	}
	if r.CBASlowdown >= 0.7*r.RRSlowdown {
		t.Errorf("CBA %.2f not clearly below RR %.2f", r.CBASlowdown, r.RRSlowdown)
	}
}

func TestFig1SmallCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run campaign")
	}
	rows, err := Fig1(Options{Runs: 3, MaxOps: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 benchmarks", len(rows))
	}
	for _, row := range rows {
		if row.RPISOCycles <= 0 {
			t.Errorf("%s: zero baseline", row.Benchmark)
		}
		for _, cfg := range Fig1Configs {
			cell, ok := row.Cells[cfg]
			if !ok {
				t.Fatalf("%s missing cell %s", row.Benchmark, cfg)
			}
			if cell.Mean <= 0 || cell.Mean > 20 {
				t.Errorf("%s/%s: normalised mean %.3f implausible", row.Benchmark, cfg, cell.Mean)
			}
		}
		iso := row.Cells["RP-ISO"].Mean
		if iso < 0.999 || iso > 1.001 {
			t.Errorf("%s: RP-ISO normalises to %.4f, want 1.0", row.Benchmark, iso)
		}
		// Contention cannot be faster than isolation for the same policy.
		if row.Cells["RP-CON"].Mean < iso {
			t.Errorf("%s: RP-CON %.3f below RP-ISO", row.Benchmark, row.Cells["RP-CON"].Mean)
		}
	}
	s := Summarise(rows)
	if s.MaxRPCon <= 1 || s.MaxCBACon <= 1 {
		t.Errorf("summary degenerate: %+v", s)
	}
}

func TestSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep campaign")
	}
	pts := Sweep(Options{})
	if len(pts) < 3 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	// Slot-fair slowdown grows with contender length...
	for _, p := range []string{"RR", "RP", "FIFO"} {
		if last.Slowdown[p] <= first.Slowdown[p] {
			t.Errorf("%s slowdown did not grow with contender hold: %.2f -> %.2f",
				p, first.Slowdown[p], last.Slowdown[p])
		}
		if last.Slowdown[p] < 5 {
			t.Errorf("%s slowdown at hold 56 = %.2f, expected large", p, last.Slowdown[p])
		}
	}
	// ...while CBA pins it near the core count at every point.
	for _, pt := range pts {
		for _, p := range []string{"CBA+RR", "CBA+RP"} {
			if s := pt.Slowdown[p]; s > 4.6 {
				t.Errorf("%s slowdown %.2f at hold %d, want ≈ ≤ 4 (cycle fairness)",
					p, s, pt.ContenderHold)
			}
		}
	}
}

func TestOverheadReport(t *testing.T) {
	r := Overhead()
	if r.StateBitsTotal != 36 || r.StateBitsPerCore != 9 {
		t.Errorf("state bits = %d/%d, want 36/9 (Table I inventory)", r.StateBitsTotal, r.StateBitsPerCore)
	}
	rp, cba := r.NsPerDecision["RP"], r.NsPerDecision["RP+CBA"]
	if rp <= 0 || cba <= 0 {
		t.Fatalf("non-positive timings: %+v", r.NsPerDecision)
	}
	// CBA adds a compare per master and a counter update: small, bounded
	// overhead. Generous bound to stay robust on loaded CI machines.
	if cba > 5*rp {
		t.Errorf("CBA decision cost %.1fns vs %.1fns baseline: filter too heavy", cba, rp)
	}
}

func TestMBPTAExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement campaign")
	}
	r, err := MBPTAExperiment(Options{Runs: 60, MaxOps: 6000}, "matrix")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RPCurve) != 10 || len(r.CBACurve) != 10 {
		t.Fatalf("curve lengths %d/%d", len(r.RPCurve), len(r.CBACurve))
	}
	// pWCET curves are increasing in rarity.
	for i := 1; i < len(r.RPCurve); i++ {
		if r.RPCurve[i].WCET < r.RPCurve[i-1].WCET {
			t.Error("RP curve not monotone")
		}
	}
	// For the dense short-request benchmark, CBA's fitted location must
	// undercut the baseline's (the distributions are well separated; the
	// extrapolated deep decades depend on the fitted scale, which a
	// 60-run campaign does not pin down, so the location is the robust
	// comparison).
	if r.CBA.Fit.Mu >= r.RP.Fit.Mu {
		t.Errorf("Gumbel location: CBA %.0f not below RP %.0f", r.CBA.Fit.Mu, r.RP.Fit.Mu)
	}
	if _, err := MBPTAExperiment(Options{Runs: 30}, "nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestHCBAAblationContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation campaign")
	}
	results := HCBAAblation(Options{})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	var weights, cap HCBAResult
	for _, r := range results {
		switch r.Variant {
		case "weights":
			weights = r
		case "cap":
			cap = r
		}
	}
	// §III.A: the cap variant allows back-to-back grants; the
	// threshold-equals-cap weights variant cannot issue hold-28 requests
	// back to back (it must refill first).
	if cap.TuABackToBack == 0 {
		t.Error("cap variant produced no back-to-back grants")
	}
	if weights.TuABackToBack != 0 {
		t.Errorf("weights variant produced %d back-to-back grants", weights.TuABackToBack)
	}
	// The cap variant inflicts longer uninterrupted exclusion on the
	// contenders ("temporal starvation"): its occupancy runs span two
	// 28-cycle holds. The weights variant instead squeezes the contenders
	// *continuously* — their combined share drops towards Σ(1/6) = 50%
	// versus the cap variant's untouched 75%. (Burst latency alone does
	// not discriminate: the weights variant's throttled contenders make
	// even non-back-to-back bursts fast.)
	if cap.TuAMaxRun <= weights.TuAMaxRun {
		t.Errorf("cap occupancy run %d not above weights %d",
			cap.TuAMaxRun, weights.TuAMaxRun)
	}
	if cap.ContenderShare <= weights.ContenderShare+0.1 {
		t.Errorf("contender shares: cap %.3f vs weights %.3f — want cap clearly higher",
			cap.ContenderShare, weights.ContenderShare)
	}
	if weights.ContenderShare > 0.52 {
		t.Errorf("weights variant contender share %.3f exceeds the Σ(1/6) cap", weights.ContenderShare)
	}
}

func TestFairnessComparisonSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run campaign")
	}
	rows, err := FairnessComparison(Options{Runs: 3, MaxOps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(FairnessPolicies) {
		t.Fatalf("rows = %d, want %d policies", len(rows), len(FairnessPolicies))
	}
	byName := map[string]FairnessRow{}
	for i, row := range rows {
		if row.Policy != FairnessPolicies[i] {
			t.Fatalf("row %d is %s, want %s", i, row.Policy, FairnessPolicies[i])
		}
		byName[row.Policy] = row
		if row.TaskCycles <= 0 {
			t.Errorf("%s: zero task cycles", row.Policy)
		}
		n := float64(len(FairnessWeights))
		if row.JainOverall < 1/n-1e-9 || row.JainOverall > 1+1e-9 {
			t.Errorf("%s: Jain %.4f outside [1/n, 1]", row.Policy, row.JainOverall)
		}
		for what, v := range map[string]float64{
			"share err":    row.ShareErr,
			"win err max":  row.MaxWindowShareErr,
			"win err mean": row.MeanWindowShareErr,
			"TuA share":    row.TuAShare,
		} {
			if v < -1e-9 || v > 1+1e-9 {
				t.Errorf("%s: %s %.4f outside [0, 1]", row.Policy, what, v)
			}
		}
		if row.MaxStarveAge <= 0 {
			t.Errorf("%s: no starvation age recorded", row.Policy)
		}
	}
	// The headline contrast: under full backlog, round-robin splits the bus
	// evenly (Jain ≈ 1 against the unweighted shares) while the weighted
	// policies move the TuA toward its 50% entitlement, so PF and GWF must
	// beat RR on share error by a clear margin.
	rr, pf, gwf := byName["RR"], byName["PF"], byName["GWF"]
	if rr.JainOverall < 0.99 {
		t.Errorf("RR: Jain %.4f, want ≈ 1 under symmetric backlog", rr.JainOverall)
	}
	if pf.ShareErr >= rr.ShareErr {
		t.Errorf("PF share error %.4f not below RR's %.4f", pf.ShareErr, rr.ShareErr)
	}
	if gwf.ShareErr >= rr.ShareErr {
		t.Errorf("GWF share error %.4f not below RR's %.4f", gwf.ShareErr, rr.ShareErr)
	}
	if pf.TuAShare <= rr.TuAShare || gwf.TuAShare <= rr.TuAShare {
		t.Errorf("weighted TuA shares (PF %.3f, GWF %.3f) not above RR's %.3f",
			pf.TuAShare, gwf.TuAShare, rr.TuAShare)
	}
}
