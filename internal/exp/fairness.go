package exp

import (
	"fmt"

	"creditbus/internal/bus"
	"creditbus/internal/campaign"
	"creditbus/internal/cpu"
	"creditbus/internal/sim"
	"creditbus/internal/stats"
	"creditbus/internal/workload"
)

// FairnessPolicies lists the arbitration policies the fairness comparison
// puts side by side: the paper's slot-fair baselines (round-robin bare and
// under CBA), the weighted lottery, and the fairness zoo — proportional
// fair, general weighted fairness, and multi-timescale token buckets.
var FairnessPolicies = []string{"RR", "RR+CBA", "LOT", "PF", "GWF", "MTS"}

// FairnessWeights is the entitlement vector of the comparison scenario: the
// TuA on core 0 is entitled to half the bus (4 of 8 shares), core 3 to a
// quarter, cores 1-2 to an eighth each. The weighted policies are configured
// with exactly this vector; the slot-fair baselines ignore it, and their
// share error against it is the quantitative cost of that ignorance.
var FairnessWeights = []int64{4, 1, 1, 2}

// FairnessWindow is the observation window (in bus cycles) of the windowed
// Jain/share-error trajectories. 4096 cycles is ~tens of grants per master
// under the default 56-cycle MaxHold — long enough for shares to be
// meaningful, short enough to expose multi-timescale unfairness.
const FairnessWindow = 4096

// FairnessRow aggregates one policy's fairness metrics over opts.Runs
// randomised runs of the comparison scenario (mean over runs throughout).
type FairnessRow struct {
	Policy string
	// TaskCycles is the TuA's mean execution time — fairness is not free,
	// and this column prices it.
	TaskCycles float64
	// JainOverall is Jain's index of the run-level bandwidth shares.
	JainOverall float64
	// ShareErr is the run-level total-variation distance between observed
	// shares and the FairnessWeights entitlement, in [0, 1].
	ShareErr float64
	// MaxWindowShareErr and MeanWindowShareErr summarise the per-window
	// share-error trajectory (window = FairnessWindow cycles).
	MaxWindowShareErr  float64
	MeanWindowShareErr float64
	// MaxStarveAge is the worst grant-to-grant gap (cycles) any master
	// suffered, mean over runs.
	MaxStarveAge float64
	// TuAShare is the TuA's observed fraction of held bus cycles
	// (entitlement: 0.5).
	TuAShare float64
}

// fairnessConfig resolves one policy name of FairnessPolicies.
func fairnessConfig(name string, opts Options) (sim.Config, error) {
	cfg := sim.DefaultConfig()
	cfg.ForcePerCycle = opts.PerCycle
	switch name {
	case "RR":
		cfg.Policy = sim.PolicyRoundRobin
	case "RR+CBA":
		cfg.Policy = sim.PolicyRoundRobin
		cfg.Credit.Kind = sim.CreditCBA
	case "LOT":
		cfg.Policy = sim.PolicyLottery
		cfg.LotteryTickets = FairnessWeights
	case "PF":
		cfg.Policy = sim.PolicyPropFair
		cfg.Weights = FairnessWeights
		// The classic β = 0.5 average forgets a grant within a couple of
		// slots — too fast to sustain a 4:1 rate split, so PF with the
		// default shift behaves near slot-fair. A slower average (β = 2⁻⁶)
		// lets the rate estimates actually separate by weight.
		cfg.PFAvgShift = 6
	case "GWF":
		cfg.Policy = sim.PolicyGWF
		cfg.Weights = FairnessWeights
	case "MTS":
		cfg.Policy = sim.PolicyMTS
		cfg.Weights = FairnessWeights
	default:
		return sim.Config{}, fmt.Errorf("exp: unknown fairness policy %q", name)
	}
	return cfg, nil
}

// fairnessPrograms builds the comparison scenario's per-core programs: four
// bus-saturating streamers (the TuA's unlooped, the co-runners looped), so no
// master's demand caps its share and the arbiter — not demand — decides
// whether each master reaches its entitlement. A demand-limited master would
// donate its unused entitlement and put a policy-independent floor under the
// share error, hiding exactly the differences this experiment measures.
func fairnessPrograms(opts Options) ([]cpu.Program, error) {
	names := []string{"stream", "stream", "stream", "stream"}
	programs := make([]cpu.Program, len(names))
	for i, n := range names {
		spec, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("exp: missing workload %q", n)
		}
		var p cpu.Program = opts.trim(spec.Build(1))
		if i > 0 {
			p = sim.NewLooped(p)
		}
		programs[i] = p
	}
	return programs, nil
}

// FairnessComparison runs the comparison scenario under every
// FairnessPolicies entry, opts.Runs randomised runs each, instrumenting the
// full grant stream with stats.Fairness.
func FairnessComparison(opts Options) ([]FairnessRow, error) {
	opts = opts.withDefaults()
	nCfg, nRun := len(FairnessPolicies), opts.Runs

	cfgs := make([]sim.Config, nCfg)
	for ci, name := range FairnessPolicies {
		cfg, err := fairnessConfig(name, opts)
		if err != nil {
			return nil, err
		}
		cfgs[ci] = cfg
	}
	protos, err := fairnessPrograms(opts)
	if err != nil {
		return nil, err
	}

	type sample struct {
		task                            float64
		jain, shareErr, maxWin, meanWin float64
		maxStarve                       float64
		tuaShare                        float64
	}
	jobs := nCfg * nRun
	samples, err := campaign.Do(campaign.Options[*sim.Runner]{
		Workers:        opts.Workers,
		Progress:       opts.Progress,
		PerWorkerState: func() *sim.Runner { return new(sim.Runner) },
	}, jobs,
		func(rn *sim.Runner, j int) (sample, error) {
			ci, r := j/nRun, j%nRun
			seed := opts.runSeed(ci, r)
			programs := make([]cpu.Program, len(protos))
			for i, p := range protos {
				c, ok := cpu.TryClone(p)
				if !ok {
					return sample{}, fmt.Errorf("exp: fairness program %d does not clone", i)
				}
				programs[i] = c
			}
			mon := stats.NewFairness(cfgs[ci].Cores, FairnessWindow, FairnessWeights)
			var lastEnd int64
			res, err := rn.WorkloadsObserved(cfgs[ci], programs, seed, func(ev bus.GrantEvent) {
				mon.OnGrant(ev.Master, ev.Cycle, ev.Hold)
				if end := ev.Cycle + ev.Hold; end > lastEnd {
					lastEnd = end
				}
			})
			if err != nil {
				return sample{}, fmt.Errorf("exp: fairness %s run %d: %w", FairnessPolicies[ci], r, err)
			}
			end := res.WallCycles
			if lastEnd > end {
				end = lastEnd
			}
			rep := mon.Finish(end)
			return sample{
				task:      float64(res.TaskCycles),
				jain:      rep.JainOverall,
				shareErr:  rep.ShareErr,
				maxWin:    rep.MaxShareErr,
				meanWin:   rep.MeanShareErr,
				maxStarve: float64(rep.MaxStarveAge),
				tuaShare:  rep.Share[0],
			}, nil
		})
	if err != nil {
		return nil, err
	}

	rows := make([]FairnessRow, 0, nCfg)
	for ci, name := range FairnessPolicies {
		row := FairnessRow{Policy: name}
		for r := 0; r < nRun; r++ {
			s := samples[ci*nRun+r]
			row.TaskCycles += s.task
			row.JainOverall += s.jain
			row.ShareErr += s.shareErr
			row.MaxWindowShareErr += s.maxWin
			row.MeanWindowShareErr += s.meanWin
			row.MaxStarveAge += s.maxStarve
			row.TuAShare += s.tuaShare
		}
		n := float64(nRun)
		row.TaskCycles /= n
		row.JainOverall /= n
		row.ShareErr /= n
		row.MaxWindowShareErr /= n
		row.MeanWindowShareErr /= n
		row.MaxStarveAge /= n
		row.TuAShare /= n
		rows = append(rows, row)
	}
	return rows, nil
}
