package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// foldExact folds xs sequentially — the single-process reference.
func foldExact(xs []int64) Exact {
	var e Exact
	for _, x := range xs {
		e.Add(x)
	}
	return e
}

// partition cuts [0,n) into k contiguous ranges with random boundaries.
func partition(r *rand.Rand, n, k int) [][2]int {
	cuts := map[int]bool{}
	for len(cuts) < k-1 {
		cuts[1+r.Intn(n-1)] = true
	}
	bounds := []int{0}
	for c := 1; c < n; c++ {
		if cuts[c] {
			bounds = append(bounds, c)
		}
	}
	bounds = append(bounds, n)
	out := make([][2]int, 0, k)
	for i := 0; i+1 < len(bounds); i++ {
		out = append(out, [2]int{bounds[i], bounds[i+1]})
	}
	return out
}

// TestExactMergeShardInvariance is the shard-merge property: partition a
// random sample vector into contiguous shards, fold each independently, and
// merge the shard states in a SHUFFLED order (Exact merging is commutative,
// not just associative) — the merged state must equal the sequential fold
// bit for bit, field for field.
func TestExactMergeShardInvariance(t *testing.T) {
	prop := func(raw []uint32, shardSeed int64) bool {
		if len(raw) < 2 {
			return true
		}
		r := rand.New(rand.NewSource(shardSeed))
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		want := foldExact(xs)
		k := 1 + r.Intn(min(8, len(xs)))
		parts := partition(r, len(xs), k)
		states := make([]Exact, len(parts))
		for i, p := range parts {
			states[i] = foldExact(xs[p[0]:p[1]])
		}
		r.Shuffle(len(states), func(i, j int) { states[i], states[j] = states[j], states[i] })
		var got Exact
		for _, st := range states {
			got.Merge(st)
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestExactMergeAssociativity merges three adjacent states in both
// bracketings and demands bit-equal results.
func TestExactMergeAssociativity(t *testing.T) {
	a := foldExact([]int64{5, 9, 2})
	b := foldExact([]int64{100, 7})
	c := foldExact([]int64{0, 0, 3, 1 << 40})

	left := a // (a+b)+c
	left.Merge(b)
	left.Merge(c)

	bc := b // a+(b+c)
	bc.Merge(c)
	right := a
	right.Merge(bc)

	if left != right {
		t.Fatalf("associativity broken: %+v vs %+v", left, right)
	}
}

// TestExactDerivedStats pins the derived statistics against the float
// Accumulator on the same data (within float tolerance — Exact is exact in
// state, the float reference accumulates rounding).
func TestExactDerivedStats(t *testing.T) {
	xs := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var e Exact
	var a Accumulator
	for _, x := range xs {
		e.Add(x)
		a.Add(float64(x))
	}
	if e.N() != a.N() || e.Min() != int64(a.Min()) || e.Max() != int64(a.Max()) {
		t.Fatalf("count/min/max mismatch: %v vs %v", e, a)
	}
	if math.Abs(e.Mean()-a.Mean()) > 1e-9 {
		t.Fatalf("mean %v vs %v", e.Mean(), a.Mean())
	}
	if math.Abs(e.Variance()-a.Variance()) > 1e-6 {
		t.Fatalf("variance %v vs %v", e.Variance(), a.Variance())
	}
	shares := make([]float64, len(xs))
	for i, x := range xs {
		shares[i] = float64(x)
	}
	if math.Abs(e.Jain()-JainIndex(shares)) > 1e-12 {
		t.Fatalf("jain %v vs %v", e.Jain(), JainIndex(shares))
	}
}

func TestExactEdgeCases(t *testing.T) {
	var e Exact
	if e.Mean() != 0 || e.Variance() != 0 || e.Jain() != 0 || e.Min() != 0 || e.Max() != 0 {
		t.Fatalf("empty accumulator must report zeros: %v", e)
	}
	var other Exact
	other.Add(7)
	e.Merge(other) // empty += nonempty adopts the state
	if e != other {
		t.Fatalf("merge into empty: %+v vs %+v", e, other)
	}
	before := other
	other.Merge(Exact{}) // nonempty += empty is a no-op
	if other != before {
		t.Fatalf("merge of empty changed state: %+v vs %+v", other, before)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) must panic")
		}
	}()
	e.Add(-1)
}

// TestExactSumSqCarry exercises the 128-bit carry path: samples big enough
// that the low word of the squared sum overflows.
func TestExactSumSqCarry(t *testing.T) {
	var e Exact
	x := int64(1) << 33 // x² = 2^66 > 2^64: lands in the high word
	e.Add(x)
	e.Add(x)
	if e.SumSqHi != 8 || e.SumSqLo != 0 { // 2·2^66 = 2^67 = 8·2^64
		t.Fatalf("sumsq = %d·2^64 + %d, want 8·2^64 + 0", e.SumSqHi, e.SumSqLo)
	}
	var parts Exact
	parts.Add(x)
	var p2 Exact
	p2.Add(x)
	parts.Merge(p2)
	if parts != e {
		t.Fatalf("carry merge mismatch: %+v vs %+v", parts, e)
	}
}
