package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasic(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic dataset is 4; unbiased = 32/7.
	if !almostEqual(a.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", a.Min(), a.Max())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.Min() != 0 || a.Max() != 0 || a.CI95HalfWidth() != 0 {
		t.Fatal("zero-value accumulator should report zeros")
	}
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 || a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatalf("single-sample accumulator wrong: %s", a.String())
	}
}

func TestAccumulatorMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// quick may generate NaN/Inf-prone values; keep them bounded.
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) < 2 {
			return true
		}
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		tol := 1e-6 * (1 + math.Abs(wantVar))
		return almostEqual(a.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almostEqual(a.Variance(), wantVar, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {1, 50}, {0.5, 35}, {0.25, 20}, {0.75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{1, 2}, 0.5); !almostEqual(got, 1.5, 1e-9) {
		t.Errorf("median of {1,2} = %v, want 1.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, c := range []struct {
		xs []float64
		p  float64
	}{
		{nil, 0.5}, {[]float64{1}, -0.1}, {[]float64{1}, 1.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Percentile(%v, %v) did not panic", c.xs, c.p)
				}
			}()
			Percentile(c.xs, c.p)
		}()
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("equal shares: %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("single hog: %v, want 0.25", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero: %v, want 0", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty: %v, want 0", got)
	}
}

// A negative share is a caller bug — it silently pushes the index outside
// [1/n, 1] — so JainIndex rejects it with a panic, like Exact.Add does for
// negative samples.
func TestJainIndexRejectsNegativeShares(t *testing.T) {
	for _, shares := range [][]float64{{-1}, {1, -0.5, 2}, {0, 0, -0.0001}} {
		shares := shares
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("JainIndex(%v) did not panic", shares)
				}
			}()
			JainIndex(shares)
		}()
	}
}

func TestJainIndexRange(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		shares := make([]float64, len(raw))
		all0 := true
		for i, v := range raw {
			shares[i] = float64(v)
			if v != 0 {
				all0 = false
			}
		}
		j := JainIndex(shares)
		if all0 {
			return j == 0
		}
		lo := 1/float64(len(shares)) - 1e-9
		return j >= lo && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bucket1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Fatalf("bucket4 = %d, want 1", h.Counts[4])
	}
	if h.N() != 7 {
		t.Fatalf("N = %d, want 7", h.N())
	}
	if got := h.BucketMid(0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("BucketMid(0) = %v, want 1", got)
	}
}

func TestHistogramInvalid(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		n      int
	}{{0, 0, 4}, {1, 0, 4}, {0, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v,%v,%d) did not panic", c.lo, c.hi, c.n)
				}
			}()
			NewHistogram(c.lo, c.hi, c.n)
		}()
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}
