package stats

import "fmt"

// This file is the quantitative fairness toolkit: a streaming monitor that
// folds a run's grant stream (master, start cycle, hold) into per-window
// bandwidth shares and derives three families of metrics from them —
//
//   - windowed Jain trajectories: Jain's index of the per-master held-cycle
//     shares inside each observation window, a time series exposing when a
//     policy is fair on average but unfair at short timescales;
//   - share error: the total-variation distance 0.5·Σ|share_i − entitle_i|
//     between observed and entitled bandwidth shares, in [0, 1], both per
//     window (worst/mean) and over the whole run;
//   - starvation age: the longest span any master waited between two
//     consecutive occupancies of the bus (or between run start/end and its
//     nearest occupancy), the metric that catches policies that are fair in
//     aggregate while locking a master out for long stretches.
//
// Windows holding no bus traffic at all are skipped rather than recorded:
// an empty window has no shares to be fair or unfair about, and skipping it
// is what makes the recorded Jain trajectory lie in [1/n, 1] universally.

// FairnessReport is the digest of one run's grant stream.
type FairnessReport struct {
	// Masters is the population size n.
	Masters int
	// Window is the observation window width in cycles.
	Window int64
	// Grants and Held are per-master totals over the run.
	Grants []int64
	Held   []int64
	// Share is each master's fraction of all held cycles (zero vector when
	// the run held no traffic).
	Share []float64
	// Entitle is the normalised entitlement vector the shares are compared
	// against (weights normalised to sum 1).
	Entitle []float64
	// ShareErr is the run-level total-variation distance between Share and
	// Entitle, in [0, 1]: 0 = perfectly entitled, 1 = completely misdirected.
	ShareErr float64
	// Jain is the windowed Jain-index trajectory, one entry per non-empty
	// window in time order, each in [1/n, 1].
	Jain []float64
	// JainOverall is Jain's index of the run-level shares.
	JainOverall float64
	// WindowShareErr is the per-window share-error trajectory, aligned
	// with Jain.
	WindowShareErr []float64
	// MaxShareErr and MeanShareErr summarise WindowShareErr (0 when no
	// window closed).
	MaxShareErr  float64
	MeanShareErr float64
	// StarveAge is each master's longest grant-to-grant gap in cycles,
	// including the leading gap from cycle 0 and the trailing gap to the
	// end cycle handed to Finish.
	StarveAge []int64
	// MaxStarveAge is the worst StarveAge entry.
	MaxStarveAge int64
}

// Fairness is the streaming monitor. Feed it the run's grants in cycle
// order via OnGrant, then call Finish once with the run's end cycle to
// close the last window and obtain the report. The zero value is not
// usable; construct with NewFairness.
type Fairness struct {
	n       int
	window  int64
	entitle []float64

	winStart int64
	winHeld  []int64
	winTotal int64

	grants []int64
	held   []int64
	total  int64

	last     []int64 // cycle each master's previous occupancy ended
	starve   []int64
	lastSeen int64 // latest grant-end observed, for Finish validation

	jain     []float64
	shareErr []float64

	shares   []float64 // scratch
	finished bool
}

// NewFairness builds a monitor over n masters with the given observation
// window (in cycles) and entitlement weights (nil = equal; otherwise one
// positive weight per master, normalised internally).
func NewFairness(n int, window int64, weights []int64) *Fairness {
	if n <= 0 {
		panic(fmt.Sprintf("stats: NewFairness: n = %d, need > 0", n))
	}
	if window <= 0 {
		panic(fmt.Sprintf("stats: NewFairness: window = %d, need > 0", window))
	}
	f := &Fairness{
		n:       n,
		window:  window,
		entitle: make([]float64, n),
		winHeld: make([]int64, n),
		grants:  make([]int64, n),
		held:    make([]int64, n),
		last:    make([]int64, n),
		starve:  make([]int64, n),
		shares:  make([]float64, n),
	}
	switch {
	case weights == nil:
		for i := range f.entitle {
			f.entitle[i] = 1 / float64(n)
		}
	case len(weights) != n:
		panic(fmt.Sprintf("stats: NewFairness: %d weights for %d masters", len(weights), n))
	default:
		var sum float64
		for i, w := range weights {
			if w < 1 {
				panic(fmt.Sprintf("stats: NewFairness: weights[%d] = %d, need ≥ 1", i, w))
			}
			sum += float64(w)
		}
		for i, w := range weights {
			f.entitle[i] = float64(w) / sum
		}
	}
	return f
}

// OnGrant folds one grant into the monitor: master m occupied the bus for
// hold cycles starting at cycle. Grants must arrive in non-decreasing start
// order (the order the bus emits them). Held cycles spanning a window
// boundary are split across the windows they fall in.
func (f *Fairness) OnGrant(m int, cycle, hold int64) {
	if f.finished {
		panic("stats: Fairness.OnGrant after Finish")
	}
	if m < 0 || m >= f.n {
		panic(fmt.Sprintf("stats: Fairness.OnGrant: master %d of %d", m, f.n))
	}
	if hold < 1 {
		panic(fmt.Sprintf("stats: Fairness.OnGrant: hold = %d, need ≥ 1", hold))
	}
	if cycle < f.winStart {
		panic(fmt.Sprintf("stats: Fairness.OnGrant: cycle %d precedes the open window at %d", cycle, f.winStart))
	}
	if age := cycle - f.last[m]; age > f.starve[m] {
		f.starve[m] = age
	}
	f.grants[m]++
	end := cycle + hold
	f.last[m] = end
	if end > f.lastSeen {
		f.lastSeen = end
	}
	for pos := cycle; pos < end; {
		f.advanceTo(pos)
		chunk := f.winStart + f.window - pos
		if rest := end - pos; rest < chunk {
			chunk = rest
		}
		f.winHeld[m] += chunk
		f.held[m] += chunk
		f.winTotal += chunk
		f.total += chunk
		pos += chunk
	}
}

// advanceTo closes windows until cycle falls inside the open one. Non-empty
// windows are recorded; runs of empty windows are skipped in one hop.
func (f *Fairness) advanceTo(cycle int64) {
	for cycle >= f.winStart+f.window {
		if f.winTotal > 0 {
			f.closeWindow()
			f.winStart += f.window
		} else {
			f.winStart += (cycle - f.winStart) / f.window * f.window
		}
	}
}

// closeWindow records the open window's Jain index and share error and
// clears it. Only called with winTotal > 0.
func (f *Fairness) closeWindow() {
	for i, h := range f.winHeld {
		f.shares[i] = float64(h) / float64(f.winTotal)
		f.winHeld[i] = 0
	}
	f.winTotal = 0
	f.jain = append(f.jain, JainIndex(f.shares))
	f.shareErr = append(f.shareErr, tvDistance(f.shares, f.entitle))
}

// Finish closes the monitor at the run's end cycle and returns the report.
// The end cycle must be at or past every observed grant's completion; the
// trailing idle span counts toward each master's starvation age.
func (f *Fairness) Finish(end int64) FairnessReport {
	if f.finished {
		panic("stats: Fairness.Finish called twice")
	}
	if end < f.lastSeen {
		panic(fmt.Sprintf("stats: Fairness.Finish(%d) precedes the last grant end %d", end, f.lastSeen))
	}
	f.finished = true
	if f.winTotal > 0 {
		f.closeWindow()
	}
	rep := FairnessReport{
		Masters: f.n,
		Window:  f.window,
		Grants:  f.grants,
		Held:    f.held,
		Share:   make([]float64, f.n),
		Entitle: f.entitle,
		Jain:    f.jain,
		// Finish owns the monitor's slices now; no further mutation.
		WindowShareErr: f.shareErr,
		StarveAge:      f.starve,
	}
	for m := range f.starve {
		if age := end - f.last[m]; age > f.starve[m] {
			f.starve[m] = age
		}
		if f.starve[m] > rep.MaxStarveAge {
			rep.MaxStarveAge = f.starve[m]
		}
	}
	if f.total > 0 {
		for i, h := range f.held {
			rep.Share[i] = float64(h) / float64(f.total)
		}
		rep.JainOverall = JainIndex(rep.Share)
		rep.ShareErr = tvDistance(rep.Share, f.entitle)
	}
	var sum float64
	for _, e := range f.shareErr {
		sum += e
		if e > rep.MaxShareErr {
			rep.MaxShareErr = e
		}
	}
	if len(f.shareErr) > 0 {
		rep.MeanShareErr = sum / float64(len(f.shareErr))
	}
	return rep
}

// tvDistance is the total-variation distance 0.5·Σ|a_i − b_i| between two
// share vectors, in [0, 1] when both sum to ≤ 1.
func tvDistance(a, b []float64) float64 {
	var d float64
	for i := range a {
		if diff := a[i] - b[i]; diff >= 0 {
			d += diff
		} else {
			d -= diff
		}
	}
	return d / 2
}
