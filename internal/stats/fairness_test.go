package stats

import (
	"math"
	"testing"

	"creditbus/internal/rng"
)

// TestFairnessWindowedJainRange is the range property: over random grant
// streams — random masters, holds, idle gaps, window widths — every
// recorded windowed Jain index lies in [1/n, 1], and so do the trajectory
// summaries. Empty windows are skipped, which is exactly what makes the
// lower bound hold.
func TestFairnessWindowedJainRange(t *testing.T) {
	src := rng.New(41)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(12)
		window := int64(1 + src.Intn(300))
		f := NewFairness(n, window, nil)
		cycle := int64(src.Intn(50))
		for g, grants := 0, 1+src.Intn(120); g < grants; g++ {
			hold := int64(1 + src.Intn(60))
			f.OnGrant(src.Intn(n), cycle, hold)
			cycle += hold
			if src.Intn(3) == 0 {
				cycle += int64(src.Intn(2000)) // long idle gaps: empty windows
			}
		}
		rep := f.Finish(cycle + int64(src.Intn(100)))
		lo := 1/float64(n) - 1e-12
		for i, j := range rep.Jain {
			if j < lo || j > 1+1e-12 {
				t.Fatalf("trial %d: window %d Jain = %v outside [1/%d, 1]", trial, i, j, n)
			}
		}
		if len(rep.Jain) > 0 && (rep.JainOverall < lo || rep.JainOverall > 1+1e-12) {
			t.Fatalf("trial %d: overall Jain = %v outside [1/%d, 1]", trial, rep.JainOverall, n)
		}
		for i, e := range rep.WindowShareErr {
			if e < 0 || e > 1+1e-12 {
				t.Fatalf("trial %d: window %d share error = %v outside [0, 1]", trial, i, e)
			}
		}
	}
}

// TestFairnessPerfectEntitlement: a trace that hands every master exactly
// its entitled share inside every window has zero share error everywhere
// and a flat trajectory.
func TestFairnessPerfectEntitlement(t *testing.T) {
	// Weights 3:1 over 2 masters, window 64: per window master 0 holds 48
	// cycles, master 1 holds 16 — exactly the 3/4 : 1/4 entitlement.
	f := NewFairness(2, 64, []int64{3, 1})
	cycle := int64(0)
	for w := 0; w < 10; w++ {
		f.OnGrant(0, cycle, 48)
		cycle += 48
		f.OnGrant(1, cycle, 16)
		cycle += 16
	}
	rep := f.Finish(cycle)
	if len(rep.Jain) != 10 {
		t.Fatalf("recorded %d windows, want 10", len(rep.Jain))
	}
	if rep.ShareErr != 0 || rep.MaxShareErr != 0 || rep.MeanShareErr != 0 {
		t.Fatalf("perfectly entitled trace: ShareErr=%v Max=%v Mean=%v, want all 0",
			rep.ShareErr, rep.MaxShareErr, rep.MeanShareErr)
	}
	for i, e := range rep.WindowShareErr {
		if e != 0 {
			t.Fatalf("window %d share error = %v, want 0", i, e)
		}
	}
	// 3:1 shares have Jain (0.75+0.25)^2 / (2·(0.5625+0.0625)) = 0.8.
	for i, j := range rep.Jain {
		if math.Abs(j-0.8) > 1e-12 {
			t.Fatalf("window %d Jain = %v, want 0.8", i, j)
		}
	}
}

// TestFairnessStarvationResets: the starvation age is the longest single
// gap between occupancies, not an accumulation — every grant resets the
// open gap, and leading/trailing idle spans count.
func TestFairnessStarvationResets(t *testing.T) {
	f := NewFairness(3, 100, nil)
	// Master 0: granted at 90, 190, ..., 990 (gap 90 between occupancies).
	// Master 1: granted once at 500 (leading gap 500, trailing 1200-510).
	// Master 2: never granted (gap = full span).
	for c := int64(90); c < 1000; c += 100 {
		f.OnGrant(0, c, 10)
		if c == 490 {
			f.OnGrant(1, 500, 10)
		}
	}
	rep := f.Finish(1200)
	if got := rep.StarveAge[0]; got != 200 {
		// Last occupancy of master 0 ends at 1000; trailing gap = 200 > the
		// steady 90-cycle inter-grant gap.
		t.Fatalf("StarveAge[0] = %d, want 200", got)
	}
	if got := rep.StarveAge[1]; got != 690 {
		t.Fatalf("StarveAge[1] = %d, want 690 (trailing 1200-510)", got)
	}
	if got := rep.StarveAge[2]; got != 1200 {
		t.Fatalf("StarveAge[2] = %d, want 1200", got)
	}
	if rep.MaxStarveAge != 1200 {
		t.Fatalf("MaxStarveAge = %d, want 1200", rep.MaxStarveAge)
	}
	// With a regular 100-cycle grant cadence the steady-state age never
	// accumulates: re-run master 0's cadence alone over 10× the span and the
	// max gap stays put at the trailing value.
	g := NewFairness(1, 100, nil)
	for c := int64(90); c < 10000; c += 100 {
		g.OnGrant(0, c, 10)
	}
	if got := g.Finish(10000).StarveAge[0]; got != 90 {
		t.Fatalf("steady cadence StarveAge = %d, want 90", got)
	}
}

// TestFairnessWindowSplit: a hold spanning window boundaries is split
// across the windows its cycles fall in.
func TestFairnessWindowSplit(t *testing.T) {
	f := NewFairness(2, 10, nil)
	f.OnGrant(0, 5, 10) // cycles 5..14: 5 in window [0,10), 5 in [10,20)
	f.OnGrant(1, 15, 5) // cycles 15..19: window [10,20)
	rep := f.Finish(20)
	if len(rep.Jain) != 2 {
		t.Fatalf("recorded %d windows, want 2", len(rep.Jain))
	}
	if rep.Jain[0] != 0.5 {
		t.Fatalf("window 0 Jain = %v, want 0.5 (one master holds all 5 cycles)", rep.Jain[0])
	}
	if rep.Jain[1] != 1 {
		t.Fatalf("window 1 Jain = %v, want 1 (5/5 split)", rep.Jain[1])
	}
	if rep.Held[0] != 10 || rep.Held[1] != 5 {
		t.Fatalf("Held = %v, want [10 5]", rep.Held)
	}
}

// TestFairnessContractPanics: constructor and stream misuse panic loudly,
// mirroring Exact.Add's negative-sample contract.
func TestFairnessContractPanics(t *testing.T) {
	cases := []struct {
		name string
		run  func()
	}{
		{"zero-n", func() { NewFairness(0, 10, nil) }},
		{"zero-window", func() { NewFairness(2, 0, nil) }},
		{"weight-count", func() { NewFairness(2, 10, []int64{1}) }},
		{"weight-zero", func() { NewFairness(2, 10, []int64{1, 0}) }},
		{"master-range", func() { NewFairness(2, 10, nil).OnGrant(2, 0, 1) }},
		{"zero-hold", func() { NewFairness(2, 10, nil).OnGrant(0, 0, 0) }},
		{"regressing-cycle", func() {
			f := NewFairness(2, 10, nil)
			f.OnGrant(0, 50, 1)
			f.OnGrant(1, 3, 1)
		}},
		{"double-finish", func() {
			f := NewFairness(2, 10, nil)
			f.Finish(0)
			f.Finish(0)
		}},
		{"grant-after-finish", func() {
			f := NewFairness(2, 10, nil)
			f.Finish(0)
			f.OnGrant(0, 0, 1)
		}},
		{"early-finish", func() {
			f := NewFairness(2, 10, nil)
			f.OnGrant(0, 0, 8)
			f.Finish(4)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.run()
		})
	}
}
