package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// Exact is a streaming moment accumulator over integer samples whose state
// is bit-exact under merging: count, sum, minimum, maximum and the sum of
// squares are all held as integers (the squares in 128 bits), so Merge is
// associative AND commutative down to the last bit — unlike floating-point
// Welford merging, where the merge order perturbs the low mantissa bits.
// That exactness is what lets a sharded campaign fold each shard's samples
// independently and still produce a merged state byte-identical to the
// single-process fold, whatever the shard count (see internal/shard).
//
// Execution times, wall cycles and bus-occupancy counts are all integer
// cycle quantities, so the integer restriction costs nothing. Derived
// statistics (Mean, Variance, Jain) are computed from the exact state at
// report time; they are deterministic functions of the integers, so equal
// states always render equal reports.
//
// Range: Sum accumulates in int64 (overflow at ~9.2e18, i.e. 10^8 samples
// of ~9e10 cycles each), the squared sum in 128 bits (overflow practically
// unreachable). Samples must be non-negative — cycle counts always are —
// which Add enforces.
type Exact struct {
	// Count is the number of samples folded in.
	Count int64 `json:"n"`
	// Sum is the exact sample sum.
	Sum int64 `json:"sum"`
	// SumSqHi and SumSqLo are the exact 128-bit sum of squared samples.
	SumSqHi uint64 `json:"sumsq_hi"`
	SumSqLo uint64 `json:"sumsq_lo"`
	// MinV and MaxV are the extreme samples (undefined while Count == 0).
	MinV int64 `json:"min"`
	MaxV int64 `json:"max"`
}

// Add folds one sample into the accumulator. It panics on a negative
// sample: the accumulator is for cycle counts, where a negative value can
// only be an upstream bug.
func (e *Exact) Add(x int64) {
	if x < 0 {
		panic(fmt.Sprintf("stats: Exact.Add(%d): negative sample", x))
	}
	if e.Count == 0 {
		e.MinV, e.MaxV = x, x
	} else {
		if x < e.MinV {
			e.MinV = x
		}
		if x > e.MaxV {
			e.MaxV = x
		}
	}
	e.Count++
	e.Sum += x
	hi, lo := bits.Mul64(uint64(x), uint64(x))
	var carry uint64
	e.SumSqLo, carry = bits.Add64(e.SumSqLo, lo, 0)
	e.SumSqHi, _ = bits.Add64(e.SumSqHi, hi, carry)
}

// Merge folds another accumulator's samples into e, exactly as if every one
// of o's samples had been Added to e individually — in any order, because
// every component (count, sum, min, max, 128-bit squares) is commutative
// and associative in exact integer arithmetic.
func (e *Exact) Merge(o Exact) {
	if o.Count == 0 {
		return
	}
	if e.Count == 0 {
		*e = o
		return
	}
	if o.MinV < e.MinV {
		e.MinV = o.MinV
	}
	if o.MaxV > e.MaxV {
		e.MaxV = o.MaxV
	}
	e.Count += o.Count
	e.Sum += o.Sum
	var carry uint64
	e.SumSqLo, carry = bits.Add64(e.SumSqLo, o.SumSqLo, 0)
	e.SumSqHi, _ = bits.Add64(e.SumSqHi, o.SumSqHi, carry)
}

// N returns the number of samples folded in.
func (e Exact) N() int64 { return e.Count }

// Min returns the smallest sample, or 0 with no samples.
func (e Exact) Min() int64 {
	if e.Count == 0 {
		return 0
	}
	return e.MinV
}

// Max returns the largest sample, or 0 with no samples.
func (e Exact) Max() int64 {
	if e.Count == 0 {
		return 0
	}
	return e.MaxV
}

// sumSq returns the 128-bit squared sum as a float64 — the single rounding
// step of the derived statistics. Equal exact states give equal floats.
func (e Exact) sumSq() float64 {
	return float64(e.SumSqHi)*0x1p64 + float64(e.SumSqLo)
}

// Mean returns the sample mean, or 0 with no samples.
func (e Exact) Mean() float64 {
	if e.Count == 0 {
		return 0
	}
	return float64(e.Sum) / float64(e.Count)
}

// Variance returns the unbiased sample variance, derived from the exact
// moments (Σx² − (Σx)²/n)/(n−1), or 0 with fewer than two samples. Clamped
// at 0 against the subtraction's rounding.
func (e Exact) Variance() float64 {
	if e.Count < 2 {
		return 0
	}
	n := float64(e.Count)
	s := float64(e.Sum)
	v := (e.sumSq() - s*s/n) / (n - 1)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (e Exact) StdDev() float64 { return math.Sqrt(e.Variance()) }

// Jain returns Jain's fairness index of the samples, (Σx)²/(n·Σx²) —
// 1.0 when every sample is equal, 1/n when a single sample holds
// everything — derived from the exact moments. Returns 0 with no samples or
// an all-zero sum of squares.
func (e Exact) Jain() float64 {
	if e.Count == 0 {
		return 0
	}
	sq := e.sumSq()
	if sq == 0 {
		return 0
	}
	s := float64(e.Sum)
	return s * s / (float64(e.Count) * sq)
}

// String summarises the accumulator for logs.
func (e Exact) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%d max=%d",
		e.Count, e.Mean(), e.StdDev(), e.Min(), e.Max())
}
