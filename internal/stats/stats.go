// Package stats provides the small statistical toolkit shared by the
// simulator, the MBPTA analysis and the experiment harness: streaming
// moments, percentiles, histograms, confidence intervals and the Jain
// fairness index used to quantify bandwidth fairness across bus masters.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming mean and variance with Welford's algorithm,
// plus min and max. The zero value is ready to use.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples added.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean, or 0 with no samples.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest sample, or 0 with no samples.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// CI95HalfWidth returns the half width of the normal-approximation 95%
// confidence interval of the mean (z = 1.96). It returns 0 with fewer than
// two samples.
func (a *Accumulator) CI95HalfWidth() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// String summarises the accumulator for logs.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		a.n, a.Mean(), a.StdDev(), a.Min(), a.Max())
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default). It panics
// on an empty slice or p outside [0,1]. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: Percentile p=%v outside [0,1]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// JainIndex computes Jain's fairness index of the shares:
// (sum x)^2 / (n * sum x^2). It is 1.0 for perfectly equal shares and 1/n
// when a single contender takes everything. Returns 0 if all shares are zero.
// Shares are allocations — a negative share has no meaning and would also
// silently break the [1/n, 1] range (negative terms cancel in the numerator
// but not in the sum of squares), so negative inputs panic, matching
// Exact.Add's contract for negative samples.
func JainIndex(shares []float64) float64 {
	if len(shares) == 0 {
		return 0
	}
	var sum, sumsq float64
	for i, x := range shares {
		if x < 0 {
			panic(fmt.Sprintf("stats: JainIndex: shares[%d] = %v: negative share", i, x))
		}
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(shares)) * sumsq)
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi). Samples outside
// the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int64
	Under   int64
	Over    int64
	samples int64
}

// NewHistogram builds a histogram with n buckets covering [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}
}

// Add places x in its bucket.
func (h *Histogram) Add(x float64) {
	h.samples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard against FP rounding at the upper edge
			i--
		}
		h.Counts[i]++
	}
}

// N returns the total number of samples added, including out-of-range ones.
func (h *Histogram) N() int64 { return h.samples }

// BucketMid returns the midpoint value of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
