// Package rng provides the deterministic pseudo-random substrate used by all
// randomised components of the simulator: random-permutation and lottery bus
// arbitration, random cache placement and replacement, and workload
// randomisation.
//
// It stands in for the APRANDBANK hardware module of the paper's LEON3
// platform (Agirre et al., "IEC-61508 SIL 3-compliant pseudo-random number
// generators for probabilistic timing analysis", DSD 2015), which delivers
// random bits to the arbiter every cycle. The generator is xoshiro256**,
// seeded through SplitMix64 so that any 64-bit seed yields a well-mixed
// state. Streams are cheap value types; every consumer owns its own stream so
// that component randomness is independent and runs are reproducible from a
// single master seed.
package rng

import "fmt"

// Stream is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not valid; construct streams with New or Split.
type Stream struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances x by the SplitMix64 sequence and returns the next
// output. It is used only for seeding.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from seed. Distinct seeds give statistically
// independent sequences.
func New(seed uint64) *Stream {
	var st Stream
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four zero outputs in a row, but Reseed guards anyway.
	st.Reseed(seed)
	return &st
}

// Reseed reinitialises s in place to the exact state New(seed) returns.
// It exists for state pooling: components that are recycled between
// simulation runs (caches, arbitration policies) re-arm their streams
// without allocating, and a reseeded stream is bit-identical to a fresh
// one — the property the machine-reuse differential tests pin down.
func (s *Stream) Reseed(seed uint64) {
	sm := seed
	s.s0 = splitMix64(&sm)
	s.s1 = splitMix64(&sm)
	s.s2 = splitMix64(&sm)
	s.s3 = splitMix64(&sm)
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

// Split derives an independent child stream. The child's sequence does not
// overlap usefully with the parent's: it is seeded from the parent's next
// output mixed with a per-call constant, so repeated Splits give distinct
// streams while leaving the parent usable.
func (s *Stream) Split() *Stream {
	return New(s.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed random bits.
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed random bits.
func (s *Stream) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Rejection sampling (Lemire's method without bias) keeps the distribution
// exact, which matters for arbitration fairness tests.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	un := uint64(n)
	// Fast path for powers of two.
	if un&(un-1) == 0 {
		return int(s.Uint64() & (un - 1))
	}
	// Rejection sampling on the top bits.
	limit := ^uint64(0) - ^uint64(0)%un
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % un)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (s *Stream) Int63() int64 { return int64(s.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random bit as a bool.
func (s *Stream) Bool() bool { return s.Uint64()&1 == 1 }

// Perm fills p with a uniform random permutation of 0..len(p)-1 using
// Fisher-Yates. Passing the slice in avoids per-arbitration allocation in the
// bus hot loop.
func (s *Stream) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// WeightedChoice draws an index with probability proportional to weights[i].
// Weights must be non-negative with a positive sum; otherwise it panics.
// This is the LOTTERYBUS ticket draw.
func (s *Stream) WeightedChoice(weights []int64) int {
	var total int64
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("rng: negative weight %d at index %d", w, i))
		}
		total += w
	}
	if total <= 0 {
		panic("rng: WeightedChoice with zero total weight")
	}
	t := int64(s.Uint64() % uint64(total))
	for i, w := range weights {
		if t < w {
			return i
		}
		t -= w
	}
	// Unreachable: t < total and the loop subtracts every weight.
	panic("rng: WeightedChoice fell through")
}
