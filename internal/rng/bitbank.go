package rng

// BitBank models the APRANDBANK module of the paper's platform: a bank that
// delivers a fixed number of fresh random bits every clock cycle to the
// arbiter. Consumers call Tick once per simulated cycle and then read bits
// from the current word. Reading more bits than the bank width in one cycle
// is a modelling error and panics, mirroring the hardware constraint that the
// arbiter can only consume the bits the bank produced that cycle.
type BitBank struct {
	src   *Stream
	width int
	word  uint64
	left  int
	cycle int64
}

// NewBitBank returns a bank producing width random bits per cycle
// (1 <= width <= 64), seeded from seed.
func NewBitBank(seed uint64, width int) *BitBank {
	if width < 1 || width > 64 {
		panic("rng: BitBank width must be in [1,64]")
	}
	return &BitBank{src: New(seed), width: width}
}

// Tick advances the bank to the next cycle, producing a fresh word of
// random bits.
func (b *BitBank) Tick() {
	b.word = b.src.Uint64() & (^uint64(0) >> (64 - uint(b.width)))
	b.left = b.width
	b.cycle++
}

// Cycle returns the number of Ticks performed so far.
func (b *BitBank) Cycle() int64 { return b.cycle }

// Bits consumes n bits from the current cycle's word. It panics if more bits
// are requested than remain this cycle, or if called before the first Tick.
func (b *BitBank) Bits(n int) uint64 {
	if n <= 0 || n > b.left {
		panic("rng: BitBank over-consumed (call Tick, and stay within width)")
	}
	v := b.word & ((1 << uint(n)) - 1)
	b.word >>= uint(n)
	b.left -= n
	return v
}

// Remaining reports how many bits can still be consumed this cycle.
func (b *BitBank) Remaining() int { return b.left }
