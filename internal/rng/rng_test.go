package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams with equal seeds diverged at step %d: %x != %x", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with distinct seeds agreed %d/1000 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		t.Fatal("zero seed produced all-zero xoshiro state")
	}
	// The stream must still produce varied output.
	first := s.Uint64()
	varied := false
	for i := 0; i < 10; i++ {
		if s.Uint64() != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("zero-seeded stream produced constant output")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams agreed %d/1000 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 8, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square test over 10 buckets; threshold is the 0.999 quantile for
	// 9 degrees of freedom (27.88) to keep the test deterministic and robust.
	s := New(99)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("Intn chi-square %.2f exceeds 27.88; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := make([]int, 16)
	for iter := 0; iter < 100; iter++ {
		s.Perm(p)
		seen := make(map[int]bool, len(p))
		for _, v := range p {
			if v < 0 || v >= len(p) || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// Every index should appear in position 0 about equally often.
	s := New(13)
	p := make([]int, 4)
	counts := make([]int, 4)
	const draws = 40000
	for i := 0; i < draws; i++ {
		s.Perm(p)
		counts[p[0]]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("position-0 frequency of %d is %.3f, want ~0.25 (counts=%v)", i, frac, counts)
		}
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	s := New(17)
	weights := []int64{1, 2, 3, 4}
	counts := make([]int, 4)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	for i, w := range weights {
		want := float64(w) / 10
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("weight %d: frequency %.3f, want %.3f", i, got, want)
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	cases := [][]int64{{}, {0, 0}, {-1, 2}}
	for _, ws := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("WeightedChoice(%v) did not panic", ws)
				}
			}()
			New(1).WeightedChoice(ws)
		}()
	}
}

func TestQuickIntnInRange(t *testing.T) {
	s := New(23)
	f := func(n uint16, _ uint8) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitBankWidthAndDeterminism(t *testing.T) {
	a := NewBitBank(31, 8)
	b := NewBitBank(31, 8)
	for i := 0; i < 100; i++ {
		a.Tick()
		b.Tick()
		if av, bv := a.Bits(8), b.Bits(8); av != bv {
			t.Fatalf("bit banks with equal seeds diverged at cycle %d", i)
		}
		if av := a.Remaining(); av != 0 {
			t.Fatalf("remaining after full consume = %d, want 0", av)
		}
	}
	if a.Cycle() != 100 {
		t.Fatalf("cycle count = %d, want 100", a.Cycle())
	}
}

func TestBitBankPartialConsume(t *testing.T) {
	b := NewBitBank(5, 16)
	b.Tick()
	v1 := b.Bits(4)
	v2 := b.Bits(12)
	if v1 > 0xF || v2 > 0xFFF {
		t.Fatalf("bit fields exceed widths: %x %x", v1, v2)
	}
	if b.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", b.Remaining())
	}
}

func TestBitBankOverconsumePanics(t *testing.T) {
	b := NewBitBank(5, 4)
	b.Tick()
	b.Bits(4)
	defer func() {
		if recover() == nil {
			t.Fatal("over-consuming BitBank did not panic")
		}
	}()
	b.Bits(1)
}

func TestBitBankBadWidthPanics(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewBitBank width=%d did not panic", w)
				}
			}()
			NewBitBank(1, w)
		}()
	}
}

func TestBitBankBitBalance(t *testing.T) {
	// Each bit position should be ~50% ones.
	b := NewBitBank(77, 8)
	var ones [8]int
	const cycles = 20000
	for i := 0; i < cycles; i++ {
		b.Tick()
		w := b.Bits(8)
		for j := 0; j < 8; j++ {
			if w>>uint(j)&1 == 1 {
				ones[j]++
			}
		}
	}
	for j, c := range ones {
		frac := float64(c) / cycles
		if math.Abs(frac-0.5) > 0.02 {
			t.Fatalf("bit %d balance %.3f, want ~0.5", j, frac)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkPerm4(b *testing.B) {
	s := New(1)
	p := make([]int, 4)
	for i := 0; i < b.N; i++ {
		s.Perm(p)
	}
}
