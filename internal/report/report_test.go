package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "beta", "2.500", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "c", "col2")
	tb.AddRow("longercell", "x")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count = %d: %q", len(lines), sb.String())
	}
	// All lines equal width (right-padded).
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned lines: %q", lines)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `q"z`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"q\"\"z\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty column table accepted")
			}
		}()
		NewTable("x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ragged row accepted")
			}
		}()
		NewTable("x", "a", "b").AddRow("only-one")
	}()
}
