package report

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "beta", "2.500", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "c", "col2")
	tb.AddRow("longercell", "x")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count = %d: %q", len(lines), sb.String())
	}
	// All lines equal width (right-padded).
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned lines: %q", lines)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `q"z`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"q\"\"z\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty column table accepted")
			}
		}()
		NewTable("x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ragged row accepted")
			}
		}()
		NewTable("x", "a", "b").AddRow("only-one")
	}()
}

// TestTableAlignmentUnicode: column widths count runes, not bytes — a cell
// of multi-byte glyphs must align with plain-ASCII neighbours. Each
// rendered line's rune count must agree (byte counts legitimately differ).
func TestTableAlignmentUnicode(t *testing.T) {
	tb := NewTable("", "policy", "p99 (µs)")
	tb.AddRow("naïve-RR", "1.250")
	tb.AddRow("PF", "0.875")
	tb.AddRow("ほげ", "12.000")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d: %q", len(lines), sb.String())
	}
	first := utf8.RuneCountInString(lines[0])
	for i, ln := range lines {
		if got := utf8.RuneCountInString(ln); got != first {
			t.Errorf("line %d is %d runes, line 0 is %d: %q", i, got, first, lines)
		}
	}
	// The separator matches the widest column in display positions: "p99
	// (µs)" is 8 runes (9 bytes) — a byte-width separator would be 9 dashes.
	if !strings.Contains(sb.String(), "--------") || strings.Contains(sb.String(), "---------") {
		t.Errorf("separator not sized in runes:\n%s", sb.String())
	}
}

// TestCSVEscapesControlBytes: cells bearing \r or \n must be quoted — an
// unquoted CR splits the record on CR-tolerant readers.
func TestCSVEscapesControlBytes(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("line1\rline2", "x\ny")
	tb.AddRow("plain", "ügly")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"line1\rline2\",\"x\ny\"\nplain,ügly\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}
