// Package report renders the experiment harness's tables as aligned ASCII
// (for the terminal) and CSV (for plotting) — the textual equivalents of
// the paper's Table I and Figure 1.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	if len(columns) == 0 {
		panic("report: table needs at least one column")
	}
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it panics if the cell count mismatches the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v, floats with 3 decimals.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3f", x)
		case float32:
			cells[i] = fmt.Sprintf("%.3f", x)
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) error {
	// Column widths count runes, not bytes: byte lengths over-pad every
	// column holding a multi-byte cell (µs units, policy names with
	// non-ASCII glyphs) and misalign the whole table.
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); n > widths[i] {
				widths[i] = n
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the table as CSV (header + rows). Cells containing commas,
// quotes, newlines or carriage returns are quoted per RFC 4180.
func (t *Table) WriteCSV(w io.Writer) error {
	rows := append([][]string{t.Columns}, t.rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = csvEscape(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a cell when RFC 4180 requires it: commas, quotes and
// both newline bytes — a bare \r inside an unquoted field splits the record
// on readers that accept CR line endings.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// pad right-pads s to w display positions, counting runes (see Fprint).
func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}
