// Package scengen turns the curated 25-scenario corpus into an unbounded,
// self-checking scenario space: a seeded, deterministic random generator of
// valid scenario.Spec documents (Generate) plus an invariant-oracle layer
// (Check) that validates every run against closed-form properties of the
// paper's credit-based arbitration instead of golden snapshots — engine
// differential equality, bus work conservation, Eq. 1 budget bounds and
// weighted-share caps, and metamorphic contention monotonicity. Minimize
// shrinks a failing spec to a small repro. cmd/scenfuzz drives millions of
// generated scenarios through the oracles on the campaign worker pool;
// FuzzScenario feeds the same generator from native fuzzing bytes.
//
// DESIGN.md §8 documents the sampling space and states each oracle
// formally.
package scengen

import (
	"fmt"

	"creditbus/internal/rng"
	"creditbus/internal/scenario"
	"creditbus/internal/workload"
)

// Source supplies the generator's random choices. Two implementations
// exist: the seeded rng stream of NewSource (deterministic scenario
// campaigns, cmd/scenfuzz) and ByteSource (native fuzzing, where the fuzz
// engine's byte string IS the choice sequence, so every interesting input
// it finds is replayable as a scenario).
type Source interface {
	// Intn returns a choice in [0, n). n is always ≥ 1.
	Intn(n int) int
}

// streamSource adapts the module's splitmix/xoshiro stream.
type streamSource struct{ s *rng.Stream }

func (s streamSource) Intn(n int) int {
	if n <= 1 {
		return 0
	}
	return s.s.Intn(n)
}

// NewSource returns the seeded deterministic choice stream: equal seeds
// generate byte-identical scenario sequences on every platform.
func NewSource(seed uint64) Source { return streamSource{s: rng.New(seed)} }

// ByteSource derives choices from a fuzz input: each Intn consumes two
// bytes (big-endian) and reduces them modulo n; an exhausted input yields
// zeros, so every byte string — including the empty one — decodes to a
// complete, valid spec. The modulo bias is irrelevant here: coverage, not
// uniformity, is what fuzzing needs.
type ByteSource struct {
	Data []byte
	off  int
}

func (b *ByteSource) Intn(n int) int {
	if n <= 1 {
		return 0
	}
	var v int
	for i := 0; i < 2; i++ {
		v <<= 8
		if b.off < len(b.Data) {
			v |= int(b.Data[b.off])
			b.off++
		}
	}
	return v % n
}

// between returns a choice in [lo, hi], inclusive.
func between(src Source, lo, hi int) int { return lo + src.Intn(hi-lo+1) }

// pct returns true with probability p/100.
func pct(src Source, p int) bool { return src.Intn(100) < p }

// oneOf picks a uniform element.
func oneOf[T any](src Source, xs ...T) T { return xs[src.Intn(len(xs))] }

// Sampling-space constants. Operation counts are truncated so a generated
// scenario simulates in milliseconds and a fuzzing campaign can afford
// millions of them.
var (
	smallCores = []int{2, 2, 3, 4, 4, 4, 6, 8, 12, 16}
	policies   = []string{"RR", "FIFO", "TDMA", "LOT", "RP", "PRI", "PF", "GWF", "MTS"}
	engines    = []string{"", scenario.EngineFast, scenario.EnginePerCycle}
	// ueNames are the population workloads (see workload's UE profiles).
	ueNames = []string{"ue-stream", "ue-web", "ue-voice", "ue-mix"}
)

// drawCores samples the platform size, log-skewed: most draws stay on the
// paper-scale 2–16-core platforms where the op budget allows long programs,
// with a deliberate tail out to the supported maximum — including 257, which
// straddles a bitset word boundary — so the scale-out structures are fuzzed
// at every magnitude without the campaign's wall-clock being dominated by
// thousand-master per-cycle reference runs.
func drawCores(src Source) int {
	switch {
	case pct(src, 72):
		return oneOf(src, smallCores...)
	case pct(src, 60):
		return oneOf(src, 24, 32, 48, 64)
	case pct(src, 60):
		return oneOf(src, 96, 128, 192, 257)
	default:
		return oneOf(src, 384, 512, 768, 1024)
	}
}

// tuaOps budgets the TuA program length by platform size: the oracle layer
// replays every scenario on the per-cycle reference engine, whose cost is
// cycles × masters, and a saturated thousand-master platform makes the TuA
// wait ~N·MaxL cycles per request — so the op budget shrinks as the
// population grows to keep a generated scenario affordable.
func tuaOps(src Source, cores int) int {
	switch {
	case cores <= 16:
		return between(src, 60, 800)
	case cores <= 64:
		return between(src, 24, 120)
	case cores <= 256:
		return between(src, 8, 40)
	default:
		return between(src, 4, 12)
	}
}

// coOps budgets a finite co-runner, scaled like tuaOps.
func coOps(src Source, cores int) int {
	switch {
	case cores <= 16:
		return between(src, 50, 400)
	case cores <= 64:
		return between(src, 30, 150)
	case cores <= 256:
		return between(src, 16, 60)
	default:
		return between(src, 8, 24)
	}
}

// Generate draws one valid scenario.Spec from the full sampling space:
// cores 2–1024 (log-skewed, see drawCores), every policy, every credit kind
// with randomised num/den/cap-factor/privileged-core parameters, platform
// latency and geometry overrides, per-core workload+weight+criticality
// mixes, UE-profile population fleets on the larger platforms, all three run
// kinds, both engines and 1–2-seed schedules. The returned spec always
// passes Validate — Generate panics otherwise, which turns any gap between
// the generator and the schema's semantic rules into a fuzzing finding
// instead of a silent skip.
func Generate(src Source, name string) scenario.Spec {
	s := scenario.Spec{Name: name}
	s.Cores = drawCores(src)
	s.Policy = oneOf(src, policies...)
	s.Run = runKind(src)
	s.Engine = oneOf(src, engines...)

	// Beyond 64 masters the override is mandatory: platform() clamps the
	// memory latency there, bounding N·MaxL — the per-request wait of a
	// saturated platform — which otherwise makes per-cycle reference runs
	// take whole seconds at the top of the core range.
	if pct(src, 50) || s.Cores > 64 {
		s.Platform = platform(src, s.Cores)
	}

	tua := workloads(src, &s)
	if c := credit(src, s.Cores, tua); c != nil {
		s.Credit = c
	}
	if f := fair(src, s.Policy); f != nil {
		s.Fair = f
	}
	seeds(src, &s)

	// One region of the space has no defined WCET and is excluded rather
	// than sampled: fixed priority, maximum-contention injectors (REQ
	// permanently set) on a higher-priority core than the TuA, and no
	// credit filter. That TuA starves forever — the paper's §II argument
	// for why bare priorities are unusable — so the run-completion oracle
	// would (correctly) report an unbounded run. With any CBA variant the
	// configuration stays in the space: preventing exactly this starvation
	// is the scheme's contribution.
	if s.Policy == "PRI" && s.Run == scenario.RunWCET && s.Credit == nil && tua != 0 {
		s.Workloads[0].Core = 0
		if s.TuA != nil {
			*s.TuA = 0
		}
	}

	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("scengen: generated an invalid spec: %v\nspec: %+v", err, s))
	}
	return s
}

func runKind(src Source) string {
	switch src.Intn(5) {
	case 0:
		return scenario.RunIsolation
	case 1, 2:
		return scenario.RunWCET
	default:
		return scenario.RunWorkloads
	}
}

// platform draws an override block: latencies always (they move MaxL, the
// quantity every credit bound scales with), geometry sometimes. Sets stay
// powers of two (cache.Config requires it); LineBytes stays at the default
// 32 so workload working-set reasoning keeps holding. Past 64 cores the
// memory latency is clamped low: worst-case per-request waits grow with
// N·MaxL, and the reference engine pays for every one of those cycles.
func platform(src Source, cores int) *scenario.Platform {
	memHi := 48
	if cores > 64 {
		memHi = 16
	}
	p := &scenario.Platform{
		L2HitLatency: int64(between(src, 1, 10)),
		MemLatency:   int64(between(src, 8, memHi)),
	}
	if pct(src, 40) {
		p.L1Sets = oneOf(src, 16, 32, 64)
		p.L1Ways = oneOf(src, 1, 2, 4)
	}
	if pct(src, 40) {
		p.L2Sets = oneOf(src, 64, 128, 256)
		p.L2Ways = oneOf(src, 2, 4)
	}
	if pct(src, 30) {
		p.StoreBufferDepth = between(src, 1, 6)
	}
	return p
}

// workloads populates s.Workloads and the TuA designation, returning the
// TuA core index. Isolation and wcet runs take exactly one entry; workloads
// runs add 1–3 co-runners on distinct cores, usually looping. The TuA is
// biased onto core 0 (70%) because the isolation-metamorphic oracle is only
// seed-aligned when no co-runner precedes the TuA in the machine's seeding
// order (see oracle.go).
func workloads(src Source, s *scenario.Spec) int {
	names := workload.Names()
	tua := 0
	if !pct(src, 70) {
		tua = src.Intn(s.Cores)
	}

	mk := func(core int, isTuA bool) scenario.Workload {
		w := scenario.Workload{
			Core: core,
			Name: oneOf(src, names...),
		}
		if pct(src, 30) {
			w.Seed = uint64(between(src, 2, 5))
		}
		if isTuA {
			w.Ops = tuaOps(src, s.Cores)
		} else if pct(src, 70) {
			w.Loop = true
		} else {
			w.Ops = coOps(src, s.Cores)
		}
		if scenario.WeightedPolicy(s.Policy) && pct(src, 50) {
			w.Weight = int64(between(src, 1, 8))
		}
		return w
	}

	tuaEntry := mk(tua, true)
	if pct(src, 40) {
		tuaEntry.Criticality = scenario.CritHigh
	} else {
		t := tua
		s.TuA = &t
		if pct(src, 30) {
			tuaEntry.Criticality = scenario.CritLow
		}
	}
	s.Workloads = []scenario.Workload{tuaEntry}

	if s.Run == scenario.RunWorkloads {
		free := make([]int, 0, s.Cores-1)
		for c := 0; c < s.Cores; c++ {
			if c != tua {
				free = append(free, c)
			}
		}
		n := between(src, 1, min(3, len(free)))
		for i := 0; i < n; i++ {
			k := src.Intn(len(free))
			core := free[k]
			free = append(free[:k], free[k+1:]...)
			co := mk(core, false)
			if tuaEntry.Criticality == scenario.CritHigh && pct(src, 60) {
				co.Criticality = scenario.CritLow
			}
			s.Workloads = append(s.Workloads, co)
		}
		if s.Cores >= 16 && pct(src, 40) {
			population(src, s, tua)
		}
	}
	return tua
}

// population sometimes adds a UE-profile fleet to a workloads run: a
// contiguous free range of up to 16 members growing upward from a random
// start. Members carry derived seeds (the schema's per-member seed stride),
// so the fleet is heterogeneous from a single entry. When the drawn start
// lands on an occupied core the draw is simply forfeited — the generator
// favours unconditional validity over population density.
func population(src Source, s *scenario.Spec, tua int) {
	occupied := map[int]bool{tua: true}
	for _, w := range s.Workloads {
		occupied[w.Core] = true
	}
	start := src.Intn(s.Cores)
	want := between(src, 2, 16)
	end := start
	for end < s.Cores && end-start < want && !occupied[end] {
		end++
	}
	if end == start {
		return
	}
	p := scenario.Population{
		FromCore: start,
		ToCore:   end - 1,
		Name:     oneOf(src, ueNames...),
	}
	if pct(src, 50) {
		p.Seed = uint64(between(src, 1, 1<<16))
	}
	if pct(src, 30) {
		p.SeedStride = uint64(between(src, 2, 7))
	}
	if pct(src, 70) {
		p.Loop = true
	} else {
		p.Ops = between(src, 30, 120)
	}
	if scenario.WeightedPolicy(s.Policy) && pct(src, 50) {
		p.Weight = int64(between(src, 1, 8))
	}
	s.Populations = append(s.Populations, p)
}

// fair sometimes draws a Fair block for the parameterisable fairness-zoo
// policies: a non-default EWMA shift for PF, a 1–3-bucket custom profile
// for MTS. Nil keeps the policy defaults (and is mandatory elsewhere — the
// schema rejects the block under other policies).
func fair(src Source, policy string) *scenario.Fair {
	switch policy {
	case "PF":
		if pct(src, 40) {
			return &scenario.Fair{AvgShift: between(src, 1, 8)}
		}
	case "MTS":
		if pct(src, 40) {
			ts := make([]scenario.TimescaleSpec, between(src, 1, 3))
			den := 1
			for i := range ts {
				// Fine-to-coarse: each bucket's period and depth grow.
				den *= between(src, 8, 64)
				ts[i] = scenario.TimescaleSpec{
					Num:   1,
					Den:   int64(den),
					Depth: int64(between(src, 2, 8) * (i + 1)),
				}
			}
			return &scenario.Fair{Timescales: ts}
		}
	}
	return nil
}

// credit draws the CBA variant. Nil means off. The privileged core for the
// hcba-* kinds is usually left to default to the TuA; when sampled
// explicitly it avoids the one inexpressible combination the schema rejects
// (privileged 0 alongside a non-zero TuA).
func credit(src Source, cores, tua int) *scenario.Credit {
	switch src.Intn(4) {
	case 0:
		return nil
	case 1:
		return &scenario.Credit{Kind: "cba"}
	case 2:
		c := &scenario.Credit{Kind: "hcba-weights"}
		c.Den = int64(between(src, 2, 6))
		c.Num = int64(between(src, 1, int(c.Den)-1))
		privileged(src, c, cores, tua)
		return c
	default:
		c := &scenario.Credit{Kind: "hcba-cap"}
		if pct(src, 70) {
			c.CapFactor = int64(between(src, 2, 4))
		}
		privileged(src, c, cores, tua)
		return c
	}
}

func privileged(src Source, c *scenario.Credit, cores, tua int) {
	if pct(src, 60) {
		return // default: the TuA
	}
	p := src.Intn(cores)
	if p == 0 && tua != 0 {
		p = tua // privileged 0 means "the TuA" downstream; keep it expressible
	}
	c.Privileged = &p
}

// seeds draws a short schedule: oracle checks run every seed on both
// engines plus metamorphic reruns, so 1–2 seeds keep a generated scenario
// in the low milliseconds.
func seeds(src Source, s *scenario.Spec) {
	n := 1
	if pct(src, 30) {
		n = 2
	}
	list := make([]uint64, n)
	for i := range list {
		list[i] = uint64(between(src, 1, 1<<20))
	}
	// Validate rejects duplicate schedule entries (they double-bill runs);
	// nudging the collision keeps the draw count — and so fuzz replay —
	// unchanged.
	if n == 2 && list[1] == list[0] {
		list[1]++
	}
	s.Seeds = scenario.Seeds{List: list}
}
