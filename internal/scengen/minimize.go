package scengen

import "creditbus/internal/scenario"

// Failing reports whether a candidate spec still exhibits the failure being
// minimized. cmd/scenfuzz uses len(Check(spec)) > 0 (plus any injected
// failure); tests substitute arbitrary predicates.
type Failing func(scenario.Spec) bool

// DefaultMinimizeBudget bounds the predicate evaluations of a Minimize
// call. Each evaluation re-simulates the candidate, so the budget is a
// wall-clock guard, not a correctness knob: the greedy pass converges long
// before it on realistic specs.
const DefaultMinimizeBudget = 200

// Minimize greedily shrinks a failing spec: it repeatedly applies the
// single reduction (fewer seeds, fewer co-runners, shorter programs, fewer
// cores, no platform overrides, simpler credit and policy, default engine,
// no weights) whose result still fails, until no reduction applies or the
// predicate budget is exhausted. The result is always a valid spec that
// still satisfies failing; if the input itself does not fail, it is
// returned unchanged. Reductions preserve the scenario name, so the repro
// file stays traceable to the generating run.
func Minimize(sp scenario.Spec, failing Failing, budget int) scenario.Spec {
	if budget <= 0 {
		budget = DefaultMinimizeBudget
	}
	if !failing(sp) {
		return sp
	}
	budget--
	for budget > 0 {
		reduced := false
		for _, cand := range reductions(sp) {
			if budget <= 0 {
				break
			}
			if cand.Validate() != nil {
				continue // a reduction that breaks the schema is not a repro
			}
			budget--
			if failing(cand) {
				sp = cand
				reduced = true
				break // restart the reduction list from the smaller spec
			}
		}
		if !reduced {
			return sp
		}
	}
	return sp
}

// reductions enumerates the one-step shrink candidates of sp, most
// aggressive first. Every candidate is a deep copy.
func reductions(sp scenario.Spec) []scenario.Spec {
	var out []scenario.Spec
	add := func(mutate func(*scenario.Spec)) {
		c := clone(sp)
		mutate(&c)
		out = append(out, c)
	}

	// Fewer seeds: try each single seed of a multi-seed schedule.
	if seeds := sp.Seeds.Expand(); len(seeds) > 1 {
		for _, s := range seeds {
			s := s
			add(func(c *scenario.Spec) { c.Seeds = scenario.Seeds{List: []uint64{s}} })
		}
	}

	// Fewer co-runners: drop each non-TuA workload.
	tua := tuaCore(sp)
	for i := range sp.Workloads {
		if sp.Workloads[i].Core == tua {
			continue
		}
		i := i
		add(func(c *scenario.Spec) {
			c.Workloads = append(c.Workloads[:i], c.Workloads[i+1:]...)
		})
	}

	// Smaller fleets: drop each population outright, then halve each
	// multi-member range (keeping the low half, whose member seeds are
	// unchanged by construction).
	for i := range sp.Populations {
		i := i
		add(func(c *scenario.Spec) {
			c.Populations = append(c.Populations[:i], c.Populations[i+1:]...)
		})
		if p := sp.Populations[i]; p.ToCore > p.FromCore {
			add(func(c *scenario.Spec) {
				c.Populations[i].ToCore = p.FromCore + (p.ToCore-p.FromCore)/2
			})
		}
	}

	// Shorter programs: halve each truncated trace, pin each looped
	// co-runner to a short finite prefix.
	for i := range sp.Workloads {
		i := i
		if sp.Workloads[i].Ops > 1 {
			add(func(c *scenario.Spec) { c.Workloads[i].Ops /= 2 })
		}
		if sp.Workloads[i].Loop {
			add(func(c *scenario.Spec) {
				c.Workloads[i].Loop = false
				c.Workloads[i].Ops = 64
			})
		}
	}
	for i := range sp.Populations {
		i := i
		if sp.Populations[i].Ops > 1 {
			add(func(c *scenario.Spec) { c.Populations[i].Ops /= 2 })
		}
		if sp.Populations[i].Loop {
			add(func(c *scenario.Spec) {
				c.Populations[i].Loop = false
				c.Populations[i].Ops = 64
			})
		}
	}

	// Fewer cores: shrink to the highest occupied index + 1.
	maxCore := 0
	for _, w := range sp.Workloads {
		if w.Core > maxCore {
			maxCore = w.Core
		}
	}
	for _, p := range sp.Populations {
		if p.ToCore > maxCore {
			maxCore = p.ToCore
		}
	}
	if need := max(maxCore+1, 2); sp.Cores == 0 || need < sp.Cores {
		add(func(c *scenario.Spec) { c.Cores = need })
	}

	if sp.Platform != nil {
		add(func(c *scenario.Spec) { c.Platform = nil })
	}

	// Simpler credit: strip the H-CBA parameters, fall back to homogeneous
	// CBA, then to no credit at all.
	if cr := sp.Credit; cr != nil {
		if cr.Privileged != nil || cr.Num != 0 || cr.CapFactor != 0 {
			add(func(c *scenario.Spec) {
				c.Credit.Privileged = nil
				c.Credit.Num, c.Credit.Den, c.Credit.CapFactor = 0, 0, 0
			})
		}
		if cr.Kind != "cba" {
			add(func(c *scenario.Spec) {
				c.Credit = &scenario.Credit{Kind: "cba"}
			})
		}
		add(func(c *scenario.Spec) { c.Credit = nil })
	}

	if sp.Policy != "RR" && sp.Policy != "" {
		add(func(c *scenario.Spec) {
			c.Policy = "RR"
			for i := range c.Workloads {
				c.Workloads[i].Weight = 0 // weights are LOT-only
			}
			for i := range c.Populations {
				c.Populations[i].Weight = 0
			}
		})
	}
	if sp.Engine != "" {
		add(func(c *scenario.Spec) { c.Engine = "" })
	}
	for i := range sp.Workloads {
		if sp.Workloads[i].Weight != 0 {
			i := i
			add(func(c *scenario.Spec) { c.Workloads[i].Weight = 0 })
		}
	}
	for i := range sp.Populations {
		if sp.Populations[i].Weight != 0 {
			i := i
			add(func(c *scenario.Spec) { c.Populations[i].Weight = 0 })
		}
	}
	return out
}

// tuaCore resolves the spec's TuA without compiling: the explicit field,
// else the unique HI core, else 0 — mirroring Spec's own resolution.
func tuaCore(sp scenario.Spec) int {
	if sp.TuA != nil {
		return *sp.TuA
	}
	for _, w := range sp.Workloads {
		if w.Criticality == scenario.CritHigh {
			return w.Core
		}
	}
	return 0
}

// clone deep-copies a spec so reductions never alias the original.
func clone(sp scenario.Spec) scenario.Spec {
	c := sp
	c.Workloads = append([]scenario.Workload(nil), sp.Workloads...)
	c.Populations = append([]scenario.Population(nil), sp.Populations...)
	c.Seeds.List = append([]uint64(nil), sp.Seeds.List...)
	if sp.TuA != nil {
		v := *sp.TuA
		c.TuA = &v
	}
	if sp.Platform != nil {
		v := *sp.Platform
		c.Platform = &v
	}
	if sp.Credit != nil {
		v := *sp.Credit
		c.Credit = &v
		if sp.Credit.Privileged != nil {
			p := *sp.Credit.Privileged
			c.Credit.Privileged = &p
		}
	}
	return c
}
