package scengen

import (
	"fmt"
	"reflect"

	"creditbus/internal/scenario"
	"creditbus/internal/sim"
)

// Violation is one invariant breach found by Check. Details are
// deterministic strings (no maps, no addresses), so a fixed-seed fuzzing
// campaign's report is byte-reproducible.
type Violation struct {
	// Oracle names the property: run, differential, conservation, credit,
	// fairness, metamorphic or reuse.
	Oracle string
	// Seed is the run seed the violation occurred under.
	Seed uint64
	// Detail states what was observed against what the invariant demands.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("oracle=%s seed=%d: %s", v.Oracle, v.Seed, v.Detail)
}

// Check runs the spec through the invariant-oracle layer and returns every
// violation found, in deterministic order. For each seed of the schedule:
//
//   - run: both engines complete without error (a validated spec that
//     deadlocks or trips the cycle limit is a finding, not an infra error);
//   - differential: the event-horizon engine's Result is field-for-field
//     identical to the per-cycle reference engine's;
//   - conservation (checked at every step of the fast run): machine and bus
//     cycle counters stay in lockstep, busy+idle cycles partition time, the
//     per-master held cycles sum to the busy cycles, and each master's
//     completions ≤ grants ≤ requests with at most one grant in flight and
//     held ≤ grants·MaxL;
//   - credit (CBA on, same probe): every budget stays within [0, cap], no
//     drain ever underflows, and Eq. 1's conservation bound
//     budget_i(t) + S·held_i(t) ≤ init_i + t·w_i holds — whose budget ≥ 0
//     corollary is the weighted-share cap share_i(t) ≤ w_i/S + init_i/(S·t);
//   - fairness (credit-off wcet runs under PF/GWF/MTS): the symmetric,
//     permanently backlogged contention injectors end the run with
//     near-equal grant counts (pairwise ratio ≤ 1.25, runs with fewer than
//     64 grants per injector skipped);
//   - metamorphic (non-isolation runs): the same TuA program on the same
//     configuration and seed, run in isolation, finishes no later than under
//     contention, with identical instruction/load/store/atomic counts,
//     identical TuA bus request/grant/completion counts and identical cache
//     hit rates — contention may shift the TuA's timing, never its work;
//   - reuse: the run repeated on a pooled, recycled machine
//     (scenario.Pool, the campaign engine's per-worker state) yields a
//     Result field-for-field identical to the fresh machine's. The pool is
//     shared across the seed schedule — and driven twice on the first seed,
//     so even single-seed scenarios compare a genuinely reused machine —
//     which makes the fuzzing campaign guard the pooling layer with the
//     same differential rigour as the stepping engine.
//
// The returned error reports infrastructure failures only (the spec failed
// to compile); every simulation-level surprise is a Violation.
func Check(sp scenario.Spec) ([]Violation, error) {
	c, err := sp.Compile()
	if err != nil {
		return nil, fmt.Errorf("scengen: %s: %w", sp.Name, err)
	}
	pool := c.NewPool()
	var out []Violation
	for i, seed := range c.Seeds {
		out = append(out, checkSeed(c, pool, seed, i > 0)...)
	}
	return out, nil
}

func checkSeed(c *scenario.Compiled, pool *scenario.Pool, seed uint64, warm bool) []Violation {
	var out []Violation
	obs := newObserver(c)
	fast, err := c.RunSeedProbed(seed, false, obs.probe)
	if err != nil {
		return append(out, Violation{"run", seed, fmt.Sprintf("fast engine: %v", err)})
	}
	out = append(out, obs.violations(seed)...)

	slow, err := c.RunSeedEngine(seed, true)
	if err != nil {
		return append(out, Violation{"run", seed, fmt.Sprintf("per-cycle engine: %v", err)})
	}
	if !reflect.DeepEqual(fast, slow) {
		out = append(out, Violation{"differential", seed, fmt.Sprintf(
			"fast engine diverges from per-cycle reference: task cycles %d vs %d, wall %d vs %d",
			fast.TaskCycles, slow.TaskCycles, fast.WallCycles, slow.WallCycles)})
	}

	out = append(out, checkReuse(pool, seed, fast, warm)...)
	out = append(out, checkMetamorphic(c, seed, fast)...)
	return out
}

// checkReuse is the machine-pooling oracle: the same (spec, seed) run on
// the schedule-shared pool must reproduce the fresh fast-engine Result
// exactly. A cold pool's first pass builds the machine (trivially equal);
// passing twice then compares a machine that already served a full run.
func checkReuse(pool *scenario.Pool, seed uint64, fresh sim.Result, warm bool) []Violation {
	passes := 2
	if warm {
		passes = 1
	}
	for i := 0; i < passes; i++ {
		reused, err := pool.RunSeedProbed(seed, false, nil)
		if err != nil {
			return []Violation{{"reuse", seed, fmt.Sprintf("pooled machine: %v", err)}}
		}
		if !reflect.DeepEqual(fresh, reused) {
			return []Violation{{"reuse", seed, fmt.Sprintf(
				"reused machine diverges from fresh: task cycles %d vs %d, wall %d vs %d",
				reused.TaskCycles, fresh.TaskCycles, reused.WallCycles, fresh.WallCycles)}}
		}
	}
	return nil
}

// checkMetamorphic reruns the spec's TuA program in isolation (same
// configuration, same seed) and compares against the contended result. The
// comparison is seed-exact only when the isolation machine draws the same
// cache seeds for the TuA: true for wcet specs always (injector masters
// never draw), and for workloads specs when no co-runner occupies a
// lower-numbered core than the TuA (the machine seeds program cores in
// index order). Isolation-run specs are their own baseline — nothing to
// compare.
func checkMetamorphic(c *scenario.Compiled, seed uint64, contended sim.Result) []Violation {
	if c.Spec.Run == scenario.RunIsolation {
		return nil
	}
	tua := c.TuA()
	if c.Spec.Run == scenario.RunWorkloads {
		for _, w := range c.Spec.Workloads {
			if w.Core < tua {
				return nil // co-runner before the TuA shifts its cache seeds
			}
		}
		for _, p := range c.Spec.Populations {
			if p.FromCore < tua {
				return nil // population members below the TuA shift its cache seeds
			}
		}
	}
	cfg := c.Config
	cfg.ForcePerCycle = false // engine equality is the differential oracle's job
	iso, err := sim.RunIsolation(cfg, c.Program(tua), seed)
	if err != nil {
		return []Violation{{"metamorphic", seed, fmt.Sprintf("isolation baseline: %v", err)}}
	}

	var out []Violation
	// Task-cycle monotonicity holds only for store-free TuAs. Buffered
	// stores drain on bus timing, so contention shifts how the drain
	// interleaves with the loads' accesses to the TuA's own L2 — and with
	// randomised replacement that realignment changes which rng draw each
	// miss consumes, so a load that evicted its own line in isolation can
	// hit under contention (testdata/l2-drain-luck: the contended run is
	// exactly 2·(mem−l2hit) cycles FASTER). A store-free TuA touches the
	// L2 in program order in both runs, making the bound exact.
	if iso.CPU.Stores == 0 && iso.TaskCycles > contended.TaskCycles {
		out = append(out, Violation{"metamorphic", seed, fmt.Sprintf(
			"contention sped the TuA up: isolation %d cycles > contended %d",
			iso.TaskCycles, contended.TaskCycles)})
	}
	type pair struct {
		name     string
		iso, con int64
	}
	// Retired work is program-order-determined: both runs consume the whole
	// op stream, so the counts match exactly. The same holds for the L1,
	// which is accessed at issue time in program order (and filled only
	// while the core is stalled on the very load being filled).
	for _, p := range []pair{
		{"instructions", iso.CPU.Instructions, contended.CPU.Instructions},
		{"loads", iso.CPU.Loads, contended.CPU.Loads},
		{"stores", iso.CPU.Stores, contended.CPU.Stores},
		{"atomics", iso.CPU.Atomics, contended.CPU.Atomics},
	} {
		if p.iso != p.con {
			out = append(out, Violation{"metamorphic", seed, fmt.Sprintf(
				"contention changed the TuA's work: %s %d in isolation vs %d contended",
				p.name, p.iso, p.con)})
		}
	}
	if iso.L1HitRate != contended.L1HitRate {
		out = append(out, Violation{"metamorphic", seed, fmt.Sprintf(
			"contention changed the TuA's L1 behaviour: hit rate %.6f vs %.6f",
			iso.L1HitRate, contended.L1HitRate)})
	}
	// Bus-side counters are sampled at TuA retirement, and the write-through
	// store buffer may still be draining then: transactions for buffered
	// stores post and complete after the core is architecturally done. The
	// wiggle is bidirectional — contention delays the drain (fewer trailing
	// posts), but it also stalls the core on a full buffer, so the slow run
	// can have issued more of the tail stores by its own retirement. Either
	// way the discrepancy is bounded by the buffer capacity plus the one
	// transaction in flight; the total transaction set is identical. (The
	// L2 is accessed at post time, so its hit rate shares this
	// trailing-drain wiggle and is deliberately not compared.)
	slack := int64(c.Config.StoreBufferDepth) + 1
	for _, p := range []pair{
		{"bus requests", iso.Bus.Requests, contended.Bus.Requests},
		{"bus grants", iso.Bus.Grants, contended.Bus.Grants},
		{"bus completions", iso.Bus.Completions, contended.Bus.Completions},
	} {
		d := p.iso - p.con
		if d < -slack || d > slack {
			out = append(out, Violation{"metamorphic", seed, fmt.Sprintf(
				"contention changed the TuA's traffic beyond the store-buffer drain: %s %d in isolation vs %d contended (slack %d)",
				p.name, p.iso, p.con, slack)})
		}
	}
	return out
}

// observer is the step-granularity probe: at every engine step it re-checks
// the conservation and credit invariants and records the first breach of
// each oracle (one is enough — the repro pinpoints the rest). For
// fairness-zoo WCET runs it additionally tracks the final per-master grant
// counts, which the fairness oracle compares after the run.
type observer struct {
	maxHold      int64
	conservation *string // first conservation breach, nil while clean
	credit       *string

	// Fairness oracle state (fairPolicy != "" arms it): WCET injectors are
	// permanently backlogged symmetric masters of equal weight, so a
	// fairness policy owes them near-equal grant counts — see violations.
	fairPolicy string
	tua        int
	grants     []int64 // final per-master grant counts (overwritten per probe)
}

func newObserver(c *scenario.Compiled) *observer {
	o := &observer{maxHold: c.Config.Latency.MaxHold()}
	// The fairness bound is only closed-form when the policy alone shapes
	// the schedule: WCET injectors (always backlogged, uniform MaxL holds,
	// weight 1 — only the TuA's workload entry can carry a weight) with no
	// credit filter in front of the policy.
	if c.Spec.Run == scenario.RunWCET && c.Config.Credit.Kind == sim.CreditOff {
		switch c.Config.Policy {
		case sim.PolicyPropFair, sim.PolicyGWF, sim.PolicyMTS:
			o.fairPolicy = string(c.Config.Policy)
			o.tua = c.TuA()
			o.grants = make([]int64, c.Config.Cores)
		}
	}
	return o
}

func (o *observer) probe(m *sim.Machine) {
	b := m.Bus()
	t := b.Cycle()

	if o.grants != nil {
		for i := range o.grants {
			o.grants[i] = b.Stats(i).Grants
		}
	}

	if o.conservation == nil {
		fail := func(format string, args ...any) {
			if o.conservation != nil {
				return
			}
			s := fmt.Sprintf("at cycle %d: ", t) + fmt.Sprintf(format, args...)
			o.conservation = &s
		}
		switch {
		case m.Cycle() != t:
			fail("machine cycle %d out of lockstep with bus cycle", m.Cycle())
		case b.BusyCycles()+b.IdleCycles() != t:
			fail("busy %d + idle %d do not partition time", b.BusyCycles(), b.IdleCycles())
		default:
			var held int64
			for i := 0; i < b.Masters(); i++ {
				st := b.Stats(i)
				held += st.HeldCycles
				switch {
				case st.Grants < st.Completions || st.Grants > st.Completions+1:
					fail("master %d: grants %d vs completions %d (at most one in flight)",
						i, st.Grants, st.Completions)
				case st.Grants > st.Requests:
					fail("master %d: grants %d exceed requests %d", i, st.Grants, st.Requests)
				case st.HeldCycles > st.Grants*o.maxHold:
					fail("master %d: held %d cycles on %d grants exceeds MaxL %d each",
						i, st.HeldCycles, st.Grants, o.maxHold)
				}
			}
			if o.conservation == nil && held != b.BusyCycles() {
				fail("per-master held cycles sum to %d, busy cycles %d", held, b.BusyCycles())
			}
		}
	}

	cr := m.Credit()
	if cr == nil || o.credit != nil {
		return
	}
	fail := func(format string, args ...any) {
		if o.credit != nil {
			return
		}
		s := fmt.Sprintf("at cycle %d: ", t) + fmt.Sprintf(format, args...)
		o.credit = &s
	}
	if n := cr.Underflows(); n != 0 {
		fail("%d budget underflows (drain past zero)", n)
		return
	}
	scale := cr.Scale()
	for i := 0; i < cr.Masters(); i++ {
		bd := cr.Budget(i)
		switch {
		case bd < 0 || bd > cr.Cap(i):
			fail("master %d budget %d outside [0, %d]", i, bd, cr.Cap(i))
		case bd+scale*m.Bus().Stats(i).HeldCycles > cr.InitialBudget(i)+t*cr.Weight(i):
			// Eq. 1 conservation: budget(t) = init + t·w − S·held − capLoss
			// with capLoss ≥ 0; budget ≥ 0 then caps the weighted share at
			// held/t ≤ w/S + init/(S·t).
			fail("master %d breaks Eq. 1 conservation: budget %d + %d·held %d > init %d + t·w %d",
				i, bd, scale, m.Bus().Stats(i).HeldCycles, cr.InitialBudget(i), t*cr.Weight(i))
		}
		if o.credit != nil {
			return
		}
	}
}

func (o *observer) violations(seed uint64) []Violation {
	var out []Violation
	if o.conservation != nil {
		out = append(out, Violation{"conservation", seed, *o.conservation})
	}
	if o.credit != nil {
		out = append(out, Violation{"credit", seed, *o.credit})
	}
	out = append(out, o.fairness(seed)...)
	return out
}

// fairness is the fairness-bound oracle: on a credit-off WCET run under a
// fairness-zoo policy, the contention injectors are symmetric — permanently
// backlogged, identical MaxL holds, weight 1 — so the long-run grant counts
// the policy hands them must be near-equal. The bound is the pairwise ratio
// max/min ≤ 1.25; runs too short for the asymptotic claim (any injector
// under 64 grants) are skipped rather than weakly asserted.
func (o *observer) fairness(seed uint64) []Violation {
	if o.fairPolicy == "" {
		return nil
	}
	lo, hi := int64(-1), int64(-1)
	loM, hiM := -1, -1
	for i, g := range o.grants {
		if i == o.tua {
			continue
		}
		if lo < 0 || g < lo {
			lo, loM = g, i
		}
		if g > hi {
			hi, hiM = g, i
		}
	}
	if lo < 64 {
		return nil // too few grants for the asymptotic bound
	}
	if hi*4 > lo*5 { // hi/lo > 1.25
		return []Violation{{"fairness", seed, fmt.Sprintf(
			"%s starved a symmetric injector: master %d got %d grants, master %d got %d (ratio > 1.25)",
			o.fairPolicy, hiM, hi, loM, lo)}}
	}
	return nil
}
