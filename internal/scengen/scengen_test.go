package scengen

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"creditbus/internal/scenario"
)

// generate draws n named specs from one seeded source, the way cmd/scenfuzz
// does.
func generate(t *testing.T, seed uint64, n int) []scenario.Spec {
	t.Helper()
	src := NewSource(seed)
	out := make([]scenario.Spec, n)
	for i := range out {
		out[i] = Generate(src, fmt.Sprintf("gen-%d-%d", seed, i))
	}
	return out
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, 42, 50)
	b := generate(t, 42, 50)
	for i := range a {
		ea, err := a[i].Encode()
		if err != nil {
			t.Fatal(err)
		}
		eb, err := b[i].Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ea, eb) {
			t.Fatalf("spec %d differs between equal-seed generators:\n%s\nvs\n%s", i, ea, eb)
		}
	}
	// A different seed must explore a different region of the space.
	c := generate(t, 43, 50)
	same := 0
	for i := range a {
		ea, _ := a[i].Encode()
		ec, _ := c[i].Encode()
		if bytes.Equal(ea, ec) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 generated identical scenario sequences")
	}
}

func TestGenerateValidAndCompilable(t *testing.T) {
	// Generate always returns Validate-clean specs (it panics otherwise);
	// here we additionally require every spec to compile and to cover the
	// sampling space's main axes over a modest draw.
	specs := generate(t, 1, 300)
	runs := map[string]int{}
	credits := map[string]int{}
	policies := map[string]int{}
	multiCore := false
	for _, sp := range specs {
		if _, err := sp.Compile(); err != nil {
			t.Fatalf("%s does not compile: %v", sp.Name, err)
		}
		runs[sp.Run]++
		policies[sp.Policy]++
		if sp.Credit != nil {
			credits[sp.Credit.Kind]++
		} else {
			credits["off"]++
		}
		if sp.Cores > 4 {
			multiCore = true
		}
	}
	for _, kind := range []string{scenario.RunIsolation, scenario.RunWCET, scenario.RunWorkloads} {
		if runs[kind] == 0 {
			t.Errorf("300 draws never produced a %s run", kind)
		}
	}
	for _, kind := range []string{"off", "cba", "hcba-weights", "hcba-cap"} {
		if credits[kind] == 0 {
			t.Errorf("300 draws never produced credit kind %s", kind)
		}
	}
	for _, p := range []string{"RR", "FIFO", "TDMA", "LOT", "RP", "PRI", "PF", "GWF", "MTS"} {
		if policies[p] == 0 {
			t.Errorf("300 draws never produced policy %s", p)
		}
	}
	if !multiCore {
		t.Error("300 draws never left the 4-core platform")
	}
}

func TestByteSourceAlwaysDecodes(t *testing.T) {
	// Any byte string — including the empty one — decodes to a valid spec,
	// and the decoding is deterministic.
	inputs := [][]byte{
		nil,
		{0},
		{0xff},
		bytes.Repeat([]byte{0xab, 0x12}, 40),
		[]byte("arbitrary fuzz bytes that mean nothing"),
	}
	for i, data := range inputs {
		a := Generate(&ByteSource{Data: data}, "bytes")
		b := Generate(&ByteSource{Data: append([]byte(nil), data...)}, "bytes")
		ea, _ := a.Encode()
		eb, _ := b.Encode()
		if !bytes.Equal(ea, eb) {
			t.Fatalf("input %d decoded differently on replay", i)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("input %d decoded to an invalid spec: %v", i, err)
		}
	}
}

// TestCheckGeneratedScenarios is the oracle integration test: a sample of
// generated scenarios must pass every invariant on both engines. The full
// campaign lives in cmd/scenfuzz (CI runs -n 500); this keeps the package
// self-verifying.
func TestCheckGeneratedScenarios(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 6
	}
	for _, sp := range generate(t, 7, n) {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			vs, err := Check(sp)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				t.Errorf("%s", v)
			}
		})
	}
}

func TestMetamorphicOracleDetectsDoctoredResult(t *testing.T) {
	// The oracle layer must actually bite: doctor a contended result to
	// claim fewer task cycles than isolation and to have lost a grant — both
	// must be flagged.
	sp := generate(t, 11, 1)[0]
	sp.Run = scenario.RunWCET
	sp.Workloads = sp.Workloads[:1]
	sp.Workloads[0].Loop = false
	// A store-free TuA keeps the task-cycle monotonicity branch armed
	// (the oracle disarms it when buffered stores can realign the
	// private L2's replacement draws).
	sp.Workloads[0].Name = "hitter"
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	seed := c.Seeds[0]
	real, err := c.RunSeedEngine(seed, false)
	if err != nil {
		t.Fatal(err)
	}
	doctored := real
	doctored.TaskCycles = 1
	// Push the grant count past the store-buffer drain slack the oracle
	// grants to trailing transactions. The genuine isolation-vs-contended
	// delta can itself sit anywhere within ±slack, so the push must clear
	// 2·slack+1 to land outside the window regardless of where it started.
	doctored.Bus.Grants += 2*(int64(c.Config.StoreBufferDepth)+1) + 1
	vs := checkMetamorphic(c, seed, doctored)
	var sawCycles, sawGrants bool
	for _, v := range vs {
		if strings.Contains(v.Detail, "sped the TuA up") {
			sawCycles = true
		}
		if strings.Contains(v.Detail, "bus grants") {
			sawGrants = true
		}
	}
	if !sawCycles || !sawGrants {
		t.Fatalf("doctored result not fully flagged: cycles=%v grants=%v (%v)", sawCycles, sawGrants, vs)
	}
	// And the genuine result is clean.
	if vs := checkMetamorphic(c, seed, real); len(vs) != 0 {
		t.Fatalf("genuine result flagged: %v", vs)
	}
}

func TestMinimizeShrinksToPredicateCore(t *testing.T) {
	// A synthetic failure that depends only on TDMA + credit being present:
	// the minimizer must strip everything else while preserving both.
	src := NewSource(3)
	var sp scenario.Spec
	found := false
	for i := 0; i < 5000 && !found; i++ {
		sp = Generate(src, "shrink-me")
		found = sp.Policy == "TDMA" && sp.Credit != nil && sp.Run == scenario.RunWorkloads &&
			len(sp.Workloads) > 1 && sp.Platform != nil
	}
	if !found {
		t.Fatal("generator never produced a TDMA+credit workloads spec with overrides")
	}
	failing := func(c scenario.Spec) bool { return c.Policy == "TDMA" && c.Credit != nil }
	minimal := Minimize(sp, failing, 500)

	if err := minimal.Validate(); err != nil {
		t.Fatalf("minimized spec invalid: %v", err)
	}
	if !failing(minimal) {
		t.Fatal("minimized spec no longer fails the predicate")
	}
	if len(minimal.Workloads) != 1 {
		t.Errorf("workloads not shrunk: %d entries", len(minimal.Workloads))
	}
	if len(minimal.Seeds.Expand()) != 1 {
		t.Errorf("seed schedule not shrunk: %v", minimal.Seeds)
	}
	if minimal.Platform != nil {
		t.Error("platform overrides not stripped")
	}
	if minimal.Credit.Kind != "cba" {
		t.Errorf("credit not simplified: %+v", minimal.Credit)
	}
	if minimal.Name != sp.Name {
		t.Errorf("minimization renamed the spec: %q", minimal.Name)
	}
	// Round trip: the repro file form must load back to the same spec.
	data, err := minimal.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := scenario.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := minimal.Encode()
	e2, _ := back.Encode()
	if !bytes.Equal(e1, e2) {
		t.Fatal("minimized spec does not round-trip through its repro encoding")
	}
}

// TestKnownFindings pins the scenario-space discoveries of the fuzzing
// campaigns, committed as repro specs under testdata/:
//
//   - pri-starvation: fixed priority + WCET injectors above the TuA + no
//     credit has no defined WCET (the TuA starves; the paper's §II
//     argument). The run oracle must keep reporting the tripped limit, and
//     the generator must keep the region out of its sampling space.
//   - storebuf-drain: the contended run retires with one more trailing
//     store posted than isolation — legal store-buffer drain wiggle, which
//     the metamorphic traffic oracle must keep tolerating in both
//     directions.
//   - l2-drain-luck (PR 6's widened space): contention shifts the TuA's
//     store-buffer drain, realigning its private L2's randomised
//     replacement draws, and the contended run retires 2·(mem−l2hit)
//     cycles EARLIER than isolation — so the metamorphic oracle must keep
//     the task-cycle monotonicity check disarmed for TuAs with stores.
func TestKnownFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("pri-starvation runs to the cycle limit")
	}
	specs, err := scenario.LoadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			vs, err := Check(sp)
			if err != nil {
				t.Fatal(err)
			}
			switch sp.Name {
			case "pri-starvation":
				if len(vs) != 1 || vs[0].Oracle != "run" {
					t.Fatalf("want exactly the unbounded-run violation, got %v", vs)
				}
			default:
				for _, v := range vs {
					t.Errorf("%s", v)
				}
			}
		})
	}
}

func TestMinimizeReturnsPassingSpecUnchanged(t *testing.T) {
	sp := generate(t, 5, 1)[0]
	got := Minimize(sp, func(scenario.Spec) bool { return false }, 50)
	e1, _ := sp.Encode()
	e2, _ := got.Encode()
	if !bytes.Equal(e1, e2) {
		t.Fatal("a passing spec was mutated")
	}
}
