package scengen

import (
	"testing"
)

// FuzzScenario decodes the fuzz engine's byte string into generator choices
// (ByteSource) and holds the result to the package's contract: decoding
// never panics, always yields a Validate-clean, compilable spec, and — when
// the input carries enough entropy to be an interesting scenario — the full
// invariant-oracle layer passes on both engines. Inputs the engine deems
// interesting accumulate in the corpus cache, so CI's fuzz smoke explores a
// growing frontier of the scenario space.
func FuzzScenario(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04})
	f.Add([]byte("\x00\x03\x00\x01\x00\x02\xff\xff\x00\x07\x00\x09\x00\x0b\x00\x0d"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp := Generate(&ByteSource{Data: data}, "fuzz")
		if err := sp.Validate(); err != nil {
			t.Fatalf("generated spec invalid: %v", err)
		}
		if _, err := sp.Compile(); err != nil {
			t.Fatalf("generated spec does not compile: %v", err)
		}
		if len(data) < 16 {
			return // not enough choices to make simulation worthwhile
		}
		vs, err := Check(sp)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vs {
			repro, _ := sp.Encode()
			t.Errorf("invariant violation: %s\nrepro spec:\n%s", v, repro)
		}
	})
}
