// Package mem models the memory side of the paper's platform: the latency
// cost of every bus transaction class and the memory controller that bridges
// the bus to DRAM.
//
// §IV.A fixes the numbers this package defaults to: "Bus transactions take
// between 5 cycles for L2 read cache hit and 56 cycles. Memory latency is 28
// cycles and the longest requests may produce 2 memory accesses, e.g. atomic
// operations produce a read and a write operation and L2 cache misses
// evicting a dirty line produce one access to write dirty data back to
// memory and another to fetch requested data."
package mem

import "fmt"

// Kind classifies a bus transaction by what the memory hierarchy must do.
type Kind int

const (
	// L2ReadHit reads a line present in the core's L2 partition.
	L2ReadHit Kind = iota
	// L2WriteHit writes a line present in L2 (write-back: no memory access).
	L2WriteHit
	// MissClean fetches a line from memory; the evicted line is clean.
	MissClean
	// MissDirty fetches a line from memory after writing back a dirty
	// victim: two memory accesses.
	MissDirty
	// AtomicRMW is an atomic read-modify-write: the bus is held for a
	// memory read plus a memory write, unsplittable by definition (§III.C).
	AtomicRMW

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case L2ReadHit:
		return "l2-read-hit"
	case L2WriteHit:
		return "l2-write-hit"
	case MissClean:
		return "miss-clean"
	case MissDirty:
		return "miss-dirty"
	case AtomicRMW:
		return "atomic-rmw"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Latency is the transaction cost model.
type Latency struct {
	// L2Hit is the bus hold time of an access served by the L2 partition.
	L2Hit int64
	// Mem is the cost of one memory (DRAM) access, bus held throughout
	// (non-split bus).
	Mem int64
}

// DefaultLatency returns the paper's platform numbers: 5-cycle L2 hits and
// 28-cycle memory accesses, giving the 5..56-cycle transaction range and
// MaxL = 56.
func DefaultLatency() Latency { return Latency{L2Hit: 5, Mem: 28} }

// Validate reports whether the latencies are usable.
func (l Latency) Validate() error {
	if l.L2Hit <= 0 || l.Mem <= 0 {
		return fmt.Errorf("mem: non-positive latency %+v", l)
	}
	return nil
}

// Hold returns the bus hold time of a transaction of kind k.
func (l Latency) Hold(k Kind) int64 {
	switch k {
	case L2ReadHit, L2WriteHit:
		return l.L2Hit
	case MissClean:
		return l.Mem
	case MissDirty, AtomicRMW:
		return 2 * l.Mem
	default:
		panic(fmt.Sprintf("mem: Hold of unknown kind %d", int(k)))
	}
}

// MaxHold returns MaxL: the longest possible bus hold time under this model.
func (l Latency) MaxHold() int64 {
	m := l.L2Hit
	if 2*l.Mem > m {
		m = 2 * l.Mem
	}
	return m
}

// Controller is the memory controller: it prices transactions and keeps
// per-kind traffic statistics, standing in for the paper's bridge between
// the AMBA bus and the DDR2 DRAM.
type Controller struct {
	lat    Latency
	counts [numKinds]int64
	cycles [numKinds]int64
}

// NewController builds a controller with the given latency model.
func NewController(lat Latency) (*Controller, error) {
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	return &Controller{lat: lat}, nil
}

// Latency returns the controller's cost model.
func (c *Controller) Latency() Latency { return c.lat }

// Price returns the bus hold time for a transaction of kind k and records
// it in the traffic statistics.
func (c *Controller) Price(k Kind) int64 {
	h := c.lat.Hold(k)
	c.counts[k]++
	c.cycles[k] += h
	return h
}

// Count returns how many transactions of kind k were priced.
func (c *Controller) Count(k Kind) int64 { return c.counts[k] }

// Cycles returns the total bus cycles consumed by transactions of kind k.
func (c *Controller) Cycles(k Kind) int64 { return c.cycles[k] }

// TotalCount returns the number of transactions priced across all kinds.
func (c *Controller) TotalCount() int64 {
	var t int64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Reset clears the traffic statistics.
func (c *Controller) Reset() {
	c.counts = [numKinds]int64{}
	c.cycles = [numKinds]int64{}
}

// Kinds lists all transaction kinds, for reports.
func Kinds() []Kind {
	return []Kind{L2ReadHit, L2WriteHit, MissClean, MissDirty, AtomicRMW}
}
