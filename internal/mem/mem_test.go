package mem

import "testing"

func TestDefaultLatencyMatchesPaper(t *testing.T) {
	l := DefaultLatency()
	// §IV.A: 5-cycle L2 read hits, 28-cycle memory accesses, 56-cycle
	// worst case (two memory accesses), MaxL = 56.
	cases := []struct {
		k    Kind
		want int64
	}{
		{L2ReadHit, 5}, {L2WriteHit, 5}, {MissClean, 28}, {MissDirty, 56}, {AtomicRMW, 56},
	}
	for _, c := range cases {
		if got := l.Hold(c.k); got != c.want {
			t.Errorf("Hold(%v) = %d, want %d", c.k, got, c.want)
		}
	}
	if got := l.MaxHold(); got != 56 {
		t.Errorf("MaxHold = %d, want 56", got)
	}
}

func TestMaxHoldWithHugeL2(t *testing.T) {
	l := Latency{L2Hit: 100, Mem: 10}
	if got := l.MaxHold(); got != 100 {
		t.Errorf("MaxHold = %d, want 100 when L2 dominates", got)
	}
}

func TestValidate(t *testing.T) {
	for _, l := range []Latency{{0, 28}, {5, 0}, {-1, 28}} {
		if err := l.Validate(); err == nil {
			t.Errorf("latency %+v unexpectedly valid", l)
		}
	}
	if _, err := NewController(Latency{}); err == nil {
		t.Error("NewController accepted invalid latency")
	}
}

func TestControllerAccounting(t *testing.T) {
	c, err := NewController(DefaultLatency())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Price(MissDirty); got != 56 {
		t.Fatalf("Price(MissDirty) = %d, want 56", got)
	}
	c.Price(L2ReadHit)
	c.Price(L2ReadHit)
	if c.Count(L2ReadHit) != 2 || c.Count(MissDirty) != 1 || c.Count(AtomicRMW) != 0 {
		t.Fatalf("counts wrong: hits=%d dirty=%d atomics=%d",
			c.Count(L2ReadHit), c.Count(MissDirty), c.Count(AtomicRMW))
	}
	if c.Cycles(L2ReadHit) != 10 || c.Cycles(MissDirty) != 56 {
		t.Fatalf("cycles wrong: %d, %d", c.Cycles(L2ReadHit), c.Cycles(MissDirty))
	}
	if c.TotalCount() != 3 {
		t.Fatalf("TotalCount = %d, want 3", c.TotalCount())
	}
	c.Reset()
	if c.TotalCount() != 0 {
		t.Fatal("Reset left counts")
	}
	if c.Latency() != DefaultLatency() {
		t.Fatal("Latency accessor wrong")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		L2ReadHit: "l2-read-hit", L2WriteHit: "l2-write-hit",
		MissClean: "miss-clean", MissDirty: "miss-dirty", AtomicRMW: "atomic-rmw",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind string wrong")
	}
	if len(Kinds()) != int(numKinds) {
		t.Errorf("Kinds() returns %d kinds, want %d", len(Kinds()), numKinds)
	}
}

func TestHoldPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Hold(unknown) did not panic")
		}
	}()
	DefaultLatency().Hold(Kind(42))
}
