package fault

import (
	"sort"
	"sync"
	"time"
)

// Clock is the injectable time source behind deadline and backoff paths:
// production code takes a Clock, tests drive a FakeClock, and nothing
// sleeps for real in a unit test.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	// After returns a channel that fires once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// WallClock is the real time.Now/time.Sleep/time.After clock.
type WallClock struct{}

func (WallClock) Now() time.Time { return time.Now() }

func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

func (WallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually-advanced clock: time moves only when Advance is
// called, and every waiter whose deadline is reached fires. Sleep blocks
// until an Advance covers it, so test goroutines synchronise on simulated
// time instead of real delays.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *FakeClock) Sleep(d time.Duration) { <-c.After(d) }

func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward and fires every waiter whose deadline has
// been reached, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []fakeWaiter
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, w := range due {
		w.ch <- now
	}
}

// Waiters reports the number of pending After/Sleep waiters — tests use it
// to know a deadline path has armed before advancing.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
