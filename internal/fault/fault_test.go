package fault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// atomicWrite drives the canonical temp+fsync+rename sequence through an
// FS — the exact operation shape the checkpoint store uses — so injector
// tests exercise realistic operation streams.
func atomicWrite(fsys FS, path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := fsys.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		_ = fsys.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		_ = fsys.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = fsys.Remove(name)
		return err
	}
	if err := fsys.Rename(name, path); err != nil {
		_ = fsys.Remove(name)
		return err
	}
	return fsys.SyncDir(dir)
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	path := filepath.Join(dir, "sub", "file.json")
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := atomicWrite(fsys, path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if _, err := fsys.Stat(path); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(filepath.Dir(path))
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir: %v %v", ents, err)
	}
	if err := fsys.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := fsys.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorCensusDeterminism: the same operation sequence counts the same
// ops twice, and a census injector (zero plan) never faults.
func TestInjectorCensusDeterminism(t *testing.T) {
	counts := make([]int64, 2)
	for trial := range counts {
		dir := t.TempDir()
		in := NewInjector(OS{}, Plan{})
		for i := 0; i < 3; i++ {
			if err := atomicWrite(in, filepath.Join(dir, "f.json"), bytes.Repeat([]byte("a"), 64)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := in.ReadFile(filepath.Join(dir, "f.json")); err != nil {
			t.Fatal(err)
		}
		counts[trial] = in.Ops()
		if in.Fired() {
			t.Fatal("census injector fired")
		}
	}
	if counts[0] != counts[1] || counts[0] == 0 {
		t.Fatalf("census not deterministic: %v", counts)
	}
}

// TestInjectorCrashSweep: crashing at every op index K of an atomic write
// leaves the destination either absent or holding exactly a previously
// committed value — never a torn file — and all later ops fail ErrCrashed.
func TestInjectorCrashSweep(t *testing.T) {
	// Census pass over one full write to size the sweep.
	census := NewInjector(OS{}, Plan{})
	dir := t.TempDir()
	if err := atomicWrite(census, filepath.Join(dir, "g.json"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	total := census.Ops()
	if total < 5 {
		t.Fatalf("atomic write counted only %d ops", total)
	}

	for k := int64(1); k <= total; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "g.json")
		if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
		in := NewInjector(OS{}, Plan{Op: k, Kind: KindCrash})
		err := atomicWrite(in, path, []byte("new"))
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash at op %d: err = %v", k, err)
		}
		if !in.Fired() {
			t.Fatalf("crash at op %d never fired", k)
		}
		// Post-crash ops on the same injector keep failing.
		if _, err := in.ReadFile(path); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash read: %v", err)
		}
		// The destination is never torn: the rename either committed or not.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("crash at op %d: destination unreadable: %v", k, err)
		}
		if s := string(data); s != "old" && s != "new" {
			t.Fatalf("crash at op %d: destination torn: %q", k, s)
		}
	}
}

// TestInjectorTornWrite: the torn kind commits a strict, seed-deterministic
// prefix of the faulted write.
func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	payload := bytes.Repeat([]byte("0123456789"), 10)
	in := NewInjector(OS{}, Plan{Op: 1, Kind: KindTorn, Seed: 37})
	err := in.WriteFile(path, payload, 0o644)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := int(37 % uint64(len(payload)))
	if len(data) != want || !bytes.Equal(data, payload[:want]) {
		t.Fatalf("torn prefix = %d bytes, want %d", len(data), want)
	}
}

// TestInjectorTransientFaults: ENOSPC and EIO fail exactly one op and the
// process lives on.
func TestInjectorTransientFaults(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		want error
	}{{KindENOSPC, ErrNoSpace}, {KindEIO, ErrIO}} {
		dir := t.TempDir()
		path := filepath.Join(dir, "f.json")
		in := NewInjector(OS{}, Plan{Op: 1, Kind: tc.kind})
		if err := in.WriteFile(path, []byte("x"), 0o644); !errors.Is(err, tc.want) {
			t.Fatalf("%v: first op err = %v", tc.kind, err)
		}
		if err := in.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatalf("%v: op after transient fault failed: %v", tc.kind, err)
		}
	}
}

// TestInjectorBitFlip: the planned read returns data off by exactly one bit,
// deterministically in the seed, and only ReadFile ops count for the plan.
func TestInjectorBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	payload := bytes.Repeat([]byte{0xAA}, 32)
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(OS{}, Plan{Op: 2, Kind: KindBitFlip, Seed: 7<<32 | 13})
	// Non-read ops must not consume the bit-flip counter.
	if _, err := in.Stat(path); err != nil {
		t.Fatal(err)
	}
	first, err := in.ReadFile(path)
	if err != nil || !bytes.Equal(first, payload) {
		t.Fatalf("read 1 should be clean: %v", err)
	}
	second, err := in.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range second {
		if second[i] != payload[i] {
			diff++
			if second[i]^payload[i] != 1<<7 || i != 13 {
				t.Fatalf("flip at byte %d xor %x, want bit 7 of byte 13", i, second[i]^payload[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	// The underlying file is untouched: the flip models a read-path error.
	disk, _ := os.ReadFile(path)
	if !bytes.Equal(disk, payload) {
		t.Fatal("bit flip corrupted the file on disk")
	}
	if got, err := in.ReadFile(path); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read 3 should be clean again: %v", err)
	}
}

func TestFakeClock(t *testing.T) {
	c := NewFakeClock(time.Unix(1000, 0))
	if got := c.Now(); !got.Equal(time.Unix(1000, 0)) {
		t.Fatalf("now = %v", got)
	}
	ch := c.After(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired before advance")
	default:
	}
	if c.Waiters() != 1 {
		t.Fatalf("waiters = %d", c.Waiters())
	}
	c.Advance(3 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	c.Advance(2 * time.Second)
	select {
	case at := <-ch:
		if !at.Equal(time.Unix(1005, 0)) {
			t.Fatalf("fired at %v", at)
		}
	case <-time.After(time.Second):
		t.Fatal("never fired")
	}
	// Sleep synchronises with Advance from another goroutine.
	done := make(chan struct{})
	go func() {
		c.Sleep(time.Second)
		close(done)
	}()
	for c.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleep never woke")
	}
	// Non-positive durations fire immediately.
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}
