package fault

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// Injected fault sentinels. Callers classify with errors.Is; every injected
// error chain ends in one of these.
var (
	// ErrCrashed — the simulated process died at the planned operation.
	// Every operation at and after the crash point fails with it, modelling
	// a process that no longer exists: the test harness treats the first
	// ErrCrashed as the kill and re-runs against a clean FS to model the
	// restarted process.
	ErrCrashed = errors.New("fault: crashed (injected)")
	// ErrNoSpace — the planned operation failed as ENOSPC would.
	ErrNoSpace = errors.New("fault: no space left on device (injected)")
	// ErrIO — the planned operation failed as EIO would.
	ErrIO = errors.New("fault: input/output error (injected)")
)

// Op classifies a filesystem operation for fault placement and logs.
type Op uint8

// Operation classes, one per FS/File method.
const (
	OpMkdirAll Op = iota
	OpReadFile
	OpWriteFile
	OpCreateTemp
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpRemoveAll
	OpReadDir
	OpStat
	OpSyncDir
)

var opNames = [...]string{
	"mkdirall", "readfile", "writefile", "createtemp", "write", "sync",
	"close", "rename", "remove", "removeall", "readdir", "stat", "syncdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Kind is an injected fault kind.
type Kind uint8

const (
	// KindNone — count operations without injecting (the census pass a
	// sweep uses to learn the operation sequence length).
	KindNone Kind = iota
	// KindCrash — the planned operation has no effect and fails with
	// ErrCrashed, as do all later operations: the process died immediately
	// before the operation committed. Crash *after* operation K is the same
	// machine state as crash before K+1, so a sweep over every K covers
	// both sides of every operation.
	KindCrash
	// KindTorn — like KindCrash, but a write-class operation first commits
	// a seed-chosen strict prefix of its data: the torn-write window of a
	// non-atomic file write. On non-write operations it degenerates to
	// KindCrash.
	KindTorn
	// KindENOSPC — the planned operation fails with ErrNoSpace; the process
	// lives on and later operations succeed (space was freed).
	KindENOSPC
	// KindEIO — the planned operation fails with ErrIO; the process lives
	// on.
	KindEIO
	// KindBitFlip — the planned *read* (Op counts only ReadFile calls for
	// this kind) succeeds but returns data with one seed-chosen bit
	// flipped: silent media corruption, the case integrity hashes exist
	// for.
	KindBitFlip
)

var kindNames = [...]string{"none", "crash", "torn", "enospc", "eio", "bitflip"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Plan places one fault: fault Kind fires at the Op-th counted operation
// (1-based; for KindBitFlip only ReadFile operations count). Seed picks the
// torn-write length or the flipped bit deterministically. Op 0 (or
// KindNone) never fires — the census configuration.
type Plan struct {
	Op   int64
	Kind Kind
	Seed uint64
}

// Injector wraps an FS, counts every operation, and injects the planned
// fault at its exact operation index. All decisions are pure functions of
// (Plan, operation sequence), so a run against a deterministic workload is
// bit-reproducible. An Injector is safe for concurrent use; operation
// indices are then scheduling-dependent, so deterministic sweeps should
// drive it from one goroutine (the checkpoint store does).
type Injector struct {
	fs   FS
	plan Plan

	mu      sync.Mutex
	n       int64 // all operations
	reads   int64 // ReadFile operations (KindBitFlip's counter)
	crashed bool
	fired   bool
	// Log, when non-nil, observes every operation (before fault
	// evaluation). Set it before use; it must not call back into the
	// Injector.
	Log func(n int64, op Op, path string)
}

// NewInjector wraps fsys with the planned fault.
func NewInjector(fsys FS, plan Plan) *Injector {
	return &Injector{fs: fsys, plan: plan}
}

// Ops reports the number of operations counted so far — a census run's
// result sizes a sweep.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

// Reads reports the number of ReadFile operations counted so far (the
// KindBitFlip sweep axis).
func (in *Injector) Reads() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reads
}

// Fired reports whether the planned fault has been injected.
func (in *Injector) Fired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// op counts one operation and decides the fault. It returns (inject, err):
// err non-nil fails the operation; inject true with nil err asks the caller
// to apply a data-mangling fault (torn write, bit flip) itself.
func (in *Injector) op(op Op, path string) (inject bool, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return false, fmt.Errorf("fault: %s %s: %w", op, path, ErrCrashed)
	}
	in.n++
	if op == OpReadFile {
		in.reads++
	}
	if in.Log != nil {
		in.Log(in.n, op, path)
	}
	at := in.n
	if in.plan.Kind == KindBitFlip {
		at = in.reads
		if op != OpReadFile {
			return false, nil
		}
	}
	if in.plan.Op == 0 || at != in.plan.Op || in.fired {
		return false, nil
	}
	switch in.plan.Kind {
	case KindCrash:
		in.fired, in.crashed = true, true
		return false, fmt.Errorf("fault: %s %s: %w", op, path, ErrCrashed)
	case KindTorn:
		in.fired, in.crashed = true, true
		if op == OpWrite || op == OpWriteFile {
			return true, nil // caller writes the torn prefix, then crashes
		}
		return false, fmt.Errorf("fault: %s %s: %w", op, path, ErrCrashed)
	case KindENOSPC:
		in.fired = true
		return false, fmt.Errorf("fault: %s %s: %w", op, path, ErrNoSpace)
	case KindEIO:
		in.fired = true
		return false, fmt.Errorf("fault: %s %s: %w", op, path, ErrIO)
	case KindBitFlip:
		in.fired = true
		return true, nil
	}
	return false, nil
}

// tornLen picks the committed prefix length for a torn write: a strict
// prefix (possibly empty), never the full write.
func (in *Injector) tornLen(n int) int {
	if n == 0 {
		return 0
	}
	return int(in.plan.Seed % uint64(n))
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if _, err := in.op(OpMkdirAll, path); err != nil {
		return err
	}
	return in.fs.MkdirAll(path, perm)
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	flip, err := in.op(OpReadFile, path)
	if err != nil {
		return nil, err
	}
	data, err := in.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if flip && len(data) > 0 {
		data = append([]byte(nil), data...)
		data[in.plan.Seed%uint64(len(data))] ^= 1 << ((in.plan.Seed >> 32) % 8)
	}
	return data, nil
}

func (in *Injector) WriteFile(path string, data []byte, perm os.FileMode) error {
	torn, err := in.op(OpWriteFile, path)
	if err != nil {
		return err
	}
	if torn {
		_ = in.fs.WriteFile(path, data[:in.tornLen(len(data))], perm)
		return fmt.Errorf("fault: torn writefile %s: %w", path, ErrCrashed)
	}
	return in.fs.WriteFile(path, data, perm)
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if _, err := in.op(OpCreateTemp, dir); err != nil {
		return nil, err
	}
	f, err := in.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.op(OpRename, oldpath); err != nil {
		return err
	}
	return in.fs.Rename(oldpath, newpath)
}

func (in *Injector) Remove(path string) error {
	if _, err := in.op(OpRemove, path); err != nil {
		return err
	}
	return in.fs.Remove(path)
}

func (in *Injector) RemoveAll(path string) error {
	if _, err := in.op(OpRemoveAll, path); err != nil {
		return err
	}
	return in.fs.RemoveAll(path)
}

func (in *Injector) ReadDir(path string) ([]fs.DirEntry, error) {
	if _, err := in.op(OpReadDir, path); err != nil {
		return nil, err
	}
	return in.fs.ReadDir(path)
}

func (in *Injector) Stat(path string) (fs.FileInfo, error) {
	if _, err := in.op(OpStat, path); err != nil {
		return nil, err
	}
	return in.fs.Stat(path)
}

func (in *Injector) SyncDir(dir string) error {
	if _, err := in.op(OpSyncDir, dir); err != nil {
		return err
	}
	return in.fs.SyncDir(dir)
}

// injFile threads a temp file's write/sync/close operations through the
// injector, so the torn-temp-write and crash-before-fsync windows are
// sweepable like any other operation.
type injFile struct {
	in *Injector
	f  File
}

func (w *injFile) Write(p []byte) (int, error) {
	torn, err := w.in.op(OpWrite, w.f.Name())
	if err != nil {
		return 0, err
	}
	if torn {
		n := w.in.tornLen(len(p))
		_, _ = w.f.Write(p[:n])
		return n, fmt.Errorf("fault: torn write %s: %w", w.f.Name(), ErrCrashed)
	}
	return w.f.Write(p)
}

func (w *injFile) Sync() error {
	if _, err := w.in.op(OpSync, w.f.Name()); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *injFile) Close() error {
	if _, err := w.in.op(OpClose, w.f.Name()); err != nil {
		// A crashed process's open files are gone; close the real handle so
		// sweeps don't leak file descriptors.
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}

func (w *injFile) Name() string { return w.f.Name() }
