// Package fault is the deterministic fault-injection layer under the
// platform's durability and timeout paths. It has two halves:
//
//   - FS, a narrow filesystem interface covering every operation the
//     checkpoint store and job store perform (read, atomic temp+fsync+rename
//     write, rename, remove, readdir, stat, directory sync), with OS as the
//     passthrough implementation and Injector as a seeded wrapper that
//     injects crash-at-op-K, torn writes, ENOSPC, EIO and bit-flips on read
//     at exact, reproducible operation counts;
//
//   - Clock, an injectable time source (now / sleep / after) with WallClock
//     as the real implementation and FakeClock as a manually-advanced test
//     clock, so deadline and backoff paths are testable without real time.
//
// The point of determinism: a chaos campaign that sweeps "fault at op K" for
// every K in the store's operation sequence visits every crash window the
// code has, and a failure at (kind, K, seed) replays exactly. DESIGN.md §14
// documents the failure model this layer exists to prove.
package fault

import (
	"io/fs"
	"os"
)

// File is the writable-file surface the atomic write path needs: write,
// fsync, close, and the temp file's name for the final rename.
type File interface {
	Write(p []byte) (n int, err error)
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	Close() error
	// Name returns the file's path, as os.File.Name does.
	Name() string
}

// FS is the filesystem surface of the checkpoint and job stores. Every
// durability-relevant operation flows through it, so an Injector wrapping an
// FS sees — and can fault — the complete operation sequence.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte, perm os.FileMode) error
	// CreateTemp creates a new temp file in dir (pattern as os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	ReadDir(path string) ([]fs.DirEntry, error)
	Stat(path string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making a completed rename durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS: the real filesystem via package os.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(path string) error { return os.Remove(path) }

func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (OS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

func (OS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
