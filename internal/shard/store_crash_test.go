package shard

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"creditbus/internal/fault"
)

// snapshot returns an aggregate's canonical persistence bytes for
// exact-state comparison.
func snapshot(t *testing.T, a *Agg) []byte {
	t.Helper()
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// crashStates builds the two successive checkpoint states the crash sweep
// arbitrates between: A after the first chunk, B after the second.
func crashStates(t *testing.T, c *Campaign) (a, b *Agg, aBytes, bBytes []byte) {
	t.Helper()
	r := &Runner{Campaign: c, Workers: 1}
	agg, err := NewAgg(0, c.Block())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.runChunk(agg, 15); err != nil {
		t.Fatal(err)
	}
	aBytes = snapshot(t, agg)
	a = new(Agg)
	if err := json.Unmarshal(aBytes, a); err != nil {
		t.Fatal(err)
	}
	if err := r.runChunk(agg, 15); err != nil {
		t.Fatal(err)
	}
	return a, agg, aBytes, snapshot(t, agg)
}

// seedCommitted creates a store directory whose shard 0 holds committed
// state A.
func seedCommitted(t *testing.T, c *Campaign, a *Agg) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ckpt")
	st, err := Open(dir, c.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveShard(0, a); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestStoreCrashPointSweep crashes (and tears) the [open + SaveShard(B)]
// sequence at every filesystem operation, over a store already holding
// committed state A, and asserts recovery loads exactly the last committed
// state: A for every crash up to and including the commit rename, B for
// every crash after it. This is the satellite crash-sweep for the atomic
// temp+fsync+rotate+rename store: crash after temp write, before rename,
// after rename — every window, mechanically.
func TestStoreCrashPointSweep(t *testing.T) {
	c := testCampaign(t, 30, 1, 5)
	_, b, aBytes, bBytes := crashStates(t, c)

	// Census pass: count the ops of open + second save, and find the commit
	// point — the last rename in the sequence (temp → primary).
	census := fault.NewInjector(fault.OS{}, fault.Plan{})
	var commit int64
	census.Log = func(n int64, op fault.Op, path string) {
		if op == fault.OpRename && strings.Contains(path, ".tmp-") {
			commit = n
		}
	}
	{
		dir := seedCommitted(t, c, mustUnmarshalAgg(t, aBytes))
		st, err := OpenWith(dir, c.Manifest(), StoreOptions{FS: census})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.SaveShard(0, b); err != nil {
			t.Fatal(err)
		}
	}
	total := census.Ops()
	if total < 8 || commit == 0 {
		t.Fatalf("census: %d ops, commit at %d", total, commit)
	}

	for _, kind := range []fault.Kind{fault.KindCrash, fault.KindTorn} {
		for k := int64(1); k <= total; k++ {
			dir := seedCommitted(t, c, mustUnmarshalAgg(t, aBytes))
			in := fault.NewInjector(fault.OS{}, fault.Plan{Op: k, Kind: kind, Seed: uint64(k) * 0x9e3779b9})
			st, err := OpenWith(dir, c.Manifest(), StoreOptions{FS: in})
			if err == nil {
				err = st.SaveShard(0, b)
			}
			if !errors.Is(err, fault.ErrCrashed) {
				t.Fatalf("%v at op %d: err = %v", kind, k, err)
			}
			// Recovery: a clean re-open must load exactly the last committed
			// state — A before the commit rename executed, B after.
			rst, err := Open(dir, c.Manifest())
			if err != nil {
				t.Fatalf("%v at op %d: reopen: %v", kind, k, err)
			}
			got, ok, err := rst.LoadShard(0)
			if err != nil || !ok {
				t.Fatalf("%v at op %d: recovery load: ok=%v err=%v", kind, k, ok, err)
			}
			want := aBytes
			if k > commit {
				want = bBytes
			}
			if gotBytes := snapshot(t, got); string(gotBytes) != string(want) {
				t.Fatalf("%v at op %d (commit %d): recovered neither-old-nor-new state:\n%s", kind, k, commit, gotBytes)
			}
			// And the interrupted save must be cleanly repeatable.
			if err := rst.SaveShard(0, b); err != nil {
				t.Fatalf("%v at op %d: re-save after recovery: %v", kind, k, err)
			}
			if got, ok, err := rst.LoadShard(0); err != nil || !ok || string(snapshot(t, got)) != string(bBytes) {
				t.Fatalf("%v at op %d: re-save did not converge to B (ok=%v err=%v)", kind, k, ok, err)
			}
		}
	}
}

func mustUnmarshalAgg(t *testing.T, data []byte) *Agg {
	t.Helper()
	a := new(Agg)
	if err := json.Unmarshal(data, a); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestLoadShardQuarantinesCorrupt scribbles over a committed checkpoint and
// asserts the store detects it, renames it aside, reports it, and never
// returns the corrupt state.
func TestLoadShardQuarantinesCorrupt(t *testing.T) {
	c := testCampaign(t, 30, 1, 5)
	_, b, _, bBytes := crashStates(t, c)
	dir := seedCommitted(t, c, b)
	path := filepath.Join(dir, "shard-0000.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var quars []string
	st, err := OpenWith(dir, c.Manifest(), StoreOptions{
		OnQuarantine: func(p, reason string) { quars = append(quars, p+": "+reason) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.LoadShard(0); ok || err != nil {
		t.Fatalf("corrupt shard with no backup: ok=%v err=%v", ok, err)
	}
	if len(quars) != 1 || !strings.Contains(quars[0], path) {
		t.Fatalf("quarantine observer saw %v", quars)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt file still in place: %v", err)
	}
	if _, err := os.Stat(path + ".quarantine-0"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The slot is reusable and a second corruption gets the next index.
	if err := st.SaveShard(0, b); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := st.LoadShard(0); err != nil || !ok || string(snapshot(t, got)) != string(bBytes) {
		t.Fatalf("save after quarantine: ok=%v err=%v", ok, err)
	}
}

// TestLoadShardVersionMismatch rewrites a valid checkpoint's payload with a
// foreign schema version (sum recomputed, so integrity passes) and asserts
// the typed ErrCheckpointVersion — with the file left in place for
// migration, not quarantined, and never merged as a zero value.
func TestLoadShardVersionMismatch(t *testing.T) {
	c := testCampaign(t, 30, 1, 5)
	_, b, _, _ := crashStates(t, c)
	dir := seedCommitted(t, c, b)
	path := filepath.Join(dir, "shard-0000.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	var cp checkpoint
	if err := json.Unmarshal(env.Checkpoint, &cp); err != nil {
		t.Fatal(err)
	}
	cp.Version = CheckpointVersion + 1
	payload, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(checkpointEnvelope{Checkpoint: payload, Sum: sumHex(checkpointSumDomain, payload)})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, c.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := st.LoadShard(0)
	if ok || !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("future-version checkpoint: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("version-mismatched file must stay in place: %v", err)
	}
}

// TestOldFormatCheckpointNotMerged plants a PR-8-era checkpoint (raw
// aggregate JSON, no envelope) and asserts it is treated as corrupt —
// quarantined, never merged — rather than parsed as a zero-value envelope.
func TestOldFormatCheckpointNotMerged(t *testing.T) {
	c := testCampaign(t, 30, 1, 5)
	_, b, _, _ := crashStates(t, c)
	dir := filepath.Join(t.TempDir(), "ckpt")
	st, err := Open(dir, c.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "shard-0000.json")
	if err := os.WriteFile(path, snapshot(t, b), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.LoadShard(0); ok || err != nil {
		t.Fatalf("old-format checkpoint: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(path + ".quarantine-0"); err != nil {
		t.Fatalf("old-format file not quarantined: %v", err)
	}
}

// TestOpenQuarantinesCorruptManifest corrupts manifest.json and asserts
// OpenWith quarantines it and re-initialises, leaving the store usable.
func TestOpenQuarantinesCorruptManifest(t *testing.T) {
	c := testCampaign(t, 30, 1, 5)
	_, b, _, bBytes := crashStates(t, c)
	dir := seedCommitted(t, c, b)
	path := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var quars int
	st, err := OpenWith(dir, c.Manifest(), StoreOptions{
		OnQuarantine: func(string, string) { quars++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if quars != 1 {
		t.Fatalf("quarantines = %d", quars)
	}
	if _, err := os.Stat(path + ".quarantine-0"); err != nil {
		t.Fatalf("quarantined manifest missing: %v", err)
	}
	// The rebuilt manifest verifies, and the shard checkpoint (which carries
	// its own campaign identity) is still loadable.
	if got, ok, err := st.LoadShard(0); err != nil || !ok || string(snapshot(t, got)) != string(bBytes) {
		t.Fatalf("after manifest rebuild: ok=%v err=%v", ok, err)
	}
	if _, err := Open(dir, c.Manifest()); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRefusesForeignCampaign copies a valid checkpoint file into
// another campaign's store directory and asserts the campaign-identity
// field blocks the merge.
func TestCheckpointRefusesForeignCampaign(t *testing.T) {
	c1 := testCampaign(t, 30, 1, 5)
	_, b, _, _ := crashStates(t, c1)
	src := seedCommitted(t, c1, b)

	c2 := testCampaign(t, 35, 1, 5)
	dir := filepath.Join(t.TempDir(), "ckpt2")
	st, err := Open(dir, c2.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(src, "shard-0000.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-0000.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.LoadShard(0); ok || err != nil {
		t.Fatalf("foreign checkpoint: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-0000.json.quarantine-0")); err != nil {
		t.Fatalf("foreign checkpoint not quarantined: %v", err)
	}
}
