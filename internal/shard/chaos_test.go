package shard

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"creditbus/internal/fault"
)

// chaosRun drives a full sharded campaign — open store, run every shard,
// merge — through the given filesystem, returning the canonical report
// bytes. It is the workload the chaos sweeps fault at every operation of.
func chaosRun(c *Campaign, dir string, fsys fault.FS, onQuarantine func(path, reason string)) ([]byte, error) {
	st, err := OpenWith(dir, c.Manifest(), StoreOptions{FS: fsys, OnQuarantine: onQuarantine})
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.Plan.Shards; i++ {
		r := &Runner{Campaign: c, Store: st, Workers: 2, CheckpointEvery: 16}
		if _, _, err := r.RunShard(i); err != nil {
			return nil, err
		}
	}
	rep, err := MergeStore(c, st)
	if err != nil {
		return nil, err
	}
	return rep.Encode()
}

// typedFault reports whether an error chain ends in one of the injected
// fault sentinels or the store's typed corruption errors — the "fails with
// a typed error" half of the chaos contract.
func typedFault(err error) bool {
	return errors.Is(err, fault.ErrCrashed) || errors.Is(err, fault.ErrNoSpace) ||
		errors.Is(err, fault.ErrIO) || errors.Is(err, ErrCheckpointCorrupt) ||
		errors.Is(err, ErrCheckpointVersion)
}

// TestChaosDifferentialSweep is the tentpole proof: for every filesystem
// operation K in a multi-shard checkpointed campaign and every fault kind
// (crash-at-K, torn write, ENOSPC, EIO), the faulted run fails with a typed
// error, and a clean re-run over the surviving directory resumes to a
// result byte-identical to the fault-free single-process reference — the
// PR 8 byte-identity contract, now under dirty failures.
func TestChaosDifferentialSweep(t *testing.T) {
	c := testCampaign(t, 64, 2, 8)
	want := referenceBytes(t, c)

	// Census pass: the operation sequence of a fault-free run.
	census := fault.NewInjector(fault.OS{}, fault.Plan{})
	got, err := chaosRun(c, filepath.Join(t.TempDir(), "ckpt"), census, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("census run diverges from reference")
	}
	total := census.Ops()
	if total < 20 {
		t.Fatalf("census counted only %d ops", total)
	}
	t.Logf("chaos sweep: %d fault points × 4 kinds", total)

	for _, kind := range []fault.Kind{fault.KindCrash, fault.KindTorn, fault.KindENOSPC, fault.KindEIO} {
		for k := int64(1); k <= total; k++ {
			dir := filepath.Join(t.TempDir(), "ckpt")
			in := fault.NewInjector(fault.OS{}, fault.Plan{Op: k, Kind: kind, Seed: uint64(k)*0x9e3779b97f4a7c15 + uint64(kind)})
			_, err := chaosRun(c, dir, in, nil)
			if err == nil {
				t.Fatalf("%v at op %d: fault did not surface", kind, k)
			}
			if !typedFault(err) {
				t.Fatalf("%v at op %d: untyped error: %v", kind, k, err)
			}
			if !in.Fired() {
				t.Fatalf("%v at op %d: never fired", kind, k)
			}
			// Recovery: the restarted process sees the surviving directory
			// through a clean filesystem and must resume to byte-identity.
			got, err := chaosRun(c, dir, fault.OS{}, nil)
			if err != nil {
				t.Fatalf("%v at op %d: recovery failed: %v", kind, k, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%v at op %d: recovered result diverges from reference", kind, k)
			}
		}
	}
}

// TestChaosBitFlipSweep flips one seed-chosen bit in every file read of the
// reopen-and-merge path over a completed campaign. Every flip must be
// caught by the integrity envelope — the run either still produces the
// reference bytes (manifest rebuilt, or backup merged complete) or fails
// typed with the suspect file quarantined — and a clean re-run always
// converges back to byte-identity. Silent acceptance of flipped state is
// the one outcome that must never happen.
func TestChaosBitFlipSweep(t *testing.T) {
	c := testCampaign(t, 64, 2, 8)
	want := referenceBytes(t, c)

	complete := func() string {
		dir := filepath.Join(t.TempDir(), "ckpt")
		got, err := chaosRun(c, dir, fault.OS{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("clean run diverges")
		}
		return dir
	}

	// Census the reads of a reopen+merge over a completed store.
	census := fault.NewInjector(fault.OS{}, fault.Plan{})
	if _, err := chaosRun(c, complete(), census, nil); err != nil {
		t.Fatal(err)
	}
	reads := census.Reads()
	if reads < 3 {
		t.Fatalf("census counted only %d reads", reads)
	}

	// Several seeds per read site, so different byte/bit positions are hit.
	for _, seed := range []uint64{1<<32 | 0, 3<<32 | 7, 6<<32 | 201, 7<<32 | 90} {
		for k := int64(1); k <= reads; k++ {
			dir := complete()
			var quars []string
			in := fault.NewInjector(fault.OS{}, fault.Plan{Op: k, Kind: fault.KindBitFlip, Seed: seed})
			got, err := chaosRun(c, dir, in, func(p, reason string) { quars = append(quars, p+": "+reason) })
			if !in.Fired() {
				t.Fatalf("bitflip at read %d: never fired", k)
			}
			switch {
			case err == nil:
				// Tolerated: the flip was caught and routed around (e.g.
				// manifest quarantined and rebuilt). The result must still
				// be exact and the detection must have left a trace.
				if !bytes.Equal(got, want) {
					t.Fatalf("bitflip at read %d seed %#x: silent corruption of result", k, seed)
				}
				if len(quars) == 0 {
					t.Fatalf("bitflip at read %d seed %#x: flip absorbed without quarantine", k, seed)
				}
			case typedFault(err) || strings.Contains(err.Error(), "incomplete"):
				// Detected: quarantine-and-fallback left the campaign
				// incomplete or surfaced a typed corruption error.
				if len(quars) == 0 {
					t.Fatalf("bitflip at read %d seed %#x: error %v without quarantine", k, seed, err)
				}
			default:
				t.Fatalf("bitflip at read %d seed %#x: untyped error: %v", k, seed, err)
			}
			// Recovery over a clean filesystem re-executes at most the
			// quarantined tail and must converge to byte-identity.
			got, err = chaosRun(c, dir, fault.OS{}, nil)
			if err != nil {
				t.Fatalf("bitflip at read %d seed %#x: recovery failed: %v", k, seed, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("bitflip at read %d seed %#x: recovered result diverges", k, seed)
			}
		}
	}
}
