package shard

import (
	"fmt"

	"creditbus/internal/campaign"
	"creditbus/internal/scenario"
	"creditbus/internal/sim"
)

// DefaultCheckpointEvery is the default chunk size: units executed between
// checkpoints. It bounds both the work lost to a kill (≲ 40 ms of
// simulation at mega-campaign unit costs) and the peak per-chunk result
// memory, while keeping checkpoint-write amortisation negligible.
const DefaultCheckpointEvery = 32768

// Runner executes shards of a compiled campaign: chunked parallel
// execution through the ordered campaign engine, streaming aggregation,
// and (when a Store is attached) a checkpoint after every chunk plus
// resume from the last one. One Runner is single-use-at-a-time per shard
// but carries no cross-call state — resumability lives entirely in the
// Store.
type Runner struct {
	// Campaign is the compiled campaign.
	Campaign *Campaign
	// Store, when non-nil, persists a checkpoint after every chunk and
	// seeds RunShard from the shard's last checkpoint.
	Store *Store
	// Workers sizes the in-process pool per chunk (0 = GOMAXPROCS).
	Workers int
	// CheckpointEvery is the chunk size in units (0 = default).
	CheckpointEvery int64
	// MaxUnits, when > 0, bounds the units executed by one RunShard call:
	// the shard checkpoints and returns incomplete once the budget is
	// spent. It exists for deterministic mid-shard stops — the
	// kill-and-resume differential tests and operator-paced draining.
	MaxUnits int64
	// Progress, when non-nil, observes (units done in shard, shard size)
	// after every chunk.
	Progress func(done, total int64)
}

func (r *Runner) chunk() int64 {
	if r.CheckpointEvery > 0 {
		return r.CheckpointEvery
	}
	return DefaultCheckpointEvery
}

// pools is the per-worker execution state: one lazily-built scenario.Pool
// (recycled machine + program instances) per scenario of the campaign.
// Chunks are contiguous unit ranges, so a worker's units overwhelmingly hit
// one scenario and the lazy build costs nothing in steady state.
type pools struct {
	c *Campaign
	p []*scenario.Pool
}

func (ps *pools) run(scen int, seed uint64) (sim.Result, error) {
	if ps.p[scen] == nil {
		ps.p[scen] = ps.c.Scenarios[scen].NewPool()
	}
	return ps.p[scen].RunSeed(seed)
}

// runChunk executes units [agg.Lo+agg.N, agg.Lo+agg.N+n) and folds them
// into agg in unit order. Execution is parallel across r.Workers; the fold
// is the ordered collection the campaign engine guarantees, so the
// aggregate state is independent of the worker count.
func (r *Runner) runChunk(agg *Agg, n int64) error {
	lo := agg.Lo + agg.N
	results, err := campaign.Do(campaign.Options[*pools]{
		Workers:        r.Workers,
		PerWorkerState: func() *pools { return &pools{c: r.Campaign, p: make([]*scenario.Pool, len(r.Campaign.Scenarios))} },
	}, int(n), func(ps *pools, j int) (sim.Result, error) {
		scen, seed, err := r.Campaign.Unit(lo + int64(j))
		if err != nil {
			return sim.Result{}, err
		}
		return ps.run(scen, seed)
	})
	if err != nil {
		return err
	}
	for _, res := range results {
		agg.Add(res)
	}
	return nil
}

// RunShard executes shard i: resume from the store's last checkpoint when
// one exists, then run chunk by chunk — checkpointing after each — until
// the shard range is complete or the MaxUnits budget is spent. complete
// reports whether the returned aggregate covers the whole shard range.
func (r *Runner) RunShard(i int) (agg *Agg, complete bool, err error) {
	lo, hi, err := r.Campaign.Plan.Range(i)
	if err != nil {
		return nil, false, err
	}
	if r.Store != nil {
		if !r.Store.Manifest().matches(r.Campaign.Manifest()) {
			return nil, false, fmt.Errorf("shard: store manifest does not match campaign %.12s", r.Campaign.Digest())
		}
		if agg, _, err = r.Store.LoadShard(i); err != nil {
			return nil, false, err
		}
	}
	if agg != nil {
		if agg.Lo != lo || agg.Lo+agg.N > hi {
			return nil, false, fmt.Errorf("shard: checkpoint covers [%d,+%d), shard %d is [%d,%d)", agg.Lo, agg.N, i, lo, hi)
		}
	} else if agg, err = NewAgg(lo, r.Campaign.Block()); err != nil {
		return nil, false, err
	}

	budget := r.MaxUnits
	for agg.Lo+agg.N < hi {
		n := min(r.chunk(), hi-(agg.Lo+agg.N))
		if r.MaxUnits > 0 {
			if budget <= 0 {
				return agg, false, nil
			}
			n = min(n, budget)
		}
		if err := r.runChunk(agg, n); err != nil {
			return nil, false, err
		}
		if r.Store != nil {
			if err := r.Store.SaveShard(i, agg); err != nil {
				return nil, false, err
			}
		}
		if r.Progress != nil {
			r.Progress(agg.N, hi-lo)
		}
		budget -= n
	}
	return agg, true, nil
}

// Merge combines per-shard aggregates (in shard order, i.e. ascending Lo)
// into the campaign-wide aggregate. Inputs must tile [0, Units) exactly —
// a missing or partial shard is an error, because a merged report over a
// partial campaign would silently compare unequal against the reference.
// The first aggregate is mutated into the result.
func Merge(c *Campaign, aggs []*Agg) (*Agg, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("shard: merge of no aggregates")
	}
	merged := aggs[0]
	if merged == nil {
		return nil, fmt.Errorf("shard: merge of nil aggregate")
	}
	if merged.Lo != 0 {
		return nil, fmt.Errorf("shard: first aggregate starts at unit %d, not 0", merged.Lo)
	}
	for _, a := range aggs[1:] {
		if err := merged.Merge(a); err != nil {
			return nil, err
		}
	}
	if merged.N != c.Units() {
		return nil, fmt.Errorf("shard: merged aggregates cover %d of %d units", merged.N, c.Units())
	}
	if err := merged.validate(c.Block()); err != nil {
		return nil, err
	}
	return merged, nil
}

// MergeStore loads every shard's checkpoint from the store, verifies the
// campaign is complete, merges, and derives the report — the coordinator's
// final step after the shard workers exit.
func MergeStore(c *Campaign, st *Store) (Report, error) {
	if !st.Manifest().matches(c.Manifest()) {
		return Report{}, fmt.Errorf("shard: store manifest does not match campaign %.12s", c.Digest())
	}
	aggs := make([]*Agg, c.Plan.Shards)
	for i := range aggs {
		lo, hi, err := c.Plan.Range(i)
		if err != nil {
			return Report{}, err
		}
		a, ok, err := st.LoadShard(i)
		if err != nil {
			return Report{}, err
		}
		if !ok {
			return Report{}, fmt.Errorf("shard: shard %d has no checkpoint; campaign incomplete", i)
		}
		if a.Lo != lo || a.N != hi-lo {
			return Report{}, fmt.Errorf("shard: shard %d checkpoint covers [%d,+%d) of [%d,%d); campaign incomplete", i, a.Lo, a.N, lo, hi)
		}
		aggs[i] = a
	}
	merged, err := Merge(c, aggs)
	if err != nil {
		return Report{}, err
	}
	return merged.Report(c)
}

// Reference executes the whole campaign in-process with no checkpointing
// and derives the report — the single-process reference the sharded paths
// must match byte for byte.
func Reference(c *Campaign, workers int) (Report, error) {
	agg, err := NewAgg(0, c.Block())
	if err != nil {
		return Report{}, err
	}
	r := &Runner{Campaign: c, Workers: workers}
	for agg.N < c.Units() {
		if err := r.runChunk(agg, min(r.chunk(), c.Units()-agg.N)); err != nil {
			return Report{}, err
		}
	}
	return agg.Report(c)
}
