// Package shard promotes campaigns to resumable, sharded jobs: the
// (scenario, seed) space of a campaign is linearised into a global unit
// index, range-sharded deterministically across K independent executors
// (processes, daemons, CI workers), folded shard by shard into exact
// streaming aggregates, checkpointed atomically so a killed shard resumes
// from its last complete range, and merged into one report that is
// byte-identical whatever K was — including K = 1, the single-process
// reference.
//
// The byte-identity rests on three legs, each proven by its own test suite:
//
//   - unit determinism — a unit's result is a pure function of (compiled
//     scenario, seed), the module-wide contract the reuse-differential and
//     golden-corpus suites enforce;
//   - exact aggregation — per-unit observables fold into integer moment
//     accumulators (stats.Exact) and globally-anchored block maxima
//     (mbpta.Stream) whose merge is provably order-invariant, so shard
//     states combine into the very state the sequential fold produces;
//   - canonical rendering — the merged report is derived from that state
//     alone (never from the shard count) and encoded with a fixed field
//     order.
//
// DESIGN.md §12 documents the architecture.
package shard

import "fmt"

// Plan is the deterministic range-sharding of a campaign's unit space:
// Units consecutive units split into Shards contiguous ranges whose sizes
// differ by at most one. The plan is pure arithmetic — no state, no
// randomness — so every executor derives identical ranges from (Units,
// Shards) alone, which is what lets K separate processes partition a
// campaign with no coordination beyond the spec itself.
type Plan struct {
	// Units is the campaign size: the number of (scenario, seed) units.
	Units int64 `json:"units"`
	// Shards is the number of contiguous ranges the units split into.
	Shards int `json:"shards"`
}

// NewPlan validates and builds a plan. Shards may exceed Units; the excess
// shards are empty ranges, which execute trivially and merge as identities.
func NewPlan(units int64, shards int) (Plan, error) {
	if units < 0 {
		return Plan{}, fmt.Errorf("shard: units = %d", units)
	}
	if shards < 1 {
		return Plan{}, fmt.Errorf("shard: shards = %d, need ≥ 1", shards)
	}
	return Plan{Units: units, Shards: shards}, nil
}

// Range returns shard i's half-open unit range [lo, hi): units
// [i·U/K, (i+1)·U/K) in exact integer arithmetic. Ranges tile the unit
// space — Range(0) starts at 0, Range(K-1) ends at Units, and consecutive
// ranges share their boundary — and any two executors computing Range(i)
// agree bit for bit.
func (p Plan) Range(i int) (lo, hi int64, err error) {
	if i < 0 || i >= p.Shards {
		return 0, 0, fmt.Errorf("shard: shard %d out of range [0,%d)", i, p.Shards)
	}
	k := int64(p.Shards)
	return p.Units * int64(i) / k, p.Units * int64(i+1) / k, nil
}
