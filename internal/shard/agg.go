package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"creditbus/internal/mbpta"
	"creditbus/internal/mem"
	"creditbus/internal/sim"
	"creditbus/internal/stats"
)

// Agg is the streaming aggregate of a contiguous unit range [Lo, Lo+N): the
// online form of "collect every result, then fit". Each unit's result folds
// in as it completes — exact integer moments for the cycle observables,
// globally-anchored block maxima for the MBPTA vector, and a per-unit
// result digest for the byte-identity gate — so a 10⁸-unit campaign needs
// O(N/Block + N·8B) state instead of N retained results, and a shard's
// state is exactly what its checkpoint file persists.
//
// Merge of adjacent ranges reproduces the sequential fold bit for bit
// (every component is either exact integer arithmetic or an
// order-invariant splice — see stats.Exact and mbpta.Stream), which is the
// heart of the K-invariance guarantee: fold K shards separately, merge,
// and the state equals the K = 1 fold, so the derived report is
// byte-identical.
type Agg struct {
	// Lo is the global unit index of the range's first unit.
	Lo int64 `json:"lo"`
	// N is the number of units folded in.
	N int64 `json:"n"`
	// TaskCycles aggregates each unit's TuA execution time.
	TaskCycles stats.Exact `json:"task_cycles"`
	// WallCycles aggregates each unit's wall-clock machine cycles.
	WallCycles stats.Exact `json:"wall_cycles"`
	// BusHeld and BusWait aggregate the TuA master's bus occupancy and
	// arbitration wait — the fairness observables (Jain over BusHeld).
	BusHeld stats.Exact `json:"bus_held"`
	BusWait stats.Exact `json:"bus_wait"`
	// Max streams the MBPTA block maxima of TaskCycles, anchored at global
	// unit indices.
	Max *mbpta.Stream `json:"max"`
	// Digests packs one 8-byte big-endian ResultDigest per unit, in unit
	// order — the stream the merged report hashes, so two campaigns agree
	// byte for byte only if every single unit result matched.
	Digests []byte `json:"digests,omitempty"`
}

// NewAgg returns an empty aggregate for the range starting at global unit
// lo, with MBPTA block size block.
func NewAgg(lo int64, block int) (*Agg, error) {
	max, err := mbpta.NewStream(block, lo)
	if err != nil {
		return nil, err
	}
	return &Agg{Lo: lo, Max: max}, nil
}

// Add folds the next unit's result.
func (a *Agg) Add(res sim.Result) {
	a.TaskCycles.Add(res.TaskCycles)
	a.WallCycles.Add(res.WallCycles)
	a.BusHeld.Add(res.Bus.HeldCycles)
	a.BusWait.Add(res.Bus.WaitCycles)
	a.Max.Add(float64(res.TaskCycles))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], ResultDigest(res))
	a.Digests = append(a.Digests, buf[:]...)
	a.N++
}

// Merge folds the adjacent range o into a: o must start exactly where a
// ends. Every component merge is order-invariant-exact, so any bracketing
// of adjacent merges yields the sequential fold's state.
func (a *Agg) Merge(o *Agg) error {
	if o == nil {
		return fmt.Errorf("shard: merge of nil aggregate")
	}
	if o.Lo != a.Lo+a.N {
		return fmt.Errorf("shard: merge of non-adjacent ranges: [%d,%d) then [%d,%d)",
			a.Lo, a.Lo+a.N, o.Lo, o.Lo+o.N)
	}
	if int64(len(o.Digests)) != 8*o.N {
		return fmt.Errorf("shard: aggregate at %d carries %d digest bytes for %d units", o.Lo, len(o.Digests), o.N)
	}
	if err := a.Max.Merge(o.Max); err != nil {
		return err
	}
	a.TaskCycles.Merge(o.TaskCycles)
	a.WallCycles.Merge(o.WallCycles)
	a.BusHeld.Merge(o.BusHeld)
	a.BusWait.Merge(o.BusWait)
	a.Digests = append(a.Digests, o.Digests...)
	a.N += o.N
	return nil
}

// validate checks the aggregate's internal consistency — a checkpoint file
// is untrusted input until this passes.
func (a *Agg) validate(block int) error {
	if a.N < 0 || a.Lo < 0 {
		return fmt.Errorf("shard: aggregate range [%d,+%d)", a.Lo, a.N)
	}
	if int64(len(a.Digests)) != 8*a.N {
		return fmt.Errorf("shard: aggregate carries %d digest bytes for %d units", len(a.Digests), a.N)
	}
	if a.Max == nil {
		return fmt.Errorf("shard: aggregate has no maxima stream")
	}
	if a.Max.Block != block {
		return fmt.Errorf("shard: aggregate block %d, campaign block %d", a.Max.Block, block)
	}
	if a.Max.Start != a.Lo || a.Max.N != a.N {
		return fmt.Errorf("shard: maxima stream covers [%d,+%d), aggregate [%d,+%d)",
			a.Max.Start, a.Max.N, a.Lo, a.N)
	}
	if a.TaskCycles.Count != a.N {
		return fmt.Errorf("shard: aggregate folds %d cycle samples for %d units", a.TaskCycles.Count, a.N)
	}
	return nil
}

// fnv1a64 constants (FNV-1a, 64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWord folds one 64-bit word into an FNV-1a state, byte by byte in
// little-endian order.
func fnvWord(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	return h
}

// ResultDigest hashes every field of a unit result into one 64-bit FNV-1a
// digest — the per-unit fingerprint the byte-identity gate accumulates. The
// field walk is fixed (struct order, mem kinds in their canonical Kinds()
// order, floats by IEEE bits), so equal results always digest equally and
// any single-field divergence flips the digest with 2⁻⁶⁴ blindness. At
// ~10⁷ digests/s it is two decimal orders cheaper than snapshotting the
// result to JSON, which is what keeps the gate affordable at 10⁶ units.
func ResultDigest(r sim.Result) uint64 {
	h := uint64(fnvOffset64)
	h = fnvWord(h, uint64(r.TaskCycles))
	h = fnvWord(h, uint64(r.WallCycles))
	h = fnvWord(h, uint64(r.CPU.Cycles))
	h = fnvWord(h, uint64(r.CPU.StallCycles))
	h = fnvWord(h, uint64(r.CPU.ALUCycles))
	h = fnvWord(h, uint64(r.CPU.AccessCycles))
	h = fnvWord(h, uint64(r.CPU.Instructions))
	h = fnvWord(h, uint64(r.CPU.Loads))
	h = fnvWord(h, uint64(r.CPU.Stores))
	h = fnvWord(h, uint64(r.CPU.Atomics))
	h = fnvWord(h, uint64(r.Bus.Requests))
	h = fnvWord(h, uint64(r.Bus.Grants))
	h = fnvWord(h, uint64(r.Bus.HeldCycles))
	h = fnvWord(h, uint64(r.Bus.WaitCycles))
	h = fnvWord(h, uint64(r.Bus.MaxWait))
	h = fnvWord(h, uint64(r.Bus.TotalWait))
	h = fnvWord(h, uint64(r.Bus.Completions))
	h = fnvWord(h, math.Float64bits(r.Utilisation))
	h = fnvWord(h, math.Float64bits(r.L1HitRate))
	h = fnvWord(h, math.Float64bits(r.L2HitRate))
	for _, k := range mem.Kinds() {
		h = fnvWord(h, uint64(r.MemCounts[k]))
	}
	return h
}

// Summary is one observable's derived statistics in the merged report.
type Summary struct {
	N      int64   `json:"n"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
}

// Summarize derives one observable's summary from its exact accumulator —
// a deterministic function of the state, so equal states render equal
// summaries.
func Summarize(e stats.Exact) Summary {
	return Summary{N: e.N(), Min: e.Min(), Max: e.Max(), Mean: e.Mean(), StdDev: e.StdDev()}
}

// MBPTAReport is the merged campaign's EVT result: the Gumbel fit over the
// streamed block maxima and the pWCET curve at the paper's exceedance
// probabilities.
type MBPTAReport struct {
	Block  int     `json:"block"`
	Maxima int     `json:"maxima"`
	Mu     float64 `json:"mu"`
	Sigma  float64 `json:"sigma"`
	// PWCET maps exceedance probability (as the decimal exponent's string,
	// e.g. "1e-12") to the estimated execution-time bound.
	PWCET map[string]float64 `json:"pwcet"`
}

// Report is a completed campaign's merged output. It is derived from the
// merged aggregate state alone — never from the shard count or execution
// order — and Encode renders it canonically, so K ∈ {1, 2, 8} (and a
// kill-and-resume) produce byte-identical report files. ResultHash is the
// strongest of its gates: the SHA-256 of the per-unit digest stream, which
// differs unless every one of the campaign's unit results matched.
type Report struct {
	// Campaign is the spec digest (CampaignSpec.Digest).
	Campaign string `json:"campaign"`
	// Name is the spec's label.
	Name string `json:"name,omitempty"`
	// Units is the campaign size.
	Units int64 `json:"units"`
	// ResultHash is hex SHA-256 over the packed per-unit result digests.
	ResultHash string `json:"result_hash"`
	// TaskCycles, WallCycles, BusHeld, BusWait summarise the observables.
	TaskCycles Summary `json:"task_cycles"`
	WallCycles Summary `json:"wall_cycles"`
	BusHeld    Summary `json:"bus_held"`
	BusWait    Summary `json:"bus_wait"`
	// FairnessJain is Jain's index over per-unit bus occupancy.
	FairnessJain float64 `json:"fairness_jain"`
	// MBPTA is the EVT fit; omitted when too few maxima completed (< 10).
	MBPTA *MBPTAReport `json:"mbpta,omitempty"`
}

// pwcetExponents are the exceedance probabilities the report tabulates —
// the paper's Figure 5 axis down to the certification-grade 10⁻¹².
var pwcetExponents = []int{-3, -6, -9, -12}

// Report derives the merged output from a complete aggregate (one covering
// the whole campaign).
func (a *Agg) Report(c *Campaign) (Report, error) {
	if a.Lo != 0 || a.N != c.Units() {
		return Report{}, fmt.Errorf("shard: report over partial range [%d,+%d) of %d units", a.Lo, a.N, c.Units())
	}
	if err := a.validate(c.Block()); err != nil {
		return Report{}, err
	}
	sum := sha256.Sum256(a.Digests)
	r := Report{
		Campaign:     c.Digest(),
		Name:         c.Spec.Name,
		Units:        a.N,
		ResultHash:   hex.EncodeToString(sum[:]),
		TaskCycles:   Summarize(a.TaskCycles),
		WallCycles:   Summarize(a.WallCycles),
		BusHeld:      Summarize(a.BusHeld),
		BusWait:      Summarize(a.BusWait),
		FairnessJain: a.BusHeld.Jain(),
	}
	if fit, err := a.Max.Analyze(); err == nil {
		m := &MBPTAReport{
			Block:  a.Max.Block,
			Maxima: len(a.Max.FullMaxima()),
			Mu:     fit.Mu,
			Sigma:  fit.Sigma,
			PWCET:  map[string]float64{},
		}
		for _, exp := range pwcetExponents {
			m.PWCET[fmt.Sprintf("1e%d", exp)] = fit.Quantile(1 - math.Pow(10, float64(exp)))
		}
		r.MBPTA = m
	}
	return r, nil
}

// Encode renders the report in its canonical byte form: indented JSON,
// fixed field order, sorted map keys, trailing newline — the exact bytes
// the identity gates compare.
func (r Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("shard: encode report: %w", err)
	}
	return append(data, '\n'), nil
}
