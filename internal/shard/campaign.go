package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"creditbus/internal/scenario"
)

// DefaultBlock is the MBPTA block-maxima size a campaign uses when the spec
// does not state one — the paper's §III.B protocol size scaled for mega
// campaigns (20 keeps ≥ 10 maxima from as few as 200 units while a 10⁶-unit
// sweep still yields 50,000).
const DefaultBlock = 20

// CampaignSpec declares a sharded mega-campaign: a scenario set, an
// optional seed-schedule override applied to every scenario, and the shard
// plan. It is the job-API request body (POST /v1/jobs) and the CLI
// coordinator's input alike; its canonical encoding digests to the
// campaign identity that names checkpoint stores and job ids.
//
// The unit space is the concatenation of each scenario's materialised seed
// schedule, scenario-major: unit u of a campaign over scenarios s₀…sₙ runs
// seed schedule entry (u − Σ|sⱼ<i|) of the scenario i containing u. The
// order is part of the spec's identity — it fixes the global unit indices
// that anchor block maxima and the result-hash stream.
type CampaignSpec struct {
	// Name labels the campaign in reports and checkpoint manifests. It does
	// not enter the digest: two campaigns differing only in label are the
	// same computation and share cached shards.
	Name string `json:"name,omitempty"`
	// Scenarios is the scenario set, in unit order.
	Scenarios []scenario.Spec `json:"scenarios"`
	// Seeds, when non-nil, replaces every scenario's seed schedule — the
	// sweep form: one schedule crossed with the whole scenario set.
	Seeds *scenario.Seeds `json:"seeds,omitempty"`
	// Shards is the shard count K (default 1).
	Shards int `json:"shards,omitempty"`
	// Block is the MBPTA block-maxima size (default DefaultBlock).
	Block int `json:"block,omitempty"`
}

// digestSpec is the digest's view of the spec: everything that changes the
// computation, nothing that doesn't (Name is a label; Shards partitions the
// work without changing its result — K ∈ {1, 2, 8} must hit the same
// checkpoint identity so their merged outputs can be compared byte for
// byte).
type digestSpec struct {
	Scenarios []scenario.Spec `json:"scenarios"`
	Seeds     *scenario.Seeds `json:"seeds,omitempty"`
	Block     int             `json:"block"`
}

// Digest returns the campaign's content identity: the hex SHA-256 of the
// canonical encoding of its computation-relevant fields. Equal digests mean
// equal unit → (scenario, seed) maps and equal block anchoring, so shards
// checkpointed under one digest are exact for every campaign sharing it.
func (c CampaignSpec) Digest() (string, error) {
	data, err := json.Marshal(digestSpec{Scenarios: c.Scenarios, Seeds: c.Seeds, Block: c.block()})
	if err != nil {
		return "", fmt.Errorf("shard: digest campaign: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

func (c CampaignSpec) block() int {
	if c.Block > 0 {
		return c.Block
	}
	return DefaultBlock
}

func (c CampaignSpec) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 1
}

// Encode renders the spec in its canonical byte form (indented JSON,
// trailing newline), the on-disk and on-wire shape.
func (c CampaignSpec) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("shard: encode campaign: %w", err)
	}
	return append(data, '\n'), nil
}

// ParseCampaign decodes a campaign spec from JSON.
func ParseCampaign(data []byte) (CampaignSpec, error) {
	var c CampaignSpec
	if err := json.Unmarshal(data, &c); err != nil {
		return CampaignSpec{}, fmt.Errorf("shard: parse campaign: %w", err)
	}
	return c, nil
}

// Campaign is a compiled, executable campaign: every scenario compiled,
// the unit space linearised, the plan and identity fixed.
type Campaign struct {
	// Spec is the source spec.
	Spec CampaignSpec
	// Scenarios are the compiled scenarios, in unit order.
	Scenarios []*scenario.Compiled
	// Plan is the shard plan over the unit space.
	Plan Plan

	digest string
	// cum[i] is the number of units preceding scenario i; cum[len] = Units.
	cum []int64
}

// Compile validates and compiles the campaign: each scenario is validated
// and compiled (with the Seeds override applied first, when present), the
// unit space is laid out, and the plan and digest are fixed.
func (c CampaignSpec) Compile() (*Campaign, error) {
	if len(c.Scenarios) == 0 {
		return nil, fmt.Errorf("shard: campaign has no scenarios")
	}
	if c.Block < 0 {
		return nil, fmt.Errorf("shard: block = %d", c.Block)
	}
	if c.Shards < 0 {
		return nil, fmt.Errorf("shard: shards = %d", c.Shards)
	}
	digest, err := c.Digest()
	if err != nil {
		return nil, err
	}
	camp := &Campaign{
		Spec:      c,
		Scenarios: make([]*scenario.Compiled, len(c.Scenarios)),
		digest:    digest,
		cum:       make([]int64, len(c.Scenarios)+1),
	}
	seen := map[string]int{}
	for i, sp := range c.Scenarios {
		if c.Seeds != nil {
			sp.Seeds = *c.Seeds
		}
		if prev, dup := seen[sp.Name]; dup {
			return nil, fmt.Errorf("shard: scenarios[%d] and scenarios[%d] share the name %q", prev, i, sp.Name)
		}
		seen[sp.Name] = i
		compiled, err := sp.Compile()
		if err != nil {
			return nil, fmt.Errorf("shard: scenarios[%d] (%s): %w", i, sp.Name, err)
		}
		camp.Scenarios[i] = compiled
		camp.cum[i+1] = camp.cum[i] + int64(len(compiled.Seeds))
	}
	if camp.Plan, err = NewPlan(camp.cum[len(c.Scenarios)], c.shards()); err != nil {
		return nil, err
	}
	return camp, nil
}

// Units returns the campaign size: the total number of (scenario, seed)
// units across every scenario.
func (c *Campaign) Units() int64 { return c.cum[len(c.cum)-1] }

// Digest returns the campaign's content identity (see CampaignSpec.Digest).
func (c *Campaign) Digest() string { return c.digest }

// Block returns the effective MBPTA block-maxima size.
func (c *Campaign) Block() int { return c.Spec.block() }

// Unit maps global unit index u to its (scenario index, seed). The map is
// a pure function of the spec — the determinism every executor relies on.
func (c *Campaign) Unit(u int64) (scen int, seed uint64, err error) {
	if u < 0 || u >= c.Units() {
		return 0, 0, fmt.Errorf("shard: unit %d out of range [0,%d)", u, c.Units())
	}
	// Scenarios are few and units many: a linear scan of cum is fine and
	// branch-predictable (the common campaign is single-scenario).
	i := 0
	for c.cum[i+1] <= u {
		i++
	}
	return i, c.Scenarios[i].Seeds[u-c.cum[i]], nil
}

// Manifest returns the checkpoint-store manifest this campaign requires.
func (c *Campaign) Manifest() Manifest {
	return Manifest{
		Version:  ManifestVersion,
		Campaign: c.digest,
		Name:     c.Spec.Name,
		Units:    c.Units(),
		Shards:   c.Plan.Shards,
		Block:    c.Block(),
	}
}
