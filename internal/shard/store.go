package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestVersion is the checkpoint-store format version. Bump it when the
// manifest or shard-file schema changes incompatibly; Open refuses a store
// written by a different version instead of misreading it.
const ManifestVersion = 1

// Manifest identifies a checkpoint store: which campaign (by content
// digest), how large, how sharded, and in which format version. Open
// verifies a pre-existing manifest field by field, so a checkpoint
// directory can never silently resume a different campaign — the classic
// stale-checkpoint corruption a mega-campaign must rule out.
type Manifest struct {
	Version  int    `json:"version"`
	Campaign string `json:"campaign"`
	Name     string `json:"name,omitempty"`
	Units    int64  `json:"units"`
	Shards   int    `json:"shards"`
	Block    int    `json:"block"`
}

// matches reports whether two manifests describe the same computation. Name
// is a label and does not participate, matching its exclusion from the
// campaign digest.
func (m Manifest) matches(o Manifest) bool {
	return m.Version == o.Version && m.Campaign == o.Campaign &&
		m.Units == o.Units && m.Shards == o.Shards && m.Block == o.Block
}

// Store is an on-disk checkpoint directory: one manifest plus one file per
// shard holding that shard's last checkpointed aggregate. Writes are atomic
// (temp file + rename within the directory), so a shard killed mid-write
// leaves its previous checkpoint intact — the invariant resume relies on.
type Store struct {
	dir      string
	manifest Manifest
}

// Open creates or re-opens a checkpoint store under dir for the given
// manifest. A fresh directory is initialised (manifest written first, so a
// directory with shard files but no manifest never exists); an existing one
// must carry a matching manifest or Open fails — resuming under the wrong
// campaign digest is corruption, not convenience.
func Open(dir string, m Manifest) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: open store: %w", err)
	}
	path := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		body, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("shard: encode manifest: %w", err)
		}
		if err := writeAtomic(path, append(body, '\n')); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("shard: open store: %w", err)
	default:
		var have Manifest
		if err := json.Unmarshal(data, &have); err != nil {
			return nil, fmt.Errorf("shard: %s: %w", path, err)
		}
		if !have.matches(m) {
			return nil, fmt.Errorf("shard: checkpoint dir %s belongs to campaign %.12s (units=%d shards=%d block=%d v%d), not %.12s (units=%d shards=%d block=%d v%d)",
				dir, have.Campaign, have.Units, have.Shards, have.Block, have.Version,
				m.Campaign, m.Units, m.Shards, m.Block, m.Version)
		}
	}
	return &Store{dir: dir, manifest: m}, nil
}

// Manifest returns the store's identity.
func (s *Store) Manifest() Manifest { return s.manifest }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) shardPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%04d.json", i))
}

// SaveShard atomically checkpoints shard i's aggregate: the state is
// written to a temp file in the store directory and renamed over the shard
// file, so a crash at any instant leaves either the old checkpoint or the
// new one, never a torn file.
func (s *Store) SaveShard(i int, a *Agg) error {
	if i < 0 || i >= s.manifest.Shards {
		return fmt.Errorf("shard: save shard %d of %d", i, s.manifest.Shards)
	}
	data, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("shard: encode shard %d: %w", i, err)
	}
	return writeAtomic(s.shardPath(i), data)
}

// LoadShard reads shard i's last checkpoint. ok is false with no error when
// the shard has never checkpointed — the fresh-start signal. A loaded
// aggregate is validated against the manifest (block size, digest-stream
// shape, stream anchoring) before it is trusted.
func (s *Store) LoadShard(i int) (a *Agg, ok bool, err error) {
	if i < 0 || i >= s.manifest.Shards {
		return nil, false, fmt.Errorf("shard: load shard %d of %d", i, s.manifest.Shards)
	}
	data, err := os.ReadFile(s.shardPath(i))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("shard: load shard %d: %w", i, err)
	}
	a = new(Agg)
	if err := json.Unmarshal(data, a); err != nil {
		return nil, false, fmt.Errorf("shard: %s: %w", s.shardPath(i), err)
	}
	if err := a.validate(s.manifest.Block); err != nil {
		return nil, false, fmt.Errorf("shard: %s: %w", s.shardPath(i), err)
	}
	return a, true, nil
}

// writeAtomic writes data to path via a temp file and rename in the same
// directory — atomic on POSIX filesystems.
func writeAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}
