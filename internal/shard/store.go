package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"creditbus/internal/fault"
)

// ManifestVersion is the checkpoint-store format version. Bump it when the
// manifest or shard-file schema changes incompatibly; Open refuses a store
// written by a different version instead of misreading it. Version 2 added
// the SHA-256 integrity envelope around both file kinds.
const ManifestVersion = 2

// CheckpointVersion is the shard checkpoint payload schema version. A
// checkpoint whose integrity sum verifies but whose version differs fails
// with ErrCheckpointVersion — a future schema change must never be merged as
// a zero-valued aggregate.
const CheckpointVersion = 2

// Typed store errors, classified with errors.Is.
var (
	// ErrCheckpointCorrupt — a checkpoint or manifest file failed its
	// integrity check (unparseable, bad SHA-256, wrong campaign identity, or
	// invalid aggregate). The store quarantines such files and resumes from
	// the last intact state.
	ErrCheckpointCorrupt = errors.New("checkpoint corrupt")
	// ErrCheckpointVersion — a checkpoint verified intact but was written by
	// a different schema version. Not corruption: the file is quarantine-
	// exempt and the error is surfaced so an operator can migrate it.
	ErrCheckpointVersion = errors.New("checkpoint version mismatch")
)

// Domain-separation prefixes for the integrity sums, so a manifest envelope
// can never verify as a checkpoint or vice versa.
const (
	manifestSumDomain   = "cbad/manifest/v2\n"
	checkpointSumDomain = "cbad/checkpoint/v2\n"
)

// Manifest identifies a checkpoint store: which campaign (by content
// digest), how large, how sharded, and in which format version. Open
// verifies a pre-existing manifest field by field, so a checkpoint
// directory can never silently resume a different campaign — the classic
// stale-checkpoint corruption a mega-campaign must rule out.
type Manifest struct {
	Version  int    `json:"version"`
	Campaign string `json:"campaign"`
	Name     string `json:"name,omitempty"`
	Units    int64  `json:"units"`
	Shards   int    `json:"shards"`
	Block    int    `json:"block"`
}

// matches reports whether two manifests describe the same computation. Name
// is a label and does not participate, matching its exclusion from the
// campaign digest.
func (m Manifest) matches(o Manifest) bool {
	return m.Version == o.Version && m.Campaign == o.Campaign &&
		m.Units == o.Units && m.Shards == o.Shards && m.Block == o.Block
}

// manifestEnvelope is the on-disk manifest format: the raw manifest payload
// plus a SHA-256 over those exact payload bytes (domain-separated). Keeping
// the payload raw means the sum never depends on re-marshal canonicalisation.
type manifestEnvelope struct {
	Manifest json.RawMessage `json:"manifest"`
	Sum      string          `json:"sum"`
}

// checkpointEnvelope is the on-disk shard checkpoint format.
type checkpointEnvelope struct {
	Checkpoint json.RawMessage `json:"checkpoint"`
	Sum        string          `json:"sum"`
}

// checkpoint is the payload inside a shard file: schema version, campaign
// identity (so a checkpoint can never be merged into a different campaign
// even if copied between directories), shard index, and the aggregate.
type checkpoint struct {
	Version  int    `json:"version"`
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Agg      *Agg   `json:"agg"`
}

func sumHex(domain string, payload []byte) string {
	h := sha256.New()
	h.Write([]byte(domain))
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// StoreOptions customise a store's environment. The zero value is
// production: the real filesystem and no quarantine observer.
type StoreOptions struct {
	// FS is the filesystem the store performs every operation through.
	// Nil means the real filesystem; tests inject a fault.Injector.
	FS fault.FS
	// OnQuarantine, when non-nil, observes every quarantined file: the
	// original path and a short reason. Called synchronously from the
	// store operation that detected the corruption.
	OnQuarantine func(path, reason string)
}

// Store is an on-disk checkpoint directory: one manifest plus one file per
// shard holding that shard's last checkpointed aggregate, each wrapped in a
// SHA-256 integrity envelope. Writes are atomic (temp file + fsync + rename
// within the directory, with the previous checkpoint rotated to a .bak
// generation first), so a crash at any instant leaves the previous or the
// new checkpoint intact — and a corrupted file is detected, quarantined
// aside, and recovery falls back to the last intact generation.
type Store struct {
	dir          string
	manifest     Manifest
	fs           fault.FS
	onQuarantine func(path, reason string)
}

// Open creates or re-opens a checkpoint store under dir for the given
// manifest, against the real filesystem. See OpenWith.
func Open(dir string, m Manifest) (*Store, error) {
	return OpenWith(dir, m, StoreOptions{})
}

// OpenWith creates or re-opens a checkpoint store under dir for the given
// manifest. A fresh directory is initialised (manifest written first, so a
// directory with shard files but no manifest never exists); an existing one
// must carry a matching manifest or OpenWith fails — resuming under the
// wrong campaign digest is corruption, not convenience. A corrupt manifest
// file is quarantined and re-initialised from m: every shard checkpoint
// carries its own campaign identity, so a rebuilt manifest can never cause
// a foreign shard file to be merged.
func OpenWith(dir string, m Manifest, opts StoreOptions) (*Store, error) {
	s := &Store{dir: dir, manifest: m, fs: opts.FS, onQuarantine: opts.OnQuarantine}
	if s.fs == nil {
		s.fs = fault.OS{}
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: open store: %w", err)
	}
	path := filepath.Join(dir, "manifest.json")
	data, err := s.fs.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if err := s.writeManifest(path, m); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("shard: open store: %w", err)
	default:
		have, verr := decodeManifest(data)
		if verr != nil {
			// Unreadable manifest: quarantine it and re-initialise. Shard
			// checkpoints self-identify, so this cannot cross campaigns.
			if err := s.quarantine(path, verr.Error()); err != nil {
				return nil, err
			}
			if err := s.writeManifest(path, m); err != nil {
				return nil, err
			}
			break
		}
		if !have.matches(m) {
			return nil, fmt.Errorf("shard: checkpoint dir %s belongs to campaign %.12s (units=%d shards=%d block=%d v%d), not %.12s (units=%d shards=%d block=%d v%d)",
				dir, have.Campaign, have.Units, have.Shards, have.Block, have.Version,
				m.Campaign, m.Units, m.Shards, m.Block, m.Version)
		}
	}
	return s, nil
}

func (s *Store) writeManifest(path string, m Manifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("shard: encode manifest: %w", err)
	}
	// Compact on purpose: MarshalIndent would re-format the raw payload and
	// desync it from the recorded sum.
	env, err := json.Marshal(manifestEnvelope{
		Manifest: payload,
		Sum:      sumHex(manifestSumDomain, payload),
	})
	if err != nil {
		return fmt.Errorf("shard: encode manifest: %w", err)
	}
	return s.writeAtomic(path, append(env, '\n'))
}

// decodeManifest verifies and decodes a manifest envelope. Every failure
// wraps ErrCheckpointCorrupt.
func decodeManifest(data []byte) (Manifest, error) {
	var env manifestEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Manifest{}, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if len(env.Manifest) == 0 || env.Sum == "" {
		return Manifest{}, fmt.Errorf("%w: missing integrity envelope", ErrCheckpointCorrupt)
	}
	if got := sumHex(manifestSumDomain, env.Manifest); got != env.Sum {
		return Manifest{}, fmt.Errorf("%w: manifest sum %.12s != recorded %.12s", ErrCheckpointCorrupt, got, env.Sum)
	}
	var m Manifest
	if err := json.Unmarshal(env.Manifest, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	return m, nil
}

// Manifest returns the store's identity.
func (s *Store) Manifest() Manifest { return s.manifest }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) shardPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%04d.json", i))
}

// quarantine renames a corrupt file aside to path.quarantine-N (first free
// N), preserving the evidence while guaranteeing it is never read as state
// again, and notifies the observer.
func (s *Store) quarantine(path, reason string) error {
	dst := ""
	for n := 0; ; n++ {
		cand := fmt.Sprintf("%s.quarantine-%d", path, n)
		if _, err := s.fs.Stat(cand); errors.Is(err, os.ErrNotExist) {
			dst = cand
			break
		} else if err != nil {
			return fmt.Errorf("shard: quarantine %s: %w", path, err)
		}
	}
	if err := s.fs.Rename(path, dst); err != nil {
		return fmt.Errorf("shard: quarantine %s: %w", path, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("shard: quarantine %s: %w", path, err)
	}
	if s.onQuarantine != nil {
		s.onQuarantine(path, reason)
	}
	return nil
}

// SaveShard atomically checkpoints shard i's aggregate. The new state is
// written to a fsynced temp file; the current checkpoint (if any) is rotated
// to a .bak generation; then the temp file is renamed into place and the
// directory synced. A crash at any instant leaves either the previous or
// the new checkpoint reachable (primary or .bak), never only a torn file.
func (s *Store) SaveShard(i int, a *Agg) error {
	if i < 0 || i >= s.manifest.Shards {
		return fmt.Errorf("shard: save shard %d of %d", i, s.manifest.Shards)
	}
	payload, err := json.Marshal(checkpoint{
		Version:  CheckpointVersion,
		Campaign: s.manifest.Campaign,
		Shard:    i,
		Agg:      a,
	})
	if err != nil {
		return fmt.Errorf("shard: encode shard %d: %w", i, err)
	}
	env, err := json.Marshal(checkpointEnvelope{
		Checkpoint: payload,
		Sum:        sumHex(checkpointSumDomain, payload),
	})
	if err != nil {
		return fmt.Errorf("shard: encode shard %d: %w", i, err)
	}
	path := s.shardPath(i)

	// Stage the new generation fully durable before touching the old one.
	dir, base := filepath.Split(path)
	tmp, err := s.fs.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		_ = s.fs.Remove(name)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		_ = s.fs.Remove(name)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		_ = s.fs.Remove(name)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	// Rotate the committed checkpoint to its backup generation, so the
	// window between the two renames still has the previous state reachable.
	if _, err := s.fs.Stat(path); err == nil {
		if err := s.fs.Rename(path, path+".bak"); err != nil {
			_ = s.fs.Remove(name)
			return fmt.Errorf("shard: rotate %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		_ = s.fs.Remove(name)
		return fmt.Errorf("shard: rotate %s: %w", path, err)
	}
	if err := s.fs.Rename(name, path); err != nil {
		_ = s.fs.Remove(name)
		return fmt.Errorf("shard: %w", err)
	}
	if err := s.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: sync %s: %w", dir, err)
	}
	return nil
}

// LoadShard reads shard i's last intact checkpoint. ok is false with no
// error when the shard has never checkpointed — the fresh-start signal.
// Recovery order: the primary file, then the .bak generation a crashed
// rotation may have left as the only committed state. A file that fails its
// integrity check (bad sum, unparseable, foreign campaign, invalid
// aggregate) is quarantined aside and the next generation is tried; a file
// whose payload verifies but carries a different schema version fails with
// ErrCheckpointVersion and is left in place for migration.
func (s *Store) LoadShard(i int) (a *Agg, ok bool, err error) {
	if i < 0 || i >= s.manifest.Shards {
		return nil, false, fmt.Errorf("shard: load shard %d of %d", i, s.manifest.Shards)
	}
	path := s.shardPath(i)
	for _, p := range []string{path, path + ".bak"} {
		data, err := s.fs.ReadFile(p)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, false, fmt.Errorf("shard: load shard %d: %w", i, err)
		}
		agg, verr := s.decodeCheckpoint(i, data)
		if verr == nil {
			return agg, true, nil
		}
		if errors.Is(verr, ErrCheckpointVersion) {
			return nil, false, fmt.Errorf("shard: %s: %w", p, verr)
		}
		if qerr := s.quarantine(p, verr.Error()); qerr != nil {
			return nil, false, qerr
		}
	}
	return nil, false, nil
}

// decodeCheckpoint verifies a shard checkpoint envelope end to end: parse,
// integrity sum, schema version, campaign identity, shard index, aggregate
// validity. Check order matters — the sum is verified before the version
// field is trusted, so a bit-flip in the version byte reads as corruption,
// not as a foreign schema.
func (s *Store) decodeCheckpoint(i int, data []byte) (*Agg, error) {
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if len(env.Checkpoint) == 0 || env.Sum == "" {
		return nil, fmt.Errorf("%w: missing integrity envelope", ErrCheckpointCorrupt)
	}
	if got := sumHex(checkpointSumDomain, env.Checkpoint); got != env.Sum {
		return nil, fmt.Errorf("%w: checkpoint sum %.12s != recorded %.12s", ErrCheckpointCorrupt, got, env.Sum)
	}
	var cp checkpoint
	if err := json.Unmarshal(env.Checkpoint, &cp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: checkpoint v%d, store speaks v%d", ErrCheckpointVersion, cp.Version, CheckpointVersion)
	}
	if cp.Campaign != s.manifest.Campaign {
		return nil, fmt.Errorf("%w: checkpoint belongs to campaign %.12s, not %.12s", ErrCheckpointCorrupt, cp.Campaign, s.manifest.Campaign)
	}
	if cp.Shard != i {
		return nil, fmt.Errorf("%w: checkpoint is for shard %d, not %d", ErrCheckpointCorrupt, cp.Shard, i)
	}
	if cp.Agg == nil {
		return nil, fmt.Errorf("%w: checkpoint has no aggregate", ErrCheckpointCorrupt)
	}
	if err := cp.Agg.validate(s.manifest.Block); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	return cp.Agg, nil
}

// writeAtomic writes data to path via a fsynced temp file and rename in the
// same directory, then syncs the directory — atomic and durable on POSIX
// filesystems.
func (s *Store) writeAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := s.fs.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		_ = s.fs.Remove(name)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		_ = s.fs.Remove(name)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		_ = s.fs.Remove(name)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	if err := s.fs.Rename(name, path); err != nil {
		_ = s.fs.Remove(name)
		return fmt.Errorf("shard: %w", err)
	}
	if err := s.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: sync %s: %w", dir, err)
	}
	return nil
}
