package shard

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"creditbus/internal/mem"
	"creditbus/internal/scenario"
	"creditbus/internal/sim"
)

// fastSpec is a minimal-cost scenario (two cores, isolation, a tiny
// traced workload) so differential suites can afford thousands of units.
func fastSpec(name string, runs int) scenario.Spec {
	return scenario.Spec{
		Name:      name,
		Cores:     2,
		Run:       scenario.RunIsolation,
		Workloads: []scenario.Workload{{Core: 0, Name: "canrdr", Ops: 8}},
		Seeds:     scenario.Seeds{Base: 1, Runs: runs},
	}
}

// testCampaign builds a two-scenario campaign with deliberately unequal
// seed schedules, so the cumulative unit mapping is exercised.
func testCampaign(t *testing.T, units int64, shards, block int) *Campaign {
	t.Helper()
	a := int(units) * 2 / 3
	spec := CampaignSpec{
		Name:      "shard-test",
		Scenarios: []scenario.Spec{fastSpec("shard-a", a), fastSpec("shard-b", int(units)-a)},
		Shards:    shards,
		Block:     block,
	}
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Units() != units {
		t.Fatalf("campaign has %d units, want %d", c.Units(), units)
	}
	return c
}

func TestPlanRanges(t *testing.T) {
	for _, tc := range []struct {
		units  int64
		shards int
	}{
		{0, 1}, {1, 1}, {10, 1}, {10, 2}, {10, 3}, {10, 8}, {3, 8}, {1000003, 7},
	} {
		p, err := NewPlan(tc.units, tc.shards)
		if err != nil {
			t.Fatal(err)
		}
		var prev int64
		for i := 0; i < tc.shards; i++ {
			lo, hi, err := p.Range(i)
			if err != nil {
				t.Fatal(err)
			}
			if lo != prev || hi < lo {
				t.Fatalf("plan %+v: shard %d = [%d,%d) does not tile (prev end %d)", p, i, lo, hi, prev)
			}
			if size := hi - lo; size < tc.units/int64(tc.shards) || size > tc.units/int64(tc.shards)+1 {
				t.Fatalf("plan %+v: shard %d size %d is unbalanced", p, i, size)
			}
			prev = hi
		}
		if prev != tc.units {
			t.Fatalf("plan %+v: shards end at %d, want %d", p, prev, tc.units)
		}
	}
	if _, err := NewPlan(-1, 2); err == nil {
		t.Fatal("negative units must fail")
	}
	if _, err := NewPlan(10, 0); err == nil {
		t.Fatal("zero shards must fail")
	}
	p, _ := NewPlan(10, 2)
	if _, _, err := p.Range(2); err == nil {
		t.Fatal("out-of-range shard must fail")
	}
}

func TestCampaignUnitMapping(t *testing.T) {
	c := testCampaign(t, 30, 1, 5)
	// Scenario a holds units [0,20), scenario b [20,30).
	for _, tc := range []struct {
		u    int64
		scen int
		seed uint64
	}{
		{0, 0, c.Scenarios[0].Seeds[0]},
		{19, 0, c.Scenarios[0].Seeds[19]},
		{20, 1, c.Scenarios[1].Seeds[0]},
		{29, 1, c.Scenarios[1].Seeds[9]},
	} {
		scen, seed, err := c.Unit(tc.u)
		if err != nil {
			t.Fatal(err)
		}
		if scen != tc.scen || seed != tc.seed {
			t.Fatalf("Unit(%d) = (%d, %d), want (%d, %d)", tc.u, scen, seed, tc.scen, tc.seed)
		}
	}
	if _, _, err := c.Unit(30); err == nil {
		t.Fatal("out-of-range unit must fail")
	}
	if _, _, err := c.Unit(-1); err == nil {
		t.Fatal("negative unit must fail")
	}
}

// TestDigestIdentity: the digest covers the computation (scenarios, seeds,
// block) and nothing else (name, shard count) — the property that lets
// K ∈ {1, 2, 8} share one checkpoint identity.
func TestDigestIdentity(t *testing.T) {
	base := CampaignSpec{Name: "x", Scenarios: []scenario.Spec{fastSpec("s", 10)}}
	d0, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	relabeled := base
	relabeled.Name = "y"
	relabeled.Shards = 8
	if d, _ := relabeled.Digest(); d != d0 {
		t.Fatal("name/shards must not enter the digest")
	}
	blocked := base
	blocked.Block = 7
	if d, _ := blocked.Digest(); d == d0 {
		t.Fatal("block size must enter the digest")
	}
	reseeded := base
	reseeded.Seeds = &scenario.Seeds{Base: 2, Runs: 10}
	if d, _ := reseeded.Digest(); d == d0 {
		t.Fatal("seed override must enter the digest")
	}
	grown := base
	grown.Scenarios = []scenario.Spec{fastSpec("s", 11)}
	if d, _ := grown.Digest(); d == d0 {
		t.Fatal("scenario set must enter the digest")
	}
}

func TestCompileRejections(t *testing.T) {
	if _, err := (CampaignSpec{}).Compile(); err == nil {
		t.Fatal("empty campaign must fail")
	}
	dup := CampaignSpec{Scenarios: []scenario.Spec{fastSpec("s", 2), fastSpec("s", 3)}}
	if _, err := dup.Compile(); err == nil {
		t.Fatal("duplicate scenario names must fail")
	}
	bad := CampaignSpec{Scenarios: []scenario.Spec{{Name: "bad", Run: "nope"}}}
	if _, err := bad.Compile(); err == nil {
		t.Fatal("invalid scenario must fail")
	}
}

// referenceBytes runs the single-process reference and returns the
// canonical report bytes every sharded path must reproduce.
func referenceBytes(t *testing.T, c *Campaign) []byte {
	t.Helper()
	rep, err := Reference(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestShardedByteIdentity is the tentpole differential: K ∈ {1, 2, 8}
// shards, each executed by its own Runner against a shared checkpoint
// store (as K separate processes would), merge to the byte-identical
// report of the single-process reference.
func TestShardedByteIdentity(t *testing.T) {
	const units = 600
	want := referenceBytes(t, testCampaign(t, units, 1, 20))
	for _, k := range []int{1, 2, 8} {
		c := testCampaign(t, units, k, 20)
		st, err := Open(filepath.Join(t.TempDir(), "ckpt"), c.Manifest())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			// A fresh Runner per shard, as a separate worker process would be.
			r := &Runner{Campaign: c, Store: st, Workers: 2, CheckpointEvery: 64}
			agg, complete, err := r.RunShard(i)
			if err != nil {
				t.Fatalf("K=%d shard %d: %v", k, i, err)
			}
			if !complete {
				t.Fatalf("K=%d shard %d incomplete without a budget", k, i)
			}
			lo, hi, _ := c.Plan.Range(i)
			if agg.Lo != lo || agg.N != hi-lo {
				t.Fatalf("K=%d shard %d covers [%d,+%d), want [%d,%d)", k, i, agg.Lo, agg.N, lo, hi)
			}
		}
		rep, err := MergeStore(c, st)
		if err != nil {
			t.Fatalf("K=%d merge: %v", k, err)
		}
		got, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("K=%d merged report diverges from the single-process reference:\n%s\nvs\n%s", k, got, want)
		}
	}
}

// TestKillAndResume stops a shard mid-range (budgeted stop — the in-process
// stand-in for SIGKILL between checkpoints; the CLI suite kills real
// processes), restarts it from the checkpoint, and demands the merged
// report stay byte-identical to the reference.
func TestKillAndResume(t *testing.T) {
	const units = 600
	want := referenceBytes(t, testCampaign(t, units, 1, 20))
	c := testCampaign(t, units, 2, 20)
	st, err := Open(filepath.Join(t.TempDir(), "ckpt"), c.Manifest())
	if err != nil {
		t.Fatal(err)
	}

	// Shard 0 "dies" after 128 of its 300 units (two checkpoints in).
	r := &Runner{Campaign: c, Store: st, Workers: 2, CheckpointEvery: 64, MaxUnits: 128}
	agg, complete, err := r.RunShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if complete || agg.N != 128 {
		t.Fatalf("budgeted shard: complete=%v after %d units, want incomplete at 128", complete, agg.N)
	}
	if _, err := MergeStore(c, st); err == nil {
		t.Fatal("merge must refuse an incomplete campaign")
	}

	// Restart: a fresh Runner (fresh process) resumes from the checkpoint
	// and a progress observer must see it continue past 128, not restart.
	var first int64 = -1
	r2 := &Runner{Campaign: c, Store: st, Workers: 2, CheckpointEvery: 64,
		Progress: func(done, total int64) {
			if first < 0 {
				first = done
			}
		}}
	if _, complete, err = r2.RunShard(0); err != nil || !complete {
		t.Fatalf("resume: complete=%v err=%v", complete, err)
	}
	if first <= 128 {
		t.Fatalf("resume re-ran units: first progress report at %d", first)
	}
	if _, complete, err = (&Runner{Campaign: c, Store: st, Workers: 2}).RunShard(1); err != nil || !complete {
		t.Fatalf("shard 1: complete=%v err=%v", complete, err)
	}

	rep, err := MergeStore(c, st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("kill-and-resume report diverges from the reference:\n%s\nvs\n%s", got, want)
	}
}

// TestAggMergeRandomPartitions is merge ≡ collect-then-fit at the aggregate
// level: record one campaign's per-unit results, then fold them under
// random contiguous partitions with random merge bracketing and demand the
// exact state (and therefore the report) of the sequential fold.
func TestAggMergeRandomPartitions(t *testing.T) {
	c := testCampaign(t, 90, 1, 7)
	results := make([]sim.Result, c.Units())
	ref, err := NewAgg(0, c.Block())
	if err != nil {
		t.Fatal(err)
	}
	ps := &pools{c: c, p: make([]*scenario.Pool, len(c.Scenarios))}
	for u := int64(0); u < c.Units(); u++ {
		scen, seed, err := c.Unit(u)
		if err != nil {
			t.Fatal(err)
		}
		if results[u], err = ps.run(scen, seed); err != nil {
			t.Fatal(err)
		}
		ref.Add(results[u])
	}

	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k := 1 + r.Intn(9)
		cuts := map[int64]bool{}
		for len(cuts) < k-1 {
			cuts[1+int64(r.Intn(int(c.Units())-1))] = true
		}
		bounds := []int64{0}
		for b := int64(1); b < c.Units(); b++ {
			if cuts[b] {
				bounds = append(bounds, b)
			}
		}
		bounds = append(bounds, c.Units())
		parts := make([]*Agg, 0, k)
		for i := 0; i+1 < len(bounds); i++ {
			a, err := NewAgg(bounds[i], c.Block())
			if err != nil {
				t.Fatal(err)
			}
			for u := bounds[i]; u < bounds[i+1]; u++ {
				a.Add(results[u])
			}
			parts = append(parts, a)
		}
		for len(parts) > 1 { // random bracketing of adjacent merges
			i := r.Intn(len(parts) - 1)
			if err := parts[i].Merge(parts[i+1]); err != nil {
				t.Fatal(err)
			}
			parts = append(parts[:i+1], parts[i+2:]...)
		}
		got := parts[0]
		if got.N != ref.N || got.TaskCycles != ref.TaskCycles || got.WallCycles != ref.WallCycles ||
			got.BusHeld != ref.BusHeld || got.BusWait != ref.BusWait ||
			!bytes.Equal(got.Digests, ref.Digests) ||
			!reflect.DeepEqual(got.Max.FullMaxima(), ref.Max.FullMaxima()) {
			t.Fatalf("trial %d (k=%d): merged aggregate diverges from sequential fold", trial, k)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	c := testCampaign(t, 30, 2, 5)
	dir := filepath.Join(t.TempDir(), "ckpt")
	st, err := Open(dir, c.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.LoadShard(0); ok || err != nil {
		t.Fatalf("fresh store: ok=%v err=%v", ok, err)
	}
	agg, _, err := (&Runner{Campaign: c, Store: st, Workers: 1}).RunShard(0)
	if err != nil {
		t.Fatal(err)
	}
	loaded, ok, err := st.LoadShard(0)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	// Equality up to JSON canonical form: a non-nil empty Tail marshals
	// the same as nil, and the persistence contract is the encoded state.
	la, _ := json.Marshal(loaded)
	aa, _ := json.Marshal(agg)
	if !bytes.Equal(la, aa) {
		t.Fatalf("checkpoint round-trip diverges:\n%s\nvs\n%s", la, aa)
	}
	// Re-open with the same manifest succeeds; a different campaign fails.
	if _, err := Open(dir, c.Manifest()); err != nil {
		t.Fatal(err)
	}
	other := c.Manifest()
	other.Campaign = "deadbeef"
	if _, err := Open(dir, other); err == nil {
		t.Fatal("manifest mismatch must fail")
	}
	if err := st.SaveShard(5, agg); err == nil {
		t.Fatal("out-of-range save must fail")
	}
	if _, _, err := st.LoadShard(-1); err == nil {
		t.Fatal("out-of-range load must fail")
	}
}

// TestResultDigestSensitivity flips every field of a result and demands the
// digest move — the blindness bound of the byte-identity gate.
func TestResultDigestSensitivity(t *testing.T) {
	c := testCampaign(t, 3, 1, 1)
	ps := &pools{c: c, p: make([]*scenario.Pool, len(c.Scenarios))}
	scen, seed, _ := c.Unit(0)
	base, err := ps.run(scen, seed)
	if err != nil {
		t.Fatal(err)
	}
	d0 := ResultDigest(base)
	if ResultDigest(base) != d0 {
		t.Fatal("digest is not deterministic")
	}
	mutations := []func(*sim.Result){
		func(r *sim.Result) { r.TaskCycles++ },
		func(r *sim.Result) { r.WallCycles++ },
		func(r *sim.Result) { r.CPU.StallCycles++ },
		func(r *sim.Result) { r.Bus.MaxWait++ },
		func(r *sim.Result) { r.Utilisation += 1e-9 },
		func(r *sim.Result) { r.L2HitRate += 1e-9 },
		func(r *sim.Result) {
			for k := range r.MemCounts {
				r.MemCounts[k]++
				break
			}
		},
	}
	for i, mutate := range mutations {
		// Copy the map so the mutation does not leak between cases.
		cp := base
		cp.MemCounts = make(map[mem.Kind]int64, len(base.MemCounts))
		for k, v := range base.MemCounts {
			cp.MemCounts[k] = v
		}
		mutate(&cp)
		if ResultDigest(cp) == d0 {
			t.Fatalf("mutation %d did not move the digest", i)
		}
	}
}
