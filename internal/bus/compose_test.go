package bus

import (
	"testing"

	"creditbus/internal/arbiter"
	"creditbus/internal/core"
)

// TestCBAComposesWithEveryPolicy verifies §III.A's claim that "any
// arbitration policy can be applied" behind the CBA filter: under every
// backend, saturating mixed-length masters stay within their 1/N cycle
// share and nobody starves.
func TestCBAComposesWithEveryPolicy(t *testing.T) {
	backends := map[string]func() arbiter.Policy{
		"RR":   func() arbiter.Policy { return arbiter.NewRoundRobin(4) },
		"FIFO": func() arbiter.Policy { return arbiter.NewFIFO(4) },
		"LOT":  func() arbiter.Policy { return arbiter.NewLottery(4, nil, 3) },
		"RP":   func() arbiter.Policy { return arbiter.NewRandomPermutation(4, 3) },
		"PRI":  func() arbiter.Policy { return arbiter.NewFixedPriority(4) },
		"TDMA": func() arbiter.Policy { return arbiter.NewTDMA(4, 56) },
	}
	holds := map[int]int64{0: 5, 1: 56, 2: 28, 3: 56}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			credit := core.MustNew(core.Homogeneous(4, 56))
			b := MustNew(Config{
				Masters: 4, MaxHold: 56,
				Policy: mk(),
				Credit: credit,
			})
			saturate(b, holds, 500_000)
			for m := 0; m < 4; m++ {
				if s := b.CycleShare(m); s > 0.26 {
					t.Errorf("master %d share %.3f exceeds the CBA cap", m, s)
				}
				if b.Stats(m).Completions == 0 {
					t.Errorf("master %d starved", m)
				}
			}
			if credit.Underflows() != 0 {
				t.Errorf("underflows: %d", credit.Underflows())
			}
		})
	}
}

// TestCBAUnderPriorityPreventsStarvation is the §II priority argument
// inverted: plain fixed priority starves low-priority masters (see the
// arbiter tests), but with the CBA filter even the lowest-priority master
// makes steady progress because the high-priority ones exhaust their
// budgets.
func TestCBAUnderPriorityPreventsStarvation(t *testing.T) {
	credit := core.MustNew(core.Homogeneous(2, 56))
	b := MustNew(Config{
		Masters: 2, MaxHold: 56,
		Policy: arbiter.NewFixedPriority(2),
		Credit: credit,
	})
	saturate(b, map[int]int64{0: 56, 1: 5}, 200_000)
	low := b.Stats(1)
	if low.Completions < 1000 {
		t.Fatalf("low-priority master completed only %d requests under CBA", low.Completions)
	}
	// With two masters the CBA cap is 1/2.
	if s := b.CycleShare(0); s > 0.51 {
		t.Fatalf("high-priority master share %.3f exceeds the 2-master CBA cap", s)
	}
}
