package bus

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"creditbus/internal/arbiter"
	"creditbus/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden grant traces under testdata/")

// TestGoldenGrantTraces pins one canonical GrantEvent trace per arbitration
// policy, with and without the CBA filter, byte for byte. Arbitration order
// is the contract every layer above relies on — execution times, rng draw
// alignment, the event-horizon engine's bit-identity proof — so a refactor
// that reorders even one grant must fail here loudly instead of shifting
// EXPERIMENTS.md numbers silently. Regenerate deliberately with
//
//	go test ./internal/bus -run TestGoldenGrantTraces -update
//
// and re-validate EXPERIMENTS.md whenever these files change.
func TestGoldenGrantTraces(t *testing.T) {
	const (
		masters = 4
		maxHold = 56
		seed    = 42
		cycles  = 900
	)
	// One streaming driver per master: repost whenever the request line is
	// free, with per-master hold lengths covering the platform's whole
	// 5..56-cycle transaction range and staggered first requests so
	// arrival-order policies (FIFO) and slot schedules (TDMA) see distinct
	// arrival cycles.
	holds := []int64{5, 28, 56, 10}
	firstPost := []int64{0, 3, 6, 9}

	policies := map[string]func() arbiter.Policy{
		"RR":   func() arbiter.Policy { return arbiter.NewRoundRobin(masters) },
		"FIFO": func() arbiter.Policy { return arbiter.NewFIFO(masters) },
		"TDMA": func() arbiter.Policy { return arbiter.NewTDMA(masters, maxHold) },
		"LOT":  func() arbiter.Policy { return arbiter.NewLottery(masters, nil, seed) },
		"RP":   func() arbiter.Policy { return arbiter.NewRandomPermutation(masters, seed) },
		"PRI":  func() arbiter.Policy { return arbiter.NewFixedPriority(masters) },
	}

	for name, build := range policies {
		for _, cba := range []bool{false, true} {
			name, build, cba := name, build, cba
			variant := "nocba"
			if cba {
				variant = "cba"
			}
			t.Run(name+"/"+variant, func(t *testing.T) {
				var credit *core.Arbiter
				if cba {
					credit = core.MustNew(core.Homogeneous(masters, maxHold))
				}
				var trace strings.Builder
				fmt.Fprintf(&trace, "# policy=%s cba=%v masters=%d maxHold=%d seed=%d cycles=%d\n",
					name, cba, masters, maxHold, seed, cycles)
				fmt.Fprintf(&trace, "# holds=%v firstPost=%v\n", holds, firstPost)
				b := MustNew(Config{
					Masters: masters,
					MaxHold: maxHold,
					Policy:  build(),
					Credit:  credit,
					OnGrant: func(e GrantEvent) {
						fmt.Fprintf(&trace, "cycle=%d master=%d hold=%d wait=%d\n",
							e.Cycle, e.Master, e.Hold, e.Wait)
					},
				})
				for b.Cycle() < cycles {
					for m := 0; m < masters; m++ {
						if b.Cycle() >= firstPost[m] && b.CanPost(m) {
							b.MustPost(m, Request{Hold: holds[m]})
						}
					}
					b.Tick()
				}

				path := filepath.Join("testdata", fmt.Sprintf("grants_%s_%s.golden", name, variant))
				if *updateGolden {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(trace.String()), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with -update to create): %v", err)
				}
				if got := trace.String(); got != string(want) {
					t.Errorf("grant trace changed; diff against %s:\n%s", path, firstDiff(string(want), got))
				}
			})
		}
	}
}

// firstDiff renders the first diverging line of two traces.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, wl, gl)
		}
	}
	return "traces identical except length"
}
