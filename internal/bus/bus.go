// Package bus models the non-split AMBA-style shared bus of the paper's
// platform: masters (cores) post requests that, once granted, hold the bus
// for their full duration — there are no split transactions, so a granted
// request occupies the bus for up to MaxL cycles (atomic operations and
// dirty-eviction misses being the worst case).
//
// Arbitration takes one cycle (§III.C: "arbitration decisions are performed
// in one clock cycle"): a request posted during cycle t is arbitrable from
// t+1, so an L2 hit holding the bus for 5 cycles has the paper's 6-cycle
// total turnaround. The arbitration pipeline is:
//
//	pending ∧ visible → COMP gate (Table I) → CBA budget filter → policy
//
// where the COMP gate and the CBA filter are optional; with both absent the
// bus is the paper's baseline (e.g. plain random permutations).
package bus

import (
	"fmt"
	"math/bits"

	"creditbus/internal/arbiter"
	"creditbus/internal/bitset"
	"creditbus/internal/core"
)

// Request is one bus transaction request.
type Request struct {
	// Hold is how many cycles the transaction occupies the bus once
	// granted (1..MaxHold).
	Hold int64
	// Tag is opaque to the bus and returned in completion and trace
	// callbacks; the memory hierarchy uses it to identify transactions.
	Tag uint64
}

// GrantEvent describes one grant for tracing.
type GrantEvent struct {
	Master int
	Cycle  int64 // first cycle of bus occupancy
	Hold   int64
	Wait   int64 // cycles spent arbitrable before the grant
	Tag    uint64
}

// Config assembles a bus.
type Config struct {
	// Masters is the number of bus masters. Required.
	Masters int
	// MaxHold is MaxL; Post rejects longer holds. Required.
	MaxHold int64
	// Policy is the underlying arbitration policy. Required.
	Policy arbiter.Policy
	// Credit optionally installs the CBA filter in front of Policy.
	Credit *core.Arbiter
	// Signals optionally installs the Table I COMP gate (WCET-estimation
	// mode); requires Credit.
	Signals *core.Signals
	// ArbLatency is the number of cycles between posting a request and it
	// becoming arbitrable. Defaults to 1 (the paper's registered request
	// wires). Set to -1 for 0 latency (idealised analytical scenarios).
	ArbLatency int64
	// OnComplete, if set, is called at the end of the cycle in which a
	// transaction releases the bus.
	OnComplete func(master int, tag uint64)
	// OnGrant, if set, is called for every grant (tracing).
	OnGrant func(GrantEvent)
}

// MasterStats aggregates per-master bus statistics.
type MasterStats struct {
	Requests    int64 // requests posted
	Grants      int64 // requests granted (== completed + in flight)
	HeldCycles  int64 // cycles this master occupied the bus
	WaitCycles  int64 // cycles spent arbitrable but not granted
	MaxWait     int64 // longest single-request wait
	TotalWait   int64 // sum of per-request waits
	Completions int64 // transactions fully served
}

// Bus is the non-split shared bus. Not safe for concurrent use: the
// simulator drives it from a single goroutine, one Tick per cycle.
//
// Per-master state is flat struct-of-arrays — request sets as bitsets,
// visibility/hold/tag vectors as contiguous slices — so an arbitration
// decision over n masters costs a few word-level ANDs plus the policy's
// pick over the set bits, not an O(n) scan, and the idle-bus horizon is one
// pass over the pending bits. Wait accounting is lazy (see Stats), which
// removes the per-cycle O(n) wait loops Tick and Advance used to run.
type Bus struct {
	cfg        Config
	arbLatency int64
	sched      arbiter.Scheduler // non-nil iff Policy implements Scheduler
	picker     arbiter.BitPicker // non-nil iff Policy implements BitPicker

	cycle     int64
	holder    int
	remaining int64
	holderTag uint64

	// pending marks masters with a posted, ungranted request; visible is
	// the subset whose arbitration-latency register has clocked
	// (visibleAt ≤ the cycle of the last refreshVisible). visible ⊆ pending
	// always: Post sets only pending, a grant clears both.
	pending bitset.Set
	visible bitset.Set

	// queue holds posted masters awaiting visibility, in post order. Post
	// cycles are monotone and the arbitration latency constant, so the
	// queued visibleAt values are non-decreasing: refreshVisible pops a
	// prefix instead of rescanning all masters. A master has at most one
	// queued entry — a grant requires visibility, which requires the pop,
	// before CanPost opens again — so Masters entries suffice.
	queue []int32
	qhead int
	qlen  int

	visibleAt []int64
	hold      []int64
	tag       []uint64

	eligible      bitset.Set // scratch for the arbitration mask
	eligibleBools []bool     // scratch for policies without PickBits

	masterStats []MasterStats
	busyCycles  int64
	idleCycles  int64
}

// validate checks a bus configuration and resolves the arbitration latency.
func validate(cfg Config) (arbLatency int64, err error) {
	if cfg.Masters <= 0 {
		return 0, fmt.Errorf("bus: Masters = %d, need > 0", cfg.Masters)
	}
	if cfg.MaxHold <= 0 {
		return 0, fmt.Errorf("bus: MaxHold = %d, need > 0", cfg.MaxHold)
	}
	if cfg.Policy == nil {
		return 0, fmt.Errorf("bus: Policy is required")
	}
	if cfg.Credit != nil {
		if cfg.Credit.Masters() != cfg.Masters {
			return 0, fmt.Errorf("bus: Credit has %d masters, bus has %d",
				cfg.Credit.Masters(), cfg.Masters)
		}
		if cfg.Credit.MaxHold() != cfg.MaxHold {
			return 0, fmt.Errorf("bus: Credit MaxHold %d != bus MaxHold %d",
				cfg.Credit.MaxHold(), cfg.MaxHold)
		}
	}
	if cfg.Signals != nil && cfg.Credit == nil {
		return 0, fmt.Errorf("bus: Signals (COMP gate) requires Credit")
	}
	lat := cfg.ArbLatency
	switch {
	case lat == 0:
		lat = 1
	case lat == -1:
		lat = 0
	case lat < -1:
		return 0, fmt.Errorf("bus: ArbLatency = %d invalid", cfg.ArbLatency)
	}
	return lat, nil
}

// New validates cfg and builds an idle bus at cycle 0.
func New(cfg Config) (*Bus, error) {
	lat, err := validate(cfg)
	if err != nil {
		return nil, err
	}
	b := &Bus{
		cfg:         cfg,
		arbLatency:  lat,
		holder:      -1,
		pending:     bitset.New(cfg.Masters),
		visible:     bitset.New(cfg.Masters),
		queue:       make([]int32, cfg.Masters),
		visibleAt:   make([]int64, cfg.Masters),
		hold:        make([]int64, cfg.Masters),
		tag:         make([]uint64, cfg.Masters),
		eligible:    bitset.New(cfg.Masters),
		masterStats: make([]MasterStats, cfg.Masters),
	}
	b.bindPolicy(cfg.Policy)
	return b, nil
}

// bindPolicy resolves the policy's optional fast-path interfaces. Policies
// without PickBits (external implementations) go through a boolean-slice
// scratch allocated on first need.
func (b *Bus) bindPolicy(p arbiter.Policy) {
	b.sched, _ = p.(arbiter.Scheduler)
	b.picker, _ = p.(arbiter.BitPicker)
	if b.picker == nil && len(b.eligibleBools) < b.cfg.Masters {
		b.eligibleBools = make([]bool, b.cfg.Masters)
	}
}

// Reuse reinitialises the bus in place for a new configuration: the
// machine-pooling equivalent of New. Per-master state is recycled whenever
// the master count fits the existing buffers (campaigns rerun a fixed
// platform, so the steady state allocates nothing); a larger master count
// grows them once. The configuration's Policy, Credit and Signals are
// installed as given but NOT reset here — the caller owns their lifecycle
// (it may be handing over freshly reseeded components, which a blanket
// Reset would rewind to a stale seed). A reused bus is bit-identical to
// New(cfg).
func (b *Bus) Reuse(cfg Config) error {
	lat, err := validate(cfg)
	if err != nil {
		return err
	}
	words := bitset.Words(cfg.Masters)
	if cap(b.visibleAt) >= cfg.Masters && cap(b.queue) >= cfg.Masters && cap(b.pending) >= words {
		b.pending = b.pending[:words]
		b.visible = b.visible[:words]
		b.eligible = b.eligible[:words]
		b.queue = b.queue[:cfg.Masters]
		b.visibleAt = b.visibleAt[:cfg.Masters]
		b.hold = b.hold[:cfg.Masters]
		b.tag = b.tag[:cfg.Masters]
		b.masterStats = b.masterStats[:cfg.Masters]
		b.pending.Reset()
		b.visible.Reset()
		b.eligible.Reset()
		for m := 0; m < cfg.Masters; m++ {
			b.visibleAt[m] = 0
			b.hold[m] = 0
			b.tag[m] = 0
			b.masterStats[m] = MasterStats{}
		}
	} else {
		b.pending = bitset.New(cfg.Masters)
		b.visible = bitset.New(cfg.Masters)
		b.eligible = bitset.New(cfg.Masters)
		b.queue = make([]int32, cfg.Masters)
		b.visibleAt = make([]int64, cfg.Masters)
		b.hold = make([]int64, cfg.Masters)
		b.tag = make([]uint64, cfg.Masters)
		b.masterStats = make([]MasterStats, cfg.Masters)
	}
	b.qhead, b.qlen = 0, 0
	b.cfg = cfg
	b.arbLatency = lat
	b.bindPolicy(cfg.Policy)
	b.cycle = 0
	b.holder = -1
	b.remaining = 0
	b.holderTag = 0
	b.busyCycles = 0
	b.idleCycles = 0
	return nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Bus {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Cycle returns the number of completed Ticks.
func (b *Bus) Cycle() int64 { return b.cycle }

// Policy exposes the installed arbitration policy — machine reuse recycles
// it (reseeding via arbiter.Reseeder) instead of rebuilding it per run.
func (b *Bus) Policy() arbiter.Policy { return b.cfg.Policy }

// SetOnGrant installs (or, with nil, removes) the per-grant observer after
// construction. Reuse replaces the whole Config, so an observer does not
// survive reinitialisation — reinstall it after every Reuse.
func (b *Bus) SetOnGrant(fn func(GrantEvent)) { b.cfg.OnGrant = fn }

// Masters returns the number of masters.
func (b *Bus) Masters() int { return b.cfg.Masters }

// Busy reports whether a transaction currently holds the bus.
func (b *Bus) Busy() bool { return b.holder >= 0 }

// Holder returns the master holding the bus, or -1.
func (b *Bus) Holder() int { return b.holder }

// CanPost reports whether master m may post a request: at most one
// not-yet-granted request per master. A master may post while its current
// transaction still holds the bus — the AMBA request line stays asserted
// during a transfer, which is what enables back-to-back grants (and models
// Table I's permanently-set contender REQ signals).
func (b *Bus) CanPost(m int) bool {
	return m >= 0 && m < b.cfg.Masters && !b.pending.Test(m)
}

// Pending reports whether master m has a posted, not-yet-granted request.
func (b *Bus) Pending(m int) bool { return b.pending.Test(m) }

// PendingWords exposes the pending set's backing words (read-only for the
// caller). The machine's injector layer diffs its injector bitset against
// it to find re-postable masters without scanning all of them.
func (b *Bus) PendingWords() bitset.Set { return b.pending }

// Arbitrable reports whether master m has a pending request that is already
// visible to the arbiter (the arbitration-latency register has clocked it).
func (b *Bus) Arbitrable(m int) bool {
	return b.pending.Test(m) && b.visibleAt[m] <= b.cycle
}

// Post submits a request for master m during the upcoming cycle; it becomes
// arbitrable ArbLatency cycles later.
func (b *Bus) Post(m int, r Request) error {
	if m < 0 || m >= b.cfg.Masters {
		return fmt.Errorf("bus: Post from master %d of %d", m, b.cfg.Masters)
	}
	if r.Hold <= 0 || r.Hold > b.cfg.MaxHold {
		return fmt.Errorf("bus: hold %d outside [1,%d]", r.Hold, b.cfg.MaxHold)
	}
	if !b.CanPost(m) {
		return fmt.Errorf("bus: master %d already has an outstanding request", m)
	}
	b.pending.Set(m)
	b.visibleAt[m] = b.cycle + 1 + b.arbLatency
	b.queue[(b.qhead+b.qlen)%len(b.queue)] = int32(m)
	b.qlen++
	b.hold[m] = r.Hold
	b.tag[m] = r.Tag
	b.masterStats[m].Requests++
	b.cfg.Policy.OnRequest(m, b.visibleAt[m])
	return nil
}

// refreshVisible clocks the visibility register up to cycle now: queued
// masters whose visibleAt has passed move into the visible set. The queue
// is ordered by visibleAt (Post cycles are monotone, the latency constant),
// so this pops a prefix and each posted request is popped exactly once over
// its lifetime.
func (b *Bus) refreshVisible(now int64) {
	for b.qlen > 0 {
		m := int(b.queue[b.qhead])
		if b.visibleAt[m] > now {
			break
		}
		b.visible.Set(m)
		b.qhead++
		if b.qhead == len(b.queue) {
			b.qhead = 0
		}
		b.qlen--
	}
}

// MustPost is Post that panics on error, for injectors with by-construction
// valid requests.
func (b *Bus) MustPost(m int, r Request) {
	if err := b.Post(m, r); err != nil {
		panic(err)
	}
}

// arbitrate computes the eligibility mask and asks the policy for a grant.
// Called only while the bus is idle, during the (single) arbitration cycle.
// The mask is pending ∧ visible ∧ COMP ∧ budget-eligible, assembled with
// word-level ANDs over the layers' bitsets; the per-master predicate it
// evaluates is identical to the old linear scan's.
func (b *Bus) arbitrate(now int64) {
	b.refreshVisible(now)
	if !b.visible.Any() {
		return
	}
	e := b.eligible
	e.CopyFrom(b.visible)
	if b.cfg.Signals != nil {
		b.cfg.Signals.AndCompeting(e)
	}
	if b.cfg.Credit != nil {
		b.cfg.Credit.AndEligible(e)
	}
	if !e.Any() {
		return
	}
	var m int
	var ok bool
	if b.picker != nil {
		m, ok = b.picker.PickBits(e, now)
	} else {
		for i := 0; i < b.cfg.Masters; i++ {
			b.eligibleBools[i] = e.Test(i)
		}
		m, ok = b.cfg.Policy.Pick(b.eligibleBools[:b.cfg.Masters], now)
	}
	if !ok {
		return
	}
	if m < 0 || m >= b.cfg.Masters || !e.Test(m) {
		panic(fmt.Sprintf("bus: policy %s picked invalid master %d", b.cfg.Policy.Name(), m))
	}
	wait := now - b.visibleAt[m]
	st := &b.masterStats[m]
	st.Grants++
	st.TotalWait += wait
	if wait > st.MaxWait {
		st.MaxWait = wait
	}
	// Lazy wait accounting: the request waited cycles [visibleAt, now-1],
	// exactly the cycles the per-cycle wait loop used to count for it.
	st.WaitCycles += wait
	b.pending.Clear(m)
	b.visible.Clear(m)
	b.holder = m
	b.remaining = b.hold[m]
	b.holderTag = b.tag[m]
	b.cfg.Policy.OnGrant(m, now)
	if b.cfg.Signals != nil {
		b.cfg.Signals.OnGrant(m)
	}
	if b.cfg.OnGrant != nil {
		b.cfg.OnGrant(GrantEvent{Master: m, Cycle: now, Hold: b.hold[m], Wait: wait, Tag: b.tag[m]})
	}
}

// Tick advances the bus by one cycle: arbitrate if idle, update CBA budgets
// and COMP latches, account occupancy, and deliver completions.
func (b *Bus) Tick() {
	b.cycle++
	now := b.cycle

	// COMP latches update combinationally from REQ1 before arbitration:
	// contenders whose budget is full start competing in the very cycle
	// the TuA's request is first arbitrated (§III.B: contention is created
	// "as soon as possible").
	if b.cfg.Signals != nil {
		tua := b.cfg.Signals.TuA()
		b.cfg.Signals.Update(b.pending.Test(tua) && b.visibleAt[tua] <= now)
	}

	if b.holder < 0 {
		b.arbitrate(now)
	}

	if b.cfg.Credit != nil {
		b.cfg.Credit.Tick(b.holder)
	}

	if b.holder >= 0 {
		b.busyCycles++
		b.masterStats[b.holder].HeldCycles++
		b.remaining--
	} else {
		b.idleCycles++
	}

	// No per-master wait loop: waits accrue at grant time, and Stats adds
	// the live request's share on read.

	if b.holder >= 0 && b.remaining == 0 {
		m, tag := b.holder, b.holderTag
		b.masterStats[m].Completions++
		b.holder = -1
		if b.cfg.OnComplete != nil {
			b.cfg.OnComplete(m, tag)
		}
	}
}

// Run ticks the bus n cycles.
func (b *Bus) Run(n int64) {
	for i := int64(0); i < n; i++ {
		b.Tick()
	}
}

// NoEvent is the Horizon sentinel for "no bus-side event without external
// input": an idle bus whose pending masters can never become arbitrable on
// their own (typically none pending at all).
const NoEvent = int64(1<<63 - 1)

// Horizon returns the next cycle at which the bus's externally visible state
// can change and which must therefore be executed with a full Tick — the
// completion cycle of the transaction in flight, or, on an idle bus, the
// first cycle at which some pending master becomes arbitrable AND eligible
// (visible past the arbitration latency, over its CBA threshold, COMP-gated
// on) and the policy can pick. Every cycle strictly between Cycle() and the
// horizon is uneventful: no grant can happen (so randomised policies draw
// nothing), no completion fires, and only the linear counters move — which
// is exactly what Advance replays in closed form.
//
// The cycle arithmetic mirrors Tick's internal order: arbitration at cycle τ
// sees budgets after τ−1 credit Ticks (credit updates after arbitration
// within a Tick), and the COMP latch update at τ runs before arbitration, so
// a latch that sets at τ enables a grant at τ.
func (b *Bus) Horizon() int64 {
	if b.holder >= 0 {
		return b.cycle + b.remaining
	}
	floor := b.cycle + 1
	if b.cfg.Credit == nil && b.cfg.Signals == nil && b.sched == nil {
		// Plain work-conserving bus: any visible master can be picked on
		// the very next cycle, and with none visible the earliest event is
		// the visibility queue's head (minimal over pending masters — the
		// queue is visibleAt-ordered). O(words), no per-master pass.
		b.refreshVisible(b.cycle)
		if b.visible.Any() {
			return floor
		}
		if b.qlen > 0 {
			return b.visibleAt[int(b.queue[b.qhead])]
		}
		return NoEvent
	}
	best := NoEvent
	for w, word := range b.pending {
		for word != 0 {
			m := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			t := b.visibleAt[m]
			if t < floor {
				t = floor
			}
			if b.cfg.Credit != nil {
				// On an idle bus every budget refills each cycle, so the
				// eligibility crossing is a fixed future cycle.
				if k := b.cfg.Credit.CyclesUntilEligible(m); k > 0 {
					if c := floor + k; c > t {
						t = c
					}
				}
			}
			if b.cfg.Signals != nil && !b.cfg.Signals.Competing(m) {
				// WCET-mode contender whose COMP latch is not set: the latch
				// needs a saturated budget while the TuA has a request ready.
				// If the TuA is not even pending, the latch cannot set before
				// the TuA posts — and posting is a machine-level event that
				// re-computes horizons — so m contributes no bus event now.
				tua := b.cfg.Signals.TuA()
				if !b.pending.Test(tua) {
					continue
				}
				s := b.visibleAt[tua]
				if k := b.cfg.Credit.CyclesUntilSaturated(m); k > 0 {
					if c := floor + k; c > s {
						s = c
					}
				}
				if s > t {
					t = s
				}
			}
			if b.sched != nil {
				t = b.sched.NextPickCycle(t)
			}
			if t < best {
				best = t
			}
		}
	}
	return best
}

// Advance replays n uneventful cycles in closed form: occupancy, wait and
// credit counters move exactly as n Ticks would, but no arbitration,
// completion, COMP-latch or policy interaction takes place. The caller must
// guarantee the cycles really are uneventful, i.e. Cycle()+n < Horizon();
// violating the contract with a transaction in flight panics, because a
// skipped completion would corrupt the simulation silently.
//
// COMP latches are deliberately not advanced: their set condition (budget
// saturated ∧ TuA request ready) is monotone over an uneventful window —
// budgets of non-holders only refill and no grant clears anything — so the
// single Signals.Update of the next full Tick lands the latches in exactly
// the per-cycle state.
func (b *Bus) Advance(n int64) {
	if n <= 0 {
		if n == 0 {
			return
		}
		panic(fmt.Sprintf("bus: Advance(%d)", n))
	}
	if b.holder >= 0 {
		if n >= b.remaining {
			panic(fmt.Sprintf("bus: Advance(%d) past completion in %d", n, b.remaining))
		}
		b.busyCycles += n
		b.masterStats[b.holder].HeldCycles += n
		b.remaining -= n
	} else {
		b.idleCycles += n
	}
	if b.cfg.Credit != nil {
		b.cfg.Credit.TickN(b.holder, n)
	}
	b.cycle += n
	// Wait counters need no replay: lazy accounting recovers the window's
	// share at grant time (or in Stats for a still-pending request).
}

// Stats returns a copy of master m's statistics. WaitCycles for granted
// requests accrues at grant time; a still-pending visible request has
// waited cycles [visibleAt, cycle] — the live component added here — so the
// returned counters match the per-cycle accounting at every read point.
func (b *Bus) Stats(m int) MasterStats {
	st := b.masterStats[m]
	if b.pending.Test(m) {
		if v := b.visibleAt[m]; v <= b.cycle {
			st.WaitCycles += b.cycle - v + 1
		}
	}
	return st
}

// BusyCycles returns the number of cycles the bus was occupied.
func (b *Bus) BusyCycles() int64 { return b.busyCycles }

// IdleCycles returns the number of cycles the bus was free.
func (b *Bus) IdleCycles() int64 { return b.idleCycles }

// Utilisation returns busy cycles over total cycles (0 before any Tick).
func (b *Bus) Utilisation() float64 {
	if b.cycle == 0 {
		return 0
	}
	return float64(b.busyCycles) / float64(b.cycle)
}

// CycleShare returns the fraction of all elapsed cycles master m held the
// bus — the quantity CBA makes fair.
func (b *Bus) CycleShare(m int) float64 {
	if b.cycle == 0 {
		return 0
	}
	return float64(b.masterStats[m].HeldCycles) / float64(b.cycle)
}

// SlotShare returns master m's fraction of all grants — the quantity
// slot-fair policies make fair.
func (b *Bus) SlotShare(m int) float64 {
	var total int64
	for i := range b.masterStats {
		total += b.masterStats[i].Grants
	}
	if total == 0 {
		return 0
	}
	return float64(b.masterStats[m].Grants) / float64(total)
}

// Reset returns the bus, its policy, and its optional CBA filter and COMP
// gate to their initial states.
func (b *Bus) Reset() {
	b.cycle = 0
	b.holder = -1
	b.remaining = 0
	b.holderTag = 0
	b.busyCycles = 0
	b.idleCycles = 0
	b.pending.Reset()
	b.visible.Reset()
	b.qhead, b.qlen = 0, 0
	for m := range b.visibleAt {
		b.visibleAt[m] = 0
		b.hold[m] = 0
		b.tag[m] = 0
		b.masterStats[m] = MasterStats{}
	}
	b.cfg.Policy.Reset()
	if b.cfg.Credit != nil {
		b.cfg.Credit.Reset()
	}
	if b.cfg.Signals != nil {
		b.cfg.Signals.Reset()
	}
}
