package bus

import (
	"math"
	"strings"
	"testing"

	"creditbus/internal/arbiter"
	"creditbus/internal/core"
)

// saturate keeps the listed masters always requesting with fixed holds:
// whenever a master can post, it posts. Runs the bus for n cycles.
func saturate(b *Bus, holds map[int]int64, n int64) {
	for i := int64(0); i < n; i++ {
		for m, h := range holds {
			if b.CanPost(m) {
				b.MustPost(m, Request{Hold: h})
			}
		}
		b.Tick()
	}
}

func TestConfigValidation(t *testing.T) {
	rr := arbiter.NewRoundRobin(4)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"masters", Config{Masters: 0, MaxHold: 56, Policy: rr}, "Masters"},
		{"maxhold", Config{Masters: 4, MaxHold: 0, Policy: rr}, "MaxHold"},
		{"policy", Config{Masters: 4, MaxHold: 56}, "Policy"},
		{"credit masters", Config{Masters: 2, MaxHold: 56, Policy: rr,
			Credit: core.MustNew(core.Homogeneous(4, 56))}, "masters"},
		{"credit maxhold", Config{Masters: 4, MaxHold: 56, Policy: rr,
			Credit: core.MustNew(core.Homogeneous(4, 28))}, "MaxHold"},
		{"signals need credit", Config{Masters: 4, MaxHold: 56, Policy: rr,
			Signals: core.NewSignals(core.MustNew(core.Homogeneous(4, 56)), core.WCETMode, 0)}, "Credit"},
		{"arb latency", Config{Masters: 4, MaxHold: 56, Policy: rr, ArbLatency: -2}, "ArbLatency"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.cfg); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("New error = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestPostValidation(t *testing.T) {
	b := MustNew(Config{Masters: 2, MaxHold: 10, Policy: arbiter.NewRoundRobin(2)})
	if err := b.Post(2, Request{Hold: 5}); err == nil {
		t.Error("post from out-of-range master accepted")
	}
	if err := b.Post(0, Request{Hold: 0}); err == nil {
		t.Error("zero hold accepted")
	}
	if err := b.Post(0, Request{Hold: 11}); err == nil {
		t.Error("hold above MaxHold accepted")
	}
	if err := b.Post(0, Request{Hold: 5}); err != nil {
		t.Fatalf("valid post rejected: %v", err)
	}
	if err := b.Post(0, Request{Hold: 5}); err == nil {
		t.Error("double post accepted")
	}
}

func TestSingleTransactionTiming(t *testing.T) {
	// Post during cycle 1, 1-cycle arbitration latency, 5-cycle hold:
	// granted at cycle 2, completes at the end of cycle 6 — the paper's
	// 6-cycle L2-hit turnaround.
	var completedAt int64 = -1
	var b *Bus
	b = MustNew(Config{
		Masters: 4, MaxHold: 56, Policy: arbiter.NewRoundRobin(4),
		OnComplete: func(m int, tag uint64) {
			if m != 1 || tag != 99 {
				t.Errorf("completion m=%d tag=%d, want 1,99", m, tag)
			}
			completedAt = b.Cycle()
		},
	})
	b.MustPost(1, Request{Hold: 5, Tag: 99})
	b.Run(10)
	if completedAt != 6 {
		t.Fatalf("completed at cycle %d, want 6", completedAt)
	}
	st := b.Stats(1)
	if st.Grants != 1 || st.Completions != 1 || st.HeldCycles != 5 || st.MaxWait != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestZeroArbLatency(t *testing.T) {
	var completedAt int64 = -1
	var b *Bus
	b = MustNew(Config{
		Masters: 2, MaxHold: 56, Policy: arbiter.NewRoundRobin(2), ArbLatency: -1,
		OnComplete: func(int, uint64) { completedAt = b.Cycle() },
	})
	b.MustPost(0, Request{Hold: 5})
	b.Run(10)
	if completedAt != 5 {
		t.Fatalf("completed at cycle %d, want 5 with zero arbitration latency", completedAt)
	}
}

// TestSlotFairnessIsCycleUnfair reproduces the §I/§II phenomenon at bus
// level: under round-robin, a 5-cycle master against three 45-cycle masters
// receives an equal share of slots but only ~3.6% of the cycles.
func TestSlotFairnessIsCycleUnfair(t *testing.T) {
	b := MustNew(Config{Masters: 4, MaxHold: 56, Policy: arbiter.NewRoundRobin(4)})
	holds := map[int]int64{0: 5, 1: 45, 2: 45, 3: 45}
	saturate(b, holds, 280_000)
	// Slot shares: equal within tolerance.
	for m := 0; m < 4; m++ {
		if s := b.SlotShare(m); math.Abs(s-0.25) > 0.01 {
			t.Errorf("slot share of master %d = %.4f, want ~0.25", m, s)
		}
	}
	// Cycle share of the short master: 5/(5+3*45) = 0.0357.
	want := 5.0 / 140.0
	if s := b.CycleShare(0); math.Abs(s-want) > 0.005 {
		t.Errorf("cycle share of short master = %.4f, want ~%.4f", s, want)
	}
	if u := b.Utilisation(); u < 0.99 {
		t.Errorf("utilisation %.4f under saturation, want ~1", u)
	}
}

// TestCBARestoresCycleFairness attaches the CBA filter and checks that the
// same workload now yields cycle shares bounded by 1/N for the streaming
// masters — the long-request masters can no longer hog the bus.
func TestCBARestoresCycleFairness(t *testing.T) {
	credit := core.MustNew(core.Homogeneous(4, 56))
	b := MustNew(Config{
		Masters: 4, MaxHold: 56,
		Policy: arbiter.NewRoundRobin(4),
		Credit: credit,
	})
	holds := map[int]int64{0: 5, 1: 45, 2: 45, 3: 45}
	saturate(b, holds, 280_000)
	for m := 1; m < 4; m++ {
		if s := b.CycleShare(m); s > 0.26 {
			t.Errorf("long master %d cycle share %.4f exceeds CBA cap 0.25", m, s)
		}
	}
	// The short master's share must improve by a wide margin over the
	// slot-fair 0.0357 (the fluid limit is 0.25; waiting out 45-cycle
	// residuals keeps it near 0.08 with deterministic RR tie-breaking).
	if s := b.CycleShare(0); s < 2*0.0357 {
		t.Errorf("short master cycle share %.4f, want ≥ 2× the slot-fair 0.036", s)
	}
	if credit.Underflows() != 0 {
		t.Errorf("budget underflows: %d", credit.Underflows())
	}
}

// TestIllustrativeExampleRoundRobin is the §II arithmetic at bus level: a
// TuA alternating 6-cycle requests with 3 saturating 28-cycle streamers
// under round-robin waits 84 cycles per request.
func TestIllustrativeExampleRoundRobin(t *testing.T) {
	b := MustNew(Config{Masters: 4, MaxHold: 56, Policy: arbiter.NewRoundRobin(4), ArbLatency: -1})
	holds := map[int]int64{0: 6, 1: 28, 2: 28, 3: 28}
	saturate(b, holds, 90_000)
	st := b.Stats(0)
	if st.Completions < 900 {
		t.Fatalf("TuA completions = %d, want ~1000 (period 90)", st.Completions)
	}
	avgWait := float64(st.TotalWait) / float64(st.Grants)
	// Steady-state wait: 3×28 = 84 behind the three streamers, plus a few
	// cycles because the TuA reposts while still holding the bus (the
	// request becomes visible mid-hold, so its measured wait starts
	// earlier than the completion).
	if avgWait < 82 || avgWait > 92 {
		t.Errorf("TuA average wait = %.1f, want ~84..90", avgWait)
	}
}

func TestTDMAOnBusGrantsOnlyAtSlotStarts(t *testing.T) {
	var grants []GrantEvent
	b := MustNew(Config{
		Masters: 2, MaxHold: 10,
		Policy:  arbiter.NewTDMA(2, 10),
		OnGrant: func(e GrantEvent) { grants = append(grants, e) },
	})
	saturate(b, map[int]int64{0: 3, 1: 10}, 200)
	if len(grants) == 0 {
		t.Fatal("no TDMA grants")
	}
	for _, g := range grants {
		if g.Cycle%10 != 0 {
			t.Errorf("grant at cycle %d is not a slot start", g.Cycle)
		}
		owner := int(g.Cycle / 10 % 2)
		if g.Master != owner {
			t.Errorf("cycle %d granted to %d, slot owner is %d", g.Cycle, g.Master, owner)
		}
	}
	// TDMA wastes the remainder of short-request slots: utilisation < 1.
	if u := b.Utilisation(); u > 0.99 {
		t.Errorf("TDMA utilisation %.3f; expected idle time from 3-cycle requests in 10-cycle slots", u)
	}
}

// TestWorkConservation: with a work-conserving policy and no CBA, the bus is
// never idle while an arbitrable request exists.
func TestWorkConservation(t *testing.T) {
	b := MustNew(Config{Masters: 3, MaxHold: 20, Policy: arbiter.NewRoundRobin(3)})
	idleWithArbitrable := 0
	for i := int64(0); i < 10_000; i++ {
		for m := 0; m < 3; m++ {
			if b.CanPost(m) {
				b.MustPost(m, Request{Hold: int64(3 + m*5)})
			}
		}
		// A master arbitrable before the tick is still arbitrable during
		// it; if the coming cycle is idle anyway, work conservation broke.
		anyArb := false
		for m := 0; m < 3; m++ {
			anyArb = anyArb || b.Arbitrable(m)
		}
		idleBefore := b.IdleCycles()
		b.Tick()
		if anyArb && b.IdleCycles() > idleBefore {
			idleWithArbitrable++
		}
	}
	if idleWithArbitrable > 0 {
		t.Errorf("bus idle on %d cycles with arbitrable requests", idleWithArbitrable)
	}
}

func TestCompGateBlocksContendersUntilTuARequests(t *testing.T) {
	// WCET mode: contenders (masters 1..3) post constantly, but COMP keeps
	// them out of arbitration until the TuA (master 0) has a request
	// pending. The first contender grant must not precede the first TuA
	// post becoming visible.
	credit := core.MustNew(core.Config{
		Masters: 4, MaxHold: 56,
		StartEmpty: []bool{true, false, false, false},
	})
	signals := core.NewSignals(credit, core.WCETMode, 0)
	var first *GrantEvent
	b := MustNew(Config{
		Masters: 4, MaxHold: 56,
		Policy:  arbiter.NewRoundRobin(4),
		Credit:  credit,
		Signals: signals,
		OnGrant: func(e GrantEvent) {
			if first == nil {
				g := e
				first = &g
			}
		},
	})
	// Contenders saturate for 300 cycles with no TuA activity: nothing may
	// be granted.
	saturate(b, map[int]int64{1: 56, 2: 56, 3: 56}, 300)
	if first != nil {
		t.Fatalf("contender granted at cycle %d before any TuA request", first.Cycle)
	}
	// TuA posts; its budget started empty and already refilled during the
	// 300 idle cycles, so it is eligible. Contenders' COMP bits latch.
	b.MustPost(0, Request{Hold: 6})
	saturate(b, map[int]int64{1: 56, 2: 56, 3: 56}, 400)
	if first == nil {
		t.Fatal("nothing granted after TuA request")
	}
	st := b.Stats(0)
	if st.Completions != 1 {
		t.Fatalf("TuA completions = %d, want 1", st.Completions)
	}
	// With COMP latched, contenders do compete: at least one contender
	// grant must have happened while the TuA was waiting or after.
	contGrants := int64(0)
	for m := 1; m < 4; m++ {
		contGrants += b.Stats(m).Grants
	}
	if contGrants == 0 {
		t.Error("contenders never competed after COMP latched")
	}
}

func TestResetReproducibility(t *testing.T) {
	run := func(b *Bus) (int64, int64) {
		saturate(b, map[int]int64{0: 5, 1: 30, 2: 56, 3: 17}, 50_000)
		return b.Stats(0).Completions, b.BusyCycles()
	}
	b := MustNew(Config{
		Masters: 4, MaxHold: 56,
		Policy: arbiter.NewRandomPermutation(4, 12345),
		Credit: core.MustNew(core.Homogeneous(4, 56)),
	})
	c1, busy1 := run(b)
	b.Reset()
	if b.Cycle() != 0 || b.Busy() || b.Stats(0).Requests != 0 {
		t.Fatal("Reset left state behind")
	}
	c2, busy2 := run(b)
	if c1 != c2 || busy1 != busy2 {
		t.Fatalf("runs after Reset diverge: completions %d vs %d, busy %d vs %d", c1, c2, busy1, busy2)
	}
}

func TestWaitAccounting(t *testing.T) {
	// Master 1 posts while master 0 holds the bus for 20 cycles; its wait
	// must equal the cycles between becoming arbitrable and its grant.
	b := MustNew(Config{Masters: 2, MaxHold: 56, Policy: arbiter.NewRoundRobin(2)})
	b.MustPost(0, Request{Hold: 20})
	b.Run(3) // master 0 granted at cycle 2, holds 2..21
	b.MustPost(1, Request{Hold: 5})
	// Master 1 visible at cycle 5 (posted during cycle 4), granted at 22.
	b.Run(30)
	st := b.Stats(1)
	if st.Grants != 1 {
		t.Fatalf("grants = %d, want 1", st.Grants)
	}
	if st.MaxWait != 17 {
		t.Errorf("MaxWait = %d, want 17 (visible cycle 5, granted cycle 22)", st.MaxWait)
	}
	if st.WaitCycles != 17 {
		t.Errorf("WaitCycles = %d, want 17", st.WaitCycles)
	}
}

type badPolicy struct{}

func (badPolicy) Name() string                   { return "BAD" }
func (badPolicy) OnRequest(int, int64)           {}
func (badPolicy) Pick([]bool, int64) (int, bool) { return 3, true } // always picks 3
func (badPolicy) OnGrant(int, int64)             {}
func (badPolicy) Reset()                         {}

func TestPolicyMisbehaviourPanics(t *testing.T) {
	b := MustNew(Config{Masters: 4, MaxHold: 10, Policy: badPolicy{}})
	b.MustPost(0, Request{Hold: 5}) // only master 0 eligible; policy picks 3
	defer func() {
		if recover() == nil {
			t.Fatal("bus accepted an ineligible pick")
		}
	}()
	b.Run(5)
}

func TestStarvationFreedomUnderCBA(t *testing.T) {
	// Every master saturating with mixed holds: no master's single-request
	// wait may exceed the arbiter's conservative bound.
	credit := core.MustNew(core.Homogeneous(4, 56))
	b := MustNew(Config{
		Masters: 4, MaxHold: 56,
		Policy: arbiter.NewRandomPermutation(4, 99),
		Credit: credit,
	})
	saturate(b, map[int]int64{0: 5, 1: 56, 2: 33, 3: 56}, 500_000)
	for m := 0; m < 4; m++ {
		st := b.Stats(m)
		if st.Completions == 0 {
			t.Errorf("master %d starved: no completions", m)
		}
		if bound := credit.WorstCaseWait(m); st.MaxWait > bound {
			t.Errorf("master %d max wait %d exceeds bound %d", m, st.MaxWait, bound)
		}
	}
}
