package cpu

import "testing"

// scriptPort is a Port stub: it answers Begin from a script of immediates
// and records the ops it saw.
type scriptPort struct {
	immediate []bool
	seen      []Op
}

func (p *scriptPort) Begin(op Op) bool {
	p.seen = append(p.seen, op)
	if len(p.immediate) == 0 {
		return true
	}
	r := p.immediate[0]
	p.immediate = p.immediate[1:]
	return r
}

func TestTraceProgram(t *testing.T) {
	tr := NewTrace([]Op{{Kind: OpALU, Cycles: 2}, {Kind: OpLoad, Addr: 8}})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	op, ok := tr.Next()
	if !ok || op.Kind != OpALU {
		t.Fatalf("first op = %+v, %v", op, ok)
	}
	tr.Next()
	if _, ok := tr.Next(); ok {
		t.Fatal("Next past end returned ok")
	}
	tr.Reset()
	if op, ok := tr.Next(); !ok || op.Kind != OpALU {
		t.Fatalf("after Reset: %+v, %v", op, ok)
	}
}

func TestALUTiming(t *testing.T) {
	// 3-cycle ALU op + 1-cycle ALU op = 4 cycles total.
	port := &scriptPort{}
	c := NewCore(NewTrace([]Op{
		{Kind: OpALU, Cycles: 3},
		{Kind: OpALU, Cycles: 1},
	}), port)
	ticks := 0
	for !c.Done() {
		c.Tick()
		ticks++
		if ticks > 10 {
			t.Fatal("core did not finish")
		}
	}
	st := c.Stats()
	if st.Cycles != 4 || st.ALUCycles != 4 || st.Instructions != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLoadHitTakesOneCycle(t *testing.T) {
	port := &scriptPort{immediate: []bool{true}}
	c := NewCore(NewTrace([]Op{{Kind: OpLoad, Addr: 64}}), port)
	c.Tick()
	if c.Stalled() {
		t.Fatal("immediate access stalled the core")
	}
	c.Tick() // discovers end of program
	if !c.Done() {
		t.Fatal("core not done")
	}
	st := c.Stats()
	if st.Cycles != 1 || st.AccessCycles != 1 || st.Loads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMissStallsUntilResume(t *testing.T) {
	port := &scriptPort{immediate: []bool{false}}
	c := NewCore(NewTrace([]Op{{Kind: OpLoad, Addr: 64}, {Kind: OpALU, Cycles: 1}}), port)
	c.Tick() // issues the load, misses
	if !c.Stalled() {
		t.Fatal("miss did not stall")
	}
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	st := c.Stats()
	if st.StallCycles != 5 {
		t.Fatalf("stall cycles = %d, want 5", st.StallCycles)
	}
	c.Resume()
	c.Tick() // executes the ALU op
	c.Tick() // end
	if !c.Done() {
		t.Fatal("not done after resume")
	}
	st = c.Stats()
	if st.Cycles != 7 { // 1 issue + 5 stall + 1 alu
		t.Fatalf("total cycles = %d, want 7", st.Cycles)
	}
}

func TestStoreAndAtomicCounters(t *testing.T) {
	port := &scriptPort{immediate: []bool{true, false}}
	c := NewCore(NewTrace([]Op{
		{Kind: OpStore, Addr: 8},
		{Kind: OpAtomic, Addr: 16},
	}), port)
	c.Tick()
	c.Tick()
	st := c.Stats()
	if st.Stores != 1 || st.Atomics != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !c.Stalled() {
		t.Fatal("atomic with deferred completion did not stall")
	}
}

func TestResumeWithoutStallPanics(t *testing.T) {
	c := NewCore(NewTrace(nil), &scriptPort{})
	defer func() {
		if recover() == nil {
			t.Fatal("Resume on running core did not panic")
		}
	}()
	c.Resume()
}

func TestBadALUCyclesPanics(t *testing.T) {
	c := NewCore(NewTrace([]Op{{Kind: OpALU, Cycles: 0}}), &scriptPort{})
	defer func() {
		if recover() == nil {
			t.Fatal("zero-cycle ALU op did not panic")
		}
	}()
	c.Tick()
}

func TestCoreReset(t *testing.T) {
	port := &scriptPort{}
	c := NewCore(NewTrace([]Op{{Kind: OpALU, Cycles: 2}}), port)
	for !c.Done() {
		c.Tick()
	}
	c.Reset()
	if c.Done() || c.Stats().Cycles != 0 {
		t.Fatal("Reset incomplete")
	}
	ticks := 0
	for !c.Done() {
		c.Tick()
		ticks++
	}
	if c.Stats().Cycles != 2 {
		t.Fatalf("re-run cycles = %d, want 2", c.Stats().Cycles)
	}
}

func TestTickAfterDoneIsNoop(t *testing.T) {
	c := NewCore(NewTrace(nil), &scriptPort{})
	c.Tick()
	c.Tick()
	if st := c.Stats(); st.Cycles != 0 {
		t.Fatalf("empty program consumed %d cycles", st.Cycles)
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpALU.String() != "alu" || OpLoad.String() != "load" ||
		OpStore.String() != "store" || OpAtomic.String() != "atomic" {
		t.Fatal("OpKind strings wrong")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Fatal("unknown OpKind string wrong")
	}
}
