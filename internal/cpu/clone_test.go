package cpu

import "testing"

func TestTraceCloneIndependentCursor(t *testing.T) {
	base := NewTrace([]Op{
		{Kind: OpLoad, Addr: 8},
		{Kind: OpALU, Cycles: 2},
		{Kind: OpStore, Addr: 16},
	})
	// Advance the base before cloning: the clone must start from zero.
	base.Next()
	base.Next()

	p, ok := TryClone(base)
	if !ok {
		t.Fatal("Trace not cloneable")
	}
	clone := p.(*Trace)
	if clone.Len() != base.Len() {
		t.Fatalf("clone length %d, want %d", clone.Len(), base.Len())
	}
	op, ok := clone.Next()
	if !ok || op.Kind != OpLoad || op.Addr != 8 {
		t.Fatalf("clone first op = %+v, want the initial load", op)
	}
	// Cursors are independent in both directions.
	base.Reset()
	if op, _ := clone.Next(); op.Kind != OpALU {
		t.Fatalf("clone cursor disturbed by base Reset: %+v", op)
	}
}

func TestTryCloneNonCloneable(t *testing.T) {
	if _, ok := TryClone(nonCloneable{}); ok {
		t.Fatal("non-cloneable program claimed cloneable")
	}
}

type nonCloneable struct{}

func (nonCloneable) Next() (Op, bool) { return Op{}, false }
func (nonCloneable) Reset()           {}
