// Package cpu models the in-order, single-issue pipelined cores of the
// paper's platform (SPARC V8 LEON3). The model is a timing model, not an
// ISA interpreter: programs are streams of operations — ALU work of a known
// cycle count and memory accesses — and the core advances one cycle per
// Tick, stalling whenever a memory access cannot complete locally. This is
// the property the paper's WCET argument relies on: "the impact of
// contention in execution time is the same for different requests of the
// TuA, which is often the case in simple in-order processors" (§III.B).
package cpu

import "fmt"

// OpKind distinguishes operation classes.
type OpKind uint8

const (
	// OpALU is Cycles worth of computation with no memory traffic.
	OpALU OpKind = iota
	// OpLoad reads Addr through the data cache hierarchy; the core stalls
	// until data returns.
	OpLoad
	// OpStore writes Addr; write-through L1 sends it to the bus, but a
	// store buffer hides the latency unless it is full.
	OpStore
	// OpAtomic is an unsplittable read-modify-write of Addr (the paper's
	// worst-case 56-cycle bus transaction); the core stalls until done.
	OpAtomic
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpALU:
		return "alu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAtomic:
		return "atomic"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one program operation.
type Op struct {
	Kind OpKind
	// Addr is the byte address of memory operations.
	Addr uint64
	// Cycles is the duration of OpALU operations (≥ 1).
	Cycles int64
}

// Program supplies the core's operation stream.
type Program interface {
	// Next returns the next operation, or ok=false at program end.
	Next() (op Op, ok bool)
	// Reset rewinds the program to its beginning.
	Reset()
}

// Cloner is implemented by programs that can produce an independent
// instance of themselves: same operation stream, fresh cursor, no shared
// mutable state. Parallel measurement campaigns rely on it so that
// concurrent runs never share a trace position. Clone may return nil when
// the instance cannot currently be cloned (e.g. a wrapper around a
// non-cloneable inner program); use TryClone to handle both cases.
type Cloner interface {
	Clone() Program
}

// TryClone returns an independent instance of p, or ok=false when p does
// not support cloning.
func TryClone(p Program) (Program, bool) {
	c, ok := p.(Cloner)
	if !ok {
		return nil, false
	}
	q := c.Clone()
	if q == nil {
		return nil, false
	}
	return q, true
}

// Trace is a replayable Program backed by a slice.
type Trace struct {
	ops []Op
	pos int
}

// NewTrace wraps ops; the slice is retained, not copied.
func NewTrace(ops []Op) *Trace { return &Trace{ops: ops} }

// Next implements Program.
func (t *Trace) Next() (Op, bool) {
	if t.pos >= len(t.ops) {
		return Op{}, false
	}
	op := t.ops[t.pos]
	t.pos++
	return op, true
}

// Reset implements Program.
func (t *Trace) Reset() { t.pos = 0 }

// Clone implements Cloner: the returned Trace shares the (read-only)
// operation slice and starts at position zero.
func (t *Trace) Clone() Program { return &Trace{ops: t.ops} }

// Len returns the number of operations.
func (t *Trace) Len() int { return len(t.ops) }

// Ops exposes the underlying operations (read-only use).
func (t *Trace) Ops() []Op { return t.ops }

// Port is the core's window into the memory hierarchy (L1, store buffer,
// bus, L2 partition, memory controller).
type Port interface {
	// Begin starts op's access. If it returns true the access completed
	// within its single issue cycle (L1 hit, or a store absorbed by the
	// store buffer); otherwise the core stalls until Resume is called on
	// it.
	Begin(op Op) bool
}

// Stats are the core's cycle-accounting counters.
type Stats struct {
	Cycles       int64 // total ticks while the program was live
	StallCycles  int64 // ticks spent stalled on memory
	ALUCycles    int64 // ticks spent in ALU work
	AccessCycles int64 // ticks spent issuing memory operations
	Instructions int64 // operations consumed
	Loads        int64
	Stores       int64
	Atomics      int64
}

// Core is one in-order core. Drive it with one Tick per cycle; the memory
// system unblocks it with Resume.
type Core struct {
	prog    Program
	port    Port
	stalled bool
	aluLeft int64
	done    bool
	stats   Stats
}

// NewCore binds a program to a memory port.
func NewCore(prog Program, port Port) *Core {
	if prog == nil || port == nil {
		panic("cpu: NewCore needs a program and a port")
	}
	return &Core{prog: prog, port: port}
}

// Done reports whether the program has finished.
func (c *Core) Done() bool { return c.done }

// Stalled reports whether the core is waiting on memory.
func (c *Core) Stalled() bool { return c.stalled }

// Stats returns a copy of the counters.
func (c *Core) Stats() Stats { return c.stats }

// Resume unblocks a stalled core; its next Tick proceeds with the program.
// The memory system calls this when the outstanding access completes.
func (c *Core) Resume() {
	if !c.stalled {
		panic("cpu: Resume on a core that is not stalled")
	}
	c.stalled = false
}

// Tick advances the core one cycle.
func (c *Core) Tick() {
	if c.done {
		return
	}
	c.stats.Cycles++
	if c.stalled {
		c.stats.StallCycles++
		return
	}
	if c.aluLeft > 0 {
		c.aluLeft--
		c.stats.ALUCycles++
		return
	}
	op, ok := c.prog.Next()
	if !ok {
		c.done = true
		c.stats.Cycles-- // the tick that found program end does not count
		return
	}
	c.stats.Instructions++
	switch op.Kind {
	case OpALU:
		if op.Cycles < 1 {
			panic(fmt.Sprintf("cpu: ALU op with %d cycles", op.Cycles))
		}
		c.stats.ALUCycles++
		c.aluLeft = op.Cycles - 1
	case OpLoad, OpStore, OpAtomic:
		switch op.Kind {
		case OpLoad:
			c.stats.Loads++
		case OpStore:
			c.stats.Stores++
		default:
			c.stats.Atomics++
		}
		c.stats.AccessCycles++
		if !c.port.Begin(op) {
			c.stalled = true
		}
	default:
		panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
	}
}

// Reset rewinds the program and clears all state and counters.
func (c *Core) Reset() {
	c.prog.Reset()
	c.stalled = false
	c.aluLeft = 0
	c.done = false
	c.stats = Stats{}
}
