// Package cpu models the in-order, single-issue pipelined cores of the
// paper's platform (SPARC V8 LEON3). The model is a timing model, not an
// ISA interpreter: programs are streams of operations — ALU work of a known
// cycle count and memory accesses — and the core advances one cycle per
// Tick, stalling whenever a memory access cannot complete locally. This is
// the property the paper's WCET argument relies on: "the impact of
// contention in execution time is the same for different requests of the
// TuA, which is often the case in simple in-order processors" (§III.B).
package cpu

import "fmt"

// OpKind distinguishes operation classes.
type OpKind uint8

const (
	// OpALU is Cycles worth of computation with no memory traffic.
	OpALU OpKind = iota
	// OpLoad reads Addr through the data cache hierarchy; the core stalls
	// until data returns.
	OpLoad
	// OpStore writes Addr; write-through L1 sends it to the bus, but a
	// store buffer hides the latency unless it is full.
	OpStore
	// OpAtomic is an unsplittable read-modify-write of Addr (the paper's
	// worst-case 56-cycle bus transaction); the core stalls until done.
	OpAtomic
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpALU:
		return "alu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAtomic:
		return "atomic"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one program operation.
type Op struct {
	Kind OpKind
	// Addr is the byte address of memory operations.
	Addr uint64
	// Cycles is the duration of OpALU operations (≥ 1).
	Cycles int64
}

// Program supplies the core's operation stream.
type Program interface {
	// Next returns the next operation, or ok=false at program end.
	Next() (op Op, ok bool)
	// Reset rewinds the program to its beginning.
	Reset()
}

// Cloner is implemented by programs that can produce an independent
// instance of themselves: same operation stream, fresh cursor, no shared
// mutable state. Parallel measurement campaigns rely on it so that
// concurrent runs never share a trace position. Clone may return nil when
// the instance cannot currently be cloned (e.g. a wrapper around a
// non-cloneable inner program); use TryClone to handle both cases.
type Cloner interface {
	Clone() Program
}

// TryClone returns an independent instance of p, or ok=false when p does
// not support cloning.
func TryClone(p Program) (Program, bool) {
	c, ok := p.(Cloner)
	if !ok {
		return nil, false
	}
	q := c.Clone()
	if q == nil {
		return nil, false
	}
	return q, true
}

// Trace is a replayable Program backed by a slice.
type Trace struct {
	ops []Op
	pos int
}

// NewTrace wraps ops; the slice is retained, not copied.
func NewTrace(ops []Op) *Trace { return &Trace{ops: ops} }

// Next implements Program.
func (t *Trace) Next() (Op, bool) {
	if t.pos >= len(t.ops) {
		return Op{}, false
	}
	op := t.ops[t.pos]
	t.pos++
	return op, true
}

// Reset implements Program.
func (t *Trace) Reset() { t.pos = 0 }

// Clone implements Cloner: the returned Trace shares the (read-only)
// operation slice and starts at position zero.
func (t *Trace) Clone() Program { return &Trace{ops: t.ops} }

// Len returns the number of operations.
func (t *Trace) Len() int { return len(t.ops) }

// Ops exposes the underlying operations (read-only use).
func (t *Trace) Ops() []Op { return t.ops }

// Port is the core's window into the memory hierarchy (L1, store buffer,
// bus, L2 partition, memory controller).
type Port interface {
	// Begin starts op's access. If it returns true the access completed
	// within its single issue cycle (L1 hit, or a store absorbed by the
	// store buffer); otherwise the core stalls until Resume is called on
	// it.
	Begin(op Op) bool
}

// Stats are the core's cycle-accounting counters.
type Stats struct {
	Cycles       int64 // total ticks while the program was live
	StallCycles  int64 // ticks spent stalled on memory
	ALUCycles    int64 // ticks spent in ALU work
	AccessCycles int64 // ticks spent issuing memory operations
	Instructions int64 // operations consumed
	Loads        int64
	Stores       int64
	Atomics      int64
}

// Core is one in-order core. Drive it with one Tick per cycle; the memory
// system unblocks it with Resume.
//
// For event-horizon stepping, NextEventIn reports how many cycles of pure
// ALU burn or stall lie ahead and AdvanceIdle replays them in bulk; both
// rely on a one-operation lookahead buffer (fetched/buffered/progEnded)
// that Tick consumes transparently, so mixing bulk and per-cycle driving is
// safe. The lookahead assumes Programs are oblivious: their operation
// stream must not depend on when Next is called relative to other
// simulation activity — true of every Program in this module (replayable
// traces and loops thereof).
type Core struct {
	prog    Program
	port    Port
	stalled bool
	aluLeft int64
	done    bool
	stats   Stats

	fetched   bool // buffered holds a prefetched, not-yet-issued operation
	buffered  Op
	progEnded bool // prog.Next returned false during lookahead
}

// NewCore binds a program to a memory port.
func NewCore(prog Program, port Port) *Core {
	if prog == nil || port == nil {
		panic("cpu: NewCore needs a program and a port")
	}
	return &Core{prog: prog, port: port}
}

// Done reports whether the program has finished.
func (c *Core) Done() bool { return c.done }

// Stalled reports whether the core is waiting on memory.
func (c *Core) Stalled() bool { return c.stalled }

// Stats returns a copy of the counters.
func (c *Core) Stats() Stats { return c.stats }

// Resume unblocks a stalled core; its next Tick proceeds with the program.
// The memory system calls this when the outstanding access completes.
func (c *Core) Resume() {
	if !c.stalled {
		panic("cpu: Resume on a core that is not stalled")
	}
	c.stalled = false
}

// Tick advances the core one cycle.
func (c *Core) Tick() {
	if c.done {
		return
	}
	c.stats.Cycles++
	if c.stalled {
		c.stats.StallCycles++
		return
	}
	if c.aluLeft > 0 {
		c.aluLeft--
		c.stats.ALUCycles++
		return
	}
	op, ok := c.fetch()
	if !ok {
		c.done = true
		c.stats.Cycles-- // the tick that found program end does not count
		return
	}
	c.stats.Instructions++
	switch op.Kind {
	case OpALU:
		if op.Cycles < 1 {
			panic(fmt.Sprintf("cpu: ALU op with %d cycles", op.Cycles))
		}
		c.stats.ALUCycles++
		c.aluLeft = op.Cycles - 1
	case OpLoad, OpStore, OpAtomic:
		switch op.Kind {
		case OpLoad:
			c.stats.Loads++
		case OpStore:
			c.stats.Stores++
		default:
			c.stats.Atomics++
		}
		c.stats.AccessCycles++
		if !c.port.Begin(op) {
			c.stalled = true
		}
	default:
		panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
	}
}

// fetch returns the next operation, draining the lookahead buffer first.
func (c *Core) fetch() (Op, bool) {
	if c.fetched {
		c.fetched = false
		return c.buffered, true
	}
	if c.progEnded {
		return Op{}, false
	}
	return c.prog.Next()
}

// mergeALUBurst is the lookahead: it pre-consumes consecutive OpALU
// operations into aluLeft (counting their instructions now; their cycles
// accrue through the burn ticks), parking the first non-ALU operation in the
// buffer. The accounting is equivalent to consuming each ALU operation at
// its own tick — total Cycles, ALUCycles and Instructions match, only the
// intermediate instant at which Instructions increments moves — and the
// timing of every memory operation and of program completion is unchanged.
// The accumulation cap bounds the work per call (and keeps an all-ALU looped
// co-runner from being merged forever); deeper bursts simply merge again at
// the next event.
func (c *Core) mergeALUBurst() {
	const burstCap = 1 << 16
	for c.aluLeft < burstCap {
		if !c.fetched {
			if c.progEnded {
				return
			}
			op, ok := c.prog.Next()
			if !ok {
				c.progEnded = true
				return
			}
			c.fetched, c.buffered = true, op
		}
		if c.buffered.Kind != OpALU {
			return
		}
		if c.buffered.Cycles < 1 {
			panic(fmt.Sprintf("cpu: ALU op with %d cycles", c.buffered.Cycles))
		}
		c.stats.Instructions++
		c.aluLeft += c.buffered.Cycles
		c.fetched = false
	}
}

// NoEvent is the NextEventIn sentinel for a core that needs no per-cycle
// handling until something external (a memory completion) unblocks it.
const NoEvent = int64(1<<63 - 1)

// NextEventIn returns the number of cycles until this core next does
// something beyond burning ALU or stall cycles — consuming an operation
// (possibly issuing a memory access) or detecting program end — or NoEvent
// for a stalled or finished core. It may pre-consume ALU operations from
// the program into the internal burst counter (see mergeALUBurst), so it is
// part of the fast-stepping machinery, not a pure observer.
func (c *Core) NextEventIn() int64 {
	if c.done || c.stalled {
		return NoEvent
	}
	c.mergeALUBurst()
	return c.aluLeft + 1
}

// AdvanceIdle replays n uneventful cycles in bulk: stall cycles for a
// stalled core, ALU burn for a running one, nothing for a finished one —
// exactly what n Ticks would do. The caller must keep n within the window
// NextEventIn promised; overrunning an ALU burst panics because a skipped
// operation issue would silently corrupt the simulation.
func (c *Core) AdvanceIdle(n int64) {
	if n <= 0 {
		if n == 0 {
			return
		}
		panic(fmt.Sprintf("cpu: AdvanceIdle(%d)", n))
	}
	switch {
	case c.done:
	case c.stalled:
		c.stats.Cycles += n
		c.stats.StallCycles += n
	default:
		if n > c.aluLeft {
			panic(fmt.Sprintf("cpu: AdvanceIdle(%d) past ALU burst of %d", n, c.aluLeft))
		}
		c.stats.Cycles += n
		c.stats.ALUCycles += n
		c.aluLeft -= n
	}
}

// Reset rewinds the program and clears all state and counters.
func (c *Core) Reset() {
	c.prog.Reset()
	c.stalled = false
	c.aluLeft = 0
	c.done = false
	c.stats = Stats{}
	c.fetched = false
	c.buffered = Op{}
	c.progEnded = false
}

// Rebind swaps in a new program and resets all state and counters, keeping
// the port binding — the machine-reuse path's equivalent of NewCore on a
// recycled core. The rebound core is indistinguishable from a fresh one.
func (c *Core) Rebind(prog Program) {
	if prog == nil {
		panic("cpu: Rebind needs a program")
	}
	c.prog = prog
	c.Reset()
}
