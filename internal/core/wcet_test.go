package core

import "testing"

// The tests in this file verify Table I of the paper (EXP-T1 in DESIGN.md):
// the REQ/COMP/BUDG signal semantics in WCET-estimation and operation mode.

func newSignals(t *testing.T, mode Mode) (*Arbiter, *Signals) {
	t.Helper()
	cfg := Homogeneous(4, 56)
	if mode == WCETMode {
		// §III.B: the TuA starts with zero budget at analysis time.
		cfg.StartEmpty = []bool{true, false, false, false}
	}
	a := MustNew(cfg)
	return a, NewSignals(a, mode, 0)
}

func TestTableIOperationModeCompAlwaysSet(t *testing.T) {
	_, s := newSignals(t, OperationMode)
	for m := 0; m < 4; m++ {
		if !s.Competing(m) {
			t.Errorf("operation mode: COMP_%d clear, want set", m)
		}
	}
	// Update and OnGrant must not clear COMP in operation mode.
	s.Update(false)
	s.OnGrant(2)
	for m := 0; m < 4; m++ {
		if !s.Competing(m) {
			t.Errorf("operation mode after grant: COMP_%d clear, want set", m)
		}
	}
}

func TestTableIOperationModeNoSyntheticRequests(t *testing.T) {
	_, s := newSignals(t, OperationMode)
	for m := 0; m < 4; m++ {
		if s.ContenderRequesting(m) {
			t.Errorf("operation mode: synthetic REQ_%d set", m)
		}
	}
}

func TestTableIWCETContenderREQAlwaysSet(t *testing.T) {
	_, s := newSignals(t, WCETMode)
	for m := 1; m < 4; m++ {
		if !s.ContenderRequesting(m) {
			t.Errorf("WCET mode: REQ_%d clear, want always set", m)
		}
	}
	if s.ContenderRequesting(0) {
		t.Error("WCET mode: TuA must not have a synthetic REQ")
	}
}

func TestTableICompLatchSemantics(t *testing.T) {
	a, s := newSignals(t, WCETMode)
	// Initially: contenders full budget, but TuA has no request ready ->
	// COMP must stay clear.
	s.Update(false)
	for m := 1; m < 4; m++ {
		if s.Competing(m) {
			t.Errorf("COMP_%d set without REQ_tua", m)
		}
	}
	// TuA request ready + full budget -> COMP sets.
	s.Update(true)
	for m := 1; m < 4; m++ {
		if !s.Competing(m) {
			t.Errorf("COMP_%d clear despite BUDG==cap ∧ REQ1", m)
		}
	}
	// Latch: stays set after REQ_tua drops.
	s.Update(false)
	for m := 1; m < 4; m++ {
		if !s.Competing(m) {
			t.Errorf("COMP_%d did not latch", m)
		}
	}
	// Grant clears only the granted contender.
	s.OnGrant(2)
	if s.Competing(2) {
		t.Error("COMP_2 not cleared on grant")
	}
	if !s.Competing(1) || !s.Competing(3) {
		t.Error("grant to 2 cleared other COMP bits")
	}
	// Contender 2 just used the bus: its budget is not full, so COMP must
	// not re-latch even with REQ_tua set.
	a.Tick(2) // one busy cycle drains its budget below cap
	s.Update(true)
	if s.Competing(2) {
		t.Errorf("COMP_2 re-latched with budget %d < cap", a.Budget(2))
	}
	// After a full refill it latches again.
	for !a.Eligible(2) {
		a.Tick(-1)
	}
	s.Update(true)
	if !s.Competing(2) {
		t.Error("COMP_2 did not latch after refill")
	}
}

func TestTableITuAAlwaysCompetes(t *testing.T) {
	_, s := newSignals(t, WCETMode)
	if !s.Competing(0) {
		t.Error("TuA COMP treated as clear; Table I marks it unused (—)")
	}
}

func TestSignalsResetClearsLatches(t *testing.T) {
	_, s := newSignals(t, WCETMode)
	s.Update(true)
	s.Reset()
	for m := 1; m < 4; m++ {
		if s.Competing(m) {
			t.Errorf("Reset left COMP_%d set", m)
		}
	}
}

func TestSignalsModeAccessors(t *testing.T) {
	_, s := newSignals(t, WCETMode)
	if s.Mode() != WCETMode || s.TuA() != 0 {
		t.Errorf("accessors: mode=%v tua=%d", s.Mode(), s.TuA())
	}
	if WCETMode.String() != "wcet-estimation" || OperationMode.String() != "operation" {
		t.Errorf("Mode.String: %q / %q", WCETMode, OperationMode)
	}
	if got := Mode(9).String(); got != "Mode(9)" {
		t.Errorf("unknown mode string = %q", got)
	}
}

func TestSignalsValidatesTuA(t *testing.T) {
	a := MustNew(Homogeneous(4, 56))
	defer func() {
		if recover() == nil {
			t.Fatal("NewSignals with bad TuA did not panic")
		}
	}()
	NewSignals(a, WCETMode, 4)
}

func TestStateBitsMatchesPaperScale(t *testing.T) {
	// The paper: one 8-bit saturating counter per core plus a COMP bit —
	// 9 bits per core, 36 bits for the 4-core platform. Cap 224 needs 8
	// bits.
	_, s := newSignals(t, WCETMode)
	if got := s.StateBits(); got != 36 {
		t.Errorf("StateBits = %d, want 36 (4 cores × (8-bit counter + COMP))", got)
	}
}
