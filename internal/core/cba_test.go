package core

import (
	"strings"
	"testing"
	"testing/quick"

	"creditbus/internal/rng"
)

func mustHomogeneous(t *testing.T, n int, maxHold int64) *Arbiter {
	t.Helper()
	a, err := New(Homogeneous(n, maxHold))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPaperConstants(t *testing.T) {
	// The paper's platform: 4 cores, MaxL = 56, scaled cap 56*4 = 224
	// (Table I prints 228; see the package comment), drain 4 per busy
	// cycle, refill 1 per cycle.
	a := mustHomogeneous(t, 4, 56)
	if a.Scale() != 4 {
		t.Errorf("Scale = %d, want 4", a.Scale())
	}
	for m := 0; m < 4; m++ {
		if a.Cap(m) != 224 {
			t.Errorf("Cap(%d) = %d, want 224", m, a.Cap(m))
		}
		if a.Weight(m) != 1 {
			t.Errorf("Weight(%d) = %d, want 1", m, a.Weight(m))
		}
		if a.Share(m) != 0.25 {
			t.Errorf("Share(%d) = %v, want 0.25", m, a.Share(m))
		}
	}
}

func TestBudgetUpdateRules(t *testing.T) {
	// Table I "every cycle" column: BUDG_i <- min(BUDG_i+1, cap); the bus
	// holder additionally loses Scale.
	a := mustHomogeneous(t, 4, 56)
	a.SetBudgetForTest(0, 100)
	a.SetBudgetForTest(1, 224)
	a.Tick(0) // master 0 holds the bus
	if got := a.Budget(0); got != 100+1-4 {
		t.Errorf("holder budget = %d, want 97", got)
	}
	if got := a.Budget(1); got != 224 {
		t.Errorf("saturated budget = %d, want 224 (must not exceed cap)", got)
	}
	a.Tick(-1) // idle cycle
	if got := a.Budget(0); got != 98 {
		t.Errorf("idle refill = %d, want 98", got)
	}
}

func TestEligibilityRequiresFullBudget(t *testing.T) {
	a := mustHomogeneous(t, 4, 56)
	if !a.Eligible(2) {
		t.Fatal("full budget must be eligible")
	}
	a.SetBudgetForTest(2, 223)
	if a.Eligible(2) {
		t.Fatal("223/224 budget must not be eligible (paper: budget of exactly MaxL)")
	}
	a.Tick(-1)
	if !a.Eligible(2) {
		t.Fatal("refilled budget must be eligible again")
	}
}

func TestFilterEligible(t *testing.T) {
	a := mustHomogeneous(t, 4, 56)
	a.SetBudgetForTest(1, 0)
	pending := []bool{true, true, false, true}
	out := make([]bool, 4)
	a.FilterEligible(pending, out)
	want := []bool{true, false, false, true}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("FilterEligible = %v, want %v", out, want)
		}
	}
	// Aliasing pending and out is allowed.
	a.FilterEligible(pending, pending)
	for i := range want {
		if pending[i] != want[i] {
			t.Fatalf("aliased FilterEligible = %v, want %v", pending, want)
		}
	}
}

func TestMaxHoldDrainNeverUnderflows(t *testing.T) {
	// A master granted at its threshold and holding for MaxHold cycles
	// ends with exactly MaxHold*w_i budget — never negative (§ package
	// doc). Check homogeneous and both H-CBA variants.
	configs := map[string]Config{
		"homogeneous": Homogeneous(4, 56),
	}
	hw, err := HeterogeneousWeights(4, 56, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	configs["hcba-weights"] = hw
	hc, err := HeterogeneousCap(4, 56, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	configs["hcba-cap"] = hc

	for name, cfg := range configs {
		a := MustNew(cfg)
		for m := 0; m < a.Masters(); m++ {
			a.Reset()
			a.SetBudgetForTest(m, a.Threshold(m))
			for c := int64(0); c < a.MaxHold(); c++ {
				a.Tick(m)
			}
			got := a.Budget(m)
			want := a.Threshold(m) - a.MaxHold()*(a.Scale()-a.Weight(m))
			if got != want {
				t.Errorf("%s master %d: post-drain budget = %d, want %d", name, m, got, want)
			}
			if got < 0 || a.Underflows() != 0 {
				t.Errorf("%s master %d: budget underflow (budget=%d, underflows=%d)",
					name, m, got, a.Underflows())
			}
		}
	}
}

func TestRefillCycles(t *testing.T) {
	a := mustHomogeneous(t, 4, 56)
	// After a 56-cycle hold, refilling 56*(4-1) = 168 units at 1/cycle.
	if got := a.RefillCycles(0, 56); got != 168 {
		t.Errorf("RefillCycles(56) = %d, want 168", got)
	}
	if got := a.RefillCycles(0, 5); got != 15 {
		t.Errorf("RefillCycles(5) = %d, want 15", got)
	}
	// Observed refill must match the analytic value.
	a.SetBudgetForTest(1, a.Threshold(1))
	for c := int64(0); c < 56; c++ {
		a.Tick(1)
	}
	cycles := int64(0)
	for !a.Eligible(1) {
		a.Tick(-1)
		cycles++
	}
	if cycles != 168 {
		t.Errorf("observed refill = %d cycles, want 168", cycles)
	}
}

func TestStartEmptyDelaysEligibility(t *testing.T) {
	// §III.B: the TuA starts with zero budget, delaying its first request
	// by a full refill: 224 cycles on the paper's platform.
	cfg := Homogeneous(4, 56)
	cfg.StartEmpty = []bool{true, false, false, false}
	a := MustNew(cfg)
	if a.Eligible(0) {
		t.Fatal("StartEmpty master must not be eligible at reset")
	}
	cycles := int64(0)
	for !a.Eligible(0) {
		a.Tick(-1)
		cycles++
	}
	if cycles != 224 {
		t.Errorf("first eligibility after %d cycles, want 224", cycles)
	}
	for m := 1; m < 4; m++ {
		if !a.Eligible(m) {
			t.Errorf("master %d should start full", m)
		}
	}
}

func TestHeterogeneousWeightsShares(t *testing.T) {
	// Paper §IV: TuA recovers 1/2 cycle of budget per cycle, each other
	// core 1/6 — 50% of the bandwidth to the TuA.
	cfg, err := HeterogeneousWeights(4, 56, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := MustNew(cfg)
	if got := a.Share(0); got != 0.5 {
		t.Errorf("privileged share = %v, want 0.5", got)
	}
	for m := 1; m < 4; m++ {
		if got := a.Share(m); got < 1.0/6-1e-12 || got > 1.0/6+1e-12 {
			t.Errorf("contender %d share = %v, want 1/6", m, got)
		}
	}
	var total float64
	for m := 0; m < 4; m++ {
		total += a.Share(m)
	}
	if total < 1-1e-12 || total > 1+1e-12 {
		t.Errorf("shares sum to %v, want 1", total)
	}
}

func TestHeterogeneousCapVariant(t *testing.T) {
	cfg, err := HeterogeneousCap(4, 56, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := MustNew(cfg)
	if got := a.Cap(1); got != 2*224 {
		t.Errorf("privileged cap = %d, want 448", got)
	}
	if got := a.Threshold(1); got != 224 {
		t.Errorf("privileged threshold = %d, want 224", got)
	}
	// With a full double cap, the privileged master can fund two
	// back-to-back MaxHold requests and stay eligible after the first.
	for c := int64(0); c < 56; c++ {
		a.Tick(1)
	}
	if !a.Eligible(1) {
		t.Errorf("privileged master not eligible after one MaxHold burst (budget=%d)", a.Budget(1))
	}
	// An unprivileged master is not.
	a.Reset()
	for c := int64(0); c < 56; c++ {
		a.Tick(2)
	}
	if a.Eligible(2) {
		t.Error("unprivileged master eligible right after a MaxHold burst")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no masters", Config{Masters: 0, MaxHold: 56}, "Masters"},
		{"no maxhold", Config{Masters: 4, MaxHold: 0}, "MaxHold"},
		{"weights len", Config{Masters: 4, MaxHold: 56, Weights: []int64{1}}, "Weights"},
		{"weight zero", Config{Masters: 2, MaxHold: 56, Weights: []int64{1, 0}}, "Weights[1]"},
		{"oversubscribed", Config{Masters: 2, MaxHold: 56, Weights: []int64{2, 2}, Scale: 3}, "oversubscribe"},
		{"threshold len", Config{Masters: 2, MaxHold: 56, EligibilityThreshold: []int64{1}}, "EligibilityThreshold"},
		{"cap below threshold", Config{Masters: 2, MaxHold: 56,
			EligibilityThreshold: []int64{112, 112}, Cap: []int64{111, 112}}, "Cap[0]"},
		{"threshold cannot fund", Config{Masters: 2, MaxHold: 56,
			EligibilityThreshold: []int64{10, 112}, Cap: []int64{112, 112}}, "fund"},
		{"startempty len", Config{Masters: 2, MaxHold: 56, StartEmpty: []bool{true}}, "StartEmpty"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.cfg)
			if err == nil {
				t.Fatalf("config %+v unexpectedly valid", c.cfg)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestHeterogeneousConstructorsValidate(t *testing.T) {
	if _, err := HeterogeneousWeights(1, 56, 0, 1, 2); err == nil {
		t.Error("HeterogeneousWeights with 1 master should fail")
	}
	if _, err := HeterogeneousWeights(4, 56, 4, 1, 2); err == nil {
		t.Error("HeterogeneousWeights with out-of-range index should fail")
	}
	if _, err := HeterogeneousWeights(4, 56, 0, 2, 2); err == nil {
		t.Error("HeterogeneousWeights with share 1 should fail")
	}
	if _, err := HeterogeneousCap(4, 56, 0, 1); err == nil {
		t.Error("HeterogeneousCap with factor 1 should fail")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	cfg := Homogeneous(4, 56)
	cfg.StartEmpty = []bool{false, true, false, false}
	a := MustNew(cfg)
	for c := 0; c < 300; c++ {
		a.Tick(c % 4)
	}
	a.Reset()
	if a.Budget(0) != 224 || a.Budget(1) != 0 {
		t.Fatalf("Reset budgets = %d,%d, want 224,0", a.Budget(0), a.Budget(1))
	}
	if a.Underflows() != 0 {
		t.Fatal("Reset must clear underflow count")
	}
}

func TestWorstCaseWaitBound(t *testing.T) {
	a := mustHomogeneous(t, 4, 56)
	// Energy bound: Σ_{j≠m} cap / w_m + 1 = 3*224/1 + 1 = 673.
	if got := a.WorstCaseWait(0); got != 673 {
		t.Errorf("WorstCaseWait = %d, want 673", got)
	}
	// The bound must hold for every master in the heterogeneous variants.
	hw, _ := HeterogeneousWeights(4, 56, 0, 1, 2)
	b := MustNew(hw)
	for m := 0; m < 4; m++ {
		if b.WorstCaseWait(m) <= 0 {
			t.Errorf("heterogeneous WorstCaseWait(%d) not positive", m)
		}
	}
}

// runSaturated drives a minimal bus loop: every master always has a request
// of its fixed length; when the bus frees, a uniformly random eligible
// master wins (random tie-breaking, as the paper's random-permutations
// backend provides). Returns per-master occupancy shares.
func runSaturated(a *Arbiter, lengths []int64, cycles int64, seed uint64) []float64 {
	src := rng.New(seed)
	n := a.Masters()
	held := make([]int64, n)
	holder, holdLeft := -1, int64(0)
	elig := make([]int, 0, n)
	for c := int64(0); c < cycles; c++ {
		if holder < 0 {
			elig = elig[:0]
			for m := 0; m < n; m++ {
				if lengths[m] > 0 && a.Eligible(m) {
					elig = append(elig, m)
				}
			}
			if len(elig) > 0 {
				holder = elig[src.Intn(len(elig))]
				holdLeft = lengths[holder]
			}
		}
		a.Tick(holder)
		if holder >= 0 {
			held[holder]++
			holdLeft--
			if holdLeft == 0 {
				holder = -1
			}
		}
	}
	shares := make([]float64, n)
	for m := range shares {
		shares[m] = float64(held[m]) / float64(cycles)
	}
	return shares
}

// TestBandwidthShareCap is the paper's central fairness theorem (§III): CBA
// caps every master's long-run occupancy at w_i/Scale regardless of request
// length — the bandwidth a master enjoys no longer grows with how long its
// requests hold the bus.
func TestBandwidthShareCap(t *testing.T) {
	for name, mk := range map[string]func() *Arbiter{
		"homogeneous": func() *Arbiter { return MustNew(Homogeneous(4, 56)) },
		"hcba-weights": func() *Arbiter {
			cfg, _ := HeterogeneousWeights(4, 56, 0, 1, 2)
			return MustNew(cfg)
		},
	} {
		t.Run(name, func(t *testing.T) {
			a := mk()
			// The paper's motivating mix: one short-request master against
			// three streaming masters with maximum-length requests.
			lengths := []int64{5, 56, 56, 56}
			shares := runSaturated(a, lengths, 2_000_000, 42)
			if a.Underflows() != 0 {
				t.Fatalf("underflows = %d", a.Underflows())
			}
			for m := 0; m < a.Masters(); m++ {
				if cap := a.Share(m); shares[m] > cap+0.01 {
					t.Errorf("master %d (len %d): share %.4f exceeds cap %.4f",
						m, lengths[m], shares[m], cap)
				}
			}
		})
	}
}

// TestShortRequestsNotStarved contrasts CBA with slot-fair arbitration on
// the §I example: under slot fairness a 5-cycle master against three
// 56-cycle masters receives 5/(5+3·56) ≈ 2.9% of the bandwidth; under CBA
// it must get a share comparable to its contenders'.
func TestShortRequestsNotStarved(t *testing.T) {
	a := MustNew(Homogeneous(4, 56))
	lengths := []int64{5, 56, 56, 56}
	shares := runSaturated(a, lengths, 2_000_000, 7)
	// The fluid-limit share is 0.25, but on a non-split bus the short
	// master must also sit out the residual of in-flight 56-cycle holds:
	// period ≈ hold(5) + refill(15) + E[residual](≈28) ⇒ share ≈ 0.10.
	// Slot-fair arbitration gives it 5/(5+3·56) ≈ 0.029 — CBA must beat
	// that by a wide margin.
	if shares[0] < 3*0.029 {
		t.Errorf("short-request master share %.4f; want ≥ 3× the slot-fair 0.029", shares[0])
	}
	for m := 1; m < 4; m++ {
		if shares[m] > 0.26 {
			t.Errorf("long-request master %d share %.4f exceeds fair cap", m, shares[m])
		}
	}
}

// TestEqualLengthsPerfectRotation: with identical MaxHold-length requests the
// refill time (3·56 cycles) exactly covers the other three masters' holds, a
// perfect rotation emerges and every master gets exactly 1/4 with no idle.
func TestEqualLengthsPerfectRotation(t *testing.T) {
	a := MustNew(Homogeneous(4, 56))
	lengths := []int64{56, 56, 56, 56}
	const cycles = 224 * 1000 // whole number of rotations
	shares := runSaturated(a, lengths, cycles, 3)
	var sum float64
	for m, s := range shares {
		if s < 0.249 || s > 0.251 {
			t.Errorf("master %d share %.4f, want 0.25", m, s)
		}
		sum += s
	}
	if sum < 0.999 {
		t.Errorf("total utilisation %.4f, want 1.0 (no idle in perfect rotation)", sum)
	}
}

// TestSingleMasterExactShare: a master alone on the bus is throttled to
// exactly w/S by its own refill (period L + L(S-w)/w = L·S/w).
func TestSingleMasterExactShare(t *testing.T) {
	a := MustNew(Homogeneous(4, 56))
	lengths := []int64{28, 0, 0, 0} // only master 0 requests
	const cycles = 112 * 10000      // whole number of 28·4-cycle periods
	shares := runSaturated(a, lengths, cycles, 5)
	if shares[0] < 0.2499 || shares[0] > 0.2501 {
		t.Errorf("lone master share %.5f, want exactly 0.25", shares[0])
	}
}

// TestQuickBudgetInvariant drives random holder sequences and verifies
// 0 ≤ budget ≤ cap at every cycle, with grants only to eligible masters and
// holds bounded by MaxHold.
func TestQuickBudgetInvariant(t *testing.T) {
	f := func(seed uint64, holds []uint8) bool {
		a := MustNew(Homogeneous(4, 8))
		src := rng.New(seed)
		for _, h := range holds {
			m := src.Intn(4)
			if !a.Eligible(m) {
				a.Tick(-1)
				continue
			}
			hold := int64(h%8) + 1
			for c := int64(0); c < hold; c++ {
				a.Tick(m)
				for i := 0; i < 4; i++ {
					if a.Budget(i) < 0 || a.Budget(i) > a.Cap(i) {
						return false
					}
				}
			}
		}
		return a.Underflows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTickPanicsOnBadHolder(t *testing.T) {
	a := mustHomogeneous(t, 4, 56)
	defer func() {
		if recover() == nil {
			t.Fatal("Tick(99) did not panic")
		}
	}()
	a.Tick(99)
}

func TestSetBudgetForTestValidates(t *testing.T) {
	a := mustHomogeneous(t, 4, 56)
	defer func() {
		if recover() == nil {
			t.Fatal("SetBudgetForTest above cap did not panic")
		}
	}()
	a.SetBudgetForTest(0, 225)
}
