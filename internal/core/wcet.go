package core

import (
	"fmt"

	"creditbus/internal/bitset"
)

// Mode selects between the two platform configurations of §III.C.
type Mode int

const (
	// OperationMode is the deployment configuration: REQ signals follow
	// real requests, COMP is always set, budgets start full.
	OperationMode Mode = iota
	// WCETMode is the analysis configuration: contender REQ signals are
	// always set, COMP latches when a contender's budget is full while the
	// task under analysis has a request pending, contender grants hold the
	// bus for MaxL cycles, and the task under analysis starts with zero
	// budget.
	WCETMode
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case OperationMode:
		return "operation"
	case WCETMode:
		return "wcet-estimation"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Signals implements Table I of the paper: the per-master REQ and COMP bits
// the CBA arbiter consumes, for both operation and WCET-estimation mode.
// The task under analysis (TuA) runs on master TuA; every other master is a
// contender.
//
//	               WCET mode                          Operation mode
//	COMP_tua       — (not used; treated as set)       1
//	COMP_cont      latch: BUDG==cap ∧ REQ_tua         1
//	REQ_tua        when request ready                 when request ready
//	REQ_cont       1                                  when request ready
//
// A contender's COMP bit is cleared when it is granted the bus. The bit
// exists so that, at analysis time, contenders spend their budget only to
// create contention for the TuA: requests are "created only if the TuA has
// a request ready" (§III.B).
type Signals struct {
	arb  *Arbiter
	mode Mode
	tua  int
	// comp holds the COMP latches as a bitset so the bus's arbitration mask
	// applies the gate with word ANDs. Invariant: the TuA bit is always set
	// (Table I has no COMP_tua — the TuA competes whenever its budget
	// allows), so comp is directly usable as the competing mask.
	comp bitset.Set
}

// NewSignals builds the Table I signal block for arb. tua is the master
// index of the task under analysis (only meaningful in WCETMode, but kept in
// both for symmetric reporting).
func NewSignals(arb *Arbiter, mode Mode, tua int) *Signals {
	if tua < 0 || tua >= arb.Masters() {
		panic(fmt.Sprintf("core: TuA index %d out of range", tua))
	}
	s := &Signals{arb: arb, mode: mode, tua: tua, comp: bitset.New(arb.Masters())}
	s.Reset()
	return s
}

// Reset clears the COMP latches.
func (s *Signals) Reset() {
	for i := 0; i < s.arb.Masters(); i++ {
		s.comp.Assign(i, s.mode == OperationMode)
	}
	s.comp.Set(s.tua)
}

// Mode returns the configured mode.
func (s *Signals) Mode() Mode { return s.mode }

// TuA returns the master index of the task under analysis.
func (s *Signals) TuA() int { return s.tua }

// Update advances the COMP latches for one cycle. tuaReady is REQ_tua: the
// TuA has a request ready (pending and visible to the arbiter). In
// operation mode COMP stays set and Update is a no-op.
func (s *Signals) Update(tuaReady bool) {
	if s.mode == OperationMode || !tuaReady {
		return
	}
	for i := 0; i < s.arb.Masters(); i++ {
		if i == s.tua {
			continue
		}
		// Latch: set when the contender's budget is saturated and the TuA
		// has a request ready; stays set until the contender is granted.
		if s.arb.Budget(i) >= s.arb.Cap(i) {
			s.comp.Set(i)
		}
	}
}

// OnGrant clears the granted master's COMP latch (WCET mode only; in
// operation mode COMP is architecturally tied high).
func (s *Signals) OnGrant(m int) {
	if s.mode == WCETMode && m != s.tua {
		s.comp.Clear(m)
	}
}

// Competing reports COMP_m: whether master m participates in arbitration
// this cycle. The TuA always competes (its gating is its own budget).
func (s *Signals) Competing(m int) bool {
	if m == s.tua {
		return true
	}
	return s.comp.Test(m)
}

// AndCompeting intersects dst with the COMP mask in place (the TuA bit is
// always set). dst must have bitset.Words(Masters()) words.
func (s *Signals) AndCompeting(dst bitset.Set) { dst.And(s.comp) }

// ContenderRequesting reports REQ_m for a contender: always set in WCET
// mode (Table I row REQ_{2,3,4}).
func (s *Signals) ContenderRequesting(m int) bool {
	return s.mode == WCETMode && m != s.tua
}

// StateBits returns the architectural state CBA adds per master, in bits:
// the budget counter width plus the COMP latch. This is the quantity behind
// the paper's "FPGA occupancy grew by far less than 0.1%" claim; the
// experiment harness reports it as the hardware-cost substitute.
func (s *Signals) StateBits() int {
	bits := 0
	for m := 0; m < s.arb.Masters(); m++ {
		c := s.arb.Cap(m)
		w := 0
		for v := c; v > 0; v >>= 1 {
			w++
		}
		bits += w + 1 // budget counter + COMP latch
	}
	return bits
}
