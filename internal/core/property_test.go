package core

import (
	"math"
	"testing"
	"testing/quick"

	"creditbus/internal/rng"
)

// Property-based tests over randomised CBA configurations: testing/quick
// generates the shape (master count, weights, MaxL, hold schedules) and the
// assertions are the §III invariants the implementation must hold for every
// well-formed instance, not just the paper's 4-core/MaxL=56 one.

// quickCfg turns arbitrary generator bytes into a valid heterogeneous CBA
// configuration: 2..6 masters, weights 1..8, Scale = Σ weights (+ optional
// slack), MaxL 1..64.
func quickCfg(masters uint8, maxHold uint8, weightSeed uint64, slack uint8) Config {
	n := 2 + int(masters%5)
	src := rng.New(weightSeed)
	w := make([]int64, n)
	for i := range w {
		w[i] = 1 + int64(src.Uint64()%8)
	}
	var sum int64
	for _, x := range w {
		sum += x
	}
	return Config{
		Masters: n,
		MaxHold: 1 + int64(maxHold%64),
		Weights: w,
		Scale:   sum + int64(slack%5),
	}
}

// TestQuickBudgetsStayInRange: whatever holder schedule the bus applies,
// every budget stays within [0, cap] and, in a well-formed system driven
// only through grants the arbiter approved, no underflow is counted.
func TestQuickBudgetsStayInRange(t *testing.T) {
	prop := func(masters, maxHold uint8, weightSeed uint64, slack uint8, schedule []uint8) bool {
		arb, err := New(quickCfg(masters, maxHold, weightSeed, slack))
		if err != nil {
			t.Fatalf("generator produced invalid config: %v", err)
		}
		n := arb.Masters()
		// Drive an arbitrary mix: idle cycles and grants of arbitrary legal
		// lengths to eligible masters only (the bus's own contract).
		for _, b := range schedule {
			m := int(b) % (n + 1)
			if m == n || !arb.Eligible(m) {
				arb.Tick(-1)
			} else {
				hold := 1 + int64(b/3)%arb.MaxHold()
				for c := int64(0); c < hold; c++ {
					arb.Tick(m)
				}
			}
			for i := 0; i < n; i++ {
				if arb.Budget(i) < 0 || arb.Budget(i) > arb.Cap(i) {
					return false
				}
			}
		}
		return arb.Underflows() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRefillLatency: a master granted at exactly its threshold that
// holds for L cycles is ineligible for exactly ⌈L·S/w_i⌉ cycles counted
// from the first hold cycle — L cycles of occupancy plus
// RefillCycles(L) = ⌈L·(S−w_i)/w_i⌉ of refill — and not one cycle more or
// less. This is the bandwidth-fairness mechanism of §III: the refill
// latency is what caps a master's share at w_i/S regardless of L.
func TestQuickRefillLatency(t *testing.T) {
	prop := func(masters, maxHold uint8, weightSeed uint64, holdSel uint8) bool {
		arb, err := New(quickCfg(masters, maxHold, weightSeed, 0))
		if err != nil {
			t.Fatalf("generator produced invalid config: %v", err)
		}
		m := int(weightSeed % uint64(arb.Masters()))
		L := 1 + int64(holdSel)%arb.MaxHold()

		// Park master m exactly at its eligibility threshold (= cap for the
		// homogeneous construction used here).
		arb.SetBudgetForTest(m, arb.Threshold(m))

		w, s := arb.Weight(m), arb.Scale()
		wantTotal := (L*s + w - 1) / w // ⌈L·S/w⌉
		if wantTotal != L+arb.RefillCycles(m, L) {
			return false // the two published formulas must agree
		}

		ineligible := int64(0)
		for c := int64(0); c < L; c++ {
			arb.Tick(m)
			if arb.Eligible(m) {
				return s == w // only a sole master (w==S) loses nothing
			}
			ineligible++
		}
		for !arb.Eligible(m) {
			arb.Tick(-1)
			ineligible++
			if ineligible > 2*wantTotal+2 {
				return false // diverged: would never regain eligibility
			}
		}
		return ineligible == wantTotal
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickShareUpperBound is the fairness cap of §III for arbitrary
// heterogeneous configurations: whatever a work-conserving pick does and
// however long individual requests are, no continuously requesting master
// exceeds its w_i/S share (up to the banked credit, ≤ cap, it may spend at
// the start of the window). This is the budget-conservation ("energy")
// argument S·H_i ≤ T·w_i + Cap_i tested literally.
func TestQuickShareUpperBound(t *testing.T) {
	prop := func(masters, maxHold uint8, weightSeed uint64, pickSeed uint64, slack uint8) bool {
		arb, err := New(quickCfg(masters, maxHold, weightSeed, slack))
		if err != nil {
			t.Fatalf("generator produced invalid config: %v", err)
		}
		n := arb.Masters()
		src := rng.New(pickSeed)
		held := make([]int64, n)

		const total = 120_000
		cycle := int64(0)
		rr := 0
		for cycle < total {
			granted := -1
			for i := 0; i < n; i++ {
				m := (rr + i) % n
				if arb.Eligible(m) {
					granted = m
					break
				}
			}
			if granted < 0 {
				arb.Tick(-1)
				cycle++
				continue
			}
			rr = (granted + 1) % n
			hold := 1 + int64(src.Uint64())%arb.MaxHold()
			for c := int64(0); c < hold; c++ {
				arb.Tick(granted)
			}
			held[granted] += hold
			cycle += hold
		}

		for i := 0; i < n; i++ {
			// S·H_i ≤ T·w_i + Cap_i, plus one hold of slop for the grant
			// in flight when the window closed.
			bound := cycle*arb.Weight(i) + arb.Cap(i) + arb.MaxHold()*arb.Scale()
			if arb.Scale()*held[i] > bound {
				t.Logf("master %d: held %d of %d exceeds w/S bound", i, held[i], cycle)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHCBASharesConverge: the H-CBA variant-2 allocation theorem of
// §III.A in its exact form, for the families where exactness is a theorem
// rather than a fluid-limit approximation. Under saturation with MaxL
// holds, shares converge to exactly w_i/S when every master's refill time
// lands on a hold boundary: the homogeneous configuration (refill
// (N−1)·MaxL for everyone) and the paper's evaluation family
// HeterogeneousWeights(n, maxL, 0, 1, 2) — the privileged master refills in
// exactly one contender hold, the contenders in exactly 2n−3 slots, so the
// rotation tiles time perfectly for any n and MaxL. For unaligned weight
// mixes, quantisation at the saturation cap erodes shares below w_i/S
// (banking headroom is H-CBA variant 1's raison d'être), so there only the
// upper-bound law (TestQuickShareUpperBound) applies.
func TestQuickHCBASharesConverge(t *testing.T) {
	prop := func(masters, maxHold uint8, homogeneous bool) bool {
		n := 3 + int(masters%4)       // 3..6 masters
		maxL := 8 + int64(maxHold%56) // 8..63
		var cfg Config
		if homogeneous {
			cfg = Homogeneous(n, maxL)
		} else {
			var err error
			cfg, err = HeterogeneousWeights(n, maxL, 0, 1, 2)
			if err != nil {
				t.Fatalf("generator produced invalid config: %v", err)
			}
		}
		arb, err := New(cfg)
		if err != nil {
			t.Fatalf("generator produced invalid config: %v", err)
		}

		held := make([]int64, n)
		const total = 400_000
		cycle := int64(0)
		rr := 1
		for cycle < total {
			granted := -1
			if arb.Eligible(0) {
				granted = 0 // privileged served whenever eligible
			} else {
				for i := 0; i < n-1; i++ {
					m := 1 + (rr-1+i)%(n-1)
					if arb.Eligible(m) {
						granted = m
						break
					}
				}
			}
			if granted < 0 {
				arb.Tick(-1)
				cycle++
				continue
			}
			if granted != 0 {
				rr = 1 + granted%(n-1)
			}
			for c := int64(0); c < maxL; c++ {
				arb.Tick(granted)
			}
			held[granted] += maxL
			cycle += maxL
		}

		for i := 0; i < n; i++ {
			got := float64(held[i]) / float64(cycle)
			want := arb.Share(i)
			// The tiling is exact once the rotation settles; the residual is
			// the warm-up round plus the partial round at the window edge.
			tol := float64(arb.Cap(i))/float64(arb.Scale())/float64(total) +
				float64(4*int64(n)*maxL)/float64(total) + 0.005
			if math.Abs(got-want) > tol {
				t.Logf("n=%d homog=%v maxL=%d master %d: share %.4f want %.4f (tol %.4f)",
					n, homogeneous, maxL, i, got, want, tol)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20} // each case simulates 400k cycles
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
