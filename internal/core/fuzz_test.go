package core

import (
	"testing"
)

// FuzzCreditArbiterConfig builds arbiters from arbitrary configurations and
// asserts New's contract: it either returns a descriptive error or a fully
// valid arbiter — never a panic, never an arbiter that violates the budget
// invariants. Accepted arbiters are then driven through an arbitrary grant
// schedule with the bulk TickN path checked cycle-for-cycle against the
// per-cycle Tick reference, which is exactly the equivalence the simulator's
// event-horizon engine relies on.
func FuzzCreditArbiterConfig(f *testing.F) {
	f.Add(4, int64(56), []byte{1, 1, 1, 1}, int64(0), []byte{}, []byte{}, []byte{}, []byte{3, 7})
	f.Add(4, int64(56), []byte{3, 1, 1, 1}, int64(6), []byte{}, []byte{}, []byte{1, 0, 0, 0}, []byte{20, 1})
	f.Add(2, int64(1), []byte{1, 2}, int64(9), []byte{8}, []byte{12}, []byte{}, []byte{255, 0, 9})
	f.Add(0, int64(-5), []byte{}, int64(-1), []byte{0}, []byte{0}, []byte{1, 1, 1}, []byte{})
	f.Add(3, int64(64), []byte{9, 9, 9}, int64(100), []byte{200, 0, 3}, []byte{255, 255, 255}, []byte{0, 1}, []byte{4, 4, 4, 4})

	f.Fuzz(func(t *testing.T, masters int, maxHold int64, weights []byte,
		scale int64, thresholds, caps, startEmpty, schedule []byte) {
		cfg := Config{Masters: masters, MaxHold: maxHold, Scale: scale}
		for _, w := range weights {
			cfg.Weights = append(cfg.Weights, int64(w))
		}
		for _, v := range thresholds {
			cfg.EligibilityThreshold = append(cfg.EligibilityThreshold, maxHold*int64(v))
		}
		for _, v := range caps {
			cfg.Cap = append(cfg.Cap, maxHold*int64(v))
		}
		for _, v := range startEmpty {
			cfg.StartEmpty = append(cfg.StartEmpty, v&1 == 1)
		}

		arb, err := New(cfg) // must not panic on any input
		if err != nil {
			return
		}
		ref := MustNew(cfg) // a config New accepted must stay acceptable

		n := arb.Masters()
		for i := 0; i < n; i++ {
			if b := arb.Budget(i); b < 0 || b > arb.Cap(i) {
				t.Fatalf("initial budget %d of master %d outside [0,%d]", b, i, arb.Cap(i))
			}
		}

		// Arbitrary holder schedule (including idle), bulk vs per-cycle.
		for si := 0; si+1 < len(schedule); si += 2 {
			holder := int(schedule[si])%(n+1) - 1 // -1..n-1
			span := 1 + int64(schedule[si+1])%(2*spanBase(maxHold))
			arb.TickN(holder, span)
			for c := int64(0); c < span; c++ {
				ref.Tick(holder)
			}
			for i := 0; i < n; i++ {
				if arb.Budget(i) != ref.Budget(i) {
					t.Fatalf("TickN(%d,%d) diverged from Tick on master %d: %d vs %d",
						holder, span, i, arb.Budget(i), ref.Budget(i))
				}
				if b := arb.Budget(i); b < 0 || b > arb.Cap(i) {
					t.Fatalf("budget %d of master %d outside [0,%d]", b, i, arb.Cap(i))
				}
			}
			if arb.Underflows() != ref.Underflows() {
				t.Fatalf("underflow accounting diverged: %d vs %d", arb.Underflows(), ref.Underflows())
			}
		}
	})
}

// spanBase clamps the schedule span base to a sane positive value.
func spanBase(v int64) int64 {
	if v < 1 {
		return 1
	}
	if v > 1<<20 {
		return 1 << 20
	}
	return v
}
