// Package core implements Credit-Based Arbitration (CBA), the contribution
// of Slijepcevic et al., "Design and Implementation of a Fair Credit-Based
// Bandwidth Sharing Scheme for Buses" (DATE 2017).
//
// CBA is a filter in front of any slot-fair arbitration policy. Each bus
// master owns a budget measured in (scaled) cycles of bus occupancy:
//
//	Budget_i(t+1) = min(Budget_i(t) + 1/N, MaxL)          (paper Eq. 1)
//
// and the budget additionally decreases by 1 for every cycle master i holds
// the bus. Only masters whose budget is full (MaxL) are eligible for
// arbitration. Because a master that held the bus for L cycles must wait
// L*(N-1) cycles for its budget to refill, its long-run bandwidth share is
// capped at 1/N regardless of how long its individual requests are — this is
// fairness in cycles instead of fairness in slots.
//
// To keep the arithmetic integral the implementation scales Eq. 1 by S: all
// budgets gain their refill weight w_i per cycle (saturating at the cap) and
// the bus holder loses S per cycle. Homogeneous CBA uses w_i = 1, S = N and
// cap = S*MaxL; the paper's 4-core, MaxL = 56 instance is an 8-bit counter
// per core saturating at 224 (Table I prints 228 with the annotation "56x4";
// 56×4 = 224, so this implementation uses the arithmetically consistent
// value and leaves the cap configurable).
//
// Heterogeneous bandwidth allocation (H-CBA, §III.A) is supported both ways
// the paper describes:
//
//   - variant 1: raise one master's saturation cap above its eligibility
//     threshold (e.g. 2*S*MaxL), allowing back-to-back grants at the price
//     of temporal starvation of the others;
//   - variant 2: heterogeneous refill weights summing to S (e.g. w = {3,1,1,1},
//     S = 6 gives the paper's 1/2 vs 1/6 split).
package core

import (
	"errors"
	"fmt"

	"creditbus/internal/bitset"
)

// Config describes a CBA instance.
type Config struct {
	// Masters is the number of bus masters (cores). Required.
	Masters int

	// MaxHold is MaxL: the maximum (or upper bound of the) bus hold time of
	// any request, in cycles. Required.
	MaxHold int64

	// Weights holds the scaled per-cycle refill w_i of each master.
	// nil means homogeneous (all 1).
	Weights []int64

	// Scale is S, the scaled budget drain per cycle of bus occupancy.
	// 0 means the sum of Weights, which makes refill and drain balance at
	// full bus utilisation (Σ w_i = S ⇒ shares sum to 1).
	Scale int64

	// EligibilityThreshold is the scaled budget a master needs to be
	// arbitrable; nil means Scale*MaxHold for every master (the paper's
	// "budget of exactly MaxL").
	EligibilityThreshold []int64

	// Cap is the scaled saturation limit of each budget counter; nil means
	// equal to the eligibility threshold. Cap > threshold is H-CBA
	// variant 1: credit beyond one full request accumulates, allowing
	// back-to-back grants.
	Cap []int64

	// StartEmpty lists masters whose budget starts at zero instead of at
	// the cap. The paper's WCET-estimation mode starts the task under
	// analysis empty to delay its first request maximally (§III.B).
	StartEmpty []bool
}

// Arbiter is the credit-based arbitration filter. It tracks one scaled
// budget counter per master; the bus calls Tick once per cycle and consults
// Eligible / AndEligible / FilterEligible before handing masters to the
// underlying policy.
//
// All per-master state is flat struct-of-arrays (weights, thresholds, caps,
// budgets live in contiguous slices, one index per master), and every
// budget mutation keeps the eligibility bitset in sync, so the bus-side
// arbitration mask is a word-level AND rather than a per-master scan.
type Arbiter struct {
	masters    int
	maxHold    int64
	scale      int64
	weights    []int64
	threshold  []int64
	cap        []int64
	budget     []int64
	startEmpty []bool
	underflows int64

	// eligibleBits mirrors budget[i] ≥ threshold[i], maintained by every
	// mutation path (Reset, Tick, TickN, SetBudgetForTest).
	eligibleBits bitset.Set
}

// New validates cfg and builds the arbiter with all budgets at their initial
// level (cap, or zero for StartEmpty masters).
func New(cfg Config) (*Arbiter, error) {
	if cfg.Masters <= 0 {
		return nil, fmt.Errorf("core: Masters = %d, need > 0", cfg.Masters)
	}
	if cfg.MaxHold <= 0 {
		return nil, fmt.Errorf("core: MaxHold = %d, need > 0", cfg.MaxHold)
	}
	n := cfg.Masters

	weights := cfg.Weights
	if weights == nil {
		weights = make([]int64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != n {
		return nil, fmt.Errorf("core: len(Weights) = %d, want %d", len(weights), n)
	}
	var sum int64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("core: Weights[%d] = %d, need > 0", i, w)
		}
		sum += w
	}

	scale := cfg.Scale
	if scale == 0 {
		scale = sum
	}
	if scale < sum {
		return nil, fmt.Errorf("core: Scale = %d below Σweights = %d would oversubscribe the bus", scale, sum)
	}
	for i, w := range weights {
		if w > scale {
			return nil, fmt.Errorf("core: Weights[%d] = %d exceeds Scale = %d", i, w, scale)
		}
	}

	threshold := cfg.EligibilityThreshold
	if threshold == nil {
		threshold = make([]int64, n)
		for i := range threshold {
			threshold[i] = scale * cfg.MaxHold
		}
	}
	if len(threshold) != n {
		return nil, fmt.Errorf("core: len(EligibilityThreshold) = %d, want %d", len(threshold), n)
	}

	capacity := cfg.Cap
	if capacity == nil {
		capacity = append([]int64(nil), threshold...)
	}
	if len(capacity) != n {
		return nil, fmt.Errorf("core: len(Cap) = %d, want %d", len(capacity), n)
	}
	for i := 0; i < n; i++ {
		// Eligibility must be reachable and cover one worst-case request:
		// a master granted at its threshold loses MaxHold*(scale-w_i) net,
		// which must not drive the budget negative.
		if threshold[i] <= 0 {
			return nil, fmt.Errorf("core: EligibilityThreshold[%d] = %d, need > 0", i, threshold[i])
		}
		if capacity[i] < threshold[i] {
			return nil, fmt.Errorf("core: Cap[%d] = %d below threshold %d", i, capacity[i], threshold[i])
		}
		if need := cfg.MaxHold * (scale - weights[i]); threshold[i] < need {
			return nil, fmt.Errorf("core: EligibilityThreshold[%d] = %d cannot fund a MaxHold request (need ≥ %d)",
				i, threshold[i], need)
		}
	}

	startEmpty := cfg.StartEmpty
	if startEmpty == nil {
		startEmpty = make([]bool, n)
	}
	if len(startEmpty) != n {
		return nil, fmt.Errorf("core: len(StartEmpty) = %d, want %d", len(startEmpty), n)
	}

	a := &Arbiter{
		masters:      n,
		maxHold:      cfg.MaxHold,
		scale:        scale,
		weights:      append([]int64(nil), weights...),
		threshold:    append([]int64(nil), threshold...),
		cap:          append([]int64(nil), capacity...),
		budget:       make([]int64, n),
		startEmpty:   append([]bool(nil), startEmpty...),
		eligibleBits: bitset.New(n),
	}
	a.Reset()
	return a, nil
}

// MustNew is New that panics on error, for tests and fixed configurations.
func MustNew(cfg Config) *Arbiter {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Homogeneous returns the paper's base configuration: n masters, equal
// weights, eligibility and saturation at n*maxHold.
func Homogeneous(n int, maxHold int64) Config {
	return Config{Masters: n, MaxHold: maxHold}
}

// HeterogeneousWeights returns an H-CBA variant-2 configuration where master
// privileged receives share num/den of the bandwidth and the remaining
// masters split the rest evenly. The paper's evaluation gives the task under
// analysis 1/2 and each of the 3 contenders 1/6: that is
// HeterogeneousWeights(4, maxHold, tua, 1, 2).
func HeterogeneousWeights(n int, maxHold int64, privileged int, num, den int64) (Config, error) {
	if n < 2 || privileged < 0 || privileged >= n {
		return Config{}, errors.New("core: invalid master count or privileged index")
	}
	if num <= 0 || den <= 0 || num >= den {
		return Config{}, fmt.Errorf("core: share %d/%d must be in (0,1)", num, den)
	}
	// Privileged share num/den; others (den-num)/(den*(n-1)) each.
	// Scale = den*(n-1) keeps everything integral.
	scale := den * int64(n-1)
	w := make([]int64, n)
	for i := range w {
		if i == privileged {
			w[i] = num * int64(n-1)
		} else {
			w[i] = den - num
		}
	}
	return Config{Masters: n, MaxHold: maxHold, Weights: w, Scale: scale}, nil
}

// HeterogeneousCap returns an H-CBA variant-1 configuration: homogeneous
// weights, but master privileged saturates at factor times the eligibility
// threshold, letting it bank enough credit for factor back-to-back
// worst-case requests.
func HeterogeneousCap(n int, maxHold int64, privileged int, factor int64) (Config, error) {
	if n < 2 || privileged < 0 || privileged >= n {
		return Config{}, errors.New("core: invalid master count or privileged index")
	}
	if factor < 2 {
		return Config{}, fmt.Errorf("core: cap factor %d must be ≥ 2", factor)
	}
	base := int64(n) * maxHold
	threshold := make([]int64, n)
	capacity := make([]int64, n)
	for i := range threshold {
		threshold[i] = base
		capacity[i] = base
	}
	capacity[privileged] = factor * base
	return Config{
		Masters: n, MaxHold: maxHold,
		EligibilityThreshold: threshold, Cap: capacity,
	}, nil
}

// Reset restores all budgets to their initial level.
func (a *Arbiter) Reset() {
	for i := range a.budget {
		if a.startEmpty[i] {
			a.budget[i] = 0
		} else {
			a.budget[i] = a.cap[i]
		}
		a.eligibleBits.Assign(i, a.budget[i] >= a.threshold[i])
	}
	a.underflows = 0
}

// Tick advances one cycle: every budget refills by its weight and the bus
// holder, if any, additionally drains Scale; the result saturates at the cap
// (and at zero). holder is -1 when the bus is idle.
//
// This is Table I with both columns applied at the same clock edge: BUDGi ←
// min(BUDGi + 1 − (using ? 4 : 0), 228). Saturating the combined result
// (rather than the increment alone) keeps the holder's net drain at exactly
// Scale−w_i per busy cycle even on the first cycle after saturation, so a
// full-budget master holding for MaxHold cycles lands at exactly
// threshold − MaxHold·(Scale−w_i) ≥ 0.
func (a *Arbiter) Tick(holder int) {
	if holder >= a.masters {
		panic(fmt.Sprintf("core: Tick holder %d out of range", holder))
	}
	for i := range a.budget {
		b := a.budget[i] + a.weights[i]
		if i == holder {
			b -= a.scale
		}
		if b > a.cap[i] {
			b = a.cap[i]
		}
		if b < 0 {
			// Only reachable if the bus grants holds longer than MaxHold
			// or grants ineligible masters; count it so tests can assert
			// it never happens in a well-formed system.
			b = 0
			a.underflows++
		}
		a.budget[i] = b
		a.eligibleBits.Assign(i, b >= a.threshold[i])
	}
}

// TickN applies n consecutive Ticks with a constant holder (or -1 for an
// idle bus) in closed form: Eq. 1 is a saturating linear refill, so n cycles
// of it collapse to min(budget + n·w_i, cap) for non-holders and to
// budget − n·(Scale−w_i) for the holder. The event-horizon stepping engine
// (sim.Machine.Step) relies on this being bit-identical to calling Tick n
// times, which holds because the per-cycle trajectory is monotone between
// the clamps; the one case where it is not — a holder driven below zero,
// where Tick counts an underflow per clamped cycle — falls back to the
// per-cycle loop. That case is unreachable from a well-formed bus (holds are
// bounded by MaxHold and grants require a threshold budget).
func (a *Arbiter) TickN(holder int, n int64) {
	if n <= 0 {
		if n == 0 {
			return
		}
		panic(fmt.Sprintf("core: TickN with n = %d", n))
	}
	if holder >= a.masters {
		panic(fmt.Sprintf("core: TickN holder %d out of range", holder))
	}
	if holder >= 0 {
		net := a.weights[holder] - a.scale // ≤ 0: New enforces Σ weights ≤ Scale
		if a.budget[holder]+net*n < 0 {
			for k := int64(0); k < n; k++ {
				a.Tick(holder)
			}
			return
		}
	}
	for i := range a.budget {
		if i == holder {
			nb := a.budget[i] + (a.weights[i]-a.scale)*n
			if nb > a.cap[i] {
				nb = a.cap[i] // net refill 0 (single master) at a saturated budget
			}
			a.budget[i] = nb
			a.eligibleBits.Assign(i, nb >= a.threshold[i])
			continue
		}
		if a.budget[i] == a.cap[i] {
			// Saturated refill is a no-op for non-holders; the eligibility
			// bit is already set (New enforces cap ≥ threshold).
			continue
		}
		nb := a.budget[i] + a.weights[i]*n
		if nb > a.cap[i] || nb < a.budget[i] { // saturate (also guards overflow)
			nb = a.cap[i]
		}
		a.budget[i] = nb
		if nb >= a.threshold[i] {
			// Refill only raises a non-holder's budget: the bit can only
			// turn on here, never off.
			a.eligibleBits.Set(i)
		}
	}
}

// CyclesUntilEligible returns how many refill-only cycles master m needs
// before Eligible(m) becomes true: 0 if it already is, otherwise
// ceil((threshold − budget)/w_m). "Refill-only" means m does not hold the
// bus in the meantime (the caller's concern on an idle or otherwise-held
// bus).
func (a *Arbiter) CyclesUntilEligible(m int) int64 {
	return a.cyclesUntil(m, a.threshold[m])
}

// CyclesUntilSaturated returns how many refill-only cycles master m needs
// for its budget to reach the saturation cap — the budget half of the
// Table I COMP latch condition.
func (a *Arbiter) CyclesUntilSaturated(m int) int64 {
	return a.cyclesUntil(m, a.cap[m])
}

func (a *Arbiter) cyclesUntil(m int, level int64) int64 {
	short := level - a.budget[m]
	if short <= 0 {
		return 0
	}
	w := a.weights[m]
	return (short + w - 1) / w
}

// Eligible reports whether master m currently has enough budget to be
// arbitrated (budget ≥ eligibility threshold; with the default config the
// threshold equals the cap, so this is the paper's "budget of exactly
// MaxL").
func (a *Arbiter) Eligible(m int) bool {
	return a.budget[m] >= a.threshold[m]
}

// FilterEligible writes pending ∧ eligible into out (which may alias
// pending) and returns out. Both slices must have Masters entries.
func (a *Arbiter) FilterEligible(pending, out []bool) []bool {
	for i := 0; i < a.masters; i++ {
		out[i] = pending[i] && a.Eligible(i)
	}
	return out
}

// AndEligible intersects dst with the budget-eligibility set in place: the
// word-level form of FilterEligible the bus's arbitration mask is built
// from. dst must have bitset.Words(Masters()) words.
func (a *Arbiter) AndEligible(dst bitset.Set) { dst.And(a.eligibleBits) }

// Budget returns master m's current scaled budget.
func (a *Arbiter) Budget(m int) int64 { return a.budget[m] }

// InitialBudget returns master m's scaled budget at Reset: zero for
// StartEmpty masters (the WCET-mode TuA), the saturation cap otherwise.
// Budget-conservation oracles need it as the starting point of the identity
// budget(t) ≤ InitialBudget + t·w_m − S·held_m(t).
func (a *Arbiter) InitialBudget(m int) int64 {
	if a.startEmpty[m] {
		return 0
	}
	return a.cap[m]
}

// BudgetCycles returns master m's budget converted to cycles of bus
// occupancy it could fund (floor of budget / scale).
func (a *Arbiter) BudgetCycles(m int) int64 { return a.budget[m] / a.scale }

// Masters returns the number of masters.
func (a *Arbiter) Masters() int { return a.masters }

// MaxHold returns MaxL.
func (a *Arbiter) MaxHold() int64 { return a.maxHold }

// Scale returns S, the scaled drain per busy cycle.
func (a *Arbiter) Scale() int64 { return a.scale }

// Weight returns master m's scaled refill weight.
func (a *Arbiter) Weight(m int) int64 { return a.weights[m] }

// Cap returns master m's scaled saturation cap.
func (a *Arbiter) Cap(m int) int64 { return a.cap[m] }

// Threshold returns master m's scaled eligibility threshold.
func (a *Arbiter) Threshold(m int) int64 { return a.threshold[m] }

// Underflows returns how many times a drain was clamped at zero; it is 0 in
// any well-formed system (holds bounded by MaxHold, grants only to eligible
// masters).
func (a *Arbiter) Underflows() int64 { return a.underflows }

// Share returns master m's guaranteed long-run bandwidth share, w_i/S.
// This is the bandwidth-fairness theorem of §III: a master continuously
// requesting receives exactly this fraction of bus cycles, independent of
// its request length.
func (a *Arbiter) Share(m int) float64 {
	return float64(a.weights[m]) / float64(a.scale)
}

// RefillCycles returns how many cycles master m needs to regain eligibility
// after holding the bus for hold cycles starting from a full (threshold)
// budget: ceil(hold*(S-w_i)/w_i).
func (a *Arbiter) RefillCycles(m int, hold int64) int64 {
	net := hold * (a.scale - a.weights[m])
	w := a.weights[m]
	return (net + w - 1) / w
}

// WorstCaseWait bounds the cycles an eligible, pending request of master m
// can wait before being granted, assuming a work-conserving underlying
// policy (any of the package arbiter policies except TDMA).
//
// The bound is a budget-conservation ("energy") argument: while m waits, the
// bus is never idle (work conservation would otherwise grant m), so every
// cycle drains Scale from some other master's budget. Master j's total
// occupancy H_j over a window of W cycles satisfies
//
//	Scale*H_j ≤ Cap_j + W*w_j      (budget starts ≤ Cap_j, ends ≥ 0)
//
// and Σ_{j≠m} H_j ≥ W, which yields
//
//	W ≤ Σ_{j≠m} Cap_j / (Scale − Σ_{j≠m} w_j).
//
// The denominator is ≥ w_m > 0 because Σ w ≤ Scale. One extra cycle covers
// arbitration. The bound is conservative (the grant-at-threshold rule makes
// real waits much shorter — see the starvation tests) but it is sound for
// every CBA variant, including H-CBA caps above the eligibility threshold.
func (a *Arbiter) WorstCaseWait(m int) int64 {
	var capSum, wSum int64
	for j := 0; j < a.masters; j++ {
		if j == m {
			continue
		}
		capSum += a.cap[j]
		wSum += a.weights[j]
	}
	denom := a.scale - wSum
	if denom <= 0 {
		// Unreachable: New enforces Σ weights ≤ Scale and weights > 0.
		panic("core: non-positive starvation denominator")
	}
	return (capSum+denom-1)/denom + 1
}

// SetBudgetForTest overrides master m's budget; tests use it to explore
// boundary states without simulating the refill preamble.
func (a *Arbiter) SetBudgetForTest(m int, b int64) {
	if b < 0 || b > a.cap[m] {
		panic("core: SetBudgetForTest out of range")
	}
	a.budget[m] = b
	a.eligibleBits.Assign(m, b >= a.threshold[m])
}
