// Package bitset provides the fixed-capacity eligibility bitsets the
// many-requestor arbitration path is built on. A Set packs one bit per bus
// master into 64-bit words, so the per-decision set algebra the bus performs
// every arbitration cycle — pending ∧ visible ∧ COMP ∧ budget-eligible — is
// a handful of word ANDs instead of a linear scan over per-master slices,
// and winner selection iterates only the set bits via trailing-zero counts.
//
// Sets are plain []uint64 slices: callers that need to fuse iteration with
// their own per-master state (the arbiter policies, the bus horizon) range
// over the words directly with the
//
//	for w, word := range set {
//	    for word != 0 {
//	        m := w<<6 + bits.TrailingZeros64(word)
//	        word &= word - 1
//	        ...
//	    }
//	}
//
// idiom, which visits masters in ascending index order — the order every
// linear scan it replaces used, so tie-breaks are preserved bit for bit.
package bitset

import "math/bits"

// Set is a bitset over master indices 0..n-1, stored little-endian in
// 64-bit words (bit i lives in word i>>6). Bits at or above the capacity a
// Set was created with must stay clear; all operations preserve that.
type Set []uint64

// Words returns the number of 64-bit words needed for n bits.
func Words(n int) int { return (n + 63) >> 6 }

// New returns an empty Set with capacity for n bits.
func New(n int) Set { return make(Set, Words(n)) }

// Test reports whether bit i is set.
func (s Set) Test(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (s Set) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s Set) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Assign sets bit i to v.
func (s Set) Assign(i int, v bool) {
	if v {
		s.Set(i)
	} else {
		s.Clear(i)
	}
}

// Reset clears every bit.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// Any reports whether any bit is set.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// First returns the lowest set bit, or -1 when the set is empty.
func (s Set) First() int {
	for w, word := range s {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// NextFrom returns the lowest set bit ≥ from, or -1. A from past the
// capacity returns -1.
func (s Set) NextFrom(from int) int {
	if from < 0 {
		from = 0
	}
	w := from >> 6
	if w >= len(s) {
		return -1
	}
	if word := s[w] &^ (1<<(uint(from)&63) - 1); word != 0 {
		return w<<6 + bits.TrailingZeros64(word)
	}
	for w++; w < len(s); w++ {
		if word := s[w]; word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// CopyFrom overwrites s with o. The sets must have equal word length.
func (s Set) CopyFrom(o Set) { copy(s, o) }

// And intersects s with o in place. The sets must have equal word length.
func (s Set) And(o Set) {
	for i := range s {
		s[i] &= o[i]
	}
}

// AndNot removes o's bits from s in place. The sets must have equal word
// length.
func (s Set) AndNot(o Set) {
	for i := range s {
		s[i] &^= o[i]
	}
}
