package bitset

import (
	"math/bits"
	"testing"
)

// boolRef mirrors a Set as a []bool, the representation the bitset replaced;
// every operation is cross-checked against it.
type boolRef []bool

func (r boolRef) first() int {
	for i, v := range r {
		if v {
			return i
		}
	}
	return -1
}

func (r boolRef) nextFrom(from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i < len(r); i++ {
		if r[i] {
			return i
		}
	}
	return -1
}

func (r boolRef) count() int {
	n := 0
	for _, v := range r {
		if v {
			n++
		}
	}
	return n
}

// lcg is a tiny deterministic generator so the test needs no seeds from
// outside the package.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func TestSetAgainstBoolReference(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 257, 1024} {
		s := New(n)
		ref := make(boolRef, n)
		var r lcg = lcg(uint64(n) * 0x9e37)
		for step := 0; step < 4*n+64; step++ {
			i := int(r.next() % uint64(n))
			switch r.next() % 3 {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				ref[i] = false
			case 2:
				v := r.next()&1 == 0
				s.Assign(i, v)
				ref[i] = v
			}
			if got, want := s.Test(i), ref[i]; got != want {
				t.Fatalf("n=%d: Test(%d) = %v, want %v", n, i, got, want)
			}
			if got, want := s.First(), ref.first(); got != want {
				t.Fatalf("n=%d: First() = %d, want %d", n, got, want)
			}
			if got, want := s.Count(), ref.count(); got != want {
				t.Fatalf("n=%d: Count() = %d, want %d", n, got, want)
			}
			if got, want := s.Any(), ref.count() > 0; got != want {
				t.Fatalf("n=%d: Any() = %v, want %v", n, got, want)
			}
			from := int(r.next() % uint64(n+2))
			if got, want := s.NextFrom(from), ref.nextFrom(from); got != want {
				t.Fatalf("n=%d: NextFrom(%d) = %d, want %d", n, from, got, want)
			}
		}
	}
}

func TestWordOps(t *testing.T) {
	const n = 200
	a, b := New(n), New(n)
	for i := 0; i < n; i += 3 {
		a.Set(i)
	}
	for i := 0; i < n; i += 2 {
		b.Set(i)
	}

	got := New(n)
	got.CopyFrom(a)
	got.And(b)
	for i := 0; i < n; i++ {
		want := i%3 == 0 && i%2 == 0
		if got.Test(i) != want {
			t.Fatalf("And: bit %d = %v, want %v", i, got.Test(i), want)
		}
	}

	got.CopyFrom(a)
	got.AndNot(b)
	for i := 0; i < n; i++ {
		want := i%3 == 0 && i%2 != 0
		if got.Test(i) != want {
			t.Fatalf("AndNot: bit %d = %v, want %v", i, got.Test(i), want)
		}
	}

	got.Reset()
	if got.Any() || got.Count() != 0 || got.First() != -1 {
		t.Fatalf("Reset left bits behind: %v", got)
	}
}

func TestWordsCapacity(t *testing.T) {
	for n := 1; n <= 300; n++ {
		if got, want := Words(n), (n+63)/64; got != want {
			t.Fatalf("Words(%d) = %d, want %d", n, got, want)
		}
		if got := len(New(n)); got != Words(n) {
			t.Fatalf("len(New(%d)) = %d, want %d", n, got, Words(n))
		}
	}
}

// TestIterationOrder pins the ascending-index guarantee of the package's
// documented word-iteration idiom: the order every replaced linear scan
// used, and therefore the order all tie-break semantics depend on.
func TestIterationOrder(t *testing.T) {
	const n = 300
	s := New(n)
	want := []int{0, 1, 63, 64, 65, 130, 255, 256, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	for w, word := range s {
		for word != 0 {
			got = append(got, w<<6+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
}
