package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"creditbus/internal/campaign"
	"creditbus/internal/fault"
	"creditbus/internal/shard"
	"creditbus/internal/sim"
	"creditbus/internal/stats"
)

// ErrChunkDeadline — a job chunk (submission plus execution of up to
// checkpointEvery units) exceeded the configured chunk deadline. The job
// fails typed; its checkpoints persist and a restart resumes it.
var ErrChunkDeadline = errors.New("service: job chunk deadline exceeded")

// Job states reported by the job API.
const (
	// JobRunning — shards are executing (or queued behind the pool).
	JobRunning = "running"
	// JobDone — every shard completed; Report is final.
	JobDone = "done"
	// JobFailed — a unit errored; Error carries the cause.
	JobFailed = "failed"
	// JobCancelled — stopped by DELETE. The job's directory is removed, so
	// resubmitting the spec starts it over.
	JobCancelled = "cancelled"
)

// PartialAggregates is the mid-run view of a job's streaming aggregates,
// derived from the exact accumulators over the units folded so far. It is
// informational — the byte-stable artefact is the final Report.
type PartialAggregates struct {
	TaskCycles   shard.Summary `json:"task_cycles"`
	BusHeld      shard.Summary `json:"bus_held"`
	FairnessJain float64       `json:"fairness_jain"`
}

// JobStatus is the job API's resource representation: POST /v1/jobs and
// GET /v1/jobs/{id} both return it.
type JobStatus struct {
	// ID is the job id: the truncated SHA-256 of the canonical campaign
	// spec, so resubmitting an identical spec addresses the same job
	// (idempotent POST) instead of double-running the campaign.
	ID string `json:"id"`
	// Name is the campaign's label.
	Name string `json:"name,omitempty"`
	// Campaign is the campaign content digest (checkpoint identity — name
	// and shard count excluded, see shard.CampaignSpec.Digest).
	Campaign string `json:"campaign"`
	// State is one of JobRunning, JobDone, JobFailed, JobCancelled.
	State string `json:"state"`
	// Error carries the failure cause when State is JobFailed.
	Error string `json:"error,omitempty"`
	// Units and UnitsDone report progress over the campaign's unit space.
	Units     int64 `json:"units"`
	UnitsDone int64 `json:"units_done"`
	// Shards is the campaign's shard count.
	Shards int `json:"shards"`
	// Partial is the streaming-aggregate snapshot while running.
	Partial *PartialAggregates `json:"partial,omitempty"`
	// Report is the final merged output once State is JobDone.
	Report *shard.Report `json:"report,omitempty"`
}

// job is one campaign job: the compiled campaign, its checkpoint store,
// and the driver goroutine's state.
type job struct {
	id    string
	camp  *shard.Campaign
	store *shard.Store
	dir   string

	cancel chan struct{} // closed to stop the driver at a chunk boundary
	done   chan struct{} // closed when the driver exits

	mu      sync.Mutex
	state   string
	errText string
	report  *shard.Report
	// Progress and partial-aggregate view. base* hold the contributions of
	// fully processed shards (plus any resumed prefix); cur* add the active
	// shard's running state on top. Shard order is unit order and the
	// accumulators merge exactly, so the partial view is the true prefix
	// fold, not an approximation.
	doneUnits          int64
	baseDone           int64
	baseTask, baseHeld stats.Exact
	curTask, curHeld   stats.Exact
}

// observe updates the job's progress view from the active shard's
// aggregate state.
func (j *job) observe(a *shard.Agg) {
	j.mu.Lock()
	j.doneUnits = j.baseDone + a.N
	t, h := j.baseTask, j.baseHeld
	t.Merge(a.TaskCycles)
	h.Merge(a.BusHeld)
	j.curTask, j.curHeld = t, h
	j.mu.Unlock()
}

// retire folds a completed shard's aggregate into the base view.
func (j *job) retire(a *shard.Agg) {
	j.mu.Lock()
	j.baseDone += a.N
	j.baseTask.Merge(a.TaskCycles)
	j.baseHeld.Merge(a.BusHeld)
	j.doneUnits = j.baseDone
	j.curTask, j.curHeld = j.baseTask, j.baseHeld
	j.mu.Unlock()
}

func (j *job) isCancelled() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Name:      j.camp.Spec.Name,
		Campaign:  j.camp.Digest(),
		State:     j.state,
		Error:     j.errText,
		Units:     j.camp.Units(),
		UnitsDone: j.doneUnits,
		Shards:    j.camp.Plan.Shards,
		Report:    j.report,
	}
	if st.State == JobRunning && j.doneUnits > 0 {
		st.Partial = &PartialAggregates{
			TaskCycles:   shard.Summarize(j.curTask),
			BusHeld:      shard.Summarize(j.curHeld),
			FairnessJain: j.curHeld.Jain(),
		}
	}
	return st
}

// jobEngine owns the daemon's campaign jobs: the on-disk job store (one
// directory per job: spec.json + ckpt/), the in-memory index, and one
// driver goroutine per active job. Drivers execute units by blocking
// Submit through the server's shared campaign.Pool, so interactive /v1/run
// traffic and batch jobs compete for the same workers under the same
// admission control — jobs throttle to pool speed instead of spawning a
// second execution engine.
type jobEngine struct {
	dir             string
	pool            *campaign.Pool[*sim.Runner]
	checkpointEvery int64
	chunkTimeout    time.Duration
	clock           fault.Clock
	fs              fault.FS
	unitsDone       func(int64)               // stats counter hook; may be nil
	onQuarantine    func(path, reason string) // quarantine observer; may be nil
	onDeadline      func()                    // chunk-deadline counter hook; may be nil

	mu   sync.Mutex
	jobs map[string]*job
	wg   sync.WaitGroup
}

// jobEngineConfig bundles newJobEngine's wiring.
type jobEngineConfig struct {
	dir             string
	pool            *campaign.Pool[*sim.Runner]
	checkpointEvery int64
	chunkTimeout    time.Duration
	clock           fault.Clock
	fs              fault.FS
	unitsDone       func(int64)
	onQuarantine    func(path, reason string)
	onDeadline      func()
}

func newJobEngine(cfg jobEngineConfig) *jobEngine {
	if cfg.checkpointEvery <= 0 {
		cfg.checkpointEvery = shard.DefaultCheckpointEvery
	}
	if cfg.clock == nil {
		cfg.clock = fault.WallClock{}
	}
	if cfg.fs == nil {
		cfg.fs = fault.OS{}
	}
	return &jobEngine{
		dir: cfg.dir, pool: cfg.pool,
		checkpointEvery: cfg.checkpointEvery, chunkTimeout: cfg.chunkTimeout,
		clock: cfg.clock, fs: cfg.fs,
		unitsDone: cfg.unitsDone, onQuarantine: cfg.onQuarantine, onDeadline: cfg.onDeadline,
		jobs: map[string]*job{},
	}
}

// openStore opens a job's checkpoint store through the engine's filesystem
// with the quarantine observer attached.
func (e *jobEngine) openStore(dir string, m shard.Manifest) (*shard.Store, error) {
	return shard.OpenWith(dir, m, shard.StoreOptions{FS: e.fs, OnQuarantine: e.onQuarantine})
}

// jobID derives the job id from the canonical spec bytes: idempotent POST
// by content addressing. Unlike the campaign digest it covers the whole
// spec (name and shard plan included), so a relabelled or resharded
// submission is its own job resource — though its checkpoints, keyed by
// the campaign digest, would be interchangeable.
func jobID(spec shard.CampaignSpec) (string, error) {
	data, err := spec.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8]), nil
}

// submit registers (or finds) the job for spec and returns its status.
// created reports whether a new job was started.
func (e *jobEngine) submit(spec shard.CampaignSpec) (JobStatus, bool, error) {
	id, err := jobID(spec)
	if err != nil {
		return JobStatus{}, false, err
	}
	e.mu.Lock()
	if j, ok := e.jobs[id]; ok {
		e.mu.Unlock()
		return j.status(), false, nil
	}
	e.mu.Unlock()

	camp, err := spec.Compile()
	if err != nil {
		return JobStatus{}, false, err
	}
	dir := filepath.Join(e.dir, id)
	if err := e.fs.MkdirAll(dir, 0o755); err != nil {
		return JobStatus{}, false, err
	}
	specBytes, err := spec.Encode()
	if err != nil {
		return JobStatus{}, false, err
	}
	if err := e.fs.WriteFile(filepath.Join(dir, "spec.json"), specBytes, 0o644); err != nil {
		return JobStatus{}, false, err
	}
	store, err := e.openStore(filepath.Join(dir, "ckpt"), camp.Manifest())
	if err != nil {
		return JobStatus{}, false, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if j, ok := e.jobs[id]; ok { // racing identical submissions
		return j.status(), false, nil
	}
	j := e.start(id, camp, store, dir)
	return j.status(), true, nil
}

// start registers the job and launches its driver. e.mu must be held.
func (e *jobEngine) start(id string, camp *shard.Campaign, store *shard.Store, dir string) *job {
	j := &job{
		id: id, camp: camp, store: store, dir: dir,
		cancel: make(chan struct{}), done: make(chan struct{}),
		state: JobRunning,
	}
	e.jobs[id] = j
	e.wg.Add(1)
	go e.drive(j)
	return j
}

// get returns a job's status by id.
func (e *jobEngine) get(id string) (JobStatus, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// list returns every job's status, sorted by id.
func (e *jobEngine) list() []JobStatus {
	e.mu.Lock()
	out := make([]JobStatus, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, j.status())
	}
	e.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// remove cancels a job and deletes its directory. The driver notices the
// cancel at its next chunk boundary; directory removal waits for it in the
// background so an in-flight chunk never writes into a half-deleted store.
func (e *jobEngine) remove(id string) (JobStatus, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if ok {
		delete(e.jobs, id)
	}
	e.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	j.mu.Lock()
	if j.state == JobRunning {
		j.state = JobCancelled
		close(j.cancel)
	}
	j.mu.Unlock()
	st := j.status()
	go func() {
		<-j.done
		_ = e.fs.RemoveAll(j.dir)
	}()
	return st, true
}

// counts reports (total, running) for /v1/stats.
func (e *jobEngine) counts() (total, running int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		j.mu.Lock()
		if j.state == JobRunning {
			running++
		}
		j.mu.Unlock()
	}
	return len(e.jobs), running
}

// close stops every driver at its next chunk boundary and waits for them.
// In-memory state is discarded, but running jobs keep their spec and
// checkpoint store on disk, so a restarted daemon's load resumes them —
// the jobs-survive-restart guarantee.
func (e *jobEngine) close() {
	e.mu.Lock()
	for _, j := range e.jobs {
		select {
		case <-j.cancel:
		default:
			close(j.cancel)
		}
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// load scans the job directory and re-registers every stored job: complete
// ones surface as JobDone with their report re-derived from the checkpoint
// store; incomplete ones get a driver and resume from their last
// checkpoints.
func (e *jobEngine) load() error {
	entries, err := e.fs.ReadDir(e.dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		id := ent.Name()
		dir := filepath.Join(e.dir, id)
		data, err := e.fs.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			return fmt.Errorf("job %s: %w", id, err)
		}
		spec, err := shard.ParseCampaign(data)
		if err != nil {
			return fmt.Errorf("job %s: %w", id, err)
		}
		want, err := jobID(spec)
		if err != nil {
			return fmt.Errorf("job %s: %w", id, err)
		}
		if want != id {
			return fmt.Errorf("job %s: stored spec hashes to %s; job directory corrupt", id, want)
		}
		camp, err := spec.Compile()
		if err != nil {
			return fmt.Errorf("job %s: %w", id, err)
		}
		store, err := e.openStore(filepath.Join(dir, "ckpt"), camp.Manifest())
		if err != nil {
			return fmt.Errorf("job %s: %w", id, err)
		}
		e.mu.Lock()
		if rep, err := shard.MergeStore(camp, store); err == nil {
			// Complete on disk: no driver needed, just the final report.
			j := &job{id: id, camp: camp, store: store, dir: dir,
				cancel: make(chan struct{}), done: make(chan struct{}),
				state: JobDone, report: &rep, doneUnits: camp.Units()}
			close(j.done)
			e.jobs[id] = j
		} else {
			e.start(id, camp, store, dir)
		}
		e.mu.Unlock()
	}
	return nil
}

// drive is the job's driver goroutine: shards in order, chunk by chunk
// through the shared pool, checkpoint after every chunk, stop at a chunk
// boundary on cancel, merge and publish the report at the end.
func (e *jobEngine) drive(j *job) {
	defer e.wg.Done()
	defer close(j.done)
	err := e.runJob(j)
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state != JobRunning:
		// Cancelled via remove(); state already set.
	case j.isCancelled():
		// Daemon shutdown: leave the job running on disk (a pool-closed
		// error mid-chunk is part of the same shutdown); a restart resumes
		// it from its checkpoints.
	case err != nil:
		j.state, j.errText = JobFailed, err.Error()
	default:
		j.state = JobDone
	}
}

func (e *jobEngine) runJob(j *job) error {
	for i := 0; i < j.camp.Plan.Shards; i++ {
		lo, hi, err := j.camp.Plan.Range(i)
		if err != nil {
			return err
		}
		agg, ok, err := j.store.LoadShard(i)
		if err != nil {
			return err
		}
		if !ok {
			if agg, err = shard.NewAgg(lo, j.camp.Block()); err != nil {
				return err
			}
		} else if agg.Lo != lo || agg.Lo+agg.N > hi {
			return fmt.Errorf("shard %d checkpoint covers [%d,+%d) of [%d,%d)", i, agg.Lo, agg.N, lo, hi)
		}
		j.observe(agg) // surface a resumed prefix in the progress view
		for agg.Lo+agg.N < hi {
			if j.isCancelled() {
				return nil
			}
			n := min(e.checkpointEvery, hi-(agg.Lo+agg.N))
			if err := e.runChunk(j, agg, n); err != nil {
				return err
			}
			if err := j.store.SaveShard(i, agg); err != nil {
				return err
			}
			j.observe(agg)
			if e.unitsDone != nil {
				e.unitsDone(n)
			}
		}
		j.retire(agg)
	}
	if j.isCancelled() {
		return nil
	}
	rep, err := shard.MergeStore(j.camp, j.store)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.report = &rep
	j.mu.Unlock()
	return nil
}

// runChunk executes units [agg.Lo+agg.N, agg.Lo+agg.N+n) on the shared
// pool and folds the results into agg in unit order. Submit blocks when
// the queue is full, throttling the job to pool speed; the fold order is
// the unit order regardless of which worker ran what, so the aggregate
// state is identical to the single-process reference.
//
// When the engine has a chunk deadline, submission and execution run in a
// helper goroutine raced against the clock. On timeout the chunk fails with
// ErrChunkDeadline and the helper retains sole ownership of the result
// buffers until its stragglers drain — agg (and the caller) never observe a
// partially-written chunk.
func (e *jobEngine) runChunk(j *job, agg *shard.Agg, n int64) error {
	lo := agg.Lo + agg.N
	results := make([]sim.Result, n)
	done := make(chan error, 1)
	go func() {
		errs := make([]error, n)
		var wg sync.WaitGroup
		for k := int64(0); k < n; k++ {
			k := k
			scen, seed, err := j.camp.Unit(lo + k)
			if err != nil {
				wg.Wait()
				done <- err
				return
			}
			compiled := j.camp.Scenarios[scen]
			wg.Add(1)
			err = e.pool.Submit(func(rn *sim.Runner) {
				defer wg.Done()
				results[k], errs[k] = compiled.RunSeedRunner(rn, seed)
			})
			if err != nil {
				// Pool closed under us (daemon shutdown): wait out what was
				// admitted and report the close.
				wg.Done()
				wg.Wait()
				done <- err
				return
			}
		}
		wg.Wait()
		for k := int64(0); k < n; k++ {
			if errs[k] != nil {
				done <- fmt.Errorf("unit %d: %w", lo+k, errs[k])
				return
			}
		}
		done <- nil
	}()

	var deadline <-chan time.Time
	if e.chunkTimeout > 0 {
		deadline = e.clock.After(e.chunkTimeout)
	}
	select {
	case err := <-done:
		if err != nil {
			return err
		}
	case <-deadline:
		if e.onDeadline != nil {
			e.onDeadline()
		}
		return fmt.Errorf("chunk [%d,+%d) after %v: %w", lo, n, e.chunkTimeout, ErrChunkDeadline)
	}
	for k := int64(0); k < n; k++ {
		agg.Add(results[k])
	}
	return nil
}
