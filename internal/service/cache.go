package service

import (
	"container/list"

	"creditbus/internal/sim"
)

// resultCache is a bounded LRU over content-addressed run results. Every
// entry is immutable once stored — a sim.Result is never mutated after the
// run that produced it — so eviction is purely a capacity decision: a
// re-miss on an evicted key re-simulates and lands on bit-identical bytes.
// Not goroutine-safe; the Server serialises access under its own mutex.
type resultCache struct {
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key string
	res sim.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result and refreshes its recency.
func (c *resultCache) get(key string) (sim.Result, bool) {
	e, ok := c.entries[key]
	if !ok {
		return sim.Result{}, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).res, true
}

// put stores a result, evicting the least recently used entry when full.
func (c *resultCache) put(key string, res sim.Result) {
	if e, ok := c.entries[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).res = res
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int { return c.ll.Len() }
