// Package service is the simulation-as-a-service core behind cmd/cbad: an
// HTTP/JSON server that accepts declarative scenario specs (the
// internal/scenario schema), executes them on a shared pool of per-worker
// sim.Runners, and returns full results.
//
// Determinism is what makes the service scale: every run is a pure function
// of (compiled config, seed), so hash(spec, seed) is a perfect content
// address. The server exploits that twice —
//
//   - a bounded LRU result cache keyed by scenario.Spec.CacheKey() (the
//     semantic hash: labels and the seed schedule excluded) plus the run
//     seed, so identical submissions never re-simulate;
//   - single-flight deduplication, so N concurrent identical submissions
//     share one execution instead of racing N through the pool.
//
// Admission control is a bounded job queue (campaign.Pool): when the queue
// is full a submission is refused with HTTP 429 instead of queueing
// unboundedly, which keeps tail latency honest under overload.
//
// Beyond interactive runs, the server exposes an asynchronous job API for
// sharded mega-campaigns (POST/GET/DELETE /v1/jobs): a job is a campaign
// spec promoted to a resource whose id is the content hash of its spec,
// executed chunk by chunk through the same worker pool with a checkpoint
// after every chunk, so jobs survive a daemon restart and resume from
// their last checkpoint (see internal/shard and DESIGN.md §12).
//
// Every error response is a typed JSON envelope (APIError): a stable code,
// a human message, and optional detail.
//
// DESIGN.md §11 documents the architecture and the cache-key soundness
// argument.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"creditbus/internal/campaign"
	"creditbus/internal/fault"
	"creditbus/internal/scenario"
	"creditbus/internal/shard"
	"creditbus/internal/sim"
)

// Defaults for Options zero values.
const (
	DefaultQueue     = 256
	DefaultCacheSize = 4096
	// maxSpecBytes bounds a request body; the largest corpus spec is ~2 KiB,
	// so a mebibyte is generous without letting a client balloon memory.
	maxSpecBytes = 1 << 20
)

// Options configures a Server. Zero values pick the defaults.
type Options struct {
	// Workers is the simulation worker count — the number of concurrent
	// sim.Runners. ≤ 0 means campaign.DefaultWorkers (GOMAXPROCS).
	Workers int
	// Queue is the admission queue capacity: runs accepted but not yet
	// executing. A full queue refuses new work with 429. ≤ 0 → DefaultQueue.
	Queue int
	// CacheSize is the result cache capacity in entries (one entry is one
	// (spec, seed) result). ≤ 0 → DefaultCacheSize.
	CacheSize int
	// JobsDir is the root of the on-disk job store for the asynchronous
	// campaign job API. Empty disables the API: /v1/jobs answers with the
	// jobs_disabled error code.
	JobsDir string
	// JobCheckpointEvery overrides the job chunk size in units (≤ 0 →
	// shard.DefaultCheckpointEvery). Exposed for tests that need frequent
	// checkpoints on small campaigns.
	JobCheckpointEvery int64
	// RunTimeout is the server-side deadline on a /v1/run request: a request
	// still waiting on executions past it fails with deadline_exceeded (504)
	// instead of holding its connection open. ≤ 0 disables the deadline.
	RunTimeout time.Duration
	// JobChunkTimeout bounds one job chunk's execution (submission plus
	// simulation of up to JobCheckpointEvery units). A chunk past it fails
	// the job with a typed error; its checkpoints persist, so the job is
	// resumable. ≤ 0 disables the deadline.
	JobChunkTimeout time.Duration
	// MaxConcurrentRuns bounds the /v1/run handlers admitted into execution
	// at once — the load-shedding gate that keeps /v1/healthz, /v1/stats and
	// GET /v1/jobs responsive when the pool is saturated. Handlers beyond it
	// are refused immediately with overloaded (503). ≤ 0 → workers×4 + queue
	// capacity (every execution slot plus every queue slot can be owned by a
	// handler, with headroom for cache hits).
	MaxConcurrentRuns int
	// Clock is the time source for the deadlines above. Nil → the wall
	// clock; tests inject a fault.FakeClock.
	Clock fault.Clock
	// FS is the filesystem the job store runs on. Nil → the real
	// filesystem; tests inject a fault.Injector.
	FS fault.FS
}

// flight is one in-progress execution other submitters of the same result
// key wait on. res and err are written exactly once, before done closes.
type flight struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// Server executes scenario runs on a shared worker pool with a
// content-addressed result cache. Create one with New, serve its Handler,
// and Close it to drain the pool.
type Server struct {
	pool       *campaign.Pool[*sim.Runner]
	queueCap   int
	cacheCap   int
	mu         sync.Mutex // guards cache and flights
	cache      *resultCache
	flights    map[string]*flight
	jobs       *jobEngine // nil when Options.JobsDir is empty
	jobUnits   atomic.Int64
	execGate   func() // test hook: runs in the worker before each execution
	clock      fault.Clock
	runTimeout time.Duration
	runSlots   chan struct{} // load-shedding gate for /v1/run handlers
	requests   atomic.Int64
	bad        atomic.Int64
	rejected   atomic.Int64
	shed       atomic.Int64
	deadlined  atomic.Int64
	quars      atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	coalesced  atomic.Int64
	execs      atomic.Int64
}

// New builds a Server and starts its worker pool.
func New(opts Options) (*Server, error) {
	if opts.Queue <= 0 {
		opts.Queue = DefaultQueue
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	pool, err := campaign.Options[*sim.Runner]{
		Workers:        opts.Workers,
		Queue:          opts.Queue,
		PerWorkerState: func() *sim.Runner { return &sim.Runner{} },
	}.NewPool()
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if opts.Clock == nil {
		opts.Clock = fault.WallClock{}
	}
	if opts.FS == nil {
		opts.FS = fault.OS{}
	}
	if opts.MaxConcurrentRuns <= 0 {
		opts.MaxConcurrentRuns = pool.Workers()*4 + opts.Queue
	}
	s := &Server{
		pool:       pool,
		queueCap:   opts.Queue,
		cacheCap:   opts.CacheSize,
		cache:      newResultCache(opts.CacheSize),
		flights:    map[string]*flight{},
		clock:      opts.Clock,
		runTimeout: opts.RunTimeout,
		runSlots:   make(chan struct{}, opts.MaxConcurrentRuns),
	}
	if opts.JobsDir != "" {
		s.jobs = newJobEngine(jobEngineConfig{
			dir:             opts.JobsDir,
			pool:            pool,
			checkpointEvery: opts.JobCheckpointEvery,
			chunkTimeout:    opts.JobChunkTimeout,
			clock:           opts.Clock,
			fs:              opts.FS,
			unitsDone:       func(n int64) { s.jobUnits.Add(n) },
			onQuarantine:    func(string, string) { s.quars.Add(1) },
			onDeadline:      func() { s.deadlined.Add(1) },
		})
		// Resume jobs a previous daemon left behind before serving traffic.
		if err := s.jobs.load(); err != nil {
			s.jobs.close()
			pool.Close()
			return nil, fmt.Errorf("service: load jobs: %w", err)
		}
	}
	return s, nil
}

// Close stops intake and waits for in-flight runs to drain: job drivers
// stop at their next chunk boundary (their checkpoints persist, so a new
// daemon resumes them), then the pool drains.
func (s *Server) Close() {
	if s.jobs != nil {
		s.jobs.close()
	}
	s.pool.Close()
}

// Handler returns the server's HTTP routes:
//
//	POST   /v1/run        — submit a scenario spec, receive per-seed results
//	POST   /v1/jobs       — submit a campaign spec as an asynchronous job
//	GET    /v1/jobs       — list jobs
//	GET    /v1/jobs/{id}  — job status, progress, partial aggregates, report
//	DELETE /v1/jobs/{id}  — cancel a job and delete its checkpoints
//	GET    /v1/stats      — cache/queue/execution/job counters
//	GET    /v1/healthz    — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, ErrCodeMethod, "GET only", "")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, ErrCodeNotFound, "no such route", r.URL.Path)
	})
	return mux
}

// RunResult is one seed's outcome inside a RunResponse.
type RunResult struct {
	Seed uint64 `json:"seed"`
	// Cached reports a cache hit: the result was served without simulating
	// or waiting on an in-flight execution. Coalesced joins (this request
	// waited on another submission's execution) report false, like the
	// submission that ran it.
	Cached bool `json:"cached"`
	// Result is the full run result in its canonical snapshot form — the
	// same bytes a golden corpus file pins for this (spec, seed).
	Result scenario.ResultSnapshot `json:"result"`
}

// RunResponse is the POST /v1/run reply: the submitted scenario's semantic
// cache key and one result per seed of its schedule, in schedule order.
type RunResponse struct {
	Scenario string      `json:"scenario"`
	Key      string      `json:"key"`
	Runs     []RunResult `json:"runs"`
}

// Stats is the GET /v1/stats reply.
type Stats struct {
	Workers       int   `json:"workers"`
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	CacheEntries  int   `json:"cache_entries"`
	CacheCapacity int   `json:"cache_capacity"`
	InFlight      int   `json:"in_flight"`
	Requests      int64 `json:"requests"`
	BadRequests   int64 `json:"bad_requests"`
	Rejected      int64 `json:"rejected"`
	// LoadShed counts /v1/run requests refused by the concurrency gate
	// (overloaded, 503) before reaching admission control.
	LoadShed int64 `json:"load_shed"`
	// DeadlineExceeded counts requests and job chunks that hit a
	// server-side deadline.
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// Quarantines counts checkpoint-store files quarantined as corrupt
	// since daemon start.
	Quarantines int64 `json:"quarantines"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Coalesced   int64 `json:"coalesced"`
	Executions  int64 `json:"executions"`
	// Job API counters: registered jobs, jobs currently running, and the
	// total campaign units completed by job drivers since daemon start.
	JobsTotal    int   `json:"jobs_total"`
	JobsRunning  int   `json:"jobs_running"`
	JobUnitsDone int64 `json:"job_units_done"`
}

// Snapshot returns the current counters — the same numbers /v1/stats serves.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	entries := s.cache.len()
	inFlight := len(s.flights)
	s.mu.Unlock()
	var jobsTotal, jobsRunning int
	if s.jobs != nil {
		jobsTotal, jobsRunning = s.jobs.counts()
	}
	return Stats{
		Workers:          s.pool.Workers(),
		QueueDepth:       s.pool.QueueDepth(),
		QueueCapacity:    s.queueCap,
		CacheEntries:     entries,
		CacheCapacity:    s.cacheCap,
		InFlight:         inFlight,
		Requests:         s.requests.Load(),
		BadRequests:      s.bad.Load(),
		Rejected:         s.rejected.Load(),
		LoadShed:         s.shed.Load(),
		DeadlineExceeded: s.deadlined.Load(),
		Quarantines:      s.quars.Load(),
		Hits:             s.hits.Load(),
		Misses:           s.misses.Load(),
		Coalesced:        s.coalesced.Load(),
		Executions:       s.execs.Load(),
		JobsTotal:        jobsTotal,
		JobsRunning:      jobsRunning,
		JobUnitsDone:     s.jobUnits.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, ErrCodeMethod, "GET only", "")
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// handleJobs serves the job collection: POST submits a campaign, GET lists
// every job.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, ErrCodeJobsDisabled, "daemon started without a job store", "run cbad with -jobs-dir")
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.jobs.list())
	case http.MethodPost:
		s.requests.Add(1)
		body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
		if err != nil {
			s.bad.Add(1)
			writeError(w, ErrCodeBadRequest, "read body", err.Error())
			return
		}
		if len(body) > maxSpecBytes {
			s.bad.Add(1)
			writeError(w, ErrCodeSpecTooLarge, "campaign spec too large", fmt.Sprintf("limit %d bytes", maxSpecBytes))
			return
		}
		spec, err := shard.ParseCampaign(body)
		if err != nil {
			s.bad.Add(1)
			writeError(w, ErrCodeInvalidSpec, "campaign spec rejected", err.Error())
			return
		}
		// Validate before touching the job store, so a bad spec is the
		// client's 400 and a store failure is the server's 500.
		if _, err := spec.Compile(); err != nil {
			s.bad.Add(1)
			writeError(w, ErrCodeInvalidSpec, "campaign spec rejected", err.Error())
			return
		}
		st, created, err := s.jobs.submit(spec)
		if err != nil {
			writeError(w, ErrCodeInternal, "job submission failed", err.Error())
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeJSON(w, status, st)
	default:
		writeError(w, ErrCodeMethod, "GET or POST only", "")
	}
}

// handleJob serves one job resource: GET for status, DELETE to cancel and
// discard.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, ErrCodeJobsDisabled, "daemon started without a job store", "run cbad with -jobs-dir")
		return
	}
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		st, ok := s.jobs.get(id)
		if !ok {
			writeError(w, ErrCodeNotFound, "no such job", id)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case http.MethodDelete:
		st, ok := s.jobs.remove(id)
		if !ok {
			writeError(w, ErrCodeNotFound, "no such job", id)
			return
		}
		writeJSON(w, http.StatusOK, st)
	default:
		writeError(w, ErrCodeMethod, "GET or DELETE only", "")
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, ErrCodeMethod, "POST only", "")
		return
	}
	s.requests.Add(1)
	// Load shedding: bound the handlers in execution so a saturated pool
	// degrades into fast 503s while the health and observability routes
	// (which bypass this gate) stay responsive.
	select {
	case s.runSlots <- struct{}{}:
		defer func() { <-s.runSlots }()
	default:
		s.shed.Add(1)
		writeError(w, ErrCodeOverloaded, "run concurrency limit reached, retry later", "")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		s.bad.Add(1)
		writeError(w, ErrCodeBadRequest, "read body", err.Error())
		return
	}
	if len(body) > maxSpecBytes {
		s.bad.Add(1)
		writeError(w, ErrCodeSpecTooLarge, "scenario spec too large", fmt.Sprintf("limit %d bytes", maxSpecBytes))
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		s.bad.Add(1)
		writeError(w, ErrCodeInvalidSpec, "scenario spec rejected", err.Error())
		return
	}
	// Compile validates; a spec that loads but breaks a schema rule (seed
	// overflow, duplicate seeds, bad geometry, ...) is the client's error.
	compiled, err := spec.Compile()
	if err != nil {
		s.bad.Add(1)
		writeError(w, ErrCodeInvalidSpec, "scenario spec rejected", err.Error())
		return
	}
	key, err := spec.CacheKey()
	if err != nil {
		writeError(w, ErrCodeInternal, "cache key derivation failed", err.Error())
		return
	}

	// Fan the whole schedule out first — the pool runs seeds of one request
	// concurrently — then collect in schedule order. An admission refusal
	// anywhere fails the request with 429, but runs already admitted keep
	// executing and land in the cache, so the retry is cheaper.
	type pending struct {
		seed   uint64
		res    sim.Result
		cached bool
		f      *flight
	}
	runs := make([]pending, 0, len(compiled.Seeds))
	for _, seed := range compiled.Seeds {
		p := pending{seed: seed}
		var err error
		p.res, p.cached, p.f, err = s.startRun(compiled, key, seed)
		if err != nil {
			s.rejected.Add(1)
			writeError(w, ErrCodeQueueFull, "queue full, retry later", "")
			return
		}
		runs = append(runs, p)
	}
	// One deadline spans the whole request — the time budget covers every
	// seed of the schedule, not each seed separately.
	var deadline <-chan time.Time
	if s.runTimeout > 0 {
		deadline = s.clock.After(s.runTimeout)
	}
	resp := RunResponse{Scenario: spec.Name, Key: key, Runs: make([]RunResult, 0, len(runs))}
	for i := range runs {
		p := &runs[i]
		if p.f != nil {
			select {
			case <-p.f.done:
			case <-deadline:
				// Executions already admitted keep running and land in the
				// cache; only this handler gives up.
				s.deadlined.Add(1)
				writeError(w, ErrCodeDeadline, "request deadline exceeded", s.runTimeout.String())
				return
			case <-r.Context().Done():
				return // client gone; nothing useful to write
			}
			p.res = p.f.res
			if err := p.f.err; err != nil {
				if errors.Is(err, campaign.ErrQueueFull) {
					// A joined flight whose submitter was refused admission.
					s.rejected.Add(1)
					writeError(w, ErrCodeQueueFull, "queue full, retry later", "")
					return
				}
				// A simulation error on a validated spec (e.g. the cycle
				// limit guard) is the submission's fault, not the server's.
				writeError(w, ErrCodeRunFailed, "simulation failed", err.Error())
				return
			}
		}
		resp.Runs = append(resp.Runs, RunResult{Seed: p.seed, Cached: p.cached, Result: scenario.Snap(p.res)})
	}
	writeJSON(w, http.StatusOK, resp)
}

// startRun resolves one (spec, seed) run without blocking on execution: a
// cache hit returns the result directly (cached true, nil flight); otherwise
// the caller receives a flight to await — its own fresh execution admitted
// through the bounded pool, or a join of an identical run already in
// flight (single-flight deduplication). A non-nil error is an admission
// refusal (campaign.ErrQueueFull).
func (s *Server) startRun(c *scenario.Compiled, key string, seed uint64) (sim.Result, bool, *flight, error) {
	rk := fmt.Sprintf("%s/%d", key, seed)

	s.mu.Lock()
	if res, ok := s.cache.get(rk); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return res, true, nil, nil
	}
	if f, ok := s.flights[rk]; ok {
		// Someone is already simulating this exact run: join their flight.
		s.mu.Unlock()
		s.coalesced.Add(1)
		return sim.Result{}, false, f, nil
	}
	f := &flight{done: make(chan struct{})}
	s.flights[rk] = f
	s.mu.Unlock()
	s.misses.Add(1)

	err := s.pool.TrySubmit(func(rn *sim.Runner) {
		if s.execGate != nil {
			s.execGate()
		}
		s.execs.Add(1)
		f.res, f.err = c.RunSeedRunner(rn, seed)
		s.mu.Lock()
		if f.err == nil {
			s.cache.put(rk, f.res)
		}
		delete(s.flights, rk)
		s.mu.Unlock()
		close(f.done)
	})
	if err != nil {
		// Admission refused. Joiners that latched onto this flight between
		// the map insert and now must see the refusal too, so publish it
		// through the flight before retiring it.
		f.err = err
		s.mu.Lock()
		delete(s.flights, rk)
		s.mu.Unlock()
		close(f.done)
		return sim.Result{}, false, nil, err
	}
	return sim.Result{}, false, f, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client hanging up mid-write is not a server fault
}
