package service

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"creditbus/internal/fault"
)

// TestLoadSheddingKeepsControlPlaneResponsive wedges the single run slot and
// asserts: a second /v1/run is refused immediately with overloaded (503),
// while /v1/healthz, GET /v1/jobs and /v1/stats — which bypass the gate —
// keep answering.
func TestLoadSheddingKeepsControlPlaneResponsive(t *testing.T) {
	srv, hs := startServer(t, Options{Workers: 1, MaxConcurrentRuns: 1, JobsDir: t.TempDir()})
	release := make(chan struct{})
	srv.execGate = func() { <-release }

	first := make(chan int, 1)
	go func() {
		code, _, _ := post(t, hs.URL, testSpec("wedged", 1))
		first <- code
	}()
	// Wait until the first handler owns the slot and waits on its flight.
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.runSlots) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never took the run slot")
		}
		time.Sleep(time.Millisecond)
	}

	code, _, body := post(t, hs.URL, testSpec("shed", 2))
	if code != http.StatusServiceUnavailable || !strings.Contains(body, ErrCodeOverloaded) {
		t.Fatalf("saturated gate: code %d body %s", code, body)
	}
	// Control plane stays responsive while the data plane is saturated.
	for _, path := range []string{"/v1/healthz", "/v1/jobs", "/v1/stats"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s while saturated: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while saturated: %d", path, resp.StatusCode)
		}
	}
	if st := srv.Snapshot(); st.LoadShed != 1 {
		t.Fatalf("load_shed = %d, want 1", st.LoadShed)
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("wedged request finished %d", code)
	}
	// The slot is released; the gate admits again.
	if code, _, _ := post(t, hs.URL, testSpec("after", 3)); code != http.StatusOK {
		t.Fatalf("post-release request refused: %d", code)
	}
}

// TestRunDeadline504 wedges execution under a fake clock, advances past the
// request deadline, and asserts the typed 504 — without a single real-time
// sleep on the deadline path.
func TestRunDeadline504(t *testing.T) {
	clk := fault.NewFakeClock(time.Unix(0, 0))
	srv, hs := startServer(t, Options{Workers: 1, RunTimeout: 5 * time.Second, Clock: clk})
	release := make(chan struct{})
	srv.execGate = func() { <-release }
	defer close(release) // let the wedged execution drain at cleanup

	done := make(chan string, 1)
	go func() {
		code, _, body := post(t, hs.URL, testSpec("slow", 1))
		if code != http.StatusGatewayTimeout {
			done <- body
			return
		}
		done <- ""
	}()
	// The handler arms its deadline before waiting on the flight.
	deadline := time.Now().Add(10 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run handler never armed its deadline")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(5 * time.Second)
	if body := <-done; body != "" {
		t.Fatalf("want 504 deadline_exceeded, got: %s", body)
	}
	if st := srv.Snapshot(); st.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", st.DeadlineExceeded)
	}
}

// TestJobChunkDeadlineFailsTyped saturates the only worker with a wedged
// interactive run, submits a job whose first chunk therefore cannot finish,
// and advances the fake clock past the chunk deadline: the job must fail
// with the typed chunk-deadline error while its checkpoints stay resumable.
func TestJobChunkDeadlineFailsTyped(t *testing.T) {
	clk := fault.NewFakeClock(time.Unix(0, 0))
	srv, hs := startServer(t, Options{
		Workers: 1, Queue: 8, JobsDir: t.TempDir(),
		JobCheckpointEvery: 4, JobChunkTimeout: 30 * time.Second, Clock: clk,
	})
	release := make(chan struct{})
	srv.execGate = func() { <-release }

	wedged := make(chan int, 1)
	go func() {
		code, _, _ := post(t, hs.URL, testSpec("hog", 1))
		wedged <- code
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Snapshot().Misses < 1 {
		if time.Now().After(deadline) {
			t.Fatal("hog never reached the worker")
		}
		time.Sleep(time.Millisecond)
	}

	code, st, body := postJob(t, hs.URL, jobCampaign("deadline-job", 8))
	if code != http.StatusCreated {
		t.Fatalf("POST job: %d %s", code, body)
	}
	// The driver's first chunk arms the chunk deadline once submissions are
	// in flight behind the wedged worker.
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("chunk deadline never armed")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(30 * time.Second)

	final := waitJob(t, hs.URL, st.ID)
	if final.State != JobFailed || !strings.Contains(final.Error, "chunk deadline") {
		t.Fatalf("job state %q error %q, want failed on chunk deadline", final.State, final.Error)
	}
	if s := srv.Snapshot(); s.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", s.DeadlineExceeded)
	}
	close(release)
	<-wedged
}

// TestJobRecoversFromQuarantinedCheckpoint completes a job, corrupts one of
// its shard checkpoints on disk, and reboots the daemon over the same job
// store: load must quarantine the bad file, restart the driver, and
// converge to a report with the original result hash — corrupted
// checkpoints are recovered from, never merged.
func TestJobRecoversFromQuarantinedCheckpoint(t *testing.T) {
	jobsDir := t.TempDir()
	spec := jobCampaign("quarantine-recover", 24)

	srv1, err := New(Options{Workers: 2, JobsDir: jobsDir, JobCheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	st1, created, err := srv1.jobs.submit(spec)
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		got, ok := srv1.jobs.get(st1.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if got.State == JobDone {
			st1 = got
			break
		}
		if got.State != JobRunning || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv1.Close()
	wantHash := st1.Report.ResultHash

	// Corrupt the first shard's primary checkpoint.
	ckpt := filepath.Join(jobsDir, st1.ID, "ckpt", "shard-0000.json")
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Options{Workers: 2, JobsDir: jobsDir, JobCheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for {
		got, ok := srv2.jobs.get(st1.ID)
		if !ok {
			t.Fatal("job not reloaded")
		}
		if got.State == JobDone {
			if got.Report == nil || got.Report.ResultHash != wantHash {
				t.Fatalf("recovered report diverges: %+v", got.Report)
			}
			break
		}
		if got.State != JobRunning || time.Now().After(deadline) {
			t.Fatalf("job did not recover: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if q := srv2.Snapshot().Quarantines; q < 1 {
		t.Fatalf("quarantines = %d, want >= 1", q)
	}
	if _, err := os.Stat(ckpt + ".quarantine-0"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

// TestJobStoreFaultSurfacesTyped submits a job through an injected
// filesystem that fails the first checkpoint write with ENOSPC and asserts
// the job fails with the typed error — and that resubmitting after the
// space recovers (a daemon restart over the same store) completes.
func TestJobStoreFaultSurfacesTyped(t *testing.T) {
	jobsDir := t.TempDir()
	spec := jobCampaign("enospc-job", 16)

	// Census pass on a pristine copy of the workload to find a write op
	// inside SaveShard: use a generous op index hit by trial — instead,
	// fault the very first Sync, which only the checkpoint path performs.
	var sync int64
	census := fault.NewInjector(fault.OS{}, fault.Plan{})
	census.Log = func(n int64, op fault.Op, path string) {
		if sync == 0 && op == fault.OpSync && strings.Contains(path, "shard-") {
			sync = n
		}
	}
	srv0, err := New(Options{Workers: 2, JobsDir: t.TempDir(), JobCheckpointEvery: 4, FS: census})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv0.jobs.submit(spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	id, _ := jobID(spec)
	for {
		got, _ := srv0.jobs.get(id)
		if got.State == JobDone {
			break
		}
		if got.State != JobRunning || time.Now().After(deadline) {
			t.Fatalf("census job: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv0.Close()
	if sync == 0 {
		t.Fatal("census never saw a checkpoint fsync")
	}

	in := fault.NewInjector(fault.OS{}, fault.Plan{Op: sync, Kind: fault.KindENOSPC})
	srv1, err := New(Options{Workers: 2, JobsDir: jobsDir, JobCheckpointEvery: 4, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv1.jobs.submit(spec); err != nil {
		t.Fatal(err)
	}
	for {
		got, _ := srv1.jobs.get(id)
		if got.State == JobFailed {
			if !strings.Contains(got.Error, fault.ErrNoSpace.Error()) {
				t.Fatalf("job error not typed: %q", got.Error)
			}
			break
		}
		if got.State == JobDone || time.Now().After(deadline) {
			t.Fatalf("ENOSPC job: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv1.Close()

	// "Space freed, daemon restarted": the same store resumes to done.
	srv2, err := New(Options{Workers: 2, JobsDir: jobsDir, JobCheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for {
		got, ok := srv2.jobs.get(id)
		if !ok {
			t.Fatal("job not reloaded after restart")
		}
		if got.State == JobDone {
			break
		}
		if got.State != JobRunning || time.Now().After(deadline) {
			t.Fatalf("job did not resume after ENOSPC: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChunkDeadlineErrTyped pins the sentinel into the public error chain.
func TestChunkDeadlineErrTyped(t *testing.T) {
	err := errors.New("wrap: " + ErrChunkDeadline.Error())
	if errors.Is(err, ErrChunkDeadline) {
		t.Fatal("string lookalike must not satisfy errors.Is")
	}
	if !errors.Is(ErrChunkDeadline, ErrChunkDeadline) {
		t.Fatal("sentinel identity")
	}
}
