package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"creditbus/internal/scenario"
)

// testSpec builds a small, fast wcet scenario; wseed varies the workload's
// own seed, giving distinct semantic cache keys per value.
func testSpec(name string, wseed uint64, seeds ...uint64) scenario.Spec {
	if len(seeds) == 0 {
		seeds = []uint64{3}
	}
	return scenario.Spec{
		Name: name,
		Run:  scenario.RunWCET,
		Workloads: []scenario.Workload{
			{Core: 0, Name: "matrix", Seed: wseed, Ops: 200},
		},
		Seeds: scenario.Seeds{List: seeds},
	}
}

// startServer boots a Server over httptest with cleanup registered.
func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

// post submits a spec and returns status plus decoded response (on 200).
func post(t *testing.T, url string, sp scenario.Spec) (int, RunResponse, string) {
	t.Helper()
	data, err := sp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var rr RunResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatalf("bad response body: %v\n%s", err, body)
		}
	}
	return resp.StatusCode, rr, string(body)
}

// TestMissThenHit: the first submission simulates, an identical resubmission
// is served from the cache with an identical result — even when the respelled
// spec has a different name, description and seed-schedule form.
func TestMissThenHit(t *testing.T) {
	srv, hs := startServer(t, Options{Workers: 2})

	sp := testSpec("first", 1, 5, 7)
	code, first, body := post(t, hs.URL, sp)
	if code != http.StatusOK {
		t.Fatalf("first submission: %d\n%s", code, body)
	}
	if len(first.Runs) != 2 || first.Runs[0].Cached || first.Runs[1].Cached {
		t.Fatalf("first submission should miss: %+v", first.Runs)
	}
	if got := srv.Snapshot(); got.Executions != 2 || got.Misses != 2 || got.Hits != 0 {
		t.Fatalf("after miss: %+v", got)
	}

	// Identical semantics, different labels and schedule spelling.
	re := testSpec("renamed", 1, 5, 7)
	re.Description = "same platform, new words"
	code, second, body := post(t, hs.URL, re)
	if code != http.StatusOK {
		t.Fatalf("resubmission: %d\n%s", code, body)
	}
	if second.Key != first.Key {
		t.Fatal("semantically identical specs got different cache keys")
	}
	for i, r := range second.Runs {
		if !r.Cached {
			t.Fatalf("run %d of resubmission missed the cache", i)
		}
		if !reflect.DeepEqual(r.Result, first.Runs[i].Result) {
			t.Fatalf("run %d: cached result differs from first execution", i)
		}
	}
	if got := srv.Snapshot(); got.Executions != 2 || got.Hits != 2 {
		t.Fatalf("after hit: %+v", got)
	}
}

// TestSingleFlight: N concurrent identical submissions execute the
// simulator exactly once; everyone receives the same result.
func TestSingleFlight(t *testing.T) {
	const clients = 16
	srv, hs := startServer(t, Options{Workers: 4, Queue: 64})
	release := make(chan struct{})
	srv.execGate = func() { <-release }

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		codes  []int
		bodies []RunResponse
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, rr, _ := post(t, hs.URL, testSpec("burst", 2))
			mu.Lock()
			codes = append(codes, code)
			bodies = append(bodies, rr)
			mu.Unlock()
		}()
	}
	// Hold the execution until every client has either opened the flight or
	// joined it, so all N demonstrably overlap one execution.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Snapshot()
		if st.Misses+st.Coalesced >= clients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clients never converged on the flight: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	st := srv.Snapshot()
	if st.Executions != 1 {
		t.Fatalf("%d concurrent identical submissions ran the simulator %d times, want exactly 1", clients, st.Executions)
	}
	if st.Misses != 1 || st.Coalesced != clients-1 {
		t.Fatalf("miss/coalesce split: %+v", st)
	}
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("client %d: status %d", i, code)
		}
		if !reflect.DeepEqual(bodies[i].Runs, bodies[0].Runs) {
			t.Fatalf("client %d received a different result", i)
		}
	}
}

// TestBitIdenticalToDirectRun: the service's result payload is byte-identical
// to a direct library run of the same spec — same canonical snapshot bytes.
func TestBitIdenticalToDirectRun(t *testing.T) {
	_, hs := startServer(t, Options{Workers: 2})
	sp := testSpec("direct", 3, 11, 12)
	code, got, body := post(t, hs.URL, sp)
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}

	compiled, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range compiled.Seeds {
		direct, err := compiled.RunSeed(seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(scenario.Snap(direct))
		if err != nil {
			t.Fatal(err)
		}
		have, err := json.Marshal(got.Runs[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, have) {
			t.Fatalf("seed %d: service bytes differ from direct run\nservice: %s\ndirect:  %s", seed, have, want)
		}
	}
}

// TestInvalidSpec400: malformed JSON, schema violations and semantic
// validation failures are all client errors.
func TestInvalidSpec400(t *testing.T) {
	srv, hs := startServer(t, Options{Workers: 1})
	bad := []string{
		`{not json`,
		`{"name":"x","run":"wcet","typo_field":1}`,
		// Validation failures: no workloads; duplicate seeds; overflowing
		// explicit seed schedule.
		`{"name":"x","run":"wcet","workloads":[]}`,
		`{"name":"x","run":"wcet","workloads":[{"core":0,"workload":"matrix","ops":200}],"seeds":{"list":[5,5]}}`,
		`{"name":"x","run":"wcet","workloads":[{"core":0,"workload":"matrix","ops":200}],"seeds":{"base":18446744073709551615,"runs":2,"stride":1}}`,
	}
	for i, b := range bad {
		resp, err := http.Post(hs.URL+"/v1/run", "application/json", bytes.NewReader([]byte(b)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad spec %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if st := srv.Snapshot(); st.BadRequests != int64(len(bad)) || st.Executions != 0 {
		t.Fatalf("bad requests must not simulate: %+v", st)
	}
	// Wrong methods.
	if resp, err := http.Get(hs.URL + "/v1/run"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/run: %d", resp.StatusCode)
		}
	}
}

// TestQueueOverflow429: with one wedged worker and a single queue slot, the
// third distinct submission is refused with 429 — admission control instead
// of unbounded queueing. Runs admitted before the refusal still complete.
func TestQueueOverflow429(t *testing.T) {
	srv, hs := startServer(t, Options{Workers: 1, Queue: 1})
	release := make(chan struct{})
	srv.execGate = func() { <-release }

	type outcome struct {
		code int
		rr   RunResponse
	}
	results := make(chan outcome, 2)
	for i := uint64(0); i < 2; i++ {
		i := i
		go func() {
			code, rr, _ := post(t, hs.URL, testSpec(fmt.Sprintf("w%d", i), 10+i))
			results <- outcome{code, rr}
		}()
	}
	// Wait until one run occupies the worker and one sits in the queue.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Snapshot().Misses < 2 || srv.pool.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %+v", srv.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}

	code, _, body := post(t, hs.URL, testSpec("overflow", 99))
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated pool accepted a run: %d\n%s", code, body)
	}
	if st := srv.Snapshot(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}

	close(release)
	for i := 0; i < 2; i++ {
		o := <-results
		if o.code != http.StatusOK {
			t.Fatalf("admitted run failed: %d", o.code)
		}
	}
}

// TestStatsAndHealth: the observability endpoints serve and count.
func TestStatsAndHealth(t *testing.T) {
	_, hs := startServer(t, Options{Workers: 1, Queue: 7, CacheSize: 9})
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 || st.QueueCapacity != 7 || st.CacheCapacity != 9 {
		t.Fatalf("stats: %+v", st)
	}
	h, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", h.StatusCode)
	}
}

// TestCacheEviction: the LRU bound holds and an evicted entry re-simulates
// to an identical result.
func TestCacheEviction(t *testing.T) {
	srv, hs := startServer(t, Options{Workers: 2, CacheSize: 2})
	var firstBody RunResponse
	for i := uint64(0); i < 3; i++ {
		sp := testSpec(fmt.Sprintf("e%d", i), 20+i)
		code, rr, body := post(t, hs.URL, sp)
		if code != http.StatusOK {
			t.Fatalf("spec %d: %d\n%s", i, code, body)
		}
		if i == 0 {
			firstBody = rr
		}
	}
	if st := srv.Snapshot(); st.CacheEntries != 2 {
		t.Fatalf("cache entries %d, want capacity bound 2", st.CacheEntries)
	}
	// Spec 0 was evicted (LRU): resubmission re-simulates, same bytes.
	code, again, _ := post(t, hs.URL, testSpec("e0-again", 20))
	if code != http.StatusOK {
		t.Fatal("resubmission failed")
	}
	if again.Runs[0].Cached {
		t.Fatal("evicted entry reported as cached")
	}
	if !reflect.DeepEqual(again.Runs[0].Result, firstBody.Runs[0].Result) {
		t.Fatal("re-simulated result differs from the evicted one")
	}
}
