package service

import "net/http"

// APIError is the versioned error envelope every endpoint returns on
// failure: a stable machine-readable code, a human message, and optional
// detail. Clients branch on Code — never on message text, which may be
// reworded — and cmd/cbaload tallies codes in its summary. The envelope is
// versioned with the API path (/v1/): a breaking change to its shape ships
// as /v2/, never as a silent mutation.
type APIError struct {
	// Code is the stable error class, one of the Err* constants.
	Code string `json:"code"`
	// Message says what went wrong, for humans.
	Message string `json:"message"`
	// Detail carries the specific cause (validation error text, offending
	// id, limit values); may be empty.
	Detail string `json:"detail,omitempty"`
}

// Stable error codes. These are API surface: removing or renaming one is a
// breaking change.
const (
	// ErrCodeMethod — the endpoint exists but not for this HTTP method.
	ErrCodeMethod = "method_not_allowed"
	// ErrCodeBadRequest — the request body could not be read or parsed.
	ErrCodeBadRequest = "bad_request"
	// ErrCodeSpecTooLarge — the body exceeds the spec size bound.
	ErrCodeSpecTooLarge = "spec_too_large"
	// ErrCodeInvalidSpec — the body parsed but failed schema validation.
	ErrCodeInvalidSpec = "invalid_spec"
	// ErrCodeQueueFull — admission control refused the work (retry later).
	ErrCodeQueueFull = "queue_full"
	// ErrCodeOverloaded — load shedding refused the work: every run slot is
	// busy, so the server answers fast instead of queueing the handler
	// (retry later, like queue_full).
	ErrCodeOverloaded = "overloaded"
	// ErrCodeDeadline — the request exceeded its server-side deadline.
	ErrCodeDeadline = "deadline_exceeded"
	// ErrCodeRunFailed — a validated spec failed during simulation.
	ErrCodeRunFailed = "run_failed"
	// ErrCodeNotFound — no such resource (job id, route).
	ErrCodeNotFound = "not_found"
	// ErrCodeJobsDisabled — the daemon runs without a job store.
	ErrCodeJobsDisabled = "jobs_disabled"
	// ErrCodeInternal — the server's fault.
	ErrCodeInternal = "internal"
)

// httpStatus maps each error code to its transport status.
var httpStatus = map[string]int{
	ErrCodeMethod:       http.StatusMethodNotAllowed,
	ErrCodeBadRequest:   http.StatusBadRequest,
	ErrCodeSpecTooLarge: http.StatusBadRequest,
	ErrCodeInvalidSpec:  http.StatusBadRequest,
	ErrCodeQueueFull:    http.StatusTooManyRequests,
	ErrCodeOverloaded:   http.StatusServiceUnavailable,
	ErrCodeDeadline:     http.StatusGatewayTimeout,
	ErrCodeRunFailed:    http.StatusUnprocessableEntity,
	ErrCodeNotFound:     http.StatusNotFound,
	ErrCodeJobsDisabled: http.StatusNotImplemented,
	ErrCodeInternal:     http.StatusInternalServerError,
}

// writeError sends the typed JSON envelope with the code's HTTP status.
func writeError(w http.ResponseWriter, code, message, detail string) {
	status, ok := httpStatus[code]
	if !ok {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, APIError{Code: code, Message: message, Detail: detail})
}
