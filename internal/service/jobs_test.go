package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"creditbus/internal/scenario"
	"creditbus/internal/shard"
)

// jobCampaign builds a small two-scenario campaign spec whose units are
// cheap enough for differential tests.
func jobCampaign(name string, units int) shard.CampaignSpec {
	a := units * 2 / 3
	fast := func(n string, runs int) scenario.Spec {
		return scenario.Spec{
			Name:      n,
			Cores:     2,
			Run:       scenario.RunIsolation,
			Workloads: []scenario.Workload{{Core: 0, Name: "canrdr", Ops: 8}},
			Seeds:     scenario.Seeds{Base: 1, Runs: runs},
		}
	}
	return shard.CampaignSpec{
		Name:      name,
		Scenarios: []scenario.Spec{fast(name+"-a", a), fast(name+"-b", units-a)},
		Shards:    2,
	}
}

// postJob submits a campaign spec to the job API.
func postJob(t *testing.T, url string, spec shard.CampaignSpec) (int, JobStatus, string) {
	t.Helper()
	data, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("bad job response: %v\n%s", err, body)
		}
	}
	return resp.StatusCode, st, string(body)
}

// getJob fetches one job's status.
func getJob(t *testing.T, url, id string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// waitJob polls until the job leaves JobRunning or the deadline passes.
func waitJob(t *testing.T, url, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, st := getJob(t, url, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State != JobRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobLifecycle: POST → 201 with a content-addressed id, identical
// resubmission → 200 with the same id (idempotent), completion report
// byte-identical to the single-process shard.Reference, list and stats
// counters consistent, DELETE → gone.
func TestJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv, hs := startServer(t, Options{Workers: 2, JobsDir: dir, JobCheckpointEvery: 64})

	spec := jobCampaign("lifecycle", 300)
	code, st, body := postJob(t, hs.URL, spec)
	if code != http.StatusCreated {
		t.Fatalf("POST: status %d\n%s", code, body)
	}
	if st.ID == "" || st.Units != 300 || st.Shards != 2 {
		t.Fatalf("job status: %+v", st)
	}
	// Idempotent resubmission: same id, not created again.
	code2, st2, _ := postJob(t, hs.URL, spec)
	if code2 != http.StatusOK || st2.ID != st.ID {
		t.Fatalf("resubmission: status %d id %s (want 200, %s)", code2, st2.ID, st.ID)
	}

	final := waitJob(t, hs.URL, st.ID)
	if final.State != JobDone || final.Report == nil {
		t.Fatalf("final: %+v", final)
	}
	if final.UnitsDone != 300 {
		t.Fatalf("units done %d, want 300", final.UnitsDone)
	}

	// The job's report must be byte-identical to the single-process
	// reference over the same campaign.
	camp, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := shard.Reference(camp, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := final.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatalf("job report differs from reference\njob: %s\nref: %s", gotBytes, wantBytes)
	}

	// List includes the job; stats count it.
	resp, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v", list)
	}
	if snap := srv.Snapshot(); snap.JobsTotal != 1 || snap.JobsRunning != 0 || snap.JobUnitsDone != 300 {
		t.Fatalf("stats after job: %+v", snap)
	}

	// DELETE removes the resource and its directory.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}
	if code, _ := getJob(t, hs.URL, st.ID); code != http.StatusNotFound {
		t.Fatalf("deleted job still answers: %d", code)
	}
}

// TestJobRestartResume: a daemon that died mid-campaign left spec.json and
// a partial checkpoint store behind (fabricated here with a budgeted
// shard.Runner — the exact on-disk state an interrupted driver produces).
// A new server must pick the job up, execute only the remainder, and
// produce a report byte-identical to the reference.
func TestJobRestartResume(t *testing.T) {
	dir := t.TempDir()
	spec := jobCampaign("resume", 400)
	id, err := jobID(spec)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	jdir := filepath.Join(dir, id)
	if err := writeSpecDir(jdir, spec); err != nil {
		t.Fatal(err)
	}
	store, err := shard.Open(filepath.Join(jdir, "ckpt"), camp.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	// Run 96 of shard 0's 200 units, then "die".
	partial := &shard.Runner{Campaign: camp, Store: store, Workers: 2, CheckpointEvery: 32, MaxUnits: 96}
	if _, complete, err := partial.RunShard(0); err != nil {
		t.Fatal(err)
	} else if complete {
		t.Fatal("budgeted shard run must stop incomplete")
	}

	srv, hs := startServer(t, Options{Workers: 2, JobsDir: dir, JobCheckpointEvery: 64})
	final := waitJob(t, hs.URL, id)
	if final.State != JobDone || final.Report == nil {
		t.Fatalf("resumed job: %+v", final)
	}
	// Only the remainder ran on this daemon: 400 total − 96 resumed.
	if done := srv.Snapshot().JobUnitsDone; done != 400-96 {
		t.Fatalf("resumed daemon executed %d units, want %d", done, 400-96)
	}
	want, err := shard.Reference(camp, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, _ := want.Encode()
	gotBytes, _ := final.Report.Encode()
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatalf("resumed report differs from reference\njob: %s\nref: %s", gotBytes, wantBytes)
	}

	// A complete job also survives restart: close this daemon, boot another
	// on the same store, and the job surfaces as done with the same report.
	hs.Close()
	srv.Close()
	srv2, err := New(Options{Workers: 2, JobsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	st, ok := srv2.jobs.get(id)
	if !ok || st.State != JobDone || st.Report == nil {
		t.Fatalf("reloaded job: %+v", st)
	}
	reloaded, _ := st.Report.Encode()
	if !bytes.Equal(wantBytes, reloaded) {
		t.Fatal("reloaded report differs from reference")
	}
}

// TestJobLiveShutdownResume: a server closed while a job is mid-flight
// stops at a chunk boundary; a second server on the same job store resumes
// and finishes with the reference bytes.
func TestJobLiveShutdownResume(t *testing.T) {
	dir := t.TempDir()
	spec := jobCampaign("live-resume", 4000)
	srvA, err := New(Options{Workers: 2, JobsDir: dir, JobCheckpointEvery: 128})
	if err != nil {
		t.Fatal(err)
	}
	stA, created, err := srvA.jobs.submit(spec)
	if err != nil || !created {
		t.Fatalf("submit: %v created=%v", err, created)
	}
	// Let it make some progress, then shut the daemon down mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for srvA.Snapshot().JobUnitsDone == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	srvA.Close()

	srvB, hs := startServer(t, Options{Workers: 2, JobsDir: dir, JobCheckpointEvery: 128})
	final := waitJob(t, hs.URL, stA.ID)
	if final.State != JobDone || final.Report == nil {
		t.Fatalf("final: %+v", final)
	}
	camp, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := shard.Reference(camp, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, _ := want.Encode()
	gotBytes, _ := final.Report.Encode()
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatal("resumed report differs from reference")
	}
	// If daemon A had already finished everything, B had nothing to resume
	// and the test degenerates; guard against that silently passing.
	if srvB.Snapshot().JobUnitsDone == 0 && srvA.Snapshot().JobUnitsDone < 4000 {
		t.Fatal("neither daemon accounts for the campaign's units")
	}
}

// TestJobErrors: the job API's typed error envelope on every failure mode.
func TestJobErrors(t *testing.T) {
	dir := t.TempDir()
	_, hs := startServer(t, Options{Workers: 1, JobsDir: dir})

	expectError := func(method, path, body, wantCode string, wantStatus int) {
		t.Helper()
		var req *http.Request
		var err error
		if body == "" {
			req, err = http.NewRequest(method, hs.URL+path, nil)
		} else {
			req, err = http.NewRequest(method, hs.URL+path, bytes.NewReader([]byte(body)))
		}
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ae APIError
		if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
			t.Fatalf("%s %s: no envelope: %v", method, path, err)
		}
		if resp.StatusCode != wantStatus || ae.Code != wantCode {
			t.Fatalf("%s %s: status %d code %q, want %d %q", method, path, resp.StatusCode, ae.Code, wantStatus, wantCode)
		}
	}

	expectError(http.MethodPost, "/v1/jobs", `{not json`, ErrCodeInvalidSpec, http.StatusBadRequest)
	expectError(http.MethodPost, "/v1/jobs", `{"scenarios":[]}`, ErrCodeInvalidSpec, http.StatusBadRequest)
	expectError(http.MethodPut, "/v1/jobs", `{}`, ErrCodeMethod, http.StatusMethodNotAllowed)
	expectError(http.MethodGet, "/v1/jobs/nope", "", ErrCodeNotFound, http.StatusNotFound)
	expectError(http.MethodDelete, "/v1/jobs/nope", "", ErrCodeNotFound, http.StatusNotFound)
	expectError(http.MethodPatch, "/v1/jobs/nope", "", ErrCodeMethod, http.StatusMethodNotAllowed)
	expectError(http.MethodGet, "/v1/wrong-route", "", ErrCodeNotFound, http.StatusNotFound)
	expectError(http.MethodGet, "/v1/run", "", ErrCodeMethod, http.StatusMethodNotAllowed)
	expectError(http.MethodPost, "/v1/run", `{not json`, ErrCodeInvalidSpec, http.StatusBadRequest)
	expectError(http.MethodPost, "/v1/stats", "", ErrCodeMethod, http.StatusMethodNotAllowed)

	// Jobs disabled: a daemon without a job store answers 501.
	_, hs2 := startServer(t, Options{Workers: 1})
	resp, err := http.Get(hs2.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ae APIError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotImplemented || ae.Code != ErrCodeJobsDisabled {
		t.Fatalf("jobs without store: status %d code %q", resp.StatusCode, ae.Code)
	}
}

// TestStatsFields asserts every documented /v1/stats field is present in
// the JSON — the regression gate for the counters the ops tooling scrapes.
func TestStatsFields(t *testing.T) {
	_, hs := startServer(t, Options{Workers: 1, Queue: 7, CacheSize: 9, JobsDir: t.TempDir()})
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"workers", "queue_depth", "queue_capacity",
		"cache_entries", "cache_capacity", "in_flight",
		"requests", "bad_requests", "rejected",
		"load_shed", "deadline_exceeded", "quarantines",
		"hits", "misses", "coalesced", "executions",
		"jobs_total", "jobs_running", "job_units_done",
	}
	for _, k := range want {
		if _, ok := raw[k]; !ok {
			t.Errorf("stats JSON missing %q", k)
		}
	}
	if len(raw) != len(want) {
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		t.Errorf("stats JSON has %d fields, want %d: %v", len(raw), len(want), keys)
	}
	// The struct and the JSON agree on field count too.
	if n := reflect.TypeOf(Stats{}).NumField(); n != len(want) {
		t.Errorf("Stats struct has %d fields, test covers %d — update both", n, len(want))
	}
}

// writeSpecDir fabricates a job directory the way submit does.
func writeSpecDir(dir string, spec shard.CampaignSpec) error {
	data, err := spec.Encode()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "spec.json"), data, 0o644)
}
