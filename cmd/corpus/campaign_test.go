package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// megaCampaignSpec builds a campaign spec file of the given unit count:
// two minimal scenarios with unequal seed schedules, so the unit mapping
// crosses a scenario boundary.
func megaCampaignSpec(t *testing.T, dir string, units int64) string {
	t.Helper()
	a := units * 2 / 3
	spec := fmt.Sprintf(`{
  "name": "mega-sweep",
  "scenarios": [
    {
      "name": "mega-a",
      "cores": 2,
      "run": "isolation",
      "workloads": [{"core": 0, "workload": "canrdr", "ops": 8}],
      "seeds": {"base": 1, "runs": %d}
    },
    {
      "name": "mega-b",
      "cores": 2,
      "run": "isolation",
      "workloads": [{"core": 0, "workload": "canrdr", "ops": 8}],
      "seeds": {"base": 1, "runs": %d}
    }
  ]
}`, a, units-a)
	path := filepath.Join(dir, "campaign.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCampaignWorkerHelper is not a test: it is the shard-worker process
// body the differential suite re-execs. Everything after "--" in the
// command line is a corpus argument vector.
func TestCampaignWorkerHelper(t *testing.T) {
	if os.Getenv("CORPUS_WORKER_HELPER") != "1" {
		t.Skip("helper process entry point")
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	if err := run(args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// workerCmd builds a re-exec of this test binary as a corpus shard worker.
func workerCmd(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-test.run", "TestCampaignWorkerHelper", "--"}, args...)...)
	cmd.Env = append(os.Environ(), "CORPUS_WORKER_HELPER=1")
	return cmd
}

func runWorker(t *testing.T, args ...string) string {
	t.Helper()
	cmd := workerCmd(t, args...)
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("worker %v: %v\n%s", args, err, buf.String())
	}
	return buf.String()
}

// TestShardedMegaCampaignProcesses is the acceptance differential for the
// sharded-campaign stack: a ≥10⁶-unit (scenario, seed) sweep executed as
// K separate worker processes for K ∈ {1, 2, 8} — including a mid-shard
// budgeted stop with resume and a real SIGKILL with resume — always merges
// to report bytes identical to the in-process single-machine reference.
func TestShardedMegaCampaignProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("mega campaign differential is minutes-scale under -short budgets")
	}
	const units = 1_000_002
	base := t.TempDir()
	specPath := megaCampaignSpec(t, base, units)

	// Single-process reference, no checkpoints.
	refPath := filepath.Join(base, "ref.json")
	refOut := runWorker(t, "-campaign", specPath, "-reference", "-report", refPath)
	_ = refOut
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 2, 8} {
		k := k
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			ckpt := filepath.Join(base, fmt.Sprintf("ck-%d", k))
			common := []string{"-campaign", specPath, "-shards", fmt.Sprint(k), "-checkpoint", ckpt, "-checkpoint-every", "262144"}

			// One worker process per shard, concurrently — a real fleet.
			var wg sync.WaitGroup
			errs := make([]error, k)
			outs := make([]string, k)
			for i := 0; i < k; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					args := append(append([]string{}, common...), "-shard", fmt.Sprint(i))
					if k == 2 && i == 0 {
						// Budgeted mid-shard stop: the deterministic
						// kill-and-resume leg. The resume run below finishes it.
						args = append(args, "-max-units", "131072")
					}
					cmd := workerCmd(t, args...)
					var buf bytes.Buffer
					cmd.Stdout, cmd.Stderr = &buf, &buf
					errs[i] = cmd.Run()
					outs[i] = buf.String()
				}()
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("shard %d: %v\n%s", i, err, outs[i])
				}
			}
			if k == 2 {
				// Resume the budget-stopped shard in a fresh process.
				out := runWorker(t, append(append([]string{}, common...), "-shard", "0")...)
				if !strings.Contains(out, "complete") {
					t.Fatalf("resumed shard did not complete:\n%s", out)
				}
			}

			// Merge in yet another process and compare byte-for-byte.
			mergedPath := filepath.Join(base, fmt.Sprintf("merged-%d.json", k))
			runWorker(t, append(append([]string{}, common...), "-merge", "-report", mergedPath)...)
			merged, err := os.ReadFile(mergedPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(merged, ref) {
				t.Fatalf("K=%d merged report differs from single-process reference\nmerged: %.400s\nref:    %.400s", k, merged, ref)
			}
		})
	}
}

// TestShardKillResume sends a real SIGKILL to a worker process mid-shard,
// restarts it, and proves the merged bytes still match the reference — the
// crash-consistency leg (atomic checkpoint rename, resume from the last
// complete chunk).
func TestShardKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-and-resume differential is skipped under -short")
	}
	const units = 120_000
	base := t.TempDir()
	specPath := megaCampaignSpec(t, base, units)

	refPath := filepath.Join(base, "ref.json")
	runWorker(t, "-campaign", specPath, "-reference", "-report", refPath)
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(base, "ck")
	common := []string{"-campaign", specPath, "-shards", "2", "-checkpoint", ckpt, "-checkpoint-every", "4096"}

	// Start shard 0, wait for its first checkpoint to land, SIGKILL it.
	victim := workerCmd(t, append(append([]string{}, common...), "-shard", "0")...)
	victim.Stdout, victim.Stderr = io.Discard, io.Discard
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	shard0 := filepath.Join(ckpt, "shard-0000.json")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(shard0); err == nil {
			break
		}
		if time.Now().After(deadline) {
			_ = victim.Process.Kill()
			t.Fatal("shard 0 never checkpointed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = victim.Wait() // reap; exit status is the kill, not a failure

	// Resume the killed shard and run shard 1 normally.
	out := runWorker(t, append(append([]string{}, common...), "-shard", "0")...)
	if !strings.Contains(out, "complete") {
		t.Fatalf("resumed shard did not complete:\n%s", out)
	}
	runWorker(t, append(append([]string{}, common...), "-shard", "1")...)

	mergedPath := filepath.Join(base, "merged.json")
	runWorker(t, append(append([]string{}, common...), "-merge", "-report", mergedPath)...)
	merged, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, ref) {
		t.Fatalf("kill-and-resume merged report differs from reference\nmerged: %.400s\nref:    %.400s", merged, ref)
	}

	// The checkpoint store must refuse a premature merge: wipe shard 1 and
	// check the coordinator fails loudly rather than emitting a partial
	// report.
	if err := os.Remove(filepath.Join(ckpt, "shard-0001.json")); err != nil {
		t.Fatal(err)
	}
	cmd := workerCmd(t, append(append([]string{}, common...), "-merge", "-report", filepath.Join(base, "bad.json"))...)
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Run(); err == nil {
		t.Fatalf("merge over an incomplete store must fail\n%s", buf.String())
	}
}
