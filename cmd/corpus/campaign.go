package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"creditbus/internal/shard"
)

// campaignFlags are the sharded-campaign mode options (active when
// -campaign names a spec file).
type campaignFlags struct {
	file      string
	shards    int
	shardIdx  int
	ckptDir   string
	ckptEvery int64
	maxUnits  int64
	merge     bool
	reference bool
	report    string
	parallel  int
}

func registerCampaignFlags(fs *flag.FlagSet, cf *campaignFlags) {
	fs.StringVar(&cf.file, "campaign", "", "campaign spec file: switch to sharded-campaign mode (internal/shard schema)")
	fs.IntVar(&cf.shards, "shards", 0, "override the campaign's shard count (0 = the spec's own)")
	fs.IntVar(&cf.shardIdx, "shard", -1, "worker mode: execute this shard index and checkpoint it under -checkpoint")
	fs.StringVar(&cf.ckptDir, "checkpoint", "", "checkpoint store directory (required for -shard and -merge)")
	fs.Int64Var(&cf.ckptEvery, "checkpoint-every", 0, "units between checkpoints (0 = default)")
	fs.Int64Var(&cf.maxUnits, "max-units", 0, "stop the shard after this many units this invocation (0 = run to completion)")
	fs.BoolVar(&cf.merge, "merge", false, "coordinator mode: merge every shard checkpoint and emit the campaign report")
	fs.BoolVar(&cf.reference, "reference", false, "run the whole campaign in-process without checkpoints and emit the report (the byte-identity reference)")
	fs.StringVar(&cf.report, "report", "-", "report destination for -merge/-reference (\"-\" = stdout)")
}

// runCampaign is corpus's sharded-campaign mode: one invocation is either a
// shard worker (-shard i), the merge coordinator (-merge), or the
// single-process reference (-reference). Workers and coordinator share a
// checkpoint store, so the three byte-identity legs — K-way sharding,
// kill-and-resume, reference — all flow through this entry point.
func runCampaign(cf campaignFlags, stdout io.Writer) error {
	data, err := os.ReadFile(cf.file)
	if err != nil {
		return err
	}
	spec, err := shard.ParseCampaign(data)
	if err != nil {
		return err
	}
	if cf.shards > 0 {
		spec.Shards = cf.shards
	}
	camp, err := spec.Compile()
	if err != nil {
		return err
	}

	modes := 0
	for _, on := range []bool{cf.shardIdx >= 0, cf.merge, cf.reference} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("campaign mode needs exactly one of -shard, -merge or -reference")
	}

	switch {
	case cf.reference:
		rep, err := shard.Reference(camp, cf.parallel)
		if err != nil {
			return err
		}
		return emitReport(rep, cf.report, stdout)

	case cf.merge:
		st, err := openStore(cf, camp, stdout)
		if err != nil {
			return err
		}
		rep, err := shard.MergeStore(camp, st)
		if err != nil {
			return err
		}
		return emitReport(rep, cf.report, stdout)

	default:
		st, err := openStore(cf, camp, stdout)
		if err != nil {
			return err
		}
		r := &shard.Runner{
			Campaign:        camp,
			Store:           st,
			Workers:         cf.parallel,
			CheckpointEvery: cf.ckptEvery,
			MaxUnits:        cf.maxUnits,
			Progress: func(done, total int64) {
				fmt.Fprintf(stdout, "shard %d/%d: %d/%d units\n", cf.shardIdx, camp.Plan.Shards, done, total)
			},
		}
		agg, complete, err := r.RunShard(cf.shardIdx)
		if err != nil {
			return err
		}
		if !complete {
			fmt.Fprintf(stdout, "shard %d/%d: stopped at %d units (budget spent); re-run to resume\n",
				cf.shardIdx, camp.Plan.Shards, agg.N)
			return nil
		}
		fmt.Fprintf(stdout, "shard %d/%d: complete (%d units, campaign %.12s)\n",
			cf.shardIdx, camp.Plan.Shards, agg.N, camp.Digest())
		return nil
	}
}

func openStore(cf campaignFlags, camp *shard.Campaign, stdout io.Writer) (*shard.Store, error) {
	if cf.ckptDir == "" {
		return nil, fmt.Errorf("-checkpoint is required with -shard/-merge")
	}
	// Quarantines are loud: an operator watching a worker's output sees
	// exactly which checkpoint generation was set aside and why, instead of
	// silently re-simulating the lost chunk.
	return shard.OpenWith(cf.ckptDir, camp.Manifest(), shard.StoreOptions{
		OnQuarantine: func(path, reason string) {
			fmt.Fprintf(stdout, "checkpoint quarantined: %s (%s)\n", path, reason)
		},
	})
}

// emitReport writes the canonical report bytes to dest ("-" = stdout).
func emitReport(rep shard.Report, dest string, stdout io.Writer) error {
	data, err := rep.Encode()
	if err != nil {
		return err
	}
	if dest == "-" || dest == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(dest, data, 0o644)
}
