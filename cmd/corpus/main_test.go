package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"creditbus/internal/scenario"
)

const smokeSpec = `{
  "name": "smoke",
  "credit": {"kind": "cba"},
  "run": "wcet",
  "workloads": [
    {"core": 0, "workload": "canrdr", "ops": 300}
  ],
  "seeds": {"list": [3, 4]}
}`

// corpusFixture writes a one-scenario corpus plus its golden snapshot and
// returns both directories.
func corpusFixture(t *testing.T) (corpusDir, goldenDir string) {
	t.Helper()
	base := t.TempDir()
	corpusDir = filepath.Join(base, "corpus")
	goldenDir = filepath.Join(base, "golden")
	for _, d := range []string{corpusDir, goldenDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(corpusDir, "smoke.json"), []byte(smokeSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Parse([]byte(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Results(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(results)
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir, "smoke.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return corpusDir, goldenDir
}

func TestVerifyPasses(t *testing.T) {
	corpusDir, goldenDir := corpusFixture(t)
	var out strings.Builder
	err := run([]string{"-dir", corpusDir, "-golden", goldenDir, "-verify", "-engines", "both", "-parallel", "1"}, &out)
	if err != nil {
		t.Fatalf("verify failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "golden ok") {
		t.Errorf("status missing:\n%s", out.String())
	}
}

func TestVerifyCatchesMismatch(t *testing.T) {
	corpusDir, goldenDir := corpusFixture(t)
	path := filepath.Join(goldenDir, "smoke.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"task_cycles": `, `"task_cycles": 1`, 1)
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err = run([]string{"-dir", corpusDir, "-golden", goldenDir, "-verify", "-parallel", "1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "failure") {
		t.Fatalf("tampered golden not caught: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "golden mismatch") {
		t.Errorf("mismatch status missing:\n%s", out.String())
	}
}

func TestVerifyCatchesMissingGolden(t *testing.T) {
	corpusDir, goldenDir := corpusFixture(t)
	if err := os.Remove(filepath.Join(goldenDir, "smoke.json")); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-dir", corpusDir, "-golden", goldenDir, "-verify", "-parallel", "1"}, &out)
	if err == nil {
		t.Fatalf("missing golden not caught:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "golden missing") {
		t.Errorf("missing status not reported:\n%s", out.String())
	}
}

func TestRunWithoutVerify(t *testing.T) {
	corpusDir, goldenDir := corpusFixture(t)
	var out strings.Builder
	if err := run([]string{"-dir", corpusDir, "-golden", goldenDir, "-parallel", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 scenarios, 2 simulations") {
		t.Errorf("summary missing:\n%s", out.String())
	}
}

// TestEngineOverrides: both single-engine overrides must verify against
// the goldens (the engines are bit-identical, so a per-cycle sweep proves
// the reference engine reproduces the pinned results too).
func TestEngineOverrides(t *testing.T) {
	corpusDir, goldenDir := corpusFixture(t)
	for _, engines := range []string{"spec", "fast", "per-cycle"} {
		var out strings.Builder
		err := run([]string{"-dir", corpusDir, "-golden", goldenDir, "-verify",
			"-engines", engines, "-parallel", "1"}, &out)
		if err != nil {
			t.Errorf("-engines %s: %v\n%s", engines, err, out.String())
		}
		if !strings.Contains(out.String(), "engines="+engines) {
			t.Errorf("-engines %s not reported:\n%s", engines, out.String())
		}
	}
}

func TestArgumentErrors(t *testing.T) {
	corpusDir, goldenDir := corpusFixture(t)
	var out strings.Builder
	if err := run([]string{"-engines", "warp"}, &out); err == nil {
		t.Error("bad -engines accepted")
	}
	if err := run([]string{"-dir", corpusDir, "-golden", goldenDir, "-run", "nomatch"}, &out); err == nil {
		t.Error("empty filter result accepted")
	}
	if err := run([]string{"positional"}, &out); err == nil {
		t.Error("positional args accepted")
	}
	if err := run([]string{"-dir", t.TempDir()}, &out); err == nil {
		t.Error("empty corpus dir accepted")
	}
}

// TestBundledCorpusVerifies runs the real committed corpus through the CLI
// as a local smoke (fast engine only, for speed); CI's dedicated corpus
// job runs the authoritative `cmd/corpus -verify -engines both` sweep.
func TestBundledCorpusVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("bundled corpus is a full sweep")
	}
	root := filepath.Join("..", "..")
	var out strings.Builder
	err := run([]string{
		"-dir", filepath.Join(root, "internal", "scenario", "testdata", "corpus"),
		"-golden", filepath.Join(root, "internal", "scenario", "testdata", "golden"),
		"-verify",
	}, &out)
	if err != nil {
		t.Fatalf("bundled corpus failed: %v\n%s", err, out.String())
	}
}
