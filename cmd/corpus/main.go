// Command corpus runs the declarative scenario corpus — every *.json spec
// under a directory — in parallel through the campaign engine, and
// optionally verifies each scenario's results byte for byte against its
// golden snapshot (the same files internal/scenario's TestCorpusGolden
// pins; regenerate them with `go test ./internal/scenario -update`).
//
// Usage:
//
//	corpus                   # run the bundled corpus, print a summary
//	corpus -verify           # additionally diff against golden snapshots
//	corpus -engines both     # run fast AND per-cycle, assert equality
//	corpus -run hcba         # only scenarios whose name contains "hcba"
//
// With -campaign the command switches to sharded-campaign mode over a
// campaign spec file (internal/shard): each invocation is a shard worker,
// the merge coordinator, or the single-process reference, and workers
// checkpoint into a shared store so a killed worker resumes from its last
// complete chunk:
//
//	corpus -campaign sweep.json -shards 4 -shard 2 -checkpoint ck/
//	corpus -campaign sweep.json -shards 4 -merge -checkpoint ck/ -report out.json
//	corpus -campaign sweep.json -reference -report ref.json
//
// The merged report is byte-identical for any shard count and any
// kill/resume history, and equal to the -reference output.
//
// Exit status is non-zero on any load, run, equivalence or verification
// failure, which is what makes it a CI gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"

	"creditbus/internal/campaign"
	"creditbus/internal/report"
	"creditbus/internal/scenario"
	"creditbus/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(1)
	}
}

// job is one (scenario, seed) simulation in the flattened corpus campaign.
type job struct {
	spec *scenario.Compiled
	seed uint64
	// perCycle selects the reference engine when the -engines flag
	// overrides the spec (engineOverride true).
	perCycle bool
	// engineOverride ignores the spec's own engine choice in favour of
	// perCycle; false honours the spec (-engines spec).
	engineOverride bool
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("corpus", flag.ContinueOnError)
	var (
		dir      = fs.String("dir", filepath.Join("internal", "scenario", "testdata", "corpus"), "scenario corpus directory")
		golden   = fs.String("golden", filepath.Join("internal", "scenario", "testdata", "golden"), "golden snapshot directory (-verify)")
		verify   = fs.Bool("verify", false, "diff results against the golden snapshots")
		engines  = fs.String("engines", "spec", "spec (each scenario's own engine), fast, per-cycle, or both (both asserts engine equality per seed)")
		filter   = fs.String("run", "", "only scenarios whose name contains this substring")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "simulations in flight across the whole corpus")
	)
	var cf campaignFlags
	registerCampaignFlags(fs, &cf)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if cf.file != "" {
		cf.parallel = *parallel
		return runCampaign(cf, stdout)
	}
	switch *engines {
	case "spec", "fast", "per-cycle", "both":
	default:
		return fmt.Errorf("-engines %q: need spec, fast, per-cycle or both", *engines)
	}

	specs, err := scenario.LoadDir(*dir)
	if err != nil {
		return err
	}
	compiled := make([]*scenario.Compiled, 0, len(specs))
	for _, s := range specs {
		if *filter != "" && !strings.Contains(s.Name, *filter) {
			continue
		}
		c, err := s.Compile()
		if err != nil {
			return err
		}
		compiled = append(compiled, c)
	}
	if len(compiled) == 0 {
		return fmt.Errorf("no scenarios match -run %q under %s", *filter, *dir)
	}

	// Flatten the corpus into one (scenario, seed, engine) job list so the
	// worker pool load-balances across scenarios of very different cost.
	var jobs []job
	for _, c := range compiled {
		for _, seed := range c.Seeds {
			switch *engines {
			case "spec":
				jobs = append(jobs, job{spec: c, seed: seed})
			case "fast":
				jobs = append(jobs, job{spec: c, seed: seed, engineOverride: true})
			case "per-cycle":
				jobs = append(jobs, job{spec: c, seed: seed, perCycle: true, engineOverride: true})
			case "both":
				jobs = append(jobs,
					job{spec: c, seed: seed, engineOverride: true},
					job{spec: c, seed: seed, perCycle: true, engineOverride: true})
			}
		}
	}
	results, err := campaign.Do(campaign.Options[struct{}]{Workers: *parallel},
		len(jobs), func(_ struct{}, i int) (sim.Result, error) {
			j := jobs[i]
			if j.engineOverride {
				return j.spec.RunSeedEngine(j.seed, j.perCycle)
			}
			return j.spec.RunSeed(j.seed)
		})
	if err != nil {
		return err
	}

	// Re-group the flat result vector per scenario (jobs preserve corpus
	// order) and check engine equality when both engines ran. Failures are
	// tallied through the shared scenario.Failures protocol, so this gate
	// and cmd/scenfuzz print and exit identically.
	perScenario := map[string][]sim.Result{}
	fails := scenario.NewFailures(stdout)
	for i, j := range jobs {
		if *engines == "both" && j.perCycle {
			fast := results[i-1] // the paired fast run precedes it
			if !reflect.DeepEqual(fast, results[i]) {
				fails.Failf("%s seed %d: fast engine diverges from per-cycle reference", j.spec.Spec.Name, j.seed)
			}
			continue
		}
		perScenario[j.spec.Spec.Name] = append(perScenario[j.spec.Spec.Name], results[i])
	}

	tbl := report.NewTable("Scenario corpus", "scenario", "seeds", "task cycles (per seed)", "status")
	for _, c := range compiled {
		name := c.Spec.Name
		rs := perScenario[name]
		status := "ok"
		if *verify {
			if err := verifySnapshot(c, rs, *golden); err != nil {
				status = err.Error()
				fails.Failf("%s: %s", name, status)
			} else {
				status = "golden ok"
			}
		}
		cycles := make([]string, len(rs))
		for i, r := range rs {
			cycles[i] = fmt.Sprint(r.TaskCycles)
		}
		tbl.AddRow(name, fmt.Sprint(len(c.Seeds)), strings.Join(cycles, " "), status)
	}
	if err := tbl.Fprint(stdout); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%d scenarios, %d simulations, engines=%s\n", len(compiled), len(jobs), *engines)
	return fails.Err()
}

// verifySnapshot diffs a scenario's results against its golden file.
func verifySnapshot(c *scenario.Compiled, results []sim.Result, goldenDir string) error {
	snap, err := c.Snapshot(results)
	if err != nil {
		return err
	}
	got, err := snap.Encode()
	if err != nil {
		return err
	}
	path := filepath.Join(goldenDir, c.Spec.Name+".json")
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("golden missing")
	}
	if string(got) != string(want) {
		return fmt.Errorf("golden mismatch")
	}
	return nil
}
