// Command cbad is the simulation-as-a-service daemon: a long-running
// HTTP/JSON server over the deterministic scenario/campaign stack. Clients
// POST declarative scenario specs (internal/scenario, DESIGN.md §7) to
// /v1/run and receive full per-seed results; identical submissions are
// served from a content-addressed result cache and never re-simulate, and
// concurrent identical submissions share a single execution (single-flight).
// A bounded admission queue refuses overload with 429 instead of letting
// latency grow without bound. DESIGN.md §11 documents the architecture.
//
// Sharded mega-campaigns run through the asynchronous job API: POST a
// campaign spec (internal/shard.CampaignSpec) to /v1/jobs and poll the
// returned id. Jobs execute chunk by chunk on the same worker pool,
// checkpoint after every chunk under -jobs-dir, and survive a daemon
// restart: on startup cbad rescans the job store and resumes every
// incomplete job from its last checkpoint. Errors on every endpoint are a
// typed JSON envelope {"code","message","detail"}. DESIGN.md §12
// documents the job API and the checkpoint format.
//
// Usage:
//
//	cbad -addr 127.0.0.1:8437 -workers 8 -queue 256 -cache-size 4096 \
//	     -jobs-dir cbad-jobs
//
// Endpoints:
//
//	POST   /v1/run       — submit a scenario spec, receive per-seed results
//	POST   /v1/jobs      — submit a campaign spec as an asynchronous job
//	GET    /v1/jobs      — list jobs
//	GET    /v1/jobs/{id} — job status, progress, partial aggregates, report
//	DELETE /v1/jobs/{id} — cancel a job and delete its checkpoints
//	GET    /v1/stats     — hits, misses, executions, queue depth, jobs
//	GET    /v1/healthz   — liveness
//
// cmd/cbaload is the matching load-generator client.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"creditbus/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cbad:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cbad", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8437", "listen address")
		workers   = fs.Int("workers", 0, "simulation workers (0 = one per CPU)")
		queue     = fs.Int("queue", service.DefaultQueue, "admission queue capacity (full queue => 429)")
		cacheSize = fs.Int("cache-size", service.DefaultCacheSize, "result cache capacity in (spec, seed) entries")
		jobsDir   = fs.String("jobs-dir", "cbad-jobs", "campaign job store directory (empty disables /v1/jobs)")
		jobEvery  = fs.Int64("job-checkpoint-every", 0, "job checkpoint interval in units (0 = default)")

		runTimeout   = fs.Duration("run-timeout", 60*time.Second, "server-side /v1/run deadline (0 disables)")
		chunkTimeout = fs.Duration("chunk-timeout", 10*time.Minute, "job chunk execution deadline (0 disables)")
		maxRuns      = fs.Int("max-runs", 0, "concurrent /v1/run handlers before shedding with 503 (0 = workers*4+queue)")

		readHeaderTimeout = fs.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout")
		readTimeout       = fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
		writeTimeout      = fs.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout (must exceed -run-timeout)")
		idleTimeout       = fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
		shutdownTimeout   = fs.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain deadline before abandoning connections")
	)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *runTimeout > 0 && *writeTimeout > 0 && *writeTimeout <= *runTimeout {
		return fmt.Errorf("-write-timeout %v must exceed -run-timeout %v, or the connection dies before the 504 is written", *writeTimeout, *runTimeout)
	}

	srv, err := service.New(service.Options{
		Workers: *workers, Queue: *queue, CacheSize: *cacheSize,
		JobsDir: *jobsDir, JobCheckpointEvery: *jobEvery,
		RunTimeout: *runTimeout, JobChunkTimeout: *chunkTimeout,
		MaxConcurrentRuns: *maxRuns,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	st := srv.Snapshot()
	fmt.Fprintf(stdout, "cbad: listening on %s (workers=%d queue=%d cache-size=%d run-timeout=%v)\n",
		ln.Addr(), st.Workers, st.QueueCapacity, st.CacheCapacity, *runTimeout)

	// Every connection phase is bounded: a slow (or hostile) client can no
	// longer hold a connection open indefinitely in any state.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		// Graceful: stop accepting, let in-flight requests finish within the
		// drain deadline, then abandon the stragglers rather than hang the
		// shutdown forever.
		shctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			fmt.Fprintf(stdout, "cbad: drain abandoned after %v (%v); closing remaining connections\n", *shutdownTimeout, err)
			_ = hs.Close()
		}
		srv.Close()
		fmt.Fprintln(stdout, "cbad: shut down")
		return nil
	case err := <-errc:
		srv.Close()
		return err
	}
}
