package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer: run writes from its own
// goroutine while the test polls.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(ctx, []string{"positional"}, &out); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run(ctx, []string{"-addr", "256.0.0.1:bad"}, &out); err == nil {
		t.Fatal("unlistenable address accepted")
	}
	// A write timeout at or below the run deadline would kill the
	// connection before the 504 envelope could be written.
	if err := run(ctx, []string{"-run-timeout", "30s", "-write-timeout", "30s"}, &out); err == nil {
		t.Fatal("write-timeout <= run-timeout accepted")
	}
	if err := run(ctx, []string{"-run-timeout", "2m", "-write-timeout", "1m"}, &out); err == nil {
		t.Fatal("write-timeout < run-timeout accepted")
	}
}

// TestRunServesAndShutsDown boots the daemon on an ephemeral port, submits
// a request end to end, and checks context cancellation shuts it down.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out) }()

	// The listen line carries the resolved address.
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s", out.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	spec := `{"name":"e2e","run":"wcet","workloads":[{"core":0,"workload":"matrix","ops":100}],"seeds":{"list":[3]}}`
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/run", addr), "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run request: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on context cancellation")
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Fatalf("no shutdown notice:\n%s", out.String())
	}
}
