package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/fit_golden.txt")

// fixedSamples renders a deterministic 100-sample file: a base execution
// time with a pseudo-random (but fully fixed) spread, so the Gumbel fit and
// the printed curve are the same on every platform.
func fixedSamples() string {
	var b strings.Builder
	b.WriteString("# synthetic execution times for the golden fit test\n")
	for i := 0; i < 100; i++ {
		v := 100_000 + (i*7919)%2048 + (i*104729)%509
		fmt.Fprintf(&b, "%d\n", v)
	}
	return b.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGoldenFitOutput(t *testing.T) {
	path := writeFile(t, "times.txt", fixedSamples())
	var out strings.Builder
	if err := run([]string{"-file", path, "-block", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fit_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (regenerate with -update): %v", err)
	}
	if out.String() != string(want) {
		t.Errorf("fit output diverged from golden:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

func TestBlockAutoSelection(t *testing.T) {
	// 100 samples with -block 0 auto-select block 5, i.e. 20 maxima.
	path := writeFile(t, "times.txt", fixedSamples())
	var out strings.Builder
	if err := run([]string{"-file", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "samples=100 block=5 maxima=20") {
		t.Errorf("auto block selection wrong:\n%s", out.String())
	}
}

func TestMalformedInput(t *testing.T) {
	path := writeFile(t, "bad.txt", "123\nnot-a-number\n456\n")
	var out strings.Builder
	err := run([]string{"-file", path}, &out)
	if err == nil {
		t.Fatal("malformed sample accepted")
	}
	if !strings.Contains(err.Error(), ":2:") {
		t.Errorf("error %q does not name line 2", err)
	}
}

func TestEmptyInput(t *testing.T) {
	path := writeFile(t, "empty.txt", "# only comments\n\n")
	var out strings.Builder
	if err := run([]string{"-file", path}, &out); err == nil {
		t.Fatal("empty sample file accepted")
	}
}

func TestNonFiniteInputRejected(t *testing.T) {
	path := writeFile(t, "inf.txt", "1000\n+Inf\n2000\n")
	var out strings.Builder
	if err := run([]string{"-file", path}, &out); err == nil {
		t.Fatal("non-finite sample accepted")
	}
}

func TestArgumentErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no source", nil, "need -file or -collect"},
		{"both sources", []string{"-file", "x", "-collect", "matrix"}, "not both"},
		{"positional", []string{"-file", "x", "extra"}, "unexpected arguments"},
		{"missing file", []string{"-file", "no/such/file.txt"}, "no/such/file.txt"},
		{"unknown credit", []string{"-collect", "matrix", "-credit", "tokens"}, "unknown credit variant"},
		{"unknown workload", []string{"-collect", "dhrystone"}, "dhrystone"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out strings.Builder
			err := run(c.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestCollectSmallCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement campaign")
	}
	var out strings.Builder
	if err := run([]string{"-collect", "hitter", "-runs", "40", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "samples=40") || !strings.Contains(got, "pWCET curve") {
		t.Errorf("collect output incomplete:\n%s", got)
	}
	// Same flags, same samples, same fit: the collection path is seeded.
	var again strings.Builder
	if err := run([]string{"-collect", "hitter", "-runs", "40", "-seed", "7"}, &again); err != nil {
		t.Fatal(err)
	}
	if got != again.String() {
		t.Error("collect campaign not reproducible for a fixed seed")
	}
}
