// Command mbptafit fits the MBPTA/EVT pipeline to execution-time samples
// and prints the pWCET curve with diagnostics. Samples come either from a
// file (one number per line, '#' comments allowed) or from a fresh
// maximum-contention measurement campaign on the simulator.
//
// Usage:
//
//	mbptafit -file times.txt -block 20
//	mbptafit -collect matrix -runs 300 -credit cba
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"creditbus"
	"creditbus/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mbptafit:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mbptafit", flag.ContinueOnError)
	var (
		file    = fs.String("file", "", "sample file (one execution time per line)")
		collect = fs.String("collect", "", "collect fresh samples for this workload instead")
		runs    = fs.Int("runs", 300, "runs for -collect")
		credit  = fs.String("credit", "off", "CBA variant for -collect: off, cba")
		block   = fs.Int("block", 0, "block-maxima size (0 = samples/20, clamped to [2,20])")
		seed    = fs.Uint64("seed", 20170327, "base seed for -collect")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	var samples []float64
	var err error
	switch {
	case *file != "" && *collect != "":
		return fmt.Errorf("use either -file or -collect, not both")
	case *file != "":
		samples, err = readSamples(*file)
	case *collect != "":
		samples, err = collectSamples(*collect, *credit, *runs, *seed)
	default:
		return fmt.Errorf("need -file or -collect; see -h")
	}
	if err != nil {
		return err
	}

	b := *block
	if b == 0 {
		b = len(samples) / 20
		if b < 2 {
			b = 2
		}
		if b > 20 {
			b = 20
		}
	}
	an, err := creditbus.AnalyzeWCET(samples, b)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "samples=%d block=%d maxima=%d\n", len(samples), b, len(an.Maxima))
	fmt.Fprintf(stdout, "gumbel fit: mu=%.1f sigma=%.1f\n", an.Fit.Mu, an.Fit.Sigma)
	fmt.Fprintf(stdout, "iid checks: lag1=%.4f (pass=%v)  ks=%.4f (pass=%v)\n",
		an.IID.Lag1, an.IID.Lag1Pass, an.IID.KS, an.IID.KSPass)
	if !an.IID.Pass() {
		fmt.Fprintln(stdout, "warning: samples fail the exchangeability diagnostics; the fit is not trustworthy")
	}
	t := report.NewTable("pWCET curve", "exceedance prob/run", "bound (cycles)")
	for _, pt := range an.Curve(12) {
		t.AddRow(fmt.Sprintf("%.0e", pt.Prob), fmt.Sprintf("%.0f", pt.WCET))
	}
	return t.Fprint(stdout)
}

func readSamples(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func collectSamples(name, credit string, runs int, seed uint64) ([]float64, error) {
	cfg := creditbus.DefaultConfig()
	switch credit {
	case "off":
	case "cba":
		cfg.Credit.Kind = creditbus.CreditCBA
	default:
		return nil, fmt.Errorf("unknown credit variant %q", credit)
	}
	prog, err := creditbus.BuildWorkload(name, 1)
	if err != nil {
		return nil, err
	}
	return creditbus.CollectMaxContention(cfg, prog, runs, seed)
}
