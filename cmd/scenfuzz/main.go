// Command scenfuzz drives machine-generated scenarios through the
// invariant-oracle layer of internal/scengen: a seeded deterministic
// generator draws valid scenario specs across the full configuration space
// (cores, policies, credit variants, platform overrides, workload mixes,
// run kinds, engines) and every run is checked against closed-form
// properties — engine differential equality, bus work conservation, Eq. 1
// credit bounds, metamorphic contention monotonicity — instead of golden
// snapshots. Where the curated corpus pins 25 hand-picked points, scenfuzz
// checks as many machine-picked ones as the budget allows.
//
// Usage:
//
//	scenfuzz -n 1000 -seed 1              # 1000 scenarios, deterministic
//	scenfuzz -n 500 -workers 4            # CI smoke
//	scenfuzz -n 100 -minimize -out repros # shrink failures to repro specs
//	scenfuzz -n 10000 -shards 4 -shard 2  # worker 2 of a 4-way fleet
//
// With -shards K the scenario index space is range-partitioned by the same
// deterministic plan as sharded campaigns (internal/shard): worker i checks
// exactly [n·i/K, n·(i+1)/K), so a K-process fleet covers every index once
// and the union of the fleet's findings equals a single -n run's.
//
// Output is byte-reproducible for a fixed -n/-seed at any worker count:
// generation is serial, checking fans out over the campaign pool with
// results collected in order. Exit status is non-zero when any violation
// is found (shared Failures protocol with cmd/corpus -verify); with
// -minimize, each failing scenario is also shrunk to a minimal spec that
// still fails and written under -out as a directly loadable repro file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"creditbus/internal/campaign"
	"creditbus/internal/scenario"
	"creditbus/internal/scengen"
	"creditbus/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenfuzz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("scenfuzz", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 1000, "number of generated scenarios")
		seed     = fs.Uint64("seed", 1, "generator seed (fixed seed = byte-identical campaign)")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "scenario checks in flight")
		minimize = fs.Bool("minimize", false, "shrink each failing scenario and write a repro spec under -out")
		outDir   = fs.String("out", "scenfuzz-repros", "directory for minimized repro specs (-minimize)")
		inject   = fs.String("inject", "", "inject a synthetic violation into scenarios whose name contains this substring (exercises the failure and minimization paths)")
		shards   = fs.Int("shards", 1, "total fleet size: partition the scenario index space this many ways")
		shardIdx = fs.Int("shard", 0, "this worker's shard index in [0, shards)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *n < 1 {
		return fmt.Errorf("-n %d: need at least one scenario", *n)
	}
	plan, err := shard.NewPlan(int64(*n), *shards)
	if err != nil {
		return err
	}
	lo, hi, err := plan.Range(*shardIdx)
	if err != nil {
		return err
	}

	// Generation is serial and cheap; the simulations dominate. The full
	// prefix is always generated so index i draws identical spec bytes in
	// every fleet member — only [lo, hi) is checked here. Names embed the
	// generator seed and index, so a repro file names its origin.
	src := scengen.NewSource(*seed)
	all := make([]scenario.Spec, *n)
	for i := range all {
		all[i] = scengen.Generate(src, fmt.Sprintf("fuzz-s%d-%06d", *seed, i))
	}
	specs := all[lo:hi]

	check := func(sp scenario.Spec) []scengen.Violation {
		vs, err := scengen.Check(sp)
		if err != nil {
			vs = append(vs, scengen.Violation{Oracle: "compile", Detail: err.Error()})
		}
		if *inject != "" && strings.Contains(sp.Name, *inject) {
			vs = append(vs, scengen.Violation{Oracle: "injected", Detail: "synthetic failure (-inject)"})
		}
		return vs
	}

	results, err := campaign.Do(campaign.Options[struct{}]{Workers: *workers},
		len(specs), func(_ struct{}, i int) ([]scengen.Violation, error) {
			return check(specs[i]), nil
		})
	if err != nil {
		return err
	}

	fails := scenario.NewFailures(stdout)
	var failing []int
	seeds := 0
	for i, vs := range results {
		seeds += len(specs[i].Seeds.Expand())
		if len(vs) > 0 {
			failing = append(failing, i)
		}
		for _, v := range vs {
			fails.Failf("%s %s", specs[i].Name, v)
		}
	}

	if *minimize && len(failing) > 0 {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for _, i := range failing {
			minimal := scengen.Minimize(specs[i], func(sp scenario.Spec) bool {
				return len(check(sp)) > 0
			}, scengen.DefaultMinimizeBudget)
			data, err := minimal.Encode()
			if err != nil {
				return err
			}
			path := filepath.Join(*outDir, minimal.Name+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "repro %s\n", path)
		}
	}

	if *shards > 1 {
		fmt.Fprintf(stdout, "shard %d/%d: indices [%d,%d) of %d\n", *shardIdx, *shards, lo, hi, *n)
	}
	fmt.Fprintf(stdout, "%d scenarios, %d seeds, %d violation(s), generator seed %d\n",
		len(specs), seeds, fails.Count(), *seed)
	return fails.Err()
}
