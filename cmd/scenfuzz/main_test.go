package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"creditbus/internal/scenario"
)

func TestCleanCampaign(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "30", "-seed", "1", "-workers", "2"}, &out); err != nil {
		t.Fatalf("clean campaign failed: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "30 scenarios") || !strings.Contains(got, "0 violation(s)") {
		t.Errorf("summary missing:\n%s", got)
	}
	if strings.Contains(got, "FAIL") {
		t.Errorf("clean campaign printed failures:\n%s", got)
	}
}

func TestByteReproducibleAcrossWorkerCounts(t *testing.T) {
	var serial, parallel strings.Builder
	if err := run([]string{"-n", "25", "-seed", "9", "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "25", "-seed", "9", "-workers", "4"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("output depends on worker count:\nserial:\n%s\nparallel:\n%s",
			serial.String(), parallel.String())
	}
	var again strings.Builder
	if err := run([]string{"-n", "25", "-seed", "9", "-workers", "4"}, &again); err != nil {
		t.Fatal(err)
	}
	if parallel.String() != again.String() {
		t.Error("equal invocations produced different output")
	}
}

func TestInjectedFailureMinimizesToLoadableRepro(t *testing.T) {
	out := t.TempDir()
	var buf strings.Builder
	err := run([]string{"-n", "8", "-seed", "4", "-workers", "2",
		"-inject", "000003", "-minimize", "-out", out}, &buf)
	if err == nil || !strings.Contains(err.Error(), "failure") {
		t.Fatalf("injected failure not reported: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "oracle=injected") {
		t.Errorf("injected violation not printed:\n%s", buf.String())
	}

	repro := filepath.Join(out, "fuzz-s4-000003.json")
	data, err := os.ReadFile(repro)
	if err != nil {
		t.Fatalf("repro spec not written: %v\n%s", err, buf.String())
	}
	sp, err := scenario.Parse(data)
	if err != nil {
		t.Fatalf("repro spec does not load: %v", err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("repro spec invalid: %v", err)
	}
	if _, err := sp.Compile(); err != nil {
		t.Fatalf("repro spec does not compile: %v", err)
	}
	// The injected predicate depends only on the name, so the minimizer
	// must have shrunk everything else to the floor.
	if len(sp.Workloads) != 1 || len(sp.Seeds.Expand()) != 1 || sp.Platform != nil {
		enc, _ := sp.Encode()
		t.Errorf("repro not minimal:\n%s", enc)
	}
}

func TestArgumentErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Error("-n 0 accepted")
	}
	if err := run([]string{"positional"}, &out); err == nil {
		t.Error("positional args accepted")
	}
}

// TestShardedFleetCoversEveryIndex: a -shards K fleet checks exactly the
// indices a single run checks — each worker its contiguous range, the
// union tiling [0, n) — and shard membership does not perturb generation
// (index i draws identical spec bytes in every fleet member).
func TestShardedFleetCoversEveryIndex(t *testing.T) {
	const n = 41
	var covered int
	for i := 0; i < 4; i++ {
		var out strings.Builder
		if err := run([]string{"-n", "41", "-seed", "7", "-workers", "2",
			"-shards", "4", "-shard", fmt.Sprint(i)}, &out); err != nil {
			t.Fatalf("shard %d: %v\n%s", i, err, out.String())
		}
		got := out.String()
		if !strings.Contains(got, fmt.Sprintf("shard %d/4", i)) {
			t.Errorf("shard %d: missing shard banner:\n%s", i, got)
		}
		var scen int
		if _, err := fmt.Sscanf(got[strings.Index(got, ") of ")+len(") of "):], "%d", &scen); err != nil {
			t.Fatalf("shard %d: cannot parse banner:\n%s", i, got)
		}
		if scen != n {
			t.Errorf("shard %d: banner reports %d total indices, want %d", i, scen, n)
		}
		var lo, hi int
		if _, err := fmt.Sscanf(got[strings.Index(got, "indices ["):], "indices [%d,%d)", &lo, &hi); err != nil {
			t.Fatalf("shard %d: cannot parse range:\n%s", i, got)
		}
		covered += hi - lo
	}
	if covered != n {
		t.Errorf("fleet covers %d of %d indices", covered, n)
	}
	// Out-of-range shard index is an argument error.
	var out strings.Builder
	if err := run([]string{"-n", "10", "-shards", "2", "-shard", "2"}, &out); err == nil {
		t.Error("-shard 2 of 2 must fail")
	}
}
