package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stubReport builds a Report with the given fast-engine speedups.
func stubReport(step, collect float64) Report {
	var r Report
	r.MachineStep.Speedup = step
	r.CollectMaxContention.Speedup = collect
	return r
}

// stubMeasure replaces the minute-long benchmark suite for gate-logic
// tests and restores it on cleanup.
func stubMeasure(t *testing.T, rep Report) {
	t.Helper()
	orig := measureAll
	measureAll = func(runs int, log io.Writer) (Report, error) { return rep, nil }
	t.Cleanup(func() { measureAll = orig })
}

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodBaseline = `{
  "go_version": "go1.24.0", "goos": "linux", "goarch": "amd64", "cpus": 4,
  "machine_step": {
    "per_cycle": {"ns_per_op": 100, "sim_cycles_per_op": 1, "sim_cycles_per_sec": 1e7},
    "fast": {"ns_per_op": 20, "sim_cycles_per_op": 1, "sim_cycles_per_sec": 5e7},
    "speedup": 5.0
  },
  "collect_max_contention": {
    "workload": "canrdr", "runs": 16,
    "per_cycle": {"ns_per_op": 100, "sim_cycles_per_op": 1, "sim_cycles_per_sec": 1e7},
    "fast": {"ns_per_op": 20, "sim_cycles_per_op": 1, "sim_cycles_per_sec": 5e7},
    "speedup": 5.0
  }
}`

func TestCheckPassesAtBaseline(t *testing.T) {
	stubMeasure(t, stubReport(5.0, 5.0))
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	if err := run([]string{"-check", "-baseline", path}, &out, &errb); err != nil {
		t.Fatalf("gate failed at baseline speed: %v", err)
	}
	if strings.Count(out.String(), " ok") != 2 {
		t.Errorf("expected two ok gates:\n%s", out.String())
	}
}

func TestCheckPassesAboveFloor(t *testing.T) {
	// 0.9× of baseline is above the default 0.85 floor.
	stubMeasure(t, stubReport(4.5, 4.5))
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	if err := run([]string{"-check", "-baseline", path}, &out, &errb); err != nil {
		t.Fatalf("gate failed above the floor: %v", err)
	}
}

func TestCheckFailsBelowFloor(t *testing.T) {
	// 0.8× of baseline is below the default 0.85 floor.
	stubMeasure(t, stubReport(4.0, 5.0))
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	err := run([]string{"-check", "-baseline", path}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "below 0.85x") {
		t.Fatalf("regression not caught: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regression row missing:\n%s", out.String())
	}
	// A tighter threshold catches the second gate too (4.9 < 5.0×1.0,
	// where it passed the 0.85 floor above).
	stubMeasure(t, stubReport(4.0, 4.9))
	err = run([]string{"-check", "-baseline", path, "-threshold", "1.0"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "2 speedup gate(s)") {
		t.Fatalf("threshold 1.0 should fail both gates: %v", err)
	}
}

func TestCheckRejectsBadBaselines(t *testing.T) {
	stubMeasure(t, stubReport(5.0, 5.0))
	cases := []struct {
		name    string
		content string
		want    string
	}{
		{"malformed json", `{"machine_step": `, "malformed"},
		{"unknown field", `{"surprise": 1}`, "malformed"},
		{"zero speedups", `{"machine_step": {"speedup": 0}, "collect_max_contention": {"speedup": 0}}`, "non-positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := writeBaseline(t, c.content)
			var out, errb strings.Builder
			err := run([]string{"-check", "-baseline", path}, &out, &errb)
			if err == nil {
				t.Fatal("bad baseline accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}

	t.Run("missing file", func(t *testing.T) {
		var out, errb strings.Builder
		err := run([]string{"-check", "-baseline", filepath.Join(t.TempDir(), "absent.json")}, &out, &errb)
		if err == nil || !strings.Contains(err.Error(), "regenerate deliberately") {
			t.Fatalf("missing baseline accepted: %v", err)
		}
	})
}

func TestCheckNeverWrites(t *testing.T) {
	// Even a failing check must not touch the baseline file — the
	// historical bug was silently regenerating it.
	stubMeasure(t, stubReport(1.0, 1.0))
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	if err := run([]string{"-check", "-baseline", path}, &out, &errb); err == nil {
		t.Fatal("gate should have failed")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != goodBaseline {
		t.Error("check mode modified the baseline file")
	}
}

func TestCheckThresholdRange(t *testing.T) {
	stubMeasure(t, stubReport(5.0, 5.0))
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	for _, thr := range []string{"0", "-1", "1.5"} {
		if err := run([]string{"-check", "-baseline", path, "-threshold", thr}, &out, &errb); err == nil {
			t.Errorf("threshold %s accepted", thr)
		}
	}
}

func TestWriteMode(t *testing.T) {
	stubMeasure(t, stubReport(5.0, 6.0))
	out := filepath.Join(t.TempDir(), "out.json")
	var stdout, errb strings.Builder
	if err := run([]string{"-out", out}, &stdout, &errb); err != nil {
		t.Fatal(err)
	}
	rep, err := loadBaseline(out)
	if err != nil {
		t.Fatalf("write mode produced an unloadable baseline: %v", err)
	}
	if rep.MachineStep.Speedup != 5.0 || rep.CollectMaxContention.Speedup != 6.0 {
		t.Errorf("round-trip mismatch: %+v", rep)
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Errorf("write confirmation missing:\n%s", stdout.String())
	}
}

func TestRejectsPositionalArgs(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"extra"}, &out, &errb); err == nil {
		t.Fatal("positional args accepted")
	}
}
