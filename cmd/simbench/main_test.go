package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stubReport builds a Report with the given fast-engine speedups and a
// healthy pooled-campaign profile matching stubBaseline.
func stubReport(step, collect float64) Report {
	var r Report
	r.SchemaVersion = SchemaVersion
	r.MachineStep.Speedup = step
	r.CollectMaxContention.Speedup = collect
	r.Allocations.FreshRun.AllocsPerOp = 1000
	r.Allocations.ReusedRun.AllocsPerOp = 10
	r.Allocations.AllocReduction = 0.99
	r.ParallelCampaign.Workers = 4
	r.ParallelCampaign.SerialRunsPerSec = 1000
	r.ParallelCampaign.ParallelRunsPerSec = 3000
	r.ParallelCampaign.Scaling = 3.0
	r.ParallelCampaign.AllocsPerRun = 12
	r.CoreScaling.Scenario = "canrdr max contention (WCET mode, CBA)"
	r.CoreScaling.Points = []CorePoint{
		{Cores: 64, NsPerOp: 100, SimCyclesPerOp: 1, SimCyclesPerS: 1e7},
		{Cores: 1024, NsPerOp: 600, SimCyclesPerOp: 1, SimCyclesPerS: 1e7 / 6},
	}
	r.CoreScaling.Degradation = 6.0
	return r
}

// stubMeasure replaces the minute-long benchmark suite for gate-logic
// tests and restores it on cleanup.
func stubMeasure(t *testing.T, rep Report) {
	t.Helper()
	orig := measureAll
	measureAll = func(runs int, log io.Writer) (Report, error) { return rep, nil }
	t.Cleanup(func() { measureAll = orig })
}

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodBaseline = `{
  "schema_version": 3,
  "go_version": "go1.24.0", "goos": "linux", "goarch": "amd64", "cpus": 4, "gomaxprocs": 4,
  "core_scaling": {
    "scenario": "canrdr max contention (WCET mode, CBA)",
    "points": [
      {"cores": 64, "ns_per_op": 100, "sim_cycles_per_op": 1, "sim_cycles_per_sec": 1e7},
      {"cores": 1024, "ns_per_op": 600, "sim_cycles_per_op": 1, "sim_cycles_per_sec": 1.667e6}
    ],
    "degradation_1024_vs_64": 6.0
  },
  "machine_step": {
    "per_cycle": {"ns_per_op": 100, "sim_cycles_per_op": 1, "sim_cycles_per_sec": 1e7},
    "fast": {"ns_per_op": 20, "sim_cycles_per_op": 1, "sim_cycles_per_sec": 5e7},
    "speedup": 5.0
  },
  "collect_max_contention": {
    "workload": "canrdr", "runs": 16, "workers": 1,
    "per_cycle": {"ns_per_op": 100, "sim_cycles_per_op": 1, "sim_cycles_per_sec": 1e7},
    "fast": {"ns_per_op": 20, "sim_cycles_per_op": 1, "sim_cycles_per_sec": 5e7},
    "speedup": 5.0
  },
  "allocations": {
    "workload": "canrdr",
    "fresh_machine_run": {"ns_per_op": 1e6, "bytes_per_op": 500000, "allocs_per_op": 1000},
    "reused_machine_run": {"ns_per_op": 9e5, "bytes_per_op": 2000, "allocs_per_op": 10},
    "alloc_reduction": 0.99
  },
  "parallel_campaign": {
    "workload": "canrdr", "runs": 16, "workers": 4,
    "serial_runs_per_sec": 1000, "parallel_runs_per_sec": 3000, "scaling": 3.0,
    "allocs_per_run": 12, "bytes_per_run": 2500
  }
}`

func TestCheckPassesAtBaseline(t *testing.T) {
	stubMeasure(t, stubReport(5.0, 5.0))
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	if err := run([]string{"-check", "-baseline", path}, &out, &errb); err != nil {
		t.Fatalf("gate failed at baseline speed: %v\n%s", err, out.String())
	}
	if strings.Count(out.String(), " ok") != 7 {
		t.Errorf("expected seven ok gates:\n%s", out.String())
	}
}

func TestCheckPassesAboveFloor(t *testing.T) {
	// 0.9× of baseline is above the default 0.85 floor.
	stubMeasure(t, stubReport(4.5, 4.5))
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	if err := run([]string{"-check", "-baseline", path}, &out, &errb); err != nil {
		t.Fatalf("gate failed above the floor: %v", err)
	}
}

func TestCheckFailsBelowFloor(t *testing.T) {
	// 0.8× of baseline is below the default 0.85 floor.
	stubMeasure(t, stubReport(4.0, 5.0))
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	err := run([]string{"-check", "-baseline", path}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "outside 0.85x") {
		t.Fatalf("regression not caught: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regression row missing:\n%s", out.String())
	}
	// A tighter threshold catches the second gate too (4.9 < 5.0×1.0,
	// where it passed the 0.85 floor above).
	stubMeasure(t, stubReport(4.0, 4.9))
	err = run([]string{"-check", "-baseline", path, "-threshold", "1.0"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "2 perf gate(s)") {
		t.Fatalf("threshold 1.0 should fail both speedup gates: %v", err)
	}
}

func TestCheckFailsOnAllocRegression(t *testing.T) {
	// Allocations regress by GROWING: 10 → 50 allocs/op on the pooled path
	// busts the 10/0.85 ≈ 11.8 limit even though every speedup is fine.
	rep := stubReport(5.0, 5.0)
	rep.Allocations.ReusedRun.AllocsPerOp = 50
	stubMeasure(t, rep)
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	err := run([]string{"-check", "-baseline", path}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "1 perf gate(s)") {
		t.Fatalf("allocation regression not caught: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "reused-run allocs/op") || !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("allocation gate row missing:\n%s", out.String())
	}
}

func TestCheckFailsOnDegradationRegression(t *testing.T) {
	// Core-count degradation regresses by GROWING: 6 → 7.5 busts the
	// baseline-relative limit of 6/0.85 ≈ 7.06 while staying under the
	// absolute 16× cap, so exactly one gate fires.
	rep := stubReport(5.0, 5.0)
	rep.CoreScaling.Degradation = 7.5
	stubMeasure(t, rep)
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	err := run([]string{"-check", "-baseline", path}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "1 perf gate(s)") {
		t.Fatalf("degradation regression not caught: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1024v64-core degradation") || !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("degradation gate row missing:\n%s", out.String())
	}
}

func TestCheckFailsAbsoluteDegradationCap(t *testing.T) {
	// Even a baseline that already records a >16× cliff must not
	// grandfather it: the absolute cap fires on the measured value alone.
	bad := strings.Replace(goodBaseline, `"degradation_1024_vs_64": 6.0`, `"degradation_1024_vs_64": 20.0`, 1)
	rep := stubReport(5.0, 5.0)
	rep.CoreScaling.Degradation = 18.0 // within baseline's 20/0.85, over the cap
	stubMeasure(t, rep)
	path := writeBaseline(t, bad)
	var out, errb strings.Builder
	err := run([]string{"-check", "-baseline", path}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "1 perf gate(s)") {
		t.Fatalf("absolute degradation cap not enforced: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "core degradation (absolute)") {
		t.Errorf("absolute cap row missing:\n%s", out.String())
	}
}

func TestCheckFailsOnScalingRegression(t *testing.T) {
	rep := stubReport(5.0, 5.0)
	rep.ParallelCampaign.Scaling = 1.1 // worker pool collapsed to serial speed
	stubMeasure(t, rep)
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	err := run([]string{"-check", "-baseline", path}, &out, &errb)
	if err == nil || !strings.Contains(out.String(), "parallel campaign scaling") {
		t.Fatalf("scaling regression not caught: %v\n%s", err, out.String())
	}
}

func TestCheckSkipsScalingAcrossWorkerCounts(t *testing.T) {
	// Baseline measured at 4 workers, this machine at 2: absolute scaling
	// is incomparable, the gate must skip with a notice instead of failing.
	rep := stubReport(5.0, 5.0)
	rep.ParallelCampaign.Workers = 2
	rep.ParallelCampaign.Scaling = 1.5
	stubMeasure(t, rep)
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	if err := run([]string{"-check", "-baseline", path}, &out, &errb); err != nil {
		t.Fatalf("worker-count mismatch must skip, not fail: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "scaling gate skipped") {
		t.Errorf("skip notice missing:\n%s", out.String())
	}
}

func TestCheckRejectsBadBaselines(t *testing.T) {
	stubMeasure(t, stubReport(5.0, 5.0))
	cases := []struct {
		name    string
		content string
		want    string
	}{
		{"malformed json", `{"machine_step": `, "malformed"},
		{"unknown field", `{"surprise": 1}`, "malformed"},
		{"missing schema version", `{"machine_step": {"speedup": 5}, "collect_max_contention": {"speedup": 5}}`, "schema version 0"},
		{"old schema version", `{"schema_version": 2}`, "schema version 2"},
		{"zero speedups", `{"schema_version": 3, "machine_step": {"speedup": 0}, "collect_max_contention": {"speedup": 0}}`, "non-positive"},
		{"zero degradation", `{"schema_version": 3, "machine_step": {"speedup": 5}, "collect_max_contention": {"speedup": 5}}`, "non-positive core-scaling degradation"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := writeBaseline(t, c.content)
			var out, errb strings.Builder
			err := run([]string{"-check", "-baseline", path}, &out, &errb)
			if err == nil {
				t.Fatal("bad baseline accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}

	t.Run("missing file", func(t *testing.T) {
		var out, errb strings.Builder
		err := run([]string{"-check", "-baseline", filepath.Join(t.TempDir(), "absent.json")}, &out, &errb)
		if err == nil || !strings.Contains(err.Error(), "regenerate deliberately") {
			t.Fatalf("missing baseline accepted: %v", err)
		}
	})
}

func TestCheckNeverWrites(t *testing.T) {
	// Even a failing check must not touch the baseline file — the
	// historical bug was silently regenerating it.
	stubMeasure(t, stubReport(1.0, 1.0))
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	if err := run([]string{"-check", "-baseline", path}, &out, &errb); err == nil {
		t.Fatal("gate should have failed")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != goodBaseline {
		t.Error("check mode modified the baseline file")
	}
}

func TestCheckThresholdRange(t *testing.T) {
	stubMeasure(t, stubReport(5.0, 5.0))
	path := writeBaseline(t, goodBaseline)
	var out, errb strings.Builder
	for _, thr := range []string{"0", "-1", "1.5"} {
		if err := run([]string{"-check", "-baseline", path, "-threshold", thr}, &out, &errb); err == nil {
			t.Errorf("threshold %s accepted", thr)
		}
	}
}

func TestWriteMode(t *testing.T) {
	stubMeasure(t, stubReport(5.0, 6.0))
	out := filepath.Join(t.TempDir(), "out.json")
	var stdout, errb strings.Builder
	if err := run([]string{"-out", out}, &stdout, &errb); err != nil {
		t.Fatal(err)
	}
	rep, err := loadBaseline(out)
	if err != nil {
		t.Fatalf("write mode produced an unloadable baseline: %v", err)
	}
	if rep.MachineStep.Speedup != 5.0 || rep.CollectMaxContention.Speedup != 6.0 {
		t.Errorf("round-trip mismatch: %+v", rep)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Errorf("written schema version %d, want %d", rep.SchemaVersion, SchemaVersion)
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Errorf("write confirmation missing:\n%s", stdout.String())
	}
}

func TestProfileFlags(t *testing.T) {
	stubMeasure(t, stubReport(5.0, 5.0))
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var stdout, errb strings.Builder
	if err := run([]string{"-out", filepath.Join(dir, "o.json"), "-cpuprofile", cpu, "-memprofile", mem}, &stdout, &errb); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRejectsPositionalArgs(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"extra"}, &out, &errb); err == nil {
		t.Fatal("positional args accepted")
	}
}
