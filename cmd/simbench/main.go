// Command simbench measures the simulator's hot paths — the per-cycle
// reference engine vs the event-horizon stepping engine, single-run and at
// the measurement-campaign level — and writes the results to BENCH_sim.json.
// The file is committed so the performance trajectory is tracked across PRs;
// regenerate it on a quiet machine with
//
//	go run ./cmd/simbench
//
// The scenario is the paper's measurement protocol: canrdr under maximum
// contention (WCET-estimation mode, Table I injectors) with homogeneous CBA
// in front of random-permutations arbitration, campaign workers pinned to 1
// so the numbers isolate the stepping engine from PR 1's worker pool.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"creditbus"
	"creditbus/internal/sim"
)

// Engine is one stepping engine's cost in a benchmark scenario.
type Engine struct {
	NsPerOp        float64 `json:"ns_per_op"`
	SimCyclesPerOp float64 `json:"sim_cycles_per_op"`
	SimCyclesPerS  float64 `json:"sim_cycles_per_sec"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	// MachineStep drives one never-finishing max-contention machine:
	// ns_per_op is the cost of one Tick (per-cycle) or one Step (fast);
	// sim_cycles_per_sec is the headline throughput.
	MachineStep struct {
		PerCycle Engine  `json:"per_cycle"`
		Fast     Engine  `json:"fast"`
		Speedup  float64 `json:"speedup"`
	} `json:"machine_step"`

	// CollectMaxContention is the §III.B measurement campaign (canrdr, CBA,
	// workers=1): ns_per_op is the cost of one full run.
	CollectMaxContention struct {
		Workload string  `json:"workload"`
		Runs     int     `json:"runs"`
		PerCycle Engine  `json:"per_cycle"`
		Fast     Engine  `json:"fast"`
		Speedup  float64 `json:"speedup"`
	} `json:"collect_max_contention"`
}

func benchMachine() *sim.Machine {
	m, err := sim.NewEngineBenchMachine()
	if err != nil {
		fatal(err)
	}
	return m
}

func measureStep(fast bool) Engine {
	var cycles int64
	r := testing.Benchmark(func(b *testing.B) {
		m := benchMachine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fast {
				m.Step()
			} else {
				m.Tick()
			}
		}
		cycles = m.Cycle()
	})
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	perOp := float64(cycles) / float64(r.N)
	return Engine{
		NsPerOp:        ns,
		SimCyclesPerOp: perOp,
		SimCyclesPerS:  perOp / ns * 1e9,
	}
}

func measureCollect(runs int, perCycle bool) Engine {
	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA
	cfg.ForcePerCycle = perCycle
	prog, err := creditbus.BuildWorkload("canrdr", 1)
	if err != nil {
		fatal(err)
	}
	var simCycles float64
	r := testing.Benchmark(func(b *testing.B) {
		c := creditbus.Campaign{Workers: 1}
		simCycles = 0
		for i := 0; i < b.N; i++ {
			samples, err := c.CollectMaxContention(cfg, prog, runs, 1)
			if err != nil {
				fatal(err)
			}
			// Max-contention runs end when the TuA finishes, so the task's
			// execution time is the run's wall-cycle count.
			for _, s := range samples {
				simCycles += s
			}
		}
	})
	nsPerRun := float64(r.T.Nanoseconds()) / float64(r.N) / float64(runs)
	cyclesPerRun := simCycles / float64(r.N) / float64(runs)
	return Engine{
		NsPerOp:        nsPerRun,
		SimCyclesPerOp: cyclesPerRun,
		SimCyclesPerS:  cyclesPerRun / nsPerRun * 1e9,
	}
}

func main() {
	var (
		out  = flag.String("out", "BENCH_sim.json", "output file")
		runs = flag.Int("runs", 16, "campaign runs per CollectMaxContention iteration")
	)
	flag.Parse()

	var rep Report
	rep.GoVersion = runtime.Version()
	rep.GOOS = runtime.GOOS
	rep.GOARCH = runtime.GOARCH
	rep.CPUs = runtime.NumCPU()

	fmt.Fprintln(os.Stderr, "simbench: machine step (per-cycle)...")
	rep.MachineStep.PerCycle = measureStep(false)
	fmt.Fprintln(os.Stderr, "simbench: machine step (fast)...")
	rep.MachineStep.Fast = measureStep(true)
	rep.MachineStep.Speedup = rep.MachineStep.Fast.SimCyclesPerS / rep.MachineStep.PerCycle.SimCyclesPerS

	fmt.Fprintln(os.Stderr, "simbench: CollectMaxContention (per-cycle)...")
	rep.CollectMaxContention.Workload = "canrdr"
	rep.CollectMaxContention.Runs = *runs
	rep.CollectMaxContention.PerCycle = measureCollect(*runs, true)
	fmt.Fprintln(os.Stderr, "simbench: CollectMaxContention (fast)...")
	rep.CollectMaxContention.Fast = measureCollect(*runs, false)
	rep.CollectMaxContention.Speedup =
		rep.CollectMaxContention.PerCycle.NsPerOp / rep.CollectMaxContention.Fast.NsPerOp

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("machine step: %.1fx (%.0f vs %.0f sim-cycles/s)\n",
		rep.MachineStep.Speedup, rep.MachineStep.Fast.SimCyclesPerS, rep.MachineStep.PerCycle.SimCyclesPerS)
	fmt.Printf("CollectMaxContention: %.1fx (%.2fms vs %.2fms per run)\n",
		rep.CollectMaxContention.Speedup,
		rep.CollectMaxContention.Fast.NsPerOp/1e6, rep.CollectMaxContention.PerCycle.NsPerOp/1e6)
	fmt.Println("wrote", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simbench:", err)
	os.Exit(1)
}
