// Command simbench measures the simulator's hot paths — the per-cycle
// reference engine vs the event-horizon stepping engine, single-run and at
// the measurement-campaign level, the allocation profile and parallel
// throughput of the pooled campaign engine, and the fast engine's
// core-count scaling curve (cycles/sec at 4–1024 requestors) — and writes
// the results to BENCH_sim.json. The file is committed so the performance trajectory is
// tracked across PRs; regenerate it on a quiet machine with
//
//	go run ./cmd/simbench
//
// CI runs the regression gate instead:
//
//	go run ./cmd/simbench -check -baseline BENCH_sim.json
//
// which re-measures and fails (non-zero exit, nothing written) if the fast
// engine's speedups drop below -threshold (default 0.85×) of the recorded
// baseline, if the pooled campaign path's allocations per run grow beyond
// 1/threshold of the baseline, if the parallel campaign's scaling over
// serial falls below threshold × the baseline's (skipped with a notice
// when worker counts differ — absolute runs/sec are machine-dependent,
// scaling ratios are not), or if the 1024-vs-64-core throughput
// degradation grows beyond the baseline's ratio or the absolute 16× cap. A missing or malformed baseline, or one written
// by a different schema version, is an error, never a reason to rewrite.
//
// Profiling hooks for optimisation work: -cpuprofile / -memprofile write
// pprof profiles of the measurement suite.
//
// The scenario is the paper's measurement protocol: canrdr under maximum
// contention (WCET-estimation mode, Table I injectors) with homogeneous CBA
// in front of random-permutations arbitration. The engine comparison pins
// campaign workers to 1 so the numbers isolate the stepping engine from the
// worker pool; the parallel-campaign section measures the pool itself at
// GOMAXPROCS workers, and records both counts so the provenance of every
// number is in the file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"creditbus"
	"creditbus/internal/cpu"
	"creditbus/internal/sim"
)

// SchemaVersion identifies the BENCH_sim.json layout. Bump it whenever the
// Report struct changes shape so the gate fails with a clear
// regenerate-the-baseline message instead of comparing zero values.
const SchemaVersion = 3

// maxCoreDegradation is the absolute scale-out bar, independent of any
// baseline: stepping a 1024-core machine must keep more than 1/16 of the
// 64-core machine's sim-cycles/sec. The eligibility bitsets and flat
// per-core state exist to hold this; a linear-in-cores decision loop
// busts it immediately.
const maxCoreDegradation = 16.0

// scalingCores are the sample points on the core-scaling curve: the
// paper's evaluated platforms (4, 16) plus the scale-out targets.
var scalingCores = []int{4, 16, 64, 256, 1024}

// Engine is one stepping engine's cost in a benchmark scenario.
type Engine struct {
	NsPerOp        float64 `json:"ns_per_op"`
	SimCyclesPerOp float64 `json:"sim_cycles_per_op"`
	SimCyclesPerS  float64 `json:"sim_cycles_per_sec"`
}

// CorePoint is one core-count sample on the scaling curve.
type CorePoint struct {
	Cores          int     `json:"cores"`
	NsPerOp        float64 `json:"ns_per_op"`
	SimCyclesPerOp float64 `json:"sim_cycles_per_op"`
	SimCyclesPerS  float64 `json:"sim_cycles_per_sec"`
}

// Alloc is the allocation profile of one full simulation run.
type Alloc struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the BENCH_sim.json schema (version SchemaVersion).
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	// CPUs is the physical CPU count, GOMAXPROCS the scheduler's view —
	// the worker count DefaultWorkers derives from. Both are provenance:
	// a baseline measured at GOMAXPROCS 1 must not gate a 16-way box's
	// parallel scaling.
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// MachineStep drives one never-finishing max-contention machine:
	// ns_per_op is the cost of one Tick (per-cycle) or one Step (fast);
	// sim_cycles_per_sec is the headline throughput.
	MachineStep struct {
		PerCycle Engine  `json:"per_cycle"`
		Fast     Engine  `json:"fast"`
		Speedup  float64 `json:"speedup"`
	} `json:"machine_step"`

	// CoreScaling sweeps the fast engine's stepping cost across core
	// counts on the max-contention scenario. degradation_1024_vs_64 is
	// the 64-core sim-cycles/sec over the 1024-core rate — the number the
	// scale-out refactor is accountable for. It gates both relatively
	// (against the baseline's ratio) and absolutely (< 16×).
	CoreScaling struct {
		Scenario    string      `json:"scenario"`
		Points      []CorePoint `json:"points"`
		Degradation float64     `json:"degradation_1024_vs_64"`
	} `json:"core_scaling"`

	// CollectMaxContention is the §III.B measurement campaign (canrdr, CBA):
	// ns_per_op is the cost of one full run. Workers is pinned to 1 here so
	// the speedup isolates the stepping engine.
	CollectMaxContention struct {
		Workload string  `json:"workload"`
		Runs     int     `json:"runs"`
		Workers  int     `json:"workers"`
		PerCycle Engine  `json:"per_cycle"`
		Fast     Engine  `json:"fast"`
		Speedup  float64 `json:"speedup"`
	} `json:"collect_max_contention"`

	// Allocations profiles one steady-state campaign run: a fresh machine
	// per run (the pre-pooling protocol) vs a warm reused machine (the
	// pooled hot path). alloc_reduction is 1 − reused/fresh allocs.
	Allocations struct {
		Workload       string  `json:"workload"`
		FreshRun       Alloc   `json:"fresh_machine_run"`
		ReusedRun      Alloc   `json:"reused_machine_run"`
		AllocReduction float64 `json:"alloc_reduction"`
	} `json:"allocations"`

	// ParallelCampaign measures the pooled worker pool itself: a full
	// CollectMaxContention campaign at 1 worker and at GOMAXPROCS workers.
	// runs_per_sec are machine-dependent; scaling (parallel over serial
	// throughput) is the machine-portable number the gate compares.
	ParallelCampaign struct {
		Workload           string  `json:"workload"`
		Runs               int     `json:"runs"`
		Workers            int     `json:"workers"`
		SerialRunsPerSec   float64 `json:"serial_runs_per_sec"`
		ParallelRunsPerSec float64 `json:"parallel_runs_per_sec"`
		Scaling            float64 `json:"scaling"`
		AllocsPerRun       int64   `json:"allocs_per_run"`
		BytesPerRun        int64   `json:"bytes_per_run"`
	} `json:"parallel_campaign"`
}

func measureStep(fast bool) (Engine, error) {
	var cycles int64
	var buildErr error
	r := testing.Benchmark(func(b *testing.B) {
		m, err := sim.NewEngineBenchMachine()
		if err != nil {
			buildErr = err
			b.SkipNow()
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fast {
				m.Step()
			} else {
				m.Tick()
			}
		}
		cycles = m.Cycle()
	})
	if buildErr != nil {
		return Engine{}, buildErr
	}
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	perOp := float64(cycles) / float64(r.N)
	return Engine{
		NsPerOp:        ns,
		SimCyclesPerOp: perOp,
		SimCyclesPerS:  perOp / ns * 1e9,
	}, nil
}

// measureScaling times the fast engine's Step on the max-contention
// scenario widened to the given core count.
func measureScaling(cores int) (CorePoint, error) {
	var cycles int64
	var buildErr error
	r := testing.Benchmark(func(b *testing.B) {
		m, err := sim.NewScalingBenchMachine(cores)
		if err != nil {
			buildErr = err
			b.SkipNow()
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Step()
		}
		cycles = m.Cycle()
	})
	if buildErr != nil {
		return CorePoint{}, buildErr
	}
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	perOp := float64(cycles) / float64(r.N)
	return CorePoint{
		Cores:          cores,
		NsPerOp:        ns,
		SimCyclesPerOp: perOp,
		SimCyclesPerS:  perOp / ns * 1e9,
	}, nil
}

// scalePoint returns the recorded sample for the given core count, or a
// zero point when the sweep did not include it.
func scalePoint(rep Report, cores int) CorePoint {
	for _, p := range rep.CoreScaling.Points {
		if p.Cores == cores {
			return p
		}
	}
	return CorePoint{}
}

// benchConfig is the shared campaign scenario: canrdr under maximum
// contention with homogeneous CBA (the paper's measurement protocol).
func benchConfig(perCycle bool) (creditbus.Config, creditbus.Program, error) {
	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA
	cfg.ForcePerCycle = perCycle
	prog, err := creditbus.BuildWorkload("canrdr", 1)
	return cfg, prog, err
}

func measureCollect(runs int, perCycle bool) (Engine, error) {
	cfg, prog, err := benchConfig(perCycle)
	if err != nil {
		return Engine{}, err
	}
	var simCycles float64
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		c := creditbus.Campaign{Workers: 1}
		simCycles = 0
		for i := 0; i < b.N; i++ {
			samples, err := c.CollectMaxContention(cfg, prog, runs, 1)
			if err != nil {
				runErr = err
				b.SkipNow()
				return
			}
			// Max-contention runs end when the TuA finishes, so the task's
			// execution time is the run's wall-cycle count.
			for _, s := range samples {
				simCycles += s
			}
		}
	})
	if runErr != nil {
		return Engine{}, runErr
	}
	nsPerRun := float64(r.T.Nanoseconds()) / float64(r.N) / float64(runs)
	cyclesPerRun := simCycles / float64(r.N) / float64(runs)
	return Engine{
		NsPerOp:        nsPerRun,
		SimCyclesPerOp: cyclesPerRun,
		SimCyclesPerS:  cyclesPerRun / nsPerRun * 1e9,
	}, nil
}

// measureAlloc profiles one steady-state max-contention run. With reuse
// the runner (and its machine) persists across iterations — the pooled
// campaign hot path; without it every iteration builds a fresh machine.
func measureAlloc(reuse bool) (Alloc, error) {
	cfg, prog, err := benchConfig(false)
	if err != nil {
		return Alloc{}, err
	}
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		var rn sim.Runner
		if reuse {
			// Warm-up outside the measurement: the first run builds the
			// machine the steady state recycles.
			if _, err := rn.MaxContention(cfg, prog, 0); err != nil {
				runErr = err
				b.SkipNow()
				return
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, _ := cpu.TryClone(prog)
			var err error
			if reuse {
				_, err = rn.MaxContention(cfg, p, uint64(i))
			} else {
				_, err = sim.RunMaxContention(cfg, p, uint64(i))
			}
			if err != nil {
				runErr = err
				b.SkipNow()
				return
			}
		}
	})
	if runErr != nil {
		return Alloc{}, runErr
	}
	return Alloc{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}, nil
}

// measureCampaign times a full pooled CollectMaxContention campaign at the
// given worker count and returns runs/sec plus per-run allocation costs.
func measureCampaign(runs, workers int) (runsPerSec float64, allocsPerRun, bytesPerRun int64, err error) {
	cfg, prog, berr := benchConfig(false)
	if berr != nil {
		return 0, 0, 0, berr
	}
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		c := creditbus.Campaign{Workers: workers}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.CollectMaxContention(cfg, prog, runs, uint64(i)); err != nil {
				runErr = err
				b.SkipNow()
				return
			}
		}
	})
	if runErr != nil {
		return 0, 0, 0, runErr
	}
	nsPerCampaign := float64(r.T.Nanoseconds()) / float64(r.N)
	return float64(runs) / (nsPerCampaign / 1e9),
		r.AllocsPerOp() / int64(runs),
		r.AllocedBytesPerOp() / int64(runs),
		nil
}

// measureAll runs the full benchmark suite. Swappable so tests can exercise
// the gate logic without minutes of benchmarking.
var measureAll = func(runs int, log io.Writer) (Report, error) {
	var rep Report
	rep.SchemaVersion = SchemaVersion
	rep.GoVersion = runtime.Version()
	rep.GOOS = runtime.GOOS
	rep.GOARCH = runtime.GOARCH
	rep.CPUs = runtime.NumCPU()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)

	fmt.Fprintln(log, "simbench: machine step (per-cycle)...")
	var err error
	if rep.MachineStep.PerCycle, err = measureStep(false); err != nil {
		return Report{}, err
	}
	fmt.Fprintln(log, "simbench: machine step (fast)...")
	if rep.MachineStep.Fast, err = measureStep(true); err != nil {
		return Report{}, err
	}
	rep.MachineStep.Speedup = rep.MachineStep.Fast.SimCyclesPerS / rep.MachineStep.PerCycle.SimCyclesPerS

	rep.CoreScaling.Scenario = "canrdr max contention (WCET mode, CBA)"
	for _, n := range scalingCores {
		fmt.Fprintf(log, "simbench: core scaling (%d cores)...\n", n)
		p, err := measureScaling(n)
		if err != nil {
			return Report{}, err
		}
		rep.CoreScaling.Points = append(rep.CoreScaling.Points, p)
	}
	if p64, p1024 := scalePoint(rep, 64), scalePoint(rep, 1024); p1024.SimCyclesPerS > 0 {
		rep.CoreScaling.Degradation = p64.SimCyclesPerS / p1024.SimCyclesPerS
	}

	fmt.Fprintln(log, "simbench: CollectMaxContention (per-cycle)...")
	rep.CollectMaxContention.Workload = "canrdr"
	rep.CollectMaxContention.Runs = runs
	rep.CollectMaxContention.Workers = 1
	if rep.CollectMaxContention.PerCycle, err = measureCollect(runs, true); err != nil {
		return Report{}, err
	}
	fmt.Fprintln(log, "simbench: CollectMaxContention (fast)...")
	if rep.CollectMaxContention.Fast, err = measureCollect(runs, false); err != nil {
		return Report{}, err
	}
	rep.CollectMaxContention.Speedup =
		rep.CollectMaxContention.PerCycle.NsPerOp / rep.CollectMaxContention.Fast.NsPerOp

	fmt.Fprintln(log, "simbench: allocations (fresh machine per run)...")
	rep.Allocations.Workload = "canrdr"
	if rep.Allocations.FreshRun, err = measureAlloc(false); err != nil {
		return Report{}, err
	}
	fmt.Fprintln(log, "simbench: allocations (reused machine)...")
	if rep.Allocations.ReusedRun, err = measureAlloc(true); err != nil {
		return Report{}, err
	}
	if f := rep.Allocations.FreshRun.AllocsPerOp; f > 0 {
		rep.Allocations.AllocReduction = 1 - float64(rep.Allocations.ReusedRun.AllocsPerOp)/float64(f)
	}

	workers := runtime.GOMAXPROCS(0)
	fmt.Fprintf(log, "simbench: parallel campaign (1 vs %d workers)...\n", workers)
	rep.ParallelCampaign.Workload = "canrdr"
	rep.ParallelCampaign.Runs = runs
	rep.ParallelCampaign.Workers = workers
	serial, _, _, err := measureCampaign(runs, 1)
	if err != nil {
		return Report{}, err
	}
	parallel, allocs, bytesPer, err := measureCampaign(runs, workers)
	if err != nil {
		return Report{}, err
	}
	rep.ParallelCampaign.SerialRunsPerSec = serial
	rep.ParallelCampaign.ParallelRunsPerSec = parallel
	rep.ParallelCampaign.Scaling = parallel / serial
	rep.ParallelCampaign.AllocsPerRun = allocs
	rep.ParallelCampaign.BytesPerRun = bytesPer
	return rep, nil
}

// loadBaseline reads and strictly decodes a committed BENCH_sim.json. Any
// problem — missing file, syntax error, unknown field, schema version
// mismatch, non-positive speedups — is a hard error: the historical failure
// mode was silently regenerating the baseline, which turns the regression
// gate into a no-op.
func loadBaseline(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("baseline %s: %w (regenerate deliberately with `go run ./cmd/simbench`)", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("baseline %s is malformed: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return Report{}, fmt.Errorf(
			"baseline %s has schema version %d, this binary writes version %d: regenerate it deliberately with `go run ./cmd/simbench` (a version mismatch must never silently gate on zero values)",
			path, rep.SchemaVersion, SchemaVersion)
	}
	if rep.MachineStep.Speedup <= 0 || rep.CollectMaxContention.Speedup <= 0 {
		return Report{}, fmt.Errorf("baseline %s is malformed: non-positive speedups (%v, %v)",
			path, rep.MachineStep.Speedup, rep.CollectMaxContention.Speedup)
	}
	if rep.CoreScaling.Degradation <= 0 {
		return Report{}, fmt.Errorf("baseline %s is malformed: non-positive core-scaling degradation (%v)",
			path, rep.CoreScaling.Degradation)
	}
	return rep, nil
}

// checkAgainst gates the measured report on the baseline: the fast-engine
// speedups and the parallel scaling must stay at or above threshold × their
// recorded values, and the pooled path's allocations per run must not grow
// beyond baseline/threshold.
func checkAgainst(baseline, measured Report, threshold float64, stdout io.Writer) error {
	type gate struct {
		name      string
		base, cur float64
		// lower: the measurement regresses by dropping (speedups);
		// otherwise it regresses by growing (allocations).
		lower bool
		unit  string
	}
	gates := []gate{
		{"machine step speedup", baseline.MachineStep.Speedup, measured.MachineStep.Speedup, true, "x"},
		{"CollectMaxContention speedup", baseline.CollectMaxContention.Speedup, measured.CollectMaxContention.Speedup, true, "x"},
		{"reused-run allocs/op", float64(baseline.Allocations.ReusedRun.AllocsPerOp), float64(measured.Allocations.ReusedRun.AllocsPerOp), false, ""},
		{"campaign allocs/run", float64(baseline.ParallelCampaign.AllocsPerRun), float64(measured.ParallelCampaign.AllocsPerRun), false, ""},
		{"1024v64-core degradation", baseline.CoreScaling.Degradation, measured.CoreScaling.Degradation, false, "x"},
	}
	if baseline.ParallelCampaign.Workers == measured.ParallelCampaign.Workers &&
		baseline.ParallelCampaign.Workers > 1 {
		gates = append(gates, gate{"parallel campaign scaling", baseline.ParallelCampaign.Scaling, measured.ParallelCampaign.Scaling, true, "x"})
	} else {
		fmt.Fprintf(stdout, "parallel scaling gate skipped: baseline measured at %d worker(s), this machine runs %d — regenerate BENCH_sim.json on a multi-core host with matching GOMAXPROCS to arm it\n",
			baseline.ParallelCampaign.Workers, measured.ParallelCampaign.Workers)
	}
	failed := 0
	for _, g := range gates {
		var floor float64
		var bad bool
		if g.lower {
			floor = g.base * threshold
			bad = g.cur < floor
		} else {
			floor = g.base / threshold
			bad = g.cur > floor
		}
		status := "ok"
		if bad {
			status = "REGRESSION"
			failed++
		}
		fmt.Fprintf(stdout, "%-30s baseline %.2f%s  measured %.2f%s  limit %.2f%s  %s\n",
			g.name, g.base, g.unit, g.cur, g.unit, floor, g.unit, status)
	}
	// The scale-out bar is also absolute, not just relative to the
	// baseline: a baseline regenerated on a degraded build must not
	// grandfather a >16× cliff past the gate.
	absStatus := "ok"
	if measured.CoreScaling.Degradation >= maxCoreDegradation {
		absStatus = "REGRESSION"
		failed++
	}
	fmt.Fprintf(stdout, "%-30s cap %.2fx  measured %.2fx  %s\n",
		"core degradation (absolute)", maxCoreDegradation, measured.CoreScaling.Degradation, absStatus)
	if failed > 0 {
		return fmt.Errorf("%d perf gate(s) outside %.2fx of baseline", failed, threshold)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("simbench", flag.ContinueOnError)
	var (
		out        = fs.String("out", "BENCH_sim.json", "output file (write mode)")
		runs       = fs.Int("runs", 16, "campaign runs per CollectMaxContention iteration")
		check      = fs.Bool("check", false, "regression gate: compare against -baseline instead of writing")
		baseline   = fs.String("baseline", "BENCH_sim.json", "committed baseline to check against (-check)")
		threshold  = fs.Float64("threshold", 0.85, "minimum acceptable fraction of the baseline numbers (-check)")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the measurement suite")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile after the measurement suite")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	if *check && (*threshold <= 0 || *threshold > 1) {
		return fmt.Errorf("-threshold %v out of range (0, 1]", *threshold)
	}

	var base Report
	if *check {
		// Load the baseline before measuring: a broken baseline must fail
		// in milliseconds, not after a minute of benchmarking.
		var err error
		if base, err = loadBaseline(*baseline); err != nil {
			return err
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	measured, err := measureAll(*runs, stderr)
	if err != nil {
		return err
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *check {
		return checkAgainst(base, measured, *threshold, stdout)
	}

	data, err := json.MarshalIndent(measured, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "machine step: %.1fx (%.0f vs %.0f sim-cycles/s)\n",
		measured.MachineStep.Speedup, measured.MachineStep.Fast.SimCyclesPerS, measured.MachineStep.PerCycle.SimCyclesPerS)
	if p64, p1024 := scalePoint(measured, 64), scalePoint(measured, 1024); p1024.Cores != 0 {
		fmt.Fprintf(stdout, "core scaling: %.0f sim-cycles/s at 64 cores vs %.0f at 1024 (%.1fx degradation, cap %.0fx)\n",
			p64.SimCyclesPerS, p1024.SimCyclesPerS, measured.CoreScaling.Degradation, maxCoreDegradation)
	}
	fmt.Fprintf(stdout, "CollectMaxContention: %.1fx (%.2fms vs %.2fms per run)\n",
		measured.CollectMaxContention.Speedup,
		measured.CollectMaxContention.Fast.NsPerOp/1e6, measured.CollectMaxContention.PerCycle.NsPerOp/1e6)
	fmt.Fprintf(stdout, "allocations: %d allocs/run fresh vs %d reused (%.1f%% reduction)\n",
		measured.Allocations.FreshRun.AllocsPerOp, measured.Allocations.ReusedRun.AllocsPerOp,
		measured.Allocations.AllocReduction*100)
	fmt.Fprintf(stdout, "parallel campaign: %.0f runs/s at %d workers vs %.0f serial (%.2fx scaling)\n",
		measured.ParallelCampaign.ParallelRunsPerSec, measured.ParallelCampaign.Workers,
		measured.ParallelCampaign.SerialRunsPerSec, measured.ParallelCampaign.Scaling)
	fmt.Fprintln(stdout, "wrote", *out)
	return nil
}
