// Command simbench measures the simulator's hot paths — the per-cycle
// reference engine vs the event-horizon stepping engine, single-run and at
// the measurement-campaign level — and writes the results to BENCH_sim.json.
// The file is committed so the performance trajectory is tracked across PRs;
// regenerate it on a quiet machine with
//
//	go run ./cmd/simbench
//
// CI runs the regression gate instead:
//
//	go run ./cmd/simbench -check -baseline BENCH_sim.json
//
// which re-measures the engines and fails (non-zero exit, nothing written)
// if the fast engine's speedup drops below -threshold (default 0.85×) of
// the recorded baseline — or if the baseline file is missing or malformed,
// which is an error, never a reason to rewrite it.
//
// The scenario is the paper's measurement protocol: canrdr under maximum
// contention (WCET-estimation mode, Table I injectors) with homogeneous CBA
// in front of random-permutations arbitration, campaign workers pinned to 1
// so the numbers isolate the stepping engine from PR 1's worker pool.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"creditbus"
	"creditbus/internal/sim"
)

// Engine is one stepping engine's cost in a benchmark scenario.
type Engine struct {
	NsPerOp        float64 `json:"ns_per_op"`
	SimCyclesPerOp float64 `json:"sim_cycles_per_op"`
	SimCyclesPerS  float64 `json:"sim_cycles_per_sec"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	// MachineStep drives one never-finishing max-contention machine:
	// ns_per_op is the cost of one Tick (per-cycle) or one Step (fast);
	// sim_cycles_per_sec is the headline throughput.
	MachineStep struct {
		PerCycle Engine  `json:"per_cycle"`
		Fast     Engine  `json:"fast"`
		Speedup  float64 `json:"speedup"`
	} `json:"machine_step"`

	// CollectMaxContention is the §III.B measurement campaign (canrdr, CBA,
	// workers=1): ns_per_op is the cost of one full run.
	CollectMaxContention struct {
		Workload string  `json:"workload"`
		Runs     int     `json:"runs"`
		PerCycle Engine  `json:"per_cycle"`
		Fast     Engine  `json:"fast"`
		Speedup  float64 `json:"speedup"`
	} `json:"collect_max_contention"`
}

func measureStep(fast bool) (Engine, error) {
	var cycles int64
	var buildErr error
	r := testing.Benchmark(func(b *testing.B) {
		m, err := sim.NewEngineBenchMachine()
		if err != nil {
			buildErr = err
			b.SkipNow()
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fast {
				m.Step()
			} else {
				m.Tick()
			}
		}
		cycles = m.Cycle()
	})
	if buildErr != nil {
		return Engine{}, buildErr
	}
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	perOp := float64(cycles) / float64(r.N)
	return Engine{
		NsPerOp:        ns,
		SimCyclesPerOp: perOp,
		SimCyclesPerS:  perOp / ns * 1e9,
	}, nil
}

func measureCollect(runs int, perCycle bool) (Engine, error) {
	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA
	cfg.ForcePerCycle = perCycle
	prog, err := creditbus.BuildWorkload("canrdr", 1)
	if err != nil {
		return Engine{}, err
	}
	var simCycles float64
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		c := creditbus.Campaign{Workers: 1}
		simCycles = 0
		for i := 0; i < b.N; i++ {
			samples, err := c.CollectMaxContention(cfg, prog, runs, 1)
			if err != nil {
				runErr = err
				b.SkipNow()
				return
			}
			// Max-contention runs end when the TuA finishes, so the task's
			// execution time is the run's wall-cycle count.
			for _, s := range samples {
				simCycles += s
			}
		}
	})
	if runErr != nil {
		return Engine{}, runErr
	}
	nsPerRun := float64(r.T.Nanoseconds()) / float64(r.N) / float64(runs)
	cyclesPerRun := simCycles / float64(r.N) / float64(runs)
	return Engine{
		NsPerOp:        nsPerRun,
		SimCyclesPerOp: cyclesPerRun,
		SimCyclesPerS:  cyclesPerRun / nsPerRun * 1e9,
	}, nil
}

// measureAll runs the full benchmark suite. Swappable so tests can exercise
// the gate logic without minutes of benchmarking.
var measureAll = func(runs int, log io.Writer) (Report, error) {
	var rep Report
	rep.GoVersion = runtime.Version()
	rep.GOOS = runtime.GOOS
	rep.GOARCH = runtime.GOARCH
	rep.CPUs = runtime.NumCPU()

	fmt.Fprintln(log, "simbench: machine step (per-cycle)...")
	var err error
	if rep.MachineStep.PerCycle, err = measureStep(false); err != nil {
		return Report{}, err
	}
	fmt.Fprintln(log, "simbench: machine step (fast)...")
	if rep.MachineStep.Fast, err = measureStep(true); err != nil {
		return Report{}, err
	}
	rep.MachineStep.Speedup = rep.MachineStep.Fast.SimCyclesPerS / rep.MachineStep.PerCycle.SimCyclesPerS

	fmt.Fprintln(log, "simbench: CollectMaxContention (per-cycle)...")
	rep.CollectMaxContention.Workload = "canrdr"
	rep.CollectMaxContention.Runs = runs
	if rep.CollectMaxContention.PerCycle, err = measureCollect(runs, true); err != nil {
		return Report{}, err
	}
	fmt.Fprintln(log, "simbench: CollectMaxContention (fast)...")
	if rep.CollectMaxContention.Fast, err = measureCollect(runs, false); err != nil {
		return Report{}, err
	}
	rep.CollectMaxContention.Speedup =
		rep.CollectMaxContention.PerCycle.NsPerOp / rep.CollectMaxContention.Fast.NsPerOp
	return rep, nil
}

// loadBaseline reads and strictly decodes a committed BENCH_sim.json. Any
// problem — missing file, syntax error, unknown field, non-positive
// speedups — is a hard error: the historical failure mode was silently
// regenerating the baseline, which turns the regression gate into a no-op.
func loadBaseline(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("baseline %s: %w (regenerate deliberately with `go run ./cmd/simbench`)", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("baseline %s is malformed: %w", path, err)
	}
	if rep.MachineStep.Speedup <= 0 || rep.CollectMaxContention.Speedup <= 0 {
		return Report{}, fmt.Errorf("baseline %s is malformed: non-positive speedups (%v, %v)",
			path, rep.MachineStep.Speedup, rep.CollectMaxContention.Speedup)
	}
	return rep, nil
}

// checkAgainst gates the measured report on the baseline: both fast-engine
// speedups must stay at or above threshold × their recorded values.
func checkAgainst(baseline, measured Report, threshold float64, stdout io.Writer) error {
	type gate struct {
		name      string
		base, cur float64
	}
	gates := []gate{
		{"machine step speedup", baseline.MachineStep.Speedup, measured.MachineStep.Speedup},
		{"CollectMaxContention speedup", baseline.CollectMaxContention.Speedup, measured.CollectMaxContention.Speedup},
	}
	failed := 0
	for _, g := range gates {
		floor := g.base * threshold
		status := "ok"
		if g.cur < floor {
			status = "REGRESSION"
			failed++
		}
		fmt.Fprintf(stdout, "%-30s baseline %.2fx  measured %.2fx  floor %.2fx  %s\n",
			g.name, g.base, g.cur, floor, status)
	}
	if failed > 0 {
		return fmt.Errorf("%d speedup gate(s) below %.2fx of baseline", failed, threshold)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("simbench", flag.ContinueOnError)
	var (
		out       = fs.String("out", "BENCH_sim.json", "output file (write mode)")
		runs      = fs.Int("runs", 16, "campaign runs per CollectMaxContention iteration")
		check     = fs.Bool("check", false, "regression gate: compare against -baseline instead of writing")
		baseline  = fs.String("baseline", "BENCH_sim.json", "committed baseline to check against (-check)")
		threshold = fs.Float64("threshold", 0.85, "minimum acceptable fraction of the baseline speedups (-check)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	if *check {
		if *threshold <= 0 || *threshold > 1 {
			return fmt.Errorf("-threshold %v out of range (0, 1]", *threshold)
		}
		// Load the baseline before measuring: a broken baseline must fail
		// in milliseconds, not after a minute of benchmarking.
		base, err := loadBaseline(*baseline)
		if err != nil {
			return err
		}
		measured, err := measureAll(*runs, stderr)
		if err != nil {
			return err
		}
		return checkAgainst(base, measured, *threshold, stdout)
	}

	rep, err := measureAll(*runs, stderr)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "machine step: %.1fx (%.0f vs %.0f sim-cycles/s)\n",
		rep.MachineStep.Speedup, rep.MachineStep.Fast.SimCyclesPerS, rep.MachineStep.PerCycle.SimCyclesPerS)
	fmt.Fprintf(stdout, "CollectMaxContention: %.1fx (%.2fms vs %.2fms per run)\n",
		rep.CollectMaxContention.Speedup,
		rep.CollectMaxContention.Fast.NsPerOp/1e6, rep.CollectMaxContention.PerCycle.NsPerOp/1e6)
	fmt.Fprintln(stdout, "wrote", *out)
	return nil
}
