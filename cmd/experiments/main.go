// Command experiments regenerates every quantitative artefact of the paper
// and prints the same rows/series the paper reports, side by side with the
// paper's quoted values. See DESIGN.md §5 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	experiments                  # run everything with default settings
//	experiments -exp fig1 -runs 100
//	experiments -exp ill,sweep
//	experiments -scenario s.json # run one declarative scenario instead
//
// Campaigns run on the event-horizon stepping engine (DESIGN.md §6),
// bit-identical to per-cycle simulation; -fast=false forces the per-cycle
// reference engine, -parallel N sizes the worker pool. -scenario runs a
// declarative scenario file (internal/scenario, DESIGN.md §7) through the
// same campaign machinery and prints its per-seed results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"creditbus/internal/exp"
	"creditbus/internal/report"
	"creditbus/internal/scenario"
	"creditbus/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		which    = fs.String("exp", "all", "comma-separated: ill,table1,fig1,fig1x,sweep,overhead,mbpta,hcba,fairness or all (fig1x = full 10-kernel suite, not in all)")
		runs     = fs.Int("runs", 30, "randomised runs per configuration (the paper uses 1000)")
		seed     = fs.Uint64("seed", 0, "base seed (0 = default)")
		bench    = fs.String("mbpta-bench", "matrix", "benchmark for the MBPTA experiment")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "simulation runs in flight (campaign workers; 1 = serial, results are identical at any setting)")
		progress = fs.Bool("progress", false, "report campaign progress on stderr")
		fast     = fs.Bool("fast", true, "event-horizon stepping (bit-identical to per-cycle; -fast=false forces the per-cycle reference engine)")
		scen     = fs.String("scenario", "", "run this declarative scenario JSON instead of the named experiments (DESIGN.md §7)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	emit := func(t *report.Table) error {
		var err error
		if *csv {
			err = t.WriteCSV(stdout)
		} else {
			err = t.Fprint(stdout)
		}
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(stdout)
		return err
	}

	if *scen != "" {
		// The scenario file defines the experiment; flags that would
		// silently lose to it are conflicts, not overrides (matching
		// cbasim). -csv/-parallel/-progress/-fast remain applicable.
		conflicting := map[string]bool{"exp": true, "runs": true, "seed": true, "mbpta-bench": true}
		conflicts, fastSet := scenario.ScanFlags(fs, conflicting)
		if len(conflicts) > 0 {
			return fmt.Errorf("-scenario %s conflicts with %s: the file defines the experiment", *scen, strings.Join(conflicts, ", "))
		}
		return runScenario(*scen, *parallel, fastSet, *fast, *progress, stderr, emit)
	}

	opts := exp.Options{Runs: *runs, Seed: *seed, Workers: *parallel, PerCycle: !*fast}
	if *progress {
		opts.Progress = progressLine(stderr)
	}
	known := map[string]bool{
		"all": true, "ill": true, "table1": true, "fig1": true, "fig1x": true,
		"sweep": true, "overhead": true, "mbpta": true, "hcba": true,
		"fairness": true,
	}
	selected := map[string]bool{}
	for _, s := range strings.Split(*which, ",") {
		name := strings.TrimSpace(s)
		if name == "" {
			continue
		}
		if !known[name] {
			return fmt.Errorf("unknown experiment %q (have ill,table1,fig1,fig1x,sweep,overhead,mbpta,hcba,fairness or all)", name)
		}
		selected[name] = true
	}
	all := selected["all"]

	if all || selected["ill"] {
		if err := runIllustrative(emit); err != nil {
			return err
		}
	}
	if all || selected["table1"] {
		if err := runTable1(emit); err != nil {
			return err
		}
	}
	if all || selected["fig1"] {
		if err := runFig1(opts, emit); err != nil {
			return err
		}
	}
	if selected["fig1x"] {
		if err := runFig1Extended(opts, emit); err != nil {
			return err
		}
	}
	if all || selected["sweep"] {
		if err := runSweep(opts, emit); err != nil {
			return err
		}
	}
	if all || selected["overhead"] {
		if err := runOverhead(emit); err != nil {
			return err
		}
	}
	if all || selected["mbpta"] {
		if err := runMBPTA(opts, *bench, emit); err != nil {
			return err
		}
	}
	if all || selected["hcba"] {
		if err := runHCBA(opts, emit); err != nil {
			return err
		}
	}
	if all || selected["fairness"] {
		if err := runFairness(opts, emit); err != nil {
			return err
		}
	}
	return nil
}

// progressLine writes \r-updating campaign progress to w.
func progressLine(w io.Writer) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(w, "\rcampaign: %d/%d runs", done, total)
		if done == total {
			fmt.Fprintln(w)
		}
	}
}

// runScenario executes one declarative scenario through the campaign
// engine and prints its per-seed results plus summary statistics.
func runScenario(path string, parallel int, fastSet, fast, progress bool, stderr io.Writer, emit func(*report.Table) error) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	if fastSet {
		spec.Engine = scenario.EngineForFast(fast)
	}
	compiled, err := spec.Compile()
	if err != nil {
		return err
	}
	var prog func(done, total int)
	if progress {
		prog = progressLine(stderr)
	}
	results, err := compiled.Results(parallel, prog)
	if err != nil {
		return err
	}

	title := fmt.Sprintf("EXP-SCN — scenario %s (%s run, TuA core %d)", spec.Name, spec.Run, compiled.TuA())
	t := report.NewTable(title, "seed", "task cycles", "wall cycles", "bus util", "l1 hit", "l2 hit", "max wait")
	var acc stats.Accumulator
	for i, r := range results {
		acc.Add(float64(r.TaskCycles))
		t.AddRow(
			fmt.Sprint(compiled.Seeds[i]),
			fmt.Sprint(r.TaskCycles),
			fmt.Sprint(r.WallCycles),
			fmt.Sprintf("%.3f", r.Utilisation),
			fmt.Sprintf("%.3f", r.L1HitRate),
			fmt.Sprintf("%.3f", r.L2HitRate),
			fmt.Sprint(r.Bus.MaxWait),
		)
	}
	if err := emit(t); err != nil {
		return err
	}
	s := report.NewTable("EXP-SCN — summary", "quantity", "value")
	s.AddRowf("runs", len(results))
	s.AddRowf("mean task cycles", fmt.Sprintf("%.0f", acc.Mean()))
	s.AddRowf("95% CI half-width", fmt.Sprintf("%.0f", acc.CI95HalfWidth()))
	s.AddRowf("min", fmt.Sprintf("%.0f", acc.Min()))
	s.AddRowf("max", fmt.Sprintf("%.0f", acc.Max()))
	return emit(s)
}

func runIllustrative(emit func(*report.Table) error) error {
	r := exp.Illustrative()
	t := report.NewTable(
		"EXP-ILL — §II illustrative example (TuA: 1000×6-cycle requests, 3 streaming 28-cycle contenders)",
		"quantity", "paper", "measured")
	t.AddRowf("isolation cycles", 10000, r.IsoCycles)
	t.AddRowf("round-robin contention cycles", "94000 (arithmetic)", r.RRCycles)
	t.AddRowf("round-robin slowdown", exp.PaperRRSlowdown, r.RRSlowdown)
	t.AddRowf("CBA contention cycles", "28000 (fluid limit)", r.CBACycles)
	t.AddRowf("CBA slowdown", exp.PaperCBASlowdown, r.CBASlowdown)
	return emit(t)
}

func runTable1(emit func(*report.Table) error) error {
	// Table I itself is a signal inventory; its semantics are verified by
	// `go test ./internal/core -run 'TestTableI|TestBudget'`. Here we print
	// the inventory with the implementation's values.
	t := report.NewTable("EXP-T1 — Table I signal inventory (verified by internal/core tests)",
		"signal", "every cycle", "when using bus", "wcet mode", "operation mode")
	t.AddRow("BUDG_i", "min(BUDG_i+1, 224¹)", "BUDG_i − 4", "TuA starts at 0", "starts full")
	t.AddRow("COMP_1", "—", "—", "— (always competes)", "1")
	t.AddRow("COMP_{2,3,4}", "latch: BUDG_i==cap ∧ REQ_1", "reset on grant", "as latched", "1")
	t.AddRow("REQ_1", "", "", "when request ready", "when request ready")
	t.AddRow("REQ_{2,3,4}", "", "", "1 (56-cycle holds)", "when request ready")
	t.AddRow("¹ paper prints 228 '(56x4)'; 56×4 = 224 — see DESIGN.md", "", "", "", "")
	return emit(t)
}

func runFig1(opts exp.Options, emit func(*report.Table) error) error {
	rows, err := exp.Fig1(opts)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("EXP-F1 — Figure 1: normalised average execution time (%d runs/bar, paper: 1000)", opts.Runs),
		append([]string{"benchmark"}, exp.Fig1Configs...)...)
	for _, row := range rows {
		cells := []string{row.Benchmark}
		for _, cfg := range exp.Fig1Configs {
			c := row.Cells[cfg]
			cells = append(cells, fmt.Sprintf("%.2f±%.2f", c.Mean, c.CI))
		}
		t.AddRow(cells...)
	}
	if err := emit(t); err != nil {
		return err
	}

	s := exp.Summarise(rows)
	t2 := report.NewTable("EXP-F1 — headline numbers", "quantity", "paper", "measured")
	t2.AddRowf("worst RP-CON slowdown", "3.34 (matrix)", fmt.Sprintf("%.2f (%s)", s.MaxRPCon, s.MaxRPConBench))
	t2.AddRowf("worst CBA-CON slowdown", "2.34", fmt.Sprintf("%.2f (%s)", s.MaxCBACon, s.MaxCBAConBench))
	t2.AddRowf("worst H-CBA-CON slowdown", "< CBA-CON", fmt.Sprintf("%.2f", s.MaxHCBACon))
	t2.AddRowf("average CBA-ISO overhead", "1.03", fmt.Sprintf("%.3f", s.AvgCBAIso))
	t2.AddRowf("average H-CBA-ISO overhead", "≈1.00", fmt.Sprintf("%.3f", s.AvgHCBAIso))
	return emit(t2)
}

func runFig1Extended(opts exp.Options, emit func(*report.Table) error) error {
	rows, err := exp.Fig1Extended(opts)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("EXP-F1X — extension: Figure 1 configurations over the full kernel suite (%d runs/bar)", opts.Runs),
		append([]string{"benchmark"}, exp.Fig1Configs...)...)
	for _, row := range rows {
		cells := []string{row.Benchmark}
		for _, cfg := range exp.Fig1Configs {
			c := row.Cells[cfg]
			cells = append(cells, fmt.Sprintf("%.2f±%.2f", c.Mean, c.CI))
		}
		t.AddRow(cells...)
	}
	return emit(t)
}

func runSweep(opts exp.Options, emit func(*report.Table) error) error {
	pts := exp.Sweep(opts)
	t := report.NewTable(
		"EXP-SWEEP — TuA slowdown vs contender request length (§I: slot-fair slowdown is 'virtually unbounded')",
		append([]string{"contender hold"}, exp.SweepPolicies...)...)
	for _, pt := range pts {
		cells := []string{fmt.Sprint(pt.ContenderHold)}
		for _, p := range exp.SweepPolicies {
			cells = append(cells, fmt.Sprintf("%.2f", pt.Slowdown[p]))
		}
		t.AddRow(cells...)
	}
	return emit(t)
}

func runOverhead(emit func(*report.Table) error) error {
	r := exp.Overhead()
	t := report.NewTable(
		"EXP-OVH — implementation overheads (substitute for the paper's FPGA synthesis, see DESIGN.md §2)",
		"quantity", "paper", "measured")
	t.AddRowf("CBA state per core", "8-bit counter + COMP bit", fmt.Sprintf("%d bits", r.StateBitsPerCore))
	t.AddRowf("CBA state total (4 cores)", "—", fmt.Sprintf("%d bits", r.StateBitsTotal))
	t.AddRowf("FPGA occupancy growth", "< 0.1%", "n/a (simulator)")
	t.AddRowf("bus cycle cost, RP", "—", fmt.Sprintf("%.1f ns", r.NsPerDecision["RP"]))
	t.AddRowf("bus cycle cost, RP+CBA", "fmax kept at 100 MHz", fmt.Sprintf("%.1f ns", r.NsPerDecision["RP+CBA"]))
	return emit(t)
}

func runMBPTA(opts exp.Options, bench string, emit func(*report.Table) error) error {
	mopts := opts
	if mopts.Runs < 100 {
		mopts.Runs = 100 // EVT needs a real campaign
	}
	r, err := exp.MBPTAExperiment(mopts, bench)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("EXP-MBPTA — pWCET for %s under maximum contention (%d runs, block %d)",
			r.Benchmark, r.Runs, r.Block),
		"exceedance prob/run", "RP pWCET", "RP+CBA pWCET")
	for i := range r.RPCurve {
		t.AddRow(
			fmt.Sprintf("1e-%d", i+3),
			fmt.Sprintf("%.0f", r.RPCurve[i].WCET),
			fmt.Sprintf("%.0f", r.CBACurve[i].WCET),
		)
	}
	if err := emit(t); err != nil {
		return err
	}
	t2 := report.NewTable("EXP-MBPTA — diagnostics", "quantity", "RP", "RP+CBA")
	t2.AddRowf("i.i.d. checks pass", r.RP.IID.Pass(), r.CBA.IID.Pass())
	t2.AddRowf("lag-1 autocorrelation", r.RP.IID.Lag1, r.CBA.IID.Lag1)
	t2.AddRowf("KS half-split statistic", r.RP.IID.KS, r.CBA.IID.KS)
	t2.AddRowf("Gumbel location μ", r.RP.Fit.Mu, r.CBA.Fit.Mu)
	t2.AddRowf("Gumbel scale σ", r.RP.Fit.Sigma, r.CBA.Fit.Sigma)
	return emit(t2)
}

func runFairness(opts exp.Options, emit func(*report.Table) error) error {
	rows, err := exp.FairnessComparison(opts)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("EXP-FAIR — fairness zoo vs slot-fair baselines (entitlement %v, window %d cy, %d runs/policy)",
			exp.FairnessWeights, exp.FairnessWindow, opts.Runs),
		"policy", "TuA cycles", "TuA share (ent 0.500)", "Jain", "share err", "win err max", "win err mean", "max starve (cy)")
	for _, r := range rows {
		t.AddRow(r.Policy,
			fmt.Sprintf("%.0f", r.TaskCycles),
			fmt.Sprintf("%.3f", r.TuAShare),
			fmt.Sprintf("%.3f", r.JainOverall),
			fmt.Sprintf("%.3f", r.ShareErr),
			fmt.Sprintf("%.3f", r.MaxWindowShareErr),
			fmt.Sprintf("%.3f", r.MeanWindowShareErr),
			fmt.Sprintf("%.0f", r.MaxStarveAge),
		)
	}
	return emit(t)
}

func runHCBA(opts exp.Options, emit func(*report.Table) error) error {
	results := exp.HCBAAblation(opts)
	t := report.NewTable(
		"EXP-HCBA — §III.A heterogeneous allocation variants (bursty privileged task vs 3 streamers)",
		"variant", "burst latency (cy)", "back-to-back grants", "longest TuA occupancy run", "contender share")
	for _, r := range results {
		t.AddRow(r.Variant,
			fmt.Sprintf("%.0f", r.BurstLatency),
			fmt.Sprint(r.TuABackToBack),
			fmt.Sprint(r.TuAMaxRun),
			fmt.Sprintf("%.3f", r.ContenderShare),
		)
	}
	return emit(t)
}
