package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const smokeSpec = `{
  "name": "smoke",
  "policy": "RR",
  "run": "isolation",
  "workloads": [
    {"core": 0, "workload": "matrix", "ops": 300}
  ],
  "seeds": {"list": [3, 4, 5]}
}`

func writeSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunScenarioFile(t *testing.T) {
	path := writeSpec(t, smokeSpec)
	var out, errb strings.Builder
	if err := run([]string{"-scenario", path, "-parallel", "1", "-progress"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"EXP-SCN", "scenario smoke", "isolation run", "mean task cycles"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(errb.String(), "campaign: 3/3 runs") {
		t.Errorf("progress not reported: %q", errb.String())
	}
	// All three seeds appear as rows.
	for _, seed := range []string{"3", "4", "5"} {
		if !strings.Contains(got, "\n  "+seed+" ") {
			t.Errorf("seed %s row missing:\n%s", seed, got)
		}
	}
}

func TestRunScenarioFileCSV(t *testing.T) {
	path := writeSpec(t, smokeSpec)
	var out, errb strings.Builder
	if err := run([]string{"-scenario", path, "-parallel", "1", "-csv"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "seed,task cycles") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

func TestRunTable1(t *testing.T) {
	// table1 is the one experiment with no campaign behind it, so it keeps
	// the dispatch path fast to test.
	var out, errb strings.Builder
	if err := run([]string{"-exp", "table1"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "EXP-T1") {
		t.Errorf("table1 output missing:\n%s", out.String())
	}
}

func TestScenarioFlagConflicts(t *testing.T) {
	path := writeSpec(t, smokeSpec)
	var out, errb strings.Builder
	err := run([]string{"-scenario", path, "-runs", "1000", "-exp", "fig1"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "conflicts with -exp, -runs") {
		t.Fatalf("conflicting flags accepted: %v", err)
	}
	// -csv/-parallel/-progress/-fast stay applicable.
	if err := run([]string{"-scenario", path, "-parallel", "2", "-fast=false", "-csv"}, &out, &errb); err != nil {
		t.Fatalf("override flags rejected: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown experiment", []string{"-exp", "nope"}, "unknown experiment"},
		{"positional args", []string{"extra"}, "unexpected arguments"},
		{"missing scenario", []string{"-scenario", "no/such.json"}, "no/such.json"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb strings.Builder
			err := run(c.args, &out, &errb)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
