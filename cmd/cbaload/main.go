// Command cbaload is the load-generator client for cmd/cbad: it replays a
// population traffic mix (the ue-stream/ue-web/ue-voice/ue-mix profiles of
// DESIGN.md §10) as concurrent scenario submissions against a live daemon
// and reports sustained throughput, latency percentiles and the server's
// cache effectiveness.
//
// The request stream cycles a fixed set of distinct specs, so repeated
// submissions exercise the daemon's content-addressed cache: with R
// requests over D distinct (spec, seed) units, a healthy daemon reports D
// misses and R−D hits. With -verify, every distinct spec's response is
// compared byte-for-byte against a direct in-process library run — the
// end-to-end proof that serving results through the daemon changes nothing.
//
// Transient failures — 429 throttles, 5xx responses and transport errors —
// are retried with capped exponential backoff and deterministic seeded
// jitter (-retries, -backoff, -retry-seed); the summary reports the total
// retry count and retries per request.
//
// Usage:
//
//	cbaload -addr http://127.0.0.1:8437 -requests 64 -concurrency 8 -verify
//
// Exit status is non-zero on any request error, on a verification
// mismatch, or — with -require-hit — when the server reports zero cache
// hits (the CI service gate).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"creditbus/internal/scenario"
	"creditbus/internal/service"
	"creditbus/internal/stats"
)

// sleepFn is the backoff sleep; tests stub it to assert the exact delay
// sequence without waiting it out.
var sleepFn = time.Sleep

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cbaload:", err)
		os.Exit(1)
	}
}

// summary is the machine-readable load report (-json).
type summary struct {
	Requests  int `json:"requests"`
	OK        int `json:"ok"`
	Throttled int `json:"throttled"`
	Errors    int `json:"errors"`
	// Retries counts retry attempts across all requests: throttles (429),
	// server errors (5xx) and transport failures that were re-submitted
	// after a backoff. A request's terminal outcome is tallied once, in
	// OK/Throttled/Errors, regardless of how many retries preceded it.
	Retries           int     `json:"retries"`
	RetriesPerRequest float64 `json:"retries_per_request"`
	DistinctRun       int     `json:"distinct_specs"`
	Duration          float64 `json:"duration_sec"`
	Throughput        float64 `json:"requests_per_sec"`
	P50Ms             float64 `json:"latency_p50_ms"`
	P99Ms             float64 `json:"latency_p99_ms"`
	MaxMs             float64 `json:"latency_max_ms"`
	Verified          int     `json:"verified_specs"`
	HitRate           float64 `json:"hit_rate"`
	// ErrorCodes tallies the typed error-envelope codes of every non-200
	// response (e.g. "queue_full" for throttles); "" counts responses
	// without a parseable envelope.
	ErrorCodes map[string]int `json:"error_codes,omitempty"`
	Server     service.Stats  `json:"server_stats"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cbaload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8437", "cbad base URL")
		requests    = fs.Int("requests", 64, "total submissions")
		concurrency = fs.Int("concurrency", 8, "concurrent clients")
		profiles    = fs.String("profiles", "ue-stream,ue-web,ue-voice,ue-mix", "comma-separated co-runner traffic profiles")
		distinct    = fs.Int("distinct", 2, "distinct spec variants per profile (seed-spaced)")
		cores       = fs.Int("cores", 8, "platform cores per scenario")
		seeds       = fs.Int("seeds", 1, "run seeds per spec")
		ops         = fs.Int("ops", 200, "TuA operation count (run length lever)")
		verify      = fs.Bool("verify", false, "compare responses byte-for-byte against direct library runs")
		requireHit  = fs.Bool("require-hit", false, "fail when the server reports zero cache hits")
		jsonOut     = fs.Bool("json", false, "print the summary as JSON")
		timeout     = fs.Duration("timeout", 60*time.Second, "per-request timeout")
		retries     = fs.Int("retries", 3, "retry budget per request for 429/5xx/transport failures (0 disables)")
		backoff     = fs.Duration("backoff", 25*time.Millisecond, "base retry backoff; doubles per attempt, capped, jittered")
		retrySeed   = fs.Uint64("retry-seed", 1, "deterministic jitter seed (per-worker: seed+worker index)")
	)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *requests <= 0 || *concurrency <= 0 || *distinct <= 0 || *seeds <= 0 {
		return fmt.Errorf("requests, concurrency, distinct and seeds must all be positive")
	}
	if *retries < 0 || *backoff < 0 {
		return fmt.Errorf("retries and backoff must be non-negative")
	}

	specs, err := buildSpecs(strings.Split(*profiles, ","), *distinct, *cores, *seeds, *ops)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: *timeout}
	var (
		mu           sync.Mutex
		latencies    []float64 // milliseconds
		okCount      int
		throttled    int
		errCount     int
		retriesTotal int
		firstErr     error
		errorCodes   = map[string]int{}
		captured     = make([]*service.RunResponse, len(specs))
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker gets its own deterministic jitter stream, so a
			// given (seed, concurrency, schedule) replays the same delays.
			rng := rand.New(rand.NewSource(int64(*retrySeed) + int64(w)))
			for i := range jobs {
				si := i % len(specs)
				rr, code, apiErr, d, err := submit(client, *addr, specs[si])
				for attempt := 0; attempt < *retries && retryable(code, err); attempt++ {
					sleepFn(backoffDelay(*backoff, attempt, rng))
					mu.Lock()
					retriesTotal++
					mu.Unlock()
					rr, code, apiErr, d, err = submit(client, *addr, specs[si])
				}
				mu.Lock()
				switch {
				case err != nil:
					errCount++
					if firstErr == nil {
						firstErr = err
					}
				case code == http.StatusTooManyRequests:
					throttled++
					errorCodes[apiErrCode(apiErr)]++
				case code != http.StatusOK:
					errCount++
					errorCodes[apiErrCode(apiErr)]++
					if firstErr == nil {
						if apiErr != nil {
							firstErr = fmt.Errorf("request %d: status %d code %s: %s", i, code, apiErr.Code, apiErr.Message)
						} else {
							firstErr = fmt.Errorf("request %d: status %d", i, code)
						}
					}
				default:
					okCount++
					latencies = append(latencies, float64(d.Microseconds())/1000)
					if captured[si] == nil {
						captured[si] = rr
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	verified := 0
	if *verify {
		if verified, err = verifyResponses(specs, captured); err != nil {
			return err
		}
	}

	stats, err := fetchStats(client, *addr)
	if err != nil {
		return fmt.Errorf("fetch stats: %w", err)
	}

	sum := summary{
		Requests:          *requests,
		OK:                okCount,
		Throttled:         throttled,
		Errors:            errCount,
		Retries:           retriesTotal,
		RetriesPerRequest: float64(retriesTotal) / float64(*requests),
		DistinctRun:       len(specs),
		Duration:          elapsed.Seconds(),
		Throughput:        float64(*requests) / elapsed.Seconds(),
		Verified:          verified,
		Server:            stats,
	}
	if len(errorCodes) > 0 {
		sum.ErrorCodes = errorCodes
	}
	sum.P50Ms, sum.P99Ms, sum.MaxMs = percentiles(latencies)
	if lookups := stats.Hits + stats.Misses; lookups > 0 {
		sum.HitRate = float64(stats.Hits) / float64(lookups)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "cbaload: %d requests (%d ok, %d throttled, %d errors) over %d distinct specs in %.2fs = %.1f req/s\n",
			sum.Requests, sum.OK, sum.Throttled, sum.Errors, sum.DistinctRun, sum.Duration, sum.Throughput)
		fmt.Fprintf(stdout, "cbaload: retries %d (%.2f per request)\n", sum.Retries, sum.RetriesPerRequest)
		fmt.Fprintf(stdout, "cbaload: latency p50 %.2fms p99 %.2fms max %.2fms\n", sum.P50Ms, sum.P99Ms, sum.MaxMs)
		fmt.Fprintf(stdout, "cbaload: server hits=%d misses=%d coalesced=%d executions=%d hit-rate %.1f%%\n",
			stats.Hits, stats.Misses, stats.Coalesced, stats.Executions, 100*sum.HitRate)
		if len(sum.ErrorCodes) > 0 {
			codes := make([]string, 0, len(sum.ErrorCodes))
			for c := range sum.ErrorCodes {
				codes = append(codes, c)
			}
			sort.Strings(codes)
			parts := make([]string, 0, len(codes))
			for _, c := range codes {
				name := c
				if name == "" {
					name = "(no envelope)"
				}
				parts = append(parts, fmt.Sprintf("%s=%d", name, sum.ErrorCodes[c]))
			}
			fmt.Fprintf(stdout, "cbaload: error codes: %s\n", strings.Join(parts, " "))
		}
		if *verify {
			fmt.Fprintf(stdout, "cbaload: verified %d/%d distinct specs byte-identical to direct library runs\n", verified, len(specs))
		}
	}

	if errCount > 0 {
		return fmt.Errorf("%d of %d requests failed (first: %v)", errCount, *requests, firstErr)
	}
	if *requireHit && stats.Hits == 0 {
		return fmt.Errorf("server reports zero cache hits after %d requests over %d distinct specs", *requests, len(specs))
	}
	return nil
}

// buildSpecs assembles the distinct scenario set: per profile and variant, a
// terminating TuA on core 0 against a looping co-runner population running
// the profile on every other core. Variants are separated by the
// population's workload seed, so each variant has its own semantic cache
// key. Every spec is validated locally before any request goes out.
func buildSpecs(profiles []string, distinct, cores, seeds, ops int) ([]scenario.Spec, error) {
	if cores < 2 {
		return nil, fmt.Errorf("cores = %d: population scenarios need at least 2", cores)
	}
	seedList := make([]uint64, seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	var specs []scenario.Spec
	for _, p := range profiles {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		for v := 0; v < distinct; v++ {
			sp := scenario.Spec{
				Name:        fmt.Sprintf("load-%s-%d", p, v),
				Description: fmt.Sprintf("cbaload mix: %s population, variant %d", p, v),
				Cores:       cores,
				Run:         scenario.RunWorkloads,
				Workloads: []scenario.Workload{
					{Core: 0, Name: "matrix", Ops: ops, Criticality: scenario.CritHigh},
				},
				Populations: []scenario.Population{
					{FromCore: 1, ToCore: cores - 1, Name: p, Loop: true, Seed: uint64(1 + v*cores)},
				},
				Seeds: scenario.Seeds{List: seedList},
			}
			if err := sp.Validate(); err != nil {
				return nil, fmt.Errorf("profile %q: %w", p, err)
			}
			specs = append(specs, sp)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no traffic profiles")
	}
	return specs, nil
}

// submit POSTs one spec: on 200 it decodes the run response, on any other
// status it decodes the typed error envelope (nil when the body is not a
// parseable envelope).
func submit(client *http.Client, addr string, sp scenario.Spec) (*service.RunResponse, int, *service.APIError, time.Duration, error) {
	data, err := sp.Encode()
	if err != nil {
		return nil, 0, nil, 0, err
	}
	start := time.Now()
	resp, err := client.Post(addr+"/v1/run", "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, 0, nil, time.Since(start), err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	d := time.Since(start)
	if err != nil {
		return nil, resp.StatusCode, nil, d, err
	}
	if resp.StatusCode != http.StatusOK {
		var ae service.APIError
		if err := json.Unmarshal(body, &ae); err != nil || ae.Code == "" {
			return nil, resp.StatusCode, nil, d, nil
		}
		return nil, resp.StatusCode, &ae, d, nil
	}
	var rr service.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		return nil, resp.StatusCode, nil, d, fmt.Errorf("decode response: %w", err)
	}
	return &rr, resp.StatusCode, nil, d, nil
}

// retryable reports whether an attempt's outcome is worth re-submitting:
// transport failures, throttles (429) and server-side errors (5xx). 4xx
// other than 429 means the request itself is bad — retrying cannot help.
func retryable(code int, err error) bool {
	return err != nil || code == http.StatusTooManyRequests || code >= http.StatusInternalServerError
}

// backoffDelay is the sleep before retry number attempt (0-based):
// exponential base<<attempt, capped at 32×base and a 5s ceiling, with
// deterministic half-jitter — a uniform draw from [d/2, d] so concurrent
// workers desynchronise instead of stampeding the daemon in lockstep.
func backoffDelay(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt > 5 {
		attempt = 5 // 32×base cap
	}
	d := base << uint(attempt)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// apiErrCode maps a decoded envelope to its tally key ("" when the
// response carried no parseable envelope).
func apiErrCode(ae *service.APIError) string {
	if ae == nil {
		return ""
	}
	return ae.Code
}

// verifyResponses proves the daemon changed nothing: each captured
// response's per-seed result must be byte-identical, in canonical snapshot
// encoding, to a direct in-process run of the same compiled spec.
func verifyResponses(specs []scenario.Spec, captured []*service.RunResponse) (int, error) {
	verified := 0
	for i, rr := range captured {
		if rr == nil {
			continue // this variant never got a 200 (e.g. all throttled)
		}
		compiled, err := specs[i].Compile()
		if err != nil {
			return verified, err
		}
		if len(rr.Runs) != len(compiled.Seeds) {
			return verified, fmt.Errorf("%s: %d runs for %d seeds", specs[i].Name, len(rr.Runs), len(compiled.Seeds))
		}
		for j, seed := range compiled.Seeds {
			direct, err := compiled.RunSeed(seed)
			if err != nil {
				return verified, err
			}
			want, err := json.Marshal(scenario.Snap(direct))
			if err != nil {
				return verified, err
			}
			got, err := json.Marshal(rr.Runs[j].Result)
			if err != nil {
				return verified, err
			}
			if !bytes.Equal(want, got) {
				return verified, fmt.Errorf("%s seed %d: response differs from direct run\nserver: %s\ndirect: %s",
					specs[i].Name, seed, got, want)
			}
		}
		verified++
	}
	if verified == 0 {
		return 0, fmt.Errorf("verification requested but no responses were captured")
	}
	return verified, nil
}

// fetchStats reads the daemon's /v1/stats counters.
func fetchStats(client *http.Client, addr string) (service.Stats, error) {
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return service.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.Stats{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.Stats{}, err
	}
	return st, nil
}

// percentiles returns p50, p99 and max over latency samples (ms), using the
// same type-7 interpolated quantiles as the rest of the codebase
// (stats.Percentile) — an ad-hoc nearest-rank rounding here used to disagree
// with every reported percentile elsewhere on small samples.
func percentiles(ms []float64) (p50, p99, max float64) {
	if len(ms) == 0 {
		return 0, 0, 0
	}
	max = ms[0]
	for _, v := range ms[1:] {
		if v > max {
			max = v
		}
	}
	return stats.Percentile(ms, 0.50), stats.Percentile(ms, 0.99), max
}
