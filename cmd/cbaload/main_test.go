package main

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"creditbus/internal/service"
	"creditbus/internal/stats"
)

// startDaemon boots the service core over httptest — the same handler
// cmd/cbad serves.
func startDaemon(t *testing.T, opts service.Options) *httptest.Server {
	t.Helper()
	srv, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"positional"}, &out); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run([]string{"-requests", "0"}, &out); err == nil {
		t.Fatal("zero requests accepted")
	}
	if err := run([]string{"-profiles", "no-such-workload"}, &out); err == nil {
		t.Fatal("unknown traffic profile accepted")
	}
	if err := run([]string{"-cores", "1"}, &out); err == nil {
		t.Fatal("coreless population accepted")
	}
}

// TestLoadAgainstDaemon drives a small verified mix and checks the cache
// comes up hot: repeated submissions of the distinct spec set must hit.
func TestLoadAgainstDaemon(t *testing.T) {
	hs := startDaemon(t, service.Options{Workers: 4})
	var out bytes.Buffer
	args := []string{
		"-addr", hs.URL,
		"-requests", "12",
		"-concurrency", "3",
		"-profiles", "ue-web",
		"-distinct", "2",
		"-cores", "4",
		"-ops", "120",
		"-verify",
		"-require-hit",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("load run failed: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "12 requests (12 ok, 0 throttled, 0 errors)") {
		t.Fatalf("unexpected request accounting:\n%s", text)
	}
	if !strings.Contains(text, "verified 2/2 distinct specs") {
		t.Fatalf("verification did not cover the distinct specs:\n%s", text)
	}
	// 12 requests over 2 distinct single-seed specs: 2 misses, 10 lookups
	// served without re-simulation (hits after the first round).
	if !strings.Contains(text, "misses=2") || !strings.Contains(text, "executions=2") {
		t.Fatalf("cache accounting:\n%s", text)
	}
}

// TestLoadJSONSummary: the -json report carries the gate numbers.
func TestLoadJSONSummary(t *testing.T) {
	hs := startDaemon(t, service.Options{Workers: 2})
	var out bytes.Buffer
	args := []string{
		"-addr", hs.URL,
		"-requests", "6", "-concurrency", "2",
		"-profiles", "ue-voice", "-distinct", "1", "-cores", "4", "-ops", "120",
		"-json",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{`"requests": 6`, `"errors": 0`, `"hit_rate"`, `"server_stats"`} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("JSON summary lacks %s:\n%s", want, out.String())
		}
	}
}

// TestLoadReportsErrors: an unreachable daemon is a hard failure.
func TestLoadReportsErrors(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-addr", "http://127.0.0.1:1", // reserved port: nothing listens
		"-requests", "2", "-concurrency", "1", "-timeout", "2s",
	}
	if err := run(args, &out); err == nil {
		t.Fatal("load against a dead daemon succeeded")
	}
}

// TestRequireHitFailsCold: -require-hit on a load with no repeated specs
// must fail — the flag is the CI gate for cache effectiveness.
func TestRequireHitFailsCold(t *testing.T) {
	hs := startDaemon(t, service.Options{Workers: 2})
	var out bytes.Buffer
	// 2 requests over 2 distinct specs: every lookup is a miss.
	args := []string{
		"-addr", hs.URL,
		"-requests", "2", "-concurrency", "1",
		"-profiles", "ue-web", "-distinct", "2", "-cores", "4", "-ops", "120",
		"-require-hit",
	}
	err := run(args, &out)
	if err == nil || !strings.Contains(err.Error(), "zero cache hits") {
		t.Fatalf("cold cache passed -require-hit: %v", err)
	}
}

// TestPercentilesMatchStats pins the latency percentiles to the codebase's
// canonical type-7 interpolated quantiles. The fixture is chosen so the old
// ad-hoc nearest-rank rounding (int(q·(n-1)+0.5)) visibly disagrees on both
// reported quantiles: it said p50=30, p99=40 here.
func TestPercentilesMatchStats(t *testing.T) {
	fixture := []float64{10, 20, 30, 40}
	p50, p99, max := percentiles(fixture)
	if want := stats.Percentile(fixture, 0.50); p50 != want {
		t.Errorf("p50 = %v, want stats.Percentile = %v", p50, want)
	}
	if want := stats.Percentile(fixture, 0.99); p99 != want {
		t.Errorf("p99 = %v, want stats.Percentile = %v", p99, want)
	}
	if p50 != 25 {
		t.Errorf("p50 = %v, want the interpolated 25 (nearest-rank gave 30)", p50)
	}
	if math.Abs(p99-39.7) > 1e-9 {
		t.Errorf("p99 = %v, want the interpolated 39.7 (nearest-rank gave 40)", p99)
	}
	if max != 40 {
		t.Errorf("max = %v, want 40", max)
	}
	// Unsorted input must yield the same quantiles without being mutated.
	shuffled := []float64{30, 10, 40, 20}
	q50, q99, qmax := percentiles(shuffled)
	if q50 != p50 || q99 != p99 || qmax != max {
		t.Errorf("unsorted fixture: got (%v %v %v), want (%v %v %v)", q50, q99, qmax, p50, p99, max)
	}
	if shuffled[0] != 30 || shuffled[1] != 10 || shuffled[2] != 40 || shuffled[3] != 20 {
		t.Errorf("percentiles mutated its input: %v", shuffled)
	}
	if a, b, c := percentiles(nil); a != 0 || b != 0 || c != 0 {
		t.Errorf("empty input: got (%v %v %v), want zeros", a, b, c)
	}
}
