package main

import (
	"bytes"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"creditbus/internal/service"
	"creditbus/internal/stats"
)

// startDaemon boots the service core over httptest — the same handler
// cmd/cbad serves.
func startDaemon(t *testing.T, opts service.Options) *httptest.Server {
	t.Helper()
	srv, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs
}

// stubSleep replaces the backoff sleep with a recorder for the duration of
// one test. Not safe for parallel tests (package-level state).
func stubSleep(t *testing.T) *sleepRecorder {
	t.Helper()
	rec := &sleepRecorder{}
	prev := sleepFn
	sleepFn = rec.sleep
	t.Cleanup(func() { sleepFn = prev })
	return rec
}

type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (r *sleepRecorder) sleep(d time.Duration) {
	r.mu.Lock()
	r.delays = append(r.delays, d)
	r.mu.Unlock()
}

func (r *sleepRecorder) recorded() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.delays...)
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-retries", "-1"}, &out); err == nil {
		t.Fatal("negative retries accepted")
	}
	if err := run([]string{"-backoff", "-1s"}, &out); err == nil {
		t.Fatal("negative backoff accepted")
	}
	if err := run([]string{"positional"}, &out); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run([]string{"-requests", "0"}, &out); err == nil {
		t.Fatal("zero requests accepted")
	}
	if err := run([]string{"-profiles", "no-such-workload"}, &out); err == nil {
		t.Fatal("unknown traffic profile accepted")
	}
	if err := run([]string{"-cores", "1"}, &out); err == nil {
		t.Fatal("coreless population accepted")
	}
}

// TestLoadAgainstDaemon drives a small verified mix and checks the cache
// comes up hot: repeated submissions of the distinct spec set must hit.
func TestLoadAgainstDaemon(t *testing.T) {
	hs := startDaemon(t, service.Options{Workers: 4})
	var out bytes.Buffer
	args := []string{
		"-addr", hs.URL,
		"-requests", "12",
		"-concurrency", "3",
		"-profiles", "ue-web",
		"-distinct", "2",
		"-cores", "4",
		"-ops", "120",
		"-verify",
		"-require-hit",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("load run failed: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "12 requests (12 ok, 0 throttled, 0 errors)") {
		t.Fatalf("unexpected request accounting:\n%s", text)
	}
	if !strings.Contains(text, "verified 2/2 distinct specs") {
		t.Fatalf("verification did not cover the distinct specs:\n%s", text)
	}
	// 12 requests over 2 distinct single-seed specs: 2 misses, 10 lookups
	// served without re-simulation (hits after the first round).
	if !strings.Contains(text, "misses=2") || !strings.Contains(text, "executions=2") {
		t.Fatalf("cache accounting:\n%s", text)
	}
}

// TestLoadJSONSummary: the -json report carries the gate numbers.
func TestLoadJSONSummary(t *testing.T) {
	hs := startDaemon(t, service.Options{Workers: 2})
	var out bytes.Buffer
	args := []string{
		"-addr", hs.URL,
		"-requests", "6", "-concurrency", "2",
		"-profiles", "ue-voice", "-distinct", "1", "-cores", "4", "-ops", "120",
		"-json",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{`"requests": 6`, `"errors": 0`, `"retries": 0`, `"retries_per_request": 0`, `"hit_rate"`, `"server_stats"`} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("JSON summary lacks %s:\n%s", want, out.String())
		}
	}
}

// TestLoadReportsErrors: an unreachable daemon is a hard failure.
func TestLoadReportsErrors(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-addr", "http://127.0.0.1:1", // reserved port: nothing listens
		"-requests", "2", "-concurrency", "1", "-timeout", "2s",
	}
	if err := run(args, &out); err == nil {
		t.Fatal("load against a dead daemon succeeded")
	}
}

// TestRequireHitFailsCold: -require-hit on a load with no repeated specs
// must fail — the flag is the CI gate for cache effectiveness.
func TestRequireHitFailsCold(t *testing.T) {
	hs := startDaemon(t, service.Options{Workers: 2})
	var out bytes.Buffer
	// 2 requests over 2 distinct specs: every lookup is a miss.
	args := []string{
		"-addr", hs.URL,
		"-requests", "2", "-concurrency", "1",
		"-profiles", "ue-web", "-distinct", "2", "-cores", "4", "-ops", "120",
		"-require-hit",
	}
	err := run(args, &out)
	if err == nil || !strings.Contains(err.Error(), "zero cache hits") {
		t.Fatalf("cold cache passed -require-hit: %v", err)
	}
}

// flakyDaemon fronts the real service handler with an injector that answers
// the first fail429 /v1/run submissions with a throttle envelope before
// letting traffic through — the shape of a daemon briefly over capacity.
func flakyDaemon(t *testing.T, opts service.Options, fail429 int32) *httptest.Server {
	t.Helper()
	srv, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var failed int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/run" && atomic.AddInt32(&failed, 1) <= fail429 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"code":"queue_full","message":"injected throttle"}`))
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs
}

// TestRetryRecoversFromThrottle: a burst of injected 429s is absorbed by the
// retry loop — every request ends OK, the retries are reported, and the
// backoff delays are exactly the deterministic sequence for the seed.
func TestRetryRecoversFromThrottle(t *testing.T) {
	rec := stubSleep(t)
	hs := flakyDaemon(t, service.Options{Workers: 2}, 2)
	var out bytes.Buffer
	args := []string{
		"-addr", hs.URL,
		"-requests", "4", "-concurrency", "1",
		"-profiles", "ue-web", "-distinct", "1", "-cores", "4", "-ops", "120",
		"-retries", "3", "-backoff", "40ms", "-retry-seed", "7",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("load with retries failed: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "4 requests (4 ok, 0 throttled, 0 errors)") {
		t.Fatalf("retries did not absorb the throttles:\n%s", text)
	}
	if !strings.Contains(text, "retries 2 (0.50 per request)") {
		t.Fatalf("retry accounting:\n%s", text)
	}
	// Single worker, seed 7+0: the first request eats both injected 429s,
	// so the delays are attempts 0 and 1 of a fresh jitter stream.
	rng := rand.New(rand.NewSource(7))
	want := []time.Duration{backoffDelay(40*time.Millisecond, 0, rng), backoffDelay(40*time.Millisecond, 1, rng)}
	got := rec.recorded()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("backoff delays = %v, want deterministic %v", got, want)
	}
}

// TestRetryExhaustedStillThrottled: when the daemon never stops throttling,
// the retry budget runs out and the terminal 429 is tallied as throttled —
// retrying changes the accounting only when it changes the outcome.
func TestRetryExhaustedStillThrottled(t *testing.T) {
	rec := stubSleep(t)
	hs := flakyDaemon(t, service.Options{Workers: 2}, 1<<30)
	var out bytes.Buffer
	args := []string{
		"-addr", hs.URL,
		"-requests", "2", "-concurrency", "1",
		"-profiles", "ue-web", "-distinct", "1", "-cores", "4", "-ops", "120",
		"-retries", "2", "-backoff", "10ms",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("throttled load must not be a hard failure: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "2 requests (0 ok, 2 throttled, 0 errors)") {
		t.Fatalf("terminal throttles miscounted:\n%s", text)
	}
	if !strings.Contains(text, "retries 4 (2.00 per request)") {
		t.Fatalf("exhausted budget accounting:\n%s", text)
	}
	if !strings.Contains(text, "queue_full=2") {
		t.Fatalf("error-code tally should count terminal outcomes only:\n%s", text)
	}
	if got := rec.recorded(); len(got) != 4 {
		t.Fatalf("slept %d times, want 4 (2 requests × 2 retries)", len(got))
	}
}

// TestBackoffDelayDeterministicCapped pins the backoff schedule: identical
// seeds replay identical delays, every delay sits in [d/2, d], growth is
// capped at 32×base and hard-capped at 5s, and zero base disables sleeping.
func TestBackoffDelayDeterministicCapped(t *testing.T) {
	a, b := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	base := 40 * time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		da, db := backoffDelay(base, attempt, a), backoffDelay(base, attempt, b)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
		exp := base << uint(min(attempt, 5))
		if exp > 5*time.Second {
			exp = 5 * time.Second
		}
		if da < exp/2 || da > exp {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, da, exp/2, exp)
		}
	}
	// 1s base: attempt 3 would be 8s — the 5s ceiling must win.
	if d := backoffDelay(time.Second, 3, a); d > 5*time.Second {
		t.Fatalf("hard cap breached: %v", d)
	}
	if d := backoffDelay(0, 4, a); d != 0 {
		t.Fatalf("zero base slept %v", d)
	}
}

// TestPercentilesMatchStats pins the latency percentiles to the codebase's
// canonical type-7 interpolated quantiles. The fixture is chosen so the old
// ad-hoc nearest-rank rounding (int(q·(n-1)+0.5)) visibly disagrees on both
// reported quantiles: it said p50=30, p99=40 here.
func TestPercentilesMatchStats(t *testing.T) {
	fixture := []float64{10, 20, 30, 40}
	p50, p99, max := percentiles(fixture)
	if want := stats.Percentile(fixture, 0.50); p50 != want {
		t.Errorf("p50 = %v, want stats.Percentile = %v", p50, want)
	}
	if want := stats.Percentile(fixture, 0.99); p99 != want {
		t.Errorf("p99 = %v, want stats.Percentile = %v", p99, want)
	}
	if p50 != 25 {
		t.Errorf("p50 = %v, want the interpolated 25 (nearest-rank gave 30)", p50)
	}
	if math.Abs(p99-39.7) > 1e-9 {
		t.Errorf("p99 = %v, want the interpolated 39.7 (nearest-rank gave 40)", p99)
	}
	if max != 40 {
		t.Errorf("max = %v, want 40", max)
	}
	// Unsorted input must yield the same quantiles without being mutated.
	shuffled := []float64{30, 10, 40, 20}
	q50, q99, qmax := percentiles(shuffled)
	if q50 != p50 || q99 != p99 || qmax != max {
		t.Errorf("unsorted fixture: got (%v %v %v), want (%v %v %v)", q50, q99, qmax, p50, p99, max)
	}
	if shuffled[0] != 30 || shuffled[1] != 10 || shuffled[2] != 40 || shuffled[3] != 20 {
		t.Errorf("percentiles mutated its input: %v", shuffled)
	}
	if a, b, c := percentiles(nil); a != 0 || b != 0 || c != 0 {
		t.Errorf("empty input: got (%v %v %v), want zeros", a, b, c)
	}
}
